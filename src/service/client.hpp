#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "service/net.hpp"
#include "service/protocol.hpp"

namespace phoenix {

/// Blocking client for the phoenix_served wire protocol (see protocol.hpp).
/// Single-threaded by design: one ServedClient owns one connection and is
/// driven from one thread, but it still multiplexes — submit as many
/// requests as you like, then await them in any order; replies that arrive
/// early are parked in a mailbox keyed by request id. phoenix_load and the
/// server tests drive the daemon exclusively through this class.
class ServedClient {
 public:
  static ServedClient connect_tcp(const std::string& host, std::uint16_t port);
  static ServedClient connect_unix(const std::string& path);

  ServedClient(ServedClient&&) = default;
  ServedClient& operator=(ServedClient&&) = default;

  struct Ack {
    std::uint64_t request_id = 0;
    std::string fingerprint_hex;
    bool hit = false;  ///< ready at submission time (cache hit or joined)
  };

  /// Send a Submit frame and wait for its SubmitAck. Request ids are
  /// assigned internally (monotonic). Throws the reconstructed phoenix::Error
  /// when the server rejects the submission outright (malformed request,
  /// admission control) — rejected submissions have no result to await.
  Ack submit(const CompileRequest& req, int priority = 0);

  /// Block until the terminal reply for `request_id` and return the raw
  /// Result payload (exactly the serialize.hpp document — callers wanting a
  /// CompileResult parse it with compile_result_from_bytes; callers checking
  /// bit-identity compare it directly). Throws the reconstructed Error when
  /// the terminal reply is an ErrorReply (DeadlineExceeded, Cancelled, ...).
  std::string await_raw(std::uint64_t request_id);

  /// Synchronous Poll round-trip: whether the submission is ready, and (via
  /// `known`) whether the server still tracks it at all (terminal replies
  /// retire submissions server-side).
  bool poll(std::uint64_t request_id, bool* known = nullptr);

  /// Synchronous Cancel round-trip. True when the compile was skipped or
  /// aborted on this submission's behalf; the terminal ErrorReply (kind
  /// Cancelled) still arrives and must be consumed via await_raw.
  bool cancel(std::uint64_t request_id);

  /// Synchronous Stats round-trip: `net.*` and `service.*` counters.
  std::vector<std::pair<std::string, std::uint64_t>> stats();

  /// Escape hatch for protocol tests: write raw bytes to the socket.
  void send_bytes(const std::string& bytes);
  /// Escape hatch for protocol tests: read the next frame off the wire
  /// (bypasses the mailbox — use only on a connection with nothing pending).
  Frame read_frame();

 private:
  explicit ServedClient(net::Fd fd) : fd_(std::move(fd)) {}

  Frame wait_for(FrameType a, FrameType b, std::uint64_t request_id);

  net::Fd fd_;
  std::string buf_;
  std::uint64_t next_id_ = 1;
  /// Terminal replies (Result/ErrorReply) that arrived while waiting for
  /// something else.
  std::unordered_map<std::uint64_t, Frame> mailbox_;
};

}  // namespace phoenix
