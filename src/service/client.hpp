#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "service/net.hpp"
#include "service/protocol.hpp"

namespace phoenix {

/// One phoenix_served address: TCP `host:port` or a Unix-domain socket
/// path. The canonical `label()` doubles as the endpoint's identity in the
/// rendezvous hash (router.hpp), so two processes that spell the same
/// endpoint the same way route every fingerprint identically.
struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string unix_path;  ///< non-empty selects the Unix-domain transport

  static Endpoint tcp(std::string host, std::uint16_t port);
  static Endpoint uds(std::string path);
  /// Parse `unix:<path>` or `host:port` (throws Error, Stage::Parse).
  static Endpoint parse(const std::string& spec);

  bool is_unix() const { return !unix_path.empty(); }
  /// `host:port` or `unix:<path>` — the rendezvous identity.
  std::string label() const;
  bool operator==(const Endpoint&) const = default;
};

/// Bounded retry-with-backoff policy, the client-side sibling of the disk
/// cache's `disk_retry_{limit,backoff_ms}` (PR 6). Applied to connect
/// attempts that fail with Stage::Io (connection refused, daemon
/// restarting) and to submissions rejected with kind Overloaded. Off by
/// default so protocol tests observe every error exactly once.
struct RetryOptions {
  std::size_t limit = 0;    ///< extra attempts after the first (0 = off)
  double backoff_ms = 1.0;  ///< sleep between attempts
};

/// Client-side monotonic counters, the `ServiceStats` sibling for the
/// transport layer. Mirrored onto any installed Trace as `net.pool.*`
/// counters by the pooled client and `client.*` by the blocking client.
struct ClientStats {
  std::uint64_t submits = 0;         ///< Submit frames sent
  std::uint64_t results = 0;         ///< Result payloads received
  std::uint64_t error_replies = 0;   ///< terminal ErrorReply frames consumed
  std::uint64_t retries = 0;         ///< Overloaded submissions retried
  std::uint64_t connect_retries = 0; ///< failed connect attempts retried
  std::uint64_t conns_opened = 0;    ///< connections (re)established
  std::uint64_t io_errors = 0;       ///< connections lost mid-conversation
  std::uint64_t burst_writes = 0;    ///< batched multi-frame writes
  std::uint64_t burst_frames = 0;    ///< Submit frames carried by bursts
};

/// SubmitAck contents: the server-computed request fingerprint and whether
/// the submission was ready at submission time (cache hit or joined an
/// in-flight compile).
struct AckInfo {
  std::uint64_t request_id = 0;
  std::string fingerprint_hex;
  bool hit = false;
};

/// Blocking client for the phoenix_served wire protocol (see protocol.hpp).
/// Single-threaded by design: one ServedClient owns one connection and is
/// driven from one thread, but it still multiplexes — submit as many
/// requests as you like (pipelined without waiting for acks via
/// `submit_async` + `flush`), then await them in any order; replies that
/// arrive early are parked in mailboxes keyed by request id. phoenix_load
/// and the server tests drive the daemon through this class; the fleet path
/// (router.hpp) rides the thread-safe PooledClient below instead.
class ServedClient {
 public:
  /// `retry` bounds reconnect attempts when the daemon is not up yet (or is
  /// restarting): any connect failure with Stage::Io is retried with
  /// backoff. The policy is remembered and also applied to Overloaded
  /// submission rejects in submit().
  static ServedClient connect_tcp(const std::string& host, std::uint16_t port,
                                  const RetryOptions& retry = {});
  static ServedClient connect_unix(const std::string& path,
                                   const RetryOptions& retry = {});

  ServedClient(ServedClient&&) = default;
  ServedClient& operator=(ServedClient&&) = default;

  using Ack = AckInfo;

  /// Send a Submit frame and wait for its SubmitAck. Request ids are
  /// assigned internally (monotonic). Throws the reconstructed phoenix::Error
  /// when the server rejects the submission outright (malformed request,
  /// admission control) — rejected submissions have no result to await.
  /// With a retry policy installed, Overloaded rejects are resubmitted up to
  /// `retry.limit` times with `retry.backoff_ms` sleeps (counted in
  /// client_stats().retries).
  Ack submit(const CompileRequest& req, int priority = 0);

  /// Pipelined submission: the encoded Submit frame is appended to an
  /// outgoing buffer without touching the socket, so a burst of
  /// submit_async calls becomes ONE batched write at the next flush() (or
  /// implicitly before the next read). The returned handle is a
  /// single-threaded future: its ack()/get() pump this client's connection
  /// until the wanted reply arrives, parking everything else.
  class Pending {
   public:
    Pending() = default;
    std::uint64_t request_id() const { return id_; }
    /// Block for the SubmitAck (throws the reconstructed Error when the
    /// server rejected the submission; a throwing ack() is terminal).
    Ack ack();
    /// Block for the terminal Result payload (throws like await_raw).
    std::string get();

   private:
    friend class ServedClient;
    Pending(ServedClient* owner, std::uint64_t id) : owner_(owner), id_(id) {}
    ServedClient* owner_ = nullptr;
    std::uint64_t id_ = 0;
  };
  Pending submit_async(const CompileRequest& req, int priority = 0);
  /// Write every buffered frame in one write_all (counted as a burst write
  /// when it carries more than one frame). No-op on an empty buffer.
  void flush();

  /// Block until the terminal reply for `request_id` and return the raw
  /// Result payload (exactly the serialize.hpp document — callers wanting a
  /// CompileResult parse it with compile_result_from_bytes; callers checking
  /// bit-identity compare it directly). Throws the reconstructed Error when
  /// the terminal reply is an ErrorReply (DeadlineExceeded, Cancelled, ...).
  std::string await_raw(std::uint64_t request_id);

  /// Synchronous Poll round-trip: whether the submission is ready, and (via
  /// `known`) whether the server still tracks it at all (terminal replies
  /// retire submissions server-side).
  bool poll(std::uint64_t request_id, bool* known = nullptr);

  /// Synchronous Cancel round-trip. True when the compile was skipped or
  /// aborted on this submission's behalf; the terminal ErrorReply (kind
  /// Cancelled) still arrives and must be consumed via await_raw.
  bool cancel(std::uint64_t request_id);

  /// Synchronous Stats round-trip: `net.*` and `service.*` counters.
  std::vector<std::pair<std::string, std::uint64_t>> stats();

  ClientStats client_stats() const { return stats_; }

  /// Escape hatch for protocol tests: write raw bytes to the socket (any
  /// buffered frames are flushed first so stream order is preserved).
  void send_bytes(const std::string& bytes);
  /// Escape hatch for protocol tests: read the next frame off the wire
  /// (bypasses the mailboxes — use only on a connection with nothing
  /// pending).
  Frame read_frame();

 private:
  explicit ServedClient(net::Fd fd) : fd_(std::move(fd)) {}

  Ack submit_once(const CompileRequest& req, int priority);
  Ack take_ack(std::uint64_t request_id);
  Frame wait_for(FrameType a, FrameType b, std::uint64_t request_id);

  net::Fd fd_;
  RetryOptions retry_;
  ClientStats stats_;
  std::string buf_;      ///< incoming byte stream, undecoded tail
  std::string out_buf_;  ///< encoded frames awaiting the next flush()
  std::size_t out_frames_ = 0;
  std::uint64_t next_id_ = 1;
  /// Terminal replies (Result/ErrorReply) that arrived while waiting for
  /// something else, and SubmitAcks for pipelined submissions.
  std::unordered_map<std::uint64_t, Frame> mailbox_;
  std::unordered_map<std::uint64_t, Frame> acks_;
};

namespace detail {
struct PoolPending;
struct PoolConn;
}  // namespace detail

struct PooledClientOptions {
  /// Connections kept to the endpoint. Submissions round-robin across them,
  /// each multiplexing many in-flight request ids (the server demuxes by
  /// id), so one pooled client saturates a daemon without head-of-line
  /// blocking on a single stream.
  std::size_t connections = 2;
  /// Connect/reconnect retry policy (Stage::Io failures at submission
  /// time). Overloaded rejects are NOT retried here — they surface through
  /// Handle::get() so the routing layer (ShardedClient) can apply its own
  /// bounded re-route/backoff policy.
  RetryOptions retry;
};

/// Thread-safe pooled, pipelined transport to ONE endpoint: a small
/// connection pool, a reader thread per connection demultiplexing replies
/// by request id into futures, batched frame writes for submit bursts, and
/// automatic lazy reconnect of dead connections. This is the per-endpoint
/// transport under ShardedClient (router.hpp); it can also be used directly
/// as a faster drop-in for ServedClient when raw-frame escape hatches are
/// not needed.
///
/// Failure semantics: when a connection dies (EOF, reset, daemon killed),
/// every submission in flight on it fails with Error(Stage::Io); the next
/// submit_async transparently reconnects that pool slot. A submission is
/// never silently lost — each one terminates in exactly one of Result
/// payload, structured server Error, or connection-loss Error.
class PooledClient {
 public:
  explicit PooledClient(Endpoint endpoint, PooledClientOptions opt = {});
  ~PooledClient();  ///< shuts down every connection and joins the readers

  PooledClient(const PooledClient&) = delete;
  PooledClient& operator=(const PooledClient&) = delete;

  /// Future for one submission. Safe to await from any thread (and from a
  /// different thread than the submitter); blocking calls wake when the
  /// reader thread delivers the reply or the connection dies.
  class Handle {
   public:
    Handle() = default;
    bool valid() const { return p_ != nullptr; }
    std::uint64_t request_id() const;
    /// Block for the SubmitAck (throws the server's rejection Error or the
    /// connection-loss Error; a throwing ack() is terminal).
    AckInfo ack();
    /// Block for the terminal reply; returns the raw Result payload, throws
    /// the reconstructed Error otherwise. Single-shot: the payload is moved
    /// out.
    std::string get();
    /// True once the terminal reply (or connection loss) arrived.
    bool done() const;
    /// Synchronous Cancel round-trip on the owning connection (false when
    /// the connection is already gone or the compile had finished).
    bool cancel();

   private:
    friend class PooledClient;
    explicit Handle(std::shared_ptr<detail::PoolPending> p)
        : p_(std::move(p)) {}
    std::shared_ptr<detail::PoolPending> p_;
  };

  /// Pipelined submit: registers the future, writes the frame on one pool
  /// connection, returns without waiting for any reply. Reconnects (with
  /// the configured retry policy) when the chosen connection is dead.
  Handle submit_async(const CompileRequest& req, int priority = 0);

  /// Batched submit burst: every frame is encoded back-to-back and written
  /// with ONE write_all on one connection, so an N-request burst costs one
  /// syscall instead of N (counted in stats().burst_writes/burst_frames).
  std::vector<Handle> submit_burst(const std::vector<CompileRequest>& reqs,
                                   int priority = 0);

  /// Pre-serialized variants: submit a Submit PAYLOAD produced earlier by
  /// compile_request_to_bytes, skipping the per-submission serialization
  /// pass. The routing tier's prepared requests (router.hpp) ride these for
  /// repeat-heavy workloads and retry resubmission.
  Handle submit_payload(const std::string& body);
  std::vector<Handle> submit_burst_payloads(
      const std::vector<const std::string*>& bodies);

  /// Synchronous Stats round-trip: the endpoint's `net.*`/`service.*`
  /// counters (opens a connection if none is live).
  std::vector<std::pair<std::string, std::uint64_t>> server_stats();

  ClientStats stats() const;
  const Endpoint& endpoint() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace phoenix
