#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/hash.hpp"
#include "phoenix/compiler.hpp"

namespace phoenix {

struct CacheOptions {
  /// Total in-memory byte budget across all shards
  /// (compile_result_approx_bytes accounting). Inserting into a full shard
  /// evicts least-recently-used entries until the shard is back under its
  /// slice of the budget. A single result larger than a whole shard slice is
  /// still admitted alone (the budget is a high-water target, not a hard
  /// invariant for one oversized entry).
  std::size_t max_bytes = 256ull << 20;
  /// Lock shards (fingerprints are spread by their low digest bits). More
  /// shards = less contention, coarser per-shard budget slices.
  std::size_t shards = 8;
  /// When non-empty: persist entries as `<disk_dir>/<fingerprint-hex>.phxc`
  /// (versioned compile_result_to_bytes documents, written via temp-file +
  /// rename). Misses consult the directory and promote parses into memory;
  /// stale schema tags or corrupt files count as `disk_rejects` and fall
  /// through to a normal miss. The directory is created on first use.
  std::string disk_dir;
};

/// Content-addressed, sharded, byte-budgeted LRU cache of compile results.
/// Thread-safe; values are shared immutable snapshots, so a hit costs one
/// shard lock plus a shared_ptr copy and never blocks on other shards.
class CompileCache {
 public:
  using ResultPtr = std::shared_ptr<const CompileResult>;

  explicit CompileCache(CacheOptions opt = {});
  ~CompileCache();

  CompileCache(const CompileCache&) = delete;
  CompileCache& operator=(const CompileCache&) = delete;

  /// Memory first, then disk (when configured). Returns nullptr on miss.
  ResultPtr get(const Digest128& key);

  /// Insert (or refresh) an entry; evicts LRU entries past the byte budget
  /// and, when disk persistence is on, writes the entry through.
  void put(const Digest128& key, ResultPtr value);

  /// Drop every in-memory entry (disk files are left alone).
  void clear();

  struct Counters {
    std::uint64_t hits = 0;        ///< in-memory hits
    std::uint64_t misses = 0;      ///< full misses (memory and disk)
    std::uint64_t disk_hits = 0;   ///< served by parsing a persisted entry
    std::uint64_t disk_rejects = 0;  ///< stale-schema / corrupt disk entries
    std::uint64_t evictions = 0;   ///< entries dropped by the byte budget
    std::uint64_t bytes = 0;       ///< current resident byte estimate
    std::uint64_t entries = 0;     ///< current resident entry count
  };
  Counters counters() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace phoenix
