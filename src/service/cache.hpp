#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/hash.hpp"
#include "phoenix/compiler.hpp"

namespace phoenix {

struct CacheOptions {
  /// Total in-memory byte budget across all shards
  /// (compile_result_approx_bytes accounting). Inserting into a full shard
  /// evicts least-recently-used entries until the shard is back under its
  /// slice of the budget. A single result larger than a whole shard slice is
  /// still admitted alone (the budget is a high-water target, not a hard
  /// invariant for one oversized entry).
  std::size_t max_bytes = 256ull << 20;
  /// Lock shards (fingerprints are spread by their low digest bits). More
  /// shards = less contention, coarser per-shard budget slices.
  std::size_t shards = 8;
  /// When non-empty: persist entries as
  /// `<disk_dir>/<hh>/<fingerprint-hex>.phxc`, where `<hh>` is the first
  /// two hex digits of the fingerprint — 256 shard subdirectories, so a
  /// fleet of daemons sharing one cache tier spreads directory traffic and
  /// a shard can be rsynced/evicted independently. Entries are versioned
  /// compile_result_to_bytes documents followed by a checksum footer,
  /// written via temp-file + fsync + rename + directory fsync so a crash
  /// never publishes a partial entry. The layout is safe across processes:
  /// readers are lock-free (they only ever open published files, and
  /// rename() is atomic), and writer temp files are stamped
  /// `<name>.<pid>-<nonce>.tmp` so concurrent daemons never collide on a
  /// temp name — two daemons racing the same fingerprint both publish
  /// bit-identical bytes, so whichever rename lands last is equivalent.
  /// Misses consult the directory and promote parses into memory; stale
  /// schema tags, torn writes, and checksum mismatches count as
  /// `disk_rejects`, move the damaged file to `<name>.quarantine`, and fall
  /// through to a normal miss (the entry is recompiled and rewritten).
  /// Entries persisted by older builds into the flat (unsharded) layout are
  /// still found on read. Orphaned `*.tmp` litter from crashed writers is
  /// swept at construction — but only when the stamped writer PID is dead
  /// or the file's mtime exceeds `sweep_grace_seconds`, so the sweep never
  /// races a live writer in another process mid-write.
  std::string disk_dir;
  /// Grace window for the startup tmp sweep: a temp file whose owning
  /// process cannot be shown dead (alive, unsignalable, or an unstamped
  /// legacy name) is only removed once it is at least this old.
  double sweep_grace_seconds = 900.0;
  /// Transient disk I/O (a failed write attempt, a short read) is retried up
  /// to this many extra times with `disk_retry_backoff_ms` sleeps between
  /// attempts; `disk_retries` counts the retries. Exhausting write attempts
  /// abandons persistence for that entry (`disk_write_failures`) — the
  /// in-memory entry still stands.
  std::size_t disk_retry_limit = 2;
  double disk_retry_backoff_ms = 1.0;
};

/// Content-addressed, sharded, byte-budgeted LRU cache of compile results.
/// Thread-safe; values are shared immutable snapshots, so a hit costs one
/// shard lock plus a shared_ptr copy and never blocks on other shards.
class CompileCache {
 public:
  using ResultPtr = std::shared_ptr<const CompileResult>;

  explicit CompileCache(CacheOptions opt = {});
  ~CompileCache();

  CompileCache(const CompileCache&) = delete;
  CompileCache& operator=(const CompileCache&) = delete;

  /// Memory first, then disk (when configured). Returns nullptr on miss.
  ResultPtr get(const Digest128& key);

  /// Insert (or refresh) an entry; evicts LRU entries past the byte budget
  /// and, when disk persistence is on, writes the entry through.
  void put(const Digest128& key, ResultPtr value);

  /// Drop every in-memory entry (disk files are left alone).
  void clear();

  struct Counters {
    std::uint64_t hits = 0;        ///< in-memory hits
    std::uint64_t misses = 0;      ///< full misses (memory and disk)
    std::uint64_t disk_hits = 0;   ///< served by parsing a persisted entry
    std::uint64_t disk_rejects = 0;  ///< corrupt/torn/stale entries quarantined
    std::uint64_t disk_retries = 0;  ///< transient I/O attempts retried
    std::uint64_t disk_write_failures = 0;  ///< persists abandoned after retry
    std::uint64_t evictions = 0;   ///< entries dropped by the byte budget
    std::uint64_t bytes = 0;       ///< current resident byte estimate
    std::uint64_t entries = 0;     ///< current resident entry count
  };
  Counters counters() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace phoenix
