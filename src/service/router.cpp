#include "service/router.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "common/error.hpp"
#include "common/trace.hpp"
#include "service/fingerprint.hpp"

namespace phoenix {

namespace {

using clock_t_ = std::chrono::steady_clock;

void backoff_sleep(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

/// Seed keeping fleet-routing scores in their own hash family, away from
/// fingerprints and disk-cache checksums.
constexpr std::uint64_t kRendezvousSeed = 0x70687866'6c656574ull;  // "phxfleet"

}  // namespace

// --- RendezvousRouter -------------------------------------------------------

RendezvousRouter::RendezvousRouter(std::vector<Endpoint> endpoints)
    : eps_(std::move(endpoints)), up_(eps_.size(), 1) {
  if (eps_.empty())
    throw Error(Stage::Service,
                "phoenix-router: a fleet needs at least one endpoint");
}

std::size_t RendezvousRouter::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return eps_.size();
}

const Endpoint& RendezvousRouter::endpoint(std::size_t i) const {
  std::lock_guard<std::mutex> lk(mu_);
  return eps_.at(i);
}

std::uint64_t RendezvousRouter::score(const Digest128& fp,
                                      const std::string& label) {
  Hash128 h(kRendezvousSeed);
  h.write_string(label);
  h.write_u64(fp.hi);
  h.write_u64(fp.lo);
  return h.digest().hi;
}

std::vector<std::size_t> RendezvousRouter::preference(
    const Digest128& fp) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::pair<std::uint64_t, std::size_t>> scored;
  scored.reserve(eps_.size());
  for (std::size_t i = 0; i < eps_.size(); ++i)
    scored.emplace_back(score(fp, eps_[i].label()), i);
  // Descending score; index breaks the (astronomically unlikely) ties so
  // the order is a total one everywhere.
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  std::vector<std::size_t> order;
  order.reserve(scored.size());
  for (const auto& [s, i] : scored) order.push_back(i);
  return order;
}

std::size_t RendezvousRouter::route(const Digest128& fp) const {
  const std::vector<std::size_t> pref = preference(fp);
  std::lock_guard<std::mutex> lk(mu_);
  for (const std::size_t i : pref)
    if (up_[i] != 0) return i;
  return pref.front();
}

void RendezvousRouter::set_healthy(std::size_t i, bool up) {
  std::lock_guard<std::mutex> lk(mu_);
  up_.at(i) = up ? 1 : 0;
}

bool RendezvousRouter::healthy(std::size_t i) const {
  std::lock_guard<std::mutex> lk(mu_);
  return up_.at(i) != 0;
}

void RendezvousRouter::add_endpoint(Endpoint e) {
  std::lock_guard<std::mutex> lk(mu_);
  eps_.push_back(std::move(e));
  up_.push_back(1);
}

void RendezvousRouter::remove_endpoint(std::size_t i) {
  std::lock_guard<std::mutex> lk(mu_);
  eps_.erase(eps_.begin() + static_cast<std::ptrdiff_t>(i));
  up_.erase(up_.begin() + static_cast<std::ptrdiff_t>(i));
}

// --- ShardedClient ----------------------------------------------------------

struct ShardedClient::Impl {
  ShardedClientOptions opt;
  RendezvousRouter router;

  std::mutex pools_mu;
  std::vector<std::unique_ptr<PooledClient>> pools;  ///< lazily constructed
  std::vector<clock_t_::time_point> down_since;      ///< valid while unhealthy

  std::atomic<std::uint64_t> routed{0};
  std::atomic<std::uint64_t> reroutes{0};
  std::atomic<std::uint64_t> probes{0};
  std::atomic<std::uint64_t> retries{0};

  Impl(std::vector<Endpoint> eps, ShardedClientOptions o)
      : opt(o), router(std::move(eps)) {
    pools.resize(router.size());
    down_since.resize(router.size());
  }

  PooledClient& pool(std::size_t i) {
    std::lock_guard<std::mutex> lk(pools_mu);
    if (i >= pools.size()) pools.resize(i + 1);  // router grew via add_endpoint
    if (pools[i] == nullptr)
      pools[i] = std::make_unique<PooledClient>(router.endpoint(i), opt.pool);
    return *pools[i];
  }

  void mark_down(std::size_t i) {
    router.set_healthy(i, false);
    std::lock_guard<std::mutex> lk(pools_mu);
    if (i >= down_since.size()) down_since.resize(i + 1);
    down_since[i] = clock_t_::now();
  }

  /// A down endpoint may be probed again once its probation expired.
  bool probe_eligible(std::size_t i) {
    std::lock_guard<std::mutex> lk(pools_mu);
    if (i >= down_since.size()) down_since.resize(i + 1);
    return std::chrono::duration<double, std::milli>(clock_t_::now() -
                                                     down_since[i])
               .count() >= opt.probe_down_ms;
  }

  /// Burst-path routing: first healthy endpoint in preference order, or a
  /// down one whose probation expired (the burst doubles as the probe — a
  /// recovered daemon rejoins even under pure-burst workloads).
  std::size_t route_for_burst(const Digest128& fp) {
    const std::vector<std::size_t> pref = router.preference(fp);
    for (const std::size_t i : pref) {
      if (router.healthy(i)) return i;
      if (probe_eligible(i)) {
        probes.fetch_add(1, std::memory_order_relaxed);
        trace_count("router.probes", 1);
        return i;
      }
    }
    return pref.front();
  }

  /// Submit one request along its fingerprint's preference order: first
  /// healthy (or probe-eligible) endpoint wins; Stage::Io failures mark the
  /// endpoint down and fall through to the next preference. When every
  /// endpoint was skipped as down-in-probation, a second pass tries them
  /// all anyway (spinning without I/O would be worse).
  PooledClient::Handle route_submit(const PreparedRequest& req,
                                    std::size_t* ep_out) {
    const std::vector<std::size_t> pref = router.preference(req.fingerprint);
    std::unique_ptr<Error> last;
    for (int pass = 0; pass < 2; ++pass) {
      bool attempted = false;
      for (std::size_t k = 0; k < pref.size(); ++k) {
        const std::size_t i = pref[k];
        if (!router.healthy(i) && pass == 0) {
          if (!probe_eligible(i)) continue;
          probes.fetch_add(1, std::memory_order_relaxed);
          trace_count("router.probes", 1);
        }
        attempted = true;
        try {
          PooledClient::Handle h = pool(i).submit_payload(*req.payload);
          if (!router.healthy(i)) router.set_healthy(i, true);
          routed.fetch_add(1, std::memory_order_relaxed);
          trace_count("router.routed", 1);
          if (k != 0) {
            reroutes.fetch_add(1, std::memory_order_relaxed);
            trace_count("router.reroutes", 1);
          }
          *ep_out = i;
          return h;
        } catch (const Error& e) {
          if (e.stage() != Stage::Io) throw;
          mark_down(i);
          last = std::make_unique<Error>(e);
        }
      }
      if (attempted) break;
    }
    if (last != nullptr) throw Error(*last);
    throw Error(Stage::Io, "phoenix-router: no endpoint reachable");
  }
};

namespace detail {

/// One routed submission: the prepared request (so transport failures can
/// be re-submitted verbatim, byte-identical), and the current attempt's
/// pooled future. `mu` serializes the retry state machine — awaiting one
/// handle from several threads is allowed, mutating calls take turns.
struct RoutedSub {
  ShardedClient::Impl* owner = nullptr;
  PreparedRequest req;

  std::mutex mu;
  PooledClient::Handle inner;
  std::size_t ep = 0;
  std::size_t attempts = 0;

  /// Run `await` against the current attempt, re-routing and re-submitting
  /// on Stage::Io / Overloaded failures within the retry budget.
  template <typename F>
  auto with_retry(F&& await) -> decltype(await()) {
    for (;;) {
      try {
        if (!inner.valid()) {
          ++attempts;
          inner = owner->route_submit(req, &ep);
        }
        return await();
      } catch (const Error& e) {
        const bool transport = e.stage() == Stage::Io;
        if (!transport && e.kind() != Error::Kind::Overloaded) throw;
        if (transport && inner.valid()) owner->mark_down(ep);
        inner = PooledClient::Handle();
        if (attempts > owner->opt.retry.limit) throw;
        owner->retries.fetch_add(1, std::memory_order_relaxed);
        trace_count("router.retries", 1);
        backoff_sleep(owner->opt.retry.backoff_ms);
      }
    }
  }
};

}  // namespace detail

const Digest128& ShardedClient::Handle::fingerprint() const {
  return r_->req.fingerprint;
}

std::size_t ShardedClient::Handle::endpoint_index() const {
  std::lock_guard<std::mutex> lk(r_->mu);
  return r_->ep;
}

std::size_t ShardedClient::Handle::attempts() const {
  std::lock_guard<std::mutex> lk(r_->mu);
  return r_->attempts;
}

AckInfo ShardedClient::Handle::ack() {
  std::lock_guard<std::mutex> lk(r_->mu);
  return r_->with_retry([&] { return r_->inner.ack(); });
}

std::string ShardedClient::Handle::get() {
  std::lock_guard<std::mutex> lk(r_->mu);
  return r_->with_retry([&] { return r_->inner.get(); });
}

bool ShardedClient::Handle::cancel() {
  std::lock_guard<std::mutex> lk(r_->mu);
  if (!r_->inner.valid()) return false;
  return r_->inner.cancel();
}

ShardedClient::ShardedClient(std::vector<Endpoint> endpoints,
                             ShardedClientOptions opt)
    : impl_(std::make_unique<Impl>(std::move(endpoints), opt)) {}

ShardedClient::~ShardedClient() = default;

PreparedRequest ShardedClient::prepare(const CompileRequest& req,
                                       int priority) const {
  PreparedRequest p;
  p.fingerprint = fingerprint_request(req.terms, req.num_qubits, req.options,
                                      req.coupling_graph());
  p.priority = priority;
  p.payload = std::make_shared<const std::string>(
      compile_request_to_bytes(req, priority));
  return p;
}

ShardedClient::Handle ShardedClient::submit(PreparedRequest req) {
  auto r = std::make_shared<detail::RoutedSub>();
  r->owner = impl_.get();
  r->req = std::move(req);
  std::lock_guard<std::mutex> lk(r->mu);
  r->with_retry([&] { return 0; });  // initial routed submit, same budget
  return Handle(std::move(r));
}

ShardedClient::Handle ShardedClient::submit(const CompileRequest& req,
                                            int priority) {
  return submit(prepare(req, priority));
}

std::vector<ShardedClient::Handle> ShardedClient::submit_burst(
    std::vector<PreparedRequest> reqs) {
  // Route first, then one batched write per endpoint: requests sharing a
  // shard ride a single syscall into their daemon.
  std::vector<std::shared_ptr<detail::RoutedSub>> subs;
  subs.reserve(reqs.size());
  std::vector<std::vector<std::size_t>> by_ep(impl_->router.size());
  for (std::size_t n = 0; n < reqs.size(); ++n) {
    auto r = std::make_shared<detail::RoutedSub>();
    r->owner = impl_.get();
    r->req = std::move(reqs[n]);
    r->ep = impl_->route_for_burst(r->req.fingerprint);
    if (r->ep >= by_ep.size()) by_ep.resize(r->ep + 1);
    by_ep[r->ep].push_back(n);
    subs.push_back(std::move(r));
  }
  for (std::size_t i = 0; i < by_ep.size(); ++i) {
    if (by_ep[i].empty()) continue;
    std::vector<const std::string*> group;
    group.reserve(by_ep[i].size());
    for (const std::size_t n : by_ep[i])
      group.push_back(subs[n]->req.payload.get());
    try {
      std::vector<PooledClient::Handle> handles =
          impl_->pool(i).submit_burst_payloads(group);
      if (!impl_->router.healthy(i)) impl_->router.set_healthy(i, true);
      for (std::size_t g = 0; g < by_ep[i].size(); ++g) {
        detail::RoutedSub& r = *subs[by_ep[i][g]];
        r.inner = std::move(handles[g]);
        r.attempts = 1;
      }
      impl_->routed.fetch_add(group.size(), std::memory_order_relaxed);
      trace_count("router.routed", group.size());
    } catch (const Error& e) {
      if (e.stage() != Stage::Io) throw;
      impl_->mark_down(i);
      // Fall back to the per-request path, which re-routes each one along
      // its own preference order (and applies the retry budget).
      for (const std::size_t n : by_ep[i]) {
        detail::RoutedSub& r = *subs[n];
        std::lock_guard<std::mutex> lk(r.mu);
        r.with_retry([&] { return 0; });
      }
    }
  }
  std::vector<Handle> out;
  out.reserve(subs.size());
  for (auto& r : subs) out.push_back(Handle(std::move(r)));
  return out;
}

std::vector<ShardedClient::Handle> ShardedClient::submit_burst(
    const std::vector<CompileRequest>& reqs, int priority) {
  std::vector<PreparedRequest> prepared;
  prepared.reserve(reqs.size());
  for (const CompileRequest& req : reqs) prepared.push_back(prepare(req, priority));
  return submit_burst(std::move(prepared));
}

std::string ShardedClient::compile_raw(const CompileRequest& req,
                                       int priority) {
  return submit(req, priority).get();
}

std::size_t ShardedClient::num_endpoints() const {
  return impl_->router.size();
}

const Endpoint& ShardedClient::endpoint(std::size_t i) const {
  return impl_->router.endpoint(i);
}

RendezvousRouter& ShardedClient::router() { return impl_->router; }

std::vector<std::pair<std::string, std::uint64_t>> ShardedClient::server_stats(
    std::size_t endpoint_index) {
  return impl_->pool(endpoint_index).server_stats();
}

RouterStats ShardedClient::router_stats() const {
  RouterStats s;
  s.routed = impl_->routed.load(std::memory_order_relaxed);
  s.reroutes = impl_->reroutes.load(std::memory_order_relaxed);
  s.probes = impl_->probes.load(std::memory_order_relaxed);
  s.retries = impl_->retries.load(std::memory_order_relaxed);
  return s;
}

ClientStats ShardedClient::client_stats() const {
  ClientStats total;
  {
    std::lock_guard<std::mutex> lk(impl_->pools_mu);
    for (const auto& p : impl_->pools) {
      if (p == nullptr) continue;
      const ClientStats s = p->stats();
      total.submits += s.submits;
      total.results += s.results;
      total.error_replies += s.error_replies;
      total.connect_retries += s.connect_retries;
      total.conns_opened += s.conns_opened;
      total.io_errors += s.io_errors;
      total.burst_writes += s.burst_writes;
      total.burst_frames += s.burst_frames;
    }
  }
  total.retries = impl_->retries.load(std::memory_order_relaxed);
  return total;
}

}  // namespace phoenix
