#include "service/server.hpp"

#include <atomic>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/trace.hpp"
#include "phoenix/serialize.hpp"
#include "service/net.hpp"

namespace phoenix {

namespace {

/// One live client connection. The reader thread owns frame decoding and
/// synchronous replies; every accepted Submit gets a waiter thread that
/// blocks in Ticket::get and sends the Result/ErrorReply when the shared
/// flight resolves. Writers interleave frames through `write_mu`, so a
/// multi-frame reply sequence stays intact under request multiplexing.
struct Conn {
  net::Fd fd;
  std::mutex write_mu;
  std::thread reader;
  std::atomic<bool> closed{false};

  std::mutex tickets_mu;
  std::map<std::uint64_t, CompileService::Ticket> tickets;

  struct Waiter {
    std::thread th;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::mutex waiters_mu;
  std::vector<Waiter> waiters;
};

}  // namespace

struct ServedServer::Impl {
  ServerOptions opt;
  CompileService service;

  bool started = false;
  std::atomic<bool> stopping{false};
  net::Fd tcp_listener;
  net::Fd unix_listener;
  std::uint16_t bound_port = 0;
  std::vector<std::thread> acceptors;

  std::mutex conns_mu;
  std::vector<std::shared_ptr<Conn>> conns;

  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> connections{0};
  std::atomic<std::uint64_t> in_flight{0};
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  std::atomic<std::uint64_t> frame_errors{0};
  std::atomic<std::uint64_t> submits{0};
  std::atomic<std::uint64_t> results{0};
  std::atomic<std::uint64_t> errors_sent{0};
  std::atomic<std::uint64_t> cancels{0};
  std::atomic<std::uint64_t> wire_hits{0};
  std::atomic<std::uint64_t> reply_batches{0};

  /// Serialized-result memo. compile_result_to_bytes costs milliseconds for
  /// large programs — orders of magnitude more than the cache lookup it
  /// follows — so serving a warm hit must not re-serialize. Keyed by the
  /// request fingerprint (compiles are deterministic: fingerprint ->
  /// result -> bytes), LRU-bounded, shared across connections.
  static constexpr std::size_t kSerializedMemoMax = 64;
  std::mutex ser_mu;
  std::list<std::pair<Digest128, std::shared_ptr<const std::string>>> ser_lru;
  std::unordered_map<std::string, decltype(ser_lru)::iterator> ser_map;

  std::shared_ptr<const std::string> serialized_result(
      const Digest128& fp, const CompileResult& res) {
    const std::string key = fp.hex();
    {
      std::lock_guard<std::mutex> lk(ser_mu);
      const auto it = ser_map.find(key);
      if (it != ser_map.end()) {
        ser_lru.splice(ser_lru.begin(), ser_lru, it->second);
        trace_count("net.serialize_memo_hits", 1);
        return it->second->second;
      }
    }
    // Serialize outside the lock; a racing duplicate costs one extra
    // serialization, never a wrong answer.
    auto bytes =
        std::make_shared<const std::string>(compile_result_to_bytes(res));
    std::lock_guard<std::mutex> lk(ser_mu);
    if (ser_map.find(key) == ser_map.end()) {
      ser_lru.emplace_front(fp, bytes);
      ser_map.emplace(key, ser_lru.begin());
      while (ser_lru.size() > kSerializedMemoMax) {
        ser_map.erase(ser_lru.back().first.hex());
        ser_lru.pop_back();
      }
    }
    trace_count("net.serialize_memo_misses", 1);
    return bytes;
  }

  /// Wire-level reply memo: hash of the raw Submit PAYLOAD bytes -> the
  /// finished reply (fingerprint + shared serialized Result). A repeated
  /// byte-identical submission is answered without parsing the request,
  /// re-fingerprinting it, or touching the service at all — the dominant
  /// warm-path CPU on a hot fleet shard. Only successful Results are
  /// memoized (errors, cancels, and deadline misses always re-enter the
  /// service), and the memo is disabled when a compile_fn test seam is
  /// installed so protocol tests observe exact service-level semantics.
  /// The request_id lives in the frame HEADER, not the payload, so all
  /// clients share entries regardless of their id sequences; priority and
  /// deadline are payload bytes, so requests differing there get their own
  /// entries instead of wrong answers.
  struct WireReply {
    std::string fingerprint_hex;
    std::shared_ptr<const std::string> result_bytes;
  };
  static constexpr std::size_t kWireMemoMaxEntries = 256;
  static constexpr std::size_t kWireMemoMaxBytes = 64ull << 20;
  std::mutex wire_mu;
  std::list<std::pair<std::string, WireReply>> wire_lru;
  std::unordered_map<std::string, decltype(wire_lru)::iterator> wire_map;
  std::size_t wire_bytes = 0;

  static std::string wire_key(const std::string& payload) {
    Hash128 h(0x7068786d656d6full);  // "phxmemo"
    h.write_string(payload);
    return h.digest().hex();
  }

  bool wire_lookup(const std::string& payload, WireReply* out) {
    if (opt.compile_fn) return false;
    const std::string key = wire_key(payload);
    std::lock_guard<std::mutex> lk(wire_mu);
    const auto it = wire_map.find(key);
    if (it == wire_map.end()) return false;
    wire_lru.splice(wire_lru.begin(), wire_lru, it->second);
    *out = it->second->second;
    return true;
  }

  void wire_store(const std::string& payload, std::string fingerprint_hex,
                  std::shared_ptr<const std::string> result_bytes) {
    if (opt.compile_fn) return;
    std::string key = wire_key(payload);
    std::lock_guard<std::mutex> lk(wire_mu);
    if (wire_map.find(key) != wire_map.end()) return;
    wire_bytes += result_bytes->size();
    wire_lru.emplace_front(
        std::move(key),
        WireReply{std::move(fingerprint_hex), std::move(result_bytes)});
    wire_map.emplace(wire_lru.front().first, wire_lru.begin());
    while (wire_lru.size() > kWireMemoMaxEntries ||
           (wire_bytes > kWireMemoMaxBytes && wire_lru.size() > 1)) {
      wire_bytes -= wire_lru.back().second.result_bytes->size();
      wire_map.erase(wire_lru.back().first);
      wire_lru.pop_back();
    }
  }

  explicit Impl(ServerOptions o)
      : opt(std::move(o)), service(opt.service, opt.compile_fn) {}

  void send_frame(Conn& c, FrameType type, std::uint64_t request_id,
                  std::string payload) {
    Frame f;
    f.type = type;
    f.request_id = request_id;
    f.payload = std::move(payload);
    const std::string bytes = encode_frame(f);
    std::lock_guard<std::mutex> lk(c.write_mu);
    net::write_all(c.fd, bytes.data(), bytes.size());
    bytes_out.fetch_add(bytes.size(), std::memory_order_relaxed);
  }

  void send_error(Conn& c, std::uint64_t request_id, const Error& e) {
    send_frame(c, FrameType::ErrorReply, request_id, error_to_payload(e));
    errors_sent.fetch_add(1, std::memory_order_relaxed);
    trace_count("net.errors_sent", 1);
  }

  /// Terminal reply for one cold submission, sent from its waiter thread
  /// once the shared flight resolves: Result on success, ErrorReply on
  /// failure/cancel/deadline. Retires the ticket and the in_flight slot.
  /// (Warm hits never get here — handle_submit answers them inline with the
  /// ack and terminal frame coalesced.)
  void reply_for_ticket(Conn& c, std::uint64_t request_id,
                        CompileService::Ticket ticket) {
    Frame out;
    out.request_id = request_id;
    try {
      const CompileService::ResultPtr res = ticket.get();
      if (res != nullptr) {
        out.type = FrameType::Result;
        out.payload = *serialized_result(ticket.fingerprint(), *res);
      } else {
        out.type = FrameType::ErrorReply;
        out.payload = error_to_payload(Error(
            Error::Kind::Cancelled, Stage::Service, "submission cancelled"));
      }
    } catch (const Error& e) {
      out.type = FrameType::ErrorReply;
      out.payload = error_to_payload(e);
    } catch (const std::exception& e) {
      out.type = FrameType::ErrorReply;
      out.payload = error_to_payload(Error(Stage::Service, e.what()));
    }
    // Retire BEFORE writing: the terminal reply is the client's license to
    // reuse the id (and to trust that Poll reports it unknown), so the
    // ticket must be gone by the time the reply can possibly be read.
    {
      std::lock_guard<std::mutex> lk(c.tickets_mu);
      c.tickets.erase(request_id);
    }
    in_flight.fetch_sub(1, std::memory_order_relaxed);
    try {
      const std::string bytes = encode_frame(out);
      {
        std::lock_guard<std::mutex> lk(c.write_mu);
        net::write_all(c.fd, bytes.data(), bytes.size());
      }
      bytes_out.fetch_add(bytes.size(), std::memory_order_relaxed);
      if (out.type == FrameType::Result) {
        results.fetch_add(1, std::memory_order_relaxed);
        trace_count("net.results", 1);
      } else {
        errors_sent.fetch_add(1, std::memory_order_relaxed);
        trace_count("net.errors_sent", 1);
      }
    } catch (...) {
      // The reply write failed: the peer is gone, the reader will notice.
    }
  }

  /// Send `bytes` now, or append them to the reader's per-chunk reply batch
  /// (flushed as ONE write after every frame in the chunk is handled).
  void emit(Conn& c, std::string bytes, std::string* batch) {
    bytes_out.fetch_add(bytes.size(), std::memory_order_relaxed);
    if (batch != nullptr) {
      batch->append(bytes);
      return;
    }
    std::lock_guard<std::mutex> lk(c.write_mu);
    net::write_all(c.fd, bytes.data(), bytes.size());
  }

  void handle_submit(const std::shared_ptr<Conn>& c, Frame f,
                     std::string* batch) {
    submits.fetch_add(1, std::memory_order_relaxed);
    trace_count("net.submits", 1);

    // Wire-memo fast path: a byte-identical repeat of a finished compile is
    // answered from the memo — no parse, no fingerprint, no service — with
    // the ack and Result coalesced into the reply batch.
    WireReply memo;
    if (wire_lookup(f.payload, &memo)) {
      wire_hits.fetch_add(1, std::memory_order_relaxed);
      trace_count("net.wire_hits", 1);
      std::string bytes;
      append_frame(bytes, FrameType::SubmitAck, f.request_id,
                   "ack " + memo.fingerprint_hex + " 1");
      append_frame(bytes, FrameType::Result, f.request_id,
                   *memo.result_bytes);
      emit(*c, std::move(bytes), batch);
      results.fetch_add(1, std::memory_order_relaxed);
      trace_count("net.results", 1);
      return;
    }

    int priority = 0;
    CompileRequest req;
    try {
      req = compile_request_from_bytes(f.payload, priority);
    } catch (const Error& e) {
      frame_errors.fetch_add(1, std::memory_order_relaxed);
      trace_count("net.frame_errors", 1);
      send_error(*c, f.request_id, e);
      return;
    }

    {
      std::lock_guard<std::mutex> lk(c->tickets_mu);
      if (c->tickets.count(f.request_id) != 0) {
        frame_errors.fetch_add(1, std::memory_order_relaxed);
        trace_count("net.frame_errors", 1);
        send_error(*c, f.request_id,
                   Error(Stage::Parse, "phoenix-protocol: duplicate "
                                       "in-flight request id"));
        return;
      }
      if (opt.max_inflight_per_conn > 0 &&
          c->tickets.size() >= opt.max_inflight_per_conn) {
        send_error(*c, f.request_id,
                   Error(Error::Kind::Overloaded, Stage::Service,
                         "per-connection in-flight limit of " +
                             std::to_string(opt.max_inflight_per_conn) +
                             " submissions reached"));
        return;
      }
    }

    CompileService::Ticket ticket;
    try {
      ticket = service.submit(std::move(req), priority);
    } catch (const Error& e) {
      send_error(*c, f.request_id, e);  // queue-full Overloaded, mostly
      return;
    }

    const bool hit = ticket.ready();
    if (hit) {
      // Warm path: answer on the reader thread — no waiter spawn, no ticket
      // bookkeeping (the reply retires the submission in the same breath) —
      // with the ack and the terminal frame coalesced into one write, and
      // successful Results memoized for the wire fast path above.
      std::string bytes;
      append_frame(bytes, FrameType::SubmitAck, f.request_id,
                   "ack " + ticket.fingerprint().hex() + " 1");
      Frame out;
      out.request_id = f.request_id;
      try {
        const CompileService::ResultPtr res = ticket.get();
        if (res != nullptr) {
          const std::shared_ptr<const std::string> ser =
              serialized_result(ticket.fingerprint(), *res);
          out.type = FrameType::Result;
          append_frame(bytes, FrameType::Result, f.request_id, *ser);
          wire_store(f.payload, ticket.fingerprint().hex(), ser);
        } else {
          out.type = FrameType::ErrorReply;
          append_frame(bytes, FrameType::ErrorReply, f.request_id,
                       error_to_payload(Error(Error::Kind::Cancelled,
                                              Stage::Service,
                                              "submission cancelled")));
        }
      } catch (const Error& e) {
        out.type = FrameType::ErrorReply;
        append_frame(bytes, FrameType::ErrorReply, f.request_id,
                     error_to_payload(e));
      } catch (const std::exception& e) {
        out.type = FrameType::ErrorReply;
        append_frame(bytes, FrameType::ErrorReply, f.request_id,
                     error_to_payload(Error(Stage::Service, e.what())));
      }
      emit(*c, std::move(bytes), batch);
      if (out.type == FrameType::Result) {
        results.fetch_add(1, std::memory_order_relaxed);
        trace_count("net.results", 1);
      } else {
        errors_sent.fetch_add(1, std::memory_order_relaxed);
        trace_count("net.errors_sent", 1);
      }
      return;
    }

    in_flight.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(c->tickets_mu);
      c->tickets.emplace(f.request_id, ticket);
    }
    send_frame(*c, FrameType::SubmitAck, f.request_id,
               "ack " + ticket.fingerprint().hex() + " 0");

    // Reap waiters that already delivered before adding another, so a
    // long-lived connection holds O(in-flight) threads, not O(history).
    std::lock_guard<std::mutex> lk(c->waiters_mu);
    for (auto it = c->waiters.begin(); it != c->waiters.end();) {
      if (it->done->load(std::memory_order_acquire)) {
        it->th.join();
        it = c->waiters.erase(it);
      } else {
        ++it;
      }
    }
    auto done = std::make_shared<std::atomic<bool>>(false);
    const std::uint64_t request_id = f.request_id;
    std::thread th([this, c, request_id, ticket = std::move(ticket), done] {
      reply_for_ticket(*c, request_id, ticket);
      done->store(true, std::memory_order_release);
    });
    c->waiters.push_back(Conn::Waiter{std::move(th), std::move(done)});
  }

  void handle_poll(Conn& c, const Frame& f) {
    bool known = false;
    bool ready = false;
    {
      std::lock_guard<std::mutex> lk(c.tickets_mu);
      const auto it = c.tickets.find(f.request_id);
      if (it != c.tickets.end()) {
        known = true;
        ready = it->second.ready();
      }
    }
    send_frame(c, FrameType::Status, f.request_id,
               std::string("status ") + (ready ? "1" : "0") + ' ' +
                   (known ? "1" : "0"));
  }

  void handle_cancel(Conn& c, const Frame& f) {
    cancels.fetch_add(1, std::memory_order_relaxed);
    trace_count("net.cancels", 1);
    CompileService::Ticket ticket;
    bool known = false;
    {
      std::lock_guard<std::mutex> lk(c.tickets_mu);
      const auto it = c.tickets.find(f.request_id);
      if (it != c.tickets.end()) {
        known = true;
        ticket = it->second;
      }
    }
    // The waiter observes the cancel through Ticket::get (nullptr) and sends
    // the Cancelled ErrorReply; this ack only reports whether the compile
    // was skipped or aborted on this submission's behalf.
    const bool cancelled = known && ticket.cancel();
    send_frame(c, FrameType::CancelAck, f.request_id,
               std::string("cancelled ") + (cancelled ? "1" : "0"));
  }

  void handle_stats(Conn& c, const Frame& f) {
    const ServerStats net = snapshot();
    const ServiceStats svc = service.stats();
    std::ostringstream out;
    out << "stat net.accepted " << net.accepted << '\n'
        << "stat net.connections " << net.connections << '\n'
        << "stat net.in_flight " << net.in_flight << '\n'
        << "stat net.bytes_in " << net.bytes_in << '\n'
        << "stat net.bytes_out " << net.bytes_out << '\n'
        << "stat net.frame_errors " << net.frame_errors << '\n'
        << "stat net.submits " << net.submits << '\n'
        << "stat net.results " << net.results << '\n'
        << "stat net.errors_sent " << net.errors_sent << '\n'
        << "stat net.cancels " << net.cancels << '\n'
        << "stat net.wire_hits "
        << wire_hits.load(std::memory_order_relaxed) << '\n'
        << "stat net.reply_batches "
        << reply_batches.load(std::memory_order_relaxed) << '\n'
        << "stat service.requests " << svc.requests << '\n'
        << "stat service.hits " << svc.hits << '\n'
        << "stat service.disk_hits " << svc.disk_hits << '\n'
        << "stat service.misses " << svc.misses << '\n'
        << "stat service.inflight_joins " << svc.inflight_joins << '\n'
        << "stat service.cancelled " << svc.cancelled << '\n'
        << "stat service.cancelled_midflight " << svc.cancelled_midflight
        << '\n'
        << "stat service.timeouts " << svc.timeouts << '\n'
        << "stat service.rejected " << svc.rejected << '\n'
        << "stat service.queue_depth " << svc.queue_depth << '\n';
    send_frame(c, FrameType::StatsReply, f.request_id, out.str());
  }

  void handle_frame(const std::shared_ptr<Conn>& c, Frame f,
                    std::string* batch) {
    switch (f.type) {
      case FrameType::Submit:
        handle_submit(c, std::move(f), batch);
        return;
      case FrameType::Poll:
        handle_poll(*c, f);
        return;
      case FrameType::Cancel:
        handle_cancel(*c, f);
        return;
      case FrameType::Stats:
        handle_stats(*c, f);
        return;
      default:
        break;
    }
    // Server-to-client frame types arriving at the server are a protocol
    // violation; answer structurally and keep the stream (framing is intact).
    frame_errors.fetch_add(1, std::memory_order_relaxed);
    trace_count("net.frame_errors", 1);
    send_error(*c, f.request_id,
               Error(Stage::Parse,
                     std::string("phoenix-protocol: unexpected frame type '") +
                         frame_type_name(f.type) + "' from client"));
  }

  void conn_loop(const std::shared_ptr<Conn>& c) {
    std::string buf;
    std::vector<char> chunk(64 * 1024);
    try {
      for (;;) {
        const std::size_t n = net::read_some(c->fd, chunk.data(), chunk.size());
        if (n == 0) break;  // EOF or shutdown
        bytes_in.fetch_add(n, std::memory_order_relaxed);
        trace_count("net.bytes_in", n);
        buf.append(chunk.data(), n);
        std::size_t off = 0;
        Frame f;
        std::size_t consumed = 0;
        // Warm replies for every frame in this chunk coalesce into one
        // batched write: a pipelined client's N-submit burst costs the
        // server one reply syscall, not N.
        std::string batch;
        std::size_t frames = 0;
        while (decode_frame(buf.data() + off, buf.size() - off,
                            opt.max_frame_payload, f,
                            consumed) == DecodeResult::Frame) {
          off += consumed;
          ++frames;
          handle_frame(c, std::move(f), &batch);
        }
        buf.erase(0, off);
        if (!batch.empty()) {
          if (frames > 1) {
            reply_batches.fetch_add(1, std::memory_order_relaxed);
            trace_count("net.reply_batches", 1);
          }
          std::lock_guard<std::mutex> lk(c->write_mu);
          net::write_all(c->fd, batch.data(), batch.size());
        }
      }
    } catch (const Error& e) {
      // Framing is lost (bad magic/version/length) or the read failed hard.
      // Best-effort structured goodbye, then drop the connection.
      if (e.stage() == Stage::Parse) {
        frame_errors.fetch_add(1, std::memory_order_relaxed);
        trace_count("net.frame_errors", 1);
      }
      try {
        send_error(*c, 0, e);
      } catch (...) {
      }
    } catch (...) {
    }

    // The peer can no longer receive results: cancel whatever is still in
    // flight so abandoned compiles abort mid-stage instead of burning
    // workers, then wait for the waiter threads to retire.
    {
      std::lock_guard<std::mutex> lk(c->tickets_mu);
      for (auto& [id, ticket] : c->tickets) ticket.cancel();
    }
    c->fd.shutdown_both();
    {
      std::lock_guard<std::mutex> lk(c->waiters_mu);
      for (auto& w : c->waiters) w.th.join();
      c->waiters.clear();
    }
    connections.fetch_sub(1, std::memory_order_relaxed);
    c->closed.store(true, std::memory_order_release);
  }

  void accept_loop(net::Fd& listener) {
    for (;;) {
      net::Fd fd = net::accept_conn(listener);
      if (!fd.valid()) return;  // listener shut down
      if (stopping.load(std::memory_order_acquire)) return;
      accepted.fetch_add(1, std::memory_order_relaxed);
      connections.fetch_add(1, std::memory_order_relaxed);
      trace_count("net.accepted", 1);
      auto c = std::make_shared<Conn>();
      c->fd = std::move(fd);
      std::lock_guard<std::mutex> lk(conns_mu);
      // Reap connections whose reader already finished.
      for (auto it = conns.begin(); it != conns.end();) {
        if ((*it)->closed.load(std::memory_order_acquire)) {
          (*it)->reader.join();
          it = conns.erase(it);
        } else {
          ++it;
        }
      }
      c->reader = std::thread([this, c] { conn_loop(c); });
      conns.push_back(std::move(c));
    }
  }

  ServerStats snapshot() const {
    ServerStats s;
    s.accepted = accepted.load(std::memory_order_relaxed);
    s.connections = connections.load(std::memory_order_relaxed);
    s.in_flight = in_flight.load(std::memory_order_relaxed);
    s.bytes_in = bytes_in.load(std::memory_order_relaxed);
    s.bytes_out = bytes_out.load(std::memory_order_relaxed);
    s.frame_errors = frame_errors.load(std::memory_order_relaxed);
    s.submits = submits.load(std::memory_order_relaxed);
    s.results = results.load(std::memory_order_relaxed);
    s.errors_sent = errors_sent.load(std::memory_order_relaxed);
    s.cancels = cancels.load(std::memory_order_relaxed);
    return s;
  }

  void stop() {
    if (stopping.exchange(true)) {
      // Another stop() already ran (or is running) the teardown below;
      // nothing is left to release here.
      return;
    }
    tcp_listener.shutdown_both();
    unix_listener.shutdown_both();
    tcp_listener.reset();
    unix_listener.reset();
    for (std::thread& t : acceptors) t.join();
    acceptors.clear();

    std::vector<std::shared_ptr<Conn>> snapshot_conns;
    {
      std::lock_guard<std::mutex> lk(conns_mu);
      snapshot_conns.swap(conns);
    }
    for (const auto& c : snapshot_conns) {
      {
        std::lock_guard<std::mutex> lk(c->tickets_mu);
        for (auto& [id, ticket] : c->tickets) ticket.cancel();
      }
      c->fd.shutdown_both();
    }
    for (const auto& c : snapshot_conns)
      if (c->reader.joinable()) c->reader.join();
  }
};

ServedServer::ServedServer(ServerOptions opt)
    : impl_(std::make_unique<Impl>(std::move(opt))) {}

ServedServer::~ServedServer() { stop(); }

void ServedServer::start() {
  Impl& s = *impl_;
  if (s.started)
    throw Error(Stage::Service, "phoenix_served: start() called twice");
  if (!s.opt.enable_tcp && s.opt.unix_path.empty())
    throw Error(Stage::Io,
                "phoenix_served: no listener configured (enable TCP or set a "
                "unix socket path)");
  if (s.opt.enable_tcp) {
    s.tcp_listener = net::listen_tcp(s.opt.tcp_host, s.opt.tcp_port);
    s.bound_port = net::local_port(s.tcp_listener);
  }
  if (!s.opt.unix_path.empty())
    s.unix_listener = net::listen_unix(s.opt.unix_path);
  s.started = true;
  if (s.tcp_listener.valid())
    s.acceptors.emplace_back([&s] { s.accept_loop(s.tcp_listener); });
  if (s.unix_listener.valid())
    s.acceptors.emplace_back([&s] { s.accept_loop(s.unix_listener); });
}

void ServedServer::stop() { impl_->stop(); }

std::uint16_t ServedServer::tcp_port() const { return impl_->bound_port; }

CompileService& ServedServer::service() { return impl_->service; }

ServerStats ServedServer::stats() const { return impl_->snapshot(); }

}  // namespace phoenix
