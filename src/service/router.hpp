#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "service/client.hpp"
#include "service/service.hpp"

namespace phoenix {

namespace detail {
struct RoutedSub;
}  // namespace detail

/// Fleet-routing counters (`router.*` trace siblings). All monotonic.
struct RouterStats {
  std::uint64_t routed = 0;    ///< submissions routed to an endpoint
  std::uint64_t reroutes = 0;  ///< routed past the first preference (fail-over)
  std::uint64_t probes = 0;    ///< down endpoints optimistically re-tried
  std::uint64_t retries = 0;   ///< submissions re-submitted after Io/Overloaded
};

/// Rendezvous (highest-random-weight) hashing over the fleet's endpoints.
///
/// Every compile fingerprint gets a deterministic PREFERENCE ORDER over the
/// endpoints: score(fp, endpoint) = Hash128(endpoint label, fp), endpoints
/// sorted by descending score. Routing picks the first healthy entry, which
/// gives the two properties the serving tier needs:
///
///  * cache affinity — a fingerprint always lands on the same daemon (whose
///    LRU and disk tier are hot for it), from every client process, because
///    the score depends only on the fingerprint and the endpoint's label;
///  * minimal key movement — adding an endpoint moves exactly the keys
///    whose new top score belongs to it (~1/(N+1) of the space) and nothing
///    else; removing one moves exactly its own keys, which fail over to
///    their second preference. No ring positions to rebalance, no virtual
///    nodes to tune at fleet sizes this small (rendezvous is O(N) per
///    route, N = daemons, not hash-ring O(log N) — irrelevant below
///    hundreds of endpoints).
///
/// Health bits gate routing only: marking an endpoint down never changes
/// any other key's assignment (fail-over is deterministic: each displaced
/// key goes to its own next preference), and marking it back up restores
/// the original assignment exactly. Thread-safe.
class RendezvousRouter {
 public:
  explicit RendezvousRouter(std::vector<Endpoint> endpoints);

  std::size_t size() const;
  const Endpoint& endpoint(std::size_t i) const;

  /// The rendezvous score of one (fingerprint, endpoint) pair — exposed so
  /// tests can cross-check routing decisions.
  static std::uint64_t score(const Digest128& fp, const std::string& label);

  /// Every endpoint index, best first (a permutation of [0, size())).
  /// Deterministic across processes and platforms; ignores health.
  std::vector<std::size_t> preference(const Digest128& fp) const;

  /// First healthy endpoint in preference order (the overall first when
  /// every endpoint is down — the caller is about to fail anyway and the
  /// choice keeps routing deterministic).
  std::size_t route(const Digest128& fp) const;

  void set_healthy(std::size_t i, bool up);
  bool healthy(std::size_t i) const;

  /// Fleet membership changes. Indices shift like vector erase/insert;
  /// callers holding indices must re-resolve them.
  void add_endpoint(Endpoint e);
  void remove_endpoint(std::size_t i);

 private:
  mutable std::mutex mu_;
  std::vector<Endpoint> eps_;
  std::vector<char> up_;
};

struct ShardedClientOptions {
  /// Per-endpoint transport (pool size, connect retry). The pool's own
  /// retry should usually stay OFF under the sharded client: a fast connect
  /// failure lets the router fail over to the next preference immediately,
  /// and the sharded `retry` below supplies the bounded backoff.
  PooledClientOptions pool;
  /// Bounded retry-with-backoff for whole submissions: a submission that
  /// fails with Stage::Io (endpoint died mid-flight, nothing reachable) or
  /// kind Overloaded is re-routed and re-submitted up to `limit` extra
  /// times. Safe because compiles are deterministic and content-addressed —
  /// a duplicate submission is at worst a cache hit on another daemon.
  /// Off by default so tests observe every failure exactly once.
  RetryOptions retry;
  /// A down endpoint is optimistically probed again once it has been down
  /// this long (first fingerprint that prefers it reconnects; on failure
  /// the probation restarts).
  double probe_down_ms = 100.0;
};

/// A compile request prepared once for repeated submission through the
/// fleet: the routing fingerprint and the serialized Submit payload are
/// computed up front, so every (re)submission — including transparent
/// retry resubmission after a fail-over — costs one frame append instead
/// of a fingerprint + serialization pass. Immutable and cheap to copy (the
/// payload bytes are shared). Build with ShardedClient::prepare().
struct PreparedRequest {
  Digest128 fingerprint;
  int priority = 0;
  std::shared_ptr<const std::string> payload;  ///< Submit frame payload
};

/// Fingerprint-sharded fleet client: routes every compile request to one of
/// N phoenix_served daemons by rendezvous hashing on the request's content
/// fingerprint (computed client-side with the same fingerprint_request the
/// daemons use), over a lazily-connected PooledClient per endpoint.
///
///  * Affinity: one fingerprint, one daemon — every client in the fleet
///    agrees, so each daemon's LRU + disk cache serves a stable shard of
///    the keyspace and warm hits never depend on which client asks.
///  * Fail-over: an endpoint that refuses connections or drops mid-flight
///    is marked down and the submission deterministically re-routes to the
///    fingerprint's next preference (bounded by `retry`); the daemon is
///    probed again after `probe_down_ms`.
///  * Zero lost requests: Handle::get() resolves every submission to a
///    Result payload or a structured Error; with retry enabled, transport
///    failures are transparently re-submitted (counted in
///    router_stats().retries) before surfacing.
///
/// Thread-safe; handles may be awaited from any thread but must not
/// outlive the client.
class ShardedClient {
 public:
  explicit ShardedClient(std::vector<Endpoint> endpoints,
                         ShardedClientOptions opt = {});
  ~ShardedClient();

  ShardedClient(const ShardedClient&) = delete;
  ShardedClient& operator=(const ShardedClient&) = delete;

  class Handle {
   public:
    Handle() = default;
    bool valid() const { return r_ != nullptr; }
    /// The fingerprint the request was routed by.
    const Digest128& fingerprint() const;
    /// Endpoint index of the current (latest) submission attempt.
    std::size_t endpoint_index() const;
    /// Submission attempts so far (1 = no retries were needed).
    std::size_t attempts() const;
    /// Block for the SubmitAck of the current attempt (re-routing on
    /// transport failure per the retry policy).
    AckInfo ack();
    /// Block for the terminal Result payload. Io/Overloaded failures are
    /// re-routed and re-submitted up to the retry limit, then rethrown;
    /// other server errors (compile failures, deadlines, cancels) are
    /// rethrown immediately.
    std::string get();
    /// Cancel the current attempt on its owning connection.
    bool cancel();

   private:
    friend class ShardedClient;
    explicit Handle(std::shared_ptr<detail::RoutedSub> r) : r_(std::move(r)) {}
    std::shared_ptr<detail::RoutedSub> r_;
  };

  /// Fingerprint + serialize once for repeated submission (see
  /// PreparedRequest).
  PreparedRequest prepare(const CompileRequest& req, int priority = 0) const;

  /// Route by fingerprint and submit (pipelined: does not wait for any
  /// reply). Throws Error(Stage::Io) when no endpoint is reachable and the
  /// retry budget is exhausted.
  Handle submit(PreparedRequest req);
  Handle submit(const CompileRequest& req, int priority = 0);

  /// Route the whole burst, then submit one batched write per endpoint
  /// (requests sharing a shard ride one syscall). Handles come back in
  /// request order.
  std::vector<Handle> submit_burst(std::vector<PreparedRequest> reqs);
  std::vector<Handle> submit_burst(const std::vector<CompileRequest>& reqs,
                                   int priority = 0);

  /// Convenience: submit + get.
  std::string compile_raw(const CompileRequest& req, int priority = 0);

  std::size_t num_endpoints() const;
  const Endpoint& endpoint(std::size_t i) const;
  RendezvousRouter& router();

  /// One endpoint's `net.*`/`service.*` counters (throws Error(Stage::Io)
  /// when it is unreachable).
  std::vector<std::pair<std::string, std::uint64_t>> server_stats(
      std::size_t endpoint_index);

  RouterStats router_stats() const;
  /// Transport counters aggregated across the per-endpoint pools, with the
  /// sharded retries merged into `.retries`.
  ClientStats client_stats() const;

 private:
  friend struct detail::RoutedSub;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace phoenix
