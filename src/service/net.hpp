#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace phoenix::net {

/// Thin POSIX socket layer under the phoenix_served daemon and its clients:
/// blocking stream sockets only (TCP with TCP_NODELAY, and Unix-domain
/// sockets for local clients), failures surfaced as phoenix::Error
/// (Stage::Io). No event loop — the server runs thread-per-connection,
/// which is the right shape for a compile service whose unit of work is
/// milliseconds of CPU, not microseconds of I/O.

/// RAII file descriptor. Move-only; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() { reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release();
  void reset(int fd = -1);
  /// shutdown(SHUT_RDWR): unblocks any thread parked in read/write on this
  /// socket without racing the close of the descriptor number.
  void shutdown_both() const;

 private:
  int fd_ = -1;
};

/// Listening TCP socket on `host:port` (SO_REUSEADDR; port 0 picks an
/// ephemeral port — read it back with local_port).
Fd listen_tcp(const std::string& host, std::uint16_t port, int backlog = 64);

/// Listening Unix-domain socket at `path` (an existing stale socket file is
/// unlinked first).
Fd listen_unix(const std::string& path, int backlog = 64);

/// Blocking accept. Returns an invalid Fd when the listener was shut down
/// (or on transient accept errors after shutdown was requested).
Fd accept_conn(const Fd& listener);

Fd connect_tcp(const std::string& host, std::uint16_t port);
Fd connect_unix(const std::string& path);

/// Port a TCP listener actually bound (for port 0).
std::uint16_t local_port(const Fd& socket);

/// Read exactly `size` bytes. Returns false on clean EOF before the first
/// byte; throws phoenix::Error (Stage::Io) on mid-message EOF or I/O errors.
bool read_exact(const Fd& fd, void* buf, std::size_t size);

/// Read at most `size` bytes (one read() call, EINTR-retried). Returns 0 on
/// EOF or after shutdown; throws on hard errors.
std::size_t read_some(const Fd& fd, void* buf, std::size_t size);

/// Write all of `size` bytes; throws phoenix::Error (Stage::Io) on failure
/// (EPIPE included — callers treat it as "peer went away").
void write_all(const Fd& fd, const void* buf, std::size_t size);

}  // namespace phoenix::net
