#include "service/protocol.hpp"

#include <bit>
#include <cctype>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "phoenix/serialize.hpp"

namespace phoenix {

namespace {

[[noreturn]] void fail(const std::string& detail) {
  throw Error(Stage::Parse, "phoenix-protocol: " + detail);
}

void put_u16(std::string& out, std::uint16_t v) {
  out += static_cast<char>(v & 0xff);
  out += static_cast<char>((v >> 8) & 0xff);
}

void put_u32(std::string& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v & 0xffff));
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
}

void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint16_t get_u16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const unsigned char* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

/// Same token-stream reader idiom as phoenix/serialize.cpp.
struct Reader {
  std::istringstream in;
  explicit Reader(const std::string& bytes) : in(bytes) {}

  std::string token(const char* what) {
    std::string t;
    if (!(in >> t))
      fail(std::string("unexpected end of input, wanted ") + what);
    return t;
  }
  void expect(const char* literal) {
    const std::string t = token(literal);
    if (t != literal)
      fail("expected '" + std::string(literal) + "', got '" + t + "'");
  }
  std::uint64_t u64(const char* what) {
    const std::string t = token(what);
    std::uint64_t v = 0;
    if (t.empty()) fail("malformed integer for " + std::string(what));
    for (const char c : t) {
      if (!std::isdigit(static_cast<unsigned char>(c)))
        fail("malformed integer for " + std::string(what) + ": '" + t + "'");
      v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return v;
  }
  double dbl(const char* what) {
    const std::string t = token(what);
    if (t.size() != 16) fail("malformed u64 hex for " + std::string(what));
    std::uint64_t v = 0;
    for (const char c : t) {
      int n = -1;
      if (c >= '0' && c <= '9') n = c - '0';
      else if (c >= 'a' && c <= 'f') n = c - 'a' + 10;
      if (n < 0) fail("malformed u64 hex for " + std::string(what));
      v = (v << 4) | static_cast<std::uint64_t>(n);
    }
    return std::bit_cast<double>(v);
  }
  bool boolean(const char* what) {
    const std::uint64_t v = u64(what);
    if (v > 1) fail("malformed bool for " + std::string(what));
    return v == 1;
  }
  void expect_exhausted() {
    std::string trailing;
    if (in >> trailing)
      fail("trailing bytes after document (starting with '" + trailing +
           "')");
  }
};

template <typename Enum>
Enum checked_enum(std::uint64_t v, Enum max, const char* what) {
  if (v > static_cast<std::uint64_t>(max))
    fail(std::string("out-of-range ") + what + " ordinal " +
         std::to_string(v));
  return static_cast<Enum>(v);
}

// v2 added the O4 `resynth` ordinal to the options line. Schema tags are
// exact-match: a v1 peer's request is rejected with a clear "stale schema"
// error instead of silently compiling at the wrong tier.
inline constexpr int kCompileRequestSchemaVersion = 2;

}  // namespace

const char* frame_type_name(FrameType t) {
  switch (t) {
    case FrameType::Submit: return "submit";
    case FrameType::SubmitAck: return "submit-ack";
    case FrameType::Result: return "result";
    case FrameType::ErrorReply: return "error";
    case FrameType::Poll: return "poll";
    case FrameType::Status: return "status";
    case FrameType::Cancel: return "cancel";
    case FrameType::CancelAck: return "cancel-ack";
    case FrameType::Stats: return "stats";
    case FrameType::StatsReply: return "stats-reply";
  }
  return "unknown";
}

std::string encode_frame(const Frame& f) {
  std::string out;
  append_frame(out, f.type, f.request_id, f.payload);
  return out;
}

void append_frame(std::string& out, FrameType type, std::uint64_t request_id,
                  const std::string& payload) {
  out.reserve(out.size() + kFrameHeaderBytes + payload.size());
  put_u32(out, kFrameMagic);
  put_u16(out, kProtocolVersion);
  put_u16(out, static_cast<std::uint16_t>(type));
  put_u64(out, request_id);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out += payload;
}

DecodeResult decode_frame(const char* data, std::size_t size,
                          std::size_t max_payload, Frame& out,
                          std::size_t& consumed) {
  consumed = 0;
  if (size < kFrameHeaderBytes) return DecodeResult::NeedMore;
  const auto* p = reinterpret_cast<const unsigned char*>(data);
  if (get_u32(p) != kFrameMagic) fail("bad frame magic");
  const std::uint16_t version = get_u16(p + 4);
  if (version != kProtocolVersion)
    fail("protocol version " + std::to_string(version) +
         " (this build speaks " + std::to_string(kProtocolVersion) + ")");
  const std::uint16_t type = get_u16(p + 6);
  if (type < static_cast<std::uint16_t>(FrameType::Submit) ||
      type > static_cast<std::uint16_t>(FrameType::StatsReply))
    fail("unknown frame type " + std::to_string(type));
  const std::uint64_t request_id = get_u64(p + 8);
  const std::uint32_t payload_len = get_u32(p + 16);
  if (payload_len > max_payload || payload_len > kMaxFramePayload)
    fail("frame payload of " + std::to_string(payload_len) +
         " bytes exceeds the limit");
  if (size - kFrameHeaderBytes < payload_len) return DecodeResult::NeedMore;
  out.type = static_cast<FrameType>(type);
  out.request_id = request_id;
  out.payload.assign(data + kFrameHeaderBytes, payload_len);
  consumed = kFrameHeaderBytes + payload_len;
  return DecodeResult::Frame;
}

std::string compile_request_to_bytes(const CompileRequest& req, int priority) {
  std::ostringstream out;
  out << "phoenix-compile-request v" << kCompileRequestSchemaVersion << '\n';
  out << "qubits " << req.num_qubits << " terms " << req.terms.size() << '\n';
  for (const PauliTerm& t : req.terms)
    out << "t " << wire_escape(t.string.to_string()) << ' '
        << wire_double_bits(t.coeff) << '\n';
  const PhoenixOptions& o = req.options;
  out << "options " << static_cast<unsigned>(o.isa) << ' '
      << static_cast<unsigned>(o.peephole) << ' '
      << static_cast<unsigned>(o.peephole_engine) << ' '
      << static_cast<unsigned>(o.resynth) << ' '
      << static_cast<unsigned>(o.validation.level) << ' ' << o.lookahead
      << ' ' << o.simplify.num_starts << ' ' << o.simplify.beam_width << '\n';
  const Graph* g = req.coupling_graph();
  if (o.hardware_aware && g != nullptr) {
    out << "coupling " << g->num_vertices() << ' ' << g->num_edges() << '\n';
    for (const auto& [a, b] : g->edges()) out << "e " << a << ' ' << b << '\n';
  } else {
    out << "coupling 0 0\n";
  }
  out << "deadline " << wire_double_bits(req.deadline_ms) << " priority "
      << wire_double_bits(static_cast<double>(priority)) << '\n';
  out << "end\n";
  return out.str();
}

CompileRequest compile_request_from_bytes(const std::string& bytes,
                                          int& priority) {
  Reader r(bytes);
  r.expect("phoenix-compile-request");
  const std::string version = r.token("schema version");
  const std::string want = "v" + std::to_string(kCompileRequestSchemaVersion);
  if (version != want)
    fail("stale or unknown request schema tag '" + version +
         "' (this build reads " + want + ")");

  CompileRequest req;
  r.expect("qubits");
  req.num_qubits = static_cast<std::size_t>(r.u64("register size"));
  r.expect("terms");
  const std::uint64_t nterms = r.u64("term count");
  req.terms.reserve(static_cast<std::size_t>(nterms));
  for (std::uint64_t i = 0; i < nterms; ++i) {
    r.expect("t");
    const std::string label = wire_unescape(r.token("term label"));
    const double coeff = r.dbl("term coeff");
    try {
      req.terms.emplace_back(label, coeff);
    } catch (const std::exception& e) {
      fail(std::string("bad Pauli label in request: ") + e.what());
    }
    if (req.terms.back().string.num_qubits() != req.num_qubits)
      fail("term register size mismatch");
  }

  r.expect("options");
  PhoenixOptions& o = req.options;
  o.isa = checked_enum(r.u64("isa"), TwoQubitIsa::Su4, "isa");
  o.peephole =
      checked_enum(r.u64("peephole"), PeepholeLevel::O3, "peephole level");
  o.peephole_engine = checked_enum(r.u64("peephole engine"),
                                   PeepholeEngine::Legacy, "peephole engine");
  o.resynth =
      checked_enum(r.u64("resynth"), ResynthLevel::Routed, "resynth level");
  o.validation.level = checked_enum(r.u64("validation"),
                                    ValidationLevel::Paranoid, "validation");
  o.lookahead = static_cast<std::size_t>(r.u64("lookahead"));
  o.simplify.num_starts = static_cast<std::size_t>(r.u64("num_starts"));
  o.simplify.beam_width = static_cast<std::size_t>(r.u64("beam_width"));
  if (o.simplify.num_starts == 0 || o.simplify.beam_width == 0)
    fail("simplify search knobs must be >= 1");

  r.expect("coupling");
  const std::uint64_t nvert = r.u64("coupling vertices");
  const std::uint64_t nedge = r.u64("coupling edges");
  if (nvert > 0) {
    auto graph = std::make_shared<Graph>(static_cast<std::size_t>(nvert));
    for (std::uint64_t i = 0; i < nedge; ++i) {
      r.expect("e");
      const std::uint64_t a = r.u64("edge endpoint");
      const std::uint64_t b = r.u64("edge endpoint");
      if (a >= nvert || b >= nvert || a == b) fail("bad coupling edge");
      try {
        graph->add_edge(static_cast<std::size_t>(a),
                        static_cast<std::size_t>(b));
      } catch (const std::exception& e) {
        fail(std::string("bad coupling edge: ") + e.what());
      }
    }
    req.coupling = std::move(graph);
    o.hardware_aware = true;
  } else if (nedge != 0) {
    fail("coupling edge count without vertices");
  }

  r.expect("deadline");
  req.deadline_ms = r.dbl("deadline");
  r.expect("priority");
  const double prio = r.dbl("priority");
  if (!(prio >= -2147483648.0 && prio <= 2147483647.0) ||
      prio != static_cast<double>(static_cast<int>(prio)))
    fail("priority out of range");
  priority = static_cast<int>(prio);
  r.expect("end");
  r.expect_exhausted();
  return req;
}

std::string error_to_payload(const Error& e) {
  std::ostringstream out;
  out << "err " << static_cast<unsigned>(e.kind()) << ' '
      << static_cast<unsigned>(e.stage()) << ' ' << wire_escape(e.detail());
  return out.str();
}

Error error_from_payload(const std::string& payload) {
  Reader r(payload);
  r.expect("err");
  const std::uint64_t kind = r.u64("error kind");
  const std::uint64_t stage = r.u64("error stage");
  const std::string detail = wire_unescape(r.token("error detail"));
  const Error::Kind k =
      kind <= static_cast<std::uint64_t>(Error::Kind::Overloaded)
          ? static_cast<Error::Kind>(kind)
          : Error::Kind::Failed;
  const Stage s = stage <= static_cast<std::uint64_t>(Stage::Service)
                      ? static_cast<Stage>(stage)
                      : Stage::Service;
  return Error(k, s, detail);
}

}  // namespace phoenix
