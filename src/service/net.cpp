#include "service/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace phoenix::net {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw Error(Stage::Io, "net: " + what + ": " + std::strerror(errno));
}

}  // namespace

Fd& Fd::operator=(Fd&& o) noexcept {
  if (this != &o) {
    reset(o.fd_);
    o.fd_ = -1;
  }
  return *this;
}

int Fd::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

void Fd::shutdown_both() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Fd listen_tcp(const std::string& host, std::uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) fail("socket");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw Error(Stage::Io, "net: bad listen address '" + host + "'");
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
    fail("bind " + host + ":" + std::to_string(port));
  if (::listen(fd.get(), backlog) != 0) fail("listen");
  return fd;
}

Fd listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path)
    throw Error(Stage::Io, "net: unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) fail("socket");
  ::unlink(path.c_str());  // stale socket file from a previous daemon
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
    fail("bind " + path);
  if (::listen(fd.get(), backlog) != 0) fail("listen");
  return fd;
}

Fd accept_conn(const Fd& listener) {
  for (;;) {
    const int fd = ::accept(listener.get(), nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      // Harmless on Unix-domain sockets (fails silently); essential for
      // small request/response frames over TCP.
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return Fd(fd);
    }
    if (errno == EINTR) continue;
    return Fd();  // listener shut down or hard error: caller stops accepting
  }
}

Fd connect_tcp(const std::string& host, std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) fail("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw Error(Stage::Io, "net: bad connect address '" + host + "'");
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0)
    fail("connect " + host + ":" + std::to_string(port));
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

Fd connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path)
    throw Error(Stage::Io, "net: unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) fail("socket");
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0)
    fail("connect " + path);
  return fd;
}

std::uint16_t local_port(const Fd& socket) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(socket.get(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0)
    fail("getsockname");
  return ntohs(addr.sin_port);
}

bool read_exact(const Fd& fd, void* buf, std::size_t size) {
  char* p = static_cast<char*>(buf);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd.get(), p + got, size - got);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF between messages
      throw Error(Stage::Io, "net: connection closed mid-message (" +
                                 std::to_string(got) + "/" +
                                 std::to_string(size) + " bytes)");
    }
    if (errno == EINTR) continue;
    fail("read");
  }
  return true;
}

std::size_t read_some(const Fd& fd, void* buf, std::size_t size) {
  for (;;) {
    const ssize_t n = ::read(fd.get(), buf, size);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) return 0;
    fail("read");
  }
}

void write_all(const Fd& fd, const void* buf, std::size_t size) {
  const char* p = static_cast<const char*>(buf);
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd.get(), p + sent, size - sent, MSG_NOSIGNAL);
    if (n >= 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    fail("write");
  }
}

}  // namespace phoenix::net
