#include "service/client.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "common/trace.hpp"

namespace phoenix {

namespace {

[[noreturn]] void fail(const std::string& detail) {
  throw Error(Stage::Parse, "phoenix-client: " + detail);
}

void backoff_sleep(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

/// Connect with the PR 6 bounded-retry idiom: any Stage::Io failure (refused,
/// unreachable, daemon restarting) is retried `retry.limit` extra times.
net::Fd connect_with_retry(const std::function<net::Fd()>& connect,
                           const RetryOptions& retry,
                           std::uint64_t* retries_out) {
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      return connect();
    } catch (const Error& e) {
      if (e.stage() != Stage::Io || attempt >= retry.limit) throw;
      if (retries_out != nullptr) ++*retries_out;
      trace_count("client.connect_retries", 1);
      backoff_sleep(retry.backoff_ms);
    }
  }
}

AckInfo parse_ack_payload(const std::string& payload, std::uint64_t id) {
  AckInfo ack;
  ack.request_id = id;
  std::istringstream in(payload);
  std::string tag;
  int hit = -1;
  if (!(in >> tag >> ack.fingerprint_hex >> hit) || tag != "ack" || hit < 0 ||
      hit > 1)
    fail("malformed submit ack '" + payload + "'");
  ack.hit = hit == 1;
  return ack;
}

std::vector<std::pair<std::string, std::uint64_t>> parse_stats_payload(
    const std::string& payload) {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  std::istringstream in(payload);
  std::string tag, name;
  std::uint64_t value = 0;
  while (in >> tag) {
    if (tag != "stat" || !(in >> name >> value))
      fail("malformed stats reply line");
    out.emplace_back(name, value);
  }
  return out;
}

bool parse_flag_payload(const std::string& payload, const char* tag_want) {
  std::istringstream in(payload);
  std::string tag;
  int flag = -1;
  if (!(in >> tag >> flag) || tag != tag_want || flag < 0 || flag > 1)
    fail("malformed " + std::string(tag_want) + " reply '" + payload + "'");
  return flag == 1;
}

}  // namespace

// --- Endpoint ---------------------------------------------------------------

Endpoint Endpoint::tcp(std::string host, std::uint16_t port) {
  Endpoint e;
  e.host = std::move(host);
  e.port = port;
  return e;
}

Endpoint Endpoint::uds(std::string path) {
  Endpoint e;
  e.unix_path = std::move(path);
  return e;
}

Endpoint Endpoint::parse(const std::string& spec) {
  if (spec.rfind("unix:", 0) == 0) {
    const std::string path = spec.substr(5);
    if (path.empty())
      throw Error(Stage::Parse, "phoenix-client: empty unix socket path in "
                                "endpoint spec '" + spec + "'");
    return uds(path);
  }
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 >= spec.size())
    throw Error(Stage::Parse,
                "phoenix-client: endpoint spec '" + spec +
                    "' is neither 'host:port' nor 'unix:<path>'");
  const std::string host = colon == 0 ? "127.0.0.1" : spec.substr(0, colon);
  char* end = nullptr;
  const unsigned long port = std::strtoul(spec.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || port == 0 || port > 65535)
    throw Error(Stage::Parse, "phoenix-client: bad port in endpoint spec '" +
                                  spec + "'");
  return tcp(host, static_cast<std::uint16_t>(port));
}

std::string Endpoint::label() const {
  if (is_unix()) return "unix:" + unix_path;
  return host + ":" + std::to_string(port);
}

// --- ServedClient -----------------------------------------------------------

ServedClient ServedClient::connect_tcp(const std::string& host,
                                       std::uint16_t port,
                                       const RetryOptions& retry) {
  std::uint64_t retries = 0;
  net::Fd fd = connect_with_retry(
      [&] { return net::connect_tcp(host, port); }, retry, &retries);
  ServedClient c(std::move(fd));
  c.retry_ = retry;
  c.stats_.connect_retries = retries;
  ++c.stats_.conns_opened;
  return c;
}

ServedClient ServedClient::connect_unix(const std::string& path,
                                        const RetryOptions& retry) {
  std::uint64_t retries = 0;
  net::Fd fd = connect_with_retry([&] { return net::connect_unix(path); },
                                  retry, &retries);
  ServedClient c(std::move(fd));
  c.retry_ = retry;
  c.stats_.connect_retries = retries;
  ++c.stats_.conns_opened;
  return c;
}

void ServedClient::send_bytes(const std::string& bytes) {
  flush();
  net::write_all(fd_, bytes.data(), bytes.size());
}

void ServedClient::flush() {
  if (out_buf_.empty()) return;
  if (out_frames_ > 1) {
    ++stats_.burst_writes;
    stats_.burst_frames += out_frames_;
    trace_count("client.burst_writes", 1);
  }
  net::write_all(fd_, out_buf_.data(), out_buf_.size());
  out_buf_.clear();
  out_frames_ = 0;
}

Frame ServedClient::read_frame() {
  flush();  // never block reading replies to frames still sitting in the buffer
  Frame f;
  std::size_t consumed = 0;
  char chunk[64 * 1024];
  for (;;) {
    if (decode_frame(buf_.data(), buf_.size(), kMaxFramePayload, f,
                     consumed) == DecodeResult::Frame) {
      buf_.erase(0, consumed);
      return f;
    }
    const std::size_t n = net::read_some(fd_, chunk, sizeof chunk);
    if (n == 0)
      throw Error(Stage::Io, "phoenix-client: server closed the connection");
    buf_.append(chunk, n);
  }
}

Frame ServedClient::wait_for(FrameType a, FrameType b,
                             std::uint64_t request_id) {
  for (;;) {
    Frame f = read_frame();
    if (f.request_id == request_id && (f.type == a || f.type == b)) return f;
    if (f.type == FrameType::Result || f.type == FrameType::ErrorReply) {
      mailbox_.emplace(f.request_id, std::move(f));
      continue;
    }
    if (f.type == FrameType::SubmitAck) {
      acks_.emplace(f.request_id, std::move(f));
      continue;
    }
    fail(std::string("unexpected ") + frame_type_name(f.type) +
         " frame for request " + std::to_string(f.request_id) +
         " while waiting on request " + std::to_string(request_id));
  }
}

ServedClient::Pending ServedClient::submit_async(const CompileRequest& req,
                                                 int priority) {
  Frame f;
  f.type = FrameType::Submit;
  f.request_id = next_id_++;
  f.payload = compile_request_to_bytes(req, priority);
  out_buf_ += encode_frame(f);
  ++out_frames_;
  ++stats_.submits;
  trace_count("client.submits", 1);
  return Pending(this, f.request_id);
}

ServedClient::Ack ServedClient::take_ack(std::uint64_t request_id) {
  Frame f;
  const auto parked = acks_.find(request_id);
  if (parked != acks_.end()) {
    f = std::move(parked->second);
    acks_.erase(parked);
  } else {
    // A rejected submission answers with ErrorReply instead of an ack; it
    // may already be parked in the terminal mailbox.
    const auto term = mailbox_.find(request_id);
    if (term != mailbox_.end() && term->second.type == FrameType::ErrorReply) {
      f = std::move(term->second);
      mailbox_.erase(term);
    } else {
      f = wait_for(FrameType::SubmitAck, FrameType::ErrorReply, request_id);
    }
  }
  if (f.type == FrameType::ErrorReply) {
    ++stats_.error_replies;
    throw error_from_payload(f.payload);
  }
  return parse_ack_payload(f.payload, request_id);
}

ServedClient::Ack ServedClient::Pending::ack() {
  return owner_->take_ack(id_);
}

std::string ServedClient::Pending::get() { return owner_->await_raw(id_); }

ServedClient::Ack ServedClient::submit_once(const CompileRequest& req,
                                            int priority) {
  Pending p = submit_async(req, priority);
  flush();
  return take_ack(p.request_id());
}

ServedClient::Ack ServedClient::submit(const CompileRequest& req,
                                       int priority) {
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      return submit_once(req, priority);
    } catch (const Error& e) {
      if (e.kind() != Error::Kind::Overloaded || attempt >= retry_.limit)
        throw;
      ++stats_.retries;
      trace_count("client.retries", 1);
      backoff_sleep(retry_.backoff_ms);
    }
  }
}

std::string ServedClient::await_raw(std::uint64_t request_id) {
  Frame f;
  const auto it = mailbox_.find(request_id);
  if (it != mailbox_.end()) {
    f = std::move(it->second);
    mailbox_.erase(it);
  } else {
    f = wait_for(FrameType::Result, FrameType::ErrorReply, request_id);
  }
  if (f.type == FrameType::ErrorReply) {
    ++stats_.error_replies;
    throw error_from_payload(f.payload);
  }
  ++stats_.results;
  return std::move(f.payload);
}

bool ServedClient::poll(std::uint64_t request_id, bool* known) {
  Frame f;
  f.type = FrameType::Poll;
  f.request_id = request_id;
  send_bytes(encode_frame(f));
  const Frame reply =
      wait_for(FrameType::Status, FrameType::Status, request_id);
  std::istringstream in(reply.payload);
  std::string tag;
  int ready = -1, tracked = -1;
  if (!(in >> tag >> ready >> tracked) || tag != "status" || ready < 0 ||
      ready > 1 || tracked < 0 || tracked > 1)
    fail("malformed status '" + reply.payload + "'");
  if (known != nullptr) *known = tracked == 1;
  return ready == 1;
}

bool ServedClient::cancel(std::uint64_t request_id) {
  Frame f;
  f.type = FrameType::Cancel;
  f.request_id = request_id;
  send_bytes(encode_frame(f));
  const Frame reply =
      wait_for(FrameType::CancelAck, FrameType::CancelAck, request_id);
  return parse_flag_payload(reply.payload, "cancelled");
}

std::vector<std::pair<std::string, std::uint64_t>> ServedClient::stats() {
  Frame f;
  f.type = FrameType::Stats;
  f.request_id = next_id_++;
  send_bytes(encode_frame(f));
  const Frame reply =
      wait_for(FrameType::StatsReply, FrameType::StatsReply, f.request_id);
  return parse_stats_payload(reply.payload);
}

// --- PooledClient -----------------------------------------------------------

namespace detail {

/// Future state for one pooled submission. The reader thread fulfills it;
/// any number of caller threads may block on `cv`.
struct PoolPending {
  std::mutex mu;
  std::condition_variable cv;
  std::uint64_t request_id = 0;
  std::weak_ptr<PoolConn> conn;  ///< for Handle::cancel()
  bool have_ack = false;
  AckInfo ack;
  bool have_terminal = false;
  std::string payload;            ///< Result payload (moved out by get())
  std::unique_ptr<Error> error;   ///< terminal error, server or transport
};

/// Blocking slot for one synchronous round-trip (Cancel/Stats).
struct SyncWait {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Frame reply;
  std::unique_ptr<Error> error;
};

/// One pooled connection: a socket, its reader thread, and the in-flight
/// futures it owns. Dead connections are replaced lazily at the next
/// submit that round-robins onto their slot.
struct PoolConn {
  net::Fd fd;
  std::thread reader;
  std::mutex write_mu;
  std::mutex mu;  ///< guards pending/sync/next_id
  std::unordered_map<std::uint64_t, std::shared_ptr<PoolPending>> pending;
  std::unordered_map<std::uint64_t, std::shared_ptr<SyncWait>> sync;
  std::uint64_t next_id = 1;
  std::atomic<bool> dead{false};
};

}  // namespace detail

using detail::PoolConn;
using detail::PoolPending;
using detail::SyncWait;

struct PooledClient::Impl {
  Endpoint ep;
  PooledClientOptions opt;

  std::mutex pool_mu;
  std::vector<std::shared_ptr<PoolConn>> conns;  ///< fixed slots, lazily filled
  std::uint64_t rr = 0;

  std::atomic<std::uint64_t> submits{0};
  std::atomic<std::uint64_t> results{0};
  std::atomic<std::uint64_t> error_replies{0};
  std::atomic<std::uint64_t> connect_retries{0};
  std::atomic<std::uint64_t> conns_opened{0};
  std::atomic<std::uint64_t> io_errors{0};
  std::atomic<std::uint64_t> burst_writes{0};
  std::atomic<std::uint64_t> burst_frames{0};

  Impl(Endpoint e, PooledClientOptions o) : ep(std::move(e)), opt(o) {
    conns.resize(opt.connections == 0 ? 1 : opt.connections);
  }

  void fail_pending(PoolPending& p, const Error& e) {
    std::lock_guard<std::mutex> lk(p.mu);
    if (!p.have_terminal) {
      p.have_terminal = true;
      p.error = std::make_unique<Error>(e);
    }
    p.cv.notify_all();
  }

  void dispatch(const std::shared_ptr<PoolConn>& c, Frame f) {
    if (f.type == FrameType::Status || f.type == FrameType::CancelAck ||
        f.type == FrameType::StatsReply) {
      std::shared_ptr<SyncWait> w;
      {
        std::lock_guard<std::mutex> lk(c->mu);
        const auto it = c->sync.find(f.request_id);
        if (it == c->sync.end()) return;  // stale round-trip; drop
        w = it->second;
        c->sync.erase(it);
      }
      std::lock_guard<std::mutex> lk(w->mu);
      w->reply = std::move(f);
      w->done = true;
      w->cv.notify_all();
      return;
    }

    std::shared_ptr<PoolPending> p;
    {
      std::lock_guard<std::mutex> lk(c->mu);
      const auto it = c->pending.find(f.request_id);
      if (it == c->pending.end()) return;  // e.g. server goodbye with id 0
      p = it->second;
      if (f.type != FrameType::SubmitAck) c->pending.erase(it);
    }
    std::lock_guard<std::mutex> lk(p->mu);
    switch (f.type) {
      case FrameType::SubmitAck:
        try {
          p->ack = parse_ack_payload(f.payload, f.request_id);
          p->have_ack = true;
        } catch (const Error& e) {
          p->have_terminal = true;
          p->error = std::make_unique<Error>(e);
        }
        break;
      case FrameType::Result:
        p->payload = std::move(f.payload);
        p->have_terminal = true;
        results.fetch_add(1, std::memory_order_relaxed);
        break;
      case FrameType::ErrorReply:
        p->have_terminal = true;
        p->error = std::make_unique<Error>(error_from_payload(f.payload));
        error_replies.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        p->have_terminal = true;
        p->error = std::make_unique<Error>(
            Stage::Parse, std::string("phoenix-client: unexpected ") +
                              frame_type_name(f.type) + " frame");
        break;
    }
    p->cv.notify_all();
  }

  void reader_loop(const std::shared_ptr<PoolConn>& c) {
    std::string buf;
    std::vector<char> chunk(64 * 1024);
    try {
      for (;;) {
        const std::size_t n =
            net::read_some(c->fd, chunk.data(), chunk.size());
        if (n == 0) break;
        buf.append(chunk.data(), n);
        std::size_t off = 0;
        Frame f;
        std::size_t consumed = 0;
        while (decode_frame(buf.data() + off, buf.size() - off,
                            kMaxFramePayload, f,
                            consumed) == DecodeResult::Frame) {
          off += consumed;
          dispatch(c, std::move(f));
        }
        buf.erase(0, off);
      }
    } catch (...) {
      // Hard read error or lost framing: everything below fails the
      // outstanding futures; nothing to add here.
    }
    c->dead.store(true, std::memory_order_release);

    // Fail every outstanding future and sync waiter: the peer can no longer
    // answer them, and a blocked caller must wake with a structured error.
    const Error lost(Stage::Io, "phoenix-client: connection to " + ep.label() +
                                    " lost");
    std::unordered_map<std::uint64_t, std::shared_ptr<PoolPending>> pending;
    std::unordered_map<std::uint64_t, std::shared_ptr<SyncWait>> sync;
    {
      std::lock_guard<std::mutex> lk(c->mu);
      pending.swap(c->pending);
      sync.swap(c->sync);
    }
    if (!pending.empty() || !sync.empty()) {
      // Only a connection that stranded in-flight work counts as an I/O
      // error; a clean idle close (pool teardown) does not.
      io_errors.fetch_add(1, std::memory_order_relaxed);
      trace_count("net.pool.io_errors", 1);
    }
    for (auto& [id, p] : pending) fail_pending(*p, lost);
    for (auto& [id, w] : sync) {
      std::lock_guard<std::mutex> lk(w->mu);
      w->error = std::make_unique<Error>(lost);
      w->done = true;
      w->cv.notify_all();
    }
  }

  /// Round-robin a pool slot, (re)connecting it if empty or dead. Callers
  /// retry per `opt.retry` around the Stage::Io throw.
  std::shared_ptr<PoolConn> checkout() {
    std::lock_guard<std::mutex> lk(pool_mu);
    const std::size_t slot = rr++ % conns.size();
    std::shared_ptr<PoolConn>& c = conns[slot];
    if (c != nullptr && !c->dead.load(std::memory_order_acquire)) return c;
    if (c != nullptr) {
      c->fd.shutdown_both();
      if (c->reader.joinable()) c->reader.join();
      c.reset();
    }
    auto fresh = std::make_shared<PoolConn>();
    fresh->fd = ep.is_unix() ? net::connect_unix(ep.unix_path)
                             : net::connect_tcp(ep.host, ep.port);
    fresh->reader = std::thread([this, fresh] { reader_loop(fresh); });
    conns_opened.fetch_add(1, std::memory_order_relaxed);
    trace_count("net.pool.conns_opened", 1);
    c = fresh;
    return fresh;
  }

  /// Mark a connection broken after a failed write and unregister the ids
  /// we had just claimed on it (their futures were never observable).
  void break_conn(const std::shared_ptr<PoolConn>& c,
                  const std::vector<std::uint64_t>& ids) {
    c->dead.store(true, std::memory_order_release);
    c->fd.shutdown_both();  // wakes the reader, which fails any older ids
    std::lock_guard<std::mutex> lk(c->mu);
    for (const std::uint64_t id : ids) c->pending.erase(id);
  }

  std::vector<Handle> submit_frames(const std::vector<CompileRequest>& reqs,
                                    int priority) {
    std::vector<std::string> bodies;
    bodies.reserve(reqs.size());
    for (const CompileRequest& r : reqs)
      bodies.push_back(compile_request_to_bytes(r, priority));
    std::vector<const std::string*> ptrs;
    ptrs.reserve(bodies.size());
    for (const std::string& b : bodies) ptrs.push_back(&b);
    return submit_bodies(ptrs);
  }

  std::vector<Handle> submit_bodies(
      const std::vector<const std::string*>& bodies) {
    for (std::size_t attempt = 0;; ++attempt) {
      try {
        const std::shared_ptr<PoolConn> c = checkout();
        std::vector<std::shared_ptr<PoolPending>> ps;
        std::vector<std::uint64_t> ids;
        std::string bytes;
        {
          std::lock_guard<std::mutex> lk(c->mu);
          for (const std::string* body : bodies) {
            const std::uint64_t id = c->next_id++;
            auto p = std::make_shared<PoolPending>();
            p->request_id = id;
            p->conn = c;
            c->pending.emplace(id, p);
            ps.push_back(std::move(p));
            ids.push_back(id);
            append_frame(bytes, FrameType::Submit, id, *body);
          }
        }
        try {
          std::lock_guard<std::mutex> lk(c->write_mu);
          net::write_all(c->fd, bytes.data(), bytes.size());
        } catch (...) {
          break_conn(c, ids);
          throw;
        }
        submits.fetch_add(bodies.size(), std::memory_order_relaxed);
        trace_count("net.pool.submits", bodies.size());
        if (bodies.size() > 1) {
          burst_writes.fetch_add(1, std::memory_order_relaxed);
          burst_frames.fetch_add(bodies.size(), std::memory_order_relaxed);
          trace_count("net.pool.burst_writes", 1);
        }
        std::vector<Handle> out;
        out.reserve(ps.size());
        for (auto& p : ps) out.push_back(Handle(std::move(p)));
        return out;
      } catch (const Error& e) {
        if (e.stage() != Stage::Io || attempt >= opt.retry.limit) throw;
        connect_retries.fetch_add(1, std::memory_order_relaxed);
        trace_count("net.pool.connect_retries", 1);
        backoff_sleep(opt.retry.backoff_ms);
      }
    }
  }

  Frame sync_round_trip(FrameType type, std::uint64_t request_id,
                        const std::shared_ptr<PoolConn>& c) {
    auto w = std::make_shared<SyncWait>();
    {
      std::lock_guard<std::mutex> lk(c->mu);
      c->sync.emplace(request_id, w);
    }
    Frame f;
    f.type = type;
    f.request_id = request_id;
    const std::string bytes = encode_frame(f);
    try {
      std::lock_guard<std::mutex> lk(c->write_mu);
      net::write_all(c->fd, bytes.data(), bytes.size());
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(c->mu);
        c->sync.erase(request_id);
      }
      c->dead.store(true, std::memory_order_release);
      c->fd.shutdown_both();
      throw;
    }
    std::unique_lock<std::mutex> lk(w->mu);
    w->cv.wait(lk, [&] { return w->done; });
    if (w->error != nullptr) throw Error(*w->error);
    return std::move(w->reply);
  }

  void shutdown() {
    std::lock_guard<std::mutex> lk(pool_mu);
    for (auto& c : conns) {
      if (c == nullptr) continue;
      c->fd.shutdown_both();
      if (c->reader.joinable()) c->reader.join();
      c.reset();
    }
  }
};

PooledClient::PooledClient(Endpoint endpoint, PooledClientOptions opt)
    : impl_(std::make_unique<Impl>(std::move(endpoint), opt)) {}

PooledClient::~PooledClient() { impl_->shutdown(); }

std::uint64_t PooledClient::Handle::request_id() const {
  return p_ == nullptr ? 0 : p_->request_id;
}

AckInfo PooledClient::Handle::ack() {
  PoolPending& p = *p_;
  std::unique_lock<std::mutex> lk(p.mu);
  p.cv.wait(lk, [&] { return p.have_ack || p.have_terminal; });
  if (p.have_ack) return p.ack;
  if (p.error != nullptr) throw Error(*p.error);
  throw Error(Stage::Parse,
              "phoenix-client: terminal Result arrived without a SubmitAck");
}

std::string PooledClient::Handle::get() {
  PoolPending& p = *p_;
  std::unique_lock<std::mutex> lk(p.mu);
  p.cv.wait(lk, [&] { return p.have_terminal; });
  if (p.error != nullptr) throw Error(*p.error);
  return std::move(p.payload);
}

bool PooledClient::Handle::done() const {
  PoolPending& p = *p_;
  std::lock_guard<std::mutex> lk(p.mu);
  return p.have_terminal;
}

bool PooledClient::Handle::cancel() {
  PoolPending& p = *p_;
  std::shared_ptr<PoolConn> c = p.conn.lock();
  if (c == nullptr || c->dead.load(std::memory_order_acquire)) return false;
  {
    std::lock_guard<std::mutex> lk(p.mu);
    if (p.have_terminal) return false;
  }
  auto w = std::make_shared<SyncWait>();
  {
    std::lock_guard<std::mutex> lk(c->mu);
    c->sync.emplace(p.request_id, w);
  }
  Frame f;
  f.type = FrameType::Cancel;
  f.request_id = p.request_id;
  const std::string bytes = encode_frame(f);
  try {
    std::lock_guard<std::mutex> lk(c->write_mu);
    net::write_all(c->fd, bytes.data(), bytes.size());
  } catch (...) {
    std::lock_guard<std::mutex> lk(c->mu);
    c->sync.erase(p.request_id);
    return false;
  }
  std::unique_lock<std::mutex> lk(w->mu);
  w->cv.wait(lk, [&] { return w->done; });
  if (w->error != nullptr) return false;
  return parse_flag_payload(w->reply.payload, "cancelled");
}

PooledClient::Handle PooledClient::submit_async(const CompileRequest& req,
                                                int priority) {
  std::vector<CompileRequest> one(1, req);
  return std::move(impl_->submit_frames(one, priority)[0]);
}

std::vector<PooledClient::Handle> PooledClient::submit_burst(
    const std::vector<CompileRequest>& reqs, int priority) {
  if (reqs.empty()) return {};
  return impl_->submit_frames(reqs, priority);
}

PooledClient::Handle PooledClient::submit_payload(const std::string& body) {
  const std::vector<const std::string*> one(1, &body);
  return std::move(impl_->submit_bodies(one)[0]);
}

std::vector<PooledClient::Handle> PooledClient::submit_burst_payloads(
    const std::vector<const std::string*>& bodies) {
  if (bodies.empty()) return {};
  return impl_->submit_bodies(bodies);
}

std::vector<std::pair<std::string, std::uint64_t>>
PooledClient::server_stats() {
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      const std::shared_ptr<PoolConn> c = impl_->checkout();
      std::uint64_t id = 0;
      {
        std::lock_guard<std::mutex> lk(c->mu);
        id = c->next_id++;
      }
      const Frame reply = impl_->sync_round_trip(FrameType::Stats, id, c);
      return parse_stats_payload(reply.payload);
    } catch (const Error& e) {
      if (e.stage() != Stage::Io || attempt >= impl_->opt.retry.limit) throw;
      backoff_sleep(impl_->opt.retry.backoff_ms);
    }
  }
}

ClientStats PooledClient::stats() const {
  ClientStats s;
  s.submits = impl_->submits.load(std::memory_order_relaxed);
  s.results = impl_->results.load(std::memory_order_relaxed);
  s.error_replies = impl_->error_replies.load(std::memory_order_relaxed);
  s.connect_retries = impl_->connect_retries.load(std::memory_order_relaxed);
  s.conns_opened = impl_->conns_opened.load(std::memory_order_relaxed);
  s.io_errors = impl_->io_errors.load(std::memory_order_relaxed);
  s.burst_writes = impl_->burst_writes.load(std::memory_order_relaxed);
  s.burst_frames = impl_->burst_frames.load(std::memory_order_relaxed);
  return s;
}

const Endpoint& PooledClient::endpoint() const { return impl_->ep; }

}  // namespace phoenix
