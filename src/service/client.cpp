#include "service/client.hpp"

#include <sstream>

#include "common/error.hpp"

namespace phoenix {

namespace {

[[noreturn]] void fail(const std::string& detail) {
  throw Error(Stage::Parse, "phoenix-client: " + detail);
}

}  // namespace

ServedClient ServedClient::connect_tcp(const std::string& host,
                                       std::uint16_t port) {
  return ServedClient(net::connect_tcp(host, port));
}

ServedClient ServedClient::connect_unix(const std::string& path) {
  return ServedClient(net::connect_unix(path));
}

void ServedClient::send_bytes(const std::string& bytes) {
  net::write_all(fd_, bytes.data(), bytes.size());
}

Frame ServedClient::read_frame() {
  Frame f;
  std::size_t consumed = 0;
  char chunk[64 * 1024];
  for (;;) {
    if (decode_frame(buf_.data(), buf_.size(), kMaxFramePayload, f,
                     consumed) == DecodeResult::Frame) {
      buf_.erase(0, consumed);
      return f;
    }
    const std::size_t n = net::read_some(fd_, chunk, sizeof chunk);
    if (n == 0)
      throw Error(Stage::Io, "phoenix-client: server closed the connection");
    buf_.append(chunk, n);
  }
}

Frame ServedClient::wait_for(FrameType a, FrameType b,
                             std::uint64_t request_id) {
  for (;;) {
    Frame f = read_frame();
    if (f.request_id == request_id && (f.type == a || f.type == b)) return f;
    if (f.type == FrameType::Result || f.type == FrameType::ErrorReply) {
      mailbox_.emplace(f.request_id, std::move(f));
      continue;
    }
    fail(std::string("unexpected ") + frame_type_name(f.type) +
         " frame for request " + std::to_string(f.request_id) +
         " while waiting on request " + std::to_string(request_id));
  }
}

ServedClient::Ack ServedClient::submit(const CompileRequest& req,
                                       int priority) {
  Ack ack;
  ack.request_id = next_id_++;
  Frame f;
  f.type = FrameType::Submit;
  f.request_id = ack.request_id;
  f.payload = compile_request_to_bytes(req, priority);
  send_bytes(encode_frame(f));

  Frame reply =
      wait_for(FrameType::SubmitAck, FrameType::ErrorReply, ack.request_id);
  if (reply.type == FrameType::ErrorReply)
    throw error_from_payload(reply.payload);
  std::istringstream in(reply.payload);
  std::string tag;
  int hit = -1;
  if (!(in >> tag >> ack.fingerprint_hex >> hit) || tag != "ack" || hit < 0 ||
      hit > 1)
    fail("malformed submit ack '" + reply.payload + "'");
  ack.hit = hit == 1;
  return ack;
}

std::string ServedClient::await_raw(std::uint64_t request_id) {
  Frame f;
  const auto it = mailbox_.find(request_id);
  if (it != mailbox_.end()) {
    f = std::move(it->second);
    mailbox_.erase(it);
  } else {
    f = wait_for(FrameType::Result, FrameType::ErrorReply, request_id);
  }
  if (f.type == FrameType::ErrorReply) throw error_from_payload(f.payload);
  return std::move(f.payload);
}

bool ServedClient::poll(std::uint64_t request_id, bool* known) {
  Frame f;
  f.type = FrameType::Poll;
  f.request_id = request_id;
  send_bytes(encode_frame(f));
  const Frame reply =
      wait_for(FrameType::Status, FrameType::Status, request_id);
  std::istringstream in(reply.payload);
  std::string tag;
  int ready = -1, tracked = -1;
  if (!(in >> tag >> ready >> tracked) || tag != "status" || ready < 0 ||
      ready > 1 || tracked < 0 || tracked > 1)
    fail("malformed status '" + reply.payload + "'");
  if (known != nullptr) *known = tracked == 1;
  return ready == 1;
}

bool ServedClient::cancel(std::uint64_t request_id) {
  Frame f;
  f.type = FrameType::Cancel;
  f.request_id = request_id;
  send_bytes(encode_frame(f));
  const Frame reply =
      wait_for(FrameType::CancelAck, FrameType::CancelAck, request_id);
  std::istringstream in(reply.payload);
  std::string tag;
  int cancelled = -1;
  if (!(in >> tag >> cancelled) || tag != "cancelled" || cancelled < 0 ||
      cancelled > 1)
    fail("malformed cancel ack '" + reply.payload + "'");
  return cancelled == 1;
}

std::vector<std::pair<std::string, std::uint64_t>> ServedClient::stats() {
  Frame f;
  f.type = FrameType::Stats;
  f.request_id = next_id_++;
  send_bytes(encode_frame(f));
  const Frame reply =
      wait_for(FrameType::StatsReply, FrameType::StatsReply, f.request_id);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  std::istringstream in(reply.payload);
  std::string tag, name;
  std::uint64_t value = 0;
  while (in >> tag) {
    if (tag != "stat" || !(in >> name >> value))
      fail("malformed stats reply line");
    out.emplace_back(name, value);
  }
  return out;
}

}  // namespace phoenix
