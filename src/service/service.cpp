#include "service/service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <future>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "service/fingerprint.hpp"

namespace phoenix {

namespace {

using ServiceClock = std::chrono::steady_clock;

std::size_t default_pool_workers(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t workers = hw > 1 ? static_cast<std::size_t>(hw - 1) : 0;
  return std::min<std::size_t>(workers, 15);
}

/// Absolute wait deadline of a request (`max()` when it carries none).
/// `deadline_ms <= 0` maps to a deadline already in the past — the wait
/// fails immediately with DeadlineExceeded rather than being misread as
/// "no deadline" (the old magic-zero encoding).
ServiceClock::time_point request_deadline(double deadline_ms) {
  if (deadline_ms == CompileRequest::kNoDeadline)
    return ServiceClock::time_point::max();
  return ServiceClock::now() +
         std::chrono::duration_cast<ServiceClock::duration>(
             std::chrono::duration<double, std::milli>(deadline_ms));
}

}  // namespace

/// One in-flight compile, shared by every request with its fingerprint. The
/// future resolves to the shared result, to nullptr when the flight was
/// abandoned (every submission cancelled before it started — decided under
/// the flight-table lock, so only cancelled tickets can ever observe the
/// nullptr), or to the compile's exception.
struct Flight {
  Flight(const Digest128& key, double deadline_ms, CancelToken parent)
      : fp(key),
        source(deadline_ms != CompileRequest::kNoDeadline
                   ? CancelSource(deadline_ms, std::move(parent))
                   : CancelSource(std::move(parent))) {
    future = promise.get_future().share();
  }
  Digest128 fp;
  std::promise<CompileService::ResultPtr> promise;
  std::shared_future<CompileService::ResultPtr> future;
  /// The compile's cancellation scope: deadline = the loosest joiner's
  /// (extend_deadline as joiners arrive), tripped by Ticket::cancel of the
  /// last interested submission or by load shedding.
  CancelSource source;
  /// Live (non-cancelled, non-timed-out) submissions waiting on this flight.
  std::atomic<std::size_t> interest{0};
  std::atomic<bool> started{false};
  /// Set (under the flight-table lock) when admission control evicted this
  /// queued flight; the pool job then returns without touching the promise.
  std::atomic<bool> shed{false};
};

struct CompileService::Ticket::State {
  Digest128 fp;
  std::shared_ptr<Flight> flight;  ///< null when served straight from cache
  ResultPtr ready;                 ///< the cache hit, when flight is null
  /// This submission's own wait deadline (max() = none).
  ServiceClock::time_point deadline = ServiceClock::time_point::max();
  std::atomic<bool> cancelled{false};
  std::atomic<bool> timed_out{false};
  std::atomic<std::uint64_t>* cancelled_counter = nullptr;
  std::atomic<std::uint64_t>* midflight_counter = nullptr;
  std::atomic<std::uint64_t>* timeouts_counter = nullptr;
};

struct CompileService::Impl {
  CompileFn compile_fn;
  CompileCache cache;
  std::size_t max_queue = 0;

  std::mutex flights_mu;
  std::unordered_map<Digest128, std::shared_ptr<Flight>, Digest128Hash>
      flights;
  /// Accepted-but-not-started async flights and their priorities — the
  /// admission-control queue view (guarded by flights_mu, like `flights`).
  std::unordered_map<Digest128, std::pair<std::shared_ptr<Flight>, int>,
                     Digest128Hash>
      queued;

  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> compiles{0};  ///< ServiceStats::misses
  std::atomic<std::uint64_t> inflight_joins{0};
  std::atomic<std::uint64_t> cancelled{0};
  std::atomic<std::uint64_t> cancelled_midflight{0};
  std::atomic<std::uint64_t> timeouts{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> queue_depth{0};

  /// Destroyed first (declared last): its destructor runs every queued job
  /// to completion while the cache and flight table above are still alive.
  ThreadPool pool;

  Impl(ServiceOptions opt, CompileFn fn)
      : compile_fn(std::move(fn)),
        cache(std::move(opt.cache)),
        max_queue(opt.max_queue),
        pool(default_pool_workers(opt.num_threads)) {}

  /// Join the fingerprint's flight or create one. Interest is taken under
  /// the table lock, so a flight with a live joiner is never abandoned.
  /// Joining relaxes the flight's deadline to cover the new joiner (a
  /// no-deadline joiner removes it: the compile must outlive its most
  /// patient waiter).
  struct JoinResult {
    std::shared_ptr<Flight> flight;
    bool created = false;
  };
  static void relax_deadline(Flight& flight, double deadline_ms) {
    flight.source.extend_deadline(request_deadline(deadline_ms));
  }
  JoinResult join_or_create(const CompileRequest& req, const Digest128& fp) {
    std::lock_guard<std::mutex> lock(flights_mu);
    if (const auto it = flights.find(fp); it != flights.end()) {
      it->second->interest.fetch_add(1, std::memory_order_relaxed);
      relax_deadline(*it->second, req.deadline_ms);
      return {it->second, false};
    }
    auto flight = std::make_shared<Flight>(fp, req.deadline_ms, req.cancel);
    flight->interest.store(1, std::memory_order_relaxed);
    flights[fp] = flight;
    return {flight, true};
  }

  /// join_or_create plus admission control for the async path: creating a
  /// flight claims a queue slot; when the queue is full, either a strictly
  /// lower-priority queued flight is shed to make room (returned via
  /// `shed_victim`; the caller fails its promise outside the lock) or the
  /// submission is rejected with Error kind Overloaded. One lock
  /// acquisition, so a rejected submission never leaves a joinable flight
  /// behind.
  JoinResult admit_or_join(const CompileRequest& req, const Digest128& fp,
                           int priority,
                           std::shared_ptr<Flight>& shed_victim) {
    std::lock_guard<std::mutex> lock(flights_mu);
    if (const auto it = flights.find(fp); it != flights.end()) {
      it->second->interest.fetch_add(1, std::memory_order_relaxed);
      relax_deadline(*it->second, req.deadline_ms);
      return {it->second, false};
    }
    if (max_queue > 0 && queued.size() >= max_queue) {
      auto victim = queued.end();
      for (auto it = queued.begin(); it != queued.end(); ++it)
        if (victim == queued.end() || it->second.second < victim->second.second)
          victim = it;
      if (victim == queued.end() || victim->second.second >= priority) {
        rejected.fetch_add(1, std::memory_order_relaxed);
        trace_count("service.rejected", 1);
        throw Error(Error::Kind::Overloaded, Stage::Service,
                    "CompileService::submit: queue full (" +
                        std::to_string(queued.size()) + "/" +
                        std::to_string(max_queue) +
                        ") and no lower-priority compile to shed");
      }
      shed_victim = victim->second.first;
      shed_victim->shed.store(true, std::memory_order_release);
      shed_victim->source.request_cancel();
      flights.erase(shed_victim->fp);
      queued.erase(victim);
      queue_depth.fetch_sub(1, std::memory_order_relaxed);
      rejected.fetch_add(1, std::memory_order_relaxed);
      trace_count("service.rejected", 1);
    }
    auto flight = std::make_shared<Flight>(fp, req.deadline_ms, req.cancel);
    flight->interest.store(1, std::memory_order_relaxed);
    flights[fp] = flight;
    queued[fp] = {flight, priority};
    queue_depth.fetch_add(1, std::memory_order_relaxed);
    return {flight, true};
  }

  /// Run the compile this flight owns and publish the result: cache first,
  /// then retire the flight from the table, then resolve the future (no
  /// window where a new request finds neither cache entry nor flight).
  ResultPtr run_flight(const std::shared_ptr<Flight>& flight,
                       const CompileRequest& req) {
    compiles.fetch_add(1, std::memory_order_relaxed);
    trace_count("service.compiles", 1);
    ResultPtr result;
    try {
      fault::maybe_sleep("compile.slow");
      if (fault::triggered("compile.throw"))
        throw Error(Stage::Service, "fault injected: compile.throw");
      result = std::make_shared<const CompileResult>(compile_fn(req));
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(flights_mu);
        flights.erase(flight->fp);
      }
      flight->promise.set_exception(std::current_exception());
      throw;
    }
    cache.put(flight->fp, result);
    {
      std::lock_guard<std::mutex> lock(flights_mu);
      flights.erase(flight->fp);
    }
    flight->promise.set_value(result);
    return result;
  }

  /// The queued form of run_flight: checks for abandonment (every submission
  /// cancelled while queued) under the table lock, swallows compile errors
  /// into the flight's future (tickets rethrow from get()).
  void run_flight_job(const std::shared_ptr<Flight>& flight,
                      CompileRequest& req) {
    bool abandoned = false;
    {
      std::lock_guard<std::mutex> lock(flights_mu);
      // A shed flight was already retired by admission control (promise
      // failed, queue slot released); this job is a husk.
      if (flight->shed.load(std::memory_order_acquire)) return;
      queued.erase(flight->fp);
      queue_depth.fetch_sub(1, std::memory_order_relaxed);
      flight->started.store(true, std::memory_order_relaxed);
      if (flight->interest.load(std::memory_order_relaxed) == 0) {
        flights.erase(flight->fp);
        abandoned = true;
      }
    }
    if (abandoned) {
      flight->promise.set_value(nullptr);
      return;
    }
    req.cancel = flight->source.token();
    try {
      run_flight(flight, req);
    } catch (...) {
      // Already stored in the future; every waiter sees it.
    }
  }

  /// Drop one joined submission's interest at its deadline: the last
  /// interested waiter of a started flight cancels the compile through the
  /// flight token. Shared by Ticket::get and the sync join path.
  void abandon_at_deadline(Flight& flight) {
    timeouts.fetch_add(1, std::memory_order_relaxed);
    trace_count("service.timeouts", 1);
    const std::size_t remaining =
        flight.interest.fetch_sub(1, std::memory_order_acq_rel) - 1;
    if (remaining == 0 && flight.started.load(std::memory_order_relaxed)) {
      flight.source.request_cancel();
      cancelled_midflight.fetch_add(1, std::memory_order_relaxed);
      trace_count("service.cancelled_midflight", 1);
    }
  }

  ResultPtr compile_sync(const CompileRequest& req) {
    requests.fetch_add(1, std::memory_order_relaxed);
    trace_count("service.requests", 1);
    const Digest128 fp = fingerprint_request(req.terms, req.num_qubits,
                                             req.options, req.coupling_graph());
    const auto deadline = request_deadline(req.deadline_ms);
    for (;;) {
      if (ResultPtr hit = cache.get(fp)) return hit;
      const JoinResult j = join_or_create(req, fp);
      if (j.created) {
        j.flight->started.store(true, std::memory_order_relaxed);
        CompileRequest effective = req;
        effective.cancel = j.flight->source.token();
        return run_flight(j.flight, effective);
      }
      inflight_joins.fetch_add(1, std::memory_order_relaxed);
      trace_count("service.inflight_joins", 1);
      if (deadline != ServiceClock::time_point::max() &&
          j.flight->future.wait_until(deadline) ==
              std::future_status::timeout) {
        abandon_at_deadline(*j.flight);
        throw Error(Error::Kind::DeadlineExceeded, Stage::Service,
                    "compile: deadline exceeded while joined to an in-flight "
                    "compile");
      }
      ResultPtr shared = j.flight->future.get();  // rethrows compile errors
      if (shared != nullptr) return shared;
      // Unreachable in practice: our interest blocks abandonment. Retry
      // defensively rather than hand a sync caller a null result.
    }
  }
};

namespace {

CompileService::CompileFn default_compile_fn() {
  return [](const CompileRequest& req) {
    PhoenixOptions o = req.options;
    if (req.coupling != nullptr) o.coupling = req.coupling.get();
    // The service populates req.cancel with the flight's token (deadline
    // = loosest joiner, tripped by last-cancel / shedding, chained to
    // the caller's own token); custom CompileFn seams should do the
    // same to stay cancellable.
    if (req.cancel.valid()) o.cancel = req.cancel;
    return phoenix_compile(req.terms, req.num_qubits, o);
  };
}

}  // namespace

CompileService::CompileService(ServiceOptions opt)
    : CompileService(std::move(opt), CompileFn()) {}

CompileService::CompileService(ServiceOptions opt, CompileFn compile_fn)
    : impl_(std::make_unique<Impl>(
          std::move(opt),
          compile_fn ? std::move(compile_fn) : default_compile_fn())) {}

CompileService::~CompileService() = default;

CompileService::ResultPtr CompileService::compile(const CompileRequest& req) {
  return impl_->compile_sync(req);
}

CompileService::ResultPtr CompileService::compile(
    const std::vector<PauliTerm>& terms, std::size_t num_qubits,
    const PhoenixOptions& opt) {
  CompileRequest req;
  req.terms = terms;
  req.num_qubits = num_qubits;
  req.options = opt;
  return impl_->compile_sync(req);
}

CompileService::ResultPtr CompileService::Ticket::get() {
  if (state_ == nullptr)
    throw Error(Stage::Service, "Ticket::get: empty ticket");
  if (state_->cancelled.load(std::memory_order_relaxed)) return nullptr;
  if (state_->timed_out.load(std::memory_order_relaxed))
    throw Error(Error::Kind::DeadlineExceeded, Stage::Service,
                "Ticket::get: deadline exceeded (submission abandoned)");
  if (state_->flight == nullptr) return state_->ready;
  if (state_->deadline != ServiceClock::time_point::max() &&
      state_->flight->future.wait_until(state_->deadline) ==
          std::future_status::timeout) {
    // Single transition: later get() calls keep throwing without touching
    // the flight's interest again (cancel() also checks this flag).
    if (!state_->timed_out.exchange(true)) {
      if (state_->timeouts_counter != nullptr)
        state_->timeouts_counter->fetch_add(1, std::memory_order_relaxed);
      trace_count("service.timeouts", 1);
      Flight& f = *state_->flight;
      const std::size_t remaining =
          f.interest.fetch_sub(1, std::memory_order_acq_rel) - 1;
      if (remaining == 0 && f.started.load(std::memory_order_relaxed)) {
        f.source.request_cancel();
        if (state_->midflight_counter != nullptr)
          state_->midflight_counter->fetch_add(1, std::memory_order_relaxed);
        trace_count("service.cancelled_midflight", 1);
      }
    }
    throw Error(Error::Kind::DeadlineExceeded, Stage::Service,
                "Ticket::get: deadline exceeded waiting for compile");
  }
  return state_->flight->future.get();  // rethrows compile errors
}

bool CompileService::Ticket::ready() const {
  if (state_ == nullptr) return false;
  if (state_->cancelled.load(std::memory_order_relaxed)) return true;
  if (state_->timed_out.load(std::memory_order_relaxed)) return true;
  if (state_->flight == nullptr) return true;
  return state_->flight->future.wait_for(std::chrono::seconds(0)) ==
         std::future_status::ready;
}

bool CompileService::Ticket::cancel() {
  if (state_ == nullptr || state_->flight == nullptr) return false;
  // A timed-out submission already dropped its interest at the deadline;
  // cancelling it again must not double-release.
  if (state_->timed_out.load(std::memory_order_relaxed)) return false;
  if (state_->cancelled.exchange(true)) return false;
  if (state_->cancelled_counter != nullptr)
    state_->cancelled_counter->fetch_add(1, std::memory_order_relaxed);
  trace_count("service.cancelled", 1);
  Flight& f = *state_->flight;
  const std::size_t remaining =
      f.interest.fetch_sub(1, std::memory_order_acq_rel) - 1;
  if (remaining != 0) return false;  // others still want the flight
  // Not started yet: the worker re-checks interest under the flight-table
  // lock before compiling and abandons the flight — the compile never runs.
  if (!f.started.load(std::memory_order_relaxed)) return true;
  // Already running and finished: nothing left to skip.
  if (f.future.wait_for(std::chrono::seconds(0)) == std::future_status::ready)
    return false;
  // Last interested submission of a running compile: abort it mid-stage
  // through the flight token. The compile throws Error kind Cancelled into
  // the future (only cancelled/timed-out waiters can observe it).
  f.source.request_cancel();
  if (state_->midflight_counter != nullptr)
    state_->midflight_counter->fetch_add(1, std::memory_order_relaxed);
  trace_count("service.cancelled_midflight", 1);
  return true;
}

const Digest128& CompileService::Ticket::fingerprint() const {
  static const Digest128 kEmpty{};
  return state_ == nullptr ? kEmpty : state_->fp;
}

CompileService::Ticket CompileService::submit(CompileRequest req,
                                              int priority) {
  impl_->requests.fetch_add(1, std::memory_order_relaxed);
  trace_count("service.requests", 1);
  const Digest128 fp = fingerprint_request(
      req.terms, req.num_qubits, req.options, req.coupling_graph());

  Ticket ticket;
  ticket.state_ = std::make_shared<Ticket::State>();
  ticket.state_->fp = fp;
  ticket.state_->deadline = request_deadline(req.deadline_ms);
  ticket.state_->cancelled_counter = &impl_->cancelled;
  ticket.state_->midflight_counter = &impl_->cancelled_midflight;
  ticket.state_->timeouts_counter = &impl_->timeouts;

  if (ResultPtr hit = impl_->cache.get(fp)) {
    ticket.state_->ready = std::move(hit);
    return ticket;
  }

  std::shared_ptr<Flight> shed_victim;
  const Impl::JoinResult j =
      impl_->admit_or_join(req, fp, priority, shed_victim);
  if (shed_victim != nullptr) {
    // Outside the flight-table lock: waking the victim's waiters can run
    // arbitrary continuation code.
    shed_victim->promise.set_exception(std::make_exception_ptr(
        Error(Error::Kind::Overloaded, Stage::Service,
              "CompileService: compile shed by a higher-priority "
              "submission")));
  }
  ticket.state_->flight = j.flight;
  if (!j.created) {
    impl_->inflight_joins.fetch_add(1, std::memory_order_relaxed);
    trace_count("service.inflight_joins", 1);
    return ticket;
  }

  Impl* impl = impl_.get();
  auto shared_req = std::make_shared<CompileRequest>(std::move(req));
  impl_->pool.submit(
      [impl, flight = j.flight, shared_req] {
        impl->run_flight_job(flight, *shared_req);
      },
      priority);
  return ticket;
}

std::vector<CompileService::ResultPtr> CompileService::compile_batch(
    const std::vector<CompileRequest>& reqs, int priority) {
  std::vector<Ticket> tickets;
  tickets.reserve(reqs.size());
  for (const CompileRequest& req : reqs)
    tickets.push_back(submit(req, priority));

  std::vector<ResultPtr> results;
  results.reserve(reqs.size());
  std::exception_ptr first_error;
  for (Ticket& t : tickets) {
    try {
      results.push_back(t.get());
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
      results.push_back(nullptr);
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

ServiceStats CompileService::stats() const {
  const CompileCache::Counters c = impl_->cache.counters();
  ServiceStats s;
  s.requests = impl_->requests.load(std::memory_order_relaxed);
  s.hits = c.hits;
  s.disk_hits = c.disk_hits;
  s.disk_rejects = c.disk_rejects;
  s.misses = impl_->compiles.load(std::memory_order_relaxed);
  s.inflight_joins = impl_->inflight_joins.load(std::memory_order_relaxed);
  s.evictions = c.evictions;
  s.cancelled = impl_->cancelled.load(std::memory_order_relaxed);
  s.cancelled_midflight =
      impl_->cancelled_midflight.load(std::memory_order_relaxed);
  s.timeouts = impl_->timeouts.load(std::memory_order_relaxed);
  s.rejected = impl_->rejected.load(std::memory_order_relaxed);
  s.disk_retries = c.disk_retries;
  s.faults_injected = fault::total_fired();
  s.queue_depth = impl_->queue_depth.load(std::memory_order_relaxed);
  s.cache_entries = c.entries;
  s.cache_bytes = c.bytes;
  return s;
}

}  // namespace phoenix
