#include "service/service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <future>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "service/fingerprint.hpp"

namespace phoenix {

namespace {

std::size_t default_pool_workers(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t workers = hw > 1 ? static_cast<std::size_t>(hw - 1) : 0;
  return std::min<std::size_t>(workers, 15);
}

}  // namespace

/// One in-flight compile, shared by every request with its fingerprint. The
/// future resolves to the shared result, to nullptr when the flight was
/// abandoned (every submission cancelled before it started — decided under
/// the flight-table lock, so only cancelled tickets can ever observe the
/// nullptr), or to the compile's exception.
struct Flight {
  explicit Flight(const Digest128& key) : fp(key) {
    future = promise.get_future().share();
  }
  Digest128 fp;
  std::promise<CompileService::ResultPtr> promise;
  std::shared_future<CompileService::ResultPtr> future;
  /// Live (non-cancelled) submissions waiting on this flight.
  std::atomic<std::size_t> interest{0};
  std::atomic<bool> started{false};
};

struct CompileService::Ticket::State {
  Digest128 fp;
  std::shared_ptr<Flight> flight;  ///< null when served straight from cache
  ResultPtr ready;                 ///< the cache hit, when flight is null
  std::atomic<bool> cancelled{false};
  std::atomic<std::uint64_t>* cancelled_counter = nullptr;
};

struct CompileService::Impl {
  CompileFn compile_fn;
  CompileCache cache;

  std::mutex flights_mu;
  std::unordered_map<Digest128, std::shared_ptr<Flight>, Digest128Hash>
      flights;

  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> compiles{0};  ///< ServiceStats::misses
  std::atomic<std::uint64_t> inflight_joins{0};
  std::atomic<std::uint64_t> cancelled{0};
  std::atomic<std::uint64_t> queue_depth{0};

  /// Destroyed first (declared last): its destructor runs every queued job
  /// to completion while the cache and flight table above are still alive.
  ThreadPool pool;

  Impl(ServiceOptions opt, CompileFn fn)
      : compile_fn(std::move(fn)),
        cache(std::move(opt.cache)),
        pool(default_pool_workers(opt.num_threads)) {}

  /// Join the fingerprint's flight or create one. Interest is taken under
  /// the table lock, so a flight with a live joiner is never abandoned.
  struct JoinResult {
    std::shared_ptr<Flight> flight;
    bool created = false;
  };
  JoinResult join_or_create(const Digest128& fp) {
    std::lock_guard<std::mutex> lock(flights_mu);
    if (const auto it = flights.find(fp); it != flights.end()) {
      it->second->interest.fetch_add(1, std::memory_order_relaxed);
      return {it->second, false};
    }
    auto flight = std::make_shared<Flight>(fp);
    flight->interest.store(1, std::memory_order_relaxed);
    flights[fp] = flight;
    return {flight, true};
  }

  /// Run the compile this flight owns and publish the result: cache first,
  /// then retire the flight from the table, then resolve the future (no
  /// window where a new request finds neither cache entry nor flight).
  ResultPtr run_flight(const std::shared_ptr<Flight>& flight,
                       const CompileRequest& req) {
    compiles.fetch_add(1, std::memory_order_relaxed);
    trace_count("service.compiles", 1);
    ResultPtr result;
    try {
      result = std::make_shared<const CompileResult>(compile_fn(req));
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(flights_mu);
        flights.erase(flight->fp);
      }
      flight->promise.set_exception(std::current_exception());
      throw;
    }
    cache.put(flight->fp, result);
    {
      std::lock_guard<std::mutex> lock(flights_mu);
      flights.erase(flight->fp);
    }
    flight->promise.set_value(result);
    return result;
  }

  /// The queued form of run_flight: checks for abandonment (every submission
  /// cancelled while queued) under the table lock, swallows compile errors
  /// into the flight's future (tickets rethrow from get()).
  void run_flight_job(const std::shared_ptr<Flight>& flight,
                      const CompileRequest& req) {
    queue_depth.fetch_sub(1, std::memory_order_relaxed);
    bool abandoned = false;
    {
      std::lock_guard<std::mutex> lock(flights_mu);
      flight->started.store(true, std::memory_order_relaxed);
      if (flight->interest.load(std::memory_order_relaxed) == 0) {
        flights.erase(flight->fp);
        abandoned = true;
      }
    }
    if (abandoned) {
      flight->promise.set_value(nullptr);
      return;
    }
    try {
      run_flight(flight, req);
    } catch (...) {
      // Already stored in the future; every waiter sees it.
    }
  }

  ResultPtr compile_sync(const CompileRequest& req) {
    requests.fetch_add(1, std::memory_order_relaxed);
    trace_count("service.requests", 1);
    const Digest128 fp = fingerprint_request(req.terms, req.num_qubits,
                                             req.options, req.coupling_graph());
    for (;;) {
      if (ResultPtr hit = cache.get(fp)) return hit;
      const JoinResult j = join_or_create(fp);
      if (j.created) {
        j.flight->started.store(true, std::memory_order_relaxed);
        return run_flight(j.flight, req);
      }
      inflight_joins.fetch_add(1, std::memory_order_relaxed);
      trace_count("service.inflight_joins", 1);
      ResultPtr shared = j.flight->future.get();  // rethrows compile errors
      if (shared != nullptr) return shared;
      // Unreachable in practice: our interest blocks abandonment. Retry
      // defensively rather than hand a sync caller a null result.
    }
  }
};

CompileService::CompileService(ServiceOptions opt)
    : CompileService(std::move(opt), [](const CompileRequest& req) {
        PhoenixOptions o = req.options;
        if (req.coupling != nullptr) o.coupling = req.coupling.get();
        return phoenix_compile(req.terms, req.num_qubits, o);
      }) {}

CompileService::CompileService(ServiceOptions opt, CompileFn compile_fn)
    : impl_(std::make_unique<Impl>(std::move(opt), std::move(compile_fn))) {}

CompileService::~CompileService() = default;

CompileService::ResultPtr CompileService::compile(const CompileRequest& req) {
  return impl_->compile_sync(req);
}

CompileService::ResultPtr CompileService::compile(
    const std::vector<PauliTerm>& terms, std::size_t num_qubits,
    const PhoenixOptions& opt) {
  CompileRequest req;
  req.terms = terms;
  req.num_qubits = num_qubits;
  req.options = opt;
  return impl_->compile_sync(req);
}

CompileService::ResultPtr CompileService::Ticket::get() {
  if (state_ == nullptr)
    throw Error(Stage::Service, "Ticket::get: empty ticket");
  if (state_->cancelled.load(std::memory_order_relaxed)) return nullptr;
  if (state_->flight == nullptr) return state_->ready;
  return state_->flight->future.get();  // rethrows compile errors
}

bool CompileService::Ticket::ready() const {
  if (state_ == nullptr) return false;
  if (state_->cancelled.load(std::memory_order_relaxed)) return true;
  if (state_->flight == nullptr) return true;
  return state_->flight->future.wait_for(std::chrono::seconds(0)) ==
         std::future_status::ready;
}

bool CompileService::Ticket::cancel() {
  if (state_ == nullptr || state_->flight == nullptr) return false;
  if (state_->cancelled.exchange(true)) return false;
  if (state_->cancelled_counter != nullptr)
    state_->cancelled_counter->fetch_add(1, std::memory_order_relaxed);
  trace_count("service.cancelled", 1);
  Flight& f = *state_->flight;
  const std::size_t remaining =
      f.interest.fetch_sub(1, std::memory_order_relaxed) - 1;
  // Best effort: the compile is skipped when nobody else wants the flight
  // and the worker has not picked it up yet (the worker re-checks interest
  // under the flight-table lock before compiling).
  return remaining == 0 && !f.started.load(std::memory_order_relaxed);
}

const Digest128& CompileService::Ticket::fingerprint() const {
  static const Digest128 kEmpty{};
  return state_ == nullptr ? kEmpty : state_->fp;
}

CompileService::Ticket CompileService::submit(CompileRequest req,
                                              int priority) {
  impl_->requests.fetch_add(1, std::memory_order_relaxed);
  trace_count("service.requests", 1);
  const Digest128 fp = fingerprint_request(
      req.terms, req.num_qubits, req.options, req.coupling_graph());

  Ticket ticket;
  ticket.state_ = std::make_shared<Ticket::State>();
  ticket.state_->fp = fp;
  ticket.state_->cancelled_counter = &impl_->cancelled;

  if (ResultPtr hit = impl_->cache.get(fp)) {
    ticket.state_->ready = std::move(hit);
    return ticket;
  }

  const Impl::JoinResult j = impl_->join_or_create(fp);
  ticket.state_->flight = j.flight;
  if (!j.created) {
    impl_->inflight_joins.fetch_add(1, std::memory_order_relaxed);
    trace_count("service.inflight_joins", 1);
    return ticket;
  }

  impl_->queue_depth.fetch_add(1, std::memory_order_relaxed);
  Impl* impl = impl_.get();
  auto shared_req = std::make_shared<CompileRequest>(std::move(req));
  impl_->pool.submit(
      [impl, flight = j.flight, shared_req] {
        impl->run_flight_job(flight, *shared_req);
      },
      priority);
  return ticket;
}

std::vector<CompileService::ResultPtr> CompileService::compile_batch(
    const std::vector<CompileRequest>& reqs, int priority) {
  std::vector<Ticket> tickets;
  tickets.reserve(reqs.size());
  for (const CompileRequest& req : reqs)
    tickets.push_back(submit(req, priority));

  std::vector<ResultPtr> results;
  results.reserve(reqs.size());
  std::exception_ptr first_error;
  for (Ticket& t : tickets) {
    try {
      results.push_back(t.get());
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
      results.push_back(nullptr);
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

ServiceStats CompileService::stats() const {
  const CompileCache::Counters c = impl_->cache.counters();
  ServiceStats s;
  s.requests = impl_->requests.load(std::memory_order_relaxed);
  s.hits = c.hits;
  s.disk_hits = c.disk_hits;
  s.disk_rejects = c.disk_rejects;
  s.misses = impl_->compiles.load(std::memory_order_relaxed);
  s.inflight_joins = impl_->inflight_joins.load(std::memory_order_relaxed);
  s.evictions = c.evictions;
  s.cancelled = impl_->cancelled.load(std::memory_order_relaxed);
  s.queue_depth = impl_->queue_depth.load(std::memory_order_relaxed);
  s.cache_entries = c.entries;
  s.cache_bytes = c.bytes;
  return s;
}

}  // namespace phoenix
