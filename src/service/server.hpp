#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "service/protocol.hpp"
#include "service/service.hpp"

namespace phoenix {

struct ServerOptions {
  /// The in-process serving substrate the daemon fronts: cache (point
  /// `service.cache.disk_dir` at a shared directory to join a cross-process
  /// cache tier), worker pool, and `max_queue` admission control — a full
  /// queue surfaces to remote clients as an ErrorReply with kind Overloaded.
  ServiceOptions service;
  /// TCP listener (disabled unless `enable_tcp`). Port 0 binds an ephemeral
  /// port; read it back with ServedServer::tcp_port().
  bool enable_tcp = false;
  std::string tcp_host = "127.0.0.1";
  std::uint16_t tcp_port = 0;
  /// Unix-domain listener for local clients (empty = disabled). At least
  /// one of the two listeners must be enabled.
  std::string unix_path;
  /// Per-frame payload ceiling; larger frames are a protocol error and
  /// close the connection.
  std::size_t max_frame_payload = kMaxFramePayload;
  /// Per-connection admission control: submissions in flight beyond this
  /// are rejected with Overloaded (the connection stays usable). Bounds the
  /// waiter threads one client can pin.
  std::size_t max_inflight_per_conn = 64;
  /// Test seam: replaces the service's compile function (empty = the real
  /// phoenix_compile), so protocol-edge tests can block, fail, or
  /// cancel-check deterministically.
  CompileService::CompileFn compile_fn;
};

/// Network counters, the `net.*` siblings of ServiceStats' `service.*`
/// family (also mirrored onto any installed Trace). All monotonic except
/// the two gauges.
struct ServerStats {
  std::uint64_t accepted = 0;       ///< connections accepted
  std::uint64_t connections = 0;    ///< gauge: currently open connections
  std::uint64_t in_flight = 0;      ///< gauge: submits awaiting a reply
  std::uint64_t bytes_in = 0;       ///< frame bytes read
  std::uint64_t bytes_out = 0;      ///< frame bytes written
  std::uint64_t frame_errors = 0;   ///< malformed frames / payloads seen
  std::uint64_t submits = 0;        ///< Submit frames handled
  std::uint64_t results = 0;        ///< Result frames sent
  std::uint64_t errors_sent = 0;    ///< ErrorReply frames sent
  std::uint64_t cancels = 0;        ///< Cancel frames handled
};

/// The `phoenix_served` daemon core: listeners + thread-per-connection
/// frame loops mapped directly onto CompileService::submit / Ticket.
///
///  * `Submit` is acknowledged immediately (fingerprint + cache-hit flag)
///    and answered asynchronously with `Result` or `ErrorReply`; requests
///    multiplex freely on one connection by request_id.
///  * Per-request deadlines and mid-flight `Cancel` ride the PR 6
///    CancelToken plumbing: an expired or cancelled compile aborts
///    mid-stage server-side and the client receives the same structured
///    error an in-process caller would.
///  * Duplicate submissions — same fingerprint, any connection — join one
///    single-flight compile; results come from the shared content-addressed
///    cache, so warm hits are served in microseconds.
///
/// Thread-safe; start() may be called once.
class ServedServer {
 public:
  explicit ServedServer(ServerOptions opt);
  ~ServedServer();  ///< stop()s if still running

  ServedServer(const ServedServer&) = delete;
  ServedServer& operator=(const ServedServer&) = delete;

  /// Bind listeners and start accepting. Throws phoenix::Error (Stage::Io)
  /// when no listener is configured or binding fails.
  void start();

  /// Stop accepting, shut down every connection, and join all threads.
  /// Compiles already running are allowed to finish (their waiters discover
  /// the closed sockets when they try to reply). Idempotent.
  void stop();

  /// Port the TCP listener bound (0 when TCP is disabled or not started).
  std::uint16_t tcp_port() const;

  CompileService& service();
  ServerStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace phoenix
