#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/hash.hpp"
#include "pauli/pauli.hpp"
#include "phoenix/compiler.hpp"

namespace phoenix {

/// Canonical 128-bit content address of a compile request, the key of the
/// compile cache and the single-flight table.
///
/// Two requests get the same fingerprint iff phoenix_compile is guaranteed
/// to produce the same CompileResult for both (the pipeline is fully
/// deterministic). Concretely the hash covers:
///
///  * a fingerprint schema version (bump kFingerprintSchemaVersion whenever
///    the hashed fields or the normalization below change, so stale disk
///    caches miss instead of colliding);
///  * the register size and the NORMALIZED term list: duplicate Pauli
///    strings merged, exactly-zero coefficients dropped, then sorted by
///    symplectic content (pauli_string_less) — so permutations, duplicate
///    splits, and zero padding of the same Hamiltonian all address one cache
///    entry;
///  * every semantically relevant PhoenixOptions field: ISA, peephole level,
///    hardware-awareness, Tetris lookahead, all SabreOptions fields
///    (including the seed), SimplifyOptions, and all ValidationOptions
///    fields (validation populates the result's diagnostics/report);
///  * in hardware-aware mode, the coupling graph's vertex count and sorted
///    edge set (graphs with equal edge sets fingerprint identically however
///    their edges were inserted).
///
/// Deliberately EXCLUDED, because the compiler guarantees bit-identical
/// output regardless: `num_threads` (per-group simplify is deterministic for
/// any thread count) and `trace` (probes never change the compiled circuit;
/// the trace `stats` member is not part of the cached artifact either, see
/// src/phoenix/serialize.hpp). `simplify.search` joins that excluded set:
/// Frontier and Rescan choose bit-identically by contract. The multi-start
/// race and beam knobs (`simplify.num_starts`, `simplify.beam_width`) are
/// hashed — they legitimately change the compiled circuit (v3 added them).
/// `resynth` joined the hashed set in v4: the O4 tier rewrites the compiled
/// circuit, so Off/Logical/Routed requests must address distinct entries.
inline constexpr std::uint64_t kFingerprintSchemaVersion = 4;

/// Fingerprint a request against `coupling` (pass nullptr for logical-level
/// compilation; `opt.coupling` is ignored in favor of the argument so
/// callers owning the graph through a shared_ptr can fingerprint without
/// patching options).
Digest128 fingerprint_request(const std::vector<PauliTerm>& terms,
                              std::size_t num_qubits,
                              const PhoenixOptions& opt,
                              const Graph* coupling);

/// Convenience overload using `opt.coupling` when hardware-aware.
inline Digest128 fingerprint_request(const std::vector<PauliTerm>& terms,
                                     std::size_t num_qubits,
                                     const PhoenixOptions& opt) {
  return fingerprint_request(terms, num_qubits, opt, opt.coupling);
}

}  // namespace phoenix
