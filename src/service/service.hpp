#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "common/graph.hpp"
#include "common/hash.hpp"
#include "pauli/pauli.hpp"
#include "phoenix/compiler.hpp"
#include "service/cache.hpp"

namespace phoenix {

/// One compile request as the service schedules it. `options.coupling` must
/// stay valid for the request's lifetime; async callers that cannot
/// guarantee that should own the graph through `coupling`, which takes
/// precedence over (and keeps alive past) the raw pointer.
struct CompileRequest {
  /// Sentinel for "this request carries no deadline" (the default). Using
  /// +infinity — rather than the old magic 0 — keeps 0 unambiguous: a zero
  /// (or negative) deadline means "already expired", so a request that
  /// arrives past its budget fails immediately with DeadlineExceeded
  /// instead of silently waiting forever.
  static constexpr double kNoDeadline =
      std::numeric_limits<double>::infinity();

  std::vector<PauliTerm> terms;
  std::size_t num_qubits = 0;
  PhoenixOptions options;
  std::shared_ptr<const Graph> coupling;  ///< optional owning alternative
  /// Per-request deadline, milliseconds from submission (kNoDeadline = none;
  /// <= 0 = already expired, failing the wait immediately). Enforced twice:
  /// the waiting side (`Ticket::get` / sync `compile`) stops waiting and
  /// throws Error with kind DeadlineExceeded, and the compile itself carries
  /// a deadline token so an abandoned compile aborts mid-stage instead of
  /// burning a worker. A deduped flight runs until its most patient joiner's
  /// deadline. Cache hits are exempt: a result that is already resident
  /// costs no wait, so even an expired request is served.
  double deadline_ms = kNoDeadline;
  /// Optional caller-held cancellation token, honored inside the compile's
  /// stage loops. The service re-parents it under the flight's own token, so
  /// beware: cancelling it aborts the shared flight for every joiner (use
  /// `Ticket::cancel` for per-submission cancellation). Like
  /// `options.cancel`, excluded from the request fingerprint.
  CancelToken cancel;

  const Graph* coupling_graph() const {
    return coupling != nullptr ? coupling.get() : options.coupling;
  }
};

struct ServiceOptions {
  CacheOptions cache;
  /// Worker threads for `submit`/`compile_batch` (the service owns a
  /// dedicated ThreadPool; per-compile simplify parallelism still follows
  /// PhoenixOptions::num_threads). 0 = hardware_concurrency - 1, capped at
  /// 15; on a single-core host (or explicit 0-worker degenerate case)
  /// submitted jobs run inline at submission time.
  std::size_t num_threads = 0;
  /// Admission control for async submissions: maximum compiles accepted but
  /// not yet started (0 = unbounded). When the queue is full, a new compile
  /// is admitted only by shedding a strictly lower-priority queued flight
  /// (its waiters see Error with kind Overloaded); otherwise the submission
  /// itself is rejected with Overloaded. Cache hits and joins of in-flight
  /// compiles never consume queue slots, and synchronous `compile` calls run
  /// inline and are exempt.
  std::size_t max_queue = 0;
};

/// Point-in-time service counters (all monotonic except queue_depth and the
/// cache occupancy pair). Also mirrored into the PR 3 trace layer as
/// `service.*` counters on whatever Trace is installed on the calling
/// thread, so traced drivers see cache behavior inline with stage spans.
struct ServiceStats {
  std::uint64_t requests = 0;        ///< compile/submit/batch entries
  std::uint64_t hits = 0;            ///< served from memory cache
  std::uint64_t disk_hits = 0;       ///< served from the disk cache
  std::uint64_t disk_rejects = 0;    ///< stale/corrupt disk entries skipped
  std::uint64_t misses = 0;          ///< required an actual compile
  std::uint64_t inflight_joins = 0;  ///< deduped onto a running compile
  std::uint64_t evictions = 0;       ///< cache entries evicted by byte budget
  std::uint64_t cancelled = 0;       ///< submissions cancelled before start
  std::uint64_t cancelled_midflight = 0;  ///< running compiles token-aborted
  std::uint64_t timeouts = 0;        ///< waits abandoned at their deadline
  std::uint64_t rejected = 0;        ///< submissions shed by admission control
  std::uint64_t disk_retries = 0;    ///< transient disk I/O attempts retried
  std::uint64_t faults_injected = 0;  ///< fault::total_fired() (process-wide)
  std::uint64_t queue_depth = 0;     ///< jobs accepted but not yet started
  std::uint64_t cache_entries = 0;   ///< resident cache entries
  std::uint64_t cache_bytes = 0;     ///< resident cache byte estimate
};

/// Thread-safe serving layer in front of phoenix_compile:
///
///  * content-addressed result cache (fingerprint_request keys a sharded
///    byte-budgeted LRU, optionally persisted to disk — see cache.hpp);
///  * single-flight deduplication: N concurrent requests for one fingerprint
///    run ONE compile and share the immutable result;
///  * async submission with per-request priority and best-effort
///    cancellation, plus a batch front-end scheduling across the service's
///    thread pool.
///
/// Results are shared immutable snapshots (`shared_ptr<const CompileResult>`)
/// — a hit hands back the exact object the cold compile produced.
class CompileService {
 public:
  using ResultPtr = std::shared_ptr<const CompileResult>;
  /// Test seam / extension point: the function that actually compiles a
  /// request. Defaults to phoenix_compile with the request's coupling graph
  /// patched into the options.
  using CompileFn = std::function<CompileResult(const CompileRequest&)>;

  explicit CompileService(ServiceOptions opt = {});
  /// An empty `compile_fn` falls back to the default phoenix_compile path.
  CompileService(ServiceOptions opt, CompileFn compile_fn);
  ~CompileService();

  CompileService(const CompileService&) = delete;
  CompileService& operator=(const CompileService&) = delete;

  /// Synchronous cached compile: cache hit, join of an in-flight compile, or
  /// a cold compile on the calling thread. Compile errors propagate.
  ResultPtr compile(const CompileRequest& req);
  ResultPtr compile(const std::vector<PauliTerm>& terms,
                    std::size_t num_qubits, const PhoenixOptions& opt = {});

  /// Handle to one async submission. get() blocks for the shared result
  /// (bounded by the request's deadline_ms, when set) and rethrows the
  /// compile's error; after a successful cancel() it returns nullptr
  /// instead. All methods are safe on a default-constructed (empty) ticket:
  /// get() throws a structured Error, the others report inert defaults.
  class Ticket {
   public:
    Ticket() = default;

    /// The shared result (nullptr iff this submission was cancelled). When
    /// the request carried a deadline and it passes while waiting, the wait
    /// is abandoned (throwing Error with kind DeadlineExceeded, now and on
    /// every later call) and, if this was the last interested submission of
    /// a running flight, the compile itself is cancelled mid-stage.
    ResultPtr get();
    /// True once the shared compile finished (ready, failed, or cancelled).
    bool ready() const;
    /// Cancellation: marks this submission abandoned (its get() returns
    /// nullptr immediately). When no other submission shares the
    /// fingerprint, the compile is prevented entirely (not yet started) or
    /// cancelled mid-flight through its token (already running). Returns
    /// true when the underlying compile was (or will be) skipped or aborted
    /// on this submission's behalf.
    bool cancel();

    const Digest128& fingerprint() const;

   private:
    friend class CompileService;
    struct State;
    std::shared_ptr<State> state_;
  };

  /// Enqueue one request on the service pool. Higher priority runs first
  /// (FIFO within a priority). Cache hits return an already-ready ticket
  /// without touching the queue; duplicate fingerprints join the in-flight
  /// or queued compile instead of enqueueing another. With
  /// ServiceOptions::max_queue set, a full queue either sheds a lower-
  /// priority queued compile or rejects this submission by throwing Error
  /// with kind Overloaded (see max_queue).
  Ticket submit(CompileRequest req, int priority = 0);

  /// Schedule the whole batch (shared priority), then wait for every entry.
  /// Results come back in request order; duplicates within the batch are
  /// deduplicated by single-flight. If any compile failed, the first error
  /// (in request order) is rethrown after the batch drains.
  std::vector<ResultPtr> compile_batch(const std::vector<CompileRequest>& reqs,
                                       int priority = 0);

  ServiceStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace phoenix
