#include "service/fingerprint.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "hamlib/io.hpp"

namespace phoenix {

Digest128 fingerprint_request(const std::vector<PauliTerm>& terms,
                              std::size_t num_qubits,
                              const PhoenixOptions& opt,
                              const Graph* coupling) {
  Hash128 h(kFingerprintSchemaVersion);
  h.write_size(num_qubits);

  // Normalize: merge duplicates / drop exact zeros (canonicalize_terms),
  // then sort by symplectic content so the hash is permutation-invariant.
  std::vector<PauliTerm> canon = terms;
  canonicalize_terms(canon);
  std::sort(canon.begin(), canon.end(),
            [](const PauliTerm& a, const PauliTerm& b) {
              return pauli_string_less(a.string, b.string);
            });
  h.write_size(canon.size());
  for (const PauliTerm& t : canon) {
    t.string.hash_into(h);
    h.write_double(t.coeff);
  }

  // Options — every field that can change the compiled artifact. Fields
  // that only affect execution (num_threads, trace, cancel tokens, request
  // deadlines) are deliberately absent: a deadline changes whether a compile
  // finishes, never what it produces, and hashing a token would split the
  // cache for identical programs.
  h.write_u64(static_cast<std::uint64_t>(opt.isa));
  h.write_u64(static_cast<std::uint64_t>(opt.peephole));
  h.write_u64(static_cast<std::uint64_t>(opt.peephole_engine));
  h.write_u64(static_cast<std::uint64_t>(opt.resynth));
  h.write_bool(opt.hardware_aware);
  h.write_size(opt.lookahead);
  h.write_size(opt.sabre.extended_set_size);
  h.write_double(opt.sabre.extended_set_weight);
  h.write_double(opt.sabre.decay_delta);
  h.write_size(opt.sabre.decay_reset);
  h.write_size(opt.sabre.layout_rounds);
  h.write_u64(opt.sabre.seed);
  h.write_size(opt.simplify.max_epochs);
  // simplify.search is deliberately NOT hashed: Frontier and Rescan choose
  // bit-identically by contract (cross-checked under expensive checks), so
  // hashing it would split the cache for identical artifacts — same
  // rationale as num_threads. The race/beam knobs DO change the output.
  h.write_size(opt.simplify.num_starts);
  h.write_size(opt.simplify.beam_width);
  h.write_u64(static_cast<std::uint64_t>(opt.validation.level));
  h.write_size(opt.validation.exact_max_qubits);
  h.write_double(opt.validation.angle_tol);
  h.write_double(opt.validation.max_infidelity);

  if (opt.hardware_aware) {
    if (coupling == nullptr)
      throw Error(Stage::Service,
                  "fingerprint_request: hardware-aware request without a "
                  "coupling graph");
    h.write_size(coupling->num_vertices());
    std::vector<std::pair<std::size_t, std::size_t>> edges = coupling->edges();
    for (auto& [a, b] : edges)
      if (a > b) std::swap(a, b);
    std::sort(edges.begin(), edges.end());
    h.write_size(edges.size());
    for (const auto& [a, b] : edges) {
      h.write_size(a);
      h.write_size(b);
    }
  }
  return h.digest();
}

}  // namespace phoenix
