#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "service/service.hpp"

namespace phoenix {

/// Wire protocol of the `phoenix_served` daemon: length-prefixed binary
/// frames over a byte stream (TCP or a Unix-domain socket).
///
/// Frame layout (all integers little-endian):
///
///   offset  size  field
///        0     4  magic        "PHX1" (0x31 0x58 0x48 0x50 on the wire)
///        4     2  version      kProtocolVersion; mismatches are rejected
///        6     2  type         FrameType
///        8     8  request_id   client-chosen correlation id, echoed back
///       16     4  payload_len  bytes of payload following the header
///       20     -  payload      type-specific document (see below)
///
/// Versioning rules: the magic + version pair is checked on every frame, not
/// once per connection, so a stale client fails fast with a structured
/// error instead of desynchronizing the stream. Payload documents carry
/// their own schema tags (`phoenix-compile-request v<N>`,
/// `phoenix-compile-result v<N>`) exactly like the disk cache entries, so
/// protocol framing and payload schema can evolve independently.
///
/// Conversation model: the client multiplexes requests on one connection by
/// request_id. `Submit` is answered immediately with `SubmitAck` (the
/// request's fingerprint and whether it was served from cache), then
/// asynchronously with exactly one of `Result` (the serialized
/// CompileResult, bit-identical to an in-process compile) or `ErrorReply`
/// (structured kind/stage/detail — DeadlineExceeded for expired budgets,
/// Overloaded for admission-control rejects, Cancelled after a mid-flight
/// cancel). `Poll`, `Cancel`, and `Stats` are answered synchronously with
/// `Status`, `CancelAck`, and `StatsReply`.
///
/// Error mapping: phoenix::Error travels as `err <kind> <stage> <detail>`
/// (enum ordinals + escaped detail) and is rethrown client-side with the
/// same kind and stage — a deadline that expires on the server is
/// indistinguishable from one that expired in-process.
inline constexpr std::uint32_t kFrameMagic = 0x31584850u;  // "PHX1"
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 20;
/// Hard ceiling a decoder enforces on payload_len before allocating:
/// oversized frames are a protocol error (kind Failed, Stage::Parse), not an
/// allocation. Servers and clients may configure a lower limit.
inline constexpr std::size_t kMaxFramePayload = 64u << 20;

enum class FrameType : std::uint16_t {
  Submit = 1,     ///< client -> server: compile_request_to_bytes payload
  SubmitAck = 2,  ///< server -> client: `ack <fingerprint-hex> <hit 0|1>`
  Result = 3,     ///< server -> client: compile_result_to_bytes payload
  ErrorReply = 4, ///< server -> client: `err <kind> <stage> <detail>`
  Poll = 5,       ///< client -> server: empty payload
  Status = 6,     ///< server -> client: `status <ready 0|1> <known 0|1>`
  Cancel = 7,     ///< client -> server: empty payload
  CancelAck = 8,  ///< server -> client: `cancelled <0|1>`
  Stats = 9,      ///< client -> server: empty payload
  StatsReply = 10 ///< server -> client: `stat <name> <u64>` per line
};

const char* frame_type_name(FrameType t);

struct Frame {
  FrameType type = FrameType::Submit;
  std::uint64_t request_id = 0;
  std::string payload;
};

/// Header + payload as one contiguous byte string, ready to write.
std::string encode_frame(const Frame& f);

/// Append one encoded frame to `out` in place — the batched-write paths
/// (submit bursts, coalesced warm replies) build multi-frame byte strings
/// with one payload copy per frame and no intermediate allocations.
void append_frame(std::string& out, FrameType type, std::uint64_t request_id,
                  const std::string& payload);

/// Incremental decoder result: a complete frame, or "need more bytes".
/// Malformed input (bad magic, foreign version, payload_len above
/// `max_payload`) throws phoenix::Error (Stage::Parse) — the connection is
/// beyond recovery because stream framing is lost.
enum class DecodeResult { Frame, NeedMore };
DecodeResult decode_frame(const char* data, std::size_t size,
                          std::size_t max_payload, Frame& out,
                          std::size_t& consumed);

/// Serialize a compile request (+ scheduling priority) as the Submit
/// payload: register size, normalized-order-preserving term list, the
/// output-relevant option subset the daemon accepts remotely (ISA, peephole
/// level/engine, validation level, simplify search knobs, Tetris lookahead,
/// and — when hardware-aware — the coupling edge list), the deadline and
/// priority. `options.coupling`/`coupling` travel as an explicit edge list;
/// cancel tokens and thread counts deliberately do not travel.
std::string compile_request_to_bytes(const CompileRequest& req, int priority);

/// Parse a Submit payload. Throws phoenix::Error (Stage::Parse) on schema
/// mismatch, malformed fields, out-of-range enum ordinals, or trailing
/// bytes. The returned request owns its coupling graph via `req.coupling`.
CompileRequest compile_request_from_bytes(const std::string& bytes,
                                          int& priority);

/// ErrorReply payload codec.
std::string error_to_payload(const Error& e);
/// Reconstruct the Error carried by an ErrorReply payload (best-effort:
/// unknown ordinals map to Failed/Service).
Error error_from_payload(const std::string& payload);

}  // namespace phoenix
