#include "service/cache.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <list>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/trace.hpp"
#include "phoenix/serialize.hpp"

namespace phoenix {

namespace fs = std::filesystem;

namespace {

struct Entry {
  Digest128 key;
  CompileCache::ResultPtr value;
  std::size_t bytes = 0;
};

/// Trailing integrity line appended after the serialized payload:
/// `checksum <32-hex Hash128 of payload> <payload length>\n`. A reader that
/// cannot reproduce the digest over exactly that prefix is looking at a torn
/// write, bit rot, or a pre-footer legacy file — all treated as corrupt.
std::string checksum_footer(const std::string& payload) {
  Hash128 h;
  h.write_bytes(payload.data(), payload.size());
  return "checksum " + h.digest().hex() + " " +
         std::to_string(payload.size()) + "\n";
}

/// Validate `blob` (payload + footer) in place: on success truncates it to
/// the bare payload and returns true.
bool verify_and_strip_footer(std::string& blob) {
  if (blob.empty() || blob.back() != '\n') return false;
  const std::size_t line_start = blob.rfind('\n', blob.size() - 2);
  const std::size_t footer = line_start == std::string::npos ? 0
                                                             : line_start + 1;
  std::istringstream line(blob.substr(footer, blob.size() - footer - 1));
  std::string tag, hex;
  std::uint64_t len = 0;
  if (!(line >> tag >> hex >> len) || tag != "checksum") return false;
  const auto digest = Digest128::from_hex(hex);
  if (!digest.has_value() || len != footer) return false;
  Hash128 h;
  h.write_bytes(blob.data(), footer);
  if (h.digest() != *digest) return false;
  blob.resize(footer);
  return true;
}

/// Write `data` to `path` with an fsync before returning success, via raw
/// POSIX I/O so a short write or failed flush is visible (ofstream swallows
/// both until close). Under fault injection `disk.torn` the write silently
/// truncates to half the payload and still reports success — the torn-write
/// crash the checksum footer exists to catch.
bool write_file_durable(const std::string& path, const std::string& data) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  std::size_t left = data.size();
  if (fault::triggered("disk.torn")) left /= 2;
  const char* p = data.data();
  bool ok = true;
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (ok && ::fsync(fd) != 0) ok = false;
  if (::close(fd) != 0) ok = false;
  return ok;
}

/// Flush the directory entry so the rename itself survives a crash.
void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

void backoff_sleep(double ms) {
  if (ms > 0.0)
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

/// Per-process nonce for writer temp names: a fresh CompileCache in the same
/// process (or a second daemon on the same directory) can never reuse a live
/// writer's temp file. Seeded from the clock so nonces differ across forks
/// that inherit the counter.
std::uint64_t next_tmp_nonce() {
  static std::atomic<std::uint64_t> counter{
      static_cast<std::uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count()) |
      1};
  return counter.fetch_add(0x9e3779b97f4a7c15ull, std::memory_order_relaxed);
}

std::string tmp_stamp_suffix() {
  char buf[64];
  std::snprintf(buf, sizeof buf, ".%ld-%016llx.tmp",
                static_cast<long>(::getpid()),
                static_cast<unsigned long long>(next_tmp_nonce()));
  return buf;
}

/// Parse the `.<pid>-<nonce>.tmp` stamp out of a temp file name. Returns
/// false for unstamped legacy litter (pre-stamp builds).
bool parse_tmp_stamp(const std::string& filename, long& pid) {
  if (filename.size() < 5 || filename.compare(filename.size() - 4, 4, ".tmp"))
    return false;
  const std::size_t dash = filename.rfind('-');
  if (dash == std::string::npos) return false;
  const std::size_t dot = filename.rfind('.', dash);
  if (dot == std::string::npos || dot + 1 >= dash) return false;
  long value = 0;
  for (std::size_t i = dot + 1; i < dash; ++i) {
    const char c = filename[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  pid = value;
  return pid > 0;
}

/// Conservative liveness probe: only an ESRCH verdict proves the writer is
/// gone. EPERM (a daemon under another uid) and success both mean "assume
/// alive" — the grace window handles genuinely wedged writers.
bool pid_provably_dead(long pid) {
  return ::kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH;
}

double file_age_seconds(const fs::path& p) {
  std::error_code ec;
  const auto mtime = fs::last_write_time(p, ec);
  if (ec) return 0.0;  // can't tell: treat as brand new (never sweep)
  return std::chrono::duration<double>(fs::file_time_type::clock::now() -
                                       mtime)
      .count();
}

}  // namespace

struct CompileCache::Impl {
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<Digest128, std::list<Entry>::iterator, Digest128Hash>
        index;
    std::size_t bytes = 0;
  };

  CacheOptions opt;
  std::vector<Shard> shards;
  std::size_t shard_budget = 0;

  std::atomic<std::uint64_t> hits{0}, misses{0}, disk_hits{0}, disk_rejects{0},
      disk_retries{0}, disk_write_failures{0}, evictions{0}, bytes{0},
      entries{0};

  explicit Impl(CacheOptions o) : opt(std::move(o)) {
    if (opt.shards == 0) opt.shards = 1;
    shards = std::vector<Shard>(opt.shards);
    shard_budget = opt.max_bytes / opt.shards;
    if (!opt.disk_dir.empty()) {
      std::error_code ec;
      fs::create_directories(opt.disk_dir, ec);
      if (ec)
        throw Error(Stage::Service, "CompileCache: cannot create disk dir '" +
                                        opt.disk_dir + "': " + ec.message());
      sweep_orphaned_tmp();
    }
  }

  /// Sweep `*.tmp` litter left by writers that crashed between open and
  /// rename. Published `.phxc` entries are never touched, and — because the
  /// directory may be shared across processes — a temp file is only an
  /// orphan when its stamped writer PID is provably dead or the file has
  /// outlived the grace window. Anything else may be a live writer of
  /// another daemon mid-write; deleting it would yank the file out from
  /// under its rename.
  void sweep_orphaned_tmp() {
    std::error_code ec;
    for (const auto& e :
         fs::recursive_directory_iterator(opt.disk_dir, ec)) {
      if (!e.is_regular_file(ec)) continue;
      const fs::path& p = e.path();
      if (p.extension() != ".tmp") continue;
      long pid = 0;
      const bool stamped = parse_tmp_stamp(p.filename().string(), pid);
      const bool dead_owner = stamped && pid_provably_dead(pid);
      if (dead_owner || file_age_seconds(p) >= opt.sweep_grace_seconds)
        fs::remove(p, ec);
    }
  }

  Shard& shard_for(const Digest128& key) {
    return shards[static_cast<std::size_t>(key.lo) % shards.size()];
  }

  /// Published location: fingerprint-sharded subdirectory (first two hex
  /// digits, 256 shards) so a shared cache tier spreads directory traffic.
  std::string disk_path(const Digest128& key) const {
    const std::string hex = key.hex();
    return opt.disk_dir + "/" + hex.substr(0, 2) + "/" + hex + ".phxc";
  }

  /// Pre-sharding flat location, still consulted on read so a cache dir
  /// written by an older build stays warm after an upgrade.
  std::string legacy_disk_path(const Digest128& key) const {
    return opt.disk_dir + "/" + key.hex() + ".phxc";
  }

  /// Insert into the shard (caller does NOT hold the shard lock) and trim to
  /// the byte budget. Refreshing an existing key replaces its value.
  void insert(const Digest128& key, ResultPtr value) {
    const std::size_t sz = compile_result_approx_bytes(*value);
    Shard& s = shard_for(key);
    std::lock_guard<std::mutex> lock(s.mu);
    if (const auto it = s.index.find(key); it != s.index.end()) {
      s.bytes -= it->second->bytes;
      bytes.fetch_sub(it->second->bytes, std::memory_order_relaxed);
      s.lru.erase(it->second);
      s.index.erase(it);
      entries.fetch_sub(1, std::memory_order_relaxed);
    }
    s.lru.push_front(Entry{key, std::move(value), sz});
    s.index[key] = s.lru.begin();
    s.bytes += sz;
    bytes.fetch_add(sz, std::memory_order_relaxed);
    entries.fetch_add(1, std::memory_order_relaxed);
    // Evict from the cold end until back under budget — but never the entry
    // just inserted, so an oversized result is admitted alone.
    while (s.bytes > shard_budget && s.lru.size() > 1) {
      const Entry& victim = s.lru.back();
      s.bytes -= victim.bytes;
      bytes.fetch_sub(victim.bytes, std::memory_order_relaxed);
      s.index.erase(victim.key);
      s.lru.pop_back();
      entries.fetch_sub(1, std::memory_order_relaxed);
      evictions.fetch_add(1, std::memory_order_relaxed);
      trace_count("service.cache.evictions", 1);
    }
  }

  ResultPtr lookup_memory(const Digest128& key) {
    Shard& s = shard_for(key);
    std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.index.find(key);
    if (it == s.index.end()) return nullptr;
    s.lru.splice(s.lru.begin(), s.lru, it->second);  // touch
    return it->second->value;
  }

  /// Move a damaged entry out of the lookup path (overwriting any previous
  /// quarantine of the same key) so it is inspected at most once and the
  /// next put() republishes a clean file under the original name.
  void quarantine(const std::string& path) {
    std::error_code ec;
    fs::rename(path, path + ".quarantine", ec);
    if (ec) fs::remove(path, ec);  // worst case: just get it out of the way
    disk_rejects.fetch_add(1, std::memory_order_relaxed);
    trace_count("service.cache.disk_rejects", 1);
  }

  ResultPtr lookup_disk(const Digest128& key) {
    if (opt.disk_dir.empty()) return nullptr;
    if (ResultPtr hit = lookup_disk_at(disk_path(key))) return hit;
    // Entries persisted before the sharded layout live flat in disk_dir.
    return lookup_disk_at(legacy_disk_path(key));
  }

  ResultPtr lookup_disk_at(const std::string& path) {
    std::string blob;
    bool read_ok = false;
    for (std::size_t attempt = 0; attempt <= opt.disk_retry_limit; ++attempt) {
      if (attempt > 0) {
        disk_retries.fetch_add(1, std::memory_order_relaxed);
        trace_count("service.cache.disk_retries", 1);
        backoff_sleep(opt.disk_retry_backoff_ms);
      }
      if (fault::triggered("disk.read")) continue;  // injected transient error
      std::ifstream in(path, std::ios::binary);
      if (!in) return nullptr;  // no entry: a plain miss, nothing to retry
      blob.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
      if (in.bad()) continue;  // transient I/O failure mid-read
      read_ok = true;
      break;
    }
    if (!read_ok) return nullptr;
    // Beyond this point a failure is durable damage, not a transient error:
    // quarantine the file so the key recompiles instead of rereading it.
    if (!verify_and_strip_footer(blob)) {
      quarantine(path);
      return nullptr;
    }
    try {
      return std::make_shared<const CompileResult>(
          compile_result_from_bytes(blob));
    } catch (const Error&) {
      quarantine(path);  // checksum ok but stale/unparseable schema
      return nullptr;
    }
  }

  void write_disk(const Digest128& key, const CompileResult& value) {
    if (opt.disk_dir.empty()) return;
    const std::string path = disk_path(key);
    const std::string shard_dir = fs::path(path).parent_path().string();
    // PID + nonce stamp: concurrent writers — other daemons on the shared
    // directory, or a second cache instance in this process — each write a
    // distinct temp file, and the startup sweep can tell a live writer's
    // temp from a crashed one's.
    const std::string tmp = path + tmp_stamp_suffix();
    std::string doc = compile_result_to_bytes(value);
    doc += checksum_footer(doc);
    for (std::size_t attempt = 0; attempt <= opt.disk_retry_limit; ++attempt) {
      if (attempt > 0) {
        disk_retries.fetch_add(1, std::memory_order_relaxed);
        trace_count("service.cache.disk_retries", 1);
        backoff_sleep(opt.disk_retry_backoff_ms);
      }
      std::error_code ec;
      fs::create_directories(shard_dir, ec);
      if (ec) continue;
      if (fault::triggered("disk.write") || !write_file_durable(tmp, doc)) {
        fs::remove(tmp, ec);  // never leave a half-written tmp behind
        continue;
      }
      fs::rename(tmp, path, ec);  // atomic publish on POSIX
      if (ec) {
        fs::remove(tmp, ec);
        continue;
      }
      fsync_dir(shard_dir);
      return;
    }
    // Persistence is best-effort: the in-memory entry stands, but make the
    // abandonment observable instead of silently dropping it.
    disk_write_failures.fetch_add(1, std::memory_order_relaxed);
    trace_count("service.cache.disk_write_failures", 1);
  }
};

CompileCache::CompileCache(CacheOptions opt)
    : impl_(std::make_unique<Impl>(std::move(opt))) {}

CompileCache::~CompileCache() = default;

CompileCache::ResultPtr CompileCache::get(const Digest128& key) {
  if (ResultPtr hit = impl_->lookup_memory(key)) {
    impl_->hits.fetch_add(1, std::memory_order_relaxed);
    trace_count("service.cache.hits", 1);
    return hit;
  }
  if (ResultPtr disk = impl_->lookup_disk(key)) {
    impl_->disk_hits.fetch_add(1, std::memory_order_relaxed);
    trace_count("service.cache.disk_hits", 1);
    impl_->insert(key, disk);
    return disk;
  }
  impl_->misses.fetch_add(1, std::memory_order_relaxed);
  trace_count("service.cache.misses", 1);
  return nullptr;
}

void CompileCache::put(const Digest128& key, ResultPtr value) {
  if (value == nullptr) return;
  impl_->write_disk(key, *value);
  impl_->insert(key, std::move(value));
}

void CompileCache::clear() {
  for (auto& s : impl_->shards) {
    std::lock_guard<std::mutex> lock(s.mu);
    for (const Entry& e : s.lru) {
      impl_->bytes.fetch_sub(e.bytes, std::memory_order_relaxed);
      impl_->entries.fetch_sub(1, std::memory_order_relaxed);
    }
    s.lru.clear();
    s.index.clear();
    s.bytes = 0;
  }
}

CompileCache::Counters CompileCache::counters() const {
  Counters c;
  c.hits = impl_->hits.load(std::memory_order_relaxed);
  c.misses = impl_->misses.load(std::memory_order_relaxed);
  c.disk_hits = impl_->disk_hits.load(std::memory_order_relaxed);
  c.disk_rejects = impl_->disk_rejects.load(std::memory_order_relaxed);
  c.disk_retries = impl_->disk_retries.load(std::memory_order_relaxed);
  c.disk_write_failures =
      impl_->disk_write_failures.load(std::memory_order_relaxed);
  c.evictions = impl_->evictions.load(std::memory_order_relaxed);
  c.bytes = impl_->bytes.load(std::memory_order_relaxed);
  c.entries = impl_->entries.load(std::memory_order_relaxed);
  return c;
}

}  // namespace phoenix
