#include "service/cache.hpp"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <list>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/trace.hpp"
#include "phoenix/serialize.hpp"

namespace phoenix {

namespace fs = std::filesystem;

namespace {

struct Entry {
  Digest128 key;
  CompileCache::ResultPtr value;
  std::size_t bytes = 0;
};

}  // namespace

struct CompileCache::Impl {
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<Digest128, std::list<Entry>::iterator, Digest128Hash>
        index;
    std::size_t bytes = 0;
  };

  CacheOptions opt;
  std::vector<Shard> shards;
  std::size_t shard_budget = 0;

  std::atomic<std::uint64_t> hits{0}, misses{0}, disk_hits{0}, disk_rejects{0},
      evictions{0}, bytes{0}, entries{0};

  explicit Impl(CacheOptions o) : opt(std::move(o)) {
    if (opt.shards == 0) opt.shards = 1;
    shards = std::vector<Shard>(opt.shards);
    shard_budget = opt.max_bytes / opt.shards;
    if (!opt.disk_dir.empty()) {
      std::error_code ec;
      fs::create_directories(opt.disk_dir, ec);
      if (ec)
        throw Error(Stage::Service, "CompileCache: cannot create disk dir '" +
                                        opt.disk_dir + "': " + ec.message());
    }
  }

  Shard& shard_for(const Digest128& key) {
    return shards[static_cast<std::size_t>(key.lo) % shards.size()];
  }

  std::string disk_path(const Digest128& key) const {
    return opt.disk_dir + "/" + key.hex() + ".phxc";
  }

  /// Insert into the shard (caller does NOT hold the shard lock) and trim to
  /// the byte budget. Refreshing an existing key replaces its value.
  void insert(const Digest128& key, ResultPtr value) {
    const std::size_t sz = compile_result_approx_bytes(*value);
    Shard& s = shard_for(key);
    std::lock_guard<std::mutex> lock(s.mu);
    if (const auto it = s.index.find(key); it != s.index.end()) {
      s.bytes -= it->second->bytes;
      bytes.fetch_sub(it->second->bytes, std::memory_order_relaxed);
      s.lru.erase(it->second);
      s.index.erase(it);
      entries.fetch_sub(1, std::memory_order_relaxed);
    }
    s.lru.push_front(Entry{key, std::move(value), sz});
    s.index[key] = s.lru.begin();
    s.bytes += sz;
    bytes.fetch_add(sz, std::memory_order_relaxed);
    entries.fetch_add(1, std::memory_order_relaxed);
    // Evict from the cold end until back under budget — but never the entry
    // just inserted, so an oversized result is admitted alone.
    while (s.bytes > shard_budget && s.lru.size() > 1) {
      const Entry& victim = s.lru.back();
      s.bytes -= victim.bytes;
      bytes.fetch_sub(victim.bytes, std::memory_order_relaxed);
      s.index.erase(victim.key);
      s.lru.pop_back();
      entries.fetch_sub(1, std::memory_order_relaxed);
      evictions.fetch_add(1, std::memory_order_relaxed);
      trace_count("service.cache.evictions", 1);
    }
  }

  ResultPtr lookup_memory(const Digest128& key) {
    Shard& s = shard_for(key);
    std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.index.find(key);
    if (it == s.index.end()) return nullptr;
    s.lru.splice(s.lru.begin(), s.lru, it->second);  // touch
    return it->second->value;
  }

  ResultPtr lookup_disk(const Digest128& key) {
    if (opt.disk_dir.empty()) return nullptr;
    std::ifstream in(disk_path(key), std::ios::binary);
    if (!in) return nullptr;
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
      auto parsed =
          std::make_shared<const CompileResult>(compile_result_from_bytes(buf.str()));
      return parsed;
    } catch (const Error&) {
      // Stale schema or corruption: treat as a miss; the entry will be
      // rewritten (same path) the next time this key is put.
      disk_rejects.fetch_add(1, std::memory_order_relaxed);
      trace_count("service.cache.disk_rejects", 1);
      return nullptr;
    }
  }

  void write_disk(const Digest128& key, const CompileResult& value) {
    if (opt.disk_dir.empty()) return;
    const std::string path = disk_path(key);
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) return;  // persistence is best-effort; memory entry stands
      out << compile_result_to_bytes(value);
      if (!out) {
        std::error_code ec;
        fs::remove(tmp, ec);
        return;
      }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);  // atomic publish on POSIX
    if (ec) fs::remove(tmp, ec);
  }
};

CompileCache::CompileCache(CacheOptions opt)
    : impl_(std::make_unique<Impl>(std::move(opt))) {}

CompileCache::~CompileCache() = default;

CompileCache::ResultPtr CompileCache::get(const Digest128& key) {
  if (ResultPtr hit = impl_->lookup_memory(key)) {
    impl_->hits.fetch_add(1, std::memory_order_relaxed);
    trace_count("service.cache.hits", 1);
    return hit;
  }
  if (ResultPtr disk = impl_->lookup_disk(key)) {
    impl_->disk_hits.fetch_add(1, std::memory_order_relaxed);
    trace_count("service.cache.disk_hits", 1);
    impl_->insert(key, disk);
    return disk;
  }
  impl_->misses.fetch_add(1, std::memory_order_relaxed);
  trace_count("service.cache.misses", 1);
  return nullptr;
}

void CompileCache::put(const Digest128& key, ResultPtr value) {
  if (value == nullptr) return;
  impl_->write_disk(key, *value);
  impl_->insert(key, std::move(value));
}

void CompileCache::clear() {
  for (auto& s : impl_->shards) {
    std::lock_guard<std::mutex> lock(s.mu);
    for (const Entry& e : s.lru) {
      impl_->bytes.fetch_sub(e.bytes, std::memory_order_relaxed);
      impl_->entries.fetch_sub(1, std::memory_order_relaxed);
    }
    s.lru.clear();
    s.index.clear();
    s.bytes = 0;
  }
}

CompileCache::Counters CompileCache::counters() const {
  Counters c;
  c.hits = impl_->hits.load(std::memory_order_relaxed);
  c.misses = impl_->misses.load(std::memory_order_relaxed);
  c.disk_hits = impl_->disk_hits.load(std::memory_order_relaxed);
  c.disk_rejects = impl_->disk_rejects.load(std::memory_order_relaxed);
  c.evictions = impl_->evictions.load(std::memory_order_relaxed);
  c.bytes = impl_->bytes.load(std::memory_order_relaxed);
  c.entries = impl_->entries.load(std::memory_order_relaxed);
  return c;
}

}  // namespace phoenix
