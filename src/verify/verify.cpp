#include "verify/verify.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <complex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "circuit/synthesis.hpp"
#include "common/error.hpp"
#include "common/trace.hpp"
#include "pauli/bsf.hpp"
#include "pauli/tableau.hpp"
#include "sim/matrix.hpp"
#include "sim/statevector.hpp"

namespace phoenix {

const char* validation_status_name(ValidationStatus s) {
  switch (s) {
    case ValidationStatus::Pass: return "pass";
    case ValidationStatus::Fail: return "fail";
    case ValidationStatus::Inconclusive: return "inconclusive";
  }
  return "unknown";
}

namespace {

constexpr double kSnapTol = 1e-6;  ///< numeric slack when snapping to Clifford

double dist_to_multiple(double x, double m) {
  return std::abs(std::remainder(x, m));
}

// --- 2x2 complex matrix helpers (row-major {a00, a01, a10, a11}) ----------

using Mat2 = std::array<Complex, 4>;

Mat2 mat_mul(const Mat2& a, const Mat2& b) {
  return {a[0] * b[0] + a[1] * b[2], a[0] * b[1] + a[1] * b[3],
          a[2] * b[0] + a[3] * b[2], a[2] * b[1] + a[3] * b[3]};
}

Mat2 mat_adjoint(const Mat2& a) {
  return {std::conj(a[0]), std::conj(a[2]), std::conj(a[1]), std::conj(a[3])};
}

const Mat2& pauli_matrix(Pauli p) {
  static const Mat2 x{0, 1, 1, 0};
  static const Mat2 y{0, Complex{0, -1}, Complex{0, 1}, 0};
  static const Mat2 z{1, 0, 0, -1};
  switch (p) {
    case Pauli::X: return x;
    case Pauli::Y: return y;
    default: return z;
  }
}

/// exp(-i r sigma_A) when sign is +, exp(+i r sigma_A) when sign is -.
Mat2 axis_rotation(Pauli axis, bool negated, double r) {
  const double c = std::cos(r);
  const Complex ms = Complex{0, negated ? 1.0 : -1.0} * std::sin(r);
  const Mat2& p = pauli_matrix(axis);
  return {c + ms * p[0], ms * p[1], ms * p[2], c + ms * p[3]};
}

/// True when m is the identity up to global phase.
bool is_phase_identity(const Mat2& m) {
  return std::abs(m[1]) < kSnapTol && std::abs(m[2]) < kSnapTol &&
         std::abs(m[0] - m[3]) < kSnapTol &&
         std::abs(std::abs(m[0]) - 1.0) < kSnapTol;
}

/// Snap a 2x2 matrix to a signed Pauli; nullopt when it is not one.
std::optional<std::pair<Pauli, bool>> snap_pauli(const Mat2& m) {
  for (Pauli p : {Pauli::X, Pauli::Y, Pauli::Z}) {
    const Mat2& s = pauli_matrix(p);
    for (bool neg : {false, true}) {
      double diff = 0;
      for (int i = 0; i < 4; ++i)
        diff = std::max(diff, std::abs(m[i] - (neg ? -s[i] : s[i])));
      if (diff < kSnapTol) return std::make_pair(p, neg);
    }
  }
  return std::nullopt;
}

/// Conjugation action of a 1Q unitary, encoded as a small integer, or -1
/// when the matrix is not Clifford (action does not map Paulis to Paulis).
int action_key(const Mat2& u) {
  const Mat2 ua = mat_adjoint(u);
  const auto ix = snap_pauli(mat_mul(mat_mul(u, pauli_matrix(Pauli::X)), ua));
  const auto iz = snap_pauli(mat_mul(mat_mul(u, pauli_matrix(Pauli::Z)), ua));
  if (!ix || !iz) return -1;
  const int px = static_cast<int>(ix->first) - 1, sx = ix->second ? 1 : 0;
  const int pz = static_cast<int>(iz->first) - 1, sz = iz->second ? 1 : 0;
  return ((px * 2 + sx) * 3 + pz) * 2 + sz;
}

/// The 24 single-qubit Cliffords as shortest H/S words (time order), keyed
/// by conjugation action. Built once by BFS over {H, S} products.
const std::unordered_map<int, std::string>& cliff1q_words() {
  static const std::unordered_map<int, std::string> table = [] {
    std::unordered_map<int, std::string> t;
    const Mat2 h = gate_matrix_1q(Gate::h(0));
    const Mat2 s = gate_matrix_1q(Gate::s(0));
    std::vector<std::pair<Mat2, std::string>> queue{{Mat2{1, 0, 0, 1}, ""}};
    t.emplace(action_key(queue.front().first), "");
    for (std::size_t i = 0; i < queue.size() && t.size() < 24; ++i) {
      const auto [mat, word] = queue[i];
      for (char g : {'H', 'S'}) {
        // Appending a gate in time order left-multiplies the matrix.
        const Mat2 next = mat_mul(g == 'H' ? h : s, mat);
        const int key = action_key(next);
        if (t.emplace(key, word + g).second) queue.emplace_back(next, word + g);
      }
    }
    return t;
  }();
  return table;
}

/// Matrix representative of each Clifford action key (the product of its
/// word from cliff1q_words, so frame_apply_word(key) realizes exactly this
/// matrix up to global phase).
const std::unordered_map<int, Mat2>& cliff1q_matrices() {
  static const std::unordered_map<int, Mat2> table = [] {
    std::unordered_map<int, Mat2> t;
    const Mat2 h = gate_matrix_1q(Gate::h(0));
    const Mat2 s = gate_matrix_1q(Gate::s(0));
    for (const auto& [key, word] : cliff1q_words()) {
      Mat2 m{1, 0, 0, 1};
      for (char g : word) m = mat_mul(g == 'H' ? h : s, m);
      t.emplace(key, m);
    }
    return t;
  }();
  return table;
}

// --- Pauli frame: source strings conjugated through the Clifford prefix ---

/// Applies one Clifford gate to both the source-term frame (BSF rows) and
/// the residual tableau. Only the gate kinds the walk feeds it (2Q gates
/// and the H/S letters of a 1Q Clifford word) are handled.
void frame_apply(Bsf& frame, CliffordTableau& tab, const Gate& g) {
  switch (g.kind) {
    case GateKind::H:
      frame.apply_h(g.q0);
      break;
    case GateKind::S:
      frame.apply_s(g.q0);
      break;
    case GateKind::Cnot:
      frame.apply_cnot(g.q0, g.q1);
      break;
    case GateKind::Cz:
      frame.apply_h(g.q1);
      frame.apply_cnot(g.q0, g.q1);
      frame.apply_h(g.q1);
      break;
    case GateKind::Swap:
      frame.apply_cnot(g.q0, g.q1);
      frame.apply_cnot(g.q1, g.q0);
      frame.apply_cnot(g.q0, g.q1);
      break;
    default:
      throw Error(Stage::Validation,
                  std::string("frame_apply: unsupported gate ") + gate_name(g.kind));
  }
  tab.apply_gate(g);
}

void frame_apply_word(Bsf& frame, CliffordTableau& tab, std::size_t q,
                      const std::string& word) {
  for (char c : word)
    frame_apply(frame, tab, c == 'H' ? Gate::h(q) : Gate::s(q));
}

/// One unconsumed source row whose frame image is a weight-1 Pauli on the
/// run's qubit — a candidate to be realized by the run's rotation content.
struct RunCandidate {
  std::size_t row;
  Pauli axis;    ///< image operator on the qubit
  bool negated;  ///< image sign (true: image is -axis)
  double angle;  ///< remaining rotation angle of the source term
};

/// A non-Clifford axis-diagonal rotation stranded on a wire: the peephole
/// commutes fused Rz factors rightward past CNOT controls / CZ legs (and
/// fused Rx factors past CNOT targets), splitting one logical 1Q run across
/// a 2Q gate. The walk carries the stranded factor forward — checking each
/// crossed 2Q gate really commutes with it — until the next run on the same
/// wire folds it back into its lump.
struct Deferred {
  Mat2 m{1, 0, 0, 1};
  char axis = 'Z';  ///< 'Z': z-diagonal; 'X': x-diagonal (Rx form)
  bool active = false;
};

/// The walk state shared across run flushes.
struct FrameWalk {
  Bsf frame;                          ///< images of the distinct source strings
  CliffordTableau tab;                ///< residual Clifford accumulated so far
  std::vector<PauliString> strings;   ///< distinct source strings (physical)
  std::vector<double> remaining;      ///< unconsumed angle per string
  std::vector<PauliTerm> realized;    ///< consumption order certificate
  std::vector<Deferred> deferred;     ///< stranded rotation per wire
  double angle_tol = 1e-7;

  explicit FrameWalk(std::size_t n) : frame(n), tab(n), deferred(n) {}

  std::vector<RunCandidate> candidates_on(std::size_t q) const {
    std::vector<RunCandidate> out;
    for (std::size_t i = 0; i < strings.size(); ++i) {
      if (dist_to_multiple(remaining[i], M_PI) <= angle_tol) continue;
      const bool x = frame.row_x(i).get(q), z = frame.row_z(i).get(q);
      if (!x && !z) continue;
      if (BitVec::or_popcount(frame.row_x(i), frame.row_z(i)) != 1) continue;
      const Pauli axis = x ? (z ? Pauli::Y : Pauli::X) : Pauli::Z;
      out.push_back({i, axis, frame.row(i).sign, remaining[i]});
      if (out.size() == 8) break;  // bound the hypothesis space
    }
    return out;
  }

  /// Try to consume one rotation gate that exactly equals a candidate term's
  /// remaining rotation (up to global phase). The frame is untouched — a
  /// rotation about a frame image commutes with the image itself.
  bool consume_exact(std::size_t q, const Mat2& m) {
    for (const RunCandidate& c : candidates_on(q)) {
      const Mat2 d =
          mat_mul(m, mat_adjoint(axis_rotation(c.axis, c.negated, c.angle)));
      if (is_phase_identity(d)) {
        realized.emplace_back(strings[c.row], c.angle);
        remaining[c.row] = 0.0;
        return true;
      }
    }
    return false;
  }

  /// DFS factorization of a fused lump: peel candidate rotations off the
  /// right (earliest-in-time factor first) until the residue is a 1Q
  /// Clifford. `order` accumulates the peel (= realization) order.
  bool lump_dfs(std::size_t q, const Mat2& u,
                const std::vector<RunCandidate>& cands, unsigned used,
                std::vector<std::size_t>& order, std::size_t& budget) {
    const int key = action_key(u);
    if (key >= 0) {
      frame_apply_word(frame, tab, q, cliff1q_words().at(key));
      return true;
    }
    for (std::size_t i = 0; i < cands.size(); ++i) {
      if (used >> i & 1u) continue;
      if (budget == 0) return false;
      --budget;
      const RunCandidate& c = cands[i];
      const Mat2 peeled =
          mat_mul(u, mat_adjoint(axis_rotation(c.axis, c.negated, c.angle)));
      order.push_back(i);
      if (lump_dfs(q, peeled, cands, used | (1u << i), order, budget))
        return true;
      order.pop_back();
    }
    return false;
  }

  /// Factor `u` as V·C with C a 1Q Clifford and V an axis-diagonal rotation
  /// the peephole could have commuted out of this run (z-diagonal across a
  /// CNOT control / CZ, x-diagonal across a CNOT target). On success C is
  /// folded into the frame now and V is parked on the wire's deferral slot
  /// to rejoin the next run there. Among the quarter-turn-equivalent splits
  /// the one with the smallest residual rotation is chosen (canonical, and
  /// matches the frame the peephole's own algebra implies most often).
  bool try_defer(std::size_t q, const Mat2& u) {
    int best_key = -1;
    Mat2 best_v{};
    char best_axis = 0;
    double best_mag = 0.0;
    for (const auto& [key, cm] : cliff1q_matrices()) {
      const Mat2 w = mat_mul(u, mat_adjoint(cm));
      char axis = 0;
      double mag = 0.0;
      if (std::abs(w[1]) < kSnapTol && std::abs(w[2]) < kSnapTol) {
        axis = 'Z';
        mag = std::abs(std::remainder(std::arg(w[3]) - std::arg(w[0]), 2 * M_PI));
      } else if (std::abs(w[0] - w[3]) < kSnapTol &&
                 std::abs(w[1] - w[2]) < kSnapTol &&
                 std::abs(std::real(w[1] * std::conj(w[0]))) < kSnapTol) {
        axis = 'X';
        mag = 2.0 * std::atan2(std::abs(w[1]), std::abs(w[0]));
      } else {
        continue;
      }
      if (best_key < 0 || mag < best_mag) {
        best_key = key;
        best_v = w;
        best_axis = axis;
        best_mag = mag;
      }
    }
    if (best_key < 0) return false;
    frame_apply_word(frame, tab, q, cliff1q_words().at(best_key));
    deferred[q] = {best_v, best_axis, true};
    return true;
  }

  /// Fallback lump factorization used when lump_dfs fails outright: same
  /// peel recursion, but a leaf may end in a deferral (V·C residue) instead
  /// of a pure Clifford. Peels are explored before the terminal test so the
  /// walk consumes as many source rotations as possible and only the truly
  /// stranded factor is deferred.
  bool lump_dfs_defer(std::size_t q, const Mat2& u,
                      const std::vector<RunCandidate>& cands, unsigned used,
                      std::vector<std::size_t>& order, std::size_t& budget) {
    for (std::size_t i = 0; i < cands.size(); ++i) {
      if (used >> i & 1u) continue;
      if (budget == 0) return false;
      --budget;
      const RunCandidate& c = cands[i];
      const Mat2 peeled =
          mat_mul(u, mat_adjoint(axis_rotation(c.axis, c.negated, c.angle)));
      order.push_back(i);
      if (lump_dfs_defer(q, peeled, cands, used | (1u << i), order, budget))
        return true;
      order.pop_back();
    }
    return try_defer(q, u);
  }

  /// Interpret a maximal 1Q run on qubit `q`. Gates are processed greedily:
  /// Clifford gates conjugate the frame directly and rotation gates must
  /// exactly consume a candidate source term. The first gate that does
  /// neither starts a fused lump (peephole ZYZ resynthesis output), which
  /// must factor as (1Q Clifford) x (candidate rotations) via lump_dfs —
  /// or, when the peephole commuted part of a fused run across a 2Q gate,
  /// as (deferred rotation) x (1Q Clifford) x (candidate rotations) via
  /// lump_dfs_defer. A rotation deferred by an earlier run on this wire is
  /// prepended to the lump (it is the earliest factor in time).
  bool flush_run(std::size_t q, std::vector<Gate>& run) {
    Deferred& defer = deferred[q];
    if (run.empty()) {
      if (!defer.active) return true;
      // A 2Q gate is crossing a wire that only carries a deferred rotation:
      // consume it if it exactly realizes a source term here, fold it if it
      // became Clifford, otherwise keep carrying it forward.
      if (consume_exact(q, defer.m)) {
        defer.active = false;
        return true;
      }
      const int key = action_key(defer.m);
      if (key >= 0) {
        frame_apply_word(frame, tab, q, cliff1q_words().at(key));
        defer.active = false;
      }
      return true;
    }
    Mat2 pend{1, 0, 0, 1};
    bool pending = false;
    if (defer.active) {
      pend = defer.m;
      pending = true;
      defer.active = false;
    }
    for (const Gate& g : run) {
      const Mat2 m = gate_matrix_1q(g);
      if (pending) {
        pend = mat_mul(m, pend);
        continue;
      }
      // Consumption is tried BEFORE the Clifford branch: a source term with
      // an exactly-Clifford coefficient lowers to a discrete S/Z/S† (see
      // synthesis.cpp), and folding that gate into the frame instead of
      // consuming the term would leave an "unrealized" rotation behind.
      // consume_exact only fires on exact angle matches, so genuinely
      // frame-level Cliffords (basis changes, peephole residue) still land
      // in the branch below.
      if (consume_exact(q, m)) continue;
      const int key = action_key(m);
      if (key >= 0) {
        frame_apply_word(frame, tab, q, cliff1q_words().at(key));
        continue;
      }
      pend = m;
      pending = true;
    }
    run.clear();
    if (!pending) return true;

    const auto cands = candidates_on(q);
    std::vector<std::size_t> order;
    std::size_t budget = 100000;
    if (!lump_dfs(q, pend, cands, 0u, order, budget)) {
      order.clear();
      budget = 100000;
      if (!lump_dfs_defer(q, pend, cands, 0u, order, budget)) return false;
    }
    for (std::size_t i : order) {
      const RunCandidate& c = cands[i];
      realized.emplace_back(strings[c.row], c.angle);
      remaining[c.row] = 0.0;
    }
    return true;
  }
};

/// Extract the wire permutation of a residual tableau: sigma[q] = q' when
/// the tableau maps X_q -> +X_q' and Z_q -> +Z_q'. False when the residual
/// is not a pure (sign-free) permutation.
bool residual_permutation(const CliffordTableau& t,
                          std::vector<std::size_t>& sigma) {
  const std::size_t n = t.num_qubits();
  sigma.assign(n, 0);
  std::vector<bool> hit(n, false);
  for (std::size_t q = 0; q < n; ++q) {
    const PauliTerm ix = t.image_of_x(q), iz = t.image_of_z(q);
    if (ix.coeff < 0 || iz.coeff < 0) return false;
    const auto sx = ix.string.support(), sz = iz.string.support();
    if (sx.size() != 1 || sz.size() != 1 || sx[0] != sz[0]) return false;
    if (ix.string.op(sx[0]) != Pauli::X || iz.string.op(sz[0]) != Pauli::Z)
      return false;
    sigma[q] = sx[0];
    if (hit[sx[0]]) return false;
    hit[sx[0]] = true;
  }
  return true;
}

/// Append SWAP gates realizing the wire permutation sigma (cycle
/// decomposition; net tableau action X_q -> X_sigma(q)).
void append_permutation(Circuit& c, const std::vector<std::size_t>& sigma) {
  std::vector<bool> seen(sigma.size(), false);
  for (std::size_t start = 0; start < sigma.size(); ++start) {
    if (seen[start] || sigma[start] == start) continue;
    std::vector<std::size_t> cycle{start};
    seen[start] = true;
    for (std::size_t p = sigma[start]; p != start; p = sigma[p]) {
      cycle.push_back(p);
      seen[p] = true;
    }
    for (std::size_t j = 1; j < cycle.size(); ++j)
      c.append(Gate::swap(cycle[0], cycle[j]));
  }
}

/// Inline structural scan used by validate_translation (reports instead of
/// throwing, so corrupted circuits yield a Fail verdict rather than an
/// exception from deep inside the walk).
bool scan_structure(const Circuit& flat, std::string& msg) {
  const std::size_t n = flat.num_qubits();
  for (const Gate& g : flat.gates()) {
    if (g.q0 >= n || (g.is_two_qubit() && (g.q1 >= n || g.q0 == g.q1))) {
      msg = "malformed gate " + g.to_string();
      return false;
    }
  }
  return true;
}

}  // namespace

ValidationReport validate_translation(const Circuit& circuit,
                                      const std::vector<PauliTerm>& terms,
                                      std::size_t num_qubits,
                                      const LayoutSpec& layout,
                                      const ValidationOptions& opt) {
  const bool mapped = !layout.initial.empty();
  const std::size_t n_phys = circuit.num_qubits();
  if (!mapped && n_phys != num_qubits)
    throw Error(Stage::Validation,
                "validate_translation: circuit register (" +
                    std::to_string(n_phys) + ") != source register (" +
                    std::to_string(num_qubits) + ") and no layout given");
  if (mapped &&
      (layout.initial.size() < num_qubits || layout.final.size() < num_qubits))
    throw Error(Stage::Validation,
                "validate_translation: layout smaller than source register");
  if (mapped)
    for (std::size_t l = 0; l < num_qubits; ++l)
      if (layout.initial[l] >= n_phys || layout.final[l] >= n_phys)
        throw Error(Stage::Validation,
                    "validate_translation: layout entry out of range");

  ValidationReport rep;

  // Relabel the source terms onto the physical register. Every term keeps
  // its own row (a duplicate string may be realized as one merged rotation —
  // the lump search consumes both rows — or as two separate ones); identity
  // strings drop (pure global phase).
  FrameWalk walk(n_phys);
  walk.angle_tol = opt.angle_tol;
  for (const PauliTerm& t : terms) {
    if (t.string.num_qubits() != num_qubits)
      throw Error(Stage::Validation,
                  "validate_translation: source term register mismatch");
    PauliString s(n_phys);
    for (std::size_t q : t.string.support())
      s.set_op(mapped ? layout.initial[q] : q, t.string.op(q));
    if (s.is_identity()) continue;
    walk.strings.push_back(s);
    walk.remaining.push_back(t.coeff);
    walk.frame.add_term(PauliTerm(s, 0.0));
  }

  std::optional<TraceSpan> frame_span;
  frame_span.emplace("verify.frame");
  trace_count("verify.frame_walks", 1);
  const Circuit flat = circuit.flattened();
  std::string fail_msg;
  bool definite_fail = false;    // phase polynomial definitely mismatches
  bool inconclusive = false;     // walk could not interpret the circuit

  if (!scan_structure(flat, fail_msg)) {
    definite_fail = true;
  } else {
    std::vector<std::vector<Gate>> runs(n_phys);
    auto flush = [&](std::size_t q) {
      if (!walk.flush_run(q, runs[q])) {
        inconclusive = true;
        fail_msg = "unmatched 1Q run on qubit " + std::to_string(q);
      }
    };
    // A deferred rotation may ride across a 2Q gate only when the gate
    // provably commutes with it: z-diagonal factors across a CNOT control
    // or either CZ leg, x-diagonal factors across a CNOT target — exactly
    // the moves the peephole's own commutation rules allow.
    auto defer_commutes = [&](const Gate& g, std::size_t w) {
      const Deferred& d = walk.deferred[w];
      if (!d.active) return true;
      if (d.axis == 'Z')
        return (g.kind == GateKind::Cnot && g.q0 == w) ||
               g.kind == GateKind::Cz;
      return g.kind == GateKind::Cnot && g.q1 == w;
    };
    for (const Gate& g : flat.gates()) {
      if (inconclusive) break;
      if (g.kind == GateKind::I) continue;
      if (!g.is_two_qubit()) {
        runs[g.q0].push_back(g);
        continue;
      }
      flush(g.q0);
      if (!inconclusive) flush(g.q1);
      if (!inconclusive && (!defer_commutes(g, g.q0) || !defer_commutes(g, g.q1))) {
        inconclusive = true;
        fail_msg = "deferred rotation blocked by " + g.to_string();
      }
      if (!inconclusive) frame_apply(walk.frame, walk.tab, g);
    }
    for (std::size_t q = 0; q < n_phys && !inconclusive; ++q) flush(q);
    for (std::size_t q = 0; q < n_phys && !inconclusive; ++q) {
      if (walk.deferred[q].active && !is_phase_identity(walk.deferred[q].m)) {
        inconclusive = true;
        fail_msg = "unresolved deferred rotation on qubit " + std::to_string(q);
      }
    }
  }

  std::vector<std::size_t> sigma;
  bool have_sigma = false;
  if (!definite_fail && !inconclusive) {
    // Residual Clifford must be the identity (logical) or a wire
    // permutation consistent with the routing layouts (hardware-aware).
    if (!residual_permutation(walk.tab, sigma)) {
      definite_fail = true;
      fail_msg = "residual Clifford is not a wire permutation";
    } else {
      have_sigma = true;
      if (!mapped) {
        for (std::size_t q = 0; q < n_phys; ++q)
          if (sigma[q] != q) {
            definite_fail = true;
            fail_msg = "nontrivial residual permutation in logical mode";
            break;
          }
      } else {
        for (std::size_t l = 0; l < num_qubits; ++l)
          if (sigma[layout.initial[l]] != layout.final[l]) {
            definite_fail = true;
            fail_msg = "residual permutation disagrees with routing layouts";
            break;
          }
      }
    }
    for (std::size_t i = 0;
         i < walk.remaining.size() && !definite_fail; ++i) {
      if (dist_to_multiple(walk.remaining[i], M_PI) > opt.angle_tol) {
        definite_fail = true;
        fail_msg = "unrealized rotation angle " +
                   std::to_string(walk.remaining[i]) + " on term " +
                   walk.strings[i].to_string();
      }
    }
  }

  frame_span.reset();
  rep.frame_checked = true;
  rep.frame_ok = !definite_fail && !inconclusive;
  if (rep.frame_ok) {
    rep.realized_order = walk.realized;
    rep.status = ValidationStatus::Pass;
  } else {
    rep.status = definite_fail ? ValidationStatus::Fail
                               : ValidationStatus::Inconclusive;
    rep.message = fail_msg;
  }

  // Exact unitary cross-check: confirms the certificate under Paranoid and
  // rescues walks that bailed without a verdict — feasible only on small
  // registers. A definite frame failure is a proof of inequivalence (an
  // unrealized rotation or an unsanctioned residual permutation) and must
  // not be overturned by a reference that would bake the same defect in.
  const bool want_exact =
      (opt.level == ValidationLevel::Paranoid && rep.frame_ok) || inconclusive;
  if (want_exact && n_phys <= opt.exact_max_qubits) {
    TraceSpan exact_span("verify.exact");
    trace_count("verify.exact_checks", 1);
    // Reference order: the frame certificate when available. Otherwise the
    // rotations the walk did consume (in consumption order — they all
    // precede the failure point) followed by the unconsumed remainder in
    // aggregated source order; exact for commuting sets, and a reordering
    // compiler may still false-fail on the tail, which the message records.
    std::vector<PauliTerm> order = rep.frame_ok ? rep.realized_order
                                                : walk.realized;
    if (!rep.frame_ok)
      for (std::size_t i = 0; i < walk.strings.size(); ++i)
        order.emplace_back(walk.strings[i], walk.remaining[i]);
    if (!have_sigma) {
      sigma.resize(n_phys);
      for (std::size_t q = 0; q < n_phys; ++q) sigma[q] = q;
      if (mapped)
        for (std::size_t l = 0; l < num_qubits; ++l)
          sigma[layout.initial[l]] = layout.final[l];
      std::vector<bool> hit(n_phys, false);
      bool bijective = true;
      for (std::size_t q = 0; q < n_phys; ++q) {
        if (hit[sigma[q]]) bijective = false;
        hit[sigma[q]] = true;
      }
      have_sigma = bijective;
    }
    if (have_sigma) {
      Circuit ref(n_phys);
      for (const PauliTerm& t : order) append_pauli_rotation(ref, t);
      append_permutation(ref, sigma);
      const double infid =
          infidelity(circuit_unitary(circuit), circuit_unitary(ref));
      rep.exact_checked = true;
      rep.exact_infidelity = infid;
      if (infid <= opt.max_infidelity) {
        if (!rep.frame_ok)
          rep.message += " (frame check incomplete; exact unitary check passed)";
        rep.status = ValidationStatus::Pass;
      } else {
        if (rep.frame_ok)
          rep.message = "frame certificate rejected by exact unitary check";
        rep.status = ValidationStatus::Fail;
      }
    }
  }
  if (rep.status == ValidationStatus::Inconclusive && rep.message.empty())
    rep.message = "frame check inconclusive and register too large for exact check";
  return rep;
}

void check_circuit_wellformed(const Circuit& c, const Graph* coupling) {
  const std::size_t n = c.num_qubits();
  if (coupling != nullptr && coupling->num_vertices() < n)
    throw Error(Stage::Validation,
                "check_circuit_wellformed: register larger than device");
  auto check_gate = [&](const Gate& g, auto&& self) -> void {
    if (g.q0 >= n)
      throw Error(Stage::Validation,
                  "gate qubit out of range: " + g.to_string());
    if (g.is_two_qubit()) {
      if (g.q1 >= n)
        throw Error(Stage::Validation,
                    "gate qubit out of range: " + g.to_string());
      if (g.q0 == g.q1)
        throw Error(Stage::Validation,
                    "2Q gate with equal operands: " + g.to_string());
      if (coupling != nullptr && !coupling->has_edge(g.q0, g.q1))
        throw Error(Stage::Validation,
                    "2Q gate off the coupling graph: " + g.to_string());
    }
    for (const Gate& s : g.sub) self(s, self);
  };
  for (const Gate& g : c.gates()) check_gate(g, check_gate);
}

void check_simplified_group(const std::vector<PauliTerm>& terms,
                            const SimplifiedGroup& g, double tol) {
  if (g.final_bsf.total_weight() > 2)
    throw Error(Stage::Simplify,
                "simplified group has total weight " +
                    std::to_string(g.final_bsf.total_weight()) + " > 2");
  const std::size_t k = g.cliffords.size();
  if (g.locals.size() != k + 1)
    throw Error(Stage::Simplify,
                "locals/cliffords misaligned: " + std::to_string(g.locals.size()) +
                    " local epochs for " + std::to_string(k) + " cliffords");

  // Conjugate every tracked row back to the global frame through the
  // Hermitian Clifford2Q sequence; the result must be exactly the original
  // term multiset (string, sign-folded coefficient).
  Bsf back(g.num_qubits);
  for (std::size_t i = 0; i < g.final_bsf.num_rows(); ++i)
    back.add_row(g.final_bsf.row(i));
  for (const auto& r : g.locals[k]) back.add_row(r);
  for (std::size_t e = k; e-- > 0;) {
    back.apply_clifford2q(g.cliffords[e]);
    for (const auto& r : g.locals[e]) back.add_row(r);
  }

  auto key = [](const PauliTerm& t) {
    return std::make_pair(t.string.to_string(), t.coeff);
  };
  std::vector<std::pair<std::string, double>> got, want;
  for (const PauliTerm& t : back.terms()) got.push_back(key(t));
  for (const PauliTerm& t : terms) want.push_back(key(t));
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  bool ok = got.size() == want.size();
  for (std::size_t i = 0; ok && i < got.size(); ++i)
    ok = got[i].first == want[i].first &&
         std::abs(got[i].second - want[i].second) <= tol;
  if (!ok)
    throw Error(Stage::Simplify,
                "Clifford2Q sign tracking does not round-trip: conjugating "
                "the simplified rows back does not reproduce the group");
}

void check_swap_accounting(const Circuit& routed, std::size_t num_swaps) {
  const std::size_t counted = routed.count(GateKind::Swap);
  if (counted != num_swaps)
    throw Error(Stage::Routing,
                "SWAP accounting mismatch: circuit has " +
                    std::to_string(counted) + " SWAPs, router reported " +
                    std::to_string(num_swaps));
}

}  // namespace phoenix
