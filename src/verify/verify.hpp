#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/graph.hpp"
#include "pauli/pauli.hpp"
#include "phoenix/simplify.hpp"

namespace phoenix {

/// How much checking the compiler performs on its own output.
///
/// * `Off`      — no checks (production default).
/// * `Cheap`    — polynomial-cost translation validation of the final
///                circuit: conjugate the source Pauli terms through the
///                circuit's Clifford frame and match every non-Clifford
///                rotation against them; verify the residual Clifford is the
///                identity (or the routing permutation). Falls back to an
///                exact unitary comparison only when the frame check is
///                inconclusive and the register is small enough.
/// * `Paranoid` — `Cheap` plus per-stage invariant checks (BSF weight bound,
///                Clifford2Q sign round-trip, routed-edge legality, SWAP
///                accounting) and an unconditional exact-unitary cross-check
///                whenever the register is within `exact_max_qubits`.
enum class ValidationLevel { Off, Cheap, Paranoid };

struct ValidationOptions {
  ValidationLevel level = ValidationLevel::Cheap;
  /// Exact-unitary comparison bound: circuits on more qubits than this are
  /// never simulated densely (cost 4^n).
  std::size_t exact_max_qubits = 10;
  /// Rotation-angle slack for the frame check (angles compared mod pi).
  double angle_tol = 1e-7;
  /// Acceptance threshold for the exact cross-check, 1 - |Tr(U†V)|/N.
  double max_infidelity = 1e-9;
};

enum class ValidationStatus {
  Pass,          ///< equivalence established (frame certificate or exact)
  Fail,          ///< a definite mismatch was found
  Inconclusive,  ///< frame check could not interpret the circuit and the
                 ///< register is too large for the exact fallback
};

const char* validation_status_name(ValidationStatus s);

struct ValidationReport {
  ValidationStatus status = ValidationStatus::Inconclusive;
  bool frame_checked = false;
  bool frame_ok = false;
  bool exact_checked = false;
  double exact_infidelity = -1.0;  ///< set when exact_checked
  /// Certificate from the frame walk: the source terms in the order the
  /// circuit realizes them (physical register when a layout was given).
  /// Feeds the exact cross-check; empty when the frame walk failed.
  std::vector<PauliTerm> realized_order;
  std::string message;  ///< human-readable failure/inconclusive context

  bool passed() const { return status == ValidationStatus::Pass; }
};

/// Mapping context for hardware-aware circuits: logical -> physical layouts
/// as produced by SABRE / the QAOA router. Empty vectors mean logical-level
/// compilation (identity layout, identity residual).
struct LayoutSpec {
  std::vector<std::size_t> initial;
  std::vector<std::size_t> final;
};

/// Translation validation: check that `circuit` implements the Trotter
/// product of `terms` (in some realized order — term arrangement within one
/// Trotter step is free, paper §I), up to global phase and, when `layout`
/// is non-empty, up to the routing permutation.
///
/// The frame walk is polynomial (O(gates · terms · n / 64)): every Clifford
/// gate conjugates the source strings via the BSF machinery, every
/// non-Clifford 1Q run must consume matching source rotations, and the
/// residual Clifford tableau must be the identity / layout permutation.
/// A passing walk yields the realized term order as a certificate; under
/// `Paranoid` (or when the walk is inconclusive) the certificate product is
/// re-checked against the dense unitary when the register has at most
/// `opt.exact_max_qubits` qubits.
ValidationReport validate_translation(const Circuit& circuit,
                                      const std::vector<PauliTerm>& terms,
                                      std::size_t num_qubits,
                                      const LayoutSpec& layout = {},
                                      const ValidationOptions& opt = {});

/// Structural well-formedness: every gate index must be inside the register
/// and 2Q gates must have distinct operands; when `coupling` is non-null
/// every 2Q gate must lie on one of its edges (Su4 blocks are checked via
/// their constituents). Throws phoenix::Error (Stage::Validation) on the
/// first violation.
void check_circuit_wellformed(const Circuit& c,
                              const Graph* coupling = nullptr);

/// Paranoid stage invariant for Algorithm 1: the simplified group must have
/// total weight <= 2, and conjugating every tracked row (final BSF rows and
/// peeled locals, each in its own epoch frame) back through the Hermitian
/// Clifford2Q sequence must reproduce exactly the original terms — the sign
/// bookkeeping round-trips. Throws phoenix::Error on violation.
void check_simplified_group(const std::vector<PauliTerm>& terms,
                            const SimplifiedGroup& g,
                            double tol = 1e-9);

/// Paranoid stage invariant for routing: the routed circuit's Swap count
/// must equal the reported number of inserted SWAPs. Throws phoenix::Error.
void check_swap_accounting(const Circuit& routed, std::size_t num_swaps);

}  // namespace phoenix
