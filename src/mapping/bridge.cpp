#include "mapping/bridge.hpp"

#include <stdexcept>

namespace phoenix {

void append_bridge_cnot(Circuit& c, std::size_t control, std::size_t middle,
                        std::size_t target) {
  if (control == middle || middle == target || control == target)
    throw std::invalid_argument("append_bridge_cnot: qubits must be distinct");
  // Verified by basis tracking: t ends as t ^ c, m is restored, c unchanged.
  c.append(Gate::cnot(control, middle));
  c.append(Gate::cnot(middle, target));
  c.append(Gate::cnot(control, middle));
  c.append(Gate::cnot(middle, target));
}

}  // namespace phoenix
