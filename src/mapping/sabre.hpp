#pragma once

#include <cstddef>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/cancel.hpp"
#include "common/graph.hpp"

namespace phoenix {

struct SabreOptions {
  /// Size of the lookahead (extended) set.
  std::size_t extended_set_size = 20;
  /// Weight of the extended set in the heuristic.
  double extended_set_weight = 0.5;
  /// Decay increment discouraging repeated SWAPs on the same qubits.
  double decay_delta = 0.001;
  /// Reset the decay array every this many SWAP decisions; 0 never resets.
  std::size_t decay_reset = 5;
  /// Number of forward/backward refinement rounds for the initial layout.
  std::size_t layout_rounds = 2;
  /// Seed for the initial random layout.
  std::uint64_t seed = 11;
  /// Cooperative cancellation, polled once per routing-loop iteration (the
  /// layout-refinement rounds poll too, so a deadline trips mid-refinement).
  /// Excluded from the request fingerprint — it never changes the output.
  CancelToken cancel;
};

struct SabreResult {
  Circuit routed;                        ///< over physical qubits, with Swap gates
  std::vector<std::size_t> initial_layout;  ///< logical -> physical
  std::vector<std::size_t> final_layout;    ///< logical -> physical
  std::size_t num_swaps = 0;
};

/// Validate a SabreOptions instance: the decay fields and the extended-set
/// weight must be finite and non-negative. Throws phoenix::Error
/// (Stage::Routing) describing the offending field. sabre_route calls this
/// up front so misconfiguration fails before any routing work.
void validate_sabre_options(const SabreOptions& opt);

/// SABRE qubit mapping and SWAP routing (Li, Ding, Xie — ASPLOS'19):
/// front-layer driven heuristic search with a lookahead window and decay,
/// plus forward-backward traversal rounds to refine the initial layout.
/// The coupling graph must be connected and at least as large as the
/// circuit's register. Throws phoenix::Error (Stage::Routing) on invalid
/// options, an undersized or disconnected device, or a blown swap budget.
SabreResult sabre_route(const Circuit& logical, const Graph& coupling,
                        const SabreOptions& opt = {});

}  // namespace phoenix
