#include "mapping/topology.hpp"

#include <stdexcept>

namespace phoenix {

Graph topology_all_to_all(std::size_t n) {
  Graph g(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) g.add_edge(i, j);
  return g;
}

Graph topology_line(std::size_t n) {
  Graph g(n);
  for (std::size_t i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

Graph topology_grid(std::size_t rows, std::size_t cols) {
  Graph g(rows * cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t v = r * cols + c;
      if (c + 1 < cols) g.add_edge(v, v + 1);
      if (r + 1 < rows) g.add_edge(v, v + cols);
    }
  return g;
}

Graph topology_heavy_hex(std::size_t rows, std::size_t row_len) {
  if (rows == 0 || row_len == 0)
    throw std::invalid_argument("topology_heavy_hex: empty lattice");
  // Row qubits first, then bridge qubits appended gap by gap.
  std::size_t total = rows * row_len;
  std::vector<std::vector<std::size_t>> bridge_cols(rows > 0 ? rows - 1
                                                             : 0);
  for (std::size_t gap = 0; gap + 1 < rows; ++gap) {
    const std::size_t offset = (gap % 2 == 0) ? 0 : 2;
    for (std::size_t c = offset; c < row_len; c += 4) {
      bridge_cols[gap].push_back(c);
      ++total;
    }
  }
  Graph g(total);
  const auto row_qubit = [row_len](std::size_t r, std::size_t c) {
    return r * row_len + c;
  };
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c + 1 < row_len; ++c)
      g.add_edge(row_qubit(r, c), row_qubit(r, c + 1));
  std::size_t next = rows * row_len;
  for (std::size_t gap = 0; gap + 1 < rows; ++gap)
    for (std::size_t c : bridge_cols[gap]) {
      g.add_edge(row_qubit(gap, c), next);
      g.add_edge(next, row_qubit(gap + 1, c));
      ++next;
    }
  return g;
}

Graph topology_manhattan() {
  // 4 rows x 13 columns + 11 bridges = 63 heavy-hex qubits; two tail qubits
  // bring the device to Manhattan's 65 while keeping max degree 3.
  const Graph hh = topology_heavy_hex(4, 13);
  Graph g(hh.num_vertices() + 2);
  for (const auto& [a, b] : hh.edges()) g.add_edge(a, b);
  const std::size_t tail0 = hh.num_vertices();
  g.add_edge(1 * 13 + 12, tail0);      // right end of row 1 (degree 2)
  g.add_edge(2 * 13 + 12, tail0 + 1);  // right end of row 2 (degree 2)
  return g;
}

}  // namespace phoenix
