#include "mapping/sabre.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/trace.hpp"

namespace phoenix {

namespace {

struct Dag {
  // For each gate: indices of gates that must precede it (last writer per
  // qubit) and its dependents.
  std::vector<std::vector<std::size_t>> succs;
  std::vector<std::size_t> indegree;

  explicit Dag(const Circuit& c) {
    const std::size_t m = c.size();
    succs.assign(m, {});
    indegree.assign(m, 0);
    std::vector<std::size_t> last(c.num_qubits(),
                                  static_cast<std::size_t>(-1));
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t q : c.gate(i).qubits()) {
        if (last[q] != static_cast<std::size_t>(-1)) {
          succs[last[q]].push_back(i);
          ++indegree[i];
        }
        last[q] = i;
      }
    }
  }
};

class Router {
 public:
  Router(const Circuit& logical, const Graph& coupling,
         const std::vector<std::vector<std::size_t>>& dist,
         const SabreOptions& opt)
      : logical_(logical), coupling_(coupling), dist_(dist), opt_(opt) {}

  /// Route with the given initial layout (logical -> physical); emit_gates
  /// false runs layout-refinement passes without building the circuit.
  SabreResult run(std::vector<std::size_t> layout, bool emit_gates) {
    const std::size_t n_phys = coupling_.num_vertices();
    SabreResult res;
    res.initial_layout = layout;
    res.routed = Circuit(n_phys);

    std::vector<std::size_t> phys = std::move(layout);  // logical -> physical
    Dag dag(logical_);
    std::vector<std::size_t> indeg = dag.indegree;
    std::vector<bool> done(logical_.size(), false);

    std::vector<std::size_t> front;  // blocked 2Q gates
    std::vector<std::size_t> ready;
    for (std::size_t i = 0; i < logical_.size(); ++i)
      if (indeg[i] == 0) ready.push_back(i);

    std::vector<double> decay(n_phys, 1.0);
    std::size_t decisions = 0;
    std::size_t executed = 0;
    const std::size_t swap_limit = 1000 + 100 * logical_.size();

    auto complete = [&](std::size_t gi) {
      done[gi] = true;
      ++executed;
      for (std::size_t s : dag.succs[gi])
        if (--indeg[s] == 0) ready.push_back(s);
    };

    std::uint32_t cancel_tick = 0;
    while (executed < logical_.size()) {
      opt_.cancel.poll(cancel_tick, Stage::Routing);
      // Drain the ready queue: 1Q gates always execute; 2Q gates execute when
      // their physical qubits are adjacent, otherwise join the front layer.
      bool progress = false;
      while (!ready.empty()) {
        const std::size_t gi = ready.back();
        ready.pop_back();
        const Gate& g = logical_.gate(gi);
        if (!g.is_two_qubit()) {
          if (emit_gates) {
            Gate pg = g;
            pg.q0 = phys[g.q0];
            res.routed.append(pg);
          }
          complete(gi);
          progress = true;
        } else if (coupling_.has_edge(phys[g.q0], phys[g.q1])) {
          if (emit_gates) {
            Gate pg = g;
            pg.q0 = phys[g.q0];
            pg.q1 = phys[g.q1];
            res.routed.append(pg);
          }
          complete(gi);
          progress = true;
        } else {
          front.push_back(gi);
        }
      }
      // Re-test blocked gates after any progress (their qubits may now touch).
      if (progress) {
        std::vector<std::size_t> still;
        for (std::size_t gi : front) {
          const Gate& g = logical_.gate(gi);
          if (coupling_.has_edge(phys[g.q0], phys[g.q1]))
            ready.push_back(gi);
          else
            still.push_back(gi);
        }
        front = std::move(still);
        if (!ready.empty()) continue;
      }
      if (executed == logical_.size()) break;
      if (front.empty())
        throw Error(Stage::Routing,
                    "sabre_route: deadlock without blocked gates");

      // Pick the SWAP minimizing the decayed front + lookahead distance sum.
      const auto extended = extended_set(dag, indeg, front);
      double best = std::numeric_limits<double>::infinity();
      std::pair<std::size_t, std::size_t> best_swap{0, 0};
      for (const auto& [pa, pb] : candidate_swaps(front, phys)) {
        std::vector<std::size_t> trial = phys;
        apply_swap(trial, pa, pb);
        double h = heuristic(front, extended, trial);
        h *= std::max(decay[pa], decay[pb]);
        if (h < best) {
          best = h;
          best_swap = {pa, pb};
        }
      }
      apply_swap(phys, best_swap.first, best_swap.second);
      if (emit_gates)
        res.routed.append(Gate::swap(best_swap.first, best_swap.second));
      ++res.num_swaps;
      decay[best_swap.first] += opt_.decay_delta;
      decay[best_swap.second] += opt_.decay_delta;
      // decay_reset == 0 means "never reset" — guard the modulus (a literal
      // `x % 0` is UB and traps on most targets).
      ++decisions;
      if (opt_.decay_reset != 0 && decisions % opt_.decay_reset == 0)
        std::fill(decay.begin(), decay.end(), 1.0);
      if (res.num_swaps > swap_limit)
        throw Error(Stage::Routing, "sabre_route: swap limit exceeded");
      // Unblock any front gate made adjacent by the swap.
      std::vector<std::size_t> still;
      for (std::size_t gi : front) {
        const Gate& g = logical_.gate(gi);
        if (coupling_.has_edge(phys[g.q0], phys[g.q1]))
          ready.push_back(gi);
        else
          still.push_back(gi);
      }
      front = std::move(still);
    }
    res.final_layout = std::move(phys);
    return res;
  }

 private:
  void apply_swap(std::vector<std::size_t>& phys, std::size_t pa,
                  std::size_t pb) const {
    for (auto& p : phys) {
      if (p == pa)
        p = pb;
      else if (p == pb)
        p = pa;
    }
  }

  std::vector<std::pair<std::size_t, std::size_t>> candidate_swaps(
      const std::vector<std::size_t>& front,
      const std::vector<std::size_t>& phys) const {
    std::vector<std::pair<std::size_t, std::size_t>> out;
    std::vector<bool> involved(coupling_.num_vertices(), false);
    for (std::size_t gi : front) {
      involved[phys[logical_.gate(gi).q0]] = true;
      involved[phys[logical_.gate(gi).q1]] = true;
    }
    for (const auto& [a, b] : coupling_.edges())
      if (involved[a] || involved[b]) out.emplace_back(a, b);
    return out;
  }

  std::vector<std::size_t> extended_set(const Dag& dag,
                                        const std::vector<std::size_t>& indeg,
                                        const std::vector<std::size_t>& front)
      const {
    std::vector<std::size_t> ext;
    std::vector<bool> visited(logical_.size(), false);
    std::vector<std::size_t> frontier = front;
    while (!frontier.empty() && ext.size() < opt_.extended_set_size) {
      std::vector<std::size_t> next;
      for (std::size_t gi : frontier)
        for (std::size_t s : dag.succs[gi]) {
          if (visited[s]) continue;
          visited[s] = true;
          if (logical_.gate(s).is_two_qubit() &&
              ext.size() < opt_.extended_set_size)
            ext.push_back(s);
          next.push_back(s);
        }
      frontier = std::move(next);
      (void)indeg;
    }
    return ext;
  }

  double heuristic(const std::vector<std::size_t>& front,
                   const std::vector<std::size_t>& extended,
                   const std::vector<std::size_t>& phys) const {
    double h = 0;
    for (std::size_t gi : front) {
      const Gate& g = logical_.gate(gi);
      h += static_cast<double>(dist_[phys[g.q0]][phys[g.q1]]);
    }
    h /= static_cast<double>(front.size());
    if (!extended.empty()) {
      double e = 0;
      for (std::size_t gi : extended) {
        const Gate& g = logical_.gate(gi);
        e += static_cast<double>(dist_[phys[g.q0]][phys[g.q1]]);
      }
      h += opt_.extended_set_weight * e / static_cast<double>(extended.size());
    }
    return h;
  }

  const Circuit& logical_;
  const Graph& coupling_;
  const std::vector<std::vector<std::size_t>>& dist_;
  const SabreOptions& opt_;
};

}  // namespace

void validate_sabre_options(const SabreOptions& opt) {
  auto bad = [](const char* field, const char* why) {
    throw Error(Stage::Routing,
                std::string("sabre_route: SabreOptions::") + field + " " + why);
  };
  if (!std::isfinite(opt.decay_delta) || opt.decay_delta < 0.0)
    bad("decay_delta", "must be finite and >= 0");
  if (!std::isfinite(opt.extended_set_weight) || opt.extended_set_weight < 0.0)
    bad("extended_set_weight", "must be finite and >= 0");
  // decay_reset == 0 is valid ("never reset"); no constraint.
}

SabreResult sabre_route(const Circuit& logical, const Graph& coupling,
                        const SabreOptions& opt) {
  validate_sabre_options(opt);
  if (coupling.num_vertices() < logical.num_qubits())
    throw Error(Stage::Routing, "sabre_route: device too small");
  if (!coupling.connected())
    throw Error(Stage::Routing, "sabre_route: disconnected coupling graph");

  const auto dist = coupling.distance_matrix();
  Router router(logical, coupling, dist, opt);

  // Initial layout: identity, refined by forward-backward traversal — the
  // final layout of each pass seeds the next pass on the reversed circuit.
  std::vector<std::size_t> layout(logical.num_qubits());
  std::iota(layout.begin(), layout.end(), std::size_t{0});
  const Circuit reversed = logical.inverse();
  Router rev_router(reversed, coupling, dist, opt);
  {
    TraceSpan span("sabre.layout");
    for (std::size_t round = 0; round < opt.layout_rounds; ++round) {
      opt.cancel.check(Stage::Routing);
      layout = router.run(layout, /*emit_gates=*/false).final_layout;
      layout = rev_router.run(layout, /*emit_gates=*/false).final_layout;
    }
    trace_count("sabre.layout_rounds", opt.layout_rounds);
  }
  TraceSpan span("sabre.route");
  SabreResult res = router.run(layout, /*emit_gates=*/true);
  trace_count("sabre.swaps", res.num_swaps);
  return res;
}

}  // namespace phoenix
