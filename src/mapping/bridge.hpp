#pragma once

#include <cstddef>

#include "circuit/circuit.hpp"

namespace phoenix {

/// Ancilla-free bridge gate (Itoko et al., cited by the paper's §IV-C.3):
/// realizes CNOT(control, target) across a middle qubit adjacent to both,
/// using 4 physical CNOTs and leaving the qubit mapping unchanged —
/// the alternative to SWAP insertion for distance-2 interactions.
///
///   CNOT(c,t) = CNOT(m,t) · CNOT(c,m) · CNOT(m,t) · CNOT(c,m)
void append_bridge_cnot(Circuit& c, std::size_t control, std::size_t middle,
                        std::size_t target);

}  // namespace phoenix
