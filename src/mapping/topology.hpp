#pragma once

#include <cstddef>

#include "common/graph.hpp"

namespace phoenix {

/// Complete coupling graph (logical-level compilation target).
Graph topology_all_to_all(std::size_t n);

/// 1-D chain.
Graph topology_line(std::size_t n);

/// rows x cols square grid.
Graph topology_grid(std::size_t rows, std::size_t cols);

/// IBM-style heavy-hex "brick wall": `rows` horizontal chains of `row_len`
/// qubits, with bridge qubits between consecutive rows at every 4th column,
/// offset by 2 on alternating row gaps. Every vertex has degree <= 3 and the
/// cells are 12-qubit hexagons, matching the connectivity class of IBM's
/// heavy-hex processors.
Graph topology_heavy_hex(std::size_t rows, std::size_t row_len);

/// The 65-qubit Manhattan-like device used for all hardware-aware
/// experiments (the paper uses IBM Manhattan's heavy-hex coupling graph).
/// Built as topology_heavy_hex(4, 13) plus an extra trailing bridge column:
/// 65 qubits, max degree 3.
Graph topology_manhattan();

}  // namespace phoenix
