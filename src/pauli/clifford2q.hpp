#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "pauli/pauli.hpp"

namespace phoenix {

/// Primitive Clifford conjugation steps used to expand a universal controlled
/// gate into sign-correct tableau updates (and, later, into circuit gates).
enum class CliffStep : std::uint8_t { H, S, Sdg, Cnot };

/// One expansion step: a primitive on qubit `a` (H/S/Sdg) or on the ordered
/// pair (`a`,`b`) for Cnot.
struct CliffStepOp {
  CliffStep step;
  std::size_t a = 0;
  std::size_t b = 0;  // target qubit, Cnot only
};

/// A universal controlled gate C(sigma0, sigma1) acting on an ordered qubit
/// pair (paper Eq. 5). Every such gate is Hermitian, entangling, and equal to
/// CNOT up to local H/S conjugation; the six combinations
/// {C(X,X), C(Y,Y), C(Z,Z), C(X,Y), C(Y,Z), C(Z,X)} generate the 2Q Clifford
/// group and form PHOENIX's search space for BSF simplification.
struct Clifford2Q {
  Pauli sigma0 = Pauli::Z;  ///< control axis (I is invalid)
  Pauli sigma1 = Pauli::X;  ///< target axis (I is invalid)
  std::size_t q0 = 0;       ///< control qubit
  std::size_t q1 = 0;       ///< target qubit

  /// Expansion into primitive conjugation steps, in application order:
  /// C = (u0 ⊗ u1) · CNOT · (u0 ⊗ u1)† with u0 Z u0† = sigma0 and
  /// u1 X u1† = sigma1. Applying the returned steps left to right to a
  /// tableau (or as circuit gates in time order) realizes exactly C.
  std::vector<CliffStepOp> expansion() const;

  /// Number of 2Q entangling gates in the CNOT-ISA realization (always 1).
  static constexpr std::size_t cnot_cost() { return 1; }

  bool operator==(const Clifford2Q& o) const = default;

  std::string to_string() const;
};

/// The six generators of Eq. (5), with placeholder qubits (0, 1).
const std::array<Clifford2Q, 6>& clifford2q_generators();

}  // namespace phoenix
