#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitvec.hpp"
#include "common/hash.hpp"

namespace phoenix {

/// Single-qubit Pauli operator.
enum class Pauli : std::uint8_t { I = 0, X = 1, Y = 2, Z = 3 };

char pauli_char(Pauli p);
Pauli pauli_from_char(char c);

/// True when the two single-qubit Paulis commute (i.e. equal or either is I).
bool pauli_commutes(Pauli a, Pauli b);

/// An n-qubit Pauli string in binary symplectic encoding:
/// X -> [1|0], Z -> [0|1], Y -> [1|1], I -> [0|0] (paper §III).
class PauliString {
 public:
  PauliString() = default;
  explicit PauliString(std::size_t n) : x_(n), z_(n) {}
  PauliString(BitVec x, BitVec z);

  /// Parse a label such as "XIZY"; character k addresses qubit k.
  static PauliString from_label(const std::string& label);

  /// Identity-except: place `p` on qubit `q` of an n-qubit identity string.
  static PauliString single(std::size_t n, std::size_t q, Pauli p);

  std::size_t num_qubits() const { return x_.size(); }

  Pauli op(std::size_t q) const;
  void set_op(std::size_t q, Pauli p);

  const BitVec& x() const { return x_; }
  const BitVec& z() const { return z_; }

  /// Number of non-identity positions.
  std::size_t weight() const { return (x_ | z_).popcount(); }

  /// Qubits acted on non-trivially, ascending.
  std::vector<std::size_t> support() const { return (x_ | z_).ones(); }

  /// Bit mask of the support.
  BitVec support_mask() const { return x_ | z_; }

  bool is_identity() const { return !x_.any() && !z_.any(); }

  /// Symplectic commutation test: strings commute iff the symplectic inner
  /// product <x, z'> + <x', z> vanishes mod 2.
  bool commutes_with(const PauliString& o) const;

  bool operator==(const PauliString& o) const = default;

  /// Label such as "XIZY".
  std::string to_string() const;

  std::size_t hash() const { return x_.hash() * 1000003 ^ z_.hash(); }

  /// Absorb the full symplectic content (qubit count + X/Z words) into a
  /// 128-bit hasher — the string's contribution to a compile-request
  /// fingerprint. Equal strings absorb identical word streams on every
  /// platform (BitVec keeps tail bits masked).
  void hash_into(Hash128& h) const;

 private:
  BitVec x_, z_;
};

/// Canonical content order on equal-width Pauli strings: lexicographic on
/// the Z words, then the X words. Cheaper than comparing labels and stable
/// across platforms; fingerprinting sorts normalized term lists with it so
/// permutations of the same term set hash identically.
bool pauli_string_less(const PauliString& a, const PauliString& b);

struct PauliStringHash {
  std::size_t operator()(const PauliString& s) const { return s.hash(); }
};

/// A weighted Pauli string — one term `h · P` of a Hamiltonian, or
/// equivalently the rotation `exp(-i h P)` once a Trotter step is fixed.
struct PauliTerm {
  PauliString string;
  double coeff = 0.0;

  PauliTerm() = default;
  PauliTerm(PauliString s, double c) : string(std::move(s)), coeff(c) {}
  PauliTerm(const std::string& label, double c)
      : string(PauliString::from_label(label)), coeff(c) {}

  bool operator==(const PauliTerm& o) const = default;
};

}  // namespace phoenix
