#include "pauli/tableau.hpp"

#include <cmath>
#include <stdexcept>

#include "common/angles.hpp"
#include "pauli/polynomial.hpp"

namespace phoenix {

CliffordTableau::CliffordTableau(std::size_t num_qubits) : n_(num_qubits) {
  rows_.reserve(2 * n_);
  for (std::size_t q = 0; q < n_; ++q) {
    Row r{BitVec(n_), BitVec(n_), false};
    r.x.set(q, true);
    rows_.push_back(r);
  }
  for (std::size_t q = 0; q < n_; ++q) {
    Row r{BitVec(n_), BitVec(n_), false};
    r.z.set(q, true);
    rows_.push_back(r);
  }
}

void CliffordTableau::apply_h(std::size_t q) {
  for (auto& r : rows_) {
    const bool x = r.x.get(q), z = r.z.get(q);
    r.sign ^= x && z;
    r.x.set(q, z);
    r.z.set(q, x);
  }
}

void CliffordTableau::apply_s(std::size_t q) {
  for (auto& r : rows_) {
    const bool x = r.x.get(q), z = r.z.get(q);
    r.sign ^= x && z;
    r.z.set(q, x != z);
  }
}

void CliffordTableau::apply_sdg(std::size_t q) {
  for (auto& r : rows_) {
    const bool x = r.x.get(q), z = r.z.get(q);
    r.sign ^= x && !z;
    r.z.set(q, x != z);
  }
}

void CliffordTableau::apply_x(std::size_t q) {
  for (auto& r : rows_) r.sign ^= r.z.get(q);
}

void CliffordTableau::apply_z(std::size_t q) {
  for (auto& r : rows_) r.sign ^= r.x.get(q);
}

void CliffordTableau::apply_cnot(std::size_t c, std::size_t t) {
  if (c == t) throw std::invalid_argument("CliffordTableau: control == target");
  for (auto& r : rows_) {
    const bool xc = r.x.get(c), zc = r.z.get(c);
    const bool xt = r.x.get(t), zt = r.z.get(t);
    r.sign ^= xc && zt && (xt == zc);
    r.x.set(t, xt != xc);
    r.z.set(c, zc != zt);
  }
}

void CliffordTableau::apply_cz(std::size_t a, std::size_t b) {
  apply_h(b);
  apply_cnot(a, b);
  apply_h(b);
}

void CliffordTableau::apply_swap(std::size_t a, std::size_t b) {
  apply_cnot(a, b);
  apply_cnot(b, a);
  apply_cnot(a, b);
}

void CliffordTableau::apply_gate(const Gate& g) {
  switch (g.kind) {
    case GateKind::I: return;
    case GateKind::H: apply_h(g.q0); return;
    case GateKind::S: apply_s(g.q0); return;
    case GateKind::Sdg: apply_sdg(g.q0); return;
    case GateKind::X: apply_x(g.q0); return;
    case GateKind::Z: apply_z(g.q0); return;
    case GateKind::Y:
      apply_z(g.q0);
      apply_x(g.q0);
      return;
    case GateKind::SqrtX:  // conjugation action of H·S·H
      apply_h(g.q0);
      apply_s(g.q0);
      apply_h(g.q0);
      return;
    case GateKind::SqrtXdg:
      apply_h(g.q0);
      apply_sdg(g.q0);
      apply_h(g.q0);
      return;
    case GateKind::Cnot: apply_cnot(g.q0, g.q1); return;
    case GateKind::Cz: apply_cz(g.q0, g.q1); return;
    case GateKind::Swap: apply_swap(g.q0, g.q1); return;
    case GateKind::Rz:
    case GateKind::Rx:
    case GateKind::Ry: {
      // Accept only Clifford angles (multiples of π/2).
      const auto turns = clifford_quarter_turns(g.param);
      if (!turns)
        throw std::invalid_argument("CliffordTableau: non-Clifford rotation");
      const int m = *turns;
      auto quarter = [&](void (CliffordTableau::*pos)(std::size_t)) {
        for (int i = 0; i < m; ++i) (this->*pos)(g.q0);
      };
      if (g.kind == GateKind::Rz) {
        quarter(&CliffordTableau::apply_s);
      } else if (g.kind == GateKind::Rx) {
        apply_h(g.q0);
        quarter(&CliffordTableau::apply_s);
        apply_h(g.q0);
      } else {  // Ry = Sdg · Rx-conj · S up to phase: use (S H) basis
        apply_sdg(g.q0);
        apply_h(g.q0);
        quarter(&CliffordTableau::apply_s);
        apply_h(g.q0);
        apply_s(g.q0);
      }
      return;
    }
    default:
      throw std::invalid_argument("CliffordTableau: non-Clifford gate");
  }
}

CliffordTableau CliffordTableau::from_circuit(const Circuit& c) {
  CliffordTableau t(c.num_qubits());
  for (const auto& g : c.gates()) t.apply_gate(g);
  return t;
}

PauliTerm CliffordTableau::image_of_x(std::size_t q) const {
  const Row& r = xrow(q);
  return PauliTerm(PauliString(r.x, r.z), r.sign ? -1.0 : 1.0);
}

PauliTerm CliffordTableau::image_of_z(std::size_t q) const {
  const Row& r = zrow(q);
  return PauliTerm(PauliString(r.x, r.z), r.sign ? -1.0 : 1.0);
}

PauliTerm CliffordTableau::image(const PauliString& p) const {
  if (p.num_qubits() != n_)
    throw std::invalid_argument("CliffordTableau::image: size mismatch");
  // P = i^{#Y} · Π_q X_q^{x_q} Z_q^{z_q} (X before Z per qubit, ascending).
  // The image multiplies the generator images in the same order, tracking
  // the i-power from string products and the row signs.
  std::complex<double> phase{1, 0};
  PauliString acc(n_);
  auto absorb = [&](const Row& r) {
    auto [ph, prod] = pauli_multiply(acc, PauliString(r.x, r.z));
    phase *= ph;
    if (r.sign) phase = -phase;
    acc = prod;
  };
  std::size_t y_count = 0;
  for (std::size_t q = 0; q < n_; ++q) {
    const Pauli op = p.op(q);
    if (op == Pauli::Y) ++y_count;
    if (op == Pauli::X || op == Pauli::Y) absorb(xrow(q));
    if (op == Pauli::Z || op == Pauli::Y) absorb(zrow(q));
  }
  // The XZ decomposition carries Y = i·X·Z, so restore the i^{#Y} factor;
  // pauli_multiply already accounts for Y phases inside the products.
  for (std::size_t k = 0; k < y_count; ++k) phase *= std::complex<double>{0, 1};
  if (std::abs(phase.imag()) > 1e-9)
    throw std::logic_error("CliffordTableau::image: non-real phase");
  return PauliTerm(acc, phase.real());
}

bool CliffordTableau::is_identity() const {
  return *this == CliffordTableau(n_);
}

}  // namespace phoenix
