#pragma once

#include <complex>
#include <cstddef>
#include <unordered_map>
#include <utility>
#include <vector>

#include "pauli/pauli.hpp"

namespace phoenix {

/// Product of two Pauli strings: P1 · P2 = phase · P3 with phase in
/// {±1, ±i}. Phases per position follow XY = iZ, YZ = iX, ZX = iY (cyclic)
/// and their reverses with -i.
std::pair<std::complex<double>, PauliString> pauli_multiply(
    const PauliString& a, const PauliString& b);

/// Sparse complex-weighted sum of Pauli strings, closed under addition and
/// multiplication. This is the operator algebra used to expand fermionic
/// operators into qubit Hamiltonians (JW / BK encodings).
class PauliPolynomial {
 public:
  PauliPolynomial() = default;
  explicit PauliPolynomial(std::size_t num_qubits) : n_(num_qubits) {}

  /// The constant polynomial c·I on n qubits.
  static PauliPolynomial scalar(std::size_t num_qubits, std::complex<double> c);
  /// A single weighted string.
  static PauliPolynomial term(const PauliString& s, std::complex<double> c);

  std::size_t num_qubits() const { return n_; }
  std::size_t num_terms() const { return terms_.size(); }
  bool empty() const { return terms_.empty(); }

  std::complex<double> coeff(const PauliString& s) const;

  void add(const PauliString& s, std::complex<double> c);

  PauliPolynomial& operator+=(const PauliPolynomial& o);
  PauliPolynomial& operator-=(const PauliPolynomial& o);
  PauliPolynomial& operator*=(std::complex<double> c);

  friend PauliPolynomial operator+(PauliPolynomial a, const PauliPolynomial& b) {
    return a += b;
  }
  friend PauliPolynomial operator-(PauliPolynomial a, const PauliPolynomial& b) {
    return a -= b;
  }
  friend PauliPolynomial operator*(PauliPolynomial a, std::complex<double> c) {
    return a *= c;
  }
  /// Operator product with phase-correct string multiplication.
  friend PauliPolynomial operator*(const PauliPolynomial& a,
                                   const PauliPolynomial& b);

  /// Drop terms with |coeff| < tol.
  void prune(double tol = 1e-12);

  /// True when every coefficient is real within tol (operator is Hermitian,
  /// since Pauli strings are Hermitian).
  bool is_hermitian(double tol = 1e-10) const;

  /// Convert to a real-coefficient term list, dropping the identity component
  /// (a global phase under exponentiation) and near-zero terms. Throws if a
  /// non-negligible imaginary part remains. Order is deterministic
  /// (lexicographic in the string label).
  std::vector<PauliTerm> to_terms(double tol = 1e-10) const;

 private:
  std::size_t n_ = 0;
  std::unordered_map<PauliString, std::complex<double>, PauliStringHash> terms_;
};

}  // namespace phoenix
