#include "pauli/clifford2q.hpp"

#include <stdexcept>

namespace phoenix {

namespace {

/// Steps realizing u with u Z u† = sigma (for the control side), in
/// application order. The operator product is last-listed · ... · first.
std::vector<CliffStep> u_control(Pauli sigma) {
  switch (sigma) {
    case Pauli::Z: return {};
    case Pauli::X: return {CliffStep::H};
    // (S·H) Z (S·H)† = S X S† = Y
    case Pauli::Y: return {CliffStep::H, CliffStep::S};
    case Pauli::I: break;
  }
  throw std::invalid_argument("Clifford2Q: control axis must be X, Y or Z");
}

/// Steps realizing u with u X u† = sigma (for the target side).
std::vector<CliffStep> u_target(Pauli sigma) {
  switch (sigma) {
    case Pauli::X: return {};
    case Pauli::Z: return {CliffStep::H};
    case Pauli::Y: return {CliffStep::S};  // S X S† = Y
    case Pauli::I: break;
  }
  throw std::invalid_argument("Clifford2Q: target axis must be X, Y or Z");
}

CliffStep dagger(CliffStep s) {
  switch (s) {
    case CliffStep::S: return CliffStep::Sdg;
    case CliffStep::Sdg: return CliffStep::S;
    default: return s;  // H and CNOT are Hermitian
  }
}

void append_1q(std::vector<CliffStepOp>& out, const std::vector<CliffStep>& seq,
               std::size_t q) {
  for (CliffStep s : seq) out.push_back({s, q, 0});
}

/// Dagger of a step sequence: reverse order, dagger each step.
std::vector<CliffStep> dagger_seq(std::vector<CliffStep> seq) {
  std::vector<CliffStep> out;
  out.reserve(seq.size());
  for (auto it = seq.rbegin(); it != seq.rend(); ++it) out.push_back(dagger(*it));
  return out;
}

}  // namespace

std::vector<CliffStepOp> Clifford2Q::expansion() const {
  const auto u0 = u_control(sigma0);
  const auto u1 = u_target(sigma1);
  std::vector<CliffStepOp> out;
  out.reserve(2 * (u0.size() + u1.size()) + 1);
  // C = U · CNOT · U†, U = u0 ⊗ u1. Application order is right factor first:
  // U† steps, then CNOT, then U steps.
  append_1q(out, dagger_seq(u0), q0);
  append_1q(out, dagger_seq(u1), q1);
  out.push_back({CliffStep::Cnot, q0, q1});
  append_1q(out, u1, q1);
  append_1q(out, u0, q0);
  return out;
}

std::string Clifford2Q::to_string() const {
  std::string s = "C(";
  s += pauli_char(sigma0);
  s += ',';
  s += pauli_char(sigma1);
  s += ")[";
  s += std::to_string(q0);
  s += ',';
  s += std::to_string(q1);
  s += ']';
  return s;
}

const std::array<Clifford2Q, 6>& clifford2q_generators() {
  static const std::array<Clifford2Q, 6> gens = {{
      {Pauli::X, Pauli::X, 0, 1},
      {Pauli::Y, Pauli::Y, 0, 1},
      {Pauli::Z, Pauli::Z, 0, 1},
      {Pauli::X, Pauli::Y, 0, 1},
      {Pauli::Y, Pauli::Z, 0, 1},
      {Pauli::Z, Pauli::X, 0, 1},
  }};
  return gens;
}

}  // namespace phoenix
