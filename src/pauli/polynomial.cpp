#include "pauli/polynomial.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace phoenix {

namespace {
using Cx = std::complex<double>;

/// Phase of p * q for single-qubit Paulis: result axis is p XOR q in the
/// symplectic encoding; the phase is +i for cyclic (XY, YZ, ZX), -i for
/// anti-cyclic, +1 otherwise.
Cx pair_phase(Pauli p, Pauli q) {
  if (p == Pauli::I || q == Pauli::I || p == q) return {1, 0};
  const int a = static_cast<int>(p), b = static_cast<int>(q);
  // X=1, Y=2, Z=3: cyclic means b == a % 3 + 1.
  return (b == a % 3 + 1) ? Cx{0, 1} : Cx{0, -1};
}
}  // namespace

std::pair<Cx, PauliString> pauli_multiply(const PauliString& a,
                                          const PauliString& b) {
  if (a.num_qubits() != b.num_qubits())
    throw std::invalid_argument("pauli_multiply: size mismatch");
  Cx phase{1, 0};
  for (std::size_t q = 0; q < a.num_qubits(); ++q)
    phase *= pair_phase(a.op(q), b.op(q));
  return {phase, PauliString(a.x() ^ b.x(), a.z() ^ b.z())};
}

PauliPolynomial PauliPolynomial::scalar(std::size_t n, Cx c) {
  PauliPolynomial p(n);
  p.add(PauliString(n), c);
  return p;
}

PauliPolynomial PauliPolynomial::term(const PauliString& s, Cx c) {
  PauliPolynomial p(s.num_qubits());
  p.add(s, c);
  return p;
}

Cx PauliPolynomial::coeff(const PauliString& s) const {
  const auto it = terms_.find(s);
  return it == terms_.end() ? Cx{0, 0} : it->second;
}

void PauliPolynomial::add(const PauliString& s, Cx c) {
  if (s.num_qubits() != n_)
    throw std::invalid_argument("PauliPolynomial::add: size mismatch");
  auto [it, inserted] = terms_.try_emplace(s, c);
  if (!inserted) it->second += c;
}

PauliPolynomial& PauliPolynomial::operator+=(const PauliPolynomial& o) {
  if (n_ != o.n_)
    throw std::invalid_argument("PauliPolynomial::+=: size mismatch");
  for (const auto& [s, c] : o.terms_) add(s, c);
  return *this;
}

PauliPolynomial& PauliPolynomial::operator-=(const PauliPolynomial& o) {
  if (n_ != o.n_)
    throw std::invalid_argument("PauliPolynomial::-=: size mismatch");
  for (const auto& [s, c] : o.terms_) add(s, -c);
  return *this;
}

PauliPolynomial& PauliPolynomial::operator*=(Cx c) {
  for (auto& [s, v] : terms_) v *= c;
  return *this;
}

PauliPolynomial operator*(const PauliPolynomial& a, const PauliPolynomial& b) {
  if (a.n_ != b.n_)
    throw std::invalid_argument("PauliPolynomial::*: size mismatch");
  PauliPolynomial out(a.n_);
  for (const auto& [sa, ca] : a.terms_)
    for (const auto& [sb, cb] : b.terms_) {
      auto [phase, s] = pauli_multiply(sa, sb);
      out.add(s, ca * cb * phase);
    }
  return out;
}

void PauliPolynomial::prune(double tol) {
  std::erase_if(terms_, [tol](const auto& kv) {
    return std::abs(kv.second) < tol;
  });
}

bool PauliPolynomial::is_hermitian(double tol) const {
  for (const auto& [s, c] : terms_)
    if (std::abs(c.imag()) > tol) return false;
  return true;
}

std::vector<PauliTerm> PauliPolynomial::to_terms(double tol) const {
  std::vector<PauliTerm> out;
  for (const auto& [s, c] : terms_) {
    if (std::abs(c) < tol) continue;
    if (s.is_identity()) continue;  // global phase under exponentiation
    if (std::abs(c.imag()) > tol)
      throw std::runtime_error(
          "PauliPolynomial::to_terms: non-Hermitian coefficient on " +
          s.to_string());
    out.emplace_back(s, c.real());
  }
  std::sort(out.begin(), out.end(), [](const PauliTerm& a, const PauliTerm& b) {
    return a.string.to_string() < b.string.to_string();
  });
  return out;
}

}  // namespace phoenix
