#include "pauli/bsf.hpp"

#include <array>
#include <bit>
#include <cstdint>
#include <stdexcept>

namespace phoenix {

Bsf::Bsf(const std::vector<PauliTerm>& terms) {
  if (terms.empty()) return;
  n_ = terms.front().string.num_qubits();
  for (const auto& t : terms) add_term(t);
}

void Bsf::add_term(const PauliTerm& t) {
  if (n_ == 0 && rows_.empty()) n_ = t.string.num_qubits();
  if (t.string.num_qubits() != n_)
    throw std::invalid_argument("Bsf::add_term: qubit count mismatch");
  rows_.push_back(Row{t.string.x(), t.string.z(), false, t.coeff});
}

void Bsf::add_row(Row r) {
  if (r.x.size() != n_ || r.z.size() != n_)
    throw std::invalid_argument("Bsf::add_row: qubit count mismatch");
  rows_.push_back(std::move(r));
}

PauliTerm Bsf::term(std::size_t i) const {
  const Row& r = rows_[i];
  return PauliTerm(PauliString(r.x, r.z), r.sign ? -r.coeff : r.coeff);
}

std::vector<PauliTerm> Bsf::terms() const {
  std::vector<PauliTerm> out;
  out.reserve(rows_.size());
  for (std::size_t i = 0; i < rows_.size(); ++i) out.push_back(term(i));
  return out;
}

BitVec Bsf::support_mask() const {
  BitVec m(n_);
  for (const auto& r : rows_) {
    m |= r.x;
    m |= r.z;
  }
  return m;
}

std::vector<Bsf::Row> Bsf::pop_local_rows() {
  // Most greedy epochs peel nothing; skip the partition (and its two vector
  // allocations) unless some row is actually local.
  bool any_local = false;
  for (const auto& r : rows_)
    if (BitVec::or_popcount(r.x, r.z) <= 1) {
      any_local = true;
      break;
    }
  if (!any_local) return {};
  std::vector<Row> locals;
  std::vector<Row> kept;
  kept.reserve(rows_.size());
  for (auto& r : rows_) {
    if (BitVec::or_popcount(r.x, r.z) <= 1)
      locals.push_back(std::move(r));
    else
      kept.push_back(std::move(r));
  }
  rows_ = std::move(kept);
  return locals;
}

void Bsf::column_counts(std::size_t c, std::size_t& nx, std::size_t& nz,
                        std::size_t& nu) const {
  nx = nz = nu = 0;
  for (const auto& r : rows_) {
    const bool x = r.x.get(c), z = r.z.get(c);
    nx += x;
    nz += z;
    nu += x || z;
  }
}

void Bsf::apply_h(std::size_t q) {
  for (auto& r : rows_) {
    const bool x = r.x.get(q), z = r.z.get(q);
    r.sign ^= x && z;  // H Y H = -Y
    r.x.set(q, z);
    r.z.set(q, x);
  }
}

void Bsf::apply_s(std::size_t q) {
  for (auto& r : rows_) {
    const bool x = r.x.get(q), z = r.z.get(q);
    r.sign ^= x && z;  // S Y S† = -X
    r.z.set(q, x != z);
  }
}

void Bsf::apply_sdg(std::size_t q) {
  for (auto& r : rows_) {
    const bool x = r.x.get(q), z = r.z.get(q);
    r.sign ^= x && !z;  // S† X S = -Y
    r.z.set(q, x != z);
  }
}

void Bsf::apply_cnot(std::size_t control, std::size_t target) {
  if (control == target)
    throw std::invalid_argument("Bsf::apply_cnot: control == target");
  for (auto& r : rows_) {
    const bool xc = r.x.get(control), zc = r.z.get(control);
    const bool xt = r.x.get(target), zt = r.z.get(target);
    r.sign ^= xc && zt && (xt == zc);  // i.e. xt ^ zc ^ 1
    r.x.set(target, xt != xc);
    r.z.set(control, zc != zt);
  }
}

void Bsf::apply_step(const CliffStepOp& op) {
  switch (op.step) {
    case CliffStep::H: apply_h(op.a); break;
    case CliffStep::S: apply_s(op.a); break;
    case CliffStep::Sdg: apply_sdg(op.a); break;
    case CliffStep::Cnot: apply_cnot(op.a, op.b); break;
  }
}

namespace {

/// Precomputed conjugation action of one Eq. (5) generator on the two-qubit
/// sub-configuration of a row. A Clifford2Q acts only on its own qubit pair,
/// so P = P_rest ⊗ P_sub maps to s(P_sub) · P_rest ⊗ P_sub′: the new four
/// bits and the sign flip are a pure function of the old four bits. The
/// tables are derived at first use by running the gate's own H/S/CNOT
/// expansion on all 16 sub-configurations, so the sign bookkeeping stays
/// exactly the expansion's — this is a constant-factor fast path, not a
/// second implementation of the algebra.
struct Clifford2QAction {
  std::uint8_t map[16];  ///< cfg = x0 | z0<<1 | x1<<2 | z1<<3
  bool flip[16];
};

Clifford2QAction derive_action(const Clifford2Q& gen) {
  Clifford2QAction act{};
  for (unsigned cfg = 0; cfg < 16; ++cfg) {
    Bsf probe(2);
    Bsf::Row row;
    row.x = BitVec(2);
    row.z = BitVec(2);
    row.x.set(0, cfg & 1);
    row.z.set(0, cfg >> 1 & 1);
    row.x.set(1, cfg >> 2 & 1);
    row.z.set(1, cfg >> 3 & 1);
    row.coeff = 1.0;
    probe.add_row(row);
    Clifford2Q local = gen;
    local.q0 = 0;
    local.q1 = 1;
    for (const auto& op : local.expansion()) probe.apply_step(op);
    act.map[cfg] = static_cast<std::uint8_t>(
        static_cast<unsigned>(probe.row_x(0).get(0)) |
        static_cast<unsigned>(probe.row_z(0).get(0)) << 1 |
        static_cast<unsigned>(probe.row_x(0).get(1)) << 2 |
        static_cast<unsigned>(probe.row_z(0).get(1)) << 3);
    act.flip[cfg] = probe.row(0).sign;
  }
  return act;
}

const Clifford2QAction& action_for(Pauli sigma0, Pauli sigma1) {
  static const std::array<Clifford2QAction, 6> table = [] {
    std::array<Clifford2QAction, 6> t{};
    for (std::size_t g = 0; g < 6; ++g)
      t[g] = derive_action(clifford2q_generators()[g]);
    return t;
  }();
  for (std::size_t g = 0; g < 6; ++g) {
    const Clifford2Q& gen = clifford2q_generators()[g];
    if (gen.sigma0 == sigma0 && gen.sigma1 == sigma1) return table[g];
  }
  throw std::invalid_argument("Bsf::apply_clifford2q: not an Eq. (5) generator");
}

}  // namespace

const Clifford2QBitAction& clifford2q_bit_action(Pauli sigma0, Pauli sigma1) {
  static const std::array<Clifford2QBitAction, 6> table = [] {
    std::array<Clifford2QBitAction, 6> t{};
    for (std::size_t g = 0; g < 6; ++g) {
      const Clifford2Q& gen = clifford2q_generators()[g];
      const Clifford2QAction& act = action_for(gen.sigma0, gen.sigma1);
      // The action is GF(2)-linear on the bits (H/S/CNOT are), so column i
      // of the matrix is the image of the i-th unit configuration. Verify
      // linearity of the full table rather than assume it: any future
      // non-Clifford "generator" would silently corrupt the frontier here.
      for (unsigned a = 0; a < 16; ++a)
        for (unsigned b = 0; b < 16; ++b)
          if ((act.map[a] ^ act.map[b]) != act.map[a ^ b] || act.map[0] != 0)
            throw std::logic_error(
                "clifford2q_bit_action: action table is not GF(2)-linear");
      for (unsigned k = 0; k < 4; ++k) {
        std::uint8_t mask = 0;
        for (unsigned i = 0; i < 4; ++i)
          mask |= static_cast<std::uint8_t>((act.map[1u << i] >> k & 1) << i);
        t[g].out_mask[k] = mask;
      }
    }
    return t;
  }();
  for (std::size_t g = 0; g < 6; ++g) {
    const Clifford2Q& gen = clifford2q_generators()[g];
    if (gen.sigma0 == sigma0 && gen.sigma1 == sigma1) return table[g];
  }
  throw std::invalid_argument(
      "clifford2q_bit_action: not an Eq. (5) generator");
}

void BsfColumnView::rebuild(const Bsf& bsf) {
  nrows_ = bsf.num_rows();
  ncols_ = bsf.num_qubits();
  nwords_ = (nrows_ + 63) / 64;
  colx_.assign(ncols_ * nwords_, 0);
  colz_.assign(ncols_ * nwords_, 0);
  weight_.assign(nrows_, 0);
  for (auto& m : wcls_) m.assign(nwords_, 0);
  for (std::size_t r = 0; r < nrows_; ++r) {
    const std::uint64_t bit = std::uint64_t{1} << (r & 63);
    const std::size_t w = r >> 6;
    const auto& xw = bsf.row_x(r).words();
    const auto& zw = bsf.row_z(r).words();
    for (std::size_t c = 0; c < ncols_; ++c) {
      if (xw[c >> 6] >> (c & 63) & 1) colx_[c * nwords_ + w] |= bit;
      if (zw[c >> 6] >> (c & 63) & 1) colz_[c * nwords_ + w] |= bit;
    }
    const std::uint32_t wt = static_cast<std::uint32_t>(bsf.row_weight(r));
    weight_[r] = wt;
    if (wt < 4) wcls_[wt][w] |= bit;
  }
}

namespace {

/// XOR of the input column words selected by a bit-action row mask.
inline std::uint64_t combine(std::uint8_t mask, std::uint64_t x0,
                             std::uint64_t z0, std::uint64_t x1,
                             std::uint64_t z1) {
  std::uint64_t v = 0;
  if (mask & 1) v ^= x0;
  if (mask & 2) v ^= z0;
  if (mask & 4) v ^= x1;
  if (mask & 8) v ^= z1;
  return v;
}

}  // namespace

void BsfColumnView::probe(const Clifford2Q& c, Probe& out) const {
  std::uint64_t stack_masks[4 * 8];
  std::vector<std::uint64_t> heap_masks;
  std::uint64_t* masks = stack_masks;
  if (4 * nwords_ > std::size(stack_masks)) {
    heap_masks.resize(4 * nwords_);
    masks = heap_masks.data();
  }
  out = Probe{};
  probe_counts(c, out, masks);
  census(masks, out.newly_local, out.newly_nonlocal);
}

void BsfColumnView::probe_counts(const Clifford2Q& c, Probe& out,
                                 std::uint64_t* masks) const {
  const Clifford2QBitAction& act = clifford2q_bit_action(c.sigma0, c.sigma1);
  const std::uint64_t* x0 = colx(c.q0);
  const std::uint64_t* z0 = colz(c.q0);
  const std::uint64_t* x1 = colx(c.q1);
  const std::uint64_t* z1 = colz(c.q1);
  out.nx0 = out.nz0 = out.nu0 = out.nx1 = out.nz1 = out.nu1 = 0;
  for (std::size_t w = 0; w < nwords_; ++w) {
    const std::uint64_t nx0 = combine(act.out_mask[0], x0[w], z0[w], x1[w], z1[w]);
    const std::uint64_t nz0 = combine(act.out_mask[1], x0[w], z0[w], x1[w], z1[w]);
    const std::uint64_t nx1 = combine(act.out_mask[2], x0[w], z0[w], x1[w], z1[w]);
    const std::uint64_t nz1 = combine(act.out_mask[3], x0[w], z0[w], x1[w], z1[w]);
    out.nx0 += static_cast<std::size_t>(std::popcount(nx0));
    out.nz0 += static_cast<std::size_t>(std::popcount(nz0));
    out.nu0 += static_cast<std::size_t>(std::popcount(nx0 | nz0));
    out.nx1 += static_cast<std::size_t>(std::popcount(nx1));
    out.nz1 += static_cast<std::size_t>(std::popcount(nz1));
    out.nu1 += static_cast<std::size_t>(std::popcount(nx1 | nz1));
    // Occupancy gained/lost per column (disjoint by construction), hence the
    // per-row weight delta in {-2 … +2}. dw = -1 is one loss and no gain, or
    // two losses and one gain; dw = -2 is two losses, no gain (+1/+2 mirror
    // with gains and losses swapped). Only the candidate's two columns enter
    // these masks — row weights and class membership do not.
    const std::uint64_t up = x0[w] | z0[w], uq = x1[w] | z1[w];
    const std::uint64_t upn = nx0 | nz0, uqn = nx1 | nz1;
    const std::uint64_t gp = upn & ~up, lp = up & ~upn;
    const std::uint64_t gq = uqn & ~uq, lq = uq & ~uqn;
    const std::uint64_t m1 = ((lp ^ lq) & ~(gp | gq)) | ((lp & lq) & (gp ^ gq));
    const std::uint64_t m2 = lp & lq & ~(gp | gq);
    const std::uint64_t p1 = ((gp ^ gq) & ~(lp | lq)) | ((gp & gq) & (lp ^ lq));
    const std::uint64_t p2 = gp & gq & ~(lp | lq);
    masks[4 * w + 0] = m1 | m2;
    masks[4 * w + 1] = m2;
    masks[4 * w + 2] = p1 | p2;
    masks[4 * w + 3] = p2;
  }
}

void BsfColumnView::census(const std::uint64_t* masks,
                           std::size_t& newly_local,
                           std::size_t& newly_nonlocal) const {
  std::size_t nl = 0, nnl = 0;
  for (std::size_t w = 0; w < nwords_; ++w) {
    // A weight-2 row drops to local on any loss, weight-3 only on dw = -2;
    // the nonlocal direction mirrors from weights 1 and 0.
    nl += static_cast<std::size_t>(
        std::popcount((wcls_[2][w] & masks[4 * w + 0]) |
                      (wcls_[3][w] & masks[4 * w + 1])));
    nnl += static_cast<std::size_t>(
        std::popcount((wcls_[1][w] & masks[4 * w + 2]) |
                      (wcls_[0][w] & masks[4 * w + 3])));
  }
  newly_local = nl;
  newly_nonlocal = nnl;
}

void BsfColumnView::apply(const Clifford2Q& c) {
  const Clifford2QBitAction& act = clifford2q_bit_action(c.sigma0, c.sigma1);
  std::uint64_t* x0 = colx_.data() + c.q0 * nwords_;
  std::uint64_t* z0 = colz_.data() + c.q0 * nwords_;
  std::uint64_t* x1 = colx_.data() + c.q1 * nwords_;
  std::uint64_t* z1 = colz_.data() + c.q1 * nwords_;
  for (std::size_t w = 0; w < nwords_; ++w) {
    const std::uint64_t ox0 = x0[w], oz0 = z0[w], ox1 = x1[w], oz1 = z1[w];
    const std::uint64_t nx0 = combine(act.out_mask[0], ox0, oz0, ox1, oz1);
    const std::uint64_t nz0 = combine(act.out_mask[1], ox0, oz0, ox1, oz1);
    const std::uint64_t nx1 = combine(act.out_mask[2], ox0, oz0, ox1, oz1);
    const std::uint64_t nz1 = combine(act.out_mask[3], ox0, oz0, ox1, oz1);
    x0[w] = nx0;
    z0[w] = nz0;
    x1[w] = nx1;
    z1[w] = nz1;
    const std::uint64_t up = ox0 | oz0, uq = ox1 | oz1;
    const std::uint64_t upn = nx0 | nz0, uqn = nx1 | nz1;
    std::uint64_t changed = (up ^ upn) | (uq ^ uqn);
    while (changed) {
      const unsigned b = static_cast<unsigned>(std::countr_zero(changed));
      changed &= changed - 1;
      const std::uint64_t bit = std::uint64_t{1} << b;
      const std::size_t r = (w << 6) + b;
      const int dw = static_cast<int>((upn >> b & 1) + (uqn >> b & 1)) -
                     static_cast<int>((up >> b & 1) + (uq >> b & 1));
      const std::uint32_t old_wt = weight_[r];
      const std::uint32_t new_wt =
          static_cast<std::uint32_t>(static_cast<int>(old_wt) + dw);
      weight_[r] = new_wt;
      if (old_wt < 4) wcls_[old_wt][w] &= ~bit;
      if (new_wt < 4) wcls_[new_wt][w] |= bit;
    }
  }
}

std::size_t BsfColumnView::kill_local_rows(std::vector<std::size_t>& touched) {
  std::size_t killed = 0;
  for (std::size_t w = 0; w < nwords_; ++w) {
    // Dead rows sit in no class mask, so this picks exactly the live locals.
    std::uint64_t local = wcls_[0][w] | wcls_[1][w];
    wcls_[0][w] = 0;
    wcls_[1][w] = 0;
    while (local) {
      const unsigned b = static_cast<unsigned>(std::countr_zero(local));
      local &= local - 1;
      const std::uint64_t bit = std::uint64_t{1} << b;
      ++killed;
      weight_[(w << 6) + b] = 0;
      for (std::size_t c = 0; c < ncols_; ++c) {
        std::uint64_t& x = colx_[c * nwords_ + w];
        std::uint64_t& z = colz_[c * nwords_ + w];
        if ((x | z) & bit) {
          x &= ~bit;
          z &= ~bit;
          touched.push_back(c);
          break;  // weight <= 1: at most one occupied column
        }
      }
    }
  }
  return killed;
}

void Bsf::apply_clifford2q(const Clifford2Q& c) {
  const Clifford2QAction& act = action_for(c.sigma0, c.sigma1);
  for (auto& r : rows_) {
    const unsigned cfg = static_cast<unsigned>(r.x.get(c.q0)) |
                         static_cast<unsigned>(r.z.get(c.q0)) << 1 |
                         static_cast<unsigned>(r.x.get(c.q1)) << 2 |
                         static_cast<unsigned>(r.z.get(c.q1)) << 3;
    const unsigned out = act.map[cfg];
    r.x.set(c.q0, out & 1);
    r.z.set(c.q0, out >> 1 & 1);
    r.x.set(c.q1, out >> 2 & 1);
    r.z.set(c.q1, out >> 3 & 1);
    r.sign ^= act.flip[cfg];
  }
}

std::string Bsf::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const auto t = term(i);
    out += (rows_[i].sign ? '-' : '+');
    out += PauliString(rows_[i].x, rows_[i].z).to_string();
    out += " * ";
    out += std::to_string(rows_[i].coeff);
    out += '\n';
  }
  return out;
}

}  // namespace phoenix
