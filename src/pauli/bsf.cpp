#include "pauli/bsf.hpp"

#include <stdexcept>

namespace phoenix {

Bsf::Bsf(const std::vector<PauliTerm>& terms) {
  if (terms.empty()) return;
  n_ = terms.front().string.num_qubits();
  for (const auto& t : terms) add_term(t);
}

void Bsf::add_term(const PauliTerm& t) {
  if (n_ == 0 && rows_.empty()) n_ = t.string.num_qubits();
  if (t.string.num_qubits() != n_)
    throw std::invalid_argument("Bsf::add_term: qubit count mismatch");
  rows_.push_back(Row{t.string.x(), t.string.z(), false, t.coeff});
}

void Bsf::add_row(Row r) {
  if (r.x.size() != n_ || r.z.size() != n_)
    throw std::invalid_argument("Bsf::add_row: qubit count mismatch");
  rows_.push_back(std::move(r));
}

PauliTerm Bsf::term(std::size_t i) const {
  const Row& r = rows_[i];
  return PauliTerm(PauliString(r.x, r.z), r.sign ? -r.coeff : r.coeff);
}

std::vector<PauliTerm> Bsf::terms() const {
  std::vector<PauliTerm> out;
  out.reserve(rows_.size());
  for (std::size_t i = 0; i < rows_.size(); ++i) out.push_back(term(i));
  return out;
}

BitVec Bsf::support_mask() const {
  BitVec m(n_);
  for (const auto& r : rows_) {
    m |= r.x;
    m |= r.z;
  }
  return m;
}

std::vector<Bsf::Row> Bsf::pop_local_rows() {
  std::vector<Row> locals;
  std::vector<Row> kept;
  kept.reserve(rows_.size());
  for (auto& r : rows_) {
    if ((r.x | r.z).popcount() <= 1)
      locals.push_back(std::move(r));
    else
      kept.push_back(std::move(r));
  }
  rows_ = std::move(kept);
  return locals;
}

void Bsf::apply_h(std::size_t q) {
  for (auto& r : rows_) {
    const bool x = r.x.get(q), z = r.z.get(q);
    r.sign ^= x && z;  // H Y H = -Y
    r.x.set(q, z);
    r.z.set(q, x);
  }
}

void Bsf::apply_s(std::size_t q) {
  for (auto& r : rows_) {
    const bool x = r.x.get(q), z = r.z.get(q);
    r.sign ^= x && z;  // S Y S† = -X
    r.z.set(q, x != z);
  }
}

void Bsf::apply_sdg(std::size_t q) {
  for (auto& r : rows_) {
    const bool x = r.x.get(q), z = r.z.get(q);
    r.sign ^= x && !z;  // S† X S = -Y
    r.z.set(q, x != z);
  }
}

void Bsf::apply_cnot(std::size_t control, std::size_t target) {
  if (control == target)
    throw std::invalid_argument("Bsf::apply_cnot: control == target");
  for (auto& r : rows_) {
    const bool xc = r.x.get(control), zc = r.z.get(control);
    const bool xt = r.x.get(target), zt = r.z.get(target);
    r.sign ^= xc && zt && (xt == zc);  // i.e. xt ^ zc ^ 1
    r.x.set(target, xt != xc);
    r.z.set(control, zc != zt);
  }
}

void Bsf::apply_step(const CliffStepOp& op) {
  switch (op.step) {
    case CliffStep::H: apply_h(op.a); break;
    case CliffStep::S: apply_s(op.a); break;
    case CliffStep::Sdg: apply_sdg(op.a); break;
    case CliffStep::Cnot: apply_cnot(op.a, op.b); break;
  }
}

void Bsf::apply_clifford2q(const Clifford2Q& c) {
  for (const auto& op : c.expansion()) apply_step(op);
}

std::string Bsf::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const auto t = term(i);
    out += (rows_[i].sign ? '-' : '+');
    out += PauliString(rows_[i].x, rows_[i].z).to_string();
    out += " * ";
    out += std::to_string(rows_[i].coeff);
    out += '\n';
  }
  return out;
}

}  // namespace phoenix
