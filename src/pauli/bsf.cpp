#include "pauli/bsf.hpp"

#include <array>
#include <cstdint>
#include <stdexcept>

namespace phoenix {

Bsf::Bsf(const std::vector<PauliTerm>& terms) {
  if (terms.empty()) return;
  n_ = terms.front().string.num_qubits();
  for (const auto& t : terms) add_term(t);
}

void Bsf::add_term(const PauliTerm& t) {
  if (n_ == 0 && rows_.empty()) n_ = t.string.num_qubits();
  if (t.string.num_qubits() != n_)
    throw std::invalid_argument("Bsf::add_term: qubit count mismatch");
  rows_.push_back(Row{t.string.x(), t.string.z(), false, t.coeff});
}

void Bsf::add_row(Row r) {
  if (r.x.size() != n_ || r.z.size() != n_)
    throw std::invalid_argument("Bsf::add_row: qubit count mismatch");
  rows_.push_back(std::move(r));
}

PauliTerm Bsf::term(std::size_t i) const {
  const Row& r = rows_[i];
  return PauliTerm(PauliString(r.x, r.z), r.sign ? -r.coeff : r.coeff);
}

std::vector<PauliTerm> Bsf::terms() const {
  std::vector<PauliTerm> out;
  out.reserve(rows_.size());
  for (std::size_t i = 0; i < rows_.size(); ++i) out.push_back(term(i));
  return out;
}

BitVec Bsf::support_mask() const {
  BitVec m(n_);
  for (const auto& r : rows_) {
    m |= r.x;
    m |= r.z;
  }
  return m;
}

std::vector<Bsf::Row> Bsf::pop_local_rows() {
  std::vector<Row> locals;
  std::vector<Row> kept;
  kept.reserve(rows_.size());
  for (auto& r : rows_) {
    if (BitVec::or_popcount(r.x, r.z) <= 1)
      locals.push_back(std::move(r));
    else
      kept.push_back(std::move(r));
  }
  rows_ = std::move(kept);
  return locals;
}

void Bsf::column_counts(std::size_t c, std::size_t& nx, std::size_t& nz,
                        std::size_t& nu) const {
  nx = nz = nu = 0;
  for (const auto& r : rows_) {
    const bool x = r.x.get(c), z = r.z.get(c);
    nx += x;
    nz += z;
    nu += x || z;
  }
}

void Bsf::apply_h(std::size_t q) {
  for (auto& r : rows_) {
    const bool x = r.x.get(q), z = r.z.get(q);
    r.sign ^= x && z;  // H Y H = -Y
    r.x.set(q, z);
    r.z.set(q, x);
  }
}

void Bsf::apply_s(std::size_t q) {
  for (auto& r : rows_) {
    const bool x = r.x.get(q), z = r.z.get(q);
    r.sign ^= x && z;  // S Y S† = -X
    r.z.set(q, x != z);
  }
}

void Bsf::apply_sdg(std::size_t q) {
  for (auto& r : rows_) {
    const bool x = r.x.get(q), z = r.z.get(q);
    r.sign ^= x && !z;  // S† X S = -Y
    r.z.set(q, x != z);
  }
}

void Bsf::apply_cnot(std::size_t control, std::size_t target) {
  if (control == target)
    throw std::invalid_argument("Bsf::apply_cnot: control == target");
  for (auto& r : rows_) {
    const bool xc = r.x.get(control), zc = r.z.get(control);
    const bool xt = r.x.get(target), zt = r.z.get(target);
    r.sign ^= xc && zt && (xt == zc);  // i.e. xt ^ zc ^ 1
    r.x.set(target, xt != xc);
    r.z.set(control, zc != zt);
  }
}

void Bsf::apply_step(const CliffStepOp& op) {
  switch (op.step) {
    case CliffStep::H: apply_h(op.a); break;
    case CliffStep::S: apply_s(op.a); break;
    case CliffStep::Sdg: apply_sdg(op.a); break;
    case CliffStep::Cnot: apply_cnot(op.a, op.b); break;
  }
}

namespace {

/// Precomputed conjugation action of one Eq. (5) generator on the two-qubit
/// sub-configuration of a row. A Clifford2Q acts only on its own qubit pair,
/// so P = P_rest ⊗ P_sub maps to s(P_sub) · P_rest ⊗ P_sub′: the new four
/// bits and the sign flip are a pure function of the old four bits. The
/// tables are derived at first use by running the gate's own H/S/CNOT
/// expansion on all 16 sub-configurations, so the sign bookkeeping stays
/// exactly the expansion's — this is a constant-factor fast path, not a
/// second implementation of the algebra.
struct Clifford2QAction {
  std::uint8_t map[16];  ///< cfg = x0 | z0<<1 | x1<<2 | z1<<3
  bool flip[16];
};

Clifford2QAction derive_action(const Clifford2Q& gen) {
  Clifford2QAction act{};
  for (unsigned cfg = 0; cfg < 16; ++cfg) {
    Bsf probe(2);
    Bsf::Row row;
    row.x = BitVec(2);
    row.z = BitVec(2);
    row.x.set(0, cfg & 1);
    row.z.set(0, cfg >> 1 & 1);
    row.x.set(1, cfg >> 2 & 1);
    row.z.set(1, cfg >> 3 & 1);
    row.coeff = 1.0;
    probe.add_row(row);
    Clifford2Q local = gen;
    local.q0 = 0;
    local.q1 = 1;
    for (const auto& op : local.expansion()) probe.apply_step(op);
    act.map[cfg] = static_cast<std::uint8_t>(
        static_cast<unsigned>(probe.row_x(0).get(0)) |
        static_cast<unsigned>(probe.row_z(0).get(0)) << 1 |
        static_cast<unsigned>(probe.row_x(0).get(1)) << 2 |
        static_cast<unsigned>(probe.row_z(0).get(1)) << 3);
    act.flip[cfg] = probe.row(0).sign;
  }
  return act;
}

const Clifford2QAction& action_for(Pauli sigma0, Pauli sigma1) {
  static const std::array<Clifford2QAction, 6> table = [] {
    std::array<Clifford2QAction, 6> t{};
    for (std::size_t g = 0; g < 6; ++g)
      t[g] = derive_action(clifford2q_generators()[g]);
    return t;
  }();
  for (std::size_t g = 0; g < 6; ++g) {
    const Clifford2Q& gen = clifford2q_generators()[g];
    if (gen.sigma0 == sigma0 && gen.sigma1 == sigma1) return table[g];
  }
  throw std::invalid_argument("Bsf::apply_clifford2q: not an Eq. (5) generator");
}

}  // namespace

void Bsf::apply_clifford2q(const Clifford2Q& c) {
  const Clifford2QAction& act = action_for(c.sigma0, c.sigma1);
  for (auto& r : rows_) {
    const unsigned cfg = static_cast<unsigned>(r.x.get(c.q0)) |
                         static_cast<unsigned>(r.z.get(c.q0)) << 1 |
                         static_cast<unsigned>(r.x.get(c.q1)) << 2 |
                         static_cast<unsigned>(r.z.get(c.q1)) << 3;
    const unsigned out = act.map[cfg];
    r.x.set(c.q0, out & 1);
    r.z.set(c.q0, out >> 1 & 1);
    r.x.set(c.q1, out >> 2 & 1);
    r.z.set(c.q1, out >> 3 & 1);
    r.sign ^= act.flip[cfg];
  }
}

std::string Bsf::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const auto t = term(i);
    out += (rows_[i].sign ? '-' : '+');
    out += PauliString(rows_[i].x, rows_[i].z).to_string();
    out += " * ";
    out += std::to_string(rows_[i].coeff);
    out += '\n';
  }
  return out;
}

}  // namespace phoenix
