#pragma once

#include <cstddef>
#include <vector>

#include "circuit/circuit.hpp"
#include "pauli/pauli.hpp"

namespace phoenix {

/// Full n-qubit Clifford tableau: tracks the images C X_j C† and C Z_j C†
/// of every single-qubit Pauli generator under conjugation by a Clifford
/// circuit C. Complements `Bsf` (which conjugates a fixed string list):
/// the tableau represents the *map* itself, supports composition with any
/// Clifford gate, and evaluates the image of arbitrary Pauli strings —
/// the machinery used to verify structurally that compiled conjugation
/// circuits act exactly as the BSF bookkeeping claims.
class CliffordTableau {
 public:
  /// Identity map on n qubits.
  explicit CliffordTableau(std::size_t num_qubits);

  /// Tableau of a Clifford circuit (throws on non-Clifford gates: rotations
  /// with angles that are not multiples of π/2 are rejected).
  static CliffordTableau from_circuit(const Circuit& c);

  std::size_t num_qubits() const { return n_; }

  /// Compose with a gate on the left: this ← gate ∘ this.
  void apply_gate(const Gate& g);

  void apply_h(std::size_t q);
  void apply_s(std::size_t q);
  void apply_sdg(std::size_t q);
  void apply_x(std::size_t q);
  void apply_z(std::size_t q);
  void apply_cnot(std::size_t c, std::size_t t);
  void apply_cz(std::size_t a, std::size_t b);
  void apply_swap(std::size_t a, std::size_t b);

  /// Image of a generator: C X_q C† (sign folded into the term coefficient
  /// as ±1) or C Z_q C†.
  PauliTerm image_of_x(std::size_t q) const;
  PauliTerm image_of_z(std::size_t q) const;

  /// Image of an arbitrary Pauli string: C P C† = ± P′. The returned term
  /// has coefficient ±1.
  PauliTerm image(const PauliString& p) const;

  /// True when the map is the identity (all generators fixed, signs +).
  bool is_identity() const;

  bool operator==(const CliffordTableau& o) const = default;

 private:
  struct Row {
    BitVec x, z;
    bool sign = false;
    bool operator==(const Row& o) const = default;
  };

  Row& xrow(std::size_t q) { return rows_[q]; }
  Row& zrow(std::size_t q) { return rows_[n_ + q]; }
  const Row& xrow(std::size_t q) const { return rows_[q]; }
  const Row& zrow(std::size_t q) const { return rows_[n_ + q]; }

  std::size_t n_;
  std::vector<Row> rows_;  ///< rows 0..n-1: images of X_q; n..2n-1: of Z_q
};

}  // namespace phoenix
