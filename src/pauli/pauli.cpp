#include "pauli/pauli.hpp"

#include <stdexcept>

namespace phoenix {

char pauli_char(Pauli p) {
  switch (p) {
    case Pauli::I: return 'I';
    case Pauli::X: return 'X';
    case Pauli::Y: return 'Y';
    case Pauli::Z: return 'Z';
  }
  throw std::logic_error("pauli_char: invalid Pauli");
}

Pauli pauli_from_char(char c) {
  switch (c) {
    case 'I': case 'i': return Pauli::I;
    case 'X': case 'x': return Pauli::X;
    case 'Y': case 'y': return Pauli::Y;
    case 'Z': case 'z': return Pauli::Z;
    default:
      throw std::invalid_argument(std::string("pauli_from_char: bad char '") +
                                  c + "'");
  }
}

bool pauli_commutes(Pauli a, Pauli b) {
  return a == Pauli::I || b == Pauli::I || a == b;
}

PauliString::PauliString(BitVec x, BitVec z) : x_(std::move(x)), z_(std::move(z)) {
  if (x_.size() != z_.size())
    throw std::invalid_argument("PauliString: X/Z size mismatch");
}

PauliString PauliString::from_label(const std::string& label) {
  PauliString s(label.size());
  for (std::size_t i = 0; i < label.size(); ++i) s.set_op(i, pauli_from_char(label[i]));
  return s;
}

PauliString PauliString::single(std::size_t n, std::size_t q, Pauli p) {
  PauliString s(n);
  s.set_op(q, p);
  return s;
}

Pauli PauliString::op(std::size_t q) const {
  const bool x = x_.get(q), z = z_.get(q);
  if (x && z) return Pauli::Y;
  if (x) return Pauli::X;
  if (z) return Pauli::Z;
  return Pauli::I;
}

void PauliString::set_op(std::size_t q, Pauli p) {
  x_.set(q, p == Pauli::X || p == Pauli::Y);
  z_.set(q, p == Pauli::Z || p == Pauli::Y);
}

bool PauliString::commutes_with(const PauliString& o) const {
  return BitVec::and_parity(x_, o.z_) == BitVec::and_parity(o.x_, z_);
}

std::string PauliString::to_string() const {
  std::string s(num_qubits(), 'I');
  for (std::size_t q = 0; q < num_qubits(); ++q) s[q] = pauli_char(op(q));
  return s;
}

void PauliString::hash_into(Hash128& h) const {
  h.write_size(num_qubits());
  for (const std::uint64_t w : x_.words()) h.write_u64(w);
  for (const std::uint64_t w : z_.words()) h.write_u64(w);
}

bool pauli_string_less(const PauliString& a, const PauliString& b) {
  if (a.num_qubits() != b.num_qubits())
    return a.num_qubits() < b.num_qubits();
  const auto &az = a.z().words(), &bz = b.z().words();
  for (std::size_t i = 0; i < az.size(); ++i)
    if (az[i] != bz[i]) return az[i] < bz[i];
  const auto &ax = a.x().words(), &bx = b.x().words();
  for (std::size_t i = 0; i < ax.size(); ++i)
    if (ax[i] != bx[i]) return ax[i] < bx[i];
  return false;
}

}  // namespace phoenix
