#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bitvec.hpp"
#include "pauli/clifford2q.hpp"
#include "pauli/pauli.hpp"

namespace phoenix {

/// Binary symplectic form (BSF) tableau of a list of weighted Pauli strings
/// (paper §III). Row i holds the i-th Pauli string as bit vectors
/// [x_i | z_i], a sign bit, and the rotation coefficient.
///
/// Clifford conjugation P ← C P C† is realized by sign-correct
/// Aaronson–Gottesman-style column updates. The six universal controlled
/// gates of Eq. (5) are applied through 16-entry action tables derived once
/// from their H/S/CNOT expansion (a Clifford2Q only touches its own qubit
/// pair, so its action on a row is a pure function of the row's four bits
/// there) — sign bookkeeping stays the expansion's, at one row pass per
/// gate instead of one per expansion step.
class Bsf {
 public:
  struct Row {
    BitVec x, z;
    bool sign = false;   ///< true means the conjugated Pauli is -P
    double coeff = 0.0;  ///< rotation coefficient (sign not folded in)

    bool operator==(const Row& o) const = default;
  };

  Bsf() = default;
  explicit Bsf(std::size_t num_qubits) : n_(num_qubits) {}
  explicit Bsf(const std::vector<PauliTerm>& terms);

  std::size_t num_qubits() const { return n_; }
  std::size_t num_rows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  const Row& row(std::size_t i) const { return rows_[i]; }
  const BitVec& row_x(std::size_t i) const { return rows_[i].x; }
  const BitVec& row_z(std::size_t i) const { return rows_[i].z; }

  void add_term(const PauliTerm& t);
  void add_row(Row r);

  /// The i-th row as a weighted Pauli term, with the sign folded into the
  /// coefficient (exp(-iθ(-P)) == rotation by -θ about P).
  PauliTerm term(std::size_t i) const;
  std::vector<PauliTerm> terms() const;

  /// Non-identity positions of row i.
  std::size_t row_weight(std::size_t i) const {
    return BitVec::or_popcount(rows_[i].x, rows_[i].z);
  }
  /// Local rows act on at most one qubit (1Q rotations, free to synthesize).
  bool row_is_local(std::size_t i) const { return row_weight(i) <= 1; }

  /// OR of (x|z) over all rows — the set of qubits the tableau touches.
  BitVec support_mask() const;
  std::vector<std::size_t> support() const { return support_mask().ones(); }

  /// Total weight w_tot of Eq. (4): size of the union support. A tableau with
  /// w_tot <= 2 is directly synthesizable with 1Q/2Q gates.
  std::size_t total_weight() const { return support_mask().popcount(); }

  /// Remove all local (weight <= 1) rows and return them in original order.
  std::vector<Row> pop_local_rows();

  /// Column occupancy at qubit column `c`: number of rows with the X bit set
  /// (nx), with the Z bit set (nz), and with either (nu). O(rows). This is
  /// the primitive behind the incremental Eq. (6) cost: a Clifford2Q touches
  /// exactly two columns, so retallying those two columns re-syncs the
  /// column-count decomposition of the pairwise cost terms.
  void column_counts(std::size_t c, std::size_t& nx, std::size_t& nz,
                     std::size_t& nu) const;

  // --- Clifford conjugation updates (P ← C P C†), sign-correct -----------
  void apply_h(std::size_t q);
  void apply_s(std::size_t q);
  void apply_sdg(std::size_t q);
  void apply_cnot(std::size_t control, std::size_t target);
  void apply_step(const CliffStepOp& op);
  /// Apply a universal controlled gate (one row pass via its derived action
  /// table; equivalent to applying its expansion() step by step).
  void apply_clifford2q(const Clifford2Q& c);

  /// Multi-line debug form: one "±LABEL * coeff" per row.
  std::string to_string() const;

  bool operator==(const Bsf& o) const = default;

 private:
  std::size_t n_ = 0;
  std::vector<Row> rows_;
};

/// The bit-level conjugation action of an Eq. (5) generator, in GF(2)-linear
/// form. A Clifford2Q's 16-entry action table (see bsf.cpp) maps the four
/// tableau bits (x0, z0, x1, z1) of its qubit pair; because H, S, and CNOT
/// all act linearly on tableau bits, that map is linear over GF(2) — only
/// the sign flip is nonlinear, and signs never enter the Eq. (6) cost.
/// Output bit k is the XOR of the input bits selected by out_mask[k], which
/// is what lets BsfColumnView evaluate a candidate's effect on a whole
/// column of rows with a handful of word-wide XORs instead of a per-row
/// table lookup. Derived from (and verified against) the same action tables
/// apply_clifford2q uses, so the two can never drift apart.
struct Clifford2QBitAction {
  std::uint8_t out_mask[4];  ///< bit i of out_mask[k]: input i feeds output k
};

/// The bit action of generator C(sigma0, sigma1). Throws if (sigma0, sigma1)
/// is not one of the six Eq. (5) generators.
const Clifford2QBitAction& clifford2q_bit_action(Pauli sigma0, Pauli sigma1);

/// Bit-transposed (column-major) view of a Bsf for batched column-delta
/// evaluation: for each qubit column the X and Z bits of all rows are packed
/// into 64-bit words (bit r = row r), alongside per-row weights and
/// weight-class masks. probe() then answers "what would candidate C do to
/// the Eq. (6) column counts and to the local/nonlocal row census?" with a
/// few word-parallel XOR/OR/popcount passes over just the candidate's two
/// columns — read-only, no tableau mutation, no apply/undo round-trip. This
/// is the batched column-delta kernel behind the simplify frontier
/// (DESIGN.md §11).
///
/// The view is bound to a fixed row set: rebuild() after rows are added or
/// removed (the search rebuilds once per epoch, after peeling local rows);
/// between rebuilds, mirror every applied conjugation with apply().
class BsfColumnView {
 public:
  BsfColumnView() = default;

  /// Full (re)build from the tableau, O(rows · qubits).
  void rebuild(const Bsf& bsf);

  /// Post-conjugation column state for a candidate on columns (q0, q1):
  /// the new occupancy counts of both columns, plus how many rows cross the
  /// local/nonlocal boundary (weight <= 1 vs > 1) in either direction.
  /// Together with IncrementalBsfCost's global tallies this determines the
  /// exact Eq. (6) cost after the candidate — see probe_cost2().
  struct Probe {
    std::size_t nx0 = 0, nz0 = 0, nu0 = 0;  ///< column q0 after C
    std::size_t nx1 = 0, nz1 = 0, nu1 = 0;  ///< column q1 after C
    std::size_t newly_local = 0;     ///< rows with weight > 1 dropping to <= 1
    std::size_t newly_nonlocal = 0;  ///< rows with weight <= 1 rising to > 1
  };
  void probe(const Clifford2Q& c, Probe& out) const;

  /// Split probe for cached rescoring. Fills the six column-count fields of
  /// `out` (newly_local / newly_nonlocal are left untouched) and writes the
  /// candidate's per-word weight-delta masks to `masks`, 4 words per row
  /// word: masks[4w+0] = rows losing 1 or 2 from their support (dw < 0),
  /// masks[4w+1] = rows losing exactly 2, masks[4w+2] / masks[4w+3] the
  /// gaining mirrors. Everything written here depends ONLY on the
  /// candidate's two columns — not on row weights or class masks — so a
  /// cached result stays valid until one of those columns is transformed by
  /// an apply(). census() turns the cached masks into the Probe's
  /// local/nonlocal crossing counts under the *current* class masks.
  void probe_counts(const Clifford2Q& c, Probe& out,
                    std::uint64_t* masks) const;

  /// Count the local/nonlocal boundary crossings implied by `masks` (as laid
  /// out by probe_counts) under the current weight-class masks — O(words).
  /// This is the whole per-epoch rescore cost of a cached frontier entry:
  /// row weights drift on every applied move, but the drift is absorbed here
  /// by reading the live class masks instead of invalidating the cache.
  void census(const std::uint64_t* masks, std::size_t& newly_local,
              std::size_t& newly_nonlocal) const;

  /// Mirror an applied conjugation (the caller also applies it to the Bsf):
  /// transforms the two columns and re-syncs row weights and class masks.
  /// Cached probe_counts() output goes stale only for candidates reading
  /// column c.q0 or c.q1 — class-mask movement does not invalidate anything,
  /// because census() is re-run against the live masks at every rescore.
  void apply(const Clifford2Q& c);

  /// Tombstone every live row of weight <= 1, mirroring Bsf::pop_local_rows
  /// without disturbing the surviving rows' bit positions: each dead row's
  /// column bits are zeroed (a local row occupies at most one column) and
  /// its weight-class bits cleared, so it contributes nothing to any later
  /// probe — the view's column counts keep matching the compacted tableau's.
  /// Appends each column whose words changed to `touched` (no dedup) and
  /// returns the number of rows killed. Cached probes for untouched columns
  /// stay valid — this is what lets the frontier survive the per-epoch peel
  /// that would otherwise force a full rebuild and a cold cache.
  std::size_t kill_local_rows(std::vector<std::size_t>& touched);

  std::size_t num_rows() const { return nrows_; }
  std::size_t num_cols() const { return ncols_; }
  /// 64-bit words per packed column; probe_counts() writes 4× this many
  /// mask words per candidate.
  std::size_t num_words() const { return nwords_; }
  std::size_t row_weight(std::size_t r) const { return weight_[r]; }

 private:
  const std::uint64_t* colx(std::size_t c) const {
    return colx_.data() + c * nwords_;
  }
  const std::uint64_t* colz(std::size_t c) const {
    return colz_.data() + c * nwords_;
  }

  std::size_t nrows_ = 0;
  std::size_t ncols_ = 0;
  std::size_t nwords_ = 0;            ///< words per column, (nrows + 63) / 64
  std::vector<std::uint64_t> colx_;   ///< ncols × nwords, column-major
  std::vector<std::uint64_t> colz_;
  std::vector<std::uint32_t> weight_;  ///< per-row support size
  /// wcls_[k]: mask of rows with weight exactly k, k < 4. Rows of weight
  /// >= 4 appear in no mask — a single conjugation changes a row's weight by
  /// at most 2, so only classes 0–3 can cross the local/nonlocal boundary.
  std::vector<std::uint64_t> wcls_[4];
};

}  // namespace phoenix
