#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/bitvec.hpp"
#include "pauli/clifford2q.hpp"
#include "pauli/pauli.hpp"

namespace phoenix {

/// Binary symplectic form (BSF) tableau of a list of weighted Pauli strings
/// (paper §III). Row i holds the i-th Pauli string as bit vectors
/// [x_i | z_i], a sign bit, and the rotation coefficient.
///
/// Clifford conjugation P ← C P C† is realized by sign-correct
/// Aaronson–Gottesman-style column updates. The six universal controlled
/// gates of Eq. (5) are applied through 16-entry action tables derived once
/// from their H/S/CNOT expansion (a Clifford2Q only touches its own qubit
/// pair, so its action on a row is a pure function of the row's four bits
/// there) — sign bookkeeping stays the expansion's, at one row pass per
/// gate instead of one per expansion step.
class Bsf {
 public:
  struct Row {
    BitVec x, z;
    bool sign = false;   ///< true means the conjugated Pauli is -P
    double coeff = 0.0;  ///< rotation coefficient (sign not folded in)

    bool operator==(const Row& o) const = default;
  };

  Bsf() = default;
  explicit Bsf(std::size_t num_qubits) : n_(num_qubits) {}
  explicit Bsf(const std::vector<PauliTerm>& terms);

  std::size_t num_qubits() const { return n_; }
  std::size_t num_rows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  const Row& row(std::size_t i) const { return rows_[i]; }
  const BitVec& row_x(std::size_t i) const { return rows_[i].x; }
  const BitVec& row_z(std::size_t i) const { return rows_[i].z; }

  void add_term(const PauliTerm& t);
  void add_row(Row r);

  /// The i-th row as a weighted Pauli term, with the sign folded into the
  /// coefficient (exp(-iθ(-P)) == rotation by -θ about P).
  PauliTerm term(std::size_t i) const;
  std::vector<PauliTerm> terms() const;

  /// Non-identity positions of row i.
  std::size_t row_weight(std::size_t i) const {
    return BitVec::or_popcount(rows_[i].x, rows_[i].z);
  }
  /// Local rows act on at most one qubit (1Q rotations, free to synthesize).
  bool row_is_local(std::size_t i) const { return row_weight(i) <= 1; }

  /// OR of (x|z) over all rows — the set of qubits the tableau touches.
  BitVec support_mask() const;
  std::vector<std::size_t> support() const { return support_mask().ones(); }

  /// Total weight w_tot of Eq. (4): size of the union support. A tableau with
  /// w_tot <= 2 is directly synthesizable with 1Q/2Q gates.
  std::size_t total_weight() const { return support_mask().popcount(); }

  /// Remove all local (weight <= 1) rows and return them in original order.
  std::vector<Row> pop_local_rows();

  /// Column occupancy at qubit column `c`: number of rows with the X bit set
  /// (nx), with the Z bit set (nz), and with either (nu). O(rows). This is
  /// the primitive behind the incremental Eq. (6) cost: a Clifford2Q touches
  /// exactly two columns, so retallying those two columns re-syncs the
  /// column-count decomposition of the pairwise cost terms.
  void column_counts(std::size_t c, std::size_t& nx, std::size_t& nz,
                     std::size_t& nu) const;

  // --- Clifford conjugation updates (P ← C P C†), sign-correct -----------
  void apply_h(std::size_t q);
  void apply_s(std::size_t q);
  void apply_sdg(std::size_t q);
  void apply_cnot(std::size_t control, std::size_t target);
  void apply_step(const CliffStepOp& op);
  /// Apply a universal controlled gate (one row pass via its derived action
  /// table; equivalent to applying its expansion() step by step).
  void apply_clifford2q(const Clifford2Q& c);

  /// Multi-line debug form: one "±LABEL * coeff" per row.
  std::string to_string() const;

  bool operator==(const Bsf& o) const = default;

 private:
  std::size_t n_ = 0;
  std::vector<Row> rows_;
};

}  // namespace phoenix
