#include "circuit/qasm.hpp"

#include <cctype>
#include <cmath>
#include <optional>
#include <sstream>
#include <unordered_map>

#include "common/error.hpp"

namespace phoenix {

namespace {

[[noreturn]] void fail(std::size_t lineno, const std::string& msg) {
  throw Error(Stage::Parse, "qasm: " + msg, lineno);
}

std::string strip(const std::string& s) {
  std::size_t a = 0, b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a]))) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1]))) --b;
  return s.substr(a, b - a);
}

/// Parse "q[k]" and return k, validated against the declared register size.
std::size_t parse_qubit(const std::string& tok, std::size_t lineno,
                        const std::string& reg, std::size_t reg_size) {
  const std::string t = strip(tok);
  if (t.size() < reg.size() + 3 || t.compare(0, reg.size(), reg) != 0 ||
      t[reg.size()] != '[' || t.back() != ']')
    fail(lineno, "bad qubit reference '" + t + "'");
  const std::string index = t.substr(reg.size() + 1, t.size() - reg.size() - 2);
  std::size_t k = 0, used = 0;
  try {
    k = std::stoul(index, &used);
  } catch (const std::exception&) {
    fail(lineno, "bad qubit index '" + index + "'");
  }
  if (used != index.size()) fail(lineno, "bad qubit index '" + index + "'");
  if (k >= reg_size)
    fail(lineno, "qubit index " + std::to_string(k) +
                     " outside register of size " + std::to_string(reg_size));
  return k;
}

/// Simple constant-expression evaluator for angles: numbers, pi, unary
/// minus, * and /. Covers everything to_qasm emits and common qelib usage.
double parse_angle(const std::string& expr, std::size_t lineno) {
  // Tokenless recursive evaluation over a flat */ chain with unary minus.
  std::string s = strip(expr);
  if (s.empty()) fail(lineno, "empty angle expression");
  double sign = 1.0;
  std::size_t pos = 0;
  while (pos < s.size() && (s[pos] == '-' || s[pos] == '+')) {
    if (s[pos] == '-') sign = -sign;
    ++pos;
  }
  double value = 0.0;
  bool have_value = false;
  char pending_op = '*';
  auto apply = [&](double operand) {
    if (!have_value) {
      value = operand;
      have_value = true;
    } else if (pending_op == '*') {
      value *= operand;
    } else {
      value /= operand;
    }
  };
  while (pos < s.size()) {
    if (std::isspace(static_cast<unsigned char>(s[pos]))) {
      ++pos;
      continue;
    }
    if (s[pos] == '*' || s[pos] == '/') {
      pending_op = s[pos];
      ++pos;
      continue;
    }
    if (s.compare(pos, 2, "pi") == 0) {
      apply(M_PI);
      pos += 2;
      continue;
    }
    std::size_t used = 0;
    double num;
    try {
      num = std::stod(s.substr(pos), &used);
    } catch (const std::exception&) {
      fail(lineno, "bad angle expression '" + s + "'");
    }
    apply(num);
    pos += used;
  }
  if (!have_value) fail(lineno, "bad angle expression '" + s + "'");
  return sign * value;
}

const std::unordered_map<std::string, GateKind>& gate_table() {
  static const std::unordered_map<std::string, GateKind> table = {
      {"id", GateKind::I},    {"h", GateKind::H},      {"x", GateKind::X},
      {"y", GateKind::Y},     {"z", GateKind::Z},      {"s", GateKind::S},
      {"sdg", GateKind::Sdg}, {"t", GateKind::T},      {"tdg", GateKind::Tdg},
      {"sx", GateKind::SqrtX}, {"sxdg", GateKind::SqrtXdg},
      {"rx", GateKind::Rx},   {"ry", GateKind::Ry},    {"rz", GateKind::Rz},
      {"cx", GateKind::Cnot}, {"cz", GateKind::Cz},    {"swap", GateKind::Swap},
  };
  return table;
}

}  // namespace

Circuit circuit_from_qasm(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  std::optional<Circuit> circuit;
  std::string reg = "q";

  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t comment = line.find("//");
    if (comment != std::string::npos) line.erase(comment);
    line = strip(line);
    if (line.empty()) continue;
    if (line.back() != ';') fail(lineno, "missing ';'");
    line.pop_back();
    line = strip(line);

    if (line.rfind("OPENQASM", 0) == 0 || line.rfind("include", 0) == 0 ||
        line.rfind("barrier", 0) == 0)
      continue;
    if (line.rfind("qreg", 0) == 0) {
      const std::size_t lb = line.find('['), rb = line.find(']');
      if (lb == std::string::npos || rb == std::string::npos || rb < lb)
        fail(lineno, "malformed qreg");
      reg = strip(line.substr(4, lb - 4));
      const std::string size_text = line.substr(lb + 1, rb - lb - 1);
      std::size_t n = 0, used = 0;
      try {
        n = std::stoul(size_text, &used);
      } catch (const std::exception&) {
        fail(lineno, "bad register size '" + size_text + "'");
      }
      if (used != size_text.size())
        fail(lineno, "bad register size '" + size_text + "'");
      circuit.emplace(n);
      continue;
    }
    if (!circuit) fail(lineno, "gate before qreg declaration");

    // "<name>[(angle)] q[a][,q[b]]"
    std::string head = line;
    std::string angle_text;
    const std::size_t paren = line.find('(');
    std::size_t args_begin;
    if (paren != std::string::npos) {
      const std::size_t close = line.find(')', paren);
      if (close == std::string::npos) fail(lineno, "unbalanced '('");
      head = strip(line.substr(0, paren));
      angle_text = line.substr(paren + 1, close - paren - 1);
      args_begin = close + 1;
    } else {
      const std::size_t sp = line.find_first_of(" \t");
      if (sp == std::string::npos) fail(lineno, "gate without operands");
      head = strip(line.substr(0, sp));
      args_begin = sp + 1;
    }
    const auto it = gate_table().find(head);
    if (it == gate_table().end()) fail(lineno, "unknown gate '" + head + "'");
    const GateKind kind = it->second;

    std::vector<std::size_t> qubits;
    std::string args = line.substr(args_begin);
    std::istringstream as(args);
    std::string tok;
    while (std::getline(as, tok, ','))
      qubits.push_back(parse_qubit(tok, lineno, reg, circuit->num_qubits()));

    const bool two_q = gate_is_two_qubit(kind);
    if (qubits.size() != (two_q ? 2u : 1u))
      fail(lineno, "wrong operand count for '" + head + "'");
    if (two_q && qubits[0] == qubits[1])
      fail(lineno, "duplicate operands for '" + head + "'");
    if (gate_has_param(kind)) {
      if (angle_text.empty()) fail(lineno, "missing angle for '" + head + "'");
      circuit->append(Gate(kind, qubits[0], parse_angle(angle_text, lineno)));
    } else if (two_q) {
      circuit->append(Gate(kind, qubits[0], qubits[1]));
    } else {
      if (!angle_text.empty()) fail(lineno, "unexpected angle for '" + head + "'");
      circuit->append(Gate(kind, qubits[0]));
    }
  }
  if (!circuit) throw Error(Stage::Parse, "qasm: no qreg declaration found");
  return *circuit;
}

}  // namespace phoenix
