#include "circuit/qasm.hpp"

#include <cctype>
#include <cmath>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "common/error.hpp"

namespace phoenix {

namespace {

[[noreturn]] void fail(std::size_t lineno, const std::string& msg) {
  throw Error(Stage::Parse, "qasm: " + msg, lineno);
}

/// Column-carrying variant for sub-statement diagnostics. `column` is
/// 1-based within the statement after comment stripping/trimming.
[[noreturn]] void fail_at(std::size_t lineno, std::size_t column,
                          const std::string& msg) {
  throw Error(Stage::Parse, "qasm: " + msg, lineno, Error::kNoGroup, column);
}

std::string strip(const std::string& s) {
  std::size_t a = 0, b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a]))) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1]))) --b;
  return s.substr(a, b - a);
}

/// Parse "q[k]" and return k, validated against the declared register size.
std::size_t parse_qubit(const std::string& tok, std::size_t lineno,
                        const std::string& reg, std::size_t reg_size) {
  const std::string t = strip(tok);
  if (t.size() < reg.size() + 3 || t.compare(0, reg.size(), reg) != 0 ||
      t[reg.size()] != '[' || t.back() != ']')
    fail(lineno, "bad qubit reference '" + t + "'");
  const std::string index = t.substr(reg.size() + 1, t.size() - reg.size() - 2);
  std::size_t k = 0, used = 0;
  try {
    k = std::stoul(index, &used);
  } catch (const std::exception&) {
    fail(lineno, "bad qubit index '" + index + "'");
  }
  if (used != index.size()) fail(lineno, "bad qubit index '" + index + "'");
  if (k >= reg_size)
    fail(lineno, "qubit index " + std::to_string(k) +
                     " outside register of size " + std::to_string(reg_size));
  return k;
}

/// Simple constant-expression evaluator for angles: literals (including
/// scientific notation), pi, leading unary signs, * and /. Covers everything
/// to_qasm emits and common qelib usage.
///
/// Every malformed operand — dangling or doubled operators (`pi*`, `3**4`),
/// juxtaposed operands (`2 3`, and hence the unsupported `2-3`), literals
/// std::stod rejects or overflows on — becomes a structured phoenix::Error
/// with line and column, never a raw std::invalid_argument/std::out_of_range
/// escaping from the standard library. `col0` is the 0-based offset of
/// `expr` within its statement; reported columns are 1-based.
double parse_angle(const std::string& expr, std::size_t lineno,
                   std::size_t col0) {
  auto bad = [&](std::size_t pos, const std::string& why) {
    fail_at(lineno, col0 + pos + 1,
            why + " in angle expression '" + strip(expr) + "'");
  };
  double value = 0.0;
  double sign = 1.0;
  bool have_value = false;
  bool op_pending = false;
  char pending_op = '*';
  std::size_t last_op_pos = 0;
  auto apply = [&](std::size_t pos, double operand) {
    if (have_value && !op_pending) bad(pos, "missing operator");
    if (!have_value) {
      value = operand;
      have_value = true;
    } else if (pending_op == '*') {
      value *= operand;
    } else {
      value /= operand;
    }
    op_pending = false;
  };
  std::size_t pos = 0;
  // Leading unary signs ("-pi", "+-2"); signs after an operator are part of
  // the literal and handled by std::stod below.
  while (pos < expr.size() &&
         (std::isspace(static_cast<unsigned char>(expr[pos])) ||
          expr[pos] == '-' || expr[pos] == '+')) {
    if (expr[pos] == '-') sign = -sign;
    ++pos;
  }
  while (pos < expr.size()) {
    const char ch = expr[pos];
    if (std::isspace(static_cast<unsigned char>(ch))) {
      ++pos;
      continue;
    }
    if (ch == '*' || ch == '/') {
      if (!have_value || op_pending) bad(pos, "misplaced operator");
      pending_op = ch;
      op_pending = true;
      last_op_pos = pos;
      ++pos;
      continue;
    }
    if (expr.compare(pos, 2, "pi") == 0) {
      apply(pos, M_PI);
      pos += 2;
      continue;
    }
    std::size_t used = 0;
    double num = 0.0;
    try {
      num = std::stod(expr.substr(pos), &used);
    } catch (const std::out_of_range&) {
      bad(pos, "angle literal out of range");
    } catch (const std::invalid_argument&) {
      bad(pos, "bad operand");
    }
    apply(pos, num);
    pos += used;
  }
  if (!have_value) bad(0, "missing operand");
  if (op_pending) bad(last_op_pos, "dangling operator");
  const double result = sign * value;
  if (!std::isfinite(result)) bad(0, "non-finite angle");
  return result;
}

const std::unordered_map<std::string, GateKind>& gate_table() {
  static const std::unordered_map<std::string, GateKind> table = {
      {"id", GateKind::I},    {"h", GateKind::H},      {"x", GateKind::X},
      {"y", GateKind::Y},     {"z", GateKind::Z},      {"s", GateKind::S},
      {"sdg", GateKind::Sdg}, {"t", GateKind::T},      {"tdg", GateKind::Tdg},
      {"sx", GateKind::SqrtX}, {"sxdg", GateKind::SqrtXdg},
      {"rx", GateKind::Rx},   {"ry", GateKind::Ry},    {"rz", GateKind::Rz},
      {"cx", GateKind::Cnot}, {"cz", GateKind::Cz},    {"swap", GateKind::Swap},
  };
  return table;
}

}  // namespace

Circuit circuit_from_qasm(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  std::optional<Circuit> circuit;
  std::string reg = "q";

  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t comment = line.find("//");
    if (comment != std::string::npos) line.erase(comment);
    line = strip(line);
    if (line.empty()) continue;
    if (line.back() != ';') fail(lineno, "missing ';'");
    line.pop_back();
    line = strip(line);

    if (line.rfind("OPENQASM", 0) == 0 || line.rfind("include", 0) == 0 ||
        line.rfind("barrier", 0) == 0)
      continue;
    if (line.rfind("qreg", 0) == 0) {
      const std::size_t lb = line.find('['), rb = line.find(']');
      if (lb == std::string::npos || rb == std::string::npos || rb < lb)
        fail(lineno, "malformed qreg");
      reg = strip(line.substr(4, lb - 4));
      const std::string size_text = line.substr(lb + 1, rb - lb - 1);
      std::size_t n = 0, used = 0;
      try {
        n = std::stoul(size_text, &used);
      } catch (const std::exception&) {
        fail(lineno, "bad register size '" + size_text + "'");
      }
      if (used != size_text.size())
        fail(lineno, "bad register size '" + size_text + "'");
      circuit.emplace(n);
      continue;
    }
    if (!circuit) fail(lineno, "gate before qreg declaration");

    // "<name>[(angle)] q[a][,q[b]]"
    std::string head = line;
    std::string angle_text;
    const std::size_t paren = line.find('(');
    std::size_t args_begin;
    if (paren != std::string::npos) {
      const std::size_t close = line.find(')', paren);
      if (close == std::string::npos) fail(lineno, "unbalanced '('");
      head = strip(line.substr(0, paren));
      angle_text = line.substr(paren + 1, close - paren - 1);
      args_begin = close + 1;
    } else {
      const std::size_t sp = line.find_first_of(" \t");
      if (sp == std::string::npos) fail(lineno, "gate without operands");
      head = strip(line.substr(0, sp));
      args_begin = sp + 1;
    }
    const auto it = gate_table().find(head);
    if (it == gate_table().end()) fail(lineno, "unknown gate '" + head + "'");
    const GateKind kind = it->second;

    std::vector<std::size_t> qubits;
    std::string args = line.substr(args_begin);
    std::istringstream as(args);
    std::string tok;
    while (std::getline(as, tok, ','))
      qubits.push_back(parse_qubit(tok, lineno, reg, circuit->num_qubits()));

    const bool two_q = gate_is_two_qubit(kind);
    if (qubits.size() != (two_q ? 2u : 1u))
      fail(lineno, "wrong operand count for '" + head + "'");
    if (two_q && qubits[0] == qubits[1])
      fail(lineno, "duplicate operands for '" + head + "'");
    if (gate_has_param(kind)) {
      if (angle_text.empty()) fail(lineno, "missing angle for '" + head + "'");
      circuit->append(
          Gate(kind, qubits[0], parse_angle(angle_text, lineno, paren + 1)));
    } else if (two_q) {
      circuit->append(Gate(kind, qubits[0], qubits[1]));
    } else {
      if (!angle_text.empty()) fail(lineno, "unexpected angle for '" + head + "'");
      circuit->append(Gate(kind, qubits[0]));
    }
  }
  if (!circuit) throw Error(Stage::Parse, "qasm: no qreg declaration found");
  return *circuit;
}

}  // namespace phoenix
