#include "circuit/gate.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace phoenix {

bool gate_is_two_qubit(GateKind k) {
  switch (k) {
    case GateKind::Cnot:
    case GateKind::Cz:
    case GateKind::Swap:
    case GateKind::Su4:
      return true;
    default:
      return false;
  }
}

bool gate_has_param(GateKind k) {
  return k == GateKind::Rx || k == GateKind::Ry || k == GateKind::Rz;
}

const char* gate_name(GateKind k) {
  switch (k) {
    case GateKind::I: return "i";
    case GateKind::H: return "h";
    case GateKind::X: return "x";
    case GateKind::Y: return "y";
    case GateKind::Z: return "z";
    case GateKind::S: return "s";
    case GateKind::Sdg: return "sdg";
    case GateKind::T: return "t";
    case GateKind::Tdg: return "tdg";
    case GateKind::SqrtX: return "sx";
    case GateKind::SqrtXdg: return "sxdg";
    case GateKind::Rx: return "rx";
    case GateKind::Ry: return "ry";
    case GateKind::Rz: return "rz";
    case GateKind::Cnot: return "cx";
    case GateKind::Cz: return "cz";
    case GateKind::Swap: return "swap";
    case GateKind::Su4: return "su4";
  }
  throw std::logic_error("gate_name: invalid kind");
}

Gate Gate::su4(std::size_t a, std::size_t b, std::vector<Gate> parts) {
  Gate g(GateKind::Su4, a, b);
  g.sub = std::move(parts);
  return g;
}

std::vector<std::size_t> Gate::qubits() const {
  if (is_two_qubit()) return {q0, q1};
  return {q0};
}

Gate Gate::inverse() const {
  Gate g = *this;
  switch (kind) {
    case GateKind::S: g.kind = GateKind::Sdg; break;
    case GateKind::Sdg: g.kind = GateKind::S; break;
    case GateKind::T: g.kind = GateKind::Tdg; break;
    case GateKind::Tdg: g.kind = GateKind::T; break;
    case GateKind::SqrtX: g.kind = GateKind::SqrtXdg; break;
    case GateKind::SqrtXdg: g.kind = GateKind::SqrtX; break;
    case GateKind::Rx:
    case GateKind::Ry:
    case GateKind::Rz:
      g.param = -param;
      break;
    case GateKind::Su4: {
      g.sub.clear();
      g.sub.reserve(sub.size());
      for (auto it = sub.rbegin(); it != sub.rend(); ++it)
        g.sub.push_back(it->inverse());
      break;
    }
    default:
      break;  // Hermitian gates are their own inverse
  }
  return g;
}

bool Gate::same_as(const Gate& o, double tol) const {
  if (kind != o.kind || q0 != o.q0) return false;
  if (is_two_qubit() && q1 != o.q1) return false;
  if (gate_has_param(kind) && std::abs(param - o.param) > tol) return false;
  if (kind == GateKind::Su4) {
    if (sub.size() != o.sub.size()) return false;
    for (std::size_t i = 0; i < sub.size(); ++i)
      if (!sub[i].same_as(o.sub[i], tol)) return false;
  }
  return true;
}

bool Gate::is_inverse_of(const Gate& o, double tol) const {
  // CNOT/CZ/SWAP and the Hermitian 1Q gates cancel with an identical copy;
  // CZ and SWAP are also symmetric in their qubits.
  if (kind != o.kind) {
    // S/Sdg, T/Tdg, SqrtX/SqrtXdg pairs
    return same_as(o.inverse(), tol);
  }
  if ((kind == GateKind::Cz || kind == GateKind::Swap) &&
      ((q0 == o.q0 && q1 == o.q1) || (q0 == o.q1 && q1 == o.q0)))
    return true;
  return same_as(o.inverse(), tol);
}

std::string Gate::to_string() const {
  std::string s = gate_name(kind);
  if (gate_has_param(kind)) {
    s += '(';
    s += std::to_string(param);
    s += ')';
  }
  s += ' ';
  s += std::to_string(q0);
  if (is_two_qubit()) {
    s += ',';
    s += std::to_string(q1);
  }
  return s;
}

}  // namespace phoenix
