#pragma once

#include <string>

#include "circuit/circuit.hpp"

namespace phoenix {

/// Parse the OpenQASM-2 subset emitted by Circuit::to_qasm(): a single
/// `qreg`, the qelib1 gate names this library uses (h, x, y, z, s, sdg, t,
/// tdg, sx, sxdg, rx, ry, rz, cx, cz, swap) and `barrier`/comment lines
/// (ignored). Round-trips with to_qasm(). Throws std::runtime_error with a
/// line number on malformed input.
Circuit circuit_from_qasm(const std::string& text);

}  // namespace phoenix
