#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "circuit/circuit.hpp"
#include "pauli/bsf.hpp"
#include "pauli/clifford2q.hpp"
#include "pauli/pauli.hpp"

namespace phoenix {

/// CNOT-tree shape for multi-qubit Pauli rotation synthesis (the "variable
/// CNOT-tree unrolling schemes" of Fig. 1a).
enum class CnotTree {
  Chain,     ///< sequential parity chain into the root
  Star,      ///< every support qubit CNOTs directly into the root
  Balanced,  ///< logarithmic-depth pairwise reduction into the root
};

/// Append exp(-i coeff · P) to `c` as basis changes + CNOT tree + Rz + mirror.
/// `root` selects the qubit carrying the Rz (defaults to the last support
/// qubit); it must lie in the support of the string.
void append_pauli_rotation(Circuit& c, const PauliTerm& term,
                           CnotTree tree = CnotTree::Chain,
                           std::optional<std::size_t> root = std::nullopt);

/// Append exp(-i coeff · P) with an explicit parity-chain order: `chain`
/// must be a permutation of the string's support; the last element carries
/// the Rz. Consecutive rotations whose chains share a prefix expose CNOT
/// cancellations at the seam (the mechanism Paulihedral's block synthesis
/// exploits).
void append_pauli_rotation_chain(Circuit& c, const PauliTerm& term,
                                 const std::vector<std::size_t>& chain);

/// Append a universal controlled gate as H/S/CNOT primitives (1 CNOT).
void append_clifford2q(Circuit& c, const Clifford2Q& cl);

/// Standalone rotation circuit on an n-qubit register.
Circuit pauli_rotation_circuit(const PauliTerm& term, std::size_t num_qubits,
                               CnotTree tree = CnotTree::Chain);

/// Conventional whole-program synthesis: every term in the given order,
/// chain trees. This is the paper's "original circuit" baseline from which
/// all optimization rates are measured.
Circuit synthesize_naive(const std::vector<PauliTerm>& terms,
                         std::size_t num_qubits);

}  // namespace phoenix
