#include "circuit/synthesis.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/angles.hpp"

namespace phoenix {

namespace {

/// Pre-rotation basis change taking the axis on qubit q to Z. The returned
/// gates are in circuit order; the post change is their reversed inverse.
std::vector<Gate> basis_change_pre(Pauli p, std::size_t q) {
  switch (p) {
    case Pauli::Z: return {};
    case Pauli::X: return {Gate::h(q)};
    // exp(-iθY) = (S·H) exp(-iθZ) (S·H)†; pre = circuit of (S·H)† = Sdg, H.
    case Pauli::Y: return {Gate::sdg(q), Gate::h(q)};
    case Pauli::I: break;
  }
  throw std::invalid_argument("basis_change_pre: identity has no axis");
}

/// CNOT tree accumulating the parity of `qubits` onto `root`, circuit order.
std::vector<Gate> parity_tree(const std::vector<std::size_t>& qubits,
                              std::size_t root, CnotTree tree) {
  std::vector<Gate> out;
  if (qubits.size() < 2) return out;
  std::vector<std::size_t> order;
  for (std::size_t q : qubits)
    if (q != root) order.push_back(q);
  switch (tree) {
    case CnotTree::Chain: {
      // q1 -> q2 -> ... -> root
      std::vector<std::size_t> chain = order;
      chain.push_back(root);
      for (std::size_t i = 0; i + 1 < chain.size(); ++i)
        out.push_back(Gate::cnot(chain[i], chain[i + 1]));
      break;
    }
    case CnotTree::Star: {
      for (std::size_t q : order) out.push_back(Gate::cnot(q, root));
      break;
    }
    case CnotTree::Balanced: {
      std::vector<std::size_t> live = order;
      live.push_back(root);
      // Pairwise reduce; keep the latter of each pair so root survives last.
      while (live.size() > 1) {
        std::vector<std::size_t> next;
        for (std::size_t i = 0; i + 1 < live.size(); i += 2) {
          out.push_back(Gate::cnot(live[i], live[i + 1]));
          next.push_back(live[i + 1]);
        }
        if (live.size() % 2 == 1) next.push_back(live.back());
        live = std::move(next);
      }
      break;
    }
  }
  return out;
}

/// Emit exp(-i·(angle/2)·Z) on `q`. Clifford angles (multiples of π/2 per
/// `clifford_quarter_turns`) lower to the discrete S / Z / S† gate so
/// downstream Clifford consumers — the tableau, the O4 region extractor —
/// see them as absorbable Cliffords instead of opaque rotations; a full
/// turn is a global phase and emits nothing. All other angles stay Rz.
void append_z_rotation(Circuit& c, std::size_t q, double angle) {
  const double a = wrap_angle(angle);
  if (const auto k = clifford_quarter_turns(a)) {
    switch (*k) {
      case 0: return;
      case 1: c.append(Gate::s(q)); return;
      case 2: c.append(Gate::z(q)); return;
      case 3: c.append(Gate::sdg(q)); return;
    }
  }
  c.append(Gate::rz(q, a));
}

}  // namespace

void append_pauli_rotation(Circuit& c, const PauliTerm& term, CnotTree tree,
                           std::optional<std::size_t> root_opt) {
  const PauliString& p = term.string;
  const auto support = p.support();
  if (support.empty()) return;  // exp(-iθI) is a global phase
  if (std::abs(term.coeff) < 1e-15) return;

  const std::size_t root = root_opt.value_or(support.back());
  if (std::find(support.begin(), support.end(), root) == support.end())
    throw std::invalid_argument("append_pauli_rotation: root not in support");

  std::vector<Gate> pre;
  for (std::size_t q : support)
    for (const Gate& g : basis_change_pre(p.op(q), q)) pre.push_back(g);
  const std::vector<Gate> ladder = parity_tree(support, root, tree);

  for (const Gate& g : pre) c.append(g);
  for (const Gate& g : ladder) c.append(g);
  // 2θ can leave the principal range for large coefficients; Rz is
  // 2π-periodic up to global phase, so emit the canonical representative
  // (as a discrete Clifford gate when the angle is a multiple of π/2).
  append_z_rotation(c, root, 2.0 * term.coeff);
  for (auto it = ladder.rbegin(); it != ladder.rend(); ++it) c.append(*it);
  for (auto it = pre.rbegin(); it != pre.rend(); ++it) c.append(it->inverse());
}

void append_pauli_rotation_chain(Circuit& c, const PauliTerm& term,
                                 const std::vector<std::size_t>& chain) {
  const PauliString& p = term.string;
  const auto support = p.support();
  if (support.empty() || std::abs(term.coeff) < 1e-15) return;
  if (chain.size() != support.size())
    throw std::invalid_argument(
        "append_pauli_rotation_chain: chain must cover the support");
  for (std::size_t q : chain)
    if (std::find(support.begin(), support.end(), q) == support.end())
      throw std::invalid_argument(
          "append_pauli_rotation_chain: chain qubit outside support");

  std::vector<Gate> pre;
  for (std::size_t q : chain)
    for (const Gate& g : basis_change_pre(p.op(q), q)) pre.push_back(g);
  std::vector<Gate> ladder;
  for (std::size_t i = 0; i + 1 < chain.size(); ++i)
    ladder.push_back(Gate::cnot(chain[i], chain[i + 1]));

  for (const Gate& g : pre) c.append(g);
  for (const Gate& g : ladder) c.append(g);
  append_z_rotation(c, chain.back(), 2.0 * term.coeff);
  for (auto it = ladder.rbegin(); it != ladder.rend(); ++it) c.append(*it);
  for (auto it = pre.rbegin(); it != pre.rend(); ++it) c.append(it->inverse());
}

void append_clifford2q(Circuit& c, const Clifford2Q& cl) {
  for (const auto& op : cl.expansion()) {
    switch (op.step) {
      case CliffStep::H: c.append(Gate::h(op.a)); break;
      case CliffStep::S: c.append(Gate::s(op.a)); break;
      case CliffStep::Sdg: c.append(Gate::sdg(op.a)); break;
      case CliffStep::Cnot: c.append(Gate::cnot(op.a, op.b)); break;
    }
  }
}

Circuit pauli_rotation_circuit(const PauliTerm& term, std::size_t num_qubits,
                               CnotTree tree) {
  Circuit c(num_qubits);
  append_pauli_rotation(c, term, tree);
  return c;
}

Circuit synthesize_naive(const std::vector<PauliTerm>& terms,
                         std::size_t num_qubits) {
  Circuit c(num_qubits);
  for (const auto& t : terms) append_pauli_rotation(c, t);
  return c;
}

}  // namespace phoenix
