#include "circuit/circuit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/angles.hpp"

namespace phoenix {

void Circuit::append(Gate g) {
  if (g.q0 >= n_ || (g.is_two_qubit() && g.q1 >= n_))
    throw std::out_of_range("Circuit::append: qubit out of range");
  if (g.is_two_qubit() && g.q0 == g.q1)
    throw std::invalid_argument("Circuit::append: 2Q gate on a single qubit");
  gates_.push_back(std::move(g));
}

void Circuit::append(const Circuit& other) {
  if (other.n_ > n_)
    throw std::invalid_argument("Circuit::append: register too small");
  gates_.insert(gates_.end(), other.gates_.begin(), other.gates_.end());
}

void Circuit::prepend(const Circuit& other) {
  if (other.n_ > n_)
    throw std::invalid_argument("Circuit::prepend: register too small");
  gates_.insert(gates_.begin(), other.gates_.begin(), other.gates_.end());
}

Circuit Circuit::inverse() const {
  Circuit c(n_);
  c.gates_.reserve(gates_.size());
  for (auto it = gates_.rbegin(); it != gates_.rend(); ++it)
    c.gates_.push_back(it->inverse());
  return c;
}

std::size_t Circuit::count(GateKind k) const {
  return static_cast<std::size_t>(
      std::count_if(gates_.begin(), gates_.end(),
                    [k](const Gate& g) { return g.kind == k; }));
}

std::size_t Circuit::count_2q() const {
  return static_cast<std::size_t>(
      std::count_if(gates_.begin(), gates_.end(),
                    [](const Gate& g) { return g.is_two_qubit(); }));
}

std::size_t Circuit::depth() const {
  std::vector<std::size_t> level(n_, 0);
  std::size_t d = 0;
  for (const auto& g : gates_) {
    std::size_t l = level[g.q0];
    if (g.is_two_qubit()) l = std::max(l, level[g.q1]);
    ++l;
    level[g.q0] = l;
    if (g.is_two_qubit()) level[g.q1] = l;
    d = std::max(d, l);
  }
  return d;
}

std::size_t Circuit::depth_2q() const {
  std::vector<std::size_t> level(n_, 0);
  std::size_t d = 0;
  for (const auto& g : gates_) {
    if (!g.is_two_qubit()) continue;
    const std::size_t l = std::max(level[g.q0], level[g.q1]) + 1;
    level[g.q0] = level[g.q1] = l;
    d = std::max(d, l);
  }
  return d;
}

std::vector<std::size_t> Circuit::support() const {
  std::vector<bool> used(n_, false);
  for (const auto& g : gates_) {
    used[g.q0] = true;
    if (g.is_two_qubit()) used[g.q1] = true;
  }
  std::vector<std::size_t> out;
  for (std::size_t q = 0; q < n_; ++q)
    if (used[q]) out.push_back(q);
  return out;
}

std::vector<std::vector<std::size_t>> Circuit::two_qubit_layers() const {
  std::vector<std::size_t> level(n_, 0);
  std::vector<std::vector<std::size_t>> layers;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    if (!g.is_two_qubit()) continue;
    const std::size_t l = std::max(level[g.q0], level[g.q1]) + 1;
    level[g.q0] = level[g.q1] = l;
    if (l > layers.size()) layers.resize(l);
    layers[l - 1].push_back(i);
  }
  return layers;
}

Circuit Circuit::flattened() const {
  Circuit c(n_);
  for (const auto& g : gates_) {
    if (g.kind == GateKind::Su4) {
      for (const auto& s : g.sub) c.append(s);
    } else {
      c.append(g);
    }
  }
  return c;
}

void Circuit::drop_trivial_gates(double tol) {
  std::erase_if(gates_, [tol](const Gate& g) {
    if (g.kind == GateKind::I) return true;
    return gate_has_param(g.kind) && std::abs(g.param) < tol;
  });
}

std::string Circuit::to_string() const {
  std::string out;
  for (const auto& g : gates_) {
    out += g.to_string();
    out += '\n';
  }
  return out;
}

std::string Circuit::to_qasm() const {
  std::string out = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[" +
                    std::to_string(n_) + "];\n";
  const Circuit flat = flattened();
  for (const auto& g : flat.gates_) {
    out += gate_name(g.kind);
    if (gate_has_param(g.kind))
      out += "(" + std::to_string(wrap_angle(g.param)) + ")";
    out += " q[" + std::to_string(g.q0) + "]";
    if (g.is_two_qubit()) out += ",q[" + std::to_string(g.q1) + "]";
    out += ";\n";
  }
  return out;
}

}  // namespace phoenix
