#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "circuit/gate.hpp"

namespace phoenix {

/// Ordered list of gates on a fixed qubit register.
///
/// Metrics follow the paper's conventions: 1Q gates are free, so the costed
/// quantities are `count_2q()` and `depth_2q()` (layers counting only 2Q
/// gates, 1Q gates transparent).
class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(std::size_t num_qubits) : n_(num_qubits) {}

  std::size_t num_qubits() const { return n_; }
  std::size_t size() const { return gates_.size(); }
  bool empty() const { return gates_.empty(); }

  const std::vector<Gate>& gates() const { return gates_; }
  const Gate& gate(std::size_t i) const { return gates_[i]; }

  void append(Gate g);
  void append(const Circuit& other);
  void prepend(const Circuit& other);

  /// The adjoint circuit: reversed order, each gate inverted.
  Circuit inverse() const;

  /// Total gate count of a given kind.
  std::size_t count(GateKind k) const;
  /// Number of 2Q gates (Cnot + Cz + Swap + Su4).
  std::size_t count_2q() const;
  /// Number of 1Q gates.
  std::size_t count_1q() const { return gates_.size() - count_2q(); }

  /// Circuit depth counting every gate.
  std::size_t depth() const;
  /// Circuit depth counting only 2Q gates (paper's "Depth-2Q").
  std::size_t depth_2q() const;

  /// Canonical 2Q resource audit used by the O4 resynthesis acceptor and the
  /// quality benchmark. `two_qubit_count()` counts entangling gates as they
  /// appear in the gate list — Cnot/Cz each 1, and a Swap or Su4 block also 1
  /// (call `flattened()` first for CNOT-equivalent accounting of Su4;
  /// O4 itself never emits Swap, so its rewrites can't hide CNOTs there).
  /// `two_qubit_depth()` is the critical-path length counting only those
  /// gates. Tie-breaker contract of the acceptor: a rewrite is kept iff it
  /// strictly lowers two_qubit_count(), or matches it and strictly lowers
  /// two_qubit_depth().
  std::size_t two_qubit_count() const { return count_2q(); }
  std::size_t two_qubit_depth() const { return depth_2q(); }

  /// Qubits touched by at least one gate.
  std::vector<std::size_t> support() const;

  /// Greedy left-aligned layering of the 2Q gates only: each element is one
  /// layer of mutually disjoint 2Q gates (gate indices into gates()).
  /// Used by the Tetris-like ordering's endian vectors.
  std::vector<std::vector<std::size_t>> two_qubit_layers() const;

  /// Expand every Su4 gate back into its constituent primitive gates.
  Circuit flattened() const;

  /// Remove I gates and 1Q rotations with |angle| < tol.
  void drop_trivial_gates(double tol = 1e-12);

  /// Human-readable listing, one gate per line.
  std::string to_string() const;

  /// OpenQASM-2-like dump (for documentation and external inspection).
  std::string to_qasm() const;

 private:
  std::size_t n_ = 0;
  std::vector<Gate> gates_;
};

}  // namespace phoenix
