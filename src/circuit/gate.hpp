#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace phoenix {

/// Gate vocabulary. 1Q gates are considered free in all paper metrics;
/// 2Q gates (Cnot, Cz, Swap, Su4) are the costed resources.
///
/// `Su4` is a consolidated generic two-qubit block: the SU(4)-ISA unit of the
/// paper (every maximal run of 2Q+1Q gates on one qubit pair). It retains its
/// constituent gates so consolidated circuits stay simulable.
enum class GateKind : std::uint8_t {
  I, H, X, Y, Z, S, Sdg, T, Tdg, SqrtX, SqrtXdg,
  Rx, Ry, Rz,
  Cnot, Cz, Swap, Su4,
};

bool gate_is_two_qubit(GateKind k);
bool gate_has_param(GateKind k);
const char* gate_name(GateKind k);

struct Gate {
  GateKind kind = GateKind::I;
  std::size_t q0 = 0;
  std::size_t q1 = 0;        ///< only meaningful for 2Q kinds
  double param = 0.0;        ///< rotation angle for Rx/Ry/Rz
  std::vector<Gate> sub;     ///< constituents, Su4 only

  Gate() = default;
  Gate(GateKind k, std::size_t a) : kind(k), q0(a) {}
  Gate(GateKind k, std::size_t a, std::size_t b) : kind(k), q0(a), q1(b) {}
  Gate(GateKind k, std::size_t a, double p) : kind(k), q0(a), param(p) {}

  static Gate h(std::size_t q) { return {GateKind::H, q}; }
  static Gate x(std::size_t q) { return {GateKind::X, q}; }
  static Gate y(std::size_t q) { return {GateKind::Y, q}; }
  static Gate z(std::size_t q) { return {GateKind::Z, q}; }
  static Gate s(std::size_t q) { return {GateKind::S, q}; }
  static Gate sdg(std::size_t q) { return {GateKind::Sdg, q}; }
  static Gate t(std::size_t q) { return {GateKind::T, q}; }
  static Gate tdg(std::size_t q) { return {GateKind::Tdg, q}; }
  static Gate sqrt_x(std::size_t q) { return {GateKind::SqrtX, q}; }
  static Gate sqrt_xdg(std::size_t q) { return {GateKind::SqrtXdg, q}; }
  static Gate rx(std::size_t q, double a) { return {GateKind::Rx, q, a}; }
  static Gate ry(std::size_t q, double a) { return {GateKind::Ry, q, a}; }
  static Gate rz(std::size_t q, double a) { return {GateKind::Rz, q, a}; }
  static Gate cnot(std::size_t c, std::size_t t) { return {GateKind::Cnot, c, t}; }
  static Gate cz(std::size_t a, std::size_t b) { return {GateKind::Cz, a, b}; }
  static Gate swap(std::size_t a, std::size_t b) { return {GateKind::Swap, a, b}; }
  static Gate su4(std::size_t a, std::size_t b, std::vector<Gate> parts);

  bool is_two_qubit() const { return gate_is_two_qubit(kind); }

  /// Qubits the gate acts on (1 or 2 entries).
  std::vector<std::size_t> qubits() const;
  bool acts_on(std::size_t q) const {
    return q0 == q || (is_two_qubit() && q1 == q);
  }

  /// The inverse gate (Su4 inverts and reverses its constituents).
  Gate inverse() const;

  /// Structural equality with angle tolerance; used by cancellation passes.
  bool same_as(const Gate& o, double tol = 1e-12) const;

  /// True when `this` followed by `o` composes to identity.
  bool is_inverse_of(const Gate& o, double tol = 1e-12) const;

  std::string to_string() const;
};

}  // namespace phoenix
