#pragma once

#include <cstddef>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/cancel.hpp"
#include "common/graph.hpp"
#include "pauli/clifford2q.hpp"

namespace phoenix {

/// Static profile of one simplified-IR-group subcircuit, precomputed once and
/// reused across all pairwise assembling-cost queries of the Tetris ordering.
struct SubcircuitProfile {
  Circuit circ;                       ///< emitted subcircuit, full register
  std::vector<std::size_t> support;   ///< qubits with at least one gate
  std::size_t num_layers = 0;         ///< 2Q layer count
  std::vector<std::size_t> e_l, e_r;  ///< endian vectors (§IV-C.1), length n

  /// Boundary Clifford2Q conjugations, boundary-first order (the group
  /// structure exposes c_1 ... c_k on both ends; see SimplifiedGroup::emit).
  std::vector<Clifford2Q> head_cliffs, tail_cliffs;

  /// Interaction graphs of the head/tail slices (edges of 2Q gates read from
  /// the respective boundary until the whole support is covered), used by the
  /// routing-awareness factor of Eq. (7).
  Graph head_graph, tail_graph;

  /// All-pairs hop distances of head_graph/tail_graph, precomputed once per
  /// profile. The routing-aware assembling cost reads these for every
  /// (prev, next) candidate inside the lookahead window — re-running the
  /// all-pairs BFS there dominated ordering time on wide programs.
  std::vector<std::vector<std::size_t>> head_dist, tail_dist;
};

/// Build a profile from an emitted subcircuit. `boundary_cliffs` carries the
/// group's Clifford conjugation sequence c_1..c_k (may be empty for
/// irreducible groups such as QAOA ZZ terms).
SubcircuitProfile profile_subcircuit(Circuit circ,
                                     std::vector<Clifford2Q> boundary_cliffs);

struct OrderingOptions {
  std::size_t lookahead = 20;  ///< candidate window per assembly step
  bool routing_aware = false;  ///< enable the Eq. (7) similarity factor
  /// Cooperative cancellation, polled per assembling-cost evaluation.
  CancelToken cancel;
};

/// The §IV-C.1 depth overhead of abutting `prev` (via e_r) and `next`
/// (via e_l), summed over the union of their supports, with the Tetris
/// interlock discount when the endian guard fails.
double depth_cost(const SubcircuitProfile& prev, const SubcircuitProfile& next);

/// Number of Clifford2Q pairs that cancel across the prev|next interface
/// (common prefix of tail_cliffs/head_cliffs; symmetric generators also match
/// with swapped qubits).
std::size_t boundary_cancellations(const SubcircuitProfile& prev,
                                   const SubcircuitProfile& next);

/// Full assembling cost: depth overhead, minus cancellation credits
/// (−2 per cancelled pair, −1 per boundary layer emptied on either side),
/// scaled by the inverse interaction-graph similarity when routing-aware.
double assembling_cost(const SubcircuitProfile& prev,
                       const SubcircuitProfile& next,
                       const OrderingOptions& opt);

/// Tetris-like IR group ordering: pre-arrange by descending width, then
/// repeatedly pick, within the lookahead window, the subcircuit with the
/// minimum assembling cost relative to the last assembled one. Returns the
/// chosen permutation of indices into `profiles`.
std::vector<std::size_t> tetris_order(
    const std::vector<SubcircuitProfile>& profiles, const OrderingOptions& opt);

}  // namespace phoenix
