#include "phoenix/compiler.hpp"

#include <stdexcept>

#include "circuit/synthesis.hpp"
#include "hamlib/grouping.hpp"
#include "phoenix/qaoa_router.hpp"
#include "transpile/peephole.hpp"
#include "transpile/rebase.hpp"

namespace phoenix {

CompileResult phoenix_compile(const std::vector<PauliTerm>& terms,
                              std::size_t num_qubits,
                              const PhoenixOptions& opt) {
  if (opt.hardware_aware && opt.coupling == nullptr)
    throw std::invalid_argument(
        "phoenix_compile: hardware-aware mode needs a coupling graph");

  CompileResult res;

  // Commuting 2-local programs (QAOA cost layers): the Trotter arrangement
  // is completely free, so hardware-aware compilation uses the
  // commutativity-aware router (§IV-C.3 specialized to 2-local IR groups)
  // instead of the order-preserving SABRE path.
  if (opt.hardware_aware && terms.size() <= 4096 &&
      is_commuting_two_local(terms)) {
    QaoaRouteResult routed =
        route_commuting_two_local(terms, num_qubits, *opt.coupling);
    res.num_groups = terms.size();
    res.num_swaps = routed.num_swaps;
    Circuit logical(num_qubits);
    for (const auto& t : terms) append_pauli_rotation(logical, t);
    res.logical = std::move(logical);
    res.circuit = opt.isa == TwoQubitIsa::Su4 ? rebase_su4(routed.circuit)
                                              : std::move(routed.circuit);
    return res;
  }

  // 1. IR grouping by support set (§IV-A).
  const auto groups = group_by_support(terms);
  res.num_groups = groups.size();

  // 2. Group-wise BSF simplification (Algorithm 1) and subcircuit emission.
  //    Global-frame 1Q locals float to a prelude so group boundaries stay
  //    clean for Clifford2Q cancellation.
  Circuit prelude(num_qubits);
  std::vector<SubcircuitProfile> profiles;
  profiles.reserve(groups.size());
  for (const auto& g : groups) {
    const SimplifiedGroup sg = simplify_bsf(g.terms, opt.simplify);
    res.bsf_epochs += sg.search_epochs;
    for (const auto& r : sg.global_locals()) {
      append_pauli_rotation(
          prelude,
          PauliTerm(PauliString(r.x, r.z), r.sign ? -r.coeff : r.coeff));
    }
    Circuit sub = sg.emit(num_qubits, /*include_global_locals=*/false);
    if (sub.empty()) continue;
    profiles.push_back(profile_subcircuit(std::move(sub), sg.cliffords));
  }

  // 3. Tetris-like ordering (§IV-C) and assembly.
  OrderingOptions order_opt;
  order_opt.lookahead = opt.lookahead;
  order_opt.routing_aware = opt.hardware_aware;
  const auto order = tetris_order(profiles, order_opt);

  Circuit assembled(num_qubits);
  assembled.append(prelude);
  for (std::size_t idx : order) assembled.append(profiles[idx].circ);

  // 4. Logical-level gate cancellation.
  switch (opt.peephole) {
    case PeepholeLevel::None:
      break;
    case PeepholeLevel::Own:
      optimize_o2(assembled);
      break;
    case PeepholeLevel::O3:
      optimize_o3(assembled);
      break;
  }
  res.logical = assembled;

  // 5. ISA emission / hardware mapping.
  if (!opt.hardware_aware) {
    res.circuit = opt.isa == TwoQubitIsa::Su4 ? rebase_su4(assembled)
                                              : std::move(assembled);
    return res;
  }

  SabreResult routed = sabre_route(assembled, *opt.coupling, opt.sabre);
  res.num_swaps = routed.num_swaps;
  Circuit physical = decompose_swaps(routed.routed);
  // Post-routing cancellation: SWAP CNOTs frequently annihilate against the
  // rotation-ladder CNOTs they abut (the paper follows every hardware-aware
  // flow with a full Qiskit O3 pass).
  if (opt.peephole == PeepholeLevel::None)
    optimize_o2(physical);
  else
    optimize_o3(physical);
  res.circuit = opt.isa == TwoQubitIsa::Su4 ? rebase_su4(physical)
                                            : std::move(physical);
  return res;
}

}  // namespace phoenix
