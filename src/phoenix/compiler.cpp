#include "phoenix/compiler.hpp"

#include <chrono>
#include <exception>
#include <optional>
#include <utility>

#include "circuit/synthesis.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "hamlib/grouping.hpp"
#include "phoenix/qaoa_router.hpp"
#include "transpile/peephole.hpp"
#include "transpile/rebase.hpp"

namespace phoenix {

namespace {

using Clock = std::chrono::steady_clock;

double millis_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

CompileResult phoenix_compile(const std::vector<PauliTerm>& terms,
                              std::size_t num_qubits,
                              const PhoenixOptions& opt) {
  if (opt.hardware_aware) {
    if (opt.coupling == nullptr)
      throw Error(Stage::Routing,
                  "phoenix_compile: hardware-aware mode needs a coupling graph");
    if (opt.coupling->num_vertices() < num_qubits)
      throw Error(Stage::Routing,
                  "phoenix_compile: device has " +
                      std::to_string(opt.coupling->num_vertices()) +
                      " qubits, program needs " + std::to_string(num_qubits));
  }

  // Fail fast when the caller's deadline already passed (or the request was
  // cancelled before we started) instead of paying for the first stage.
  opt.cancel.check(Stage::Grouping);

  CompileResult res;
  const bool diagnose = opt.validation.level != ValidationLevel::Off;
  const bool paranoid = opt.validation.level == ValidationLevel::Paranoid;

  // Observability: one Trace per compile, installed on this thread for the
  // duration (workers install it per task). Keeping it optional means the
  // default path never touches a clock or a lock.
  std::optional<Trace> trace;
#ifndef PHOENIX_DISABLE_TRACE
  if (opt.trace) trace.emplace();
#endif
  Trace* const tr = trace ? &*trace : nullptr;
  Trace::Scope trace_scope(tr);
  auto finish_stats = [&]() {
    if (tr != nullptr) res.stats = tr->snapshot();
  };
  auto record = [&](const char* name, Clock::time_point t0, bool checked,
                    std::string note = {}) {
    if (diagnose)
      res.diagnostics.push_back(
          StageRecord{name, millis_since(t0), checked, std::move(note)});
  };

  // Final-circuit validation, shared by every exit path. Cheap throws only on
  // a definite mismatch; Paranoid also refuses to return Inconclusive.
  auto validate_final = [&]() {
    if (!diagnose) return;
    TraceSpan span("validate");
    const auto t0 = Clock::now();
    const LayoutSpec layout{res.initial_layout, res.final_layout};
    res.validation = validate_translation(res.circuit, terms, num_qubits,
                                          layout, opt.validation);
    std::string verdict = validation_status_name(res.validation.status);
    if (!res.validation.message.empty())
      verdict += ": " + res.validation.message;
    record("validate", t0, true, verdict);
    if (res.validation.status == ValidationStatus::Fail ||
        (paranoid && !res.validation.passed()))
      throw Error(Stage::Validation, "translation validation " + verdict);
  };

  // O4 Clifford-region resynthesis (src/resynth/), run on the logical
  // circuit after the peephole and, in Routed mode, again on the physical
  // circuit with coupling-constrained CNOTs. The per-region acceptor only
  // ever splices in strict 2Q improvements, and accepted rewrites re-derive
  // the region tableau bit-identically, so the pass can't regress quality
  // or correctness; the follow-up peephole cleans region seams (it never
  // adds 2Q gates — cancellation and 1Q fusion only).
  auto run_resynth = [&](Circuit& circ, const Graph* coupling,
                         const char* label) {
    const auto t0 = Clock::now();
    ResynthOptions ropt;
    ropt.coupling = coupling;
    ropt.cancel = opt.cancel;
    const ResynthStats rst = resynthesize_clifford_regions(circ, ropt);
    if (rst.accepted > 0) {
      if (opt.peephole == PeepholeLevel::O3)
        optimize_o3(circ, opt.peephole_engine, opt.cancel);
      else
        optimize_o2(circ, opt.peephole_engine, opt.cancel);
    }
    record(label, t0, false,
           std::to_string(rst.regions) + " regions, " +
               std::to_string(rst.accepted) + " accepted, 2q " +
               std::to_string(rst.two_q_before) + "->" +
               std::to_string(circ.two_qubit_count()));
  };

  // Commuting 2-local programs (QAOA cost layers): the Trotter arrangement
  // is completely free, so hardware-aware compilation uses the
  // commutativity-aware router (§IV-C.3 specialized to 2-local IR groups)
  // instead of the order-preserving SABRE path.
  if (opt.hardware_aware && terms.size() <= 4096 &&
      is_commuting_two_local(terms)) {
    const auto t0 = Clock::now();
    Circuit routed_circuit(num_qubits);
    {
      TraceSpan span("route(qaoa)");
      opt.cancel.check(Stage::Routing);
      QaoaRouteResult routed =
          route_commuting_two_local(terms, num_qubits, *opt.coupling);
      res.num_groups = terms.size();
      res.num_swaps = routed.num_swaps;
      res.initial_layout = std::move(routed.initial_layout);
      res.final_layout = std::move(routed.final_layout);
      Circuit logical(num_qubits);
      for (const auto& t : terms) append_pauli_rotation(logical, t);
      res.logical = std::move(logical);
      routed_circuit = std::move(routed.circuit);
      trace_count("qaoa.swaps", res.num_swaps);
    }
    record("route(qaoa)", t0, paranoid,
           std::to_string(res.num_swaps) + " swaps");
    // O4 runs on the routed CNOT-level circuit, before any Su4 rebase
    // (Su4 blocks are non-Clifford barriers the extractor can't absorb).
    if (opt.resynth == ResynthLevel::Routed)
      run_resynth(routed_circuit, opt.coupling, "resynth(routed)");
    res.circuit = opt.isa == TwoQubitIsa::Su4 ? rebase_su4(routed_circuit)
                                              : std::move(routed_circuit);
    if (paranoid) check_circuit_wellformed(res.circuit, opt.coupling);
    validate_final();
    finish_stats();
    return res;
  }

  // 1. IR grouping by support set (§IV-A).
  auto t_stage = Clock::now();
  std::optional<TraceSpan> stage_span;
  stage_span.emplace("group");
  const auto groups = group_by_support(terms);
  res.num_groups = groups.size();
  stage_span.reset();
  record("group", t_stage, false, std::to_string(groups.size()) + " groups");

  // 2. Group-wise BSF simplification (Algorithm 1) and subcircuit emission,
  //    parallelized over the independent groups. Each worker fills one
  //    outcome slot; the merge below runs serially in group order, so the
  //    result (prelude rotations, profile order, diagnostics) is identical
  //    for any thread count. Global-frame 1Q locals float to a prelude so
  //    group boundaries stay clean for Clifford2Q cancellation.
  t_stage = Clock::now();
  stage_span.emplace("simplify");
  // Stage options inherit the pipeline token unless the caller armed a
  // stage-specific one (the tighter of the two would need a derived source;
  // per-stage tokens are an expert escape hatch, so last-one-wins is fine).
  SimplifyOptions simplify_opt = opt.simplify;
  if (!simplify_opt.cancel.valid()) simplify_opt.cancel = opt.cancel;
  struct GroupOutcome {
    SimplifiedGroup sg;
    SubcircuitProfile profile;
    bool has_profile = false;
    std::exception_ptr error;
  };
  std::vector<GroupOutcome> outcomes(groups.size());
  auto run_group = [&](std::size_t gi) {
    // Workers are pool threads: install the owning compile's trace for this
    // task so per-group probes land on the right trace with per-thread
    // track attribution (and remain no-ops when tracing is off).
    Trace::Scope worker_scope(tr);
    TraceSpan group_span("simplify.group");
    const double t_group = tr != nullptr ? tr->millis_since_epoch() : 0.0;
    GroupOutcome& out = outcomes[gi];
    try {
      out.sg = simplify_bsf(groups[gi].terms, simplify_opt);
      if (paranoid) check_simplified_group(groups[gi].terms, out.sg);
      Circuit sub = out.sg.emit(num_qubits, /*include_global_locals=*/false);
      if (!sub.empty()) {
        out.profile = profile_subcircuit(std::move(sub), out.sg.cliffords);
        out.has_profile = true;
      }
    } catch (...) {
      out.error = std::current_exception();
    }
    if (tr != nullptr)
      tr->observe_ms("simplify.group_ms", tr->millis_since_epoch() - t_group);
  };
  if (opt.num_threads == 0) {
    ThreadPool::shared().parallel_for(groups.size(), run_group);
  } else {
    ThreadPool local(opt.num_threads - 1);
    local.parallel_for(groups.size(), run_group);
  }

  Circuit prelude(num_qubits);
  std::vector<SubcircuitProfile> profiles;
  profiles.reserve(groups.size());
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    GroupOutcome& out = outcomes[gi];
    if (out.error) {
      // Deterministic attribution: the lowest-indexed failing group wins,
      // with its index attached, exactly as the serial loop threw.
      try {
        std::rethrow_exception(out.error);
      } catch (const Error& e) {
        throw with_group(e, gi);
      }
    }
    res.bsf_epochs += out.sg.search_epochs;
    for (const auto& r : out.sg.global_locals()) {
      append_pauli_rotation(
          prelude,
          PauliTerm(PauliString(r.x, r.z), r.sign ? -r.coeff : r.coeff));
    }
    if (out.has_profile) profiles.push_back(std::move(out.profile));
  }
  stage_span.reset();
  record("simplify", t_stage, paranoid,
         std::to_string(res.bsf_epochs) + " epochs");

  // 3. Tetris-like ordering (§IV-C) and assembly.
  t_stage = Clock::now();
  stage_span.emplace("order");
  OrderingOptions order_opt;
  order_opt.lookahead = opt.lookahead;
  order_opt.routing_aware = opt.hardware_aware;
  order_opt.cancel = opt.cancel;
  const auto order = tetris_order(profiles, order_opt);

  Circuit assembled(num_qubits);
  assembled.append(prelude);
  for (std::size_t idx : order) assembled.append(profiles[idx].circ);
  stage_span.reset();
  record("order", t_stage, false);

  // 4. Logical-level gate cancellation.
  t_stage = Clock::now();
  stage_span.emplace("peephole");
  switch (opt.peephole) {
    case PeepholeLevel::None:
      break;
    case PeepholeLevel::Own:
      optimize_o2(assembled, opt.peephole_engine, opt.cancel);
      break;
    case PeepholeLevel::O3:
      optimize_o3(assembled, opt.peephole_engine, opt.cancel);
      break;
  }
  stage_span.reset();
  record("peephole", t_stage, false);

  // 4b. O4 Clifford-region resynthesis on the logical circuit.
  if (opt.resynth != ResynthLevel::Off)
    run_resynth(assembled, /*coupling=*/nullptr, "resynth");
  res.logical = assembled;

  // 5. ISA emission / hardware mapping.
  if (!opt.hardware_aware) {
    if (opt.isa == TwoQubitIsa::Su4) {
      TraceSpan span("rebase(su4)");
      res.circuit = rebase_su4(assembled);
    } else {
      res.circuit = std::move(assembled);
    }
    if (paranoid) check_circuit_wellformed(res.circuit);
    validate_final();
    finish_stats();
    return res;
  }

  t_stage = Clock::now();
  stage_span.emplace("route(sabre)");
  SabreOptions sabre_opt = opt.sabre;
  if (!sabre_opt.cancel.valid()) sabre_opt.cancel = opt.cancel;
  SabreResult routed = sabre_route(assembled, *opt.coupling, sabre_opt);
  res.num_swaps = routed.num_swaps;
  res.initial_layout = std::move(routed.initial_layout);
  res.final_layout = std::move(routed.final_layout);
  if (paranoid) {
    // SWAP accounting must be checked on the routed circuit before the
    // SWAPs are decomposed into CNOTs.
    check_swap_accounting(routed.routed, routed.num_swaps);
    check_circuit_wellformed(routed.routed, opt.coupling);
  }
  Circuit physical = decompose_swaps(routed.routed);
  stage_span.reset();
  record("route(sabre)", t_stage, paranoid,
         std::to_string(res.num_swaps) + " swaps");
  // Post-routing cancellation: SWAP CNOTs frequently annihilate against the
  // rotation-ladder CNOTs they abut (the paper follows every hardware-aware
  // flow with a full Qiskit O3 pass).
  t_stage = Clock::now();
  stage_span.emplace("peephole(post-route)");
  if (opt.peephole == PeepholeLevel::None)
    optimize_o2(physical, opt.peephole_engine, opt.cancel);
  else
    optimize_o3(physical, opt.peephole_engine, opt.cancel);
  stage_span.reset();
  record("peephole(post-route)", t_stage, false);

  // 6b. O4 on the physical circuit: the synthesizer emits only
  // coupling-edge CNOTs, so rewrites stay routable by construction.
  if (opt.resynth == ResynthLevel::Routed)
    run_resynth(physical, opt.coupling, "resynth(routed)");

  if (opt.isa == TwoQubitIsa::Su4) {
    TraceSpan span("rebase(su4)");
    res.circuit = rebase_su4(physical);
  } else {
    res.circuit = std::move(physical);
  }
  if (paranoid) check_circuit_wellformed(res.circuit, opt.coupling);
  validate_final();
  finish_stats();
  return res;
}

}  // namespace phoenix
