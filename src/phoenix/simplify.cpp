#include "phoenix/simplify.hpp"

#include <limits>
#include <stdexcept>
#include "common/error.hpp"

namespace phoenix {

double bsf_cost(const Bsf& bsf) {
  const std::size_t rows = bsf.num_rows();
  std::size_t n_nl = 0;
  for (std::size_t i = 0; i < rows; ++i)
    if (bsf.row_weight(i) > 1) ++n_nl;

  double cost = static_cast<double>(bsf.total_weight()) *
                static_cast<double>(n_nl) * static_cast<double>(n_nl);
  for (std::size_t i = 0; i < rows; ++i) {
    const BitVec ui = bsf.row_x(i) | bsf.row_z(i);
    for (std::size_t j = i + 1; j < rows; ++j) {
      const BitVec uj = bsf.row_x(j) | bsf.row_z(j);
      cost += static_cast<double>((ui | uj).popcount());
      cost += 0.5 * static_cast<double>((bsf.row_x(i) | bsf.row_x(j)).popcount());
      cost += 0.5 * static_cast<double>((bsf.row_z(i) | bsf.row_z(j)).popcount());
    }
  }
  return cost;
}

namespace {

/// All Clifford2Q candidates over the currently occupied columns: unordered
/// pairs for the symmetric generators C(X,X)/C(Y,Y)/C(Z,Z), both orders for
/// the asymmetric ones.
std::vector<Clifford2Q> candidates(const std::vector<std::size_t>& support) {
  std::vector<Clifford2Q> out;
  for (const auto& gen : clifford2q_generators()) {
    const bool symmetric = gen.sigma0 == gen.sigma1;
    for (std::size_t i = 0; i < support.size(); ++i)
      for (std::size_t j = i + 1; j < support.size(); ++j) {
        Clifford2Q c = gen;
        c.q0 = support[i];
        c.q1 = support[j];
        out.push_back(c);
        if (!symmetric) {
          std::swap(c.q0, c.q1);
          out.push_back(c);
        }
      }
  }
  return out;
}

/// Deterministic fallback move guaranteed to lower the weight of row `r`:
/// for the row's leading support pair (a, b) with operators (Pa, Pb), some
/// generator C(σ0, σ1) with σ1 == Pb and σ0 anticommuting with Pa maps
/// Pa⊗Pb to Pa⊗I (see tests/test_phoenix.cpp for the exhaustive check).
Clifford2Q row_reduction_move(const Bsf& bsf, std::size_t r) {
  const BitVec mask = bsf.row_x(r) | bsf.row_z(r);
  const auto sup = mask.ones();
  if (sup.size() < 2)
    throw Error(Stage::Simplify, "row_reduction_move: row already local");
  const std::size_t a = sup[0], b = sup[1];
  const std::size_t before = (bsf.row_x(r) | bsf.row_z(r)).popcount();
  for (const auto& gen : clifford2q_generators())
    for (auto [q0, q1] : {std::pair<std::size_t, std::size_t>{a, b},
                          std::pair<std::size_t, std::size_t>{b, a}}) {
      Clifford2Q c = gen;
      c.q0 = q0;
      c.q1 = q1;
      Bsf probe = bsf;
      probe.apply_clifford2q(c);
      if ((probe.row_x(r) | probe.row_z(r)).popcount() < before) return c;
    }
  throw Error(Stage::Simplify,
              "row_reduction_move: no reducing generator found");
}

}  // namespace

SimplifiedGroup simplify_bsf(const std::vector<PauliTerm>& terms,
                             const SimplifyOptions& opt) {
  if (terms.empty())
    throw Error(Stage::Simplify, "simplify_bsf: empty term list");
  Bsf bsf(terms);

  SimplifiedGroup g;
  g.num_qubits = bsf.num_qubits();

  double last_cost = std::numeric_limits<double>::infinity();
  std::size_t stall = 0;

  while (bsf.total_weight() > 2) {
    std::vector<Bsf::Row> peeled = bsf.pop_local_rows();
    if (bsf.total_weight() <= 2) {
      g.locals.push_back(std::move(peeled));
      break;
    }
    if (++g.search_epochs > opt.max_epochs)
      throw Error(Stage::Simplify, "simplify_bsf: epoch limit exceeded");

    Clifford2Q chosen;
    bool have_choice = false;
    if (stall < 25) {
      // Greedy: the generator/pair minimizing the Eq. (6) cost. Ties are
      // broken toward qubit pairs already used by this group and toward
      // short index spans — the cost function is frequently degenerate, and
      // locality-friendly choices shrink the interaction graph handed to
      // the router (§IV-C.3's goal).
      double best = std::numeric_limits<double>::infinity();
      auto tie_rank = [&](const Clifford2Q& c) {
        const std::size_t lo = std::min(c.q0, c.q1), hi = std::max(c.q0, c.q1);
        bool used = false;
        for (const auto& prev : g.cliffords)
          used |= (std::min(prev.q0, prev.q1) == lo &&
                   std::max(prev.q0, prev.q1) == hi);
        return std::pair<int, std::size_t>(used ? 0 : 1, hi - lo);
      };
      for (const auto& cand : candidates(bsf.support())) {
        Bsf probe = bsf;
        probe.apply_clifford2q(cand);
        const double cost = bsf_cost(probe);
        const bool better =
            cost < best - 1e-9 ||
            (cost < best + 1e-9 && have_choice &&
             tie_rank(cand) < tie_rank(chosen));
        if (!have_choice || better) {
          best = std::min(best, cost);
          chosen = cand;
          have_choice = true;
        }
      }
      if (best < last_cost - 1e-9) {
        stall = 0;
        last_cost = best;
      } else {
        ++stall;
      }
    }
    if (!have_choice) {
      // Plateau guard: deterministically shrink the first nonlocal row.
      std::size_t r = 0;
      while (r < bsf.num_rows() && bsf.row_weight(r) <= 1) ++r;
      chosen = row_reduction_move(bsf, r);
    }

    bsf.apply_clifford2q(chosen);
    g.cliffords.push_back(chosen);
    g.locals.push_back(std::move(peeled));
  }

  // Align: locals[e] precedes cliffords[e]; locals[k] precedes the final BSF.
  while (g.locals.size() < g.cliffords.size() + 1) g.locals.emplace_back();
  g.final_bsf = std::move(bsf);
  return g;
}

Circuit SimplifiedGroup::emit(std::size_t total_qubits,
                              bool include_global_locals) const {
  if (total_qubits < num_qubits)
    throw Error(Stage::Emission, "SimplifiedGroup::emit: register too small");
  Circuit c(total_qubits);
  auto emit_rows = [&](const std::vector<Bsf::Row>& rows) {
    for (const auto& r : rows) {
      const PauliTerm t(PauliString(r.x, r.z), r.sign ? -r.coeff : r.coeff);
      append_pauli_rotation(c, t);
    }
  };

  const std::size_t k = cliffords.size();
  for (std::size_t e = 0; e < k; ++e) {
    if (e > 0 || include_global_locals) emit_rows(locals[e]);
    append_clifford2q(c, cliffords[e]);
  }
  if (locals.size() > k && (k > 0 || include_global_locals))
    emit_rows(locals[k]);
  for (std::size_t i = 0; i < final_bsf.num_rows(); ++i)
    append_pauli_rotation(c, final_bsf.term(i));
  for (std::size_t e = k; e-- > 0;) append_clifford2q(c, cliffords[e]);
  return c;
}

}  // namespace phoenix
