#include "phoenix/simplify.hpp"

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include "common/error.hpp"
#include "common/trace.hpp"

namespace phoenix {

double bsf_cost(const Bsf& bsf) {
  const std::size_t rows = bsf.num_rows();
  std::size_t n_nl = 0;
  for (std::size_t i = 0; i < rows; ++i)
    if (bsf.row_weight(i) > 1) ++n_nl;

  double cost = static_cast<double>(bsf.total_weight()) *
                static_cast<double>(n_nl) * static_cast<double>(n_nl);
  for (std::size_t i = 0; i < rows; ++i) {
    const BitVec ui = bsf.row_x(i) | bsf.row_z(i);
    for (std::size_t j = i + 1; j < rows; ++j) {
      cost += static_cast<double>(
          BitVec::or3_popcount(ui, bsf.row_x(j), bsf.row_z(j)));
      cost += 0.5 * static_cast<double>(
                        BitVec::or_popcount(bsf.row_x(i), bsf.row_x(j)));
      cost += 0.5 * static_cast<double>(
                        BitVec::or_popcount(bsf.row_z(i), bsf.row_z(j)));
    }
  }
  return cost;
}

IncrementalBsfCost::IncrementalBsfCost(const Bsf& bsf)
    : rows_(bsf.num_rows()),
      nx_(bsf.num_qubits()),
      nz_(bsf.num_qubits()),
      nu_(bsf.num_qubits()) {
  for (std::size_t c = 0; c < bsf.num_qubits(); ++c) {
    bsf.column_counts(c, nx_[c], nz_[c], nu_[c]);
    if (nu_[c] > 0) ++w_tot_;
    pair_sum2_ += column_term2(c);
  }
  for (std::size_t i = 0; i < rows_; ++i)
    if (bsf.row_weight(i) > 1) ++n_nl_;
}

void IncrementalBsfCost::refresh_columns(const Bsf& bsf, std::size_t a,
                                         std::size_t b) {
  const std::size_t cols[2] = {a, b};
  const std::size_t ncols = a == b ? 1 : 2;
  for (std::size_t k = 0; k < ncols; ++k) {
    const std::size_t c = cols[k];
    pair_sum2_ -= column_term2(c);
    if (nu_[c] > 0) --w_tot_;
    bsf.column_counts(c, nx_[c], nz_[c], nu_[c]);
    if (nu_[c] > 0) ++w_tot_;
    pair_sum2_ += column_term2(c);
  }
  n_nl_ = 0;
  for (std::size_t i = 0; i < rows_; ++i)
    if (bsf.row_weight(i) > 1) ++n_nl_;
}

IncrementalBsfCost::ColumnSnapshot IncrementalBsfCost::snapshot(
    std::size_t a, std::size_t b) const {
  ColumnSnapshot s;
  s.a = a;
  s.b = b;
  s.nx_a = nx_[a];
  s.nz_a = nz_[a];
  s.nu_a = nu_[a];
  s.nx_b = nx_[b];
  s.nz_b = nz_[b];
  s.nu_b = nu_[b];
  s.w_tot = w_tot_;
  s.n_nl = n_nl_;
  s.pair_sum2 = pair_sum2_;
  return s;
}

void IncrementalBsfCost::restore(const ColumnSnapshot& s) {
  nx_[s.a] = s.nx_a;
  nz_[s.a] = s.nz_a;
  nu_[s.a] = s.nu_a;
  nx_[s.b] = s.nx_b;
  nz_[s.b] = s.nz_b;
  nu_[s.b] = s.nu_b;
  w_tot_ = s.w_tot;
  n_nl_ = s.n_nl;
  pair_sum2_ = s.pair_sum2;
}

namespace {

/// All Clifford2Q candidates over the currently occupied columns: unordered
/// pairs for the symmetric generators C(X,X)/C(Y,Y)/C(Z,Z), both orders for
/// the asymmetric ones. Refills `out` so its capacity is reused across
/// epochs.
void collect_candidates(const std::vector<std::size_t>& support,
                        std::vector<Clifford2Q>& out) {
  out.clear();
  for (const auto& gen : clifford2q_generators()) {
    const bool symmetric = gen.sigma0 == gen.sigma1;
    for (std::size_t i = 0; i < support.size(); ++i)
      for (std::size_t j = i + 1; j < support.size(); ++j) {
        Clifford2Q c = gen;
        c.q0 = support[i];
        c.q1 = support[j];
        out.push_back(c);
        if (!symmetric) {
          std::swap(c.q0, c.q1);
          out.push_back(c);
        }
      }
  }
}

/// Deterministic fallback move guaranteed to lower the weight of row `r`:
/// for the row's leading support pair (a, b) with operators (Pa, Pb), some
/// generator C(σ0, σ1) with σ1 == Pb and σ0 anticommuting with Pa maps
/// Pa⊗Pb to Pa⊗I (see tests/test_phoenix.cpp for the exhaustive check).
/// Probes apply/undo in place (every Clifford2Q is Hermitian, hence
/// self-inverse); the tableau is unchanged on return.
Clifford2Q row_reduction_move(Bsf& bsf, std::size_t r) {
  const auto sup = (bsf.row_x(r) | bsf.row_z(r)).ones();
  if (sup.size() < 2)
    throw Error(Stage::Simplify, "row_reduction_move: row already local");
  const std::size_t a = sup[0], b = sup[1];
  const std::size_t before = bsf.row_weight(r);
  for (const auto& gen : clifford2q_generators())
    for (auto [q0, q1] : {std::pair<std::size_t, std::size_t>{a, b},
                          std::pair<std::size_t, std::size_t>{b, a}}) {
      Clifford2Q c = gen;
      c.q0 = q0;
      c.q1 = q1;
      bsf.apply_clifford2q(c);
      const std::size_t after = bsf.row_weight(r);
      bsf.apply_clifford2q(c);  // self-inverse: undo
      if (after < before) return c;
    }
  throw Error(Stage::Simplify,
              "row_reduction_move: no reducing generator found");
}

std::uint64_t pair_key(const Clifford2Q& c) {
  const std::uint64_t lo = std::min(c.q0, c.q1), hi = std::max(c.q0, c.q1);
  return (lo << 32) | hi;
}

}  // namespace

SimplifiedGroup simplify_bsf(const std::vector<PauliTerm>& terms,
                             const SimplifyOptions& opt) {
  if (terms.empty())
    throw Error(Stage::Simplify, "simplify_bsf: empty term list");
  Bsf bsf(terms);

  SimplifiedGroup g;
  g.num_qubits = bsf.num_qubits();
  // Observability tallies, accumulated locally (one trace_count per group at
  // the end — nothing extra in the candidate loop beyond a local add).
  std::size_t weight_before = 0;
  for (std::size_t i = 0; i < bsf.num_rows(); ++i)
    weight_before += bsf.row_weight(i);
  std::size_t candidates_evaluated = 0;
  std::size_t candidates_pruned = 0;
  std::size_t weight_peeled = 0;

  constexpr std::uint64_t kNoCost = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t last_cost2 = kNoCost;
  std::size_t stall = 0;
  // Unordered qubit pairs already used by this group's Cliffords, maintained
  // across epochs so the tie-break below is O(1) instead of rescanning
  // g.cliffords per candidate.
  std::unordered_set<std::uint64_t> used_pairs;
  std::vector<Clifford2Q> cands;
  std::uint32_t cancel_tick = 0;

  while (bsf.total_weight() > 2) {
    opt.cancel.check(Stage::Simplify);
    std::vector<Bsf::Row> peeled = bsf.pop_local_rows();
    for (const auto& r : peeled)
      weight_peeled += BitVec::or_popcount(r.x, r.z);
    if (bsf.total_weight() <= 2) {
      g.locals.push_back(std::move(peeled));
      break;
    }
    if (++g.search_epochs > opt.max_epochs)
      throw Error(Stage::Simplify, "simplify_bsf: epoch limit exceeded");

    Clifford2Q chosen;
    bool have_choice = false;
    if (stall < 25) {
      // Greedy: the generator/pair minimizing the Eq. (6) cost. Ties are
      // broken toward qubit pairs already used by this group and toward
      // short index spans — the cost function is frequently degenerate, and
      // locality-friendly choices shrink the interaction graph handed to
      // the router (§IV-C.3's goal).
      //
      // Each candidate is evaluated by applying it to the tableau in place,
      // re-syncing the two touched columns of the incremental cost, and
      // undoing via a second application (Clifford2Qs are self-inverse) —
      // no tableau copies, O(rows) per candidate.
      IncrementalBsfCost inc(bsf);
      std::uint64_t best2 = kNoCost;
      auto tie_rank = [&](const Clifford2Q& c) {
        const std::size_t lo = std::min(c.q0, c.q1), hi = std::max(c.q0, c.q1);
        return std::pair<int, std::size_t>(
            used_pairs.count(pair_key(c)) != 0 ? 0 : 1, hi - lo);
      };
      collect_candidates(bsf.support(), cands);
      candidates_evaluated += cands.size();
      for (const auto& cand : cands) {
        opt.cancel.poll(cancel_tick, Stage::Simplify);
        std::uint64_t cost2;
        if (inc.anticommuting_rows(cand.sigma0, cand.q0) == 0 &&
            inc.anticommuting_rows(cand.sigma1, cand.q1) == 0) {
          // Inert candidate: the conjugation fixes every row (a row changes
          // iff its Pauli anticommutes with sigma0 at q0 or with sigma1 at
          // q1), so its cost is the current cost — skip the O(rows)
          // apply/refresh/undo round-trip. The candidate still competes in
          // the comparison below with an identical cost and tie rank, so
          // the greedy choice is bit-identical to the unpruned search.
          cost2 = inc.cost2();
          ++candidates_pruned;
#ifdef PHOENIX_EXPENSIVE_CHECKS
          {
            const std::string before = bsf.to_string();
            bsf.apply_clifford2q(cand);
            if (bsf.to_string() != before)
              throw Error(Stage::Simplify,
                          "simplify_bsf: candidate classified inert mutated "
                          "the tableau");
            bsf.apply_clifford2q(cand);  // self-inverse: undo
          }
#endif
        } else {
          const auto snap = inc.snapshot(cand.q0, cand.q1);
          bsf.apply_clifford2q(cand);
          inc.refresh_columns(bsf, cand.q0, cand.q1);
          cost2 = inc.cost2();
#ifdef PHOENIX_EXPENSIVE_CHECKS
          if (inc.cost() != bsf_cost(bsf))
            throw Error(Stage::Simplify,
                        "simplify_bsf: incremental Eq. (6) cost diverged from "
                        "the reference");
#endif
          bsf.apply_clifford2q(cand);  // self-inverse: undo
          inc.restore(snap);
        }
        const bool better =
            !have_choice || cost2 < best2 ||
            (cost2 == best2 && tie_rank(cand) < tie_rank(chosen));
        if (better) {
          best2 = std::min(best2, cost2);
          chosen = cand;
          have_choice = true;
        }
      }
      if (best2 < last_cost2) {
        stall = 0;
        last_cost2 = best2;
      } else {
        ++stall;
      }
    }
    if (!have_choice) {
      // Plateau guard: deterministically shrink the first nonlocal row.
      std::size_t r = 0;
      while (r < bsf.num_rows() && bsf.row_weight(r) <= 1) ++r;
      chosen = row_reduction_move(bsf, r);
    }

    bsf.apply_clifford2q(chosen);
    g.cliffords.push_back(chosen);
    used_pairs.insert(pair_key(chosen));
    g.locals.push_back(std::move(peeled));
  }

  // Align: locals[e] precedes cliffords[e]; locals[k] precedes the final BSF.
  while (g.locals.size() < g.cliffords.size() + 1) g.locals.emplace_back();
  g.final_bsf = std::move(bsf);

  std::size_t weight_after = weight_peeled;
  for (std::size_t i = 0; i < g.final_bsf.num_rows(); ++i)
    weight_after += g.final_bsf.row_weight(i);
  trace_count("simplify.groups", 1);
  trace_count("simplify.epochs", g.search_epochs);
  trace_count("simplify.candidates", candidates_evaluated);
  trace_count("simplify.pruned_pairs", candidates_pruned);
  trace_count("simplify.weight_removed",
              weight_before > weight_after ? weight_before - weight_after : 0);
  return g;
}

Circuit SimplifiedGroup::emit(std::size_t total_qubits,
                              bool include_global_locals) const {
  if (total_qubits < num_qubits)
    throw Error(Stage::Emission, "SimplifiedGroup::emit: register too small");
  Circuit c(total_qubits);
  auto emit_rows = [&](const std::vector<Bsf::Row>& rows) {
    for (const auto& r : rows) {
      const PauliTerm t(PauliString(r.x, r.z), r.sign ? -r.coeff : r.coeff);
      append_pauli_rotation(c, t);
    }
  };

  const std::size_t k = cliffords.size();
  for (std::size_t e = 0; e < k; ++e) {
    if (e > 0 || include_global_locals) emit_rows(locals[e]);
    append_clifford2q(c, cliffords[e]);
  }
  if (locals.size() > k && (k > 0 || include_global_locals))
    emit_rows(locals[k]);
  for (std::size_t i = 0; i < final_bsf.num_rows(); ++i)
    append_pauli_rotation(c, final_bsf.term(i));
  for (std::size_t e = k; e-- > 0;) append_clifford2q(c, cliffords[e]);
  return c;
}

}  // namespace phoenix
