#include "phoenix/simplify.hpp"

#include <algorithm>
#include <cstdint>
#include <exception>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"

namespace phoenix {

double bsf_cost(const Bsf& bsf) {
  const std::size_t rows = bsf.num_rows();
  std::size_t n_nl = 0;
  for (std::size_t i = 0; i < rows; ++i)
    if (bsf.row_weight(i) > 1) ++n_nl;

  double cost = static_cast<double>(bsf.total_weight()) *
                static_cast<double>(n_nl) * static_cast<double>(n_nl);
  for (std::size_t i = 0; i < rows; ++i) {
    const BitVec ui = bsf.row_x(i) | bsf.row_z(i);
    for (std::size_t j = i + 1; j < rows; ++j) {
      cost += static_cast<double>(
          BitVec::or3_popcount(ui, bsf.row_x(j), bsf.row_z(j)));
      cost += 0.5 * static_cast<double>(
                        BitVec::or_popcount(bsf.row_x(i), bsf.row_x(j)));
      cost += 0.5 * static_cast<double>(
                        BitVec::or_popcount(bsf.row_z(i), bsf.row_z(j)));
    }
  }
  return cost;
}

IncrementalBsfCost::IncrementalBsfCost(const Bsf& bsf)
    : rows_(bsf.num_rows()),
      nx_(bsf.num_qubits()),
      nz_(bsf.num_qubits()),
      nu_(bsf.num_qubits()) {
  for (std::size_t c = 0; c < bsf.num_qubits(); ++c) {
    bsf.column_counts(c, nx_[c], nz_[c], nu_[c]);
    if (nu_[c] > 0) ++w_tot_;
    pair_sum2_ += column_term2(c);
  }
  for (std::size_t i = 0; i < rows_; ++i)
    if (bsf.row_weight(i) > 1) ++n_nl_;
}

void IncrementalBsfCost::refresh_columns(const Bsf& bsf, std::size_t a,
                                         std::size_t b) {
  const std::size_t cols[2] = {a, b};
  const std::size_t ncols = a == b ? 1 : 2;
  for (std::size_t k = 0; k < ncols; ++k) {
    const std::size_t c = cols[k];
    pair_sum2_ -= column_term2(c);
    if (nu_[c] > 0) --w_tot_;
    bsf.column_counts(c, nx_[c], nz_[c], nu_[c]);
    if (nu_[c] > 0) ++w_tot_;
    pair_sum2_ += column_term2(c);
  }
  n_nl_ = 0;
  for (std::size_t i = 0; i < rows_; ++i)
    if (bsf.row_weight(i) > 1) ++n_nl_;
}

IncrementalBsfCost::ColumnSnapshot IncrementalBsfCost::snapshot(
    std::size_t a, std::size_t b) const {
  ColumnSnapshot s;
  s.a = a;
  s.b = b;
  s.nx_a = nx_[a];
  s.nz_a = nz_[a];
  s.nu_a = nu_[a];
  s.nx_b = nx_[b];
  s.nz_b = nz_[b];
  s.nu_b = nu_[b];
  s.w_tot = w_tot_;
  s.n_nl = n_nl_;
  s.pair_sum2 = pair_sum2_;
  return s;
}

void IncrementalBsfCost::restore(const ColumnSnapshot& s) {
  nx_[s.a] = s.nx_a;
  nz_[s.a] = s.nz_a;
  nu_[s.a] = s.nu_a;
  nx_[s.b] = s.nx_b;
  nz_[s.b] = s.nz_b;
  nu_[s.b] = s.nu_b;
  w_tot_ = s.w_tot;
  n_nl_ = s.n_nl;
  pair_sum2_ = s.pair_sum2;
}

namespace {

constexpr std::uint64_t kNoCost = std::numeric_limits<std::uint64_t>::max();

/// All Clifford2Q candidates over the currently occupied columns: unordered
/// pairs for the symmetric generators C(X,X)/C(Y,Y)/C(Z,Z), both orders for
/// the asymmetric ones. Refills `out` so its capacity is reused across
/// epochs.
void collect_candidates(const std::vector<std::size_t>& support,
                        std::vector<Clifford2Q>& out) {
  out.clear();
  for (const auto& gen : clifford2q_generators()) {
    const bool symmetric = gen.sigma0 == gen.sigma1;
    for (std::size_t i = 0; i < support.size(); ++i)
      for (std::size_t j = i + 1; j < support.size(); ++j) {
        Clifford2Q c = gen;
        c.q0 = support[i];
        c.q1 = support[j];
        out.push_back(c);
        if (!symmetric) {
          std::swap(c.q0, c.q1);
          out.push_back(c);
        }
      }
  }
}

/// Deterministic fallback move guaranteed to lower the weight of row `r`:
/// for the row's leading support pair (a, b) with operators (Pa, Pb), some
/// generator C(σ0, σ1) with σ1 == Pb and σ0 anticommuting with Pa maps
/// Pa⊗Pb to Pa⊗I (see tests/test_phoenix.cpp for the exhaustive check).
/// Probes apply/undo in place (every Clifford2Q is Hermitian, hence
/// self-inverse); the tableau is unchanged on return.
Clifford2Q row_reduction_move(Bsf& bsf, std::size_t r) {
  const auto sup = (bsf.row_x(r) | bsf.row_z(r)).ones();
  if (sup.size() < 2)
    throw Error(Stage::Simplify, "row_reduction_move: row already local");
  const std::size_t a = sup[0], b = sup[1];
  const std::size_t before = bsf.row_weight(r);
  for (const auto& gen : clifford2q_generators())
    for (auto [q0, q1] : {std::pair<std::size_t, std::size_t>{a, b},
                          std::pair<std::size_t, std::size_t>{b, a}}) {
      Clifford2Q c = gen;
      c.q0 = q0;
      c.q1 = q1;
      bsf.apply_clifford2q(c);
      const std::size_t after = bsf.row_weight(r);
      bsf.apply_clifford2q(c);  // self-inverse: undo
      if (after < before) return c;
    }
  throw Error(Stage::Simplify,
              "row_reduction_move: no reducing generator found");
}

/// Unordered qubit pairs already used by a group's Cliffords, as a flat
/// byte map — the tie-break reads it once per cost-tied candidate, so the
/// lookup must be an indexed load, not a hash probe.
class UsedPairs {
 public:
  UsedPairs() = default;
  explicit UsedPairs(std::size_t num_qubits)
      : n_(num_qubits), bits_(num_qubits * num_qubits, 0) {}
  void insert(const Clifford2Q& c) { bits_[index(c)] = 1; }
  bool contains(const Clifford2Q& c) const { return bits_[index(c)] != 0; }

 private:
  std::size_t index(const Clifford2Q& c) const {
    const std::size_t lo = std::min(c.q0, c.q1), hi = std::max(c.q0, c.q1);
    return lo * n_ + hi;
  }
  std::size_t n_ = 0;
  std::vector<std::uint8_t> bits_;
};

/// SplitMix64 finalizer, the tie-break perturbation hash for racing starts.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Work tallies of one descent, accumulated locally and traced once by the
/// caller (racing starts run on pool workers, which must not touch the
/// caller's trace collector; summing locals also keeps the published totals
/// deterministic under any thread count).
struct SimplifyTally {
  std::size_t epochs = 0;
  std::size_t candidates = 0;
  std::size_t pruned = 0;
  std::size_t frontier_hits = 0;
  std::size_t frontier_invalidated = 0;

  void add(const SimplifyTally& o) {
    epochs += o.epochs;
    candidates += o.candidates;
    pruned += o.pruned;
    frontier_hits += o.frontier_hits;
    frontier_invalidated += o.frontier_invalidated;
  }
};

/// Ties among cost-equal candidates break toward qubit pairs already used by
/// this group and toward short index spans — the cost function is frequently
/// degenerate, and locality-friendly choices shrink the interaction graph
/// handed to the router (§IV-C.3's goal). Racing starts k > 0 add a seeded
/// hash as the last component, steering cost-equal choices down different
/// descent paths; tie_seed 0 (start 0, and every single-start run) keeps the
/// canonical scan-order-wins behavior bit-for-bit.
using TieRank = std::tuple<int, std::size_t, std::uint64_t>;

TieRank tie_rank(const Clifford2Q& c, const UsedPairs& used_pairs,
                 std::uint64_t tie_seed) {
  const std::size_t lo = std::min(c.q0, c.q1), hi = std::max(c.q0, c.q1);
  std::uint64_t perturb = 0;
  if (tie_seed != 0) {
    std::uint64_t h = mix64(tie_seed);
    h = mix64(h ^ static_cast<std::uint64_t>(c.sigma0));
    h = mix64(h ^ (static_cast<std::uint64_t>(c.sigma1) << 8));
    h = mix64(h ^ static_cast<std::uint64_t>(c.q0));
    perturb = mix64(h ^ static_cast<std::uint64_t>(c.q1));
  }
  return {used_pairs.contains(c) ? 0 : 1, hi - lo, perturb};
}

/// Exact cost ×2 after `cand`, evaluated on the live tableau by the
/// reference (rescan) strategy: inert candidates — conjugations fixing every
/// row, detectable from the occupancy counts alone — report the current cost
/// without touching the tableau; everything else runs the apply/refresh/undo
/// round-trip (Clifford2Qs are self-inverse), O(rows). The tableau and model
/// are unchanged on return.
std::uint64_t rescan_cost2(Bsf& bsf, IncrementalBsfCost& inc,
                           const Clifford2Q& cand, SimplifyTally* tally) {
  if (inc.anticommuting_rows(cand.sigma0, cand.q0) == 0 &&
      inc.anticommuting_rows(cand.sigma1, cand.q1) == 0) {
    // Inert candidate: the conjugation fixes every row (a row changes iff
    // its Pauli anticommutes with sigma0 at q0 or with sigma1 at q1), so its
    // cost is the current cost — skip the O(rows) round-trip. The candidate
    // still competes in the comparison with an identical cost and tie rank,
    // so the greedy choice is bit-identical to the unpruned search.
    if (tally) ++tally->pruned;
#ifdef PHOENIX_EXPENSIVE_CHECKS
    {
      const std::string before = bsf.to_string();
      bsf.apply_clifford2q(cand);
      if (bsf.to_string() != before)
        throw Error(Stage::Simplify,
                    "simplify_bsf: candidate classified inert mutated the "
                    "tableau");
      bsf.apply_clifford2q(cand);  // self-inverse: undo
    }
#endif
    return inc.cost2();
  }
  const auto snap = inc.snapshot(cand.q0, cand.q1);
  bsf.apply_clifford2q(cand);
  inc.refresh_columns(bsf, cand.q0, cand.q1);
  const std::uint64_t cost2 = inc.cost2();
#ifdef PHOENIX_EXPENSIVE_CHECKS
  if (inc.cost() != bsf_cost(bsf))
    throw Error(Stage::Simplify,
                "simplify_bsf: incremental Eq. (6) cost diverged from the "
                "reference");
#endif
  bsf.apply_clifford2q(cand);  // self-inverse: undo
  inc.restore(snap);
  return cost2;
}

struct ScanOut {
  Clifford2Q chosen;
  bool have = false;
  std::uint64_t best2 = kNoCost;
};

/// Running (cost, tie-rank) minimum of a scan. The winner's tie rank is
/// cached so a cost tie costs one tie_rank evaluation, not two — the cost
/// surface is degenerate enough that ties dominate the scan's non-probe
/// work. Candidates must be offered in enumeration order (ties of equal
/// rank keep the earlier candidate, exactly the reference semantics).
struct ScanMin {
  ScanOut out;
  TieRank best_rank;

  void offer(const Clifford2Q& cand, std::uint64_t cost2,
             const UsedPairs& used_pairs, std::uint64_t tie_seed) {
    if (!out.have || cost2 < out.best2) {
      out.best2 = cost2;
      out.chosen = cand;
      out.have = true;
      best_rank = tie_rank(cand, used_pairs, tie_seed);
    } else if (cost2 == out.best2) {
      TieRank r = tie_rank(cand, used_pairs, tie_seed);
      if (r < best_rank) {
        out.chosen = cand;
        best_rank = std::move(r);
      }
    }
  }
};

/// Full-rescan greedy scan: evaluate every candidate in enumeration order
/// and keep the (cost, tie-rank) minimum. The pre-frontier reference path,
/// and the cross-check oracle for the frontier scan.
ScanOut scan_rescan(Bsf& bsf, IncrementalBsfCost& inc,
                    const std::vector<Clifford2Q>& cands,
                    const UsedPairs& used_pairs, std::uint64_t tie_seed,
                    const CancelToken& cancel, std::uint32_t& cancel_tick,
                    SimplifyTally* tally) {
  ScanMin min;
  for (const auto& cand : cands) {
    cancel.poll(cancel_tick, Stage::Simplify);
    min.offer(cand, rescan_cost2(bsf, inc, cand, tally), used_pairs, tie_seed);
  }
  return min.out;
}

/// One cached frontier candidate: the Clifford2Q plus its last
/// probe_counts() result and the per-column versions it was probed against
/// (the delta masks live in a shared arena indexed by table position).
/// Everything cached depends ONLY on the candidate's two columns, so the
/// entry stays valid until an applied move transforms one of them —
/// typically just 2 of w_tot columns per epoch. The parts that drift on
/// every apply are re-read live at each rescoring instead: the weight-class
/// census via BsfColumnView::census over the cached masks, and the global
/// cost terms via IncrementalBsfCost::probe_cost2. That is also what keeps
/// stale-key heaps — whose cached *costs* go stale on every apply through
/// the nonlinear w_tot·n_nl² term — out of the design (DESIGN.md §11).
struct FrontierEntry {
  Clifford2Q cand;
  BsfColumnView::Probe probe;
  std::uint32_t vp = 0, vq = 0;  ///< col_version at probe time; 0 = never
};

/// One racing greedy descent (Algorithm 1 with beam width 1).
SimplifiedGroup run_greedy(const std::vector<PauliTerm>& terms,
                           const SimplifyOptions& opt, std::uint64_t tie_seed,
                           SimplifyTally& tally) {
  Bsf bsf(terms);
  SimplifiedGroup g;
  g.num_qubits = bsf.num_qubits();

  const bool use_frontier = opt.search == SimplifySearch::Frontier;
  std::uint64_t last_cost2 = kNoCost;
  std::size_t stall = 0;
  UsedPairs used_pairs(bsf.num_qubits());
  std::vector<Clifford2Q> cands;
  std::uint32_t cancel_tick = 0;

  // Frontier state: the incremental cost model and column view persist
  // across epochs (rebuilt only when peeling changed the row set) and are
  // re-synced after each applied move; candidate probes are cached in
  // `table` and invalidated per column via `col_version`. The occupied-
  // column list is also maintained lazily: it goes stale only when peeling
  // changed the rows or an applied move toggled a column between empty and
  // occupied (column_occupancy), not once per epoch.
  std::optional<IncrementalBsfCost> inc;
  BsfColumnView view;
  bool view_valid = false;
  std::vector<FrontierEntry> table;
  std::vector<std::uint64_t> mask_arena;  ///< 4·num_words() words per entry
  std::vector<std::uint32_t> col_version(bsf.num_qubits(), 1);
  std::vector<std::size_t> table_support;
  std::vector<std::uint8_t> in_support;
  bool table_valid = false;
  std::vector<std::size_t> touched;
  std::vector<std::size_t> support;
  bool support_stale = true;

  while (bsf.total_weight() > 2) {
    opt.cancel.check(Stage::Simplify);
    std::vector<Bsf::Row> peeled = bsf.pop_local_rows();
    if (bsf.total_weight() <= 2) {
      g.locals.push_back(std::move(peeled));
      break;
    }
    if (++g.search_epochs > opt.max_epochs)
      throw Error(Stage::Simplify, "simplify_bsf: epoch limit exceeded");

    if (!inc || !peeled.empty()) {
      inc.emplace(bsf);  // O(rows·qubits), negligible next to the scan
      support_stale = true;
    }
    if (use_frontier) {
      if (!view_valid) {
        view.rebuild(bsf);
        view_valid = true;
        table_valid = false;
      } else if (!peeled.empty()) {
        // Tombstone the peeled rows in place instead of rebuilding: only
        // the columns they occupied lose cached probes, not the whole
        // table. The kill count must match what pop_local_rows removed —
        // the view maintains the same row weights the tableau does.
        touched.clear();
        if (view.kill_local_rows(touched) != peeled.size())
          throw Error(Stage::Simplify,
                      "simplify_bsf: column view diverged from the tableau "
                      "on peel");
        for (const std::size_t c : touched) ++col_version[c];
      }
    }

    Clifford2Q chosen;
    bool have_choice = false;
    if (stall < 25) {
      // Greedy: the generator/pair minimizing the Eq. (6) cost.
      if (support_stale) {
        support = bsf.support();
        support_stale = false;
      }
      ScanMin min;
      if (use_frontier) {
        const std::size_t stride = 4 * view.num_words();
        if (table_valid && support != table_support &&
            std::includes(table_support.begin(), table_support.end(),
                          support.begin(), support.end())) {
          // Support only shrank (peels emptied columns): filter the table in
          // place. Dropping elements of the sorted support keeps the
          // surviving pairs in collect_candidates enumeration order, and
          // survivors keep their cached probes — per-column versions already
          // cover any column the peel touched.
          in_support.assign(bsf.num_qubits(), 0);
          for (const std::size_t c : support) in_support[c] = 1;
          std::size_t out = 0;
          for (std::size_t i = 0; i < table.size(); ++i) {
            if (!in_support[table[i].cand.q0] || !in_support[table[i].cand.q1])
              continue;
            if (out != i) {
              table[out] = table[i];
              std::copy_n(mask_arena.begin() + i * stride, stride,
                          mask_arena.begin() + out * stride);
            }
            ++out;
          }
          table.resize(out);
          table_support = support;
        }
        if (!table_valid || support != table_support) {
          collect_candidates(support, cands);
          table.clear();
          table.reserve(cands.size());
          for (const auto& c : cands) table.push_back(FrontierEntry{c, {}, 0, 0});
          mask_arena.assign(table.size() * stride, 0);
          table_support = support;
          table_valid = true;
        }
        tally.candidates += table.size();
        const std::uint64_t inert_cost2 = inc->cost2();
        for (std::size_t i = 0; i < table.size(); ++i) {
          FrontierEntry& e = table[i];
          opt.cancel.poll(cancel_tick, Stage::Simplify);
          std::uint64_t cost2;
          if (inc->anticommuting_rows(e.cand.sigma0, e.cand.q0) == 0 &&
              inc->anticommuting_rows(e.cand.sigma1, e.cand.q1) == 0) {
            cost2 = inert_cost2;  // inert — see rescan_cost2
            ++tally.pruned;
          } else {
            std::uint64_t* masks = mask_arena.data() + i * stride;
            const std::uint32_t vp = col_version[e.cand.q0];
            const std::uint32_t vq = col_version[e.cand.q1];
            if (e.vp != vp || e.vq != vq) {
              view.probe_counts(e.cand, e.probe, masks);
              e.vp = vp;
              e.vq = vq;
              ++tally.frontier_invalidated;
            } else {
              ++tally.frontier_hits;
            }
            // The census is never cached: class masks move on every apply,
            // so it is folded into the O(words) rescore instead.
            view.census(masks, e.probe.newly_local, e.probe.newly_nonlocal);
            cost2 = inc->probe_cost2(e.cand.q0, e.cand.q1, e.probe);
          }
          min.offer(e.cand, cost2, used_pairs, tie_seed);
        }
#ifdef PHOENIX_EXPENSIVE_CHECKS
        {
          // The frontier must make exactly the full rescan's decision.
          if (support != bsf.support())
            throw Error(Stage::Simplify,
                        "simplify_bsf: lazily maintained support diverged");
          collect_candidates(support, cands);
          std::uint32_t tick = 0;
          const ScanOut ref = scan_rescan(bsf, *inc, cands, used_pairs,
                                          tie_seed, opt.cancel, tick, nullptr);
          if (ref.have != min.out.have || ref.best2 != min.out.best2 ||
              !(ref.chosen == min.out.chosen))
            throw Error(Stage::Simplify,
                        "simplify_bsf: frontier scan diverged from the full "
                        "rescan");
        }
#endif
      } else {
        collect_candidates(support, cands);
        tally.candidates += cands.size();
        min.out = scan_rescan(bsf, *inc, cands, used_pairs, tie_seed,
                              opt.cancel, cancel_tick, &tally);
      }
      chosen = min.out.chosen;
      have_choice = min.out.have;
      if (min.out.best2 < last_cost2) {
        stall = 0;
        last_cost2 = min.out.best2;
      } else {
        ++stall;
      }
    }
    if (!have_choice) {
      // Plateau guard: deterministically shrink the first nonlocal row.
      std::size_t r = 0;
      while (r < bsf.num_rows() && bsf.row_weight(r) <= 1) ++r;
      chosen = row_reduction_move(bsf, r);
    }

    const bool p_occupied = inc->column_occupancy(chosen.q0) > 0;
    const bool q_occupied = inc->column_occupancy(chosen.q1) > 0;
    bsf.apply_clifford2q(chosen);
    inc->refresh_columns(bsf, chosen.q0, chosen.q1);
    if ((inc->column_occupancy(chosen.q0) > 0) != p_occupied ||
        (inc->column_occupancy(chosen.q1) > 0) != q_occupied)
      support_stale = true;
    if (use_frontier) {
      view.apply(chosen);
      ++col_version[chosen.q0];
      ++col_version[chosen.q1];
    }
    g.cliffords.push_back(chosen);
    used_pairs.insert(chosen);
    g.locals.push_back(std::move(peeled));
  }

  // Align: locals[e] precedes cliffords[e]; locals[k] precedes the final BSF.
  while (g.locals.size() < g.cliffords.size() + 1) g.locals.emplace_back();
  g.final_bsf = std::move(bsf);
  tally.epochs = g.search_epochs;
  return g;
}

/// Beam-search descent: per epoch, every surviving state proposes its
/// beam_width best moves (by cost, tie rank, then scan order); the pool of
/// proposals is cut back to the beam_width best by (cost, parent state
/// index, within-parent rank) — all-deterministic rankings, so the beam is
/// reproducible under any thread count. States whose tableau reaches
/// w_tot <= 2 retire in index order; the winner is the retired state with
/// the fewest two_qubit_gates(), ties to earliest retirement.
SimplifiedGroup run_beam(const std::vector<PauliTerm>& terms,
                         const SimplifyOptions& opt, std::uint64_t tie_seed,
                         SimplifyTally& tally) {
  struct BeamState {
    Bsf bsf;
    SimplifiedGroup g;
    std::uint64_t last_cost2 = kNoCost;
    std::size_t stall = 0;
    UsedPairs used_pairs;
  };
  struct Proposal {
    std::uint64_t cost2 = kNoCost;
    std::size_t parent = 0;
    std::size_t rank = 0;
    Clifford2Q move;
    std::uint64_t scan_best2 = kNoCost;  ///< parent scan's best (stall rule)
    bool plateau = false;
  };

  std::vector<BeamState> beam;
  {
    BeamState s;
    s.bsf = Bsf(terms);
    s.g.num_qubits = s.bsf.num_qubits();
    s.used_pairs = UsedPairs(s.bsf.num_qubits());
    beam.push_back(std::move(s));
  }
  std::vector<SimplifiedGroup> finished;
  std::vector<Clifford2Q> cands;
  std::uint32_t cancel_tick = 0;

  while (!beam.empty()) {
    opt.cancel.check(Stage::Simplify);
    // Peel locals; retire finished states in index order.
    std::vector<BeamState> active;
    for (auto& s : beam) {
      if (s.bsf.total_weight() <= 2) {
        while (s.g.locals.size() < s.g.cliffords.size() + 1)
          s.g.locals.emplace_back();
        s.g.final_bsf = std::move(s.bsf);
        tally.epochs += s.g.search_epochs;
        finished.push_back(std::move(s.g));
        continue;
      }
      std::vector<Bsf::Row> peeled = s.bsf.pop_local_rows();
      s.g.locals.push_back(std::move(peeled));
      if (s.bsf.total_weight() <= 2) {
        while (s.g.locals.size() < s.g.cliffords.size() + 1)
          s.g.locals.emplace_back();
        s.g.final_bsf = std::move(s.bsf);
        tally.epochs += s.g.search_epochs;
        finished.push_back(std::move(s.g));
        continue;
      }
      if (++s.g.search_epochs > opt.max_epochs)
        throw Error(Stage::Simplify, "simplify_bsf: epoch limit exceeded");
      active.push_back(std::move(s));
    }
    if (active.empty()) break;

    // Expand: each active state proposes its top beam_width moves.
    std::vector<Proposal> proposals;
    for (std::size_t pi = 0; pi < active.size(); ++pi) {
      BeamState& s = active[pi];
      IncrementalBsfCost inc(s.bsf);
      if (s.stall < 25) {
        collect_candidates(s.bsf.support(), cands);
        tally.candidates += cands.size();
        // Keep the state's beam_width best (cost2, tie, scan order), by
        // bounded insertion — beam widths are small.
        struct Ranked {
          std::uint64_t cost2;
          TieRank tie;
          std::size_t order;
          Clifford2Q cand;
        };
        std::vector<Ranked> top;
        std::uint64_t scan_best2 = kNoCost;
        for (std::size_t ci = 0; ci < cands.size(); ++ci) {
          opt.cancel.poll(cancel_tick, Stage::Simplify);
          const std::uint64_t cost2 =
              rescan_cost2(s.bsf, inc, cands[ci], &tally);
          scan_best2 = std::min(scan_best2, cost2);
          Ranked r{cost2, tie_rank(cands[ci], s.used_pairs, tie_seed), ci,
                   cands[ci]};
          auto pos = std::upper_bound(
              top.begin(), top.end(), r, [](const Ranked& a, const Ranked& b) {
                return std::tie(a.cost2, a.tie, a.order) <
                       std::tie(b.cost2, b.tie, b.order);
              });
          top.insert(pos, std::move(r));
          if (top.size() > opt.beam_width) top.pop_back();
        }
        for (std::size_t k = 0; k < top.size(); ++k)
          proposals.push_back(
              Proposal{top[k].cost2, pi, k, top[k].cand, scan_best2, false});
      } else {
        // Plateau guard, one forced proposal (see run_greedy).
        std::size_t r = 0;
        while (r < s.bsf.num_rows() && s.bsf.row_weight(r) <= 1) ++r;
        const Clifford2Q move = row_reduction_move(s.bsf, r);
        const std::uint64_t cost2 = rescan_cost2(s.bsf, inc, move, nullptr);
        proposals.push_back(Proposal{cost2, pi, 0, move, kNoCost, true});
      }
    }

    // Cut the pool back to the beam_width best proposals.
    std::sort(proposals.begin(), proposals.end(),
              [](const Proposal& a, const Proposal& b) {
                return std::tie(a.cost2, a.parent, a.rank) <
                       std::tie(b.cost2, b.parent, b.rank);
              });
    if (proposals.size() > opt.beam_width) proposals.resize(opt.beam_width);

    std::vector<BeamState> next;
    next.reserve(proposals.size());
    for (const auto& p : proposals) {
      BeamState child = active[p.parent];  // parents may fan out: copy
      child.bsf.apply_clifford2q(p.move);
      child.g.cliffords.push_back(p.move);
      child.used_pairs.insert(p.move);
      if (!p.plateau) {
        if (p.scan_best2 < child.last_cost2) {
          child.stall = 0;
          child.last_cost2 = p.scan_best2;
        } else {
          ++child.stall;
        }
      }
      next.push_back(std::move(child));
    }
    beam = std::move(next);
  }

  if (finished.empty())
    throw Error(Stage::Simplify, "simplify_bsf: beam search retired no state");
  std::size_t winner = 0;
  std::size_t best = finished[0].two_qubit_gates();
  for (std::size_t k = 1; k < finished.size(); ++k) {
    const std::size_t c = finished[k].two_qubit_gates();
    if (c < best) {
      best = c;
      winner = k;
    }
  }
  return std::move(finished[winner]);
}

std::size_t rows_weight(const std::vector<Bsf::Row>& rows) {
  std::size_t w = 0;
  for (const auto& r : rows) w += BitVec::or_popcount(r.x, r.z);
  return w;
}

}  // namespace

std::size_t SimplifiedGroup::two_qubit_gates() const {
  std::size_t n = 2 * cliffords.size() * Clifford2Q::cnot_cost();
  for (std::size_t i = 0; i < final_bsf.num_rows(); ++i) {
    const std::size_t w = final_bsf.row_weight(i);
    if (w >= 2) n += 2 * (w - 1);
  }
  return n;
}

SimplifiedGroup simplify_bsf(const std::vector<PauliTerm>& terms,
                             const SimplifyOptions& opt) {
  if (terms.empty())
    throw Error(Stage::Simplify, "simplify_bsf: empty term list");
  if (opt.num_starts == 0)
    throw Error(Stage::Simplify, "simplify_bsf: num_starts must be >= 1");
  if (opt.beam_width == 0)
    throw Error(Stage::Simplify, "simplify_bsf: beam_width must be >= 1");

  std::size_t weight_before = 0;
  for (const auto& t : terms)
    weight_before += BitVec::or_popcount(t.string.x(), t.string.z());

  auto run_one = [&](std::uint64_t seed, SimplifyTally& t) {
    return opt.beam_width > 1 ? run_beam(terms, opt, seed, t)
                              : run_greedy(terms, opt, seed, t);
  };

  SimplifiedGroup g;
  SimplifyTally tally;
  std::size_t winner = 0;
  if (opt.num_starts == 1) {
    g = run_one(0, tally);
  } else {
    // Racing starts across the shared pool (nested parallel_for is
    // help-while-waiting safe; with zero workers the race runs inline).
    // Start 0 is the canonical unperturbed descent, so the winner-by-
    // two_qubit_gates rule — ties to the lowest start index — can only
    // improve on the single-start result. Errors propagate from the lowest
    // failing start for determinism.
    std::vector<SimplifiedGroup> results(opt.num_starts);
    std::vector<SimplifyTally> tallies(opt.num_starts);
    std::vector<std::exception_ptr> errors(opt.num_starts);
    ThreadPool::shared().parallel_for(opt.num_starts, [&](std::size_t k) {
      try {
        results[k] = run_one(k, tallies[k]);
      } catch (...) {
        errors[k] = std::current_exception();
      }
    });
    for (auto& e : errors)
      if (e) std::rethrow_exception(e);
    std::size_t best = results[0].two_qubit_gates();
    for (std::size_t k = 1; k < opt.num_starts; ++k) {
      const std::size_t c = results[k].two_qubit_gates();
      if (c < best) {
        best = c;
        winner = k;
      }
    }
    g = std::move(results[winner]);
    for (const auto& t : tallies) tally.add(t);
  }

  std::size_t weight_after = 0;
  for (const auto& rows : g.locals) weight_after += rows_weight(rows);
  for (std::size_t i = 0; i < g.final_bsf.num_rows(); ++i)
    weight_after += g.final_bsf.row_weight(i);

  trace_count("simplify.groups", 1);
  trace_count("simplify.epochs", tally.epochs);
  trace_count("simplify.candidates", tally.candidates);
  trace_count("simplify.pruned_pairs", tally.pruned);
  trace_count("simplify.frontier_hits", tally.frontier_hits);
  trace_count("simplify.frontier_invalidated", tally.frontier_invalidated);
  trace_count("simplify.starts_won", winner > 0 ? 1 : 0);
  // Pre-peephole 2Q cost of the winning descent. Summed over a compile this
  // is the metric the multi-start race provably never worsens: start 0 is
  // the canonical single-start descent and the winner rule is a per-group
  // min. (The *final* circuit's 2Q count is not monotone in it — peephole
  // cancellation across group boundaries can favor a costlier sequence.)
  trace_count("simplify.two_qubit_gates", g.two_qubit_gates());
  trace_count("simplify.weight_removed",
              weight_before > weight_after ? weight_before - weight_after : 0);
  return g;
}

Circuit SimplifiedGroup::emit(std::size_t total_qubits,
                              bool include_global_locals) const {
  if (total_qubits < num_qubits)
    throw Error(Stage::Emission, "SimplifiedGroup::emit: register too small");
  Circuit c(total_qubits);
  auto emit_rows = [&](const std::vector<Bsf::Row>& rows) {
    for (const auto& r : rows) {
      const PauliTerm t(PauliString(r.x, r.z), r.sign ? -r.coeff : r.coeff);
      append_pauli_rotation(c, t);
    }
  };

  const std::size_t k = cliffords.size();
  for (std::size_t e = 0; e < k; ++e) {
    if (e > 0 || include_global_locals) emit_rows(locals[e]);
    append_clifford2q(c, cliffords[e]);
  }
  if (locals.size() > k && (k > 0 || include_global_locals))
    emit_rows(locals[k]);
  for (std::size_t i = 0; i < final_bsf.num_rows(); ++i)
    append_pauli_rotation(c, final_bsf.term(i));
  for (std::size_t e = k; e-- > 0;) append_clifford2q(c, cliffords[e]);
  return c;
}

}  // namespace phoenix
