#pragma once

#include <cstddef>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/graph.hpp"
#include "pauli/pauli.hpp"

namespace phoenix {

struct QaoaRouteResult {
  Circuit circuit;  ///< physical register, SWAPs decomposed, peepholed
  std::size_t num_swaps = 0;
  std::vector<std::size_t> initial_layout;
  std::vector<std::size_t> final_layout;
};

/// True when every term is 2-local and the set is pairwise commuting — the
/// precondition for commutativity-aware routing (QAOA cost layers).
bool is_commuting_two_local(const std::vector<PauliTerm>& terms);

/// PHOENIX's hardware-aware scheduler for commuting 2-local programs
/// (§IV-C.3 applied to QAOA): terms are free to execute in any order, so the
/// router drains every currently-adjacent term, then inserts parallel SWAPs
/// chosen by (terms unlocked, CNOT-merge opportunities with adjacent term
/// ladders, distance reduction, boundary depth) — the Tetris-like criteria
/// expressed at routing time. The `order` argument seeds term priority
/// (PHOENIX passes its Tetris-like group ordering).
QaoaRouteResult route_commuting_two_local(const std::vector<PauliTerm>& terms,
                                          std::size_t num_qubits,
                                          const Graph& coupling);

}  // namespace phoenix
