#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/cancel.hpp"
#include "common/graph.hpp"
#include "common/trace.hpp"
#include "mapping/sabre.hpp"
#include "pauli/pauli.hpp"
#include "phoenix/ordering.hpp"
#include "phoenix/simplify.hpp"
#include "resynth/resynth.hpp"
#include "transpile/peephole.hpp"
#include "verify/verify.hpp"

namespace phoenix {

/// Target 2Q instruction set (paper §V-D): the conventional CNOT ISA, or the
/// continuous SU(4) ISA in which any two-qubit unitary is one native gate.
enum class TwoQubitIsa { Cnot, Su4 };

/// Post-assembly peephole level. `Own` is PHOENIX's built-in gate
/// cancellation (the "PHOENIX" rows of Table II); `O3` additionally applies
/// the full O3-like resynthesis pipeline ("PHOENIX + O3").
enum class PeepholeLevel { None, Own, O3 };

struct PhoenixOptions {
  TwoQubitIsa isa = TwoQubitIsa::Cnot;
  PeepholeLevel peephole = PeepholeLevel::Own;
  /// Which implementation runs the peephole passes: the wire-DAG worklist
  /// engine (default) or the legacy quadratic scan (differential baseline).
  /// Both produce equivalent circuits; see transpile/peephole.hpp.
  PeepholeEngine peephole_engine = PeepholeEngine::Dag;
  /// O4 Clifford-region resynthesis tier (src/resynth/): Off skips it,
  /// Logical reruns maximal Clifford regions through the tableau normal
  /// form after the logical peephole, Routed additionally resynthesizes the
  /// physical circuit post-mapping with coupling-constrained CNOTs. The
  /// acceptor keeps a rewrite only on a strict 2Q-count win (ties broken by
  /// 2Q depth), so enabling O4 never increases `two_qubit_count()`.
  ResynthLevel resynth = ResynthLevel::Off;
  /// Hardware-aware mode: routing-aware Tetris ordering plus SABRE mapping
  /// onto `coupling` (must be non-null and connected).
  bool hardware_aware = false;
  const Graph* coupling = nullptr;
  std::size_t lookahead = 20;  ///< Tetris ordering window
  SabreOptions sabre;
  SimplifyOptions simplify;
  /// Threads for the per-group simplification stage (the groups are
  /// independent and the output is deterministic regardless of this value):
  /// 0 uses the process-wide shared pool (hardware_concurrency - 1 workers),
  /// 1 runs fully serial, k > 1 runs on a dedicated pool of k - 1 workers
  /// plus the calling thread.
  std::size_t num_threads = 0;
  /// Collect per-stage spans, pipeline counters, and latency histograms into
  /// `CompileResult::stats` (src/common/trace.hpp). Off by default: every
  /// probe is then an inlined branch with no clock reads or allocation, and
  /// compiled circuits are bit-identical with tracing on or off.
  bool trace = false;
  /// Cooperative cancellation/deadline token, polled inside every
  /// long-running stage loop (simplify descent, ordering, routing, peephole
  /// worklists). A tripped token makes the compile throw phoenix::Error with
  /// kind Cancelled or DeadlineExceeded within milliseconds; the default
  /// (empty) token is a single null-pointer test per poll. Copied into
  /// SimplifyOptions / SabreOptions when those don't carry their own token.
  /// Like `num_threads` and `trace`, excluded from cache fingerprints:
  /// tokens never change the compiled circuit, only whether it completes.
  CancelToken cancel;
  /// Self-checking level (src/verify/): Off compiles blind, Cheap runs the
  /// polynomial translation validation on the final circuit, Paranoid adds
  /// per-stage invariant checks and the exact-unitary cross-check on small
  /// registers. Any detected miscompilation throws phoenix::Error
  /// (Stage::Validation).
  ValidationOptions validation{ValidationLevel::Off};
};

/// Diagnostics for one pipeline stage: wall-clock cost and, when validation
/// is on, whether invariant checks ran there (checks that fail throw, so
/// records in a returned CompileResult always describe passing stages).
struct StageRecord {
  std::string name;
  double millis = 0.0;
  bool checked = false;  ///< paranoid invariant / validation ran here
  std::string note;      ///< stage-specific context (counts, verdicts)
};

struct CompileResult {
  /// Final circuit: logical register for logical-level compilation, physical
  /// register (SWAPs decomposed into CNOTs) for hardware-aware compilation.
  Circuit circuit;
  /// The circuit after logical optimization, before any mapping (equals
  /// `circuit` for logical-level compilation, pre-rebase).
  Circuit logical;
  std::size_t num_swaps = 0;
  std::size_t num_groups = 0;
  std::size_t bsf_epochs = 0;  ///< total greedy search epochs across groups
  /// Hardware-aware mode: logical -> physical layouts at circuit start/end
  /// (from SABRE or the QAOA router). Empty for logical-level compilation.
  std::vector<std::size_t> initial_layout;
  std::vector<std::size_t> final_layout;
  /// Per-stage timings and check outcomes (populated when validation != Off).
  std::vector<StageRecord> diagnostics;
  /// Stage spans, counters, and histograms (populated when `opt.trace`);
  /// export with TraceExport::table / TraceExport::chrome_json.
  CompileStats stats;
  /// Translation-validation verdict for `circuit` (status Pass whenever this
  /// result was returned with validation enabled; a Fail throws instead).
  ValidationReport validation;
};

/// The full PHOENIX pipeline of §IV: IR grouping → group-wise BSF
/// simplification → Tetris-like IR group ordering → ISA emission
/// (→ SABRE mapping when hardware-aware).
///
/// Contract: `terms` is ONE Trotter step — a set whose arrangement is free
/// (paper §I). For multi-step evolutions compile one step and repeat the
/// circuit; feeding r concatenated steps would let the grouping merge
/// repeated rotations across steps and collapse the formula
/// (see examples/trotter_evolution.cpp).
CompileResult phoenix_compile(const std::vector<PauliTerm>& terms,
                              std::size_t num_qubits,
                              const PhoenixOptions& opt = {});

}  // namespace phoenix
