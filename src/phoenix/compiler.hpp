#pragma once

#include <cstddef>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/graph.hpp"
#include "mapping/sabre.hpp"
#include "pauli/pauli.hpp"
#include "phoenix/ordering.hpp"
#include "phoenix/simplify.hpp"

namespace phoenix {

/// Target 2Q instruction set (paper §V-D): the conventional CNOT ISA, or the
/// continuous SU(4) ISA in which any two-qubit unitary is one native gate.
enum class TwoQubitIsa { Cnot, Su4 };

/// Post-assembly peephole level. `Own` is PHOENIX's built-in gate
/// cancellation (the "PHOENIX" rows of Table II); `O3` additionally applies
/// the full O3-like resynthesis pipeline ("PHOENIX + O3").
enum class PeepholeLevel { None, Own, O3 };

struct PhoenixOptions {
  TwoQubitIsa isa = TwoQubitIsa::Cnot;
  PeepholeLevel peephole = PeepholeLevel::Own;
  /// Hardware-aware mode: routing-aware Tetris ordering plus SABRE mapping
  /// onto `coupling` (must be non-null and connected).
  bool hardware_aware = false;
  const Graph* coupling = nullptr;
  std::size_t lookahead = 20;  ///< Tetris ordering window
  SabreOptions sabre;
  SimplifyOptions simplify;
};

struct CompileResult {
  /// Final circuit: logical register for logical-level compilation, physical
  /// register (SWAPs decomposed into CNOTs) for hardware-aware compilation.
  Circuit circuit;
  /// The circuit after logical optimization, before any mapping (equals
  /// `circuit` for logical-level compilation, pre-rebase).
  Circuit logical;
  std::size_t num_swaps = 0;
  std::size_t num_groups = 0;
  std::size_t bsf_epochs = 0;  ///< total greedy search epochs across groups
};

/// The full PHOENIX pipeline of §IV: IR grouping → group-wise BSF
/// simplification → Tetris-like IR group ordering → ISA emission
/// (→ SABRE mapping when hardware-aware).
///
/// Contract: `terms` is ONE Trotter step — a set whose arrangement is free
/// (paper §I). For multi-step evolutions compile one step and repeat the
/// circuit; feeding r concatenated steps would let the grouping merge
/// repeated rotations across steps and collapse the formula
/// (see examples/trotter_evolution.cpp).
CompileResult phoenix_compile(const std::vector<PauliTerm>& terms,
                              std::size_t num_qubits,
                              const PhoenixOptions& opt = {});

}  // namespace phoenix
