#include "phoenix/serialize.hpp"

#include <bit>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace phoenix {

namespace {

[[noreturn]] void fail(const std::string& detail) {
  throw Error(Stage::Parse, "compile_result_from_bytes: " + detail);
}

// --- token-level encoding ---------------------------------------------------

std::string u64_hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string double_bits(double d) { return u64_hex(std::bit_cast<std::uint64_t>(d)); }

/// Strings (stage names, notes, validation messages) as single whitespace-free
/// tokens: '%'-escape '%', whitespace, and control bytes; the empty string is
/// the token "%e".
std::string escape(const std::string& s) {
  if (s.empty()) return "%e";
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(s.size());
  for (const unsigned char c : s) {
    if (c == '%' || c <= ' ' || c == 0x7f) {
      out += '%';
      out += digits[c >> 4];
      out += digits[c & 0xf];
    } else {
      out += static_cast<char>(c);
    }
  }
  return out;
}

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

std::string unescape(const std::string& s) {
  if (s == "%e") return {};
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out += s[i];
      continue;
    }
    if (i + 2 >= s.size()) fail("truncated escape in string token");
    const int hi = hex_nibble(s[i + 1]), lo = hex_nibble(s[i + 2]);
    if (hi < 0 || lo < 0) fail("bad escape in string token");
    out += static_cast<char>(hi * 16 + lo);
    i += 2;
  }
  return out;
}

// --- reader -----------------------------------------------------------------

struct Reader {
  std::istringstream in;

  explicit Reader(const std::string& bytes) : in(bytes) {}

  std::string token(const char* what) {
    std::string t;
    if (!(in >> t)) fail(std::string("unexpected end of input, wanted ") + what);
    return t;
  }
  void expect(const char* literal) {
    const std::string t = token(literal);
    if (t != literal) fail("expected '" + std::string(literal) + "', got '" + t + "'");
  }
  std::uint64_t u64(const char* what) {
    const std::string t = token(what);
    std::uint64_t v = 0;
    for (const char c : t) {
      if (!std::isdigit(static_cast<unsigned char>(c)))
        fail("malformed integer for " + std::string(what) + ": '" + t + "'");
      v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return v;
  }
  std::uint64_t bits64(const char* what) {
    const std::string t = token(what);
    if (t.size() != 16) fail("malformed u64 hex for " + std::string(what));
    std::uint64_t v = 0;
    for (const char c : t) {
      const int n = hex_nibble(c);
      if (n < 0) fail("malformed u64 hex for " + std::string(what));
      v = (v << 4) | static_cast<std::uint64_t>(n);
    }
    return v;
  }
  double dbl(const char* what) { return std::bit_cast<double>(bits64(what)); }
  bool boolean(const char* what) {
    const std::uint64_t v = u64(what);
    if (v > 1) fail("malformed bool for " + std::string(what));
    return v == 1;
  }
};

// --- gates ------------------------------------------------------------------

void write_gate(std::ostream& out, const Gate& g) {
  out << "g " << static_cast<unsigned>(g.kind) << ' ' << g.q0 << ' ' << g.q1
      << ' ' << double_bits(g.param) << ' ' << g.sub.size() << '\n';
  for (const Gate& s : g.sub) write_gate(out, s);
}

Gate read_gate(Reader& r, std::size_t num_qubits, std::size_t depth) {
  if (depth > 4) fail("gate nesting too deep");
  r.expect("g");
  Gate g;
  const std::uint64_t kind = r.u64("gate kind");
  if (kind > static_cast<std::uint64_t>(GateKind::Su4)) fail("unknown gate kind");
  g.kind = static_cast<GateKind>(kind);
  g.q0 = static_cast<std::size_t>(r.u64("gate q0"));
  g.q1 = static_cast<std::size_t>(r.u64("gate q1"));
  if (g.q0 >= num_qubits || (g.is_two_qubit() && g.q1 >= num_qubits))
    fail("gate qubit out of range");
  g.param = r.dbl("gate param");
  const std::uint64_t nsub = r.u64("gate sub count");
  if (nsub != 0 && g.kind != GateKind::Su4) fail("sub-gates on non-Su4 gate");
  g.sub.reserve(static_cast<std::size_t>(nsub));
  for (std::uint64_t i = 0; i < nsub; ++i)
    g.sub.push_back(read_gate(r, num_qubits, depth + 1));
  return g;
}

void write_circuit(std::ostream& out, const char* tag, const Circuit& c) {
  out << tag << ' ' << c.num_qubits() << ' ' << c.size() << '\n';
  for (const Gate& g : c.gates()) write_gate(out, g);
}

Circuit read_circuit(Reader& r, const char* tag) {
  r.expect(tag);
  const std::size_t nq = static_cast<std::size_t>(r.u64("circuit qubits"));
  const std::uint64_t ngates = r.u64("circuit gate count");
  Circuit c(nq);
  for (std::uint64_t i = 0; i < ngates; ++i)
    c.append(read_gate(r, nq, 0));
  return c;
}

void write_layout(std::ostream& out, const char* tag,
                  const std::vector<std::size_t>& layout) {
  out << "layout " << tag << ' ' << layout.size();
  for (const std::size_t v : layout) out << ' ' << v;
  out << '\n';
}

std::vector<std::size_t> read_layout(Reader& r, const char* tag) {
  r.expect("layout");
  r.expect(tag);
  const std::uint64_t k = r.u64("layout size");
  std::vector<std::size_t> layout;
  layout.reserve(static_cast<std::size_t>(k));
  for (std::uint64_t i = 0; i < k; ++i)
    layout.push_back(static_cast<std::size_t>(r.u64("layout entry")));
  return layout;
}

std::size_t gate_bytes(const Gate& g) {
  std::size_t b = sizeof(Gate);
  for (const Gate& s : g.sub) b += gate_bytes(s);
  return b;
}

}  // namespace

std::string compile_result_to_bytes(const CompileResult& r) {
  std::ostringstream out;
  out << "phoenix-compile-result v" << kCompileResultSchemaVersion << '\n';
  write_circuit(out, "circuit", r.circuit);
  write_circuit(out, "logical", r.logical);
  out << "counts " << r.num_swaps << ' ' << r.num_groups << ' ' << r.bsf_epochs
      << '\n';
  write_layout(out, "initial", r.initial_layout);
  write_layout(out, "final", r.final_layout);
  out << "diagnostics " << r.diagnostics.size() << '\n';
  for (const StageRecord& d : r.diagnostics)
    out << "d " << escape(d.name) << ' ' << double_bits(d.millis) << ' '
        << (d.checked ? 1 : 0) << ' ' << escape(d.note) << '\n';
  const ValidationReport& v = r.validation;
  out << "validation " << static_cast<unsigned>(v.status) << ' '
      << (v.frame_checked ? 1 : 0) << ' ' << (v.frame_ok ? 1 : 0) << ' '
      << (v.exact_checked ? 1 : 0) << ' ' << double_bits(v.exact_infidelity)
      << ' ' << escape(v.message) << ' ' << v.realized_order.size() << '\n';
  for (const PauliTerm& t : v.realized_order)
    out << "t " << escape(t.string.to_string()) << ' ' << double_bits(t.coeff)
        << '\n';
  out << "end\n";
  return out.str();
}

CompileResult compile_result_from_bytes(const std::string& bytes) {
  Reader r(bytes);
  r.expect("phoenix-compile-result");
  const std::string version = r.token("schema version");
  const std::string want = "v" + std::to_string(kCompileResultSchemaVersion);
  if (version != want)
    fail("stale or unknown schema tag '" + version + "' (this build reads " +
         want + ")");

  CompileResult res;
  res.circuit = read_circuit(r, "circuit");
  res.logical = read_circuit(r, "logical");
  r.expect("counts");
  res.num_swaps = static_cast<std::size_t>(r.u64("num_swaps"));
  res.num_groups = static_cast<std::size_t>(r.u64("num_groups"));
  res.bsf_epochs = static_cast<std::size_t>(r.u64("bsf_epochs"));
  res.initial_layout = read_layout(r, "initial");
  res.final_layout = read_layout(r, "final");

  r.expect("diagnostics");
  const std::uint64_t ndiag = r.u64("diagnostics count");
  res.diagnostics.reserve(static_cast<std::size_t>(ndiag));
  for (std::uint64_t i = 0; i < ndiag; ++i) {
    r.expect("d");
    StageRecord rec;
    rec.name = unescape(r.token("diagnostic name"));
    rec.millis = r.dbl("diagnostic millis");
    rec.checked = r.boolean("diagnostic checked");
    rec.note = unescape(r.token("diagnostic note"));
    res.diagnostics.push_back(std::move(rec));
  }

  r.expect("validation");
  const std::uint64_t status = r.u64("validation status");
  if (status > static_cast<std::uint64_t>(ValidationStatus::Inconclusive))
    fail("unknown validation status");
  res.validation.status = static_cast<ValidationStatus>(status);
  res.validation.frame_checked = r.boolean("frame_checked");
  res.validation.frame_ok = r.boolean("frame_ok");
  res.validation.exact_checked = r.boolean("exact_checked");
  res.validation.exact_infidelity = r.dbl("exact_infidelity");
  res.validation.message = unescape(r.token("validation message"));
  const std::uint64_t nterms = r.u64("realized order count");
  res.validation.realized_order.reserve(static_cast<std::size_t>(nterms));
  for (std::uint64_t i = 0; i < nterms; ++i) {
    r.expect("t");
    const std::string label = unescape(r.token("term label"));
    const double coeff = r.dbl("term coeff");
    try {
      res.validation.realized_order.emplace_back(label, coeff);
    } catch (const std::exception& e) {
      fail(std::string("bad Pauli label in realized order: ") + e.what());
    }
  }
  r.expect("end");
  // A well-formed document ends at "end". Anything after it — a second
  // concatenated document, garbage from a mis-framed network read — means
  // the caller's byte stream does not hold exactly one result, and silently
  // accepting it would let a corrupted frame round-trip as "valid".
  std::string trailing;
  if (r.in >> trailing)
    fail("trailing bytes after 'end' (starting with '" + trailing + "')");
  return res;
}

std::string wire_escape(const std::string& s) { return escape(s); }

std::string wire_unescape(const std::string& token) {
  return unescape(token);
}

std::string wire_double_bits(double d) { return double_bits(d); }

std::size_t compile_result_approx_bytes(const CompileResult& r) {
  std::size_t b = sizeof(CompileResult);
  for (const Gate& g : r.circuit.gates()) b += gate_bytes(g);
  for (const Gate& g : r.logical.gates()) b += gate_bytes(g);
  b += (r.initial_layout.size() + r.final_layout.size()) * sizeof(std::size_t);
  for (const StageRecord& d : r.diagnostics)
    b += sizeof(StageRecord) + d.name.size() + d.note.size();
  b += r.validation.message.size();
  for (const PauliTerm& t : r.validation.realized_order)
    b += sizeof(PauliTerm) + 2 * ((t.string.num_qubits() + 63) / 8);
  return b;
}

}  // namespace phoenix
