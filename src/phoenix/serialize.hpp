#pragma once

#include <cstddef>
#include <string>

#include "phoenix/compiler.hpp"

namespace phoenix {

/// Versioned, platform-independent serialization of a CompileResult — the
/// payload of the compile cache's on-disk entries.
///
/// Format: a line-oriented text document starting with the schema tag
/// `phoenix-compile-result v<N>`. Loaders reject any other version, so a
/// format change invalidates every persisted entry instead of misreading it
/// (the request fingerprint carries its own schema version for the same
/// reason — see src/service/fingerprint.hpp).
///
/// All doubles (rotation angles, stage timings, infidelities) are encoded as
/// the hex of their IEEE-754 bit pattern, so a round-trip is bit-identical —
/// a cache hit served from disk must reproduce the cold compile's circuit
/// exactly, not merely to printf precision.
///
/// Scope: the semantic artifacts (both circuits, SWAP/group/epoch counts,
/// layouts, stage diagnostics, validation verdict + realized order). The
/// trace `stats` member is deliberately NOT serialized: it describes one
/// concrete run's timings and thread interleavings, not the compile
/// artifact; deserialized results carry an empty (disabled) CompileStats.
inline constexpr int kCompileResultSchemaVersion = 1;

/// Serialize `r` (minus `stats`, see above).
std::string compile_result_to_bytes(const CompileResult& r);

/// Parse a `compile_result_to_bytes` document. Throws phoenix::Error
/// (Stage::Parse) on a stale or foreign schema tag, truncation, any
/// malformed field, or trailing bytes after the final `end` token — the
/// input must hold exactly one document, so concatenated or mis-framed
/// network payloads cannot round-trip as a valid result.
CompileResult compile_result_from_bytes(const std::string& bytes);

/// Estimated resident size of a result in bytes (gates, sub-gates, layouts,
/// diagnostic strings). Used by the compile cache's byte budget; an estimate
/// on the high side of shallow sizeof, deliberately cheap rather than exact.
std::size_t compile_result_approx_bytes(const CompileResult& r);

/// Token-level encoding shared by every phoenix wire document (this result
/// format and the service/protocol.hpp request frames): strings travel as
/// single whitespace-free tokens ('%'-escaped), doubles as the hex of their
/// IEEE-754 bit pattern so round-trips are bit-identical.
std::string wire_escape(const std::string& s);
/// Throws phoenix::Error (Stage::Parse) on a malformed escape.
std::string wire_unescape(const std::string& token);
std::string wire_double_bits(double d);

}  // namespace phoenix
