#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/synthesis.hpp"
#include "common/cancel.hpp"
#include "pauli/bsf.hpp"
#include "pauli/clifford2q.hpp"
#include "pauli/pauli.hpp"

namespace phoenix {

/// The heuristic BSF disparity cost of Eq. (6):
///   cost = w_tot · n_nl² + Σ_⟨i,j⟩ ‖rx_i ∨ rz_i ∨ rx_j ∨ rz_j‖
///          + ½ Σ_⟨i,j⟩ (‖rx_i ∨ rx_j‖ + ‖rz_i ∨ rz_j‖)
/// where n_nl counts nonlocal (weight > 1) rows. Lower is closer to a
/// directly synthesizable tableau.
double bsf_cost(const Bsf& bsf);

/// Incrementally maintained Eq. (6) cost.
///
/// The pairwise OR-popcount sums decompose by column: with R rows and n_c
/// rows occupying column c (counted separately for the X block, the Z block,
/// and their union), Σ_⟨i,j⟩ ‖a_i ∨ a_j‖ = Σ_c [C(R,2) − C(R−n_c,2)], since a
/// column contributes to every pair except those drawn entirely from its
/// R−n_c empty rows. A Clifford2Q conjugation touches exactly two columns,
/// so after an in-place apply the cost is re-synced by retallying those two
/// columns — O(rows) instead of the reference's O(rows²·qubits).
///
/// All Eq. (6) values are multiples of ½, so the model tracks the exact
/// doubled cost as an integer; the greedy search compares candidates without
/// floating-point tolerances yet selects identically to the reference
/// (differences between distinct costs are at least ½, far above the old
/// 1e-9 tie window).
///
/// The model is bound to a fixed row set: rebuild it after rows are added or
/// removed (the search rebuilds once per epoch, after peeling local rows).
class IncrementalBsfCost {
 public:
  /// Full build, O(rows·qubits).
  explicit IncrementalBsfCost(const Bsf& bsf);

  /// Exact cost ×2.
  std::uint64_t cost2() const {
    return 2 * static_cast<std::uint64_t>(w_tot_) *
               static_cast<std::uint64_t>(n_nl_) *
               static_cast<std::uint64_t>(n_nl_) +
           pair_sum2_;
  }
  /// The Eq. (6) value, equal to bsf_cost() on the same tableau.
  double cost() const { return 0.5 * static_cast<double>(cost2()); }

  /// Re-sync after `bsf` was mutated in columns a and b only (a == b allowed).
  /// O(rows).
  void refresh_columns(const Bsf& bsf, std::size_t a, std::size_t b);

  /// O(1) state capture for the apply/undo candidate search: snapshot before
  /// mutating columns a/b, restore after the self-inverse undo instead of a
  /// second refresh.
  struct ColumnSnapshot {
    std::size_t a = 0, b = 0;
    std::size_t nx_a = 0, nz_a = 0, nu_a = 0;
    std::size_t nx_b = 0, nz_b = 0, nu_b = 0;
    std::size_t w_tot = 0, n_nl = 0;
    std::uint64_t pair_sum2 = 0;
  };
  ColumnSnapshot snapshot(std::size_t a, std::size_t b) const;
  void restore(const ColumnSnapshot& s);

  /// Exact cost ×2 after a hypothetical conjugation on columns (p, q),
  /// from a BsfColumnView::Probe of that candidate — O(1), no tableau
  /// mutation. Equals what apply + refresh_columns + cost2() would report:
  /// the pair sum swaps the two columns' terms for their post-conjugation
  /// values, w_tot adjusts by the columns' occupied/empty transitions, and
  /// n_nl by the rows crossing the local/nonlocal boundary. Requires p != q
  /// (a Clifford2Q never has q0 == q1).
  std::uint64_t probe_cost2(std::size_t p, std::size_t q,
                            const BsfColumnView::Probe& pr) const {
    const std::uint64_t pair_sum2 =
        pair_sum2_ - column_term2(p) - column_term2(q) +
        term2_from(pr.nx0, pr.nz0, pr.nu0) + term2_from(pr.nx1, pr.nz1, pr.nu1);
    const std::size_t w_tot = w_tot_ - (nu_[p] > 0 ? 1 : 0) -
                              (nu_[q] > 0 ? 1 : 0) + (pr.nu0 > 0 ? 1 : 0) +
                              (pr.nu1 > 0 ? 1 : 0);
    const std::size_t n_nl = n_nl_ + pr.newly_nonlocal - pr.newly_local;
    return 2 * static_cast<std::uint64_t>(w_tot) *
               static_cast<std::uint64_t>(n_nl) *
               static_cast<std::uint64_t>(n_nl) +
           pair_sum2;
  }

  /// Rows occupying column c (nu). The search uses this to detect support
  /// changes without rescanning the tableau: occupancy moves only in the two
  /// columns an applied conjugation refreshed, so the occupied-column list is
  /// stale only when one of them toggled between empty and occupied.
  std::size_t column_occupancy(std::size_t c) const { return nu_[c]; }

  /// Rows whose Pauli in column c anticommutes with `sigma`, from the
  /// maintained occupancy counts — O(1), no tableau scan. A Pauli
  /// anticommutes with X iff its Z bit is set (Z or Y), with Z iff its X bit
  /// is set (X or Y), and with Y iff exactly one bit is set; the exactly-one
  /// count is nx + nz − 2·(both) with both = nx + nz − nu. Lets the greedy
  /// search detect inert candidates (conjugations that fix every row:
  /// zero anticommuting rows at both operand columns) without touching the
  /// tableau.
  std::size_t anticommuting_rows(Pauli sigma, std::size_t c) const {
    switch (sigma) {
      case Pauli::X:
        return nz_[c];
      case Pauli::Z:
        return nx_[c];
      default:  // Y (I is not a valid conjugation axis)
        return 2 * nu_[c] - nx_[c] - nz_[c];
    }
  }

 private:
  /// 2·[C(R,2) − C(R−n,2)] for the union term; the X/Z terms use half of it.
  std::uint64_t pair2(std::size_t n) const {
    const std::uint64_t r = rows_, m = r - n;
    return r * (r - 1) - m * (m - 1);
  }
  std::uint64_t column_term2(std::size_t c) const {
    return term2_from(nx_[c], nz_[c], nu_[c]);
  }
  std::uint64_t term2_from(std::size_t nx, std::size_t nz,
                           std::size_t nu) const {
    return pair2(nu) + (pair2(nx) + pair2(nz)) / 2;
  }

  std::size_t rows_ = 0;                 ///< R, fixed for the model lifetime
  std::vector<std::size_t> nx_, nz_, nu_;  ///< per-column occupancy
  std::size_t w_tot_ = 0;                ///< columns with nu > 0
  std::size_t n_nl_ = 0;                 ///< rows with weight > 1
  std::uint64_t pair_sum2_ = 0;          ///< Σ_c column_term2(c)
};

/// Result of Algorithm 1 on one IR group: the Clifford2Q conjugation
/// sequence, the local rows peeled before each epoch (expressed in the frame
/// after the preceding Cliffords), and the final tableau with w_tot <= 2.
///
/// The group subcircuit is emitted as
///   R(L_1) · c_1 · R(L_2) · c_2 · … · R(L_k) · c_k · R(B_f) · c_k … c_1
/// (circuit order), which conjugates every rotation back to its original
/// frame; it equals the group's Trotter product up to intra-group term
/// reordering (a freedom the paper relies on throughout).
struct SimplifiedGroup {
  std::size_t num_qubits = 0;
  std::vector<Clifford2Q> cliffords;            ///< c_1 … c_k, epoch order
  std::vector<std::vector<Bsf::Row>> locals;    ///< locals[e] peeled before c_{e+1}
  Bsf final_bsf;                                ///< w_tot <= 2
  std::size_t search_epochs = 0;                ///< diagnostics

  /// Emit the subcircuit over the full register. 2Q cost: 1 CNOT per
  /// Clifford2Q + 2 CNOTs per weight-2 rotation (before peephole passes).
  /// When `include_global_locals` is false, the rotations of locals[0] —
  /// which live in the global (unconjugated) frame and can float anywhere in
  /// the Trotter product — are left out, keeping the subcircuit boundary
  /// clean for Clifford2Q cancellation across groups; the caller emits them
  /// separately (see phoenix_compile).
  Circuit emit(std::size_t total_qubits, bool include_global_locals = true) const;

  /// The global-frame local rows (locals[0]): 1Q rotations peeled before the
  /// first Clifford, free to float anywhere in the Trotter product.
  const std::vector<Bsf::Row>& global_locals() const {
    static const std::vector<Bsf::Row> kEmpty;
    return locals.empty() ? kEmpty : locals.front();
  }

  /// Pre-peephole 2Q gate count of emit(): 1 CNOT per Clifford2Q, applied
  /// both forward and backward (2k total), plus the CNOT ladder of each
  /// remaining nonlocal rotation (2·(w−1) for weight w ≥ 2). The multi-start
  /// race ranks candidate descents by this metric — it is exactly the 2Q
  /// cost the descent was minimizing, computable without emitting.
  std::size_t two_qubit_gates() const;
};

/// Candidate evaluation strategy for the greedy descent.
enum class SimplifySearch {
  /// Incrementally maintained candidate frontier: per-candidate column
  /// probes (BsfColumnView) cached across epochs and invalidated only for
  /// candidates touching columns dirtied by the last applied Clifford2Q;
  /// every candidate is rescored in O(1) each epoch. Chooses bit-identically
  /// to Rescan (cross-checked under PHOENIX_EXPENSIVE_CHECKS). The default.
  Frontier,
  /// Full per-epoch rescan via apply/refresh/undo on the live tableau — the
  /// pre-frontier reference path, kept as the differential baseline.
  Rescan,
};

struct SimplifyOptions {
  /// Abort knob for pathological inputs; the greedy search normally
  /// terminates in O(total weight) epochs.
  std::size_t max_epochs = 10000;
  /// Candidate evaluation strategy; identical output either way.
  SimplifySearch search = SimplifySearch::Frontier;
  /// Number of racing greedy descents (>= 1). Start 0 runs the canonical
  /// unperturbed tie-break; starts k > 0 perturb tie-breaking among
  /// cost-equal candidates with a seeded hash. The winner is the descent
  /// with the fewest two_qubit_gates(), ties to the lowest start index — so
  /// num_starts > 1 never yields a costlier group than num_starts == 1, and
  /// the result is deterministic regardless of thread count. Starts race
  /// across the shared ThreadPool.
  std::size_t num_starts = 1;
  /// Beam width (>= 1). Width 1 is the pure greedy descent; width B > 1
  /// keeps the B best tableaux per epoch (ranked by cost, then parent state
  /// index, then within-parent candidate rank) and returns the finished
  /// state with the fewest two_qubit_gates(), ties to earliest finish.
  /// Deterministic; composes with num_starts (each start runs its own beam).
  std::size_t beam_width = 1;
  /// Cooperative cancellation: checked once per epoch and polled (amortized,
  /// see CancelToken::poll) inside the candidate loop, so a cancelled or
  /// deadline-expired compile leaves the greedy descent within a few hundred
  /// candidate evaluations. Empty by default — one pointer test per probe.
  /// Honored by every racing start.
  CancelToken cancel;
};

/// Algorithm 1: greedy simultaneous BSF simplification. `terms` must share a
/// register size; rows of weight <= 1 are peeled for free. The search space
/// per epoch is the six generators of Eq. (5) over ordered pairs of currently
/// occupied columns (unordered for the symmetric generators).
SimplifiedGroup simplify_bsf(const std::vector<PauliTerm>& terms,
                             const SimplifyOptions& opt = {});

}  // namespace phoenix
