#pragma once

#include <cstddef>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/synthesis.hpp"
#include "pauli/bsf.hpp"
#include "pauli/clifford2q.hpp"
#include "pauli/pauli.hpp"

namespace phoenix {

/// The heuristic BSF disparity cost of Eq. (6):
///   cost = w_tot · n_nl² + Σ_⟨i,j⟩ ‖rx_i ∨ rz_i ∨ rx_j ∨ rz_j‖
///          + ½ Σ_⟨i,j⟩ (‖rx_i ∨ rx_j‖ + ‖rz_i ∨ rz_j‖)
/// where n_nl counts nonlocal (weight > 1) rows. Lower is closer to a
/// directly synthesizable tableau.
double bsf_cost(const Bsf& bsf);

/// Result of Algorithm 1 on one IR group: the Clifford2Q conjugation
/// sequence, the local rows peeled before each epoch (expressed in the frame
/// after the preceding Cliffords), and the final tableau with w_tot <= 2.
///
/// The group subcircuit is emitted as
///   R(L_1) · c_1 · R(L_2) · c_2 · … · R(L_k) · c_k · R(B_f) · c_k … c_1
/// (circuit order), which conjugates every rotation back to its original
/// frame; it equals the group's Trotter product up to intra-group term
/// reordering (a freedom the paper relies on throughout).
struct SimplifiedGroup {
  std::size_t num_qubits = 0;
  std::vector<Clifford2Q> cliffords;            ///< c_1 … c_k, epoch order
  std::vector<std::vector<Bsf::Row>> locals;    ///< locals[e] peeled before c_{e+1}
  Bsf final_bsf;                                ///< w_tot <= 2
  std::size_t search_epochs = 0;                ///< diagnostics

  /// Emit the subcircuit over the full register. 2Q cost: 1 CNOT per
  /// Clifford2Q + 2 CNOTs per weight-2 rotation (before peephole passes).
  /// When `include_global_locals` is false, the rotations of locals[0] —
  /// which live in the global (unconjugated) frame and can float anywhere in
  /// the Trotter product — are left out, keeping the subcircuit boundary
  /// clean for Clifford2Q cancellation across groups; the caller emits them
  /// separately (see phoenix_compile).
  Circuit emit(std::size_t total_qubits, bool include_global_locals = true) const;

  /// The global-frame local rows (locals[0]): 1Q rotations peeled before the
  /// first Clifford, free to float anywhere in the Trotter product.
  const std::vector<Bsf::Row>& global_locals() const {
    static const std::vector<Bsf::Row> kEmpty;
    return locals.empty() ? kEmpty : locals.front();
  }
};

struct SimplifyOptions {
  /// Abort knob for pathological inputs; the greedy search normally
  /// terminates in O(total weight) epochs.
  std::size_t max_epochs = 10000;
};

/// Algorithm 1: greedy simultaneous BSF simplification. `terms` must share a
/// register size; rows of weight <= 1 are peeled for free. The search space
/// per epoch is the six generators of Eq. (5) over ordered pairs of currently
/// occupied columns (unordered for the symmetric generators).
SimplifiedGroup simplify_bsf(const std::vector<PauliTerm>& terms,
                             const SimplifyOptions& opt = {});

}  // namespace phoenix
