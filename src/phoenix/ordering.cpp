#include "phoenix/ordering.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>

#include "common/trace.hpp"

namespace phoenix {

namespace {

/// Interaction graph of a boundary slice: scan 2Q gates from one end, adding
/// edges, until every support qubit has been touched (the paper's "head/tail
/// incorporating more and more 2Q gates until all qubits are acted upon").
Graph slice_graph(const Circuit& c, const std::vector<std::size_t>& support,
                  bool from_left) {
  Graph g(c.num_qubits());
  std::set<std::size_t> waiting(support.begin(), support.end());
  const auto& gates = c.gates();
  auto visit = [&](const Gate& gate) {
    if (!gate.is_two_qubit()) return;
    if (!g.has_edge(gate.q0, gate.q1)) g.add_edge(gate.q0, gate.q1);
    waiting.erase(gate.q0);
    waiting.erase(gate.q1);
  };
  if (from_left) {
    for (std::size_t i = 0; i < gates.size() && !waiting.empty(); ++i)
      visit(gates[i]);
  } else {
    for (std::size_t i = gates.size(); i-- > 0 && !waiting.empty();)
      visit(gates[i]);
  }
  return g;
}

bool cliffords_match(const Clifford2Q& a, const Clifford2Q& b) {
  if (a.sigma0 != b.sigma0 || a.sigma1 != b.sigma1) return false;
  if (a.q0 == b.q0 && a.q1 == b.q1) return true;
  // Symmetric generators act identically with swapped qubits.
  return a.sigma0 == a.sigma1 && a.q0 == b.q1 && a.q1 == b.q0;
}

/// Cosine similarity of two distance-matrix rows restricted to `qubits`;
/// unreachable distances contribute 0.
double row_cosine(const std::vector<std::size_t>& a,
                  const std::vector<std::size_t>& b,
                  const std::vector<std::size_t>& qubits) {
  double dot = 0, na = 0, nb = 0;
  for (std::size_t q : qubits) {
    const double va =
        a[q] == Graph::kUnreachable ? 0.0 : static_cast<double>(a[q]);
    const double vb =
        b[q] == Graph::kUnreachable ? 0.0 : static_cast<double>(b[q]);
    dot += va * vb;
    na += va * va;
    nb += vb * vb;
  }
  if (na == 0 || nb == 0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

std::vector<std::size_t> support_union(const SubcircuitProfile& a,
                                       const SubcircuitProfile& b) {
  std::vector<std::size_t> u;
  std::set_union(a.support.begin(), a.support.end(), b.support.begin(),
                 b.support.end(), std::back_inserter(u));
  return u;
}

}  // namespace

SubcircuitProfile profile_subcircuit(Circuit circ,
                                     std::vector<Clifford2Q> boundary_cliffs) {
  SubcircuitProfile p;
  p.support = circ.support();
  const std::size_t n = circ.num_qubits();

  const auto layers = circ.two_qubit_layers();
  p.num_layers = layers.size();
  p.e_l.assign(n, p.num_layers);
  p.e_r.assign(n, p.num_layers);
  for (std::size_t l = 0; l < layers.size(); ++l)
    for (std::size_t gi : layers[l])
      for (std::size_t q : circ.gate(gi).qubits()) {
        p.e_l[q] = std::min(p.e_l[q], l);
        p.e_r[q] = std::min(p.e_r[q], layers.size() - 1 - l);
      }

  p.head_cliffs = boundary_cliffs;
  p.tail_cliffs = std::move(boundary_cliffs);
  p.head_graph = slice_graph(circ, p.support, /*from_left=*/true);
  p.tail_graph = slice_graph(circ, p.support, /*from_left=*/false);
  p.head_dist = p.head_graph.distance_matrix();
  p.tail_dist = p.tail_graph.distance_matrix();
  p.circ = std::move(circ);
  return p;
}

double depth_cost(const SubcircuitProfile& prev,
                  const SubcircuitProfile& next) {
  const auto qubits = support_union(prev, next);
  bool guard = true;
  double sum = 0;
  for (std::size_t q : qubits) {
    const std::size_t er = prev.e_r[q];
    const std::size_t el = next.e_l[q];
    if (el == 0 && er == 0) guard = false;
    sum += static_cast<double>(er + el);
  }
  if (!guard) sum -= static_cast<double>(qubits.size());
  return sum;
}

std::size_t boundary_cancellations(const SubcircuitProfile& prev,
                                   const SubcircuitProfile& next) {
  const std::size_t limit =
      std::min(prev.tail_cliffs.size(), next.head_cliffs.size());
  std::size_t m = 0;
  while (m < limit && cliffords_match(prev.tail_cliffs[m], next.head_cliffs[m]))
    ++m;
  return m;
}

double assembling_cost(const SubcircuitProfile& prev,
                       const SubcircuitProfile& next,
                       const OrderingOptions& opt) {
  double cost = depth_cost(prev, next);

  const std::size_t m = boundary_cancellations(prev, next);
  if (m > 0) {
    cost -= 2.0 * static_cast<double>(m);
    // Depth credit: a cancelled boundary Clifford2Q that was alone in its
    // boundary 2Q layer frees that layer (§IV-C.2 cases b/c). Our emitted
    // groups place the conjugation CNOTs in dedicated layers whenever they
    // share qubits, so approximate with one layer per cancelled pair per
    // side that has no other boundary-layer occupants.
    auto sole_boundary_layers = [&](const SubcircuitProfile& p) {
      return std::min<std::size_t>(m, p.num_layers);
    };
    cost -= static_cast<double>(sole_boundary_layers(prev) +
                                sole_boundary_layers(next)) /
            2.0;
  }

  if (opt.routing_aware) {
    const auto qubits = support_union(prev, next);
    const auto& d_tail = prev.tail_dist;
    const auto& d_head = next.head_dist;
    double s = 0;
    for (std::size_t q : qubits) s += row_cosine(d_tail[q], d_head[q], qubits);
    cost *= 1.0 / std::max(s, 0.5);
  }
  return cost;
}

std::vector<std::size_t> tetris_order(
    const std::vector<SubcircuitProfile>& profiles,
    const OrderingOptions& opt) {
  // Pre-arrange in descending width; stable to keep input order among ties.
  std::vector<std::size_t> sorted(profiles.size());
  std::iota(sorted.begin(), sorted.end(), std::size_t{0});
  std::stable_sort(sorted.begin(), sorted.end(),
                   [&](std::size_t a, std::size_t b) {
                     return profiles[a].support.size() >
                            profiles[b].support.size();
                   });

  // The pending set is `sorted` threaded on a singly linked skip list: slot
  // s+1 holds sorted[s], slot 0 is the head sentinel, and nxt[s] is the next
  // live slot. The lookahead window is the first `window` live slots in
  // sorted order — identical to the erase-based formulation — but removal is
  // O(1) via the predecessor the window walk already has in hand, instead of
  // an O(pending) vector erase per step.
  std::vector<std::size_t> nxt(sorted.size() + 1);
  for (std::size_t s = 0; s < nxt.size(); ++s) nxt[s] = s + 1;
  std::size_t remaining = sorted.size();

  std::vector<std::size_t> order;
  order.reserve(profiles.size());
  std::size_t cost_evals = 0;
  std::size_t lookahead_hits = 0;
  std::uint32_t cancel_tick = 0;
  while (remaining > 0) {
    std::size_t pick_slot = nxt[0], pick_pred = 0;
    if (!order.empty()) {
      const SubcircuitProfile& last = profiles[order.back()];
      double best = std::numeric_limits<double>::infinity();
      const std::size_t window = std::min(opt.lookahead, remaining);
      std::size_t pred = 0, slot = nxt[0];
      for (std::size_t w = 0; w < window; ++w) {
        opt.cancel.poll(cancel_tick, Stage::Ordering);
        const double c = assembling_cost(last, profiles[sorted[slot - 1]], opt);
        if (c < best) {
          best = c;
          pick_slot = slot;
          pick_pred = pred;
        }
        pred = slot;
        slot = nxt[slot];
      }
      cost_evals += window;
      // A "hit" is a pick the lookahead changed: some deeper-in-window group
      // beat the width-sorted head.
      if (pick_slot != nxt[0]) ++lookahead_hits;
    }
    order.push_back(sorted[pick_slot - 1]);
    nxt[pick_pred] = nxt[pick_slot];
    --remaining;
  }
  trace_count("order.cost_evals", cost_evals);
  trace_count("order.lookahead_hits", lookahead_hits);
  return order;
}

}  // namespace phoenix
