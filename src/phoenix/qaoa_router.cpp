#include "phoenix/qaoa_router.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>
#include "common/error.hpp"

#include "common/trace.hpp"
#include "transpile/peephole.hpp"
#include "transpile/rebase.hpp"

namespace phoenix {

bool is_commuting_two_local(const std::vector<PauliTerm>& terms) {
  if (terms.empty()) return false;
  for (const auto& t : terms)
    if (t.string.weight() != 2) return false;
  for (std::size_t i = 0; i < terms.size(); ++i)
    for (std::size_t j = i + 1; j < terms.size(); ++j)
      if (!terms[i].string.commutes_with(terms[j].string)) return false;
  return true;
}

namespace {

constexpr std::size_t npos = static_cast<std::size_t>(-1);

struct Item {
  std::size_t a, b;
  Pauli oa, ob;
  double theta;
};

/// Interaction-aware placement. `anchor_rank` selects which of the device's
/// lowest-eccentricity nodes hosts the highest-degree logical qubit — the
/// portfolio dimension PHOENIX searches over.
std::vector<std::size_t> place(const Graph& interaction, const Graph& coupling,
                               const std::vector<std::vector<std::size_t>>& dist,
                               std::size_t anchor_rank) {
  const std::size_t n = interaction.num_vertices();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return interaction.degree(x) > interaction.degree(y);
  });

  // Device nodes sorted by eccentricity; the anchor cycles through them.
  std::vector<std::size_t> nodes(coupling.num_vertices());
  std::iota(nodes.begin(), nodes.end(), std::size_t{0});
  std::vector<std::size_t> ecc(coupling.num_vertices());
  for (std::size_t p = 0; p < coupling.num_vertices(); ++p)
    ecc[p] = *std::max_element(dist[p].begin(), dist[p].end());
  std::stable_sort(nodes.begin(), nodes.end(),
                   [&](std::size_t x, std::size_t y) { return ecc[x] < ecc[y]; });

  std::vector<std::size_t> phys(n, npos);
  std::vector<bool> used(coupling.num_vertices(), false);
  bool first = true;
  for (std::size_t q : order) {
    std::size_t best_node = npos;
    double best_score = std::numeric_limits<double>::infinity();
    if (first) {
      best_node = nodes[anchor_rank % nodes.size()];
      first = false;
    } else {
      for (std::size_t p = 0; p < coupling.num_vertices(); ++p) {
        if (used[p]) continue;
        double score = 0;
        bool any = false;
        for (std::size_t nb : interaction.neighbors(q))
          if (phys[nb] != npos) {
            score += static_cast<double>(dist[p][phys[nb]]);
            any = true;
          }
        if (!any) {
          for (std::size_t u = 0; u < coupling.num_vertices(); ++u)
            if (used[u]) score += static_cast<double>(dist[p][u]);
        }
        if (score < best_score) {
          best_score = score;
          best_node = p;
        }
      }
    }
    phys[q] = best_node;
    used[best_node] = true;
  }
  return phys;
}

struct RouteOutcome {
  Circuit circuit;
  std::size_t swaps = 0;
  std::vector<std::size_t> initial_layout, final_layout;
};

/// One routing run: drain adjacent terms, otherwise insert the SWAP with
/// (max unlocked, then hot-edge merge bonus / distance delta in the order
/// selected by `bonus_first`).
RouteOutcome route_once(const std::vector<Item>& items, const Graph& coupling,
                        const std::vector<std::vector<std::size_t>>& dist,
                        std::vector<std::size_t> phys, bool bonus_first) {
  RouteOutcome out;
  out.initial_layout = phys;
  Circuit c(coupling.num_vertices());
  std::vector<Item> pending = items;
  // Edge whose latest gates are a plain ZZ ladder: a SWAP there merges with
  // the ladder CNOTs (net cost 1 CNOT after peephole).
  std::vector<std::vector<bool>> hot(
      coupling.num_vertices(), std::vector<bool>(coupling.num_vertices(), false));
  std::pair<std::size_t, std::size_t> last_swap{npos, npos};
  const std::size_t swap_limit = 100 + 20 * pending.size();

  while (!pending.empty()) {
    bool progress = false;
    std::vector<Item> still;
    for (const auto& t : pending) {
      const std::size_t pa = phys[t.a], pb = phys[t.b];
      if (!coupling.has_edge(pa, pb)) {
        still.push_back(t);
        continue;
      }
      auto pre = [&](Pauli p, std::size_t q) {
        if (p == Pauli::X) c.append(Gate::h(q));
        if (p == Pauli::Y) {
          c.append(Gate::sdg(q));
          c.append(Gate::h(q));
        }
      };
      auto post = [&](Pauli p, std::size_t q) {
        if (p == Pauli::X) c.append(Gate::h(q));
        if (p == Pauli::Y) {
          c.append(Gate::h(q));
          c.append(Gate::s(q));
        }
      };
      pre(t.oa, pa);
      pre(t.ob, pb);
      c.append(Gate::cnot(pa, pb));
      c.append(Gate::rz(pb, 2.0 * t.theta));
      c.append(Gate::cnot(pa, pb));
      post(t.oa, pa);
      post(t.ob, pb);
      hot[pa][pb] = hot[pb][pa] = (t.oa == Pauli::Z && t.ob == Pauli::Z);
      progress = true;
    }
    pending = std::move(still);
    if (pending.empty()) break;
    if (progress) continue;

    std::vector<bool> involved(coupling.num_vertices(), false);
    for (const auto& t : pending) {
      involved[phys[t.a]] = true;
      involved[phys[t.b]] = true;
    }
    std::size_t best_unlocked = 0;
    double best_bonus = -1;
    double best_delta = std::numeric_limits<double>::infinity();
    std::pair<std::size_t, std::size_t> best{npos, npos};
    for (const auto& [pa, pb] : coupling.edges()) {
      if (!involved[pa] && !involved[pb]) continue;
      if (pa == last_swap.first && pb == last_swap.second) continue;
      auto mapped = [&](std::size_t p) {
        if (p == pa) return pb;
        if (p == pb) return pa;
        return p;
      };
      std::size_t unlocked = 0;
      double delta = 0;
      for (const auto& t : pending) {
        const std::size_t d_old = dist[phys[t.a]][phys[t.b]];
        const std::size_t d_new = dist[mapped(phys[t.a])][mapped(phys[t.b])];
        if (d_new == 1) ++unlocked;
        delta += static_cast<double>(d_new) - static_cast<double>(d_old);
      }
      const double bonus = hot[pa][pb] ? 1.0 : 0.0;
      bool better;
      if (bonus_first) {
        better = unlocked > best_unlocked ||
                 (unlocked == best_unlocked &&
                  (bonus > best_bonus ||
                   (bonus == best_bonus && delta < best_delta)));
      } else {
        better = unlocked > best_unlocked ||
                 (unlocked == best_unlocked &&
                  (delta < best_delta - 1e-9 ||
                   (std::abs(delta - best_delta) <= 1e-9 &&
                    bonus > best_bonus)));
      }
      if (better) {
        best_unlocked = unlocked;
        best_bonus = bonus;
        best_delta = delta;
        best = {pa, pb};
      }
    }
    if (best.first == npos)
      throw Error(Stage::Routing, "route_commuting_two_local: no candidate swap");
    c.append(Gate::swap(best.first, best.second));
    ++out.swaps;
    last_swap = best;
    hot[best.first][best.second] = hot[best.second][best.first] = false;
    for (auto& p : phys) {
      if (p == best.first)
        p = best.second;
      else if (p == best.second)
        p = best.first;
    }
    if (out.swaps > swap_limit)
      throw Error(Stage::Routing, "route_commuting_two_local: swap limit");
  }
  out.final_layout = std::move(phys);
  out.circuit = decompose_swaps(c);
  optimize_o3(out.circuit);
  return out;
}

}  // namespace

QaoaRouteResult route_commuting_two_local(const std::vector<PauliTerm>& terms,
                                          std::size_t num_qubits,
                                          const Graph& coupling) {
  if (coupling.num_vertices() < num_qubits)
    throw Error(Stage::Routing, "route_commuting_two_local: device too small");

  std::vector<Item> items;
  Graph interaction(num_qubits);
  for (const auto& t : terms) {
    const auto sup = t.string.support();
    if (sup.size() != 2)
      throw Error(Stage::Routing, "route_commuting_two_local: not 2-local");
    items.push_back({sup[0], sup[1], t.string.op(sup[0]), t.string.op(sup[1]),
                     t.coeff});
    if (!interaction.has_edge(sup[0], sup[1]))
      interaction.add_edge(sup[0], sup[1]);
  }
  const auto dist = coupling.distance_matrix();

  // Placement portfolio: the Tetris-like search applied at routing time —
  // try several anchors, keep the outcome with the fewest 2Q gates (ties:
  // lowest 2Q depth).
  RouteOutcome best;
  bool have = false;
  // Blended selection: 2Q count dominates, depth breaks the near-ties the
  // portfolio produces (both are paper metrics).
  const auto key = [](const RouteOutcome& r) {
    return 2 * r.circuit.count_2q() + r.circuit.depth_2q();
  };
  std::size_t portfolio_runs = 0;
  for (std::size_t anchor = 0; anchor < 12; ++anchor)
    for (bool bonus_first : {true, false}) {
      TraceSpan span("qaoa.route_once");
      ++portfolio_runs;
      RouteOutcome cand =
          route_once(items, coupling, dist,
                     place(interaction, coupling, dist, anchor), bonus_first);
      if (!have || key(cand) < key(best)) {
        best = std::move(cand);
        have = true;
      }
    }
  trace_count("qaoa.portfolio_runs", portfolio_runs);

  QaoaRouteResult res;
  res.circuit = std::move(best.circuit);
  res.num_swaps = best.swaps;
  res.initial_layout = std::move(best.initial_layout);
  res.final_layout = std::move(best.final_layout);
  return res;
}

}  // namespace phoenix
