#include "transpile/rebase.hpp"

#include <algorithm>
#include <vector>

#include "common/trace.hpp"

namespace phoenix {

namespace {

struct Block {
  std::size_t a, b;  // qubit pair, a < b
  std::vector<Gate> gates;
  bool has_2q = false;
};

}  // namespace

Circuit rebase_su4(const Circuit& c) {
  const std::size_t n = c.num_qubits();
  Circuit out(n);

  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::vector<Block> blocks;
  std::vector<std::size_t> open(n, npos);     // qubit -> open block index
  std::vector<std::vector<Gate>> pending(n);  // loose 1Q gates per qubit

  auto close_block = [&](std::size_t bi) {
    Block& blk = blocks[bi];
    if (blk.has_2q) {
      out.append(Gate::su4(blk.a, blk.b, std::move(blk.gates)));
    } else {
      for (Gate& g : blk.gates) out.append(std::move(g));
    }
    open[blk.a] = npos;
    open[blk.b] = npos;
  };

  for (const Gate& g : c.gates()) {
    if (!g.is_two_qubit()) {
      if (open[g.q0] != npos)
        blocks[open[g.q0]].gates.push_back(g);
      else
        pending[g.q0].push_back(g);
      continue;
    }
    const std::size_t a = std::min(g.q0, g.q1), b = std::max(g.q0, g.q1);
    if (open[a] != npos && open[a] == open[b]) {
      Block& blk = blocks[open[a]];
      blk.gates.push_back(g);
      blk.has_2q = true;
      continue;
    }
    if (open[a] != npos) close_block(open[a]);
    if (open[b] != npos) close_block(open[b]);
    Block blk{a, b, {}, true};
    // Loose 1Q gates on either qubit become the block's leading layer.
    for (Gate& lg : pending[a]) blk.gates.push_back(std::move(lg));
    for (Gate& lg : pending[b]) blk.gates.push_back(std::move(lg));
    pending[a].clear();
    pending[b].clear();
    blk.gates.push_back(g);
    open[a] = open[b] = blocks.size();
    blocks.push_back(std::move(blk));
  }
  for (std::size_t q = 0; q < n; ++q)
    if (open[q] != npos) close_block(open[q]);
  for (std::size_t q = 0; q < n; ++q)
    for (Gate& lg : pending[q]) out.append(std::move(lg));
  trace_count("rebase.su4_blocks", out.count(GateKind::Su4));
  return out;
}

Circuit decompose_swaps(const Circuit& c) {
  Circuit out(c.num_qubits());
  for (const Gate& g : c.gates()) {
    if (g.kind == GateKind::Swap) {
      out.append(Gate::cnot(g.q0, g.q1));
      out.append(Gate::cnot(g.q1, g.q0));
      out.append(Gate::cnot(g.q0, g.q1));
    } else {
      out.append(g);
    }
  }
  return out;
}

}  // namespace phoenix
