#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "common/cancel.hpp"

namespace phoenix {

/// Which peephole implementation optimize_o2/optimize_o3 run.
///
/// `Dag` (default) is the wire-DAG worklist engine (src/transpile/dag.hpp):
/// near-linear per fixpoint, no flat-vector rescans or per-pass Circuit
/// rebuilds. `Legacy` is the original quadratic scan, kept for differential
/// testing and as the benchmark baseline (BM_PeepholeDagVsLegacy); the two
/// engines produce bit-identical circuits across the seed example suite
/// (asserted in CI) and equivalent circuits everywhere else.
enum class PeepholeEngine { Dag, Legacy };

/// True when the two gates commute under a conservative, syntactic rule set
/// (disjoint supports, both Z-diagonal, diagonal-on-control / X-like-on-
/// target versus CNOT, CNOTs sharing only a control or only a target).
/// Used by the commutation-aware cancellation passes of both engines; false
/// negatives only cost optimization opportunities, never correctness.
bool gates_commute(const Gate& a, const Gate& b);

/// Cancel adjacent inverse pairs and merge adjacent same-axis rotations,
/// looking through commuting gates. Iterates to a fixpoint (legacy scan).
/// Returns the number of gates removed; the circuit is only rebuilt when
/// something was removed.
std::size_t cancel_gates(Circuit& c);

/// Fuse maximal runs of single-qubit gates into at most three rotations
/// (Rz·Ry·Rz from the 2x2 product). Drops identity-equivalent runs entirely.
/// Global phases are discarded. Returns the number of gates removed (may be
/// negative-free: never increases the count).
std::size_t fuse_single_qubit_runs(Circuit& c);

/// Fuse one ordered run of >= 2 single-qubit gates (all on the same qubit)
/// into at most three rotations: single-axis Rz / Rx forms preferred, the
/// generic ZYZ triple as fallback, identity-equivalent runs fuse to nothing.
/// Emitted angles are wrapped into (−π, π]. Returns true and fills `out`
/// when the replacement is strictly shorter than the run; false otherwise
/// (`out` is unspecified then). Shared by the legacy and DAG engines so
/// their fusion decisions are identical by construction.
bool fuse_1q_run(const std::vector<Gate>& run, std::vector<Gate>& out);

/// The "O3-like" logical optimization pipeline standing in for Qiskit O3:
/// alternate 1Q fusion and commutation-aware cancellation to a fixpoint.
/// This is what the paper appends to Paulihedral/Tetris/PHOENIX outputs.
/// `cancel` is polled inside both engines' rewrite loops; a tripped token
/// throws Error (Stage::Peephole) and leaves `c` unspecified but valid.
void optimize_o3(Circuit& c, PeepholeEngine engine = PeepholeEngine::Dag,
                 const CancelToken& cancel = {});

/// Lighter "O2-like" pipeline: cancellation only (no resynthesis).
void optimize_o2(Circuit& c, PeepholeEngine engine = PeepholeEngine::Dag,
                 const CancelToken& cancel = {});

}  // namespace phoenix
