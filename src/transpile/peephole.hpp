#pragma once

#include "circuit/circuit.hpp"

namespace phoenix {

/// True when the two gates commute under a conservative, syntactic rule set
/// (disjoint supports, both Z-diagonal, diagonal-on-control / X-like-on-
/// target versus CNOT, CNOTs sharing only a control or only a target).
/// Used by the commutation-aware cancellation pass; false negatives only
/// cost optimization opportunities, never correctness.
bool gates_commute(const Gate& a, const Gate& b);

/// Cancel adjacent inverse pairs and merge adjacent same-axis rotations,
/// looking through commuting gates. Iterates to a fixpoint. Returns the
/// number of gates removed.
std::size_t cancel_gates(Circuit& c);

/// Fuse maximal runs of single-qubit gates into at most three rotations
/// (Rz·Ry·Rz from the 2x2 product). Drops identity-equivalent runs entirely.
/// Global phases are discarded. Returns the number of gates removed (may be
/// negative-free: never increases the count).
std::size_t fuse_single_qubit_runs(Circuit& c);

/// The "O3-like" logical optimization pipeline standing in for Qiskit O3:
/// alternate 1Q fusion and commutation-aware cancellation to a fixpoint.
/// This is what the paper appends to Paulihedral/Tetris/PHOENIX outputs.
void optimize_o3(Circuit& c);

/// Lighter "O2-like" pipeline: cancellation only (no resynthesis).
void optimize_o2(Circuit& c);

}  // namespace phoenix
