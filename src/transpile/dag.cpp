#include "transpile/dag.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <queue>

#include "common/angles.hpp"
#include "common/trace.hpp"
#include "transpile/peephole.hpp"

namespace phoenix {

CircuitDag::CircuitDag(const Circuit& c)
    : wires_head_(c.num_qubits(), kNull), wires_tail_(c.num_qubits(), kNull) {
  nodes_.reserve(c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    const Gate& g = c.gate(i);
    Node n;
    n.gate = g;
    n.key = static_cast<std::uint64_t>(i) << 32;
    const NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(std::move(n));
    ++alive_count_;
    const std::size_t nq = g.is_two_qubit() ? 2 : 1;
    for (std::size_t s = 0; s < nq; ++s) {
      const std::size_t q = s == 0 ? g.q0 : g.q1;
      Node& node = nodes_[id];
      node.prev[s] = wires_tail_[q];
      if (wires_tail_[q] != kNull) {
        Node& t = nodes_[wires_tail_[q]];
        t.next[t.gate.q0 == q ? 0 : 1] = id;
      } else {
        wires_head_[q] = id;
      }
      wires_tail_[q] = id;
    }
  }
}

void CircuitDag::erase(NodeId id) {
  Node& n = nodes_[id];
  const std::size_t nq = n.gate.is_two_qubit() ? 2 : 1;
  for (std::size_t s = 0; s < nq; ++s) {
    const std::size_t q = s == 0 ? n.gate.q0 : n.gate.q1;
    const NodeId p = n.prev[s], x = n.next[s];
    if (p != kNull)
      nodes_[p].next[slot(p, q)] = x;
    else
      wires_head_[q] = x;
    if (x != kNull)
      nodes_[x].prev[slot(x, q)] = p;
    else
      wires_tail_[q] = p;
  }
  n.alive = false;
  --alive_count_;
}

CircuitDag::NodeId CircuitDag::insert_1q_before(const Gate& g, std::size_t q,
                                                NodeId before, OrderKey k) {
  Node n;
  n.gate = g;
  n.key = (k.first << 32) | (k.second & 0xffffffffu);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  const NodeId prev = before != kNull ? nodes_[before].prev[slot(before, q)]
                                      : wires_tail_[q];
  n.prev[0] = prev;
  n.next[0] = before;
  nodes_.push_back(std::move(n));
  ++alive_count_;
  if (prev != kNull)
    nodes_[prev].next[slot(prev, q)] = id;
  else
    wires_head_[q] = id;
  if (before != kNull)
    nodes_[before].prev[slot(before, q)] = id;
  else
    wires_tail_[q] = id;
  return id;
}

Circuit CircuitDag::to_circuit() const {
  std::vector<NodeId> order;
  order.reserve(alive_count_);
  for (NodeId id = 0; id < nodes_.size(); ++id)
    if (nodes_[id].alive) order.push_back(id);
  // Without fusion inserts the creation order is already the key order
  // (primary = original index); only re-sort when insertions disturbed it.
  const auto by_key = [&](NodeId a, NodeId b) { return key64(a) < key64(b); };
  if (!std::is_sorted(order.begin(), order.end(), by_key))
    std::sort(order.begin(), order.end(), by_key);
  Circuit out(num_qubits());
  for (NodeId id : order) out.append(nodes_[id].gate);
  return out;
}

// --- worklist peephole engine ----------------------------------------------

namespace {

bool shares_qubit(const Gate& a, const Gate& b) {
  if (b.acts_on(a.q0)) return true;
  return a.is_two_qubit() && b.acts_on(a.q1);
}

/// Kinds no gate can commute past on a shared wire under gates_commute: H
/// and Y are neither Z-diagonal nor X-like and carry no mergeable rotation
/// axis, and Swap/Su4 match no 2Q commutation rule. A backward seer walk
/// that passes one of these can stop scanning that wire — every candidate
/// behind it would have to commute with it, and none can.
bool blocks_every_seer(GateKind k) {
  return k == GateKind::H || k == GateKind::Y || k == GateKind::Swap ||
         k == GateKind::Su4;
}

}  // namespace

/// The rewrite engine. The worklist is a min-heap over (round, order key):
/// one round corresponds to one full pass of the legacy fixpoint, and within
/// a round nodes pop in ascending key order — the legacy left-to-right scan.
/// Rewrites re-enqueue exactly the nodes whose scan outcome may have changed
/// ("seers" of the rewritten slots), scheduled into the current round when
/// they lie ahead of the pop cursor (legacy finds them later in the same
/// pass) and into the next round otherwise (legacy finds them on the next
/// pass). This keeps the engine's pairing decisions — which gate cancels
/// with which — bit-identical to the legacy engine while never rescanning
/// quiescent regions.
class DagPeephole {
 public:
  explicit DagPeephole(CircuitDag& dag, const CancelToken& cancel = {})
      : dag_(dag), cancel_(cancel), in_queue_(dag.nodes_.size(), false) {}

  DagOptStats stats;

  /// Drain cancellation/merge rewrites to a fixpoint. Every alive node is
  /// seeded once on the first drain; later drains start from the nodes the
  /// fusion sweep touched (each fusion round begins a fresh legacy pass), so
  /// regions already at fixpoint are never rescanned.
  void cancel_to_fixpoint() {
    if (!seeded_) {
      seeded_ = true;
      // Round 0 is one legacy pass over every alive node in key order. A
      // linear sweep does that without paying 2N heap operations: nodes
      // behind the sweep cursor re-enqueue into round 1 (the heap), nodes
      // ahead are left for the sweep itself to reach. Anything queued before
      // seeding (an O3 fusion sweep precedes the first drain) is covered by
      // the sweep too — resetting the flags turns those stale heap entries
      // into pop-time no-ops.
      std::vector<CircuitDag::NodeId> order;
      order.reserve(dag_.size());
      for (CircuitDag::NodeId id = 0; id < dag_.nodes_.size(); ++id)
        if (dag_.nodes_[id].alive) order.push_back(id);
      const auto by_key = [this](CircuitDag::NodeId a, CircuitDag::NodeId b) {
        return dag_.key64(a) < dag_.key64(b);
      };
      if (!std::is_sorted(order.begin(), order.end(), by_key))
        std::sort(order.begin(), order.end(), by_key);
      std::fill(in_queue_.begin(), in_queue_.end(), false);
      sweeping_ = true;
      in_pop_ = true;
      round_ = 0;
      for (CircuitDag::NodeId id : order) {
        cancel_.poll(cancel_tick_, Stage::Peephole);
        if (!dag_.alive(id)) continue;
        cursor_ = dag_.key64(id);
        walk_forward(id);
      }
      sweeping_ = false;
      round_ = 1;
    }
    while (!heap_.empty()) {
      cancel_.poll(cancel_tick_, Stage::Peephole);
      const HeapEntry top = heap_.top();
      heap_.pop();
      const CircuitDag::NodeId u = top.second;
      if (u >= in_queue_.size() || !in_queue_[u]) continue;
      in_queue_[u] = false;
      if (!dag_.alive(u)) continue;
      round_ = top.first.first;
      cursor_ = dag_.key64(u);
      in_pop_ = true;
      // A rewrite always erases u (cancellation kills both sides, a merge
      // folds the earlier gate into the later one), so the first hit ends
      // this node's turn.
      walk_forward(u);
    }
    in_pop_ = false;
    ++round_;  // the next drain (after fusion) is a fresh legacy pass
  }

  /// One 1Q-run fusion sweep over all wires (every maximal run of >= 2
  /// single-qubit gates is offered to fuse_1q_run). Affected nodes are
  /// enqueued for the next cancellation drain. Returns gates removed.
  std::size_t fuse_runs() {
    std::size_t removed = 0;
    std::vector<CircuitDag::NodeId> run;
    for (std::size_t q = 0; q < dag_.num_qubits(); ++q) {
      run.clear();
      CircuitDag::NodeId id = dag_.wire_head(q);
      while (true) {
        cancel_.poll(cancel_tick_, Stage::Peephole);
        const bool is_1q = id != CircuitDag::kNull && !dag_.gate(id).is_two_qubit();
        if (is_1q) {
          run.push_back(id);
          id = dag_.next_on(id, q);
          continue;
        }
        if (run.size() >= 2) removed += fuse_run(q, run);
        run.clear();
        if (id == CircuitDag::kNull) break;
        id = dag_.next_on(id, q);
      }
    }
    return removed;
  }

 private:
  /// ((round, packed order key), node) — lexicographic min-heap pop order.
  using HeapEntry =
      std::pair<std::pair<std::uint64_t, std::uint64_t>, CircuitDag::NodeId>;

  void enqueue(CircuitDag::NodeId id) {
    if (id == CircuitDag::kNull) return;
    if (id >= in_queue_.size()) in_queue_.resize(id + 1, false);
    if (in_queue_[id] || !dag_.alive(id)) return;
    const std::uint64_t k = dag_.key64(id);
    // During the seeding sweep every node ahead of the cursor will be
    // visited by the sweep itself — queueing it would process it twice.
    if (sweeping_ && k > cursor_) return;
    in_queue_[id] = true;
    std::uint64_t r = round_;
    if (in_pop_ && k <= cursor_) ++r;  // legacy sees it next pass
    heap_.push({{r, k}, id});
    stats.worklist_max = std::max(stats.worklist_max, heap_.size());
  }

  /// Re-enqueue every earlier node whose forward scan could reach the slot
  /// of `x` (called while x is still linked): walking backward over x's
  /// wires, a node w "sees" the slot iff it commutes with every gate passed
  /// between w and x that shares a qubit with w — exactly the gates the
  /// legacy scan from w would have to look through. Over-enqueueing is
  /// harmless (a re-examined node repeats its blocked/no-partner outcome);
  /// missing a seer would desynchronize the engines, so the check mirrors
  /// the walk's commutation rule verbatim.
  void enqueue_seers(CircuitDag::NodeId x) {
    const Gate& gx = dag_.gate(x);
    const std::size_t qa = gx.q0;
    const std::size_t qb = gx.is_two_qubit() ? gx.q1 : gx.q0;
    CircuitDag::NodeId wa = dag_.prev_on(x, qa);
    CircuitDag::NodeId wb =
        gx.is_two_qubit() ? dag_.prev_on(x, qb) : CircuitDag::kNull;
    seg_.clear();
    for (std::size_t n = 0; n < kCommutationWindow; ++n) {
      CircuitDag::NodeId w;
      if (wa != CircuitDag::kNull &&
          (wb == CircuitDag::kNull || dag_.key64(wb) < dag_.key64(wa))) {
        w = wa;
      } else {
        w = wb;
      }
      if (w == CircuitDag::kNull) return;
      const Gate& gw = dag_.gate(w);
      bool sees = true;
      for (CircuitDag::NodeId s : seg_) {
        if (shares_qubit(gw, dag_.gate(s)) &&
            !gates_commute(gw, dag_.gate(s))) {
          sees = false;
          break;
        }
      }
      if (sees) enqueue(w);
      seg_.push_back(w);
      const bool wall = blocks_every_seer(gw.kind);
      if (w == wa) wa = wall ? CircuitDag::kNull : dag_.prev_on(w, qa);
      if (w == wb) wb = wall ? CircuitDag::kNull : dag_.prev_on(w, qb);
    }
  }

  /// Same-qubit-set test matching the legacy engine's.
  static bool same_qubit_set(const Gate& a, const Gate& b) {
    if (a.is_two_qubit() != b.is_two_qubit()) return false;
    if (!a.is_two_qubit()) return a.q0 == b.q0;
    return (a.q0 == b.q0 && a.q1 == b.q1) || (a.q0 == b.q1 && a.q1 == b.q0);
  }

  /// Attempt the legacy rewrite between wire-ordered partners (`early`
  /// precedes `late`). Returns true when a rewrite fired (both inputs may be
  /// dead afterwards).
  bool try_rewrite(CircuitDag::NodeId early, CircuitDag::NodeId late) {
    Gate& ge = dag_.gate(early);
    Gate& gl = dag_.gate(late);
    if (!same_qubit_set(ge, gl)) return false;
    if (ge.is_inverse_of(gl)) {
      enqueue_seers(early);
      dag_.erase(early);
      enqueue_seers(late);  // after erase(early): early no longer blocks
      dag_.erase(late);
      stats.removed += 2;
      ++stats.rewrites;
      return true;
    }
    if (ge.kind == gl.kind && gate_has_param(ge.kind) && ge.q0 == gl.q0) {
      // Merge same-axis rotations into the later gate (legacy keeps the
      // later position); the wrapped sum keeps angles in (−π, π] and turns
      // a ±2π sum into a droppable identity.
      gl.param = wrap_angle(gl.param + ge.param);
      enqueue_seers(early);
      dag_.erase(early);
      ++stats.removed;
      enqueue_seers(late);  // the survivor's param changed under its seers
      if (std::abs(gl.param) < 1e-12) {
        dag_.erase(late);
        ++stats.removed;
      } else {
        enqueue(late);
      }
      ++stats.rewrites;
      return true;
    }
    return false;
  }

  /// Walk forward from `u` along its wires, looking past commuting gates
  /// (window-bounded) for a cancellation/merge partner. Exactly the legacy
  /// scan from index i: only gates sharing a qubit with u are inspected, the
  /// walk continues through gates that commute with u, and stops at the
  /// first blocker. Returns true when a rewrite fired.
  bool walk_forward(CircuitDag::NodeId u) {
    const Gate& gu = dag_.gate(u);
    const std::size_t qa = gu.q0;
    const std::size_t qb = gu.is_two_qubit() ? gu.q1 : gu.q0;
    CircuitDag::NodeId wa = dag_.next_on(u, qa);
    CircuitDag::NodeId wb =
        gu.is_two_qubit() ? dag_.next_on(u, qb) : CircuitDag::kNull;
    for (std::size_t n = 0; n < kCommutationWindow; ++n) {
      CircuitDag::NodeId w;
      if (wa != CircuitDag::kNull &&
          (wb == CircuitDag::kNull || dag_.key64(wa) < dag_.key64(wb))) {
        w = wa;
      } else {
        w = wb;
      }
      if (w == CircuitDag::kNull) return false;
      if (try_rewrite(u, w)) return true;
      if (!gates_commute(gu, dag_.gate(w))) return false;
      if (w == wa) wa = dag_.next_on(w, qa);
      if (w == wb) wb = dag_.next_on(w, qb);
    }
    return false;
  }

  /// Replace one maximal 1Q run on wire q (>= 2 nodes). Returns gates
  /// removed.
  std::size_t fuse_run(std::size_t q,
                       const std::vector<CircuitDag::NodeId>& run) {
    run_gates_.clear();
    for (CircuitDag::NodeId id : run) run_gates_.push_back(dag_.gate(id));
    if (!fuse_1q_run(run_gates_, fused_)) return 0;
    // Seers of the run-head slot are computed against the pre-fusion wire
    // (their path to the slot is unchanged by the replacement itself), then
    // replacement nodes take the head's position: primary key inherited,
    // strictly increasing secondaries keep them ordered among themselves and
    // ahead of everything the head preceded.
    const CircuitDag::NodeId anchor = run.front();
    enqueue_seers(anchor);
    const std::uint64_t primary = dag_.key(anchor).first;
    for (const Gate& g : fused_) {
      const CircuitDag::NodeId id =
          dag_.insert_1q_before(g, q, anchor, {primary, ++fuse_seq_});
      enqueue(id);
    }
    for (CircuitDag::NodeId id : run) dag_.erase(id);
    ++stats.rewrites;
    stats.removed += run.size() - fused_.size();
    return run.size() - fused_.size();
  }

  CircuitDag& dag_;
  CancelToken cancel_;
  std::uint32_t cancel_tick_ = 0;
  bool seeded_ = false;
  bool in_pop_ = false;
  bool sweeping_ = false;
  std::uint64_t round_ = 0;
  std::uint64_t cursor_ = 0;
  std::vector<bool> in_queue_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap_;
  std::uint64_t fuse_seq_ = 0;
  std::vector<CircuitDag::NodeId> seg_;
  std::vector<Gate> run_gates_, fused_;
};

DagOptStats dag_optimize(Circuit& c, bool with_fusion,
                         const CancelToken& cancel) {
  DagOptStats total;
  if (c.size() < 2) return total;
  CircuitDag dag(c);
  DagPeephole engine(dag, cancel);
  // Same alternation as the legacy pipelines (fusion can expose new
  // cancellations and vice versa), but with no flat-vector rebuilds between
  // rounds: the DAG carries rewrite state across the whole fixpoint.
  for (int iter = 0; iter < 20; ++iter) {
    cancel.check(Stage::Peephole);
    const std::size_t before = engine.stats.removed;
    if (with_fusion) engine.fuse_runs();
    engine.cancel_to_fixpoint();
    if (engine.stats.removed == before) break;
  }
  total = engine.stats;
  if (total.removed > 0) c = dag.to_circuit();
  trace_count("peephole.dag.rewrites", total.rewrites);
  trace_count("peephole.dag.worklist_max", total.worklist_max);
  return total;
}

}  // namespace phoenix
