#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/cancel.hpp"

namespace phoenix {

/// Circuit dependency DAG with one doubly-linked wire per qubit.
///
/// Every node holds one gate plus prev/next links for each operand qubit, so
/// the structure is simultaneously a dependency DAG (a gate depends on the
/// wire-predecessors of each of its qubits) and n_q parallel doubly-linked
/// lists. This is the substrate of the worklist peephole engine
/// (dag_optimize): a rewrite only ever inspects wire-adjacent neighbors, and
/// erase/splice are O(1) per operand — no flat-vector rescans or per-pass
/// Circuit rebuilds.
///
/// Determinism. Each node carries an order key (primary, secondary):
/// original nodes get (circuit index, 0); replacement nodes minted by 1Q-run
/// fusion inherit the primary of the node they replace and draw strictly
/// increasing secondaries. Keys strictly increase along every wire (rewrites
/// preserve this), so sorting the alive nodes by key is a topological order
/// — and exactly the order the legacy flat-vector passes would have left the
/// gates in, which keeps the two engines bit-identical on circuits where
/// their rewrite decisions coincide.
class CircuitDag {
 public:
  using NodeId = std::uint32_t;
  static constexpr NodeId kNull = static_cast<NodeId>(-1);

  /// (primary, secondary) emission key; lexicographic order.
  using OrderKey = std::pair<std::uint64_t, std::uint64_t>;

  explicit CircuitDag(const Circuit& c);

  std::size_t num_qubits() const { return wires_head_.size(); }
  /// Nodes currently alive (== gates of to_circuit()).
  std::size_t size() const { return alive_count_; }

  const Gate& gate(NodeId id) const { return nodes_[id].gate; }
  Gate& gate(NodeId id) { return nodes_[id].gate; }
  bool alive(NodeId id) const { return nodes_[id].alive; }
  OrderKey key(NodeId id) const {
    return {nodes_[id].key >> 32, nodes_[id].key & 0xffffffffu};
  }
  /// Packed (primary << 32 | secondary) form of key(): same lexicographic
  /// order in a single compare. Both components stay below 2^32 (primary is
  /// a circuit index, secondary a fusion sequence number).
  std::uint64_t key64(NodeId id) const { return nodes_[id].key; }

  NodeId wire_head(std::size_t q) const { return wires_head_[q]; }
  NodeId wire_tail(std::size_t q) const { return wires_tail_[q]; }
  /// Wire-successor / -predecessor of `id` on qubit `q` (must be an operand
  /// of the node's gate). kNull at the wire boundary.
  NodeId next_on(NodeId id, std::size_t q) const {
    return nodes_[id].next[slot(id, q)];
  }
  NodeId prev_on(NodeId id, std::size_t q) const {
    return nodes_[id].prev[slot(id, q)];
  }

  /// Unlink `id` from every wire it sits on and mark it dead. O(1) per
  /// operand. The node's storage stays (ids are stable); it is simply
  /// skipped at emission.
  void erase(NodeId id);

  /// Insert a new node carrying `g` (a 1Q gate on qubit q) into wire q
  /// immediately before `before` (kNull appends at the tail), with the given
  /// order key. Returns the new node's id.
  NodeId insert_1q_before(const Gate& g, std::size_t q, NodeId before,
                          OrderKey k);

  /// Emission: alive nodes sorted by order key — a deterministic topological
  /// order (keys strictly increase along every wire).
  Circuit to_circuit() const;

 private:
  struct Node {
    Gate gate;
    std::uint64_t key = 0;  ///< packed order key, see key64()
    NodeId prev[2] = {kNull, kNull};
    NodeId next[2] = {kNull, kNull};
    bool alive = true;
  };

  /// Operand slot of qubit q in node `id` (0 for q0, 1 for q1).
  std::size_t slot(NodeId id, std::size_t q) const {
    return nodes_[id].gate.q0 == q ? 0 : 1;
  }

  std::vector<Node> nodes_;
  std::vector<NodeId> wires_head_, wires_tail_;
  std::size_t alive_count_ = 0;

  friend class DagPeephole;
};

/// Statistics of one dag_optimize run (mirrored into the trace counters
/// peephole.dag.rewrites / peephole.dag.worklist_max when tracing is on).
struct DagOptStats {
  std::size_t removed = 0;       ///< gates removed (legacy counting parity)
  std::size_t rewrites = 0;      ///< erase/merge/fuse rewrite events
  std::size_t worklist_max = 0;  ///< peak worklist size
};

/// Worklist-driven peephole over the wire DAG: cancellation of inverse pairs
/// and same-axis rotation merges that look through commuting gates (bounded
/// by kCommutationWindow wire steps), plus — when `with_fusion` — 1Q-run
/// fusion, alternated to a fixpoint. Semantically equivalent to the legacy
/// optimize_o2/optimize_o3 flat-vector passes, near-linear per fixpoint
/// instead of O(n²·passes). Replaces `c` with the optimized circuit.
/// `cancel` is polled per worklist pop (amortized); a tripped token throws
/// Error (Stage::Peephole) and leaves `c` untouched.
DagOptStats dag_optimize(Circuit& c, bool with_fusion,
                         const CancelToken& cancel = {});

/// How many wire steps a cancellation walk may look past commuting gates.
/// The legacy engine scans unbounded; anything beyond this window is
/// vanishingly rare in practice and bounding it caps the worst case.
inline constexpr std::size_t kCommutationWindow = 128;

}  // namespace phoenix
