#include "transpile/peephole.hpp"

#include <cmath>
#include <complex>
#include <vector>

#include "common/angles.hpp"
#include "common/trace.hpp"
#include "sim/statevector.hpp"
#include "transpile/dag.hpp"

namespace phoenix {

namespace {

bool is_z_diagonal(const Gate& g) {
  switch (g.kind) {
    case GateKind::I:
    case GateKind::Z:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::T:
    case GateKind::Tdg:
    case GateKind::Rz:
    case GateKind::Cz:
      return true;
    default:
      return false;
  }
}

bool is_x_like(const Gate& g) {
  return g.kind == GateKind::X || g.kind == GateKind::Rx ||
         g.kind == GateKind::SqrtX || g.kind == GateKind::SqrtXdg;
}

bool shares_qubit(const Gate& a, const Gate& b) {
  // Hot path for both peephole engines — must not allocate (Gate::qubits()
  // returns a vector).
  if (b.acts_on(a.q0)) return true;
  return a.is_two_qubit() && b.acts_on(a.q1);
}

bool same_qubit_set(const Gate& a, const Gate& b) {
  if (a.is_two_qubit() != b.is_two_qubit()) return false;
  if (!a.is_two_qubit()) return a.q0 == b.q0;
  return (a.q0 == b.q0 && a.q1 == b.q1) || (a.q0 == b.q1 && a.q1 == b.q0);
}

}  // namespace

bool gates_commute(const Gate& a, const Gate& b) {
  if (!shares_qubit(a, b)) return true;
  if (is_z_diagonal(a) && is_z_diagonal(b)) return true;

  // CNOT commutation rules.
  auto cnot_rules = [](const Gate& cx, const Gate& o) {
    if (!o.is_two_qubit()) {
      if (o.q0 == cx.q0) return is_z_diagonal(o);
      if (o.q0 == cx.q1) return is_x_like(o);
      return true;
    }
    if (o.kind == GateKind::Cnot) {
      const bool share_control = o.q0 == cx.q0;
      const bool share_target = o.q1 == cx.q1;
      const bool cross = o.q0 == cx.q1 || o.q1 == cx.q0;
      if (cross) return false;
      return share_control || share_target;
    }
    if (o.kind == GateKind::Cz)
      return !(o.q0 == cx.q1 || o.q1 == cx.q1);  // CZ diagonal: control ok
    return false;
  };
  if (a.kind == GateKind::Cnot) return cnot_rules(a, b);
  if (b.kind == GateKind::Cnot) return cnot_rules(b, a);

  if (a.kind == GateKind::Cz || b.kind == GateKind::Cz) {
    const Gate& cz = a.kind == GateKind::Cz ? a : b;
    const Gate& o = a.kind == GateKind::Cz ? b : a;
    if (!o.is_two_qubit()) return is_z_diagonal(o);
    (void)cz;
    return false;
  }
  // Same-axis 1Q rotations on the same qubit commute.
  if (!a.is_two_qubit() && !b.is_two_qubit() && a.q0 == b.q0 &&
      a.kind == b.kind && gate_has_param(a.kind))
    return true;
  return false;
}

namespace {

/// Legacy cancellation fixpoint over a flat gate vector with liveness flags.
/// Mutates `gates`/`alive` in place; the caller owns the single copy-in and
/// the (conditional) rebuild, so repeated rounds never re-copy the vector.
/// `cancel` is polled per scan start, so even a pathological fixpoint
/// aborts within one forward scan of a tripped token.
std::size_t cancel_fixpoint(std::vector<Gate>& gates, std::vector<bool>& alive,
                            const CancelToken& cancel, std::uint32_t& tick) {
  std::size_t removed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < gates.size(); ++i) {
      cancel.poll(tick, Stage::Peephole);
      if (!alive[i]) continue;
      for (std::size_t j = i + 1; j < gates.size(); ++j) {
        if (!alive[j]) continue;
        if (!shares_qubit(gates[i], gates[j])) continue;
        if (same_qubit_set(gates[i], gates[j]) &&
            gates[i].is_inverse_of(gates[j])) {
          alive[i] = alive[j] = false;
          removed += 2;
          changed = true;
          break;
        }
        if (same_qubit_set(gates[i], gates[j]) && gates[i].kind == gates[j].kind &&
            gate_has_param(gates[i].kind) && gates[i].q0 == gates[j].q0) {
          // Merge same-axis rotations; the wrapped sum keeps angles in
          // (−π, π] and turns a ±2π sum into a droppable identity.
          gates[j].param = wrap_angle(gates[j].param + gates[i].param);
          alive[i] = false;
          ++removed;
          if (std::abs(gates[j].param) < 1e-12) {
            alive[j] = false;
            ++removed;
          }
          changed = true;
          break;
        }
        if (gates_commute(gates[i], gates[j])) continue;
        break;  // blocked by a non-commuting gate
      }
    }
  }
  return removed;
}

Circuit compact(std::size_t num_qubits, const std::vector<Gate>& gates,
                const std::vector<bool>& alive) {
  Circuit out(num_qubits);
  for (std::size_t i = 0; i < gates.size(); ++i)
    if (alive[i]) out.append(gates[i]);
  return out;
}

}  // namespace

std::size_t cancel_gates(Circuit& c) {
  std::vector<Gate> gates = c.gates();
  std::vector<bool> alive(gates.size(), true);
  std::uint32_t tick = 0;
  const std::size_t removed = cancel_fixpoint(gates, alive, {}, tick);
  if (removed == 0) return 0;  // nothing changed: skip the rebuild
  c = compact(c.num_qubits(), gates, alive);
  return removed;
}

namespace {

/// ZYZ angles of a 2x2 unitary, global phase discarded:
/// U ~ Rz(alpha) · Ry(beta) · Rz(gamma).
struct Zyz {
  double alpha, beta, gamma;
};

Zyz zyz_decompose(const std::array<Complex, 4>& u) {
  const double c = std::abs(u[0]);
  const double s = std::abs(u[2]);
  Zyz r{};
  r.beta = 2.0 * std::atan2(s, c);
  if (s < 1e-12) {
    r.gamma = 0.0;
    r.alpha = std::arg(u[3]) - std::arg(u[0]);
  } else if (c < 1e-12) {
    r.gamma = 0.0;
    r.alpha = std::arg(u[2]) - std::arg(u[1]) - M_PI;
  } else {
    const double sum = std::arg(u[3]) - std::arg(u[0]);   // alpha + gamma
    const double diff = std::arg(u[2]) - std::arg(u[1]) - M_PI;  // alpha - gamma
    r.alpha = 0.5 * (sum + diff);
    r.gamma = 0.5 * (sum - diff);
    // sum and diff are each only determined mod 2π; an inconsistent pair of
    // representatives flips the off-diagonal sign of the reconstruction.
    // Verify against u (phase-aligned on the largest diagonal entry) and
    // repair with (alpha, gamma) -> (alpha + π, gamma − π), which flips the
    // off-diagonals back while leaving the diagonal untouched.
    const Complex d00 = std::polar(1.0, -(r.alpha + r.gamma) / 2) * c;
    const Complex o10 = std::polar(1.0, (r.alpha - r.gamma) / 2) * s;
    const Complex phase = u[0] / d00;
    if (std::abs(o10 * phase - u[2]) > 1e-9) {
      r.alpha += M_PI;
      r.gamma -= M_PI;
    }
  }
  return r;
}

std::array<Complex, 4> mat_mul2(const std::array<Complex, 4>& a,
                                const std::array<Complex, 4>& b) {
  return {a[0] * b[0] + a[1] * b[2], a[0] * b[1] + a[1] * b[3],
          a[2] * b[0] + a[3] * b[2], a[2] * b[1] + a[3] * b[3]};
}

bool is_identity_up_to_phase(const std::array<Complex, 4>& u) {
  return std::abs(u[1]) < 1e-12 && std::abs(u[2]) < 1e-12 &&
         std::abs(u[0] - u[3]) < 1e-12;
}

}  // namespace

bool fuse_1q_run(const std::vector<Gate>& run, std::vector<Gate>& out) {
  out.clear();
  std::array<Complex, 4> u = {1, 0, 0, 1};
  for (const Gate& g : run) u = mat_mul2(gate_matrix_1q(g), u);
  const std::size_t q = run.front().q0;
  if (!is_identity_up_to_phase(u)) {
    // Prefer single-axis forms: a diagonal run becomes one Rz and an
    // X-basis-diagonal run (e.g. the H·S†·H left over when adjacent Pauli
    // gadgets swap an X corner for a Y corner) becomes one Rx. Both shapes
    // commute through CNOTs on the appropriate side, unblocking further
    // 2Q cancellation; the generic fallback is the ZYZ triple.
    //
    // All emitted angles are wrapped into (−π, π]: the raw arg arithmetic
    // can land anywhere in (−2π, 2π), and a run fusing to a near-±2π
    // rotation (Rz(2π − ε)) is the identity up to global phase — after
    // wrapping it falls under the drop threshold instead of surviving as
    // a full-turn gate.
    auto push_if_nonzero = [&](GateKind kind, double angle) {
      angle = wrap_angle(angle);
      if (std::abs(angle) > 1e-12) out.push_back(Gate(kind, q, angle));
    };
    if (std::abs(u[1]) < 1e-12 && std::abs(u[2]) < 1e-12) {
      push_if_nonzero(GateKind::Rz, std::arg(u[3]) - std::arg(u[0]));
    } else if (std::abs(u[0] - u[3]) < 1e-12 && std::abs(u[1] - u[2]) < 1e-12 &&
               std::abs(std::real(u[1] * std::conj(u[0]))) < 1e-12) {
      // u ~ e^{iφ} Rx(θ): equal diagonal, equal purely-imaginary-ratio
      // off-diagonal. θ from |entries|, sign from Im(u01/u00).
      const double theta =
          2.0 * std::atan2(std::abs(u[1]), std::abs(u[0])) *
          (std::imag(u[1] * std::conj(u[0])) < 0 ? 1.0 : -1.0);
      push_if_nonzero(GateKind::Rx, theta);
    } else {
      const Zyz a = zyz_decompose(u);
      push_if_nonzero(GateKind::Rz, a.gamma);
      push_if_nonzero(GateKind::Ry, a.beta);
      push_if_nonzero(GateKind::Rz, a.alpha);
    }
  }
  return out.size() < run.size();
}

std::size_t fuse_single_qubit_runs(Circuit& c) {
  const auto& gates = c.gates();
  const std::size_t n = c.num_qubits();
  std::vector<std::vector<std::size_t>> runs;  // gate indices per closed run
  std::vector<std::vector<std::size_t>> open(n);

  auto close_run = [&](std::size_t q) {
    if (open[q].size() >= 2) runs.push_back(open[q]);
    open[q].clear();
  };

  for (std::size_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    if (g.is_two_qubit()) {
      close_run(g.q0);
      close_run(g.q1);
    } else {
      open[g.q0].push_back(i);
    }
  }
  for (std::size_t q = 0; q < n; ++q) close_run(q);
  if (runs.empty()) return 0;

  // Replacement plan: for each run, fused gates appear at the first index.
  std::vector<bool> drop(gates.size(), false);
  std::vector<std::vector<Gate>> replace(gates.size());
  std::size_t removed = 0;
  std::vector<Gate> run_gates, fused;
  for (const auto& run : runs) {
    run_gates.clear();
    for (std::size_t gi : run) run_gates.push_back(gates[gi]);
    if (!fuse_1q_run(run_gates, fused)) continue;  // no improvement
    removed += run.size() - fused.size();
    for (std::size_t gi : run) drop[gi] = true;
    replace[run.front()] = fused;
  }
  if (removed == 0) return 0;

  Circuit out(n);
  for (std::size_t i = 0; i < gates.size(); ++i) {
    if (drop[i]) {
      for (const Gate& g : replace[i]) out.append(g);
    } else {
      out.append(gates[i]);
    }
  }
  c = std::move(out);
  return removed;
}

namespace {

/// Legacy O2/O3 driver. The gate-vector copy is hoisted out of the
/// cancellation fixpoint entirely for O2 (one copy in, one conditional
/// rebuild out); the O3 alternation still materializes a Circuit between
/// fusion rounds, but every pass skips its rebuild when it removed nothing.
std::size_t legacy_optimize(Circuit& c, bool with_fusion,
                            const CancelToken& cancel) {
  std::size_t removed = 0;
  std::uint32_t tick = 0;
  if (!with_fusion) {
    std::vector<Gate> gates = c.gates();
    std::vector<bool> alive(gates.size(), true);
    removed = cancel_fixpoint(gates, alive, cancel, tick);
    if (removed > 0) c = compact(c.num_qubits(), gates, alive);
    return removed;
  }
  for (int iter = 0; iter < 20; ++iter) {
    cancel.check(Stage::Peephole);
    const std::size_t a = fuse_single_qubit_runs(c);
    std::vector<Gate> gates = c.gates();
    std::vector<bool> alive(gates.size(), true);
    const std::size_t b = cancel_fixpoint(gates, alive, cancel, tick);
    if (b > 0) c = compact(c.num_qubits(), gates, alive);
    removed += a + b;
    if (a + b == 0) break;
  }
  return removed;
}

void run_peephole(Circuit& c, PeepholeEngine engine, bool with_fusion,
                  const CancelToken& cancel) {
  std::size_t removed = 0;
  if (engine == PeepholeEngine::Legacy)
    removed = legacy_optimize(c, with_fusion, cancel);
  else
    removed = dag_optimize(c, with_fusion, cancel).removed;
  c.drop_trivial_gates();
  trace_count("peephole.removed", removed);
}

}  // namespace

void optimize_o3(Circuit& c, PeepholeEngine engine, const CancelToken& cancel) {
  run_peephole(c, engine, /*with_fusion=*/true, cancel);
}

void optimize_o2(Circuit& c, PeepholeEngine engine, const CancelToken& cancel) {
  run_peephole(c, engine, /*with_fusion=*/false, cancel);
}

}  // namespace phoenix
