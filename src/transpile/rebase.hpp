#pragma once

#include "circuit/circuit.hpp"

namespace phoenix {

/// Rebase a circuit onto the SU(4) ISA: every maximal run of gates confined
/// to one qubit pair (2Q gates plus interleaved 1Q gates) collapses into a
/// single `Su4` gate that retains its constituents (so rebased circuits stay
/// simulable). Pure 1Q stretches outside any block are kept as-is — 1Q gates
/// are free in all paper metrics.
///
/// This performs exactly the gate-collection step of a KAK-based transpiler;
/// since an arbitrary two-qubit unitary is one native gate in the SU(4) ISA
/// (the AshN scheme of the paper's §V-D), no numeric decomposition is needed
/// for gate counts or depth.
Circuit rebase_su4(const Circuit& c);

/// Decompose every SWAP into 3 CNOTs (used after routing when reporting
/// CNOT-ISA metrics).
Circuit decompose_swaps(const Circuit& c);

}  // namespace phoenix
