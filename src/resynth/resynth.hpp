#pragma once

#include <cstddef>
#include <cstdint>

#include "circuit/circuit.hpp"
#include "common/cancel.hpp"
#include "common/graph.hpp"
#include "pauli/tableau.hpp"

namespace phoenix {

/// O4: Clifford-region resynthesis, the optimization tier above the O2/O3
/// peepholes. Where the peephole engine rewrites a sliding window of
/// adjacent gates, O4 absorbs a *maximal Clifford region* of the circuit
/// into an n-qubit `CliffordTableau` — forgetting how the region was
/// originally decomposed into gates — and re-emits it from scratch via a
/// normal-form elimination (Aaronson–Gottesman-style row reduction in the
/// spirit of Proctor & Young's asymptotically optimal recipe). A rewrite is
/// kept only when it strictly improves the 2Q gate count (ties broken by 2Q
/// depth), so O4 output is never worse than its input under
/// `Circuit::two_qubit_count()`.
///
/// `Off` disables the tier, `Logical` runs it on the logical circuit after
/// the O2/O3 peephole, `Routed` additionally reruns it post-mapping with a
/// coupling-aware synthesizer whose every CNOT lands on a device edge
/// (long-range CNOTs route along shortest paths).
enum class ResynthLevel : std::uint8_t { Off, Logical, Routed };

struct ResynthOptions {
  /// Non-null: every CNOT the synthesizer emits must be a coupling edge;
  /// non-adjacent CNOTs are routed along a shortest path (4(k−1) edge
  /// CNOTs for a k-hop path; never a SWAP, so routed rewrites can't hide
  /// 2Q cost inside Swap gates).
  const Graph* coupling = nullptr;

  /// Cooperative cancellation; polled once per gate scanned and checked at
  /// every region flush (Stage::Resynth).
  CancelToken cancel;

  /// Tolerance (in quarter turns) for classifying Rx/Ry/Rz parameters as
  /// Clifford angles; matches the tableau's own acceptance rule.
  double angle_tol = 1e-9;

  /// Upper bound on non-Clifford gates held "pending" while the extractor
  /// absorbs later Clifford gates across them. Caps the per-gate
  /// commutation-check cost at O(max_pending).
  std::size_t max_pending = 64;

  /// Regions with fewer 2Q members than this are emitted unchanged: a
  /// strict 2Q improvement is impossible below 1 and pointless to attempt
  /// below 2 without a depth-only win being likely.
  std::size_t min_region_2q = 2;
};

/// Counters for `resynth.*` trace export and compile diagnostics.
struct ResynthStats {
  std::size_t regions = 0;         ///< flushed regions with ≥1 Clifford gate
  std::size_t gates_absorbed = 0;  ///< Clifford gates folded into tableaux
  std::size_t accepted = 0;        ///< rewrites kept (strict improvement)
  std::size_t rejected = 0;        ///< rewrites discarded by the acceptor
  std::size_t two_q_before = 0;    ///< circuit 2Q count entering the pass
  std::size_t two_q_after = 0;     ///< circuit 2Q count leaving the pass
};

/// True when `g` is a gate the absorber can fold into a tableau: H, S, S†,
/// X, Y, Z, √X, √X†, CNOT, CZ, SWAP, and Rx/Ry/Rz at Clifford angles
/// (classified by `clifford_quarter_turns` with `angle_tol`). T/T† and Su4
/// blocks are non-Clifford barriers.
bool is_clifford_gate(const Gate& g, double angle_tol = 1e-9);

/// Re-emit `tab` as a circuit (equal as a Clifford map, i.e. up to global
/// phase) by reducing a working copy to the identity one qubit at a time
/// and replaying the inverted gate list backwards. Emits only H, S, S†, X,
/// Z, √X, √X† and CNOT — never SWAP, so `two_qubit_count()` of the result
/// is an honest CNOT-equivalent figure. With `coupling`, every CNOT is an
/// edge of the graph (long-range interactions are routed along BFS shortest
/// paths; the graph must be connected across the tableau's support).
Circuit synthesize_tableau(const CliffordTableau& tab,
                           const Graph* coupling = nullptr);

/// The O4 pass: extract maximal Clifford regions from `c` (greedy scan with
/// commutation-aware absorption across non-Clifford barriers), resynthesize
/// each through `synthesize_tableau`, and splice a rewrite back in only when
/// the acceptor proves it strictly improves 2Q count (ties broken by 2Q
/// depth) AND its tableau re-derives bit-identically to the region's —
/// a synthesis bug can only ever cost optimization, never correctness.
/// Rejected regions are re-emitted in their original gate order.
ResynthStats resynthesize_clifford_regions(Circuit& c,
                                           const ResynthOptions& opt = {});

}  // namespace phoenix
