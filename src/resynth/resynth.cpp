#include "resynth/resynth.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "common/angles.hpp"
#include "common/error.hpp"
#include "common/trace.hpp"
#include "transpile/peephole.hpp"

namespace phoenix {

bool is_clifford_gate(const Gate& g, double angle_tol) {
  switch (g.kind) {
    case GateKind::I:
    case GateKind::H:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::X:
    case GateKind::Y:
    case GateKind::Z:
    case GateKind::SqrtX:
    case GateKind::SqrtXdg:
    case GateKind::Cnot:
    case GateKind::Cz:
    case GateKind::Swap:
      return true;
    case GateKind::Rx:
    case GateKind::Ry:
    case GateKind::Rz:
      return clifford_quarter_turns(g.param, angle_tol).has_value();
    default:  // T, Tdg, Su4
      return false;
  }
}

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// Elimination state: the working tableau being reduced toward the
/// identity plus the gates applied so far, in application order. The
/// synthesized circuit is the reversed, inverted gate list.
struct Eliminator {
  CliffordTableau t;
  const Graph* coupling;
  std::vector<Gate> applied;

  void put(const Gate& g) {
    t.apply_gate(g);
    applied.push_back(g);
  }

  /// BFS shortest path c → t (inclusive endpoints). Throws when the
  /// coupling graph doesn't connect them — a malformed device graph.
  std::vector<std::size_t> path(std::size_t c, std::size_t to) const {
    std::vector<std::size_t> parent(coupling->num_vertices(), kNone);
    std::vector<std::size_t> frontier{c};
    parent[c] = c;
    while (!frontier.empty() && parent[to] == kNone) {
      std::vector<std::size_t> next;
      for (std::size_t v : frontier)
        for (std::size_t w : coupling->neighbors(v))
          if (parent[w] == kNone) {
            parent[w] = v;
            next.push_back(w);
          }
      frontier = std::move(next);
    }
    if (parent[to] == kNone)
      throw Error(Stage::Resynth,
                  "coupling graph disconnects qubits " + std::to_string(c) +
                      " and " + std::to_string(to));
    std::vector<std::size_t> p{to};
    while (p.back() != c) p.push_back(parent[p.back()]);
    std::reverse(p.begin(), p.end());
    return p;
  }

  /// CNOT(c → t), routed along a shortest path when the endpoints are not
  /// coupled. The prefix-parity construction uses 4(k−1) edge CNOTs for a
  /// k-hop path and restores every intermediate qubit exactly (pure-CNOT
  /// circuits are GF(2)-linear maps, so the whole block acts as the single
  /// long-range CNOT).
  void cnot(std::size_t c, std::size_t to) {
    if (coupling == nullptr || coupling->has_edge(c, to)) {
      put(Gate::cnot(c, to));
      return;
    }
    const auto p = path(c, to);
    const std::size_t k = p.size() - 1;  // hops, >= 2 here
    for (std::size_t i = 0; i + 1 <= k; ++i) put(Gate::cnot(p[i], p[i + 1]));
    for (std::size_t i = k - 1; i-- > 0;) put(Gate::cnot(p[i], p[i + 1]));
    for (std::size_t i = 1; i + 1 <= k; ++i) put(Gate::cnot(p[i], p[i + 1]));
    for (std::size_t i = k - 1; i-- > 1;) put(Gate::cnot(p[i], p[i + 1]));
  }
};

Gate invert_gate(const Gate& g) {
  switch (g.kind) {
    case GateKind::S: return Gate::sdg(g.q0);
    case GateKind::Sdg: return Gate::s(g.q0);
    case GateKind::SqrtX: return Gate::sqrt_xdg(g.q0);
    case GateKind::SqrtXdg: return Gate::sqrt_x(g.q0);
    default: return g;  // H, X, Z, CNOT are involutions
  }
}

}  // namespace

Circuit synthesize_tableau(const CliffordTableau& tab, const Graph* coupling) {
  const std::size_t n = tab.num_qubits();
  if (coupling != nullptr && coupling->num_vertices() < n)
    throw Error(Stage::Resynth, "coupling graph smaller than tableau");
  Eliminator e{tab, coupling, {}};

  // Row images as plain bit accessors. image_of_* folds the sign into the
  // term coefficient as ±1.
  auto destab = [&](std::size_t q) { return e.t.image_of_x(q); };
  auto stab = [&](std::size_t q) { return e.t.image_of_z(q); };

  for (std::size_t q = 0; q < n; ++q) {
    // Fast path: qubit already reduced (common when the tableau acts on a
    // small support inside a large register).
    {
      const PauliTerm a = destab(q), b = stab(q);
      if (a.string == PauliString::single(n, q, Pauli::X) &&
          b.string == PauliString::single(n, q, Pauli::Z))
        continue;  // signs handled by the final pass
    }

    // --- Destabilizer row: reduce C X_q C† to ±X_q. ---------------------
    PauliTerm a = destab(q);
    if (!a.string.x().get(q)) {
      // Pivot into column q. Prefer an existing x-column (one CNOT); fall
      // back to a z-column turned into x by H. A pivot always exists: the
      // image is a nonzero Pauli whose support cannot dip below q once
      // rows < q are fixed (it commutes with every fixed generator).
      std::size_t piv = kNone;
      bool via_h = false;
      for (std::size_t j = 0; j < n && piv == kNone; ++j)
        if (a.string.x().get(j)) piv = j;
      if (piv == kNone) {
        for (std::size_t j = 0; j < n && piv == kNone; ++j)
          if (a.string.z().get(j)) piv = j;
        via_h = true;
      }
      if (piv == kNone)
        throw Error(Stage::Resynth, "tableau row lost symplectic rank");
      if (via_h) e.put(Gate::h(piv));
      if (piv != q) e.cnot(piv, q);
      a = destab(q);
    }
    // Clear every other x-column with CNOTs out of q.
    for (std::size_t j = 0; j < n; ++j)
      if (j != q && a.string.x().get(j)) e.cnot(q, j);
    a = destab(q);
    // Clear the z-part: make z_q set (S), fold other z-columns into it
    // (CNOT j→q only touches z_j and x_q, and x_j is already 0), drop it
    // with a final S.
    if (a.string.z().any()) {
      if (!a.string.z().get(q)) {
        e.put(Gate::s(q));
        a = destab(q);
      }
      for (std::size_t j = 0; j < n; ++j)
        if (j != q && a.string.z().get(j)) e.cnot(j, q);
      e.put(Gate::s(q));
    }

    // --- Stabilizer row: reduce C Z_q C† to ±Z_q, preserving ±X_q. ------
    // Anticommutation with the fixed ±X_q forces z_q = 1 throughout.
    PauliTerm b = stab(q);
    if (b.string.x().any()) {
      std::vector<std::size_t> sup;
      for (std::size_t j = 0; j < n; ++j)
        if (j != q && b.string.x().get(j)) sup.push_back(j);
      if (!sup.empty()) {
        // Fold the x-support (outside q) onto one column, then rotate that
        // column's X/Y into Z. None of these touch column q, so the
        // destabilizer row ±X_q is untouched.
        const std::size_t j0 = sup.front();
        for (std::size_t i = 1; i < sup.size(); ++i) e.cnot(j0, sup[i]);
        b = stab(q);
        if (b.string.z().get(j0)) e.put(Gate::s(j0));
        e.put(Gate::h(j0));
        b = stab(q);
      }
      // A leftover Y at q rotates to Z with √X (X→X, so ±X_q survives).
      if (b.string.x().get(q)) e.put(Gate::sqrt_x(q));
      b = stab(q);
    }
    // Clear z-columns outside q; CNOT j→q leaves a pure ±X_q row alone.
    for (std::size_t j = 0; j < n; ++j)
      if (j != q && b.string.z().get(j)) e.cnot(j, q);
  }

  // Sign pass: rows are pure ±generators now, and Z(q)/X(q) flip exactly
  // one row's sign each.
  for (std::size_t q = 0; q < n; ++q) {
    if (destab(q).coeff < 0.0) e.put(Gate::z(q));
    if (stab(q).coeff < 0.0) e.put(Gate::x(q));
  }

  if (!e.t.is_identity())
    throw Error(Stage::Resynth, "tableau elimination did not reach identity");

  // h_m ∘ … ∘ h_1 ∘ C = I  ⟹  C = h_1† ∘ … ∘ h_m†, applied h_m† first.
  Circuit out(n);
  for (auto it = e.applied.rbegin(); it != e.applied.rend(); ++it)
    out.append(invert_gate(*it));
  return out;
}

namespace {

/// One open region of the greedy extractor scan.
struct RegionBuf {
  std::vector<Gate> orig;     ///< every region gate, original order
  std::vector<Gate> members;  ///< Clifford gates absorbed into the tableau
  std::vector<Gate> pending;  ///< non-Clifford gates deferred past members
  std::size_t members_2q = 0;

  bool open() const { return !members.empty(); }
  void clear() {
    orig.clear();
    members.clear();
    pending.clear();
    members_2q = 0;
  }
};

void emit_original(Circuit& out, const RegionBuf& buf) {
  for (const Gate& g : buf.orig) out.append(g);
}

/// Resynthesize one region and splice the better variant into `out`.
void rewrite_region(Circuit& out, const RegionBuf& buf,
                    const ResynthOptions& opt, ResynthStats& st) {
  st.regions += 1;
  if (buf.members_2q < opt.min_region_2q) {
    emit_original(out, buf);
    return;
  }
  st.gates_absorbed += buf.members.size();

  const std::size_t n = out.num_qubits();
  CliffordTableau tab(n);
  Circuit members(n);
  for (const Gate& g : buf.members) {
    tab.apply_gate(g);
    members.append(g);
  }

  Circuit cand = synthesize_tableau(tab, opt.coupling);
  // The raw elimination output profits from the standard cleanup (adjacent
  // cancellation + 1Q fusion); both preserve the unitary exactly, and the
  // acceptor re-derives the tableau afterwards anyway.
  optimize_o3(cand, PeepholeEngine::Dag, opt.cancel);

  // Acceptor: strict 2Q-count improvement, ties broken by 2Q depth — and
  // the rewrite must provably implement the region (bit-identical tableau;
  // a synthesis defect downgrades to a rejected rewrite, never a
  // miscompile). In routed mode every 2Q gate must also sit on an edge.
  bool ok = cand.two_qubit_count() < members.two_qubit_count() ||
            (cand.two_qubit_count() == members.two_qubit_count() &&
             cand.two_qubit_depth() < members.two_qubit_depth());
  if (ok && opt.coupling != nullptr) {
    for (const Gate& g : cand.gates())
      if (g.is_two_qubit() && !opt.coupling->has_edge(g.q0, g.q1)) {
        ok = false;
        break;
      }
  }
  if (ok) {
    try {
      ok = CliffordTableau::from_circuit(cand) == tab;
    } catch (const std::invalid_argument&) {
      ok = false;  // cleanup fused a rotation the tableau won't classify
    }
  }

  if (!ok) {
    st.rejected += 1;
    emit_original(out, buf);
    return;
  }
  st.accepted += 1;
  for (const Gate& g : cand.gates()) out.append(g);
  for (const Gate& g : buf.pending) out.append(g);
}

}  // namespace

ResynthStats resynthesize_clifford_regions(Circuit& c,
                                           const ResynthOptions& opt) {
  TraceSpan span("resynth");
  ResynthStats st;
  st.two_q_before = c.two_qubit_count();
  const std::size_t depth_before = c.two_qubit_depth();

  Circuit out(c.num_qubits());
  RegionBuf buf;
  std::uint32_t tick = 0;

  auto flush = [&]() {
    if (buf.open()) {
      opt.cancel.check(Stage::Resynth);
      rewrite_region(out, buf, opt, st);
    } else {
      emit_original(out, buf);  // stray pendings can't occur; orig is empty
    }
    buf.clear();
  };

  for (const Gate& g : c.gates()) {
    opt.cancel.poll(tick, Stage::Resynth);
    if (is_clifford_gate(g, opt.angle_tol)) {
      // Absorb across the pending non-Clifford barrier only when the gate
      // commutes with every deferred gate (conservative syntactic test —
      // false negatives cost optimization, never correctness).
      bool commutes = true;
      for (const Gate& p : buf.pending)
        if (!gates_commute(g, p)) {
          commutes = false;
          break;
        }
      if (!commutes) flush();
      buf.orig.push_back(g);
      buf.members.push_back(g);
      if (g.is_two_qubit()) buf.members_2q += 1;
    } else {
      if (!buf.open()) {
        out.append(g);
        continue;
      }
      buf.orig.push_back(g);
      buf.pending.push_back(g);
      if (buf.pending.size() >= opt.max_pending) flush();
    }
  }
  flush();

  c = std::move(out);
  st.two_q_after = c.two_qubit_count();

  trace_count("resynth.regions", st.regions);
  trace_count("resynth.gates_absorbed", st.gates_absorbed);
  trace_count("resynth.accepted", st.accepted);
  trace_count("resynth.rejected", st.rejected);
  trace_count("resynth.two_q_before", st.two_q_before);
  trace_count("resynth.two_q_after", st.two_q_after);
  trace_count("resynth.two_q_depth_before", depth_before);
  trace_count("resynth.two_q_depth_after", c.two_qubit_depth());
  return st;
}

}  // namespace phoenix
