#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "hamlib/fermion.hpp"
#include "pauli/pauli.hpp"

namespace phoenix {

/// STO-3G molecule descriptions used by the paper's UCCSD suite (Table I).
/// Spatial-orbital and electron counts are the standard STO-3G values;
/// "frozen" freezes the lowest (core) spatial orbital.
struct Molecule {
  std::string name;
  std::size_t n_spatial;    ///< spatial orbitals in STO-3G
  std::size_t n_electrons;  ///< electrons occupying the lowest spin orbitals

  std::size_t n_spin_orbitals() const { return 2 * n_spatial; }

  static Molecule ch2();
  static Molecule h2o();
  static Molecule lih();
  static Molecule nh();

  /// Frozen-core variant: drop the core spatial orbital and its 2 electrons.
  Molecule frozen_core() const;
};

/// One generated UCCSD ansatz program: the Pauli exponentiation list of a
/// single Trotter step, blocks of strings contiguous per excitation operator.
struct UccsdBenchmark {
  std::string name;         ///< e.g. "LiH_frz_BK"
  std::size_t num_qubits;   ///< spin orbitals = qubits
  std::size_t w_max = 0;    ///< maximum Pauli-string weight
  std::vector<PauliTerm> terms;
};

/// Generate the UCCSD singles+doubles ansatz of a molecule under the given
/// encoding. Amplitudes are deterministic synthetic values drawn from
/// `seed` (see DESIGN.md — the paper uses molecular integrals; the compiler
/// only consumes the Pauli-string structure, which is exact here).
UccsdBenchmark generate_uccsd(const Molecule& mol, bool frozen,
                              FermionEncoding enc, std::uint64_t seed = 7);

/// The paper's 16-entry benchmark suite (Table I):
/// {CH2, H2O, LiH, NH} × {cmplt, frz} × {BK, JW}.
std::vector<UccsdBenchmark> uccsd_suite();

/// Subset of the suite on at most `max_qubits` qubits (Fig. 8 uses <= 10).
std::vector<UccsdBenchmark> uccsd_suite_small(std::size_t max_qubits);

}  // namespace phoenix
