#pragma once

#include <cstddef>
#include <vector>

#include "common/bitvec.hpp"
#include "pauli/polynomial.hpp"

namespace phoenix {

/// Fermion-to-qubit mapping choice; the two encodings evaluated by the paper
/// (Table I benchmarks carry _JW / _BK suffixes).
enum class FermionEncoding { JordanWigner, BravyiKitaev };

/// Maps fermionic modes to qubit operators.
///
/// Both encodings are generated from their Majorana representations:
///   JW:  c_{2j}   = Z_0 … Z_{j-1} X_j
///        c_{2j+1} = Z_0 … Z_{j-1} Y_j
///   BK:  c_{2j}   = X_{U(j)} X_j Z_{P(j)}
///        c_{2j+1} = X_{U(j)} Y_j Z_{ρ(j)}
/// with the Bravyi–Kitaev update / parity / remainder sets derived from the
/// classic Fenwick-tree partial-sum structure.
class FermionEncoder {
 public:
  FermionEncoder(std::size_t num_modes, FermionEncoding enc);

  std::size_t num_modes() const { return n_; }
  FermionEncoding encoding() const { return enc_; }

  /// Majorana operator c_k, k in [0, 2n).
  PauliString majorana(std::size_t k) const;

  /// Annihilation operator a_j = (c_{2j} + i c_{2j+1}) / 2.
  PauliPolynomial lower(std::size_t j) const;
  /// Creation operator a†_j = (c_{2j} - i c_{2j+1}) / 2.
  PauliPolynomial raise(std::size_t j) const;

  /// Occupation-number operator n_j = a†_j a_j.
  PauliPolynomial number(std::size_t j) const;

  // --- Bravyi–Kitaev index sets (exposed for tests/documentation) ---------
  /// Qubits (above j) whose stored partial sums include mode j.
  std::vector<std::size_t> update_set(std::size_t j) const;
  /// Qubits whose stored values XOR to the parity of modes [0, j).
  std::vector<std::size_t> parity_set(std::size_t j) const;
  /// Modes other than j whose occupation qubit j stores (Fenwick range).
  std::vector<std::size_t> flip_set(std::size_t j) const;
  /// ρ(j): parity_set(j) minus flip_set(j) when qubit j stores a sum.
  std::vector<std::size_t> remainder_set(std::size_t j) const;

  /// The BK basis-change matrix β as row bit-masks: qubit j stores the XOR
  /// of the modes in row j. For JW this is the identity.
  std::vector<BitVec> encoding_matrix() const;

 private:
  std::size_t n_;
  FermionEncoding enc_;
};

}  // namespace phoenix
