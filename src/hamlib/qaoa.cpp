#include "hamlib/qaoa.hpp"

#include <stdexcept>

namespace phoenix {

Graph random_regular_graph(std::size_t n, std::size_t d, Rng& rng,
                           std::size_t max_attempts) {
  if (n * d % 2 != 0)
    throw std::invalid_argument("random_regular_graph: n*d must be even");
  if (d >= n)
    throw std::invalid_argument("random_regular_graph: degree too large");
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    // Configuration model: shuffle d copies of each vertex and pair them up;
    // reject on self-loops, multi-edges, or disconnection.
    std::vector<std::size_t> stubs;
    stubs.reserve(n * d);
    for (std::size_t v = 0; v < n; ++v)
      for (std::size_t k = 0; k < d; ++k) stubs.push_back(v);
    rng.shuffle(stubs);
    Graph g(n);
    bool ok = true;
    for (std::size_t i = 0; i < stubs.size() && ok; i += 2) {
      const std::size_t a = stubs[i], b = stubs[i + 1];
      if (a == b || g.has_edge(a, b))
        ok = false;
      else
        g.add_edge(a, b);
    }
    if (ok && g.connected()) return g;
  }
  throw std::runtime_error("random_regular_graph: sampling failed");
}

std::vector<PauliTerm> qaoa_cost_terms(const Graph& g, double gamma) {
  std::vector<PauliTerm> terms;
  terms.reserve(g.num_edges());
  for (const auto& [a, b] : g.edges()) {
    PauliString s(g.num_vertices());
    s.set_op(a, Pauli::Z);
    s.set_op(b, Pauli::Z);
    terms.emplace_back(s, gamma);
  }
  return terms;
}

std::vector<QaoaBenchmark> qaoa_suite() {
  std::vector<QaoaBenchmark> out;
  const std::size_t sizes[] = {16, 20, 24};
  for (std::size_t degree : {std::size_t{4}, std::size_t{3}}) {
    for (std::size_t n : sizes) {
      Rng rng(0xC0FFEEull * degree + n);
      QaoaBenchmark b;
      b.name = (degree == 4 ? "Rand-" : "Reg3-") + std::to_string(n);
      b.num_qubits = n;
      b.graph = random_regular_graph(n, degree, rng);
      b.terms = qaoa_cost_terms(b.graph);
      out.push_back(std::move(b));
    }
  }
  return out;
}

}  // namespace phoenix
