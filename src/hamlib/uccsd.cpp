#include "hamlib/uccsd.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"

namespace phoenix {

Molecule Molecule::ch2() { return {"CH2", 7, 8}; }
Molecule Molecule::h2o() { return {"H2O", 7, 10}; }
Molecule Molecule::lih() { return {"LiH", 6, 4}; }
Molecule Molecule::nh() { return {"NH", 6, 8}; }

Molecule Molecule::frozen_core() const {
  if (n_spatial < 2 || n_electrons < 3)
    throw std::logic_error("Molecule::frozen_core: nothing to freeze");
  return {name, n_spatial - 1, n_electrons - 2};
}

namespace {

/// i (T - T†) — the Hermitian generator of the unitary excitation
/// exp(θ (T - T†)) = exp(-i θ · i(T - T†)).
PauliPolynomial hermitian_generator(const PauliPolynomial& t,
                                    const PauliPolynomial& tdag) {
  PauliPolynomial h = t;
  h -= tdag;
  h *= std::complex<double>{0, 1};
  h.prune();
  return h;
}

}  // namespace

UccsdBenchmark generate_uccsd(const Molecule& mol_in, bool frozen,
                              FermionEncoding enc, std::uint64_t seed) {
  const Molecule mol = frozen ? mol_in.frozen_core() : mol_in;
  const std::size_t n = mol.n_spin_orbitals();
  const std::size_t ne = mol.n_electrons;
  if (ne >= n)
    throw std::invalid_argument("generate_uccsd: no virtual orbitals");

  FermionEncoder enc_map(n, enc);
  Rng rng(seed ^ (n * 1315423911ull) ^ ne);

  UccsdBenchmark bench;
  bench.name = mol.name + (frozen ? "_frz_" : "_cmplt_") +
               (enc == FermionEncoding::BravyiKitaev ? "BK" : "JW");
  bench.num_qubits = n;

  const auto spin = [](std::size_t so) { return so % 2; };
  auto emit = [&](const PauliPolynomial& h, double amplitude) {
    PauliPolynomial scaled = h;
    scaled *= std::complex<double>{amplitude, 0};
    for (const auto& t : scaled.to_terms()) bench.terms.push_back(t);
  };

  // Singles: spin-conserving i(occ) -> a(virt).
  for (std::size_t i = 0; i < ne; ++i)
    for (std::size_t a = ne; a < n; ++a) {
      if (spin(i) != spin(a)) continue;
      const PauliPolynomial t = enc_map.raise(a) * enc_map.lower(i);
      const PauliPolynomial td = enc_map.raise(i) * enc_map.lower(a);
      emit(hermitian_generator(t, td), 0.05 * rng.next_gaussian());
    }

  // Doubles: spin-conserving (i<j occ) -> (a<b virt).
  for (std::size_t i = 0; i < ne; ++i)
    for (std::size_t j = i + 1; j < ne; ++j)
      for (std::size_t a = ne; a < n; ++a)
        for (std::size_t b = a + 1; b < n; ++b) {
          if (spin(i) + spin(j) != spin(a) + spin(b)) continue;
          const PauliPolynomial t = enc_map.raise(a) * enc_map.raise(b) *
                                    enc_map.lower(j) * enc_map.lower(i);
          const PauliPolynomial td = enc_map.raise(i) * enc_map.raise(j) *
                                     enc_map.lower(b) * enc_map.lower(a);
          const PauliPolynomial h = hermitian_generator(t, td);
          if (h.empty()) continue;
          emit(h, 0.02 * rng.next_gaussian());
        }

  for (const auto& t : bench.terms)
    bench.w_max = std::max(bench.w_max, t.string.weight());
  return bench;
}

std::vector<UccsdBenchmark> uccsd_suite() {
  std::vector<UccsdBenchmark> out;
  const Molecule mols[] = {Molecule::ch2(), Molecule::h2o(), Molecule::lih(),
                           Molecule::nh()};
  for (const auto& mol : mols)
    for (bool frozen : {false, true})
      for (FermionEncoding enc :
           {FermionEncoding::BravyiKitaev, FermionEncoding::JordanWigner})
        out.push_back(generate_uccsd(mol, frozen, enc));
  return out;
}

std::vector<UccsdBenchmark> uccsd_suite_small(std::size_t max_qubits) {
  std::vector<UccsdBenchmark> out;
  for (auto& b : uccsd_suite())
    if (b.num_qubits <= max_qubits) out.push_back(std::move(b));
  return out;
}

}  // namespace phoenix
