#include "hamlib/fermion.hpp"

#include <stdexcept>

namespace phoenix {

namespace {
std::size_t lowbit(std::size_t i) { return i & (~i + 1); }
}  // namespace

FermionEncoder::FermionEncoder(std::size_t num_modes, FermionEncoding enc)
    : n_(num_modes), enc_(enc) {
  if (n_ == 0) throw std::invalid_argument("FermionEncoder: zero modes");
}

std::vector<std::size_t> FermionEncoder::update_set(std::size_t j) const {
  std::vector<std::size_t> out;
  for (std::size_t i = j + 1 + lowbit(j + 1); i <= n_; i += lowbit(i))
    out.push_back(i - 1);
  return out;
}

std::vector<std::size_t> FermionEncoder::parity_set(std::size_t j) const {
  std::vector<std::size_t> out;
  for (std::size_t i = j; i > 0; i -= lowbit(i)) out.push_back(i - 1);
  return out;
}

std::vector<std::size_t> FermionEncoder::flip_set(std::size_t j) const {
  std::vector<std::size_t> out;
  for (std::size_t k = j + 1 - lowbit(j + 1); k < j; ++k) out.push_back(k);
  return out;
}

std::vector<std::size_t> FermionEncoder::remainder_set(std::size_t j) const {
  // P(j) and F(j) are both sorted-descending / ascending ranges; do a simple
  // membership filter (sets are O(log n) sized).
  const auto p = parity_set(j);
  const auto f = flip_set(j);
  std::vector<std::size_t> out;
  for (std::size_t q : p) {
    bool in_f = false;
    for (std::size_t k : f) in_f |= (k == q);
    if (!in_f) out.push_back(q);
  }
  return out;
}

PauliString FermionEncoder::majorana(std::size_t k) const {
  if (k >= 2 * n_) throw std::out_of_range("FermionEncoder::majorana");
  const std::size_t j = k / 2;
  const bool odd = k % 2;
  PauliString s(n_);
  if (enc_ == FermionEncoding::JordanWigner) {
    for (std::size_t q = 0; q < j; ++q) s.set_op(q, Pauli::Z);
    s.set_op(j, odd ? Pauli::Y : Pauli::X);
    return s;
  }
  // Bravyi–Kitaev.
  for (std::size_t q : update_set(j)) s.set_op(q, Pauli::X);
  const auto zs = odd ? remainder_set(j) : parity_set(j);
  for (std::size_t q : zs) s.set_op(q, Pauli::Z);
  s.set_op(j, odd ? Pauli::Y : Pauli::X);
  return s;
}

PauliPolynomial FermionEncoder::lower(std::size_t j) const {
  PauliPolynomial p(n_);
  p.add(majorana(2 * j), {0.5, 0});
  p.add(majorana(2 * j + 1), {0, 0.5});
  p.prune();
  return p;
}

PauliPolynomial FermionEncoder::raise(std::size_t j) const {
  PauliPolynomial p(n_);
  p.add(majorana(2 * j), {0.5, 0});
  p.add(majorana(2 * j + 1), {0, -0.5});
  p.prune();
  return p;
}

PauliPolynomial FermionEncoder::number(std::size_t j) const {
  PauliPolynomial p = raise(j) * lower(j);
  p.prune();
  return p;
}

std::vector<BitVec> FermionEncoder::encoding_matrix() const {
  std::vector<BitVec> rows(n_, BitVec(n_));
  for (std::size_t j = 0; j < n_; ++j) {
    if (enc_ == FermionEncoding::JordanWigner) {
      rows[j].set(j, true);
    } else {
      for (std::size_t k = j + 1 - lowbit(j + 1); k <= j; ++k)
        rows[j].set(k, true);
    }
  }
  return rows;
}

}  // namespace phoenix
