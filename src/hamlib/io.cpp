#include "hamlib/io.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "common/error.hpp"

namespace phoenix {

std::size_t canonicalize_terms(std::vector<PauliTerm>& terms) {
  const std::size_t before = terms.size();
  std::unordered_map<PauliString, std::size_t, PauliStringHash> first_at;
  first_at.reserve(terms.size());
  std::size_t out = 0;
  for (std::size_t i = 0; i < terms.size(); ++i) {
    const auto [it, inserted] = first_at.try_emplace(terms[i].string, out);
    if (inserted) {
      if (out != i) terms[out] = std::move(terms[i]);
      ++out;
    } else {
      terms[it->second].coeff += terms[i].coeff;
    }
  }
  terms.resize(out);
  std::erase_if(terms, [](const PauliTerm& t) { return t.coeff == 0.0; });
  return before - terms.size();
}

std::string hamiltonian_to_text(const std::vector<PauliTerm>& terms) {
  std::ostringstream out;
  out << "# phoenix hamiltonian: " << terms.size() << " terms\n";
  out.precision(17);
  for (const auto& t : terms)
    out << t.string.to_string() << "  " << t.coeff << "\n";
  return out.str();
}

std::vector<PauliTerm> hamiltonian_from_text(const std::string& text) {
  std::vector<PauliTerm> terms;
  std::istringstream in(text);
  std::string line;
  std::size_t n = 0;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string label;
    double coeff;
    if (!(ls >> label)) continue;  // blank line
    if (!(ls >> coeff))
      throw Error(Stage::Parse,
                  "hamiltonian_from_text: missing or malformed coefficient",
                  lineno);
    if (!std::isfinite(coeff))
      throw Error(Stage::Parse,
                  "hamiltonian_from_text: non-finite coefficient", lineno);
    std::string trailing;
    if (ls >> trailing)
      throw Error(Stage::Parse, "hamiltonian_from_text: trailing tokens",
                  lineno);
    PauliTerm term;
    try {
      term = PauliTerm(label, coeff);
    } catch (const std::exception& e) {
      throw Error(Stage::Parse,
                  "hamiltonian_from_text: bad Pauli label '" + label +
                      "': " + e.what(),
                  lineno);
    }
    if (n == 0)
      n = term.string.num_qubits();
    else if (term.string.num_qubits() != n)
      throw Error(Stage::Parse,
                  "hamiltonian_from_text: inconsistent qubit count", lineno);
    terms.push_back(std::move(term));
  }
  canonicalize_terms(terms);
  return terms;
}

void save_hamiltonian(const std::string& path,
                      const std::vector<PauliTerm>& terms) {
  std::ofstream out(path);
  if (!out) throw Error(Stage::Io, "save_hamiltonian: cannot open " + path);
  out << hamiltonian_to_text(terms);
  if (!out) throw Error(Stage::Io, "save_hamiltonian: write failed: " + path);
}

std::vector<PauliTerm> load_hamiltonian(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error(Stage::Io, "load_hamiltonian: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return hamiltonian_from_text(buf.str());
}

}  // namespace phoenix
