#include "hamlib/grouping.hpp"

#include <unordered_map>

namespace phoenix {

std::vector<IrGroup> group_by_support(const std::vector<PauliTerm>& terms) {
  std::vector<IrGroup> groups;
  std::unordered_map<BitVec, std::size_t, BitVecHash> index;
  for (const auto& t : terms) {
    const BitVec mask = t.string.support_mask();
    const auto it = index.find(mask);
    if (it == index.end()) {
      index.emplace(mask, groups.size());
      groups.push_back(IrGroup{mask, {t}});
    } else {
      groups[it->second].terms.push_back(t);
    }
  }
  return groups;
}

std::vector<PauliTerm> flatten_groups(const std::vector<IrGroup>& groups) {
  std::vector<PauliTerm> out;
  for (const auto& g : groups)
    out.insert(out.end(), g.terms.begin(), g.terms.end());
  return out;
}

}  // namespace phoenix
