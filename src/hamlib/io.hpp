#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "pauli/pauli.hpp"

namespace phoenix {

/// Plain-text Hamiltonian interchange format, one term per line:
///
///     # comment / blank lines ignored
///     XIZY  0.25
///     IZZI -0.5
///
/// All labels must agree on qubit count. This is how users bring their own
/// Hamiltonian-simulation programs to the compiler.

std::string hamiltonian_to_text(const std::vector<PauliTerm>& terms);
std::vector<PauliTerm> hamiltonian_from_text(const std::string& text);

/// Canonicalize a term list in place: merge duplicate Pauli strings by
/// summing their coefficients (first occurrence keeps its position), then
/// drop terms whose coefficient is exactly 0.0 — including merges that
/// cancel exactly. The surviving order is otherwise preserved, so files
/// round-trip in author order; full canonical *sorting* is applied only
/// where content identity matters (service request fingerprints).
/// Returns the number of terms removed. `hamiltonian_from_text` applies
/// this, so semantically equal inputs construct equal term lists.
std::size_t canonicalize_terms(std::vector<PauliTerm>& terms);

void save_hamiltonian(const std::string& path,
                      const std::vector<PauliTerm>& terms);
std::vector<PauliTerm> load_hamiltonian(const std::string& path);

}  // namespace phoenix
