#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "pauli/pauli.hpp"

namespace phoenix {

/// Plain-text Hamiltonian interchange format, one term per line:
///
///     # comment / blank lines ignored
///     XIZY  0.25
///     IZZI -0.5
///
/// All labels must agree on qubit count. This is how users bring their own
/// Hamiltonian-simulation programs to the compiler.

std::string hamiltonian_to_text(const std::vector<PauliTerm>& terms);
std::vector<PauliTerm> hamiltonian_from_text(const std::string& text);

void save_hamiltonian(const std::string& path,
                      const std::vector<PauliTerm>& terms);
std::vector<PauliTerm> load_hamiltonian(const std::string& path);

}  // namespace phoenix
