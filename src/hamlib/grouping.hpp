#pragma once

#include <cstddef>
#include <vector>

#include "common/bitvec.hpp"
#include "pauli/pauli.hpp"

namespace phoenix {

/// One IR group: Pauli exponentiations sharing a qubit support set.
/// PHOENIX, Paulihedral and Tetris all operate on this blocking (§IV-A:
/// "Pauli-based IRs are first grouped according to the same set of qubit
/// indices non-trivially acted on").
struct IrGroup {
  BitVec support;               ///< union support mask
  std::vector<PauliTerm> terms;

  std::size_t weight() const { return support.popcount(); }
};

/// Group terms by identical support set, preserving first-appearance order
/// (UCCSD excitation blocks arrive contiguously and stay intact).
std::vector<IrGroup> group_by_support(const std::vector<PauliTerm>& terms);

/// Flatten groups back to a term list (group order preserved).
std::vector<PauliTerm> flatten_groups(const std::vector<IrGroup>& groups);

}  // namespace phoenix
