#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/graph.hpp"
#include "common/rng.hpp"
#include "pauli/pauli.hpp"

namespace phoenix {

/// Uniform random d-regular simple connected graph on n vertices
/// (configuration-model pairing with rejection). n*d must be even.
Graph random_regular_graph(std::size_t n, std::size_t d, Rng& rng,
                           std::size_t max_attempts = 10000);

/// One-layer QAOA cost Hamiltonian of a MaxCut instance: a weight-2 ZZ term
/// per edge with angle `gamma`.
std::vector<PauliTerm> qaoa_cost_terms(const Graph& g, double gamma = 0.35);

/// One QAOA benchmark program (Table IV row).
struct QaoaBenchmark {
  std::string name;  ///< e.g. "Rand-16", "Reg3-20"
  std::size_t num_qubits;
  Graph graph;
  std::vector<PauliTerm> terms;
};

/// The paper's six QAOA programs: Rand-{16,20,24} (4-regular random graphs)
/// and Reg3-{16,20,24} (3-regular graphs), deterministic seeds.
std::vector<QaoaBenchmark> qaoa_suite();

}  // namespace phoenix
