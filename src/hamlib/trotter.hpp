#pragma once

#include <cstddef>
#include <vector>

#include "pauli/pauli.hpp"

namespace phoenix {

/// Trotterization utilities (paper Eq. 1): expand exp(-iHt) into a product
/// of Pauli exponentiations, U(t) ≈ (S_k(τ))^r with τ = t / r.
///
/// The returned term lists are exactly what the compilers consume; the
/// arrangement within each step is free (the freedom PHOENIX exploits).

/// First-order step S_1(τ): every term once, coefficients scaled by τ.
std::vector<PauliTerm> trotter_first_order(const std::vector<PauliTerm>& h,
                                           double tau);

/// Second-order (symmetric) step S_2(τ): forward sweep at τ/2 followed by
/// the reversed sweep at τ/2.
std::vector<PauliTerm> trotter_second_order(const std::vector<PauliTerm>& h,
                                            double tau);

enum class TrotterOrder { First, Second };

/// Full Trotter sequence for evolution time `t` with `steps` repetitions of
/// the chosen step formula.
std::vector<PauliTerm> trotterize(const std::vector<PauliTerm>& h, double t,
                                  std::size_t steps,
                                  TrotterOrder order = TrotterOrder::First);

}  // namespace phoenix
