#include "hamlib/trotter.hpp"

#include <stdexcept>

namespace phoenix {

std::vector<PauliTerm> trotter_first_order(const std::vector<PauliTerm>& h,
                                           double tau) {
  std::vector<PauliTerm> out;
  out.reserve(h.size());
  for (const auto& t : h) out.emplace_back(t.string, t.coeff * tau);
  return out;
}

std::vector<PauliTerm> trotter_second_order(const std::vector<PauliTerm>& h,
                                            double tau) {
  std::vector<PauliTerm> out;
  out.reserve(2 * h.size());
  for (const auto& t : h) out.emplace_back(t.string, t.coeff * tau / 2);
  for (auto it = h.rbegin(); it != h.rend(); ++it)
    out.emplace_back(it->string, it->coeff * tau / 2);
  return out;
}

std::vector<PauliTerm> trotterize(const std::vector<PauliTerm>& h, double t,
                                  std::size_t steps, TrotterOrder order) {
  if (steps == 0) throw std::invalid_argument("trotterize: zero steps");
  const double tau = t / static_cast<double>(steps);
  const std::vector<PauliTerm> step = order == TrotterOrder::First
                                          ? trotter_first_order(h, tau)
                                          : trotter_second_order(h, tau);
  std::vector<PauliTerm> out;
  out.reserve(step.size() * steps);
  for (std::size_t s = 0; s < steps; ++s)
    out.insert(out.end(), step.begin(), step.end());
  return out;
}

}  // namespace phoenix
