#include "baselines/twoqan.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "transpile/peephole.hpp"
#include "transpile/rebase.hpp"

namespace phoenix {

TwoQanResult twoqan_compile(const std::vector<PauliTerm>& terms,
                            std::size_t num_qubits, const Graph& coupling) {
  if (coupling.num_vertices() < num_qubits)
    throw std::invalid_argument("twoqan_compile: device too small");
  struct Term {
    std::size_t a, b;
    double theta;
  };
  std::vector<Term> pending;
  Graph interaction(num_qubits);
  for (const auto& t : terms) {
    const auto sup = t.string.support();
    if (sup.size() != 2)
      throw std::invalid_argument("twoqan_compile: term is not 2-local");
    pending.push_back({sup[0], sup[1], t.coeff});
    if (!interaction.has_edge(sup[0], sup[1]))
      interaction.add_edge(sup[0], sup[1]);
  }

  const auto dist = coupling.distance_matrix();

  // --- Initial placement: highest-degree logical qubit onto the physical
  // node of minimum eccentricity; every next logical qubit onto the free
  // node minimizing distance to its already-placed interaction neighbors.
  std::vector<std::size_t> logical_order(num_qubits);
  std::iota(logical_order.begin(), logical_order.end(), std::size_t{0});
  std::stable_sort(logical_order.begin(), logical_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return interaction.degree(a) > interaction.degree(b);
                   });
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::vector<std::size_t> phys(num_qubits, npos);
  std::vector<bool> used(coupling.num_vertices(), false);
  for (std::size_t q : logical_order) {
    std::size_t best_node = npos;
    double best_score = std::numeric_limits<double>::infinity();
    for (std::size_t p = 0; p < coupling.num_vertices(); ++p) {
      if (used[p]) continue;
      double score = 0;
      bool any_neighbor = false;
      for (std::size_t nb : interaction.neighbors(q))
        if (phys[nb] != npos) {
          score += static_cast<double>(dist[p][phys[nb]]);
          any_neighbor = true;
        }
      if (!any_neighbor) {
        // Fall back to centrality: stay near already-used nodes, or pick a
        // low-eccentricity node for the very first placement.
        bool any_used = false;
        for (std::size_t u = 0; u < coupling.num_vertices(); ++u)
          if (used[u]) {
            score += static_cast<double>(dist[p][u]);
            any_used = true;
          }
        if (!any_used)
          score = static_cast<double>(
              *std::max_element(dist[p].begin(), dist[p].end()));
      }
      if (score < best_score) {
        best_score = score;
        best_node = p;
      }
    }
    phys[q] = best_node;
    used[best_node] = true;
  }

  // --- Commutativity-aware scheduling loop.
  TwoQanResult res;
  res.initial_layout = phys;
  res.circuit = Circuit(coupling.num_vertices());
  const std::size_t swap_limit = 100 + 20 * pending.size();
  std::pair<std::size_t, std::size_t> last_swap{npos, npos};
  while (!pending.empty()) {
    bool progress = false;
    std::vector<Term> still;
    for (const auto& t : pending) {
      if (coupling.has_edge(phys[t.a], phys[t.b])) {
        res.circuit.append(Gate::cnot(phys[t.a], phys[t.b]));
        res.circuit.append(Gate::rz(phys[t.b], 2.0 * t.theta));
        res.circuit.append(Gate::cnot(phys[t.a], phys[t.b]));
        progress = true;
      } else {
        still.push_back(t);
      }
    }
    pending = std::move(still);
    if (pending.empty()) break;
    if (progress) continue;

    // Pick the SWAP unlocking the most pending terms; ties by the largest
    // total distance reduction over all pending terms.
    std::vector<bool> involved(coupling.num_vertices(), false);
    for (const auto& t : pending) {
      involved[phys[t.a]] = true;
      involved[phys[t.b]] = true;
    }
    std::size_t best_unlocked = 0;
    double best_delta = std::numeric_limits<double>::infinity();
    std::pair<std::size_t, std::size_t> best_swap{npos, npos};
    for (const auto& [pa, pb] : coupling.edges()) {
      if (!involved[pa] && !involved[pb]) continue;
      if (pa == last_swap.first && pb == last_swap.second)
        continue;  // never immediately undo the previous swap
      auto mapped = [&](std::size_t p) {
        if (p == pa) return pb;
        if (p == pb) return pa;
        return p;
      };
      std::size_t unlocked = 0;
      double delta = 0;
      for (const auto& t : pending) {
        const std::size_t d_old = dist[phys[t.a]][phys[t.b]];
        const std::size_t d_new = dist[mapped(phys[t.a])][mapped(phys[t.b])];
        if (d_new == 1) ++unlocked;
        delta += static_cast<double>(d_new) - static_cast<double>(d_old);
      }
      if (unlocked > best_unlocked ||
          (unlocked == best_unlocked && delta < best_delta)) {
        best_unlocked = unlocked;
        best_delta = delta;
        best_swap = {pa, pb};
      }
    }
    if (best_swap.first == npos)
      throw std::logic_error("twoqan_compile: no candidate swap");
    res.circuit.append(Gate::swap(best_swap.first, best_swap.second));
    ++res.num_swaps;
    last_swap = best_swap;
    for (auto& p : phys) {
      if (p == best_swap.first)
        p = best_swap.second;
      else if (p == best_swap.second)
        p = best_swap.first;
    }
    if (res.num_swaps > swap_limit)
      throw std::runtime_error("twoqan_compile: swap limit exceeded");
  }

  res.final_layout = std::move(phys);
  res.circuit = decompose_swaps(res.circuit);
  optimize_o2(res.circuit);
  return res;
}

}  // namespace phoenix
