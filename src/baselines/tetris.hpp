#pragma once

#include "baselines/paulihedral.hpp"

namespace phoenix {

/// Tetris-style compilation (Jin et al., ISCA'24). Tetris concentrates on
/// routing co-optimization rather than logical synthesis (the paper's §V-B
/// finding): logical output is plain per-term chain trees with only local
/// inverse cancellation, while hardware-aware compilation orders blocks by
/// interaction adjacency and routes with an aggressive lookahead so SWAP
/// CNOTs annihilate against tree ladders.
Circuit tetris_compile(const std::vector<PauliTerm>& terms,
                       std::size_t num_qubits,
                       const BaselineOptions& opt = {});

}  // namespace phoenix
