#pragma once

#include <cstddef>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/graph.hpp"
#include "pauli/pauli.hpp"

namespace phoenix {

struct TwoQanResult {
  Circuit circuit;  ///< physical register, SWAPs decomposed into CNOTs
  std::size_t num_swaps = 0;
  std::vector<std::size_t> initial_layout;  ///< logical -> physical
  std::vector<std::size_t> final_layout;    ///< logical -> physical
};

/// 2QAN-style compilation (Lao & Browne, ISCA'22) for 2-local Hamiltonian
/// simulation: since every ZZ term commutes, the scheduler is free to
/// execute any term whose qubits are currently adjacent. The pipeline is
/// (1) interaction-graph-aware initial placement, (2) a greedy loop that
/// drains all executable terms and otherwise inserts the SWAP unlocking the
/// most pending terms (ties broken by total distance reduction), and
/// (3) SWAP decomposition with peephole merging so SWAP CNOTs fuse with the
/// adjacent ZZ ladders.
///
/// Every term must have weight exactly 2.
TwoQanResult twoqan_compile(const std::vector<PauliTerm>& terms,
                            std::size_t num_qubits, const Graph& coupling);

}  // namespace phoenix
