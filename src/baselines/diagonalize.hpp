#pragma once

#include <cstddef>
#include <vector>

#include "circuit/circuit.hpp"
#include "pauli/pauli.hpp"

namespace phoenix {

/// Result of simultaneously diagonalizing a pairwise-commuting Pauli set:
/// a Clifford circuit C with C P_i C† = ±(Z-string)_i for every input term.
/// The rotation subcircuit is then `C · Π_i exp(-iθ_i D_i) · C†`.
struct Diagonalization {
  Circuit clifford;                       ///< conjugation circuit C
  std::vector<PauliTerm> diagonal_terms;  ///< Z-only strings, signs folded
};

/// Constructive simultaneous diagonalization of a pairwise-commuting set
/// (the core of TKET's PauliSimp "sets" strategy / Cowtan et al. 2019):
/// repeatedly pivot one row to a single X via CNOT/CZ/S column operations,
/// then H it to a single Z. Pairwise commutativity guarantees previously
/// diagonalized rows are never disturbed. Throws if the input does not
/// commute pairwise.
Diagonalization diagonalize_commuting_set(const std::vector<PauliTerm>& terms,
                                          std::size_t num_qubits);

/// Greedy sequential partition of a term list into pairwise-commuting sets,
/// preserving first-fit order (each term joins the earliest compatible set).
std::vector<std::vector<PauliTerm>> partition_commuting(
    const std::vector<PauliTerm>& terms);

}  // namespace phoenix
