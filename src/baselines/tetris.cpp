#include "baselines/tetris.hpp"

#include <algorithm>

#include "circuit/synthesis.hpp"
#include "hamlib/grouping.hpp"
#include "transpile/peephole.hpp"
#include "transpile/rebase.hpp"

namespace phoenix {

namespace {

/// Inverse-pair cancellation that only looks through gates on disjoint
/// qubits — no commutation reasoning. This models Tetris's logical pass,
/// which exploits exactly the cancellations its tree construction makes
/// structurally adjacent (paper §V-B: Tetris trails the others at the
/// logical level because it saves its machinery for routing).
void structural_cancel(Circuit& c) {
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<Gate> gates = c.gates();
    std::vector<bool> alive(gates.size(), true);
    for (std::size_t i = 0; i < gates.size(); ++i) {
      if (!alive[i]) continue;
      for (std::size_t j = i + 1; j < gates.size(); ++j) {
        if (!alive[j]) continue;
        bool shares = false;
        for (std::size_t q : gates[i].qubits()) shares |= gates[j].acts_on(q);
        if (!shares) continue;
        if (gates[i].qubits() == gates[j].qubits() &&
            gates[i].is_inverse_of(gates[j])) {
          alive[i] = alive[j] = false;
          changed = true;
        }
        break;
      }
    }
    if (changed) {
      Circuit out(c.num_qubits());
      for (std::size_t i = 0; i < gates.size(); ++i)
        if (alive[i]) out.append(gates[i]);
      c = std::move(out);
    }
  }
}

}  // namespace

Circuit tetris_compile(const std::vector<PauliTerm>& terms,
                       std::size_t num_qubits, const BaselineOptions& opt) {
  auto groups = group_by_support(terms);

  // Block ordering by interaction adjacency: favor successors whose support
  // overlaps the previous block (keeps the mapping transition small — the
  // routing-oriented criterion Tetris optimizes for).
  std::vector<std::size_t> remaining(groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i) remaining[i] = i;
  std::vector<std::size_t> order;
  while (!remaining.empty()) {
    std::size_t pick = 0;
    if (!order.empty()) {
      const BitVec& last = groups[order.back()].support;
      std::size_t best = 0;
      for (std::size_t w = 0; w < remaining.size(); ++w) {
        const std::size_t ov = (groups[remaining[w]].support & last).popcount();
        if (ov > best) {
          best = ov;
          pick = w;
        }
      }
    }
    order.push_back(remaining[pick]);
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(pick));
  }

  // Tetris keeps the program's own term order inside each block and builds
  // plain ascending-order chains (its trees follow qubit order; the sharing
  // machinery is saved for SWAP co-optimization during routing), relying on
  // literal structural adjacency for cancellation.
  Circuit c(num_qubits);
  for (std::size_t gi : order)
    for (const auto& t : groups[gi].terms) append_pauli_rotation(c, t);

  if (opt.with_o3)
    optimize_o3(c);
  else
    structural_cancel(c);

  if (!opt.hardware_aware) return c;

  // Routing co-optimization: wider lookahead and more layout refinement than
  // the stock SABRE configuration, then aggressive post-routing cancellation
  // (SWAP CNOTs vs. ladder CNOTs) — the regime where Tetris excels.
  SabreOptions sabre = opt.sabre;
  sabre.extended_set_size = 48;
  sabre.extended_set_weight = 0.8;
  sabre.layout_rounds = 3;
  const SabreResult routed = sabre_route(c, *opt.coupling, sabre);
  Circuit physical = decompose_swaps(routed.routed);
  optimize_o3(physical);
  return physical;
}

}  // namespace phoenix
