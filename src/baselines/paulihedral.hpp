#pragma once

#include <cstddef>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/graph.hpp"
#include "mapping/sabre.hpp"
#include "pauli/pauli.hpp"

namespace phoenix {

/// Options shared by the reimplemented baseline compilers.
struct BaselineOptions {
  /// Append the full O3-like resynthesis pipeline (the paper's "+O3" rows).
  bool with_o3 = false;
  bool hardware_aware = false;
  const Graph* coupling = nullptr;
  SabreOptions sabre;
};

/// Paulihedral-style compilation (Li et al., ASPLOS'22): support-set
/// blocking, greedy max-overlap block ordering, lexicographic term order
/// inside blocks, chain CNOT-tree synthesis sharing the block root, and the
/// O2-like cancellation pass the paper associates with it by default.
Circuit paulihedral_compile(const std::vector<PauliTerm>& terms,
                            std::size_t num_qubits,
                            const BaselineOptions& opt = {});

}  // namespace phoenix
