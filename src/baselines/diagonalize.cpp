#include "baselines/diagonalize.hpp"

#include <stdexcept>

#include "pauli/bsf.hpp"

namespace phoenix {

Diagonalization diagonalize_commuting_set(const std::vector<PauliTerm>& terms,
                                          std::size_t num_qubits) {
  for (std::size_t i = 0; i < terms.size(); ++i)
    for (std::size_t j = i + 1; j < terms.size(); ++j)
      if (!terms[i].string.commutes_with(terms[j].string))
        throw std::invalid_argument(
            "diagonalize_commuting_set: terms do not commute");

  Bsf bsf(num_qubits);
  for (const auto& t : terms) bsf.add_term(t);

  Diagonalization out;
  out.clifford = Circuit(num_qubits);
  auto h = [&](std::size_t q) {
    bsf.apply_h(q);
    out.clifford.append(Gate::h(q));
  };
  auto s = [&](std::size_t q) {
    bsf.apply_s(q);
    out.clifford.append(Gate::s(q));
  };
  auto sdg = [&](std::size_t q) {
    bsf.apply_sdg(q);
    out.clifford.append(Gate::sdg(q));
  };
  auto cnot = [&](std::size_t c, std::size_t t) {
    bsf.apply_cnot(c, t);
    out.clifford.append(Gate::cnot(c, t));
  };
  auto cz = [&](std::size_t a, std::size_t b) {
    h(b);
    cnot(a, b);
    h(b);
  };

  // Repeatedly eliminate the first row carrying any X component. Operations
  // on qubit columns never reintroduce X into x-free rows: CNOT/CZ/S leave a
  // zero X-block row zero, and the final H at a pivot column is safe because
  // commutation with the pure-X pivot row forces diagonal rows to carry no Z
  // there (see tests for the property check).
  while (true) {
    std::size_t r = bsf.num_rows();
    for (std::size_t i = 0; i < bsf.num_rows(); ++i)
      if (bsf.row_x(i).any()) {
        r = i;
        break;
      }
    if (r == bsf.num_rows()) break;

    const std::size_t q = bsf.row_x(r).find_first();
    if (bsf.row_z(r).get(q)) sdg(q);  // Y -> X at the pivot
    // Clear the remaining X entries of row r.
    for (std::size_t p = bsf.row_x(r).find_next(q + 1); p < num_qubits;
         p = bsf.row_x(r).find_next(p + 1))
      cnot(q, p);
    // CNOTs may have folded Z back onto the pivot.
    if (bsf.row_z(r).get(q)) s(q);
    // Clear row r's Z entries elsewhere.
    for (std::size_t p = bsf.row_z(r).find_first(); p < num_qubits;
         p = bsf.row_z(r).find_next(p + 1)) {
      if (p == q) continue;
      cz(q, p);
    }
    if (bsf.row_z(r).get(q)) s(q);  // CZ composition may reintroduce it
    h(q);  // X_q -> Z_q: row r is now diagonal
    if (bsf.row_x(r).any())
      throw std::logic_error("diagonalize_commuting_set: pivot not cleared");
  }

  out.diagonal_terms.reserve(bsf.num_rows());
  for (std::size_t i = 0; i < bsf.num_rows(); ++i)
    out.diagonal_terms.push_back(bsf.term(i));
  return out;
}

std::vector<std::vector<PauliTerm>> partition_commuting(
    const std::vector<PauliTerm>& terms) {
  std::vector<std::vector<PauliTerm>> sets;
  for (const auto& t : terms) {
    bool placed = false;
    for (auto& set : sets) {
      bool ok = true;
      for (const auto& u : set)
        if (!t.string.commutes_with(u.string)) {
          ok = false;
          break;
        }
      if (ok) {
        set.push_back(t);
        placed = true;
        break;
      }
    }
    if (!placed) sets.push_back({t});
  }
  return sets;
}

}  // namespace phoenix
