#include "baselines/paulihedral.hpp"

#include <algorithm>

#include "circuit/synthesis.hpp"
#include "hamlib/grouping.hpp"
#include "transpile/peephole.hpp"
#include "transpile/rebase.hpp"

namespace phoenix {

namespace {

/// Greedy max-overlap chain over blocks: start from the widest block and
/// repeatedly append the remaining block sharing the most support qubits
/// with the last one (Paulihedral's gate-cancellation-oriented ordering).
std::vector<std::size_t> overlap_order(const std::vector<IrGroup>& groups) {
  std::vector<std::size_t> remaining(groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i) remaining[i] = i;
  std::stable_sort(remaining.begin(), remaining.end(),
                   [&](std::size_t a, std::size_t b) {
                     return groups[a].weight() > groups[b].weight();
                   });
  std::vector<std::size_t> order;
  order.reserve(groups.size());
  while (!remaining.empty()) {
    std::size_t pick = 0;
    if (!order.empty()) {
      const BitVec& last = groups[order.back()].support;
      std::size_t best = 0;
      for (std::size_t w = 0; w < remaining.size(); ++w) {
        const std::size_t ov =
            (groups[remaining[w]].support & last).popcount();
        if (ov > best) {
          best = ov;
          pick = w;
        }
      }
    }
    order.push_back(remaining[pick]);
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return order;
}

}  // namespace

Circuit paulihedral_compile(const std::vector<PauliTerm>& terms,
                            std::size_t num_qubits,
                            const BaselineOptions& opt) {
  auto groups = group_by_support(terms);
  const auto order = overlap_order(groups);

  Circuit c(num_qubits);
  for (std::size_t gi : order) {
    auto& g = groups[gi];
    // Lexicographic term order maximizes ladder sharing between adjacent
    // trees (Paulihedral's intra-block pass).
    std::stable_sort(g.terms.begin(), g.terms.end(),
                     [](const PauliTerm& a, const PauliTerm& b) {
                       return a.string.to_string() < b.string.to_string();
                     });
    const auto sup = g.support.ones();
    // Block-wide chain order: qubits whose operator is constant across the
    // block (typically the Z interior of an excitation) go first, variable
    // qubits last. All trees in the block then share an identical ladder
    // prefix, and the whole constant segment cancels at every seam.
    std::vector<std::size_t> chain;
    std::vector<std::size_t> variable;
    for (std::size_t q : sup) {
      bool constant = true;
      for (const auto& t : g.terms)
        constant &= t.string.op(q) == g.terms.front().string.op(q);
      (constant ? chain : variable).push_back(q);
    }
    chain.insert(chain.end(), variable.begin(), variable.end());
    for (const auto& t : g.terms) {
      if (t.string.support().size() == chain.size())
        append_pauli_rotation_chain(c, t, chain);
      else
        append_pauli_rotation(c, t);  // substring support (defensive)
    }
  }

  if (opt.with_o3)
    optimize_o3(c);
  else
    optimize_o2(c);  // the paper pairs Paulihedral with Qiskit O2 by default

  if (!opt.hardware_aware) return c;
  const SabreResult routed = sabre_route(c, *opt.coupling, opt.sabre);
  Circuit physical = decompose_swaps(routed.routed);
  if (opt.with_o3)
    optimize_o3(physical);
  else
    optimize_o2(physical);
  return physical;
}

}  // namespace phoenix
