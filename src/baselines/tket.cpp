#include "baselines/tket.hpp"

#include <algorithm>

#include "baselines/diagonalize.hpp"
#include "circuit/synthesis.hpp"
#include "transpile/peephole.hpp"
#include "transpile/rebase.hpp"

namespace phoenix {

Circuit tket_compile(const std::vector<PauliTerm>& terms,
                     std::size_t num_qubits, const BaselineOptions& opt) {
  Circuit c(num_qubits);
  for (auto& set : partition_commuting(terms)) {
    Diagonalization diag = diagonalize_commuting_set(set, num_qubits);
    // Gray-code-flavored ordering: lexicographic on the diagonal labels so
    // neighboring rotations share CNOT-ladder prefixes.
    std::stable_sort(diag.diagonal_terms.begin(), diag.diagonal_terms.end(),
                     [](const PauliTerm& a, const PauliTerm& b) {
                       return a.string.to_string() < b.string.to_string();
                     });
    c.append(diag.clifford);
    for (const auto& t : diag.diagonal_terms)
      append_pauli_rotation(c, t, CnotTree::Chain);
    c.append(diag.clifford.inverse());
  }

  // FullPeepholeOptimise stand-in — part of the TKET flow, always applied.
  optimize_o3(c);
  (void)opt.with_o3;

  if (!opt.hardware_aware) return c;
  const SabreResult routed = sabre_route(c, *opt.coupling, opt.sabre);
  Circuit physical = decompose_swaps(routed.routed);
  optimize_o2(physical);
  return physical;
}

}  // namespace phoenix
