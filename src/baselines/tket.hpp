#pragma once

#include "baselines/paulihedral.hpp"

namespace phoenix {

/// TKET-style compilation (Sivarajah et al. 2020, Cowtan et al. 2019):
/// PauliSimp with the "sets" strategy — greedy partition into pairwise
/// commuting sets, simultaneous Clifford diagonalization of each set,
/// phase-polynomial synthesis of the diagonal rotations — followed by a
/// FullPeepholeOptimise-like resynthesis pass (always on, matching the
/// paper's TKET configuration).
Circuit tket_compile(const std::vector<PauliTerm>& terms,
                     std::size_t num_qubits, const BaselineOptions& opt = {});

}  // namespace phoenix
