#include "common/trace.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <variant>

#include "common/error.hpp"

namespace phoenix {

#ifndef PHOENIX_DISABLE_TRACE
thread_local Trace* Trace::tl_current_ = nullptr;
#endif
thread_local std::size_t TraceSpan::tl_depth_ = 0;

Trace::Scope::Scope(Trace* t) noexcept {
#ifdef PHOENIX_DISABLE_TRACE
  (void)t;
#else
  prev_ = tl_current_;
  tl_current_ = t;
#endif
}

Trace::Scope::~Scope() {
#ifndef PHOENIX_DISABLE_TRACE
  tl_current_ = prev_;
#endif
}

void HistogramStats::observe(double value) {
  if (count == 0) {
    min = max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
  std::size_t b = 0;
  while (b < kBucketBounds.size() && value > kBucketBounds[b]) ++b;
  ++buckets[b];
}

std::uint64_t CompileStats::counter(const std::string& name) const {
  for (const CounterStats& c : counters)
    if (c.name == name) return c.value;
  return 0;
}

const StageStats* CompileStats::span(const std::string& name) const {
  for (const StageStats& s : spans)
    if (s.depth == 0 && s.name == name) return &s;
  return nullptr;
}

Trace::Trace() : epoch_(std::chrono::steady_clock::now()) {}

Trace::~Trace() = default;

std::size_t Trace::track_id_locked() {
  const auto tid = std::this_thread::get_id();
  const auto it = tracks_.find(tid);
  if (it != tracks_.end()) return it->second;
  const std::size_t id = tracks_.size();
  tracks_.emplace(tid, id);
  return id;
}

void Trace::add_count(const char* name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void Trace::observe_ms(const char* name, double millis) {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramStats& h = histograms_[name];
  if (h.name.empty()) h.name = name;
  h.observe(millis);
}

void Trace::record_span(const char* name, double start_ms, double millis,
                        std::size_t depth) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(StageStats{name, start_ms, millis, track_id_locked(), depth});
}

CompileStats Trace::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  CompileStats out;
  out.enabled = true;
  out.spans = spans_;
  out.counters.reserve(counters_.size());
  for (const auto& [name, value] : counters_)
    out.counters.push_back(CounterStats{name, value});
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) out.histograms.push_back(hist);
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(), by_name);
  return out;
}

// --- exporters -------------------------------------------------------------

namespace TraceExport {

namespace {

std::string fmt_ms(double ms) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", ms);
  return buf;
}

/// JSON string escaping for the few metacharacters stage names could carry.
std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += ch;
    }
  }
  out += '"';
  return out;
}

/// Shortest-round-trip double formatting (%.17g always re-reads exactly).
std::string json_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string table(const CompileStats& stats) {
  std::string out;
  if (!stats.enabled) return "trace disabled\n";

  out += "stage                                   start ms      dur ms  track\n";
  for (const StageStats& s : stats.spans) {
    std::string name(2 * s.depth, ' ');
    name += s.name;
    if (name.size() < 38) name.resize(38, ' ');
    char buf[96];
    std::snprintf(buf, sizeof buf, "%s  %10s  %10s  t%zu\n", name.c_str(),
                  fmt_ms(s.start_ms).c_str(), fmt_ms(s.millis).c_str(),
                  s.thread);
    out += buf;
  }
  if (!stats.counters.empty()) {
    out += "\ncounter                                      value\n";
    for (const CounterStats& c : stats.counters) {
      char buf[96];
      std::snprintf(buf, sizeof buf, "%-38s  %10llu\n", c.name.c_str(),
                    static_cast<unsigned long long>(c.value));
      out += buf;
    }
  }
  if (!stats.histograms.empty()) {
    out += "\nhistogram                      count     sum ms    mean ms     max ms\n";
    for (const HistogramStats& h : stats.histograms) {
      char buf[128];
      std::snprintf(buf, sizeof buf, "%-26s  %8llu  %9s  %9s  %9s\n",
                    h.name.c_str(), static_cast<unsigned long long>(h.count),
                    fmt_ms(h.sum).c_str(),
                    fmt_ms(h.count ? h.sum / static_cast<double>(h.count) : 0.0)
                        .c_str(),
                    fmt_ms(h.max).c_str());
      out += buf;
    }
  }
  return out;
}

std::string chrome_json(const CompileStats& stats) {
  // Complete ("X") events use microsecond timestamps per the trace-event
  // spec; span depth rides along in args so parse_chrome_json can restore it.
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&]() {
    if (!first) out += ',';
    first = false;
    out += "\n";
  };
  for (const StageStats& s : stats.spans) {
    sep();
    out += "{\"name\":" + json_quote(s.name) +
           ",\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(s.thread) +
           ",\"ts\":" + json_number(s.start_ms * 1000.0) +
           ",\"dur\":" + json_number(s.millis * 1000.0) +
           ",\"args\":{\"depth\":" + std::to_string(s.depth) + "}}";
  }
  for (const CounterStats& c : stats.counters) {
    sep();
    out += "{\"name\":" + json_quote(c.name) +
           ",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":0,\"args\":{\"value\":" +
           std::to_string(c.value) + "}}";
  }
  out += "\n]}\n";
  return out;
}

namespace {

/// Minimal JSON reader covering the documents chrome_json emits (objects,
/// arrays, strings, numbers, booleans, null). Not a general-purpose parser —
/// just enough for a faithful exporter round-trip and for reading profiles
/// back in tests/tools.
struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject>
      v = nullptr;

  const JsonValue* find(const std::string& key) const {
    const auto* obj = std::get_if<JsonObject>(&v);
    if (obj == nullptr) return nullptr;
    const auto it = obj->find(key);
    return it == obj->end() ? nullptr : &it->second;
  }
  double number(double fallback = 0.0) const {
    const auto* d = std::get_if<double>(&v);
    return d != nullptr ? *d : fallback;
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw Error(Stage::Parse,
                "chrome-trace json: " + msg + " at offset " +
                    std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char ch) {
    if (peek() != ch) fail(std::string("expected '") + ch + "'");
    ++pos_;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return JsonValue{string()};
      case 't': return literal("true", JsonValue{true});
      case 'f': return literal("false", JsonValue{false});
      case 'n': return literal("null", JsonValue{nullptr});
      default: return JsonValue{number()};
    }
  }

  JsonValue literal(const char* word, JsonValue v) {
    if (s_.compare(pos_, std::string::traits_type::length(word), word) != 0)
      fail("bad literal");
    pos_ += std::string::traits_type::length(word);
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char ch = s_[pos_++];
      if (ch == '\\') {
        if (pos_ >= s_.size()) fail("unterminated escape");
        switch (s_[pos_++]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          default: fail("unsupported escape");
        }
      } else {
        out += ch;
      }
    }
    if (pos_ >= s_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  double number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            std::strchr("+-.eE", s_[pos_]) != nullptr))
      ++pos_;
    if (pos_ == start) fail("bad value");
    try {
      return std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
  }

  JsonValue array() {
    expect('[');
    JsonArray out;
    if (peek() == ']') {
      ++pos_;
      return JsonValue{std::move(out)};
    }
    while (true) {
      out.push_back(value());
      const char ch = peek();
      ++pos_;
      if (ch == ']') return JsonValue{std::move(out)};
      if (ch != ',') fail("expected ',' or ']'");
    }
  }

  JsonValue object() {
    expect('{');
    JsonObject out;
    if (peek() == '}') {
      ++pos_;
      return JsonValue{std::move(out)};
    }
    while (true) {
      std::string key = string();
      expect(':');
      out.emplace(std::move(key), value());
      const char ch = peek();
      ++pos_;
      if (ch == '}') return JsonValue{std::move(out)};
      if (ch != ',') fail("expected ',' or '}'");
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

CompileStats parse_chrome_json(const std::string& json) {
  const JsonValue doc = JsonReader(json).parse();
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || !std::holds_alternative<JsonArray>(events->v))
    throw Error(Stage::Parse, "chrome-trace json: missing traceEvents array");

  CompileStats out;
  out.enabled = true;
  for (const JsonValue& ev : std::get<JsonArray>(events->v)) {
    const JsonValue* name = ev.find("name");
    const JsonValue* ph = ev.find("ph");
    if (name == nullptr || ph == nullptr ||
        !std::holds_alternative<std::string>(name->v) ||
        !std::holds_alternative<std::string>(ph->v))
      throw Error(Stage::Parse, "chrome-trace json: event without name/ph");
    const std::string& phase = std::get<std::string>(ph->v);
    const JsonValue* args = ev.find("args");
    if (phase == "X") {
      StageStats s;
      s.name = std::get<std::string>(name->v);
      const JsonValue* ts = ev.find("ts");
      const JsonValue* dur = ev.find("dur");
      const JsonValue* tid = ev.find("tid");
      s.start_ms = (ts != nullptr ? ts->number() : 0.0) / 1000.0;
      s.millis = (dur != nullptr ? dur->number() : 0.0) / 1000.0;
      s.thread =
          static_cast<std::size_t>(tid != nullptr ? tid->number() : 0.0);
      if (args != nullptr)
        if (const JsonValue* depth = args->find("depth"))
          s.depth = static_cast<std::size_t>(depth->number());
      out.spans.push_back(std::move(s));
    } else if (phase == "C") {
      const JsonValue* value = args != nullptr ? args->find("value") : nullptr;
      if (value == nullptr)
        throw Error(Stage::Parse, "chrome-trace json: counter without value");
      out.counters.push_back(
          CounterStats{std::get<std::string>(name->v),
                       static_cast<std::uint64_t>(value->number())});
    }
    // Other phases (metadata etc.) are ignored.
  }
  return out;
}

}  // namespace TraceExport

}  // namespace phoenix
