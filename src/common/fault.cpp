#include "common/fault.hpp"

#ifdef PHOENIX_FAULT_INJECT

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace phoenix::fault {

namespace {

/// SplitMix64 step — the same mixer the content hasher uses, giving each
/// failpoint a private deterministic uniform stream.
std::uint64_t splitmix64(std::uint64_t& s) {
  std::uint64_t z = (s += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

struct Point {
  Spec spec;
  std::uint64_t hit_count = 0;
  std::uint64_t fired_count = 0;
  std::uint64_t rng = 0;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Point> points;
  std::atomic<std::uint64_t> total_fired{0};
};

Registry& registry() {
  static Registry r;
  return r;
}

/// Evaluate under the registry lock; returns the armed sleep_ms when fired
/// (0 likewise means "no sleep", which is fine for sleep sites).
bool evaluate(const char* name, double* sleep_ms_out) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.points.find(name);
  if (it == r.points.end()) return false;
  Point& p = it->second;
  const std::uint64_t hit = p.hit_count++;
  if (hit < p.spec.skip) return false;
  if (hit - p.spec.skip >= p.spec.times) return false;
  if (p.spec.probability < 1.0) {
    const double u =
        static_cast<double>(splitmix64(p.rng) >> 11) * 0x1.0p-53;
    if (u >= p.spec.probability) return false;
  }
  ++p.fired_count;
  r.total_fired.fetch_add(1, std::memory_order_relaxed);
  if (sleep_ms_out != nullptr) *sleep_ms_out = p.spec.sleep_ms;
  return true;
}

}  // namespace

void enable(const std::string& name, Spec spec) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  Point p;
  p.spec = spec;
  p.rng = spec.seed;
  r.points[name] = p;
}

void disable(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.points.erase(name);
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.points.clear();
}

bool triggered(const char* name) { return evaluate(name, nullptr); }

bool maybe_sleep(const char* name) {
  double ms = 0.0;
  if (!evaluate(name, &ms)) return false;
  if (ms > 0.0)
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  return true;
}

std::uint64_t hits(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.points.find(name);
  return it == r.points.end() ? 0 : it->second.hit_count;
}

std::uint64_t fired(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.points.find(name);
  return it == r.points.end() ? 0 : it->second.fired_count;
}

std::uint64_t total_fired() {
  return registry().total_fired.load(std::memory_order_relaxed);
}

}  // namespace phoenix::fault

#endif  // PHOENIX_FAULT_INJECT
