#include "common/graph.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace phoenix {

void Graph::add_edge(std::size_t a, std::size_t b) {
  if (a >= adj_.size() || b >= adj_.size())
    throw std::out_of_range("Graph::add_edge: vertex out of range");
  if (a == b) throw std::invalid_argument("Graph::add_edge: self loop");
  if (has_edge(a, b)) throw std::invalid_argument("Graph::add_edge: duplicate");
  adj_[a].push_back(b);
  adj_[b].push_back(a);
  edges_.emplace_back(std::min(a, b), std::max(a, b));
}

bool Graph::has_edge(std::size_t a, std::size_t b) const {
  if (a >= adj_.size() || b >= adj_.size()) return false;
  const auto& na = adj_[a].size() <= adj_[b].size() ? adj_[a] : adj_[b];
  const std::size_t other = adj_[a].size() <= adj_[b].size() ? b : a;
  return std::find(na.begin(), na.end(), other) != na.end();
}

bool Graph::connected() const {
  if (adj_.empty()) return true;
  const auto d = bfs_distances(0);
  return std::find(d.begin(), d.end(), kUnreachable) == d.end();
}

std::vector<std::size_t> Graph::bfs_distances(std::size_t src) const {
  if (src >= adj_.size())
    throw std::out_of_range("Graph::bfs_distances: vertex out of range");
  std::vector<std::size_t> dist(adj_.size(), kUnreachable);
  std::deque<std::size_t> q{src};
  dist[src] = 0;
  while (!q.empty()) {
    const std::size_t v = q.front();
    q.pop_front();
    for (std::size_t u : adj_[v]) {
      if (dist[u] == kUnreachable) {
        dist[u] = dist[v] + 1;
        q.push_back(u);
      }
    }
  }
  return dist;
}

std::vector<std::vector<std::size_t>> Graph::distance_matrix() const {
  std::vector<std::vector<std::size_t>> d;
  d.reserve(adj_.size());
  for (std::size_t v = 0; v < adj_.size(); ++v) d.push_back(bfs_distances(v));
  return d;
}

}  // namespace phoenix
