#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace phoenix {

/// Observability layer for the compile pipeline: RAII stage spans, named
/// monotonic counters, and latency histograms, collected per compile and
/// surfaced as a `CompileStats` on `CompileResult`.
///
/// Design constraints, in order:
///
/// * Near-zero disabled overhead. No `Trace` installed on the current thread
///   means every probe is an inlined thread-local load plus one branch — no
///   clocks, no locks, no allocation (tests/test_trace.cpp asserts the
///   zero-allocation property). Defining `PHOENIX_DISABLE_TRACE` makes
///   `Trace::current()` a constant `nullptr` so the compiler strips every
///   probe entirely (the bench-smoke CI job bounds the residual runtime-
///   guarded overhead at < 2% against such a build).
/// * Thread safety. Probes may fire concurrently from the thread-pool workers
///   of the parallel group-simplify stage; each recorded span carries a small
///   per-trace track id so exports keep per-thread attribution. Counters are
///   plain sums and therefore deterministic for any `num_threads`.
/// * No globals. A `Trace` is a stack object owned by one compile; it is
///   installed on participating threads with `Trace::Scope` (the worker
///   lambda installs it per task), so concurrent compiles never share state.

// --- result-side data model ------------------------------------------------

/// One closed stage span. `start_ms` is relative to the trace epoch (the
/// Trace object's construction); `depth` is the nesting level on its thread;
/// `thread` is a dense per-trace track id (0 = first thread that recorded).
struct StageStats {
  std::string name;
  double start_ms = 0.0;
  double millis = 0.0;
  std::size_t thread = 0;
  std::size_t depth = 0;
};

struct CounterStats {
  std::string name;
  std::uint64_t value = 0;
};

/// Fixed log-scale latency histogram (milliseconds). `buckets[i]` counts
/// observations <= kBucketBounds[i]; the last bucket is unbounded.
struct HistogramStats {
  static constexpr std::array<double, 6> kBucketBounds = {0.01, 0.1,  1.0,
                                                          10.0, 100.0, 1000.0};
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::array<std::uint64_t, kBucketBounds.size() + 1> buckets{};

  void observe(double value);
};

/// Everything one traced compile recorded. Spans appear in completion order
/// (thread-interleaving dependent); counters and histograms are sorted by
/// name, and counter values are independent of thread count and scheduling.
struct CompileStats {
  bool enabled = false;
  std::vector<StageStats> spans;
  std::vector<CounterStats> counters;
  std::vector<HistogramStats> histograms;

  /// Counter value by exact name; 0 when never incremented.
  std::uint64_t counter(const std::string& name) const;
  /// First top-level (depth 0) span with this name, or nullptr.
  const StageStats* span(const std::string& name) const;
};

// --- collection ------------------------------------------------------------

class Trace {
 public:
  Trace();
  ~Trace();
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// The trace installed on the calling thread, or nullptr (tracing off).
  static Trace* current() noexcept {
#ifdef PHOENIX_DISABLE_TRACE
    return nullptr;
#else
    return tl_current_;
#endif
  }

  /// RAII installation of a trace (or nullptr) on the calling thread; restores
  /// the previous installation on destruction. Worker threads servicing a
  /// traced compile install the owning compile's trace per task.
  class Scope {
   public:
    explicit Scope(Trace* t) noexcept;
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
#ifndef PHOENIX_DISABLE_TRACE
    Trace* prev_;
#endif
  };

  void add_count(const char* name, std::uint64_t delta);
  void observe_ms(const char* name, double millis);

  double millis_since_epoch() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Record a closed span directly (TraceSpan is the usual front end).
  void record_span(const char* name, double start_ms, double millis,
                   std::size_t depth);

  /// Snapshot of everything recorded so far (counters/histograms sorted).
  CompileStats snapshot() const;

 private:
#ifndef PHOENIX_DISABLE_TRACE
  static thread_local Trace* tl_current_;
#endif

  /// Dense per-trace track id for the calling thread. Caller holds mu_.
  std::size_t track_id_locked();

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<StageStats> spans_;
  std::unordered_map<std::string, std::uint64_t> counters_;
  std::unordered_map<std::string, HistogramStats> histograms_;
  std::unordered_map<std::thread::id, std::size_t> tracks_;
};

/// RAII stage span: records [construction, destruction) on the current
/// thread's trace. A disabled trace makes both ends branch-only no-ops.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept
      : trace_(Trace::current()), name_(name) {
    if (trace_ == nullptr) return;
    start_ms_ = trace_->millis_since_epoch();
    depth_ = tl_depth_++;
  }
  ~TraceSpan() {
    if (trace_ == nullptr) return;
    --tl_depth_;
    trace_->record_span(name_, start_ms_,
                        trace_->millis_since_epoch() - start_ms_, depth_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  static thread_local std::size_t tl_depth_;
  Trace* trace_;
  const char* name_;
  double start_ms_ = 0.0;
  std::size_t depth_ = 0;
};

/// Bump a named monotonic counter on the current thread's trace, if any.
inline void trace_count(const char* name, std::uint64_t delta) {
  if (delta == 0) return;
  if (Trace* t = Trace::current()) t->add_count(name, delta);
}

/// Record one latency observation into a named histogram, if tracing.
inline void trace_observe_ms(const char* name, double millis) {
  if (Trace* t = Trace::current()) t->observe_ms(name, millis);
}

// --- exporters -------------------------------------------------------------

namespace TraceExport {

/// Human-readable report: a stage table (indented by nesting, with thread
/// tracks), the counters, and the histograms.
std::string table(const CompileStats& stats);

/// chrome://tracing / Perfetto "trace event" JSON: spans as complete ("X")
/// events with per-thread tids, counters as counter ("C") events. Histograms
/// are table-only (the chrome format has no histogram primitive).
std::string chrome_json(const CompileStats& stats);

/// Parse a chrome-trace JSON document produced by `chrome_json` back into a
/// CompileStats (spans and counters; histograms do not round-trip). Throws
/// phoenix::Error (Stage::Parse) on malformed input.
CompileStats parse_chrome_json(const std::string& json);

}  // namespace TraceExport

}  // namespace phoenix
