#include "common/hash.hpp"

#include <bit>
#include <cstring>

namespace phoenix {

namespace {

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ull;

/// SplitMix64 finalizer — full avalanche on one 64-bit word.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

}  // namespace

std::string Digest128::hex() const {
  static const char* digits = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i)
    out[15 - i] = digits[(hi >> (4 * i)) & 0xf];
  for (int i = 0; i < 16; ++i)
    out[31 - i] = digits[(lo >> (4 * i)) & 0xf];
  return out;
}

std::optional<Digest128> Digest128::from_hex(const std::string& s) {
  if (s.size() != 32) return std::nullopt;
  Digest128 d;
  for (int i = 0; i < 32; ++i) {
    const char c = s[i];
    std::uint64_t v;
    if (c >= '0' && c <= '9')
      v = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      v = static_cast<std::uint64_t>(c - 'a' + 10);
    else
      return std::nullopt;
    (i < 16 ? d.hi : d.lo) = ((i < 16 ? d.hi : d.lo) << 4) | v;
  }
  return d;
}

Hash128::Hash128(std::uint64_t seed)
    : s0_(mix64(seed + kGolden)), s1_(mix64(seed + 2 * kGolden)) {}

void Hash128::write_u64(std::uint64_t v) {
  ++count_;
  s0_ = mix64(s0_ ^ (v + count_ * kGolden));
  s1_ = mix64(s1_ + std::rotl(v, 23)) ^ s0_;
}

void Hash128::write_double(double v) {
  write_u64(std::bit_cast<std::uint64_t>(v));
}

void Hash128::write_bytes(const void* data, std::size_t len) {
  write_u64(static_cast<std::uint64_t>(len));
  const auto* p = static_cast<const unsigned char*>(data);
  while (len > 0) {
    const std::size_t chunk = len < 8 ? len : 8;
    std::uint64_t w = 0;
    for (std::size_t i = 0; i < chunk; ++i)  // little-endian assembly
      w |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    write_u64(w);
    p += chunk;
    len -= chunk;
  }
}

Digest128 Hash128::digest() const {
  Digest128 d;
  d.hi = mix64(s0_ + std::rotl(s1_, 31) + count_);
  d.lo = mix64(s1_ ^ d.hi);
  return d;
}

}  // namespace phoenix
