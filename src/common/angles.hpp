#pragma once

#include <cmath>

namespace phoenix {

/// Canonicalize a rotation angle into (−π, π]. 1Q rotations are 2π-periodic
/// up to global phase, so angles that drift outside the principal range
/// (e.g. Rz(2π − ε) from two near-π rotations) fold back and the near-±2π
/// case becomes a droppable near-identity. Shared by every angle-emitting
/// site (peephole merges/fusion, Pauli-rotation synthesis, QASM export) so
/// emitted angles are canonicalized consistently everywhere.
inline double wrap_angle(double a) {
  a = std::remainder(a, 2.0 * M_PI);  // lands in [−π, π]
  if (a <= -M_PI) a = M_PI;
  return a;
}

}  // namespace phoenix
