#pragma once

#include <cmath>
#include <optional>

namespace phoenix {

/// Canonicalize a rotation angle into (−π, π]. 1Q rotations are 2π-periodic
/// up to global phase, so angles that drift outside the principal range
/// (e.g. Rz(2π − ε) from two near-π rotations) fold back and the near-±2π
/// case becomes a droppable near-identity. Shared by every angle-emitting
/// site (peephole merges/fusion, Pauli-rotation synthesis, QASM export) so
/// emitted angles are canonicalized consistently everywhere.
inline double wrap_angle(double a) {
  a = std::remainder(a, 2.0 * M_PI);  // lands in [−π, π]
  if (a <= -M_PI) a = M_PI;
  return a;
}

/// Classify a rotation angle as a Clifford angle: returns k ∈ {0,1,2,3} such
/// that `a ≈ k·(π/2) (mod 2π)` within `tol` (measured in quarter turns), or
/// nullopt for non-Clifford angles. Shared by the tableau (which only accepts
/// Clifford rotations), Pauli-rotation synthesis (which lowers Clifford-angle
/// Rz to discrete S/Z/S† so the O4 region extractor sees them), and the O4
/// extractor itself — one classification rule, one tolerance convention.
inline std::optional<int> clifford_quarter_turns(double a, double tol = 1e-9) {
  const double k = a / (M_PI / 2.0);
  const long ki = std::lround(k);
  if (std::abs(k - static_cast<double>(ki)) > tol) return std::nullopt;
  return static_cast<int>(((ki % 4) + 4) % 4);
}

}  // namespace phoenix
