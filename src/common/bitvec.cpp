#include "common/bitvec.hpp"

#include <bit>
#include <stdexcept>

#include "common/simd.hpp"

namespace phoenix {

BitVec BitVec::from_string(const std::string& bits) {
  BitVec v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] == '1')
      v.set(i, true);
    else if (bits[i] != '0')
      throw std::invalid_argument("BitVec::from_string: bad character");
  }
  return v;
}

std::size_t BitVec::popcount() const {
  return simd::popcount_words(words_.data(), words_.size());
}

bool BitVec::any() const {
  for (auto w : words_)
    if (w != 0) return true;
  return false;
}

std::size_t BitVec::find_first() const { return find_next(0); }

std::size_t BitVec::find_next(std::size_t from) const {
  if (from >= size_) return size_;
  std::size_t wi = from >> 6;
  std::uint64_t w = words_[wi] & (~std::uint64_t{0} << (from & 63));
  while (true) {
    if (w != 0) {
      std::size_t idx = (wi << 6) + static_cast<std::size_t>(std::countr_zero(w));
      return idx < size_ ? idx : size_;
    }
    if (++wi >= words_.size()) return size_;
    w = words_[wi];
  }
}

std::vector<std::size_t> BitVec::ones() const {
  std::vector<std::size_t> out;
  for (std::size_t i = find_first(); i < size_; i = find_next(i + 1))
    out.push_back(i);
  return out;
}

void BitVec::clear() {
  for (auto& w : words_) w = 0;
}

void BitVec::check_same_size(const BitVec& o) const {
  if (size_ != o.size_)
    throw std::invalid_argument("BitVec: size mismatch in bitwise operation");
}

void BitVec::mask_tail() {
  const std::size_t rem = size_ & 63;
  if (rem != 0 && !words_.empty())
    words_.back() &= (std::uint64_t{1} << rem) - 1;
}

BitVec& BitVec::operator&=(const BitVec& o) {
  check_same_size(o);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  return *this;
}

BitVec& BitVec::operator|=(const BitVec& o) {
  check_same_size(o);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  return *this;
}

BitVec& BitVec::operator^=(const BitVec& o) {
  check_same_size(o);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= o.words_[i];
  return *this;
}

std::size_t BitVec::or_popcount(const BitVec& a, const BitVec& b) {
  a.check_same_size(b);
  return simd::or_popcount_words(a.words_.data(), b.words_.data(),
                                 a.words_.size());
}

std::size_t BitVec::or3_popcount(const BitVec& a, const BitVec& b,
                                 const BitVec& c) {
  a.check_same_size(b);
  a.check_same_size(c);
  return simd::or3_popcount_words(a.words_.data(), b.words_.data(),
                                  c.words_.data(), a.words_.size());
}

bool BitVec::and_parity(const BitVec& a, const BitVec& b) {
  a.check_same_size(b);
  return simd::and_parity_words(a.words_.data(), b.words_.data(),
                                a.words_.size());
}

std::string BitVec::to_string() const {
  std::string s(size_, '0');
  for (std::size_t i = 0; i < size_; ++i)
    if (get(i)) s[i] = '1';
  return s;
}

std::size_t BitVec::hash() const {
  // FNV-1a over words, seeded with size.
  std::uint64_t h = 1469598103934665603ull ^ size_;
  for (auto w : words_) {
    h ^= w;
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

}  // namespace phoenix
