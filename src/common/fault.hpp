#pragma once

#include <cstdint>
#include <string>

namespace phoenix::fault {

/// Deterministic, seedable fault injection for the robustness/chaos tests.
///
/// Code under test declares *failpoints* — named sites that ask
/// `triggered("disk.write")` whether they should fail this time — and the
/// test script arms them with a `Spec`. Firing is deterministic: a
/// hit-counted window (`skip` passes, then `times` fires) optionally thinned
/// by a probability drawn from a per-failpoint SplitMix64 stream seeded by
/// `seed`, so a given (spec, hit sequence) always fires the same hits.
///
/// The whole layer is compiled out unless the build defines
/// `PHOENIX_FAULT_INJECT` (CMake -DPHOENIX_FAULT_INJECT=ON): without it
/// `triggered()` is a constant `false` and every failpoint dead-codes away,
/// so release binaries carry zero overhead and zero attack surface. Tests
/// that need faults call `available()` and skip when the layer is absent.
///
/// Failpoint catalog (see DESIGN.md §10):
///   disk.write    cache persist: the write attempt fails (retryable)
///   disk.torn     cache persist: only half the payload reaches the file,
///                 yet the write "succeeds" — a torn entry lands on disk
///   disk.read     cache lookup: the read attempt fails (retryable)
///   compile.throw service: the compile throws mid-flight
///   compile.slow  service: the compile sleeps `sleep_ms` before starting
struct Spec {
  /// Hits that pass through before the failpoint starts firing.
  std::uint64_t skip = 0;
  /// Fires after `skip` (default: every subsequent hit).
  std::uint64_t times = UINT64_MAX;
  /// Per-eligible-hit fire probability (1.0 = scripted/always).
  double probability = 1.0;
  /// Seed of the failpoint's private probability stream.
  std::uint64_t seed = 0;
  /// For sleep-style sites (`compile.slow`): how long to stall.
  double sleep_ms = 0.0;
};

#ifdef PHOENIX_FAULT_INJECT

constexpr bool available() { return true; }

/// Arm `name` with `spec` (resets its hit/fire counters).
void enable(const std::string& name, Spec spec);
/// Disarm one failpoint / every failpoint.
void disable(const std::string& name);
void reset();

/// Evaluate the failpoint: counts the hit, returns true when it fires
/// (bumping the fired counters). Thread-safe.
bool triggered(const char* name);

/// `triggered` for sleep-style sites: when the failpoint fires, sleeps the
/// armed `sleep_ms` and returns true.
bool maybe_sleep(const char* name);

/// Diagnostics for tests and ServiceStats.
std::uint64_t hits(const std::string& name);
std::uint64_t fired(const std::string& name);
std::uint64_t total_fired();

#else  // !PHOENIX_FAULT_INJECT — every site folds to a constant

constexpr bool available() { return false; }

inline void enable(const std::string&, Spec) {}
inline void disable(const std::string&) {}
inline void reset() {}
inline bool triggered(const char*) { return false; }
inline bool maybe_sleep(const char*) { return false; }
inline std::uint64_t hits(const std::string&) { return 0; }
inline std::uint64_t fired(const std::string&) { return 0; }
inline std::uint64_t total_fired() { return 0; }

#endif

}  // namespace phoenix::fault
