#pragma once

#include <cstdint>
#include <vector>

namespace phoenix {

/// Deterministic pseudo-random number generator (xoshiro256** seeded by
/// SplitMix64). All stochastic components of the library (QAOA graph
/// generation, synthetic UCCSD amplitudes) draw from this so that every
/// experiment is reproducible bit-for-bit from a seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) — bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double next_range(double lo, double hi);

  /// Standard normal via Box–Muller.
  double next_gaussian();

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  bool have_gauss_ = false;
  double gauss_ = 0.0;
};

}  // namespace phoenix
