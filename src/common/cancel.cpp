#include "common/cancel.hpp"

#include <algorithm>
#include <string>
#include <utility>

namespace phoenix {

namespace {

using Clock = CancelToken::Clock;

constexpr std::int64_t kNoDeadlineNs = std::numeric_limits<std::int64_t>::max();

std::int64_t to_ns(Clock::time_point tp) {
  if (tp == Clock::time_point::max()) return kNoDeadlineNs;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             tp.time_since_epoch())
      .count();
}

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

std::int64_t deadline_ns_after(double ms) {
  // Saturate rather than overflow for absurdly large timeouts.
  const double ns = ms * 1e6;
  if (ns >= static_cast<double>(kNoDeadlineNs) / 2) return kNoDeadlineNs;
  return now_ns() + static_cast<std::int64_t>(ns);
}

}  // namespace

struct CancelToken::State {
  std::atomic<bool> cancelled{false};
  std::atomic<std::int64_t> deadline_ns{kNoDeadlineNs};
  std::shared_ptr<const State> parent;
};

bool CancelToken::cancel_requested() const {
  for (const State* s = state_.get(); s != nullptr; s = s->parent.get())
    if (s->cancelled.load(std::memory_order_relaxed)) return true;
  return false;
}

bool CancelToken::has_deadline() const {
  for (const State* s = state_.get(); s != nullptr; s = s->parent.get())
    if (s->deadline_ns.load(std::memory_order_relaxed) != kNoDeadlineNs)
      return true;
  return false;
}

bool CancelToken::deadline_expired() const {
  if (state_ == nullptr) return false;
  std::int64_t tightest = kNoDeadlineNs;
  for (const State* s = state_.get(); s != nullptr; s = s->parent.get())
    tightest = std::min(tightest,
                        s->deadline_ns.load(std::memory_order_relaxed));
  return tightest != kNoDeadlineNs && now_ns() >= tightest;
}

double CancelToken::remaining_ms() const {
  std::int64_t tightest = kNoDeadlineNs;
  for (const State* s = state_.get(); s != nullptr; s = s->parent.get())
    tightest = std::min(tightest,
                        s->deadline_ns.load(std::memory_order_relaxed));
  if (tightest == kNoDeadlineNs)
    return std::numeric_limits<double>::infinity();
  return static_cast<double>(tightest - now_ns()) * 1e-6;
}

void CancelToken::check_slow(Stage stage) const {
  if (cancel_requested())
    throw Error(Error::Kind::Cancelled, stage, "compile cancelled");
  std::int64_t tightest = kNoDeadlineNs;
  for (const State* s = state_.get(); s != nullptr; s = s->parent.get())
    tightest = std::min(tightest,
                        s->deadline_ns.load(std::memory_order_relaxed));
  if (tightest == kNoDeadlineNs) return;
  const std::int64_t over = now_ns() - tightest;
  if (over >= 0)
    throw Error(Error::Kind::DeadlineExceeded, stage,
                "compile deadline exceeded by " +
                    std::to_string(static_cast<double>(over) * 1e-6) + " ms");
}

CancelToken CancelToken::after_ms(double ms) {
  CancelSource src(ms);
  return src.token();
}

CancelSource::CancelSource(CancelToken parent) {
  state_ = std::make_shared<CancelToken::State>();
  state_->parent = std::move(parent.state_);
}

CancelSource::CancelSource(double deadline_ms, CancelToken parent)
    : CancelSource(std::move(parent)) {
  state_->deadline_ns.store(deadline_ns_after(deadline_ms),
                            std::memory_order_relaxed);
}

void CancelSource::request_cancel() {
  state_->cancelled.store(true, std::memory_order_relaxed);
}

bool CancelSource::cancel_requested() const {
  return state_->cancelled.load(std::memory_order_relaxed);
}

void CancelSource::set_deadline(Clock::time_point tp) {
  state_->deadline_ns.store(to_ns(tp), std::memory_order_relaxed);
}

void CancelSource::extend_deadline(Clock::time_point tp) {
  const std::int64_t want = to_ns(tp);
  std::int64_t cur = state_->deadline_ns.load(std::memory_order_relaxed);
  while (cur < want && !state_->deadline_ns.compare_exchange_weak(
                           cur, want, std::memory_order_relaxed)) {
  }
}

CancelToken CancelSource::token() const {
  CancelToken t;
  t.state_ = state_;
  return t;
}

}  // namespace phoenix
