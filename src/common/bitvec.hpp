#pragma once

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace phoenix {

/// Dynamic fixed-width bit vector backed by 64-bit words.
///
/// Used throughout the binary-symplectic-form (BSF) machinery to represent
/// one X- or Z-block row of a Pauli tableau. All bitwise operations require
/// operands of identical width; widths are set at construction and never
/// change implicitly.
class BitVec {
 public:
  BitVec() = default;

  /// Construct an all-zero vector of `n` bits.
  explicit BitVec(std::size_t n) : size_(n), words_((n + 63) / 64, 0) {}

  /// Construct from a string of '0'/'1' characters, index 0 first.
  static BitVec from_string(const std::string& bits);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool get(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i, bool v) {
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (v)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }
  void flip(std::size_t i) { words_[i >> 6] ^= std::uint64_t{1} << (i & 63); }

  /// Number of set bits.
  std::size_t popcount() const;

  /// True if any bit is set.
  bool any() const;
  /// True if no bit is set.
  bool none() const { return !any(); }

  /// Index of the lowest set bit, or size() if none.
  std::size_t find_first() const;
  /// Index of the lowest set bit at or after `from`, or size() if none.
  std::size_t find_next(std::size_t from) const;

  /// Indices of all set bits, ascending.
  std::vector<std::size_t> ones() const;

  void clear();

  BitVec& operator&=(const BitVec& o);
  BitVec& operator|=(const BitVec& o);
  BitVec& operator^=(const BitVec& o);

  friend BitVec operator&(BitVec a, const BitVec& b) { return a &= b; }
  friend BitVec operator|(BitVec a, const BitVec& b) { return a |= b; }
  friend BitVec operator^(BitVec a, const BitVec& b) { return a ^= b; }

  bool operator==(const BitVec& o) const = default;

  /// Parity (XOR) of the AND of two vectors — the symplectic-form workhorse.
  static bool and_parity(const BitVec& a, const BitVec& b);

  /// popcount(a | b) without materializing the OR — the Eq. (6) pair terms
  /// call this for every row pair, so the temporary matters.
  static std::size_t or_popcount(const BitVec& a, const BitVec& b);
  /// popcount(a | b | c), fused for the same reason.
  static std::size_t or3_popcount(const BitVec& a, const BitVec& b,
                                  const BitVec& c);

  /// '0'/'1' characters, index 0 first.
  std::string to_string() const;

  /// Stable hash for use as an unordered-map key.
  std::size_t hash() const;

  /// Backing 64-bit words, bit i at words()[i/64] bit i%64; bits past size()
  /// are always zero (mask_tail), so equal vectors have equal words. Used by
  /// content fingerprinting to absorb rows without per-bit traffic.
  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  void check_same_size(const BitVec& o) const;
  void mask_tail();

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

struct BitVecHash {
  std::size_t operator()(const BitVec& v) const { return v.hash(); }
};

}  // namespace phoenix
