#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace phoenix {

/// Pipeline stage an error originated from. Parse covers the text-format
/// readers (Hamiltonian files, OpenQASM); Io covers filesystem failures.
enum class Stage {
  Parse,
  Io,
  Grouping,
  Simplify,
  Ordering,
  Emission,
  Peephole,
  Routing,
  Validation,
  Simulation,
  Service,  ///< compile service: cache, scheduling, thread-pool misuse
  Resynth,  ///< O4 Clifford-region resynthesis tier
};

const char* stage_name(Stage s);

/// Structured compiler error: every throw out of the PHOENIX pipeline and
/// its parsers carries the stage it came from plus, where meaningful, the
/// IR group index and the input line number. `what()` renders all context,
/// so callers that only catch `std::exception` still see it; callers that
/// catch `phoenix::Error` can dispatch on the fields.
class Error : public std::runtime_error {
 public:
  /// Failure class, orthogonal to the stage: a serving layer dispatches on
  /// it (retry Overloaded elsewhere, drop Cancelled silently, surface
  /// DeadlineExceeded to the caller) without string matching. `Failed` is
  /// every ordinary compile/parse/validation error.
  enum class Kind {
    Failed,            ///< ordinary error: bad input, miscompile, IO, ...
    Cancelled,         ///< the request's CancelToken was cancelled
    DeadlineExceeded,  ///< the request's deadline passed
    Overloaded,        ///< admission control shed the request (queue full)
  };

  static constexpr std::size_t kNoGroup = static_cast<std::size_t>(-1);
  static constexpr std::size_t kNoLine = 0;    ///< line numbers are 1-based
  static constexpr std::size_t kNoColumn = 0;  ///< columns are 1-based

  Error(Stage stage, std::string detail, std::size_t line = kNoLine,
        std::size_t group = kNoGroup, std::size_t column = kNoColumn);
  Error(Kind kind, Stage stage, std::string detail, std::size_t line = kNoLine,
        std::size_t group = kNoGroup, std::size_t column = kNoColumn);

  Stage stage() const { return stage_; }
  Kind kind() const { return kind_; }
  const std::string& detail() const { return detail_; }

  bool has_group() const { return group_ != kNoGroup; }
  std::size_t group() const { return group_; }

  bool has_line() const { return line_ != kNoLine; }
  std::size_t line() const { return line_; }

  bool has_column() const { return column_ != kNoColumn; }
  std::size_t column() const { return column_; }

  const char* what() const noexcept override { return message_.c_str(); }

 private:
  Stage stage_;
  Kind kind_;
  std::string detail_;
  std::size_t line_;
  std::size_t group_;
  std::size_t column_;
  std::string message_;
};

const char* kind_name(Error::Kind k);

/// Rebuild `e` with a group index attached (used by the compiler to add the
/// IR-group context that inner stages cannot know). Preserves the kind.
Error with_group(const Error& e, std::size_t group);

}  // namespace phoenix
