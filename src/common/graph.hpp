#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace phoenix {

/// Simple undirected graph on vertices 0..n-1.
///
/// Serves two roles in the library: hardware coupling graphs
/// (see `mapping/topology.hpp`) and qubit-interaction graphs used by the
/// Tetris-like ordering's routing-awareness factor (Eq. 7 of the paper).
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t n) : adj_(n) {}

  std::size_t num_vertices() const { return adj_.size(); }
  std::size_t num_edges() const { return edges_.size(); }

  /// Add an undirected edge; duplicate and self edges are rejected.
  void add_edge(std::size_t a, std::size_t b);
  bool has_edge(std::size_t a, std::size_t b) const;

  const std::vector<std::size_t>& neighbors(std::size_t v) const {
    return adj_[v];
  }
  const std::vector<std::pair<std::size_t, std::size_t>>& edges() const {
    return edges_;
  }
  std::size_t degree(std::size_t v) const { return adj_[v].size(); }

  bool connected() const;

  /// BFS hop distances from `src`; unreachable vertices get kUnreachable.
  std::vector<std::size_t> bfs_distances(std::size_t src) const;

  /// All-pairs shortest hop distances (n BFS traversals).
  std::vector<std::vector<std::size_t>> distance_matrix() const;

  static constexpr std::size_t kUnreachable = static_cast<std::size_t>(-1);

 private:
  std::vector<std::vector<std::size_t>> adj_;
  std::vector<std::pair<std::size_t, std::size_t>> edges_;
};

}  // namespace phoenix
