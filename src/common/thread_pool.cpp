#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "common/error.hpp"

namespace phoenix {

namespace {

/// parallel_for helper tasks run at the highest priority so that a loop
/// already in progress (whose caller is blocked until it drains) always
/// preempts queued standalone jobs — nested loops unwind from the inside out.
constexpr int kHelperPriority = std::numeric_limits<int>::max();

}  // namespace

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable cv;
  /// Priority queue with stable FIFO order inside one priority: keyed by
  /// (-priority, submission sequence), so begin() is always the next job.
  std::map<std::pair<std::int64_t, std::uint64_t>, std::function<void()>> queue;
  std::uint64_t next_seq = 0;
  std::vector<std::thread> workers;
  bool stopping = false;

  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return stopping || !queue.empty(); });
        if (queue.empty()) return;  // stopping and drained
        job = take_first_locked();
      }
      job();
    }
  }

  std::function<void()> take_first_locked() {
    auto node = queue.extract(queue.begin());
    return std::move(node.mapped());
  }

  /// `allow_when_stopping` lets parallel_for keep functioning while the
  /// destructor drains (its helpers are part of already-running work, not
  /// new intake).
  void submit(std::function<void()> job, int priority,
              bool allow_when_stopping) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (stopping && !allow_when_stopping)
        throw Error(Stage::Service,
                    "ThreadPool::submit: pool is shutting down");
      queue.emplace(std::pair{-static_cast<std::int64_t>(priority), next_seq++},
                    std::move(job));
    }
    cv.notify_one();
  }

  /// Pop and run one queued job on the calling thread; false if the queue
  /// was empty. This is how blocked parallel_for callers guarantee progress.
  bool try_run_one() {
    std::function<void()> job;
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (queue.empty()) return false;
      job = take_first_locked();
    }
    job();
    return true;
  }
};

ThreadPool::ThreadPool(std::size_t num_workers) : num_workers_(num_workers) {
  if (num_workers_ == 0) {
    impl_ = nullptr;
    return;
  }
  impl_ = new Impl;
  impl_->workers.reserve(num_workers_);
  for (std::size_t i = 0; i < num_workers_; ++i)
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
}

ThreadPool::~ThreadPool() {
  if (impl_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

void ThreadPool::submit(std::function<void()> job, int priority) {
  if (impl_ == nullptr) {
    job();  // zero-worker pool: run inline, matching parallel_for's fallback
    return;
  }
  impl_->submit(std::move(job), priority, /*allow_when_stopping=*/false);
}

std::size_t ThreadPool::queue_depth() const {
  if (impl_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->queue.size();
}

namespace {

/// Shared state of one parallel_for call: a dynamic index dispenser plus a
/// countdown of helper tasks still running, so the caller can block until the
/// whole iteration space has drained even when workers are also serving other
/// concurrent parallel_for calls.
struct LoopState {
  std::atomic<std::size_t> next{0};
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;

  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t helpers_active = 0;
  std::exception_ptr error;

  void run_indices() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
      }
    }
  }
};

}  // namespace

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t helpers = std::min(num_workers_, n > 0 ? n - 1 : 0);
  if (helpers == 0) {
    // Serial fast path: no shared state, exceptions propagate directly.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<LoopState>();
  state->n = n;
  state->fn = &fn;
  state->helpers_active = helpers;
  for (std::size_t h = 0; h < helpers; ++h)
    impl_->submit(
        [state] {
          state->run_indices();
          {
            std::lock_guard<std::mutex> lock(state->mutex);
            --state->helpers_active;
          }
          state->done_cv.notify_one();
        },
        kHelperPriority, /*allow_when_stopping=*/true);

  state->run_indices();
  // Help drain the pool while our helpers are queued or running: a caller
  // that is itself a pool worker (nested parallel_for, service batch jobs)
  // would otherwise wait on helpers stuck behind the very queue it is
  // blocking. Once the queue is momentarily empty every remaining helper is
  // running on a real worker, so waiting on done_cv is race-free (each
  // helper notifies after decrementing under the lock).
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      if (state->helpers_active == 0) break;
    }
    if (!impl_->try_run_one()) {
      std::unique_lock<std::mutex> lock(state->mutex);
      state->done_cv.wait(lock, [&] { return state->helpers_active == 0; });
      break;
    }
  }
  if (state->error) std::rethrow_exception(state->error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool([] {
    const unsigned hw = std::thread::hardware_concurrency();
    const std::size_t workers = hw > 1 ? static_cast<std::size_t>(hw - 1) : 0;
    return std::min<std::size_t>(workers, 15);
  }());
  return pool;
}

}  // namespace phoenix
