#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

namespace phoenix {

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::function<void()>> queue;
  std::vector<std::thread> workers;
  bool stopping = false;

  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return stopping || !queue.empty(); });
        if (queue.empty()) return;  // stopping and drained
        job = std::move(queue.front());
        queue.pop_front();
      }
      job();
    }
  }

  void submit(std::function<void()> job) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      queue.push_back(std::move(job));
    }
    cv.notify_one();
  }
};

ThreadPool::ThreadPool(std::size_t num_workers) : num_workers_(num_workers) {
  if (num_workers_ == 0) {
    impl_ = nullptr;
    return;
  }
  impl_ = new Impl;
  impl_->workers.reserve(num_workers_);
  for (std::size_t i = 0; i < num_workers_; ++i)
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
}

ThreadPool::~ThreadPool() {
  if (impl_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

namespace {

/// Shared state of one parallel_for call: a dynamic index dispenser plus a
/// countdown of helper tasks still running, so the caller can block until the
/// whole iteration space has drained even when workers are also serving other
/// concurrent parallel_for calls.
struct LoopState {
  std::atomic<std::size_t> next{0};
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;

  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t helpers_active = 0;
  std::exception_ptr error;

  void run_indices() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
      }
    }
  }
};

}  // namespace

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t helpers = std::min(num_workers_, n > 0 ? n - 1 : 0);
  if (helpers == 0) {
    // Serial fast path: no shared state, exceptions propagate directly.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<LoopState>();
  state->n = n;
  state->fn = &fn;
  state->helpers_active = helpers;
  for (std::size_t h = 0; h < helpers; ++h)
    impl_->submit([state] {
      state->run_indices();
      {
        std::lock_guard<std::mutex> lock(state->mutex);
        --state->helpers_active;
      }
      state->done_cv.notify_one();
    });

  state->run_indices();
  std::unique_lock<std::mutex> lock(state->mutex);
  state->done_cv.wait(lock, [&] { return state->helpers_active == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool([] {
    const unsigned hw = std::thread::hardware_concurrency();
    const std::size_t workers = hw > 1 ? static_cast<std::size_t>(hw - 1) : 0;
    return std::min<std::size_t>(workers, 15);
  }());
  return pool;
}

}  // namespace phoenix
