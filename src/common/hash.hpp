#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace phoenix {

/// 128-bit content digest. Stable across platforms and processes for the
/// same input stream, which is what makes it usable as an on-disk
/// content-address (the compile cache persists entries under the digest's
/// hex). Not cryptographic: collision resistance is of the
/// mix-twice-and-cross-feed variety, ample for content addressing a compile
/// cache but no defense against adversarial inputs.
struct Digest128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const Digest128&) const = default;

  /// 32 lowercase hex characters, hi word first.
  std::string hex() const;
  /// Parse the `hex()` form; nullopt on malformed input.
  static std::optional<Digest128> from_hex(const std::string& s);
};

struct Digest128Hash {
  std::size_t operator()(const Digest128& d) const {
    return static_cast<std::size_t>(d.hi ^ (d.lo * 0x9e3779b97f4a7c15ull));
  }
};

/// Incremental 128-bit hasher: two 64-bit SplitMix-style lanes with
/// cross-feeding, finalized with the absorbed-word count so streams that
/// differ only by trailing zero words digest differently.
///
/// All inputs are absorbed as explicit 64-bit words (doubles via their IEEE
/// bit pattern, byte buffers as little-endian-assembled chunks), so a digest
/// never depends on host endianness or struct layout.
class Hash128 {
 public:
  explicit Hash128(std::uint64_t seed = 0);

  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v) { write_u64(static_cast<std::uint64_t>(v)); }
  void write_size(std::size_t v) { write_u64(static_cast<std::uint64_t>(v)); }
  void write_bool(bool v) { write_u64(v ? 1 : 0); }
  /// IEEE-754 bit pattern; distinguishes +0.0 from -0.0 by design (an
  /// exactly-zero coefficient should have been dropped upstream).
  void write_double(double v);
  /// Length-prefixed, so consecutive buffers cannot alias each other.
  void write_bytes(const void* data, std::size_t len);
  void write_string(const std::string& s) { write_bytes(s.data(), s.size()); }

  /// Digest of everything written so far (does not reset the hasher).
  Digest128 digest() const;

 private:
  std::uint64_t s0_ = 0;
  std::uint64_t s1_ = 0;
  std::uint64_t count_ = 0;
};

}  // namespace phoenix
