#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace phoenix {

/// Small reusable worker pool for the compiler's embarrassingly parallel
/// loops (per-IR-group BSF simplification) and the compile service's
/// standalone jobs (batch compiles with priorities).
///
/// Design constraints, in order: determinism, exception safety, low setup
/// cost. Work is handed out either as index ranges through `parallel_for`
/// (blocks until every index has been processed, rethrows the first
/// exception raised by any worker) or as standalone jobs through `submit`
/// (priority-ordered, FIFO within a priority).
///
/// Reentrancy: both entry points are safe to call from inside pool tasks.
/// A `parallel_for` caller that still has helper tasks queued behind other
/// work drains the pool's queue itself while waiting, so nested loops and
/// worker-submitted jobs cannot deadlock the pool (regression covered by
/// tests/test_service.cpp). The calling thread always participates in its
/// own loop, so a pool with zero workers degrades to a plain serial loop —
/// and `submit` on such a pool runs the job inline.
///
/// Shutdown: the destructor stops intake (further `submit` calls throw
/// phoenix::Error, Stage::Service), then runs every already-queued job to
/// completion before joining the workers — a queued job's effects are
/// never silently dropped.
class ThreadPool {
 public:
  /// Spawn `num_workers` worker threads (0 is valid: everything then runs
  /// inline on the calling thread).
  explicit ThreadPool(std::size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_workers() const { return num_workers_; }

  /// Run fn(0), fn(1), …, fn(n-1), partitioned dynamically over the workers
  /// plus the calling thread. Blocks until all n calls finished. If any call
  /// throws, the first captured exception is rethrown here after the loop
  /// drains (remaining indices still run — fn must be safe to call for every
  /// index regardless of other indices' failures).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Enqueue one standalone job. Higher `priority` runs first; jobs of equal
  /// priority run in submission order. Safe to call from worker threads. On
  /// a zero-worker pool the job runs inline before `submit` returns. Throws
  /// phoenix::Error (Stage::Service) once destruction has begun.
  void submit(std::function<void()> job, int priority = 0);

  /// Jobs accepted by `submit`/`parallel_for` but not yet started (current
  /// queue length; helper tasks of in-flight parallel_for calls included).
  std::size_t queue_depth() const;

  /// Process-wide shared pool, lazily created with hardware_concurrency - 1
  /// workers (never more than 15). Intended for callers that want parallelism
  /// "for free" without owning pool lifetime.
  static ThreadPool& shared();

 private:
  struct Impl;
  Impl* impl_;  ///< non-null iff num_workers_ > 0
  std::size_t num_workers_ = 0;
};

}  // namespace phoenix
