#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace phoenix {

/// Small reusable worker pool for the compiler's embarrassingly parallel
/// loops (per-IR-group BSF simplification, batch compiles).
///
/// Design constraints, in order: determinism, exception safety, low setup
/// cost. Work is handed out as index ranges through `parallel_for`, which
/// blocks until every index has been processed and rethrows the first
/// exception raised by any worker (first by completion, not by index —
/// callers that need per-index error attribution catch inside `fn`).
///
/// The pool is safe to share between concurrent `parallel_for` calls; each
/// call tracks its own completion state. The calling thread participates in
/// the loop, so a pool with zero workers (single-core hosts) degrades to a
/// plain serial loop with no thread or lock traffic.
class ThreadPool {
 public:
  /// Spawn `num_workers` worker threads (0 is valid: everything then runs
  /// inline on the calling thread).
  explicit ThreadPool(std::size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_workers() const { return num_workers_; }

  /// Run fn(0), fn(1), …, fn(n-1), partitioned dynamically over the workers
  /// plus the calling thread. Blocks until all n calls finished. If any call
  /// throws, the first captured exception is rethrown here after the loop
  /// drains (remaining indices still run — fn must be safe to call for every
  /// index regardless of other indices' failures).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Process-wide shared pool, lazily created with hardware_concurrency - 1
  /// workers (never more than 15). Intended for callers that want parallelism
  /// "for free" without owning pool lifetime.
  static ThreadPool& shared();

 private:
  struct Impl;
  Impl* impl_;  ///< non-null iff num_workers_ > 0
  std::size_t num_workers_ = 0;
};

}  // namespace phoenix
