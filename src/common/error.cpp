#include "common/error.hpp"

namespace phoenix {

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::Parse: return "parse";
    case Stage::Io: return "io";
    case Stage::Grouping: return "grouping";
    case Stage::Simplify: return "simplify";
    case Stage::Ordering: return "ordering";
    case Stage::Emission: return "emission";
    case Stage::Peephole: return "peephole";
    case Stage::Routing: return "routing";
    case Stage::Validation: return "validation";
    case Stage::Simulation: return "simulation";
    case Stage::Service: return "service";
    case Stage::Resynth: return "resynth";
  }
  return "unknown";
}

const char* kind_name(Error::Kind k) {
  switch (k) {
    case Error::Kind::Failed: return "failed";
    case Error::Kind::Cancelled: return "cancelled";
    case Error::Kind::DeadlineExceeded: return "deadline-exceeded";
    case Error::Kind::Overloaded: return "overloaded";
  }
  return "unknown";
}

namespace {

std::string compose_message(Stage stage, Error::Kind kind,
                            const std::string& detail, std::size_t line,
                            std::size_t group, std::size_t column) {
  std::string msg = "phoenix error [stage=";
  msg += stage_name(stage);
  if (kind != Error::Kind::Failed) {
    msg += ", kind=";
    msg += kind_name(kind);
  }
  if (group != Error::kNoGroup) msg += ", group=" + std::to_string(group);
  if (line != Error::kNoLine) msg += ", line=" + std::to_string(line);
  if (column != Error::kNoColumn) msg += ", col=" + std::to_string(column);
  msg += "]: ";
  msg += detail;
  return msg;
}

}  // namespace

Error::Error(Stage stage, std::string detail, std::size_t line,
             std::size_t group, std::size_t column)
    : Error(Kind::Failed, stage, std::move(detail), line, group, column) {}

Error::Error(Kind kind, Stage stage, std::string detail, std::size_t line,
             std::size_t group, std::size_t column)
    : std::runtime_error(detail),
      stage_(stage),
      kind_(kind),
      detail_(std::move(detail)),
      line_(line),
      group_(group),
      column_(column),
      message_(
          compose_message(stage_, kind_, detail_, line_, group_, column_)) {}

Error with_group(const Error& e, std::size_t group) {
  return Error(e.kind(), e.stage(), e.detail(), e.line(), group, e.column());
}

}  // namespace phoenix
