#include "common/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace phoenix {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: bound == 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit);
  return r % bound;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_range(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::next_gaussian() {
  if (have_gauss_) {
    have_gauss_ = false;
    return gauss_;
  }
  double u1 = 0.0;
  while (u1 == 0.0) u1 = next_double();
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  gauss_ = r * std::sin(theta);
  have_gauss_ = true;
  return r * std::cos(theta);
}

}  // namespace phoenix
