#include "common/simd.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(PHOENIX_DISABLE_SIMD)
#define PHOENIX_SIMD_AVX2 1
#include <immintrin.h>
#endif

namespace phoenix::simd {
namespace detail {

namespace {

// --- Portable fallback ----------------------------------------------------

std::size_t popcount_scalar(const std::uint64_t* a, std::size_t n) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < n; ++i)
    c += static_cast<std::size_t>(std::popcount(a[i]));
  return c;
}

std::size_t or_popcount_scalar(const std::uint64_t* a, const std::uint64_t* b,
                               std::size_t n) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < n; ++i)
    c += static_cast<std::size_t>(std::popcount(a[i] | b[i]));
  return c;
}

std::size_t or3_popcount_scalar(const std::uint64_t* a, const std::uint64_t* b,
                                const std::uint64_t* c, std::size_t n) {
  std::size_t s = 0;
  for (std::size_t i = 0; i < n; ++i)
    s += static_cast<std::size_t>(std::popcount(a[i] | b[i] | c[i]));
  return s;
}

bool and_parity_scalar(const std::uint64_t* a, const std::uint64_t* b,
                       std::size_t n) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc ^= a[i] & b[i];
  return std::popcount(acc) & 1;
}

#ifdef PHOENIX_SIMD_AVX2

// --- AVX2 -----------------------------------------------------------------
//
// Popcount of a 256-bit lane via the classic vpshufb nibble lookup: each byte
// is split into two nibbles, each nibble indexes a 16-entry bit-count table,
// and vpsadbw horizontally sums the per-byte counts into four 64-bit lanes.
// The drivers consume one cache line (two ymm loads, 8 words) per iteration
// and fold the lane sums once at the end.

__attribute__((target("avx2"))) inline __m256i popcnt_epu64(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1,
                       2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) inline std::size_t hsum_epu64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i s = _mm_add_epi64(lo, hi);
  return static_cast<std::size_t>(
      static_cast<std::uint64_t>(_mm_extract_epi64(s, 0)) +
      static_cast<std::uint64_t>(_mm_extract_epi64(s, 1)));
}

__attribute__((target("avx2"))) std::size_t popcount_avx2(
    const std::uint64_t* a, std::size_t n) {
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 4));
    acc0 = _mm256_add_epi64(acc0, popcnt_epu64(v0));
    acc1 = _mm256_add_epi64(acc1, popcnt_epu64(v1));
  }
  std::size_t c = hsum_epu64(_mm256_add_epi64(acc0, acc1));
  for (; i < n; ++i) c += static_cast<std::size_t>(std::popcount(a[i]));
  return c;
}

__attribute__((target("avx2"))) std::size_t or_popcount_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v0 = _mm256_or_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    const __m256i v1 = _mm256_or_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 4)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i + 4)));
    acc0 = _mm256_add_epi64(acc0, popcnt_epu64(v0));
    acc1 = _mm256_add_epi64(acc1, popcnt_epu64(v1));
  }
  std::size_t c = hsum_epu64(_mm256_add_epi64(acc0, acc1));
  for (; i < n; ++i)
    c += static_cast<std::size_t>(std::popcount(a[i] | b[i]));
  return c;
}

__attribute__((target("avx2"))) std::size_t or3_popcount_avx2(
    const std::uint64_t* a, const std::uint64_t* b, const std::uint64_t* c,
    std::size_t n) {
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v0 = _mm256_or_si256(
        _mm256_or_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i))),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + i)));
    const __m256i v1 = _mm256_or_si256(
        _mm256_or_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 4)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i + 4))),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + i + 4)));
    acc0 = _mm256_add_epi64(acc0, popcnt_epu64(v0));
    acc1 = _mm256_add_epi64(acc1, popcnt_epu64(v1));
  }
  std::size_t s = hsum_epu64(_mm256_add_epi64(acc0, acc1));
  for (; i < n; ++i)
    s += static_cast<std::size_t>(std::popcount(a[i] | b[i] | c[i]));
  return s;
}

__attribute__((target("avx2"))) bool and_parity_avx2(const std::uint64_t* a,
                                                     const std::uint64_t* b,
                                                     std::size_t n) {
  // Parity is preserved by XOR-folding, so accumulate a[i] & b[i] into one
  // ymm with vpxor and take the popcount parity of the folded lanes.
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_xor_si256(
        acc, _mm256_and_si256(
                 _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
                 _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i))));
  }
  const __m128i fold = _mm_xor_si128(_mm256_castsi256_si128(acc),
                                     _mm256_extracti128_si256(acc, 1));
  std::uint64_t w =
      static_cast<std::uint64_t>(_mm_extract_epi64(fold, 0)) ^
      static_cast<std::uint64_t>(_mm_extract_epi64(fold, 1));
  for (; i < n; ++i) w ^= a[i] & b[i];
  return std::popcount(w) & 1;
}

#endif  // PHOENIX_SIMD_AVX2

Kernels resolve() {
#ifdef PHOENIX_SIMD_AVX2
  if (__builtin_cpu_supports("avx2"))
    return Kernels{popcount_avx2, or_popcount_avx2, or3_popcount_avx2,
                   and_parity_avx2, "avx2"};
#endif
  return Kernels{popcount_scalar, or_popcount_scalar, or3_popcount_scalar,
                 and_parity_scalar, "scalar"};
}

}  // namespace

const Kernels& kernels() {
  // Magic static: resolved once, thread-safe, valid from first use even
  // during other translation units' static initialization.
  static const Kernels k = resolve();
  return k;
}

}  // namespace detail
}  // namespace phoenix::simd
