#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

/// Runtime-dispatched word/SIMD-parallel kernels over packed 64-bit words —
/// the primitives behind BitVec's popcount family and the BSF column-delta
/// evaluation (DESIGN.md §11).
///
/// Dispatch strategy:
///  * Every kernel has a portable std::uint64_t implementation (std::popcount
///    per word). This is the only implementation on non-x86 targets and when
///    the build forces it with -DPHOENIX_DISABLE_SIMD.
///  * On x86-64 an AVX2 implementation (vpshufb nibble-LUT popcount +
///    vpsadbw, cache-line-sized blocks) is compiled behind
///    __attribute__((target("avx2"))) and selected once at first use via
///    __builtin_cpu_supports — no -mavx2 requirement on the build, one
///    binary runs everywhere.
///  * Inputs shorter than kVectorThreshold words take an inlined scalar loop
///    unconditionally: below ~one cache line the dispatch indirection and
///    vector setup cost more than they save, and BSF rows/columns of small
///    registers live entirely in this regime.
///
/// All kernels treat length-n word arrays with no alignment requirement
/// (AVX2 paths use unaligned loads) and no tail masking: callers pass whole
/// words, with any partial-word semantics (BitVec's zeroed tail bits) already
/// applied.
namespace phoenix::simd {

/// Word counts below this take the inline scalar loop; at or above it the
/// dispatched kernel runs. 8 words = 512 bits = one cache line of operand.
inline constexpr std::size_t kVectorThreshold = 8;

namespace detail {

using Reduce1Fn = std::size_t (*)(const std::uint64_t*, std::size_t);
using Reduce2Fn = std::size_t (*)(const std::uint64_t*, const std::uint64_t*,
                                  std::size_t);
using Reduce3Fn = std::size_t (*)(const std::uint64_t*, const std::uint64_t*,
                                  const std::uint64_t*, std::size_t);
using Parity2Fn = bool (*)(const std::uint64_t*, const std::uint64_t*,
                           std::size_t);

/// Resolved once (thread-safe magic static inside); members never null.
struct Kernels {
  Reduce1Fn popcount;
  Reduce2Fn or_popcount;
  Reduce3Fn or3_popcount;
  Parity2Fn and_parity;
  const char* level;  ///< "avx2" or "scalar"
};
const Kernels& kernels();

}  // namespace detail

/// Name of the instruction set the large-input kernels dispatched to:
/// "avx2" or "scalar". Diagnostic only — results are identical either way
/// (property-tested in tests/test_bitvec.cpp).
inline const char* active_level() { return detail::kernels().level; }

/// Σ popcount(a[i]).
inline std::size_t popcount_words(const std::uint64_t* a, std::size_t n) {
  if (n < kVectorThreshold) {
    std::size_t c = 0;
    for (std::size_t i = 0; i < n; ++i)
      c += static_cast<std::size_t>(std::popcount(a[i]));
    return c;
  }
  return detail::kernels().popcount(a, n);
}

/// Σ popcount(a[i] | b[i]) without materializing the OR.
inline std::size_t or_popcount_words(const std::uint64_t* a,
                                     const std::uint64_t* b, std::size_t n) {
  if (n < kVectorThreshold) {
    std::size_t c = 0;
    for (std::size_t i = 0; i < n; ++i)
      c += static_cast<std::size_t>(std::popcount(a[i] | b[i]));
    return c;
  }
  return detail::kernels().or_popcount(a, b, n);
}

/// Σ popcount(a[i] | b[i] | c[i]).
inline std::size_t or3_popcount_words(const std::uint64_t* a,
                                      const std::uint64_t* b,
                                      const std::uint64_t* c, std::size_t n) {
  if (n < kVectorThreshold) {
    std::size_t s = 0;
    for (std::size_t i = 0; i < n; ++i)
      s += static_cast<std::size_t>(std::popcount(a[i] | b[i] | c[i]));
    return s;
  }
  return detail::kernels().or3_popcount(a, b, c, n);
}

/// Parity of popcount(a & b) — the symplectic form.
inline bool and_parity_words(const std::uint64_t* a, const std::uint64_t* b,
                             std::size_t n) {
  if (n < kVectorThreshold) {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) acc ^= a[i] & b[i];
    return std::popcount(acc) & 1;
  }
  return detail::kernels().and_parity(a, b, n);
}

}  // namespace phoenix::simd
