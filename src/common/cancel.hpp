#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>

#include "common/error.hpp"

namespace phoenix {

/// Cooperative cancellation + deadline propagation for long-running compiles.
///
/// A `CancelSource` owns the request's cancellation state; `CancelToken` is a
/// cheap copyable view handed down through `PhoenixOptions` into the stage
/// loops (simplify greedy descent, Tetris ordering, SABRE routing, peephole
/// worklist). The loops call `poll()` with a local tick counter: a
/// default-constructed (empty) token costs a single pointer test per call,
/// an armed token costs a counter increment on most calls and consults the
/// atomic flag + clock only once per `kPollStride` iterations — so a
/// cancelled or expired compile aborts within a bounded number of loop
/// steps (milliseconds in practice) while the uninstrumented hot path stays
/// within noise of the pre-token baseline (asserted by the benchmark-smoke
/// CI job).
///
/// Tripping a check throws a structured `phoenix::Error` whose `kind()` is
/// `Cancelled` or `DeadlineExceeded` and whose stage is the loop that
/// noticed — a compile never returns a partially-optimized circuit.
///
/// Deadlines are `steady_clock` absolute times stored as an atomic
/// nanosecond count, so the serving layer can *relax* a shared flight's
/// deadline as later joiners with looser deadlines arrive (the compile must
/// outlive the most patient waiter). Tokens may also chain to a parent
/// token: a derived token trips when it or any ancestor trips, with the
/// effective deadline the tightest along the chain.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// The flag + clock are consulted once per this many poll() calls. Power
  /// of two so the amortization is a mask, not a division.
  static constexpr std::uint32_t kPollStride = 256;

  /// Empty token: never cancels, polls are one pointer test.
  CancelToken() = default;

  bool valid() const { return state_ != nullptr; }

  /// True when this token (or an ancestor) was cancelled. No clock read.
  bool cancel_requested() const;

  /// True when the effective deadline (tightest along the parent chain) has
  /// passed. One clock read; false for tokens without a deadline.
  bool deadline_expired() const;

  bool has_deadline() const;

  /// Milliseconds until the effective deadline: +infinity when none,
  /// negative when already expired.
  double remaining_ms() const;

  /// Throw Error(Cancelled|DeadlineExceeded, stage) if tripped.
  void check(Stage stage) const {
    if (state_ == nullptr) return;
    check_slow(stage);
  }

  /// Amortized check for hot loops. `tick` is a caller-local counter (one
  /// per loop); the expensive check runs when it wraps the stride.
  void poll(std::uint32_t& tick, Stage stage) const {
    if (state_ == nullptr) return;
    if ((++tick & (kPollStride - 1)) != 0) return;
    check_slow(stage);
  }

  /// Standalone deadline-only token expiring `ms` from now (ms <= 0 makes a
  /// token that is already expired — useful for shedding ahead of work).
  static CancelToken after_ms(double ms);

 private:
  friend class CancelSource;
  struct State;
  void check_slow(Stage stage) const;
  std::shared_ptr<const State> state_;
};

/// Owning side of a cancellation scope: create one per request (or per
/// shared in-flight compile), hand `token()` down, call `request_cancel()`
/// from any thread to abort.
class CancelSource {
 public:
  using Clock = CancelToken::Clock;

  /// No deadline, optionally chained to a parent token (the source trips
  /// when the parent does).
  explicit CancelSource(CancelToken parent = {});
  /// Deadline `ms` from now (ms <= 0: already expired).
  explicit CancelSource(double deadline_ms, CancelToken parent = {});

  void request_cancel();
  bool cancel_requested() const;

  /// Replace the deadline (time_point::max() clears it).
  void set_deadline(Clock::time_point tp);
  /// Relax the deadline to at least `tp` (monotonic max; time_point::max()
  /// removes it). Used by the single-flight serving layer: a shared compile
  /// must run until its most patient joiner's deadline.
  void extend_deadline(Clock::time_point tp);

  CancelToken token() const;

 private:
  std::shared_ptr<CancelToken::State> state_;
};

}  // namespace phoenix
