#pragma once

#include <vector>

#include "pauli/pauli.hpp"
#include "sim/statevector.hpp"

namespace phoenix {

/// ⟨ψ| P |ψ⟩ for a Hermitian Pauli string (always real).
double pauli_expectation(const StateVector& psi, const PauliString& p);

/// ⟨ψ| H |ψ⟩ = Σ_j h_j ⟨ψ| P_j |ψ⟩ — the VQE energy functional evaluated on
/// a compiled-ansatz output state.
double energy_expectation(const StateVector& psi,
                          const std::vector<PauliTerm>& hamiltonian);

}  // namespace phoenix
