#pragma once

#include <array>
#include <complex>
#include <cstddef>
#include <vector>

#include "circuit/circuit.hpp"
#include "pauli/pauli.hpp"
#include "sim/matrix.hpp"

namespace phoenix {

/// The 2x2 unitary of a 1Q gate (throws for 2Q kinds).
std::array<Complex, 4> gate_matrix_1q(const Gate& g);

/// Dense state-vector simulator.
///
/// Qubit 0 is the most significant index bit (matching the tensor-product
/// convention `U = u_0 ⊗ u_1 ⊗ …` used across the library).
class StateVector {
 public:
  /// |0...0> on n qubits.
  explicit StateVector(std::size_t num_qubits);

  std::size_t num_qubits() const { return n_; }
  std::size_t dim() const { return amps_.size(); }

  const std::vector<Complex>& amplitudes() const { return amps_; }
  Complex amplitude(std::size_t basis_state) const { return amps_[basis_state]; }

  /// Reset to the computational basis state |k>.
  void set_basis_state(std::size_t k);

  void apply_gate(const Gate& g);
  void apply_circuit(const Circuit& c);

  /// Multiply by exp(-i coeff P) analytically (cos I - i sin P applied
  /// directly). Reference implementation used to validate synthesized
  /// rotation circuits and to build ideal Trotter-step unitaries.
  void apply_pauli_rotation(const PauliTerm& term);

  /// In-place |psi> <- P |psi| for a Pauli string (phase included).
  void apply_pauli(const PauliString& p);

  double norm() const;
  Complex inner_product(const StateVector& o) const;

 private:
  void apply_1q(const std::array<Complex, 4>& m, std::size_t q);
  void apply_cnot(std::size_t c, std::size_t t);
  void apply_cz(std::size_t a, std::size_t b);
  void apply_swap(std::size_t a, std::size_t b);

  std::size_t n_ = 0;
  std::vector<Complex> amps_;
};

/// Full unitary of a circuit, built column-by-column with the state-vector
/// simulator. Feasible up to ~10-12 qubits.
Matrix circuit_unitary(const Circuit& c);

/// Dense matrix of a Hamiltonian given as a weighted Pauli-string sum.
Matrix hamiltonian_matrix(const std::vector<PauliTerm>& terms,
                          std::size_t num_qubits);

/// Dense matrix of exp(-i coeff P).
Matrix pauli_rotation_matrix(const PauliTerm& term, std::size_t num_qubits);

}  // namespace phoenix
