#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace phoenix {

using Complex = std::complex<double>;

/// Dense square complex matrix (row-major). Sized for the algorithmic-error
/// experiments of the paper (unitaries of <= 10-qubit circuits, i.e. up to
/// 1024 x 1024).
class Matrix {
 public:
  Matrix() = default;
  explicit Matrix(std::size_t dim) : dim_(dim), a_(dim * dim, Complex{0, 0}) {}

  static Matrix identity(std::size_t dim);

  std::size_t dim() const { return dim_; }

  Complex& at(std::size_t r, std::size_t c) { return a_[r * dim_ + c]; }
  const Complex& at(std::size_t r, std::size_t c) const {
    return a_[r * dim_ + c];
  }

  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(Complex s);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, Complex s) { return a *= s; }

  /// Matrix product (blocked triple loop; adequate for dim <= 1024).
  friend Matrix operator*(const Matrix& a, const Matrix& b);

  Matrix adjoint() const;
  Complex trace() const;

  /// Max absolute entry (used for scaling in expm and for comparisons).
  double max_abs() const;
  /// 1-norm (max column absolute sum); drives expm scaling.
  double one_norm() const;

  bool approx_equal(const Matrix& o, double tol = 1e-9) const;

 private:
  std::size_t dim_ = 0;
  std::vector<Complex> a_;
};

/// exp(-i t H) for Hermitian H via scaling-and-squaring with a Taylor series
/// evaluated to machine precision on the scaled matrix.
Matrix expm_minus_i(const Matrix& h, double t);

/// Unitary infidelity of the paper's §V-F: 1 - |Tr(U† V)| / N.
double infidelity(const Matrix& u, const Matrix& v);

}  // namespace phoenix
