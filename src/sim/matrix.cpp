#include "sim/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace phoenix {

Matrix Matrix::identity(std::size_t dim) {
  Matrix m(dim);
  for (std::size_t i = 0; i < dim; ++i) m.at(i, i) = 1;
  return m;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  if (dim_ != o.dim_) throw std::invalid_argument("Matrix::+=: dim mismatch");
  for (std::size_t i = 0; i < a_.size(); ++i) a_[i] += o.a_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  if (dim_ != o.dim_) throw std::invalid_argument("Matrix::-=: dim mismatch");
  for (std::size_t i = 0; i < a_.size(); ++i) a_[i] -= o.a_[i];
  return *this;
}

Matrix& Matrix::operator*=(Complex s) {
  for (auto& v : a_) v *= s;
  return *this;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  if (a.dim_ != b.dim_) throw std::invalid_argument("Matrix::*: dim mismatch");
  const std::size_t n = a.dim_;
  Matrix c(n);
  // ikj loop order keeps the inner loop contiguous in both b and c.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      const Complex aik = a.a_[i * n + k];
      if (aik == Complex{0, 0}) continue;
      const Complex* brow = &b.a_[k * n];
      Complex* crow = &c.a_[i * n];
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix Matrix::adjoint() const {
  Matrix m(dim_);
  for (std::size_t i = 0; i < dim_; ++i)
    for (std::size_t j = 0; j < dim_; ++j) m.at(j, i) = std::conj(at(i, j));
  return m;
}

Complex Matrix::trace() const {
  Complex t{0, 0};
  for (std::size_t i = 0; i < dim_; ++i) t += at(i, i);
  return t;
}

double Matrix::max_abs() const {
  double m = 0;
  for (const auto& v : a_) m = std::max(m, std::abs(v));
  return m;
}

double Matrix::one_norm() const {
  double best = 0;
  for (std::size_t j = 0; j < dim_; ++j) {
    double col = 0;
    for (std::size_t i = 0; i < dim_; ++i) col += std::abs(at(i, j));
    best = std::max(best, col);
  }
  return best;
}

bool Matrix::approx_equal(const Matrix& o, double tol) const {
  if (dim_ != o.dim_) return false;
  for (std::size_t i = 0; i < a_.size(); ++i)
    if (std::abs(a_[i] - o.a_[i]) > tol) return false;
  return true;
}

Matrix expm_minus_i(const Matrix& h, double t) {
  const std::size_t n = h.dim();
  // A = -i t H, scaled so ||A/2^s||_1 <= 0.5, then Taylor + repeated squaring.
  Matrix a = h;
  a *= Complex{0, -t};
  const double norm = a.one_norm();
  int s = 0;
  double scaled = norm;
  while (scaled > 0.5) {
    scaled /= 2;
    ++s;
  }
  const double factor = std::ldexp(1.0, -s);
  a *= Complex{factor, 0};

  Matrix result = Matrix::identity(n);
  Matrix term = Matrix::identity(n);
  // ||A|| <= 0.5: ~20 terms reach double precision.
  for (int k = 1; k <= 24; ++k) {
    term = term * a;
    term *= Complex{1.0 / k, 0};
    result += term;
    if (term.max_abs() < 1e-18) break;
  }
  for (int i = 0; i < s; ++i) result = result * result;
  return result;
}

double infidelity(const Matrix& u, const Matrix& v) {
  if (u.dim() != v.dim())
    throw std::invalid_argument("infidelity: dim mismatch");
  const Complex tr = (u.adjoint() * v).trace();
  return 1.0 - std::abs(tr) / static_cast<double>(u.dim());
}

}  // namespace phoenix
