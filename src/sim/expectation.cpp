#include "sim/expectation.hpp"

namespace phoenix {

double pauli_expectation(const StateVector& psi, const PauliString& p) {
  StateVector tmp = psi;
  tmp.apply_pauli(p);
  return psi.inner_product(tmp).real();
}

double energy_expectation(const StateVector& psi,
                          const std::vector<PauliTerm>& hamiltonian) {
  double e = 0;
  for (const auto& t : hamiltonian)
    e += t.coeff * pauli_expectation(psi, t.string);
  return e;
}

}  // namespace phoenix
