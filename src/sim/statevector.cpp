#include "sim/statevector.hpp"

#include <cmath>
#include <stdexcept>

namespace phoenix {

namespace {
constexpr Complex kI{0, 1};
}

std::array<Complex, 4> gate_matrix_1q(const Gate& g) {
  const double c = std::cos(g.param / 2), s = std::sin(g.param / 2);
  const double r = 1.0 / std::sqrt(2.0);
  switch (g.kind) {
    case GateKind::I: return {1, 0, 0, 1};
    case GateKind::H: return {r, r, r, -r};
    case GateKind::X: return {0, 1, 1, 0};
    case GateKind::Y: return {0, -kI, kI, 0};
    case GateKind::Z: return {1, 0, 0, -1};
    case GateKind::S: return {1, 0, 0, kI};
    case GateKind::Sdg: return {1, 0, 0, -kI};
    case GateKind::T: return {1, 0, 0, std::polar(1.0, M_PI / 4)};
    case GateKind::Tdg: return {1, 0, 0, std::polar(1.0, -M_PI / 4)};
    case GateKind::SqrtX:
      return {Complex{0.5, 0.5}, Complex{0.5, -0.5}, Complex{0.5, -0.5},
              Complex{0.5, 0.5}};
    case GateKind::SqrtXdg:
      return {Complex{0.5, -0.5}, Complex{0.5, 0.5}, Complex{0.5, 0.5},
              Complex{0.5, -0.5}};
    case GateKind::Rx: return {c, -kI * s, -kI * s, c};
    case GateKind::Ry: return {c, -s, s, c};
    case GateKind::Rz:
      return {std::polar(1.0, -g.param / 2), 0, 0, std::polar(1.0, g.param / 2)};
    default:
      throw std::invalid_argument("gate_matrix_1q: not a 1Q gate");
  }
}

StateVector::StateVector(std::size_t num_qubits)
    : n_(num_qubits), amps_(std::size_t{1} << num_qubits, Complex{0, 0}) {
  amps_[0] = 1;
}

void StateVector::set_basis_state(std::size_t k) {
  if (k >= amps_.size())
    throw std::out_of_range("StateVector::set_basis_state");
  std::fill(amps_.begin(), amps_.end(), Complex{0, 0});
  amps_[k] = 1;
}

void StateVector::apply_1q(const std::array<Complex, 4>& m, std::size_t q) {
  const std::size_t bit = std::size_t{1} << (n_ - 1 - q);
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if (i & bit) continue;
    const Complex a0 = amps_[i], a1 = amps_[i | bit];
    amps_[i] = m[0] * a0 + m[1] * a1;
    amps_[i | bit] = m[2] * a0 + m[3] * a1;
  }
}

void StateVector::apply_cnot(std::size_t c, std::size_t t) {
  const std::size_t cb = std::size_t{1} << (n_ - 1 - c);
  const std::size_t tb = std::size_t{1} << (n_ - 1 - t);
  for (std::size_t i = 0; i < amps_.size(); ++i)
    if ((i & cb) && !(i & tb)) std::swap(amps_[i], amps_[i | tb]);
}

void StateVector::apply_cz(std::size_t a, std::size_t b) {
  const std::size_t ab = std::size_t{1} << (n_ - 1 - a);
  const std::size_t bb = std::size_t{1} << (n_ - 1 - b);
  for (std::size_t i = 0; i < amps_.size(); ++i)
    if ((i & ab) && (i & bb)) amps_[i] = -amps_[i];
}

void StateVector::apply_swap(std::size_t a, std::size_t b) {
  const std::size_t ab = std::size_t{1} << (n_ - 1 - a);
  const std::size_t bb = std::size_t{1} << (n_ - 1 - b);
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    const bool ba = i & ab, bbit = i & bb;
    if (ba && !bbit) std::swap(amps_[i], amps_[(i ^ ab) | bb]);
  }
}

void StateVector::apply_gate(const Gate& g) {
  if (g.q0 >= n_ || (g.is_two_qubit() && g.q1 >= n_))
    throw std::out_of_range("StateVector::apply_gate: qubit out of range");
  switch (g.kind) {
    case GateKind::Cnot: apply_cnot(g.q0, g.q1); return;
    case GateKind::Cz: apply_cz(g.q0, g.q1); return;
    case GateKind::Swap: apply_swap(g.q0, g.q1); return;
    case GateKind::Su4:
      for (const auto& s : g.sub) apply_gate(s);
      return;
    default:
      apply_1q(gate_matrix_1q(g), g.q0);
  }
}

void StateVector::apply_circuit(const Circuit& c) {
  if (c.num_qubits() > n_)
    throw std::invalid_argument("StateVector::apply_circuit: register too small");
  for (const auto& g : c.gates()) apply_gate(g);
}

void StateVector::apply_pauli(const PauliString& p) {
  if (p.num_qubits() != n_)
    throw std::invalid_argument("StateVector::apply_pauli: size mismatch");
  // Flip mask for X/Y positions; per-state phase from Y and Z positions.
  std::size_t flip = 0;
  std::vector<std::size_t> ybits, zbits;
  for (std::size_t q = 0; q < n_; ++q) {
    const Pauli op = p.op(q);
    const std::size_t bit = std::size_t{1} << (n_ - 1 - q);
    if (op == Pauli::X || op == Pauli::Y) flip |= bit;
    if (op == Pauli::Y) ybits.push_back(bit);
    if (op == Pauli::Z) zbits.push_back(bit);
  }
  std::vector<Complex> out(amps_.size());
  for (std::size_t b = 0; b < amps_.size(); ++b) {
    Complex phase{1, 0};
    for (std::size_t yb : ybits) phase *= (b & yb) ? -kI : kI;
    for (std::size_t zb : zbits)
      if (b & zb) phase = -phase;
    out[b ^ flip] = phase * amps_[b];
  }
  amps_ = std::move(out);
}

void StateVector::apply_pauli_rotation(const PauliTerm& term) {
  const double c = std::cos(term.coeff), s = std::sin(term.coeff);
  StateVector tmp = *this;
  tmp.apply_pauli(term.string);
  for (std::size_t i = 0; i < amps_.size(); ++i)
    amps_[i] = c * amps_[i] - kI * s * tmp.amps_[i];
}

double StateVector::norm() const {
  double s = 0;
  for (const auto& a : amps_) s += std::norm(a);
  return std::sqrt(s);
}

Complex StateVector::inner_product(const StateVector& o) const {
  if (n_ != o.n_)
    throw std::invalid_argument("StateVector::inner_product: size mismatch");
  Complex s{0, 0};
  for (std::size_t i = 0; i < amps_.size(); ++i)
    s += std::conj(amps_[i]) * o.amps_[i];
  return s;
}

namespace {

/// Left-multiply a 1Q gate into the accumulated unitary: combine row pairs
/// across all columns at once (contiguous memory, vectorizes well — this is
/// the hot path of the Fig. 8 algorithmic-error experiment).
void left_apply_1q(Matrix& u, const std::array<Complex, 4>& m, std::size_t q,
                   std::size_t n) {
  const std::size_t dim = std::size_t{1} << n;
  const std::size_t bit = std::size_t{1} << (n - 1 - q);
  for (std::size_t i = 0; i < dim; ++i) {
    if (i & bit) continue;
    Complex* r0 = &u.at(i, 0);
    Complex* r1 = &u.at(i | bit, 0);
    for (std::size_t col = 0; col < dim; ++col) {
      const Complex a0 = r0[col], a1 = r1[col];
      r0[col] = m[0] * a0 + m[1] * a1;
      r1[col] = m[2] * a0 + m[3] * a1;
    }
  }
}

void left_apply_gate(Matrix& u, const Gate& g, std::size_t n) {
  const std::size_t dim = std::size_t{1} << n;
  switch (g.kind) {
    case GateKind::Cnot: {
      const std::size_t cb = std::size_t{1} << (n - 1 - g.q0);
      const std::size_t tb = std::size_t{1} << (n - 1 - g.q1);
      for (std::size_t i = 0; i < dim; ++i)
        if ((i & cb) && !(i & tb))
          std::swap_ranges(&u.at(i, 0), &u.at(i, 0) + dim, &u.at(i | tb, 0));
      return;
    }
    case GateKind::Cz: {
      const std::size_t ab = std::size_t{1} << (n - 1 - g.q0);
      const std::size_t bb = std::size_t{1} << (n - 1 - g.q1);
      for (std::size_t i = 0; i < dim; ++i)
        if ((i & ab) && (i & bb)) {
          Complex* row = &u.at(i, 0);
          for (std::size_t col = 0; col < dim; ++col) row[col] = -row[col];
        }
      return;
    }
    case GateKind::Swap: {
      const std::size_t ab = std::size_t{1} << (n - 1 - g.q0);
      const std::size_t bb = std::size_t{1} << (n - 1 - g.q1);
      for (std::size_t i = 0; i < dim; ++i) {
        const bool ba = i & ab, bbit = i & bb;
        if (ba && !bbit)
          std::swap_ranges(&u.at(i, 0), &u.at(i, 0) + dim,
                           &u.at((i ^ ab) | bb, 0));
      }
      return;
    }
    case GateKind::Su4:
      for (const auto& s : g.sub) left_apply_gate(u, s, n);
      return;
    default:
      left_apply_1q(u, gate_matrix_1q(g), g.q0, n);
  }
}

}  // namespace

Matrix circuit_unitary(const Circuit& c) {
  const std::size_t n = c.num_qubits();
  const std::size_t dim = std::size_t{1} << n;
  Matrix u = Matrix::identity(dim);
  for (const auto& g : c.gates()) left_apply_gate(u, g, n);
  return u;
}

Matrix hamiltonian_matrix(const std::vector<PauliTerm>& terms,
                          std::size_t num_qubits) {
  const std::size_t dim = std::size_t{1} << num_qubits;
  Matrix h(dim);
  // Each Pauli string maps |col> to phase(col) * |col ^ flip>: one nonzero
  // entry per column, so the matrix is filled term-by-term in O(L * 2^n * w).
  for (const auto& t : terms) {
    std::size_t flip = 0;
    std::vector<std::size_t> ybits, zbits;
    for (std::size_t q = 0; q < num_qubits; ++q) {
      const Pauli op = t.string.op(q);
      const std::size_t bit = std::size_t{1} << (num_qubits - 1 - q);
      if (op == Pauli::X || op == Pauli::Y) flip |= bit;
      if (op == Pauli::Y) ybits.push_back(bit);
      if (op == Pauli::Z) zbits.push_back(bit);
    }
    for (std::size_t col = 0; col < dim; ++col) {
      Complex phase{1, 0};
      for (std::size_t yb : ybits) phase *= (col & yb) ? -kI : kI;
      for (std::size_t zb : zbits)
        if (col & zb) phase = -phase;
      h.at(col ^ flip, col) += t.coeff * phase;
    }
  }
  return h;
}

Matrix pauli_rotation_matrix(const PauliTerm& term, std::size_t num_qubits) {
  const std::size_t dim = std::size_t{1} << num_qubits;
  Matrix u(dim);
  StateVector sv(num_qubits);
  for (std::size_t col = 0; col < dim; ++col) {
    sv.set_basis_state(col);
    sv.apply_pauli_rotation(term);
    for (std::size_t row = 0; row < dim; ++row) u.at(row, col) = sv.amplitude(row);
  }
  return u;
}

}  // namespace phoenix
