#include <gtest/gtest.h>

#include "baselines/diagonalize.hpp"
#include "baselines/paulihedral.hpp"
#include "baselines/tetris.hpp"
#include "baselines/tket.hpp"
#include "baselines/twoqan.hpp"
#include "circuit/synthesis.hpp"
#include "common/rng.hpp"
#include "hamlib/qaoa.hpp"
#include "hamlib/uccsd.hpp"
#include "mapping/topology.hpp"
#include "sim/matrix.hpp"
#include "sim/statevector.hpp"

namespace phoenix {
namespace {

Matrix trotter_product_unitary(const std::vector<PauliTerm>& terms,
                               std::size_t n) {
  const std::size_t dim = std::size_t{1} << n;
  Matrix u(dim);
  StateVector sv(n);
  for (std::size_t col = 0; col < dim; ++col) {
    sv.set_basis_state(col);
    for (const auto& t : terms) sv.apply_pauli_rotation(t);
    for (std::size_t row = 0; row < dim; ++row)
      u.at(row, col) = sv.amplitude(row);
  }
  return u;
}

/// Random pairwise-commuting set built by multiplying random pairs of a
/// commuting seed set (products of commuting elements commute).
std::vector<PauliTerm> random_commuting_set(std::size_t n, std::size_t count,
                                            std::uint64_t seed) {
  Rng rng(seed);
  // Seed: random diagonal strings conjugated by a fixed random circuit would
  // need a simulator; instead build from an abelian group: random products
  // of fixed commuting generators {XXII.., IXXI.., ..., ZZZZ..}.
  std::vector<PauliString> gens;
  for (std::size_t q = 0; q + 1 < n; ++q) {
    PauliString s(n);
    s.set_op(q, Pauli::X);
    s.set_op(q + 1, Pauli::X);
    gens.push_back(s);
  }
  PauliString allz(n);
  for (std::size_t q = 0; q < n; ++q) allz.set_op(q, Pauli::Z);
  gens.push_back(allz);
  std::vector<PauliTerm> out;
  while (out.size() < count) {
    PauliString acc(n);
    for (const auto& g : gens)
      if (rng.next_below(2)) acc = pauli_multiply(acc, g).second;
    if (acc.is_identity()) continue;
    out.emplace_back(acc, rng.next_range(-0.5, 0.5));
  }
  return out;
}

TEST(Diagonalize, PartitionSetsPairwiseCommute) {
  const auto bench =
      generate_uccsd(Molecule::lih(), true, FermionEncoding::JordanWigner);
  const auto sets = partition_commuting(bench.terms);
  std::size_t total = 0;
  for (const auto& set : sets) {
    total += set.size();
    for (std::size_t i = 0; i < set.size(); ++i)
      for (std::size_t j = i + 1; j < set.size(); ++j)
        ASSERT_TRUE(set[i].string.commutes_with(set[j].string));
  }
  EXPECT_EQ(total, bench.terms.size());
  EXPECT_LT(sets.size(), bench.terms.size());  // grouping actually helps
}

class DiagonalizeParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiagonalizeParam, ProducesDiagonalTermsAndExactConjugation) {
  const std::size_t n = 5;
  const auto set = random_commuting_set(n, 8, GetParam());
  const auto diag = diagonalize_commuting_set(set, n);
  ASSERT_EQ(diag.diagonal_terms.size(), set.size());
  for (const auto& t : diag.diagonal_terms)
    for (std::size_t q = 0; q < n; ++q)
      EXPECT_TRUE(t.string.op(q) == Pauli::I || t.string.op(q) == Pauli::Z);
  // C · Π exp(-iθ D) · C† must equal Π exp(-iθ P) exactly (diagonals
  // commute, so order inside the set is irrelevant).
  Circuit c(n);
  c.append(diag.clifford);
  for (const auto& t : diag.diagonal_terms) append_pauli_rotation(c, t);
  c.append(diag.clifford.inverse());
  const Matrix want = trotter_product_unitary(set, n);
  EXPECT_TRUE(circuit_unitary(c).approx_equal(want, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiagonalizeParam,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Diagonalize, RejectsNonCommutingInput) {
  EXPECT_THROW(diagonalize_commuting_set(
                   {PauliTerm("XI", 0.1), PauliTerm("ZI", 0.2)}, 2),
               std::invalid_argument);
}

TEST(Diagonalize, AlreadyDiagonalSetNeedsNoCliffordCnots) {
  const auto diag = diagonalize_commuting_set(
      {PauliTerm("ZZI", 0.1), PauliTerm("IZZ", 0.2)}, 3);
  EXPECT_EQ(diag.clifford.count_2q(), 0u);
}

TEST(Baselines, AllCompilersExactOnCommutingPrograms) {
  Rng rng(17);
  const Graph g = random_regular_graph(6, 3, rng);
  const auto terms = qaoa_cost_terms(g, 0.3);
  const Matrix want = trotter_product_unitary(terms, 6);
  EXPECT_TRUE(circuit_unitary(paulihedral_compile(terms, 6))
                  .approx_equal(want, 1e-8));
  EXPECT_TRUE(circuit_unitary(tetris_compile(terms, 6)).approx_equal(want, 1e-8));
  EXPECT_TRUE(circuit_unitary(tket_compile(terms, 6)).approx_equal(want, 1e-8));
}

TEST(Baselines, CompilersReduceUccsdCnotCount) {
  const auto bench =
      generate_uccsd(Molecule::lih(), true, FermionEncoding::BravyiKitaev);
  const std::size_t naive =
      synthesize_naive(bench.terms, bench.num_qubits).count(GateKind::Cnot);
  EXPECT_LT(paulihedral_compile(bench.terms, bench.num_qubits)
                .count(GateKind::Cnot),
            naive);
  EXPECT_LT(tket_compile(bench.terms, bench.num_qubits).count(GateKind::Cnot),
            naive);
  EXPECT_LE(tetris_compile(bench.terms, bench.num_qubits).count(GateKind::Cnot),
            naive);
}

TEST(Baselines, HardwareAwareOutputsRespectCoupling) {
  const auto bench =
      generate_uccsd(Molecule::nh(), true, FermionEncoding::BravyiKitaev);
  const Graph device = topology_heavy_hex(3, 9);
  BaselineOptions opt;
  opt.hardware_aware = true;
  opt.coupling = &device;
  for (const Circuit& c :
       {paulihedral_compile(bench.terms, bench.num_qubits, opt),
        tetris_compile(bench.terms, bench.num_qubits, opt)}) {
    for (const auto& gate : c.gates()) {
      if (!gate.is_two_qubit()) continue;
      ASSERT_TRUE(device.has_edge(gate.q0, gate.q1)) << gate.to_string();
    }
  }
}

TEST(TwoQan, RoutesOnCouplingAndCountsSwaps) {
  const auto suite = qaoa_suite();
  const Graph device = topology_manhattan();
  const auto& bench = suite[3];  // Reg3-16
  const auto res = twoqan_compile(bench.terms, bench.num_qubits, device);
  for (const auto& gate : res.circuit.gates()) {
    if (!gate.is_two_qubit()) continue;
    EXPECT_TRUE(device.has_edge(gate.q0, gate.q1)) << gate.to_string();
  }
  EXPECT_EQ(res.circuit.count(GateKind::Swap), 0u);
  EXPECT_GT(res.circuit.count(GateKind::Cnot), 2 * bench.terms.size() - 1);
}

TEST(TwoQan, ExactUnitaryUpToLayoutPermutation) {
  Rng rng(23);
  const Graph g = random_regular_graph(6, 3, rng);
  const auto terms = qaoa_cost_terms(g, 0.25);
  const Graph device = topology_line(6);
  const auto res = twoqan_compile(terms, 6, device);
  // Build permutations from layouts.
  auto perm_matrix = [&](const std::vector<std::size_t>& layout) {
    const std::size_t dim = std::size_t{1} << 6;
    Matrix p(dim);
    for (std::size_t x = 0; x < dim; ++x) {
      std::size_t y = 0;
      for (std::size_t q = 0; q < 6; ++q)
        if ((x >> (5 - q)) & 1) y |= std::size_t{1} << (5 - layout[q]);
      p.at(y, x) = 1;
    }
    return p;
  };
  const Matrix u_log = trotter_product_unitary(terms, 6);
  const Matrix expected = perm_matrix(res.final_layout) * u_log *
                          perm_matrix(res.initial_layout).adjoint();
  EXPECT_TRUE(circuit_unitary(res.circuit).approx_equal(expected, 1e-8));
}

TEST(TwoQan, RejectsNonTwoLocalTerms) {
  const Graph device = topology_line(4);
  EXPECT_THROW(twoqan_compile({PauliTerm("ZZZ", 0.1)}, 3, device),
               std::invalid_argument);
}

}  // namespace
}  // namespace phoenix
