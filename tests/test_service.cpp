// Compile-service tests: request fingerprinting (canonicalization,
// permutation invariance, option sensitivity), the CompileResult
// serialization round-trip, the sharded LRU cache (byte budget, disk
// persistence, schema rejection), single-flight deduplication under
// concurrency, priority/cancellation scheduling, and the thread-pool
// reentrancy edges the service exposed.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "hamlib/io.hpp"
#include "hamlib/uccsd.hpp"
#include "mapping/topology.hpp"
#include "phoenix/serialize.hpp"
#include "service/cache.hpp"
#include "service/fingerprint.hpp"
#include "service/service.hpp"

namespace phoenix {
namespace {

std::vector<PauliTerm> small_terms() {
  return {{"XXII", 0.5}, {"IYYI", -0.25}, {"IIZZ", 0.125}, {"ZIIZ", 1.0}};
}

const UccsdBenchmark& lih_bk() {
  static const UccsdBenchmark b =
      generate_uccsd(Molecule::lih(), true, FermionEncoding::BravyiKitaev);
  return b;
}

/// Gate-by-gate exact comparison (angles compared by bit pattern, Su4
/// constituents recursed) — "bit-identical" in the acceptance sense.
void expect_gates_identical(const Gate& a, const Gate& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.q0, b.q0);
  EXPECT_EQ(a.q1, b.q1);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.param),
            std::bit_cast<std::uint64_t>(b.param));
  ASSERT_EQ(a.sub.size(), b.sub.size());
  for (std::size_t i = 0; i < a.sub.size(); ++i)
    expect_gates_identical(a.sub[i], b.sub[i]);
}

void expect_circuits_identical(const Circuit& a, const Circuit& b) {
  EXPECT_EQ(a.num_qubits(), b.num_qubits());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    expect_gates_identical(a.gate(i), b.gate(i));
}

/// A scratch directory under the system temp dir, removed on destruction.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const char* tag) {
    path = std::filesystem::temp_directory_path() /
           (std::string("phoenix_") + tag + "_" +
            std::to_string(::getpid()) + "_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

// --- canonicalization -------------------------------------------------------

TEST(Canonicalize, MergesDuplicatesPreservingFirstPosition) {
  std::vector<PauliTerm> terms = {
      {"XX", 0.5}, {"ZZ", 1.0}, {"XX", 0.25}, {"YY", -1.0}, {"ZZ", -0.5}};
  const std::size_t removed = canonicalize_terms(terms);
  EXPECT_EQ(removed, 2u);
  ASSERT_EQ(terms.size(), 3u);
  EXPECT_EQ(terms[0].string.to_string(), "XX");
  EXPECT_DOUBLE_EQ(terms[0].coeff, 0.75);
  EXPECT_EQ(terms[1].string.to_string(), "ZZ");
  EXPECT_DOUBLE_EQ(terms[1].coeff, 0.5);
  EXPECT_EQ(terms[2].string.to_string(), "YY");
}

TEST(Canonicalize, DropsExactZerosIncludingCancellingMerges) {
  std::vector<PauliTerm> terms = {
      {"XX", 0.5}, {"YY", 0.0}, {"XX", -0.5}, {"ZZ", 2.0}};
  const std::size_t removed = canonicalize_terms(terms);
  EXPECT_EQ(removed, 3u);
  ASSERT_EQ(terms.size(), 1u);
  EXPECT_EQ(terms[0].string.to_string(), "ZZ");
}

TEST(Canonicalize, KeepsTinyNonzeroCoefficients) {
  std::vector<PauliTerm> terms = {{"XX", 1e-300}};
  EXPECT_EQ(canonicalize_terms(terms), 0u);
  EXPECT_EQ(terms.size(), 1u);
}

TEST(Canonicalize, AppliedByHamiltonianFromText) {
  const auto terms =
      hamiltonian_from_text("XX 0.5\nZZ 0\nXX 0.25\nYY 1.0\n");
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[0].string.to_string(), "XX");
  EXPECT_DOUBLE_EQ(terms[0].coeff, 0.75);
  EXPECT_EQ(terms[1].string.to_string(), "YY");
}

// --- fingerprinting ---------------------------------------------------------

TEST(Fingerprint, StableAndSensitiveToContent) {
  const auto terms = small_terms();
  const PhoenixOptions opt;
  const Digest128 base = fingerprint_request(terms, 4, opt);
  EXPECT_EQ(base, fingerprint_request(terms, 4, opt));

  auto scaled = terms;
  scaled[1].coeff += 1e-9;
  EXPECT_NE(base, fingerprint_request(scaled, 4, opt));

  EXPECT_NE(base, fingerprint_request(terms, 5, opt));
}

TEST(Fingerprint, PermutationAndSplitInvariant) {
  const auto terms = small_terms();
  const PhoenixOptions opt;
  const Digest128 base = fingerprint_request(terms, 4, opt);

  auto permuted = terms;
  std::swap(permuted[0], permuted[3]);
  std::swap(permuted[1], permuted[2]);
  EXPECT_EQ(base, fingerprint_request(permuted, 4, opt));

  // Split one coefficient across duplicate strings and pad with an exact
  // zero: still the same canonical Hamiltonian.
  std::vector<PauliTerm> split = {{"XXII", 0.25}, {"IYYI", -0.25},
                                  {"IIZZ", 0.125}, {"XXII", 0.25},
                                  {"ZIIZ", 1.0},  {"YYYY", 0.0}};
  EXPECT_EQ(base, fingerprint_request(split, 4, opt));
}

TEST(Fingerprint, SemanticOptionsChangeDigest) {
  const auto terms = small_terms();
  PhoenixOptions opt;
  const Digest128 base = fingerprint_request(terms, 4, opt);

  PhoenixOptions isa = opt;
  isa.isa = TwoQubitIsa::Su4;
  EXPECT_NE(base, fingerprint_request(terms, 4, isa));

  PhoenixOptions peep = opt;
  peep.peephole = PeepholeLevel::O3;
  EXPECT_NE(base, fingerprint_request(terms, 4, peep));

  PhoenixOptions look = opt;
  look.lookahead = 7;
  EXPECT_NE(base, fingerprint_request(terms, 4, look));

  PhoenixOptions val = opt;
  val.validation.level = ValidationLevel::Cheap;
  EXPECT_NE(base, fingerprint_request(terms, 4, val));

  PhoenixOptions starts = opt;
  starts.simplify.num_starts = 4;
  EXPECT_NE(base, fingerprint_request(terms, 4, starts));

  PhoenixOptions beam = opt;
  beam.simplify.beam_width = 3;
  EXPECT_NE(base, fingerprint_request(terms, 4, beam));
}

TEST(Fingerprint, OutputInvariantOptionsDoNotChangeDigest) {
  const auto terms = small_terms();
  PhoenixOptions opt;
  const Digest128 base = fingerprint_request(terms, 4, opt);

  PhoenixOptions threads = opt;
  threads.num_threads = 4;
  EXPECT_EQ(base, fingerprint_request(terms, 4, threads));

  PhoenixOptions traced = opt;
  traced.trace = true;
  EXPECT_EQ(base, fingerprint_request(terms, 4, traced));

  // Frontier and Rescan choose bit-identically by contract, so the search
  // strategy must not split the cache.
  PhoenixOptions rescan = opt;
  rescan.simplify.search = SimplifySearch::Rescan;
  EXPECT_EQ(base, fingerprint_request(terms, 4, rescan));
}

TEST(Fingerprint, CouplingEdgeSetMatters) {
  const auto terms = small_terms();
  PhoenixOptions opt;
  opt.hardware_aware = true;

  Graph line(4);
  line.add_edge(0, 1);
  line.add_edge(1, 2);
  line.add_edge(2, 3);
  const Digest128 base = fingerprint_request(terms, 4, opt, &line);

  // Same edge set, different insertion order and endpoint order.
  Graph shuffled(4);
  shuffled.add_edge(3, 2);
  shuffled.add_edge(1, 0);
  shuffled.add_edge(2, 1);
  EXPECT_EQ(base, fingerprint_request(terms, 4, opt, &shuffled));

  Graph ring = line;
  ring.add_edge(3, 0);
  EXPECT_NE(base, fingerprint_request(terms, 4, opt, &ring));

  EXPECT_THROW(fingerprint_request(terms, 4, opt, nullptr), Error);
}

// --- serialization ----------------------------------------------------------

TEST(SerializeResult, RoundTripIsBitIdentical) {
  const auto& b = lih_bk();
  PhoenixOptions opt;
  opt.validation.level = ValidationLevel::Cheap;
  const CompileResult cold = phoenix_compile(b.terms, b.num_qubits, opt);

  const std::string bytes = compile_result_to_bytes(cold);
  const CompileResult back = compile_result_from_bytes(bytes);

  expect_circuits_identical(cold.circuit, back.circuit);
  expect_circuits_identical(cold.logical, back.logical);
  EXPECT_EQ(cold.num_swaps, back.num_swaps);
  EXPECT_EQ(cold.num_groups, back.num_groups);
  EXPECT_EQ(cold.bsf_epochs, back.bsf_epochs);
  EXPECT_EQ(cold.initial_layout, back.initial_layout);
  EXPECT_EQ(cold.final_layout, back.final_layout);
  ASSERT_EQ(cold.diagnostics.size(), back.diagnostics.size());
  for (std::size_t i = 0; i < cold.diagnostics.size(); ++i) {
    EXPECT_EQ(cold.diagnostics[i].name, back.diagnostics[i].name);
    EXPECT_EQ(cold.diagnostics[i].note, back.diagnostics[i].note);
    EXPECT_EQ(cold.diagnostics[i].checked, back.diagnostics[i].checked);
  }
  EXPECT_EQ(cold.validation.status, back.validation.status);
  EXPECT_EQ(cold.validation.realized_order.size(),
            back.validation.realized_order.size());

  // A second encode of the decode is byte-identical: the format is a fixed
  // point, not merely tolerant.
  EXPECT_EQ(bytes, compile_result_to_bytes(back));
}

TEST(SerializeResult, HardwareAwareRoundTripKeepsLayouts) {
  const Graph device = topology_manhattan();
  PhoenixOptions opt;
  opt.hardware_aware = true;
  opt.coupling = &device;
  const CompileResult cold =
      phoenix_compile(small_terms(), 4, opt);
  ASSERT_FALSE(cold.initial_layout.empty());

  const CompileResult back =
      compile_result_from_bytes(compile_result_to_bytes(cold));
  expect_circuits_identical(cold.circuit, back.circuit);
  EXPECT_EQ(cold.initial_layout, back.initial_layout);
  EXPECT_EQ(cold.final_layout, back.final_layout);
  EXPECT_EQ(cold.num_swaps, back.num_swaps);
}

TEST(SerializeResult, RejectsStaleOrForeignSchema) {
  const CompileResult cold = phoenix_compile(small_terms(), 4);
  std::string bytes = compile_result_to_bytes(cold);

  std::string stale = bytes;
  const std::size_t at = stale.find("v1");
  ASSERT_NE(at, std::string::npos);
  stale.replace(at, 2, "v0");
  EXPECT_THROW(
      {
        try {
          compile_result_from_bytes(stale);
        } catch (const Error& e) {
          EXPECT_EQ(e.stage(), Stage::Parse);
          throw;
        }
      },
      Error);

  EXPECT_THROW(compile_result_from_bytes("not a cache entry"), Error);
  EXPECT_THROW(compile_result_from_bytes(bytes.substr(0, bytes.size() / 2)),
               Error);
}

// Regression: the parser used to stop at the final "end" token and silently
// ignore whatever followed, so a concatenation of two documents — or a
// network frame with garbage appended — round-tripped as a "valid" result.
TEST(SerializeResult, RejectsTrailingGarbage) {
  const CompileResult cold = phoenix_compile(small_terms(), 4);
  const std::string bytes = compile_result_to_bytes(cold);

  for (const std::string& tail :
       {std::string("junk"), std::string("end"), bytes}) {
    EXPECT_THROW(
        {
          try {
            compile_result_from_bytes(bytes + tail);
          } catch (const Error& e) {
            EXPECT_EQ(e.stage(), Stage::Parse);
            throw;
          }
        },
        Error)
        << "trailing bytes accepted: " << tail.substr(0, 16);
  }
  // Pure trailing whitespace is not garbage (the document is token-based).
  EXPECT_NO_THROW(compile_result_from_bytes(bytes + "\n \n"));
}

// --- cache ------------------------------------------------------------------

/// A synthetic result with a payload of roughly `gates` gates, for byte-
/// budget tests without paying for real compiles.
CompileResult synthetic_result(std::size_t gates) {
  CompileResult r;
  r.circuit = Circuit(4);
  for (std::size_t i = 0; i < gates; ++i)
    r.circuit.append(Gate::rz(i % 4, 0.25 * static_cast<double>(i + 1)));
  r.logical = r.circuit;
  r.num_groups = gates;
  return r;
}

Digest128 key_of(std::uint64_t i) {
  Hash128 h(i);
  h.write_u64(i);
  return h.digest();
}

TEST(CompileCache, HitReturnsTheSharedObject) {
  CompileCache cache;
  const Digest128 k = key_of(1);
  EXPECT_EQ(cache.get(k), nullptr);
  auto value = std::make_shared<const CompileResult>(synthetic_result(10));
  cache.put(k, value);
  EXPECT_EQ(cache.get(k).get(), value.get());
  const auto c = cache.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
}

TEST(CompileCache, EvictionRespectsByteBudget) {
  const std::size_t entry_bytes =
      compile_result_approx_bytes(synthetic_result(64));
  CacheOptions opt;
  opt.shards = 1;  // one budget slice, deterministic accounting
  opt.max_bytes = 4 * entry_bytes + entry_bytes / 2;
  CompileCache cache(opt);

  for (std::uint64_t i = 0; i < 32; ++i)
    cache.put(key_of(i),
              std::make_shared<const CompileResult>(synthetic_result(64)));

  const auto c = cache.counters();
  EXPECT_GT(c.evictions, 0u);
  EXPECT_LE(c.bytes, opt.max_bytes);
  EXPECT_LE(c.entries, 4u);
  // Most-recently inserted survives; the oldest were evicted.
  EXPECT_NE(cache.get(key_of(31)), nullptr);
  EXPECT_EQ(cache.get(key_of(0)), nullptr);
}

TEST(CompileCache, LruOrderRespectsTouches) {
  const std::size_t entry_bytes =
      compile_result_approx_bytes(synthetic_result(64));
  CacheOptions opt;
  opt.shards = 1;
  opt.max_bytes = 2 * entry_bytes + entry_bytes / 2;
  CompileCache cache(opt);
  cache.put(key_of(1), std::make_shared<const CompileResult>(synthetic_result(64)));
  cache.put(key_of(2), std::make_shared<const CompileResult>(synthetic_result(64)));
  ASSERT_NE(cache.get(key_of(1)), nullptr);  // touch 1 → 2 is now LRU
  cache.put(key_of(3), std::make_shared<const CompileResult>(synthetic_result(64)));
  EXPECT_NE(cache.get(key_of(1)), nullptr);
  EXPECT_EQ(cache.get(key_of(2)), nullptr);
}

TEST(CompileCache, OversizedEntryIsAdmittedAlone) {
  CacheOptions opt;
  opt.shards = 1;
  opt.max_bytes = 16;  // far below any real entry
  CompileCache cache(opt);
  cache.put(key_of(7),
            std::make_shared<const CompileResult>(synthetic_result(64)));
  EXPECT_NE(cache.get(key_of(7)), nullptr);
  EXPECT_EQ(cache.counters().entries, 1u);
}

TEST(CompileCache, DiskPersistenceSurvivesProcessBoundary) {
  const TempDir dir("diskcache");
  const Digest128 k = key_of(42);
  const CompileResult original = phoenix_compile(small_terms(), 4);
  {
    CacheOptions opt;
    opt.disk_dir = dir.str();
    CompileCache writer(opt);
    writer.put(k, std::make_shared<const CompileResult>(original));
  }
  // A fresh cache (fresh "process") with the same directory serves the entry.
  CacheOptions opt;
  opt.disk_dir = dir.str();
  CompileCache reader(opt);
  const auto loaded = reader.get(k);
  ASSERT_NE(loaded, nullptr);
  expect_circuits_identical(original.circuit, loaded->circuit);
  EXPECT_EQ(reader.counters().disk_hits, 1u);
  // Second get is served from memory (promoted).
  EXPECT_NE(reader.get(k), nullptr);
  EXPECT_EQ(reader.counters().hits, 1u);
}

TEST(CompileCache, DiskRejectsStaleSchemaTag) {
  const TempDir dir("staledisk");
  const Digest128 k = key_of(43);
  {
    CacheOptions opt;
    opt.disk_dir = dir.str();
    CompileCache writer(opt);
    writer.put(k, std::make_shared<const CompileResult>(
                      phoenix_compile(small_terms(), 4)));
  }
  // Corrupt the schema tag in place (entries live in fingerprint-sharded
  // subdirectories: first two hex digits of the key).
  const std::string path =
      dir.str() + "/" + k.hex().substr(0, 2) + "/" + k.hex() + ".phxc";
  std::string contents;
  {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream buf;
    buf << in.rdbuf();
    contents = buf.str();
  }
  const std::size_t at = contents.find("v1");
  ASSERT_NE(at, std::string::npos);
  contents.replace(at, 2, "v0");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
  }

  CacheOptions opt;
  opt.disk_dir = dir.str();
  CompileCache reader(opt);
  EXPECT_EQ(reader.get(k), nullptr);
  const auto c = reader.counters();
  EXPECT_EQ(c.disk_rejects, 1u);
  EXPECT_EQ(c.misses, 1u);
}

// --- service ----------------------------------------------------------------

TEST(Service, WarmHitIsBitIdenticalToColdCompile) {
  const auto& b = lih_bk();
  CompileService svc;
  const auto cold = svc.compile(b.terms, b.num_qubits);
  const auto uncached = phoenix_compile(b.terms, b.num_qubits);
  expect_circuits_identical(cold->circuit, uncached.circuit);

  const auto warm = svc.compile(b.terms, b.num_qubits);
  EXPECT_EQ(warm.get(), cold.get());  // the very same shared snapshot
  const auto s = svc.stats();
  EXPECT_EQ(s.requests, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
}

TEST(Service, PermutedRequestHitsTheSameEntry) {
  const auto terms = small_terms();
  auto permuted = terms;
  std::swap(permuted[0], permuted[2]);
  CompileService svc;
  const auto a = svc.compile(terms, 4);
  const auto b = svc.compile(permuted, 4);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(svc.stats().misses, 1u);
}

TEST(Service, CompileErrorsPropagateAndAreNotCached) {
  ServiceOptions opt;
  std::atomic<int> calls{0};
  CompileService svc(opt, [&](const CompileRequest&) -> CompileResult {
    ++calls;
    throw Error(Stage::Simplify, "injected failure");
  });
  EXPECT_THROW(svc.compile(small_terms(), 4), Error);
  EXPECT_THROW(svc.compile(small_terms(), 4), Error);
  EXPECT_EQ(calls.load(), 2);  // failures are retried, not cached
}

TEST(Service, SingleFlightStressOneCompilePerFingerprint) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kUnique = 5;
  constexpr std::size_t kRounds = 6;

  std::atomic<std::size_t> compiles{0};
  ServiceOptions opt;
  CompileService svc(opt, [&](const CompileRequest& req) {
    compiles.fetch_add(1);
    // Hold the flight open long enough that every thread piles onto it.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    CompileResult r;
    r.circuit = Circuit(req.num_qubits);
    r.num_groups = req.terms.size();
    return r;
  });

  // kUnique distinct Hamiltonians; every thread requests all of them,
  // kRounds times, concurrently.
  std::vector<std::vector<PauliTerm>> inputs;
  for (std::size_t u = 0; u < kUnique; ++u)
    inputs.push_back({PauliTerm("XX", 1.0 + static_cast<double>(u))});

  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (std::size_t round = 0; round < kRounds; ++round)
        for (std::size_t u = 0; u < kUnique; ++u) {
          const auto r = svc.compile(inputs[u], 2);
          if (r == nullptr || r->num_groups != 1) failed = true;
        }
    });
  for (auto& t : threads) t.join();

  EXPECT_FALSE(failed.load());
  EXPECT_EQ(compiles.load(), kUnique);  // exactly one compile per fingerprint
  const auto s = svc.stats();
  EXPECT_EQ(s.misses, kUnique);
  EXPECT_EQ(s.requests, kThreads * kRounds * kUnique);
  EXPECT_EQ(s.hits + s.inflight_joins + s.misses, s.requests);
  EXPECT_GT(s.inflight_joins, 0u);
}

TEST(Service, SubmitSchedulesByPriority) {
  // One worker; the first job blocks the queue while the rest are enqueued
  // with distinct priorities, so completion order must follow priority.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::vector<double> order;

  ServiceOptions opt;
  opt.num_threads = 1;
  CompileService svc(opt, [&](const CompileRequest& req) {
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
      order.push_back(req.terms[0].coeff);
    }
    CompileResult r;
    r.circuit = Circuit(req.num_qubits);
    return r;
  });

  auto request = [](double tag) {
    CompileRequest req;
    req.terms = {PauliTerm("XX", tag)};
    req.num_qubits = 2;
    return req;
  };

  auto gate = svc.submit(request(0.0), 0);  // occupies the single worker
  // Wait until the gate job is actually running (queue drained to 0).
  while (svc.stats().queue_depth != 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  auto low = svc.submit(request(1.0), 1);
  auto mid = svc.submit(request(2.0), 5);
  auto high = svc.submit(request(3.0), 9);
  EXPECT_EQ(svc.stats().queue_depth, 3u);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  gate.get();
  low.get();
  mid.get();
  high.get();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 0.0);
  EXPECT_EQ(order[1], 3.0);  // high priority first
  EXPECT_EQ(order[2], 2.0);
  EXPECT_EQ(order[3], 1.0);
}

TEST(Service, CancelSkipsQueuedCompile) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> compiles{0};

  ServiceOptions opt;
  opt.num_threads = 1;
  CompileService svc(opt, [&](const CompileRequest& req) {
    compiles.fetch_add(1);
    if (req.terms[0].coeff == 0.0) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
    }
    CompileResult r;
    r.circuit = Circuit(req.num_qubits);
    return r;
  });

  CompileRequest blocker;
  blocker.terms = {PauliTerm("XX", 0.0)};
  blocker.num_qubits = 2;
  CompileRequest victim;
  victim.terms = {PauliTerm("YY", 1.0)};
  victim.num_qubits = 2;

  auto gate = svc.submit(blocker, 0);
  while (svc.stats().queue_depth != 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  auto doomed = svc.submit(victim, 0);
  EXPECT_TRUE(doomed.cancel());
  EXPECT_FALSE(doomed.cancel());  // idempotent: second call reports nothing new
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  EXPECT_NE(gate.get(), nullptr);
  EXPECT_EQ(doomed.get(), nullptr);
  // Drain: submit + wait for an unrelated compile so the cancelled job has
  // definitely been dequeued before asserting.
  CompileRequest tail;
  tail.terms = {PauliTerm("ZZ", 2.0)};
  tail.num_qubits = 2;
  EXPECT_NE(svc.submit(tail, 0).get(), nullptr);
  EXPECT_EQ(compiles.load(), 2);  // blocker + tail; the victim never compiled
  EXPECT_EQ(svc.stats().cancelled, 1u);
}

TEST(Service, BatchDeduplicatesAndPreservesOrder) {
  std::atomic<int> compiles{0};
  ServiceOptions opt;
  opt.num_threads = 4;
  CompileService svc(opt, [&](const CompileRequest& req) {
    compiles.fetch_add(1);
    CompileResult r;
    r.circuit = Circuit(req.num_qubits);
    r.num_groups = static_cast<std::size_t>(req.terms[0].coeff);
    return r;
  });

  std::vector<CompileRequest> batch;
  for (const double tag : {1.0, 2.0, 1.0, 3.0, 2.0, 1.0}) {
    CompileRequest req;
    req.terms = {PauliTerm("XX", tag)};
    req.num_qubits = 2;
    batch.push_back(std::move(req));
  }
  const auto results = svc.compile_batch(batch);
  ASSERT_EQ(results.size(), 6u);
  const std::size_t expected[] = {1, 2, 1, 3, 2, 1};
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_NE(results[i], nullptr);
    EXPECT_EQ(results[i]->num_groups, expected[i]);
  }
  EXPECT_EQ(compiles.load(), 3);  // one per unique fingerprint
  EXPECT_EQ(results[0].get(), results[2].get());
  EXPECT_EQ(results[2].get(), results[5].get());
}

TEST(Service, BatchWithRealCompilesMatchesDirectPipeline) {
  const auto& b = lih_bk();
  ServiceOptions opt;
  CompileService svc(opt);
  std::vector<CompileRequest> batch(3);
  for (auto& req : batch) {
    req.terms = b.terms;
    req.num_qubits = b.num_qubits;
  }
  const auto results = svc.compile_batch(batch);
  const CompileResult direct = phoenix_compile(b.terms, b.num_qubits);
  for (const auto& r : results) {
    ASSERT_NE(r, nullptr);
    expect_circuits_identical(direct.circuit, r->circuit);
  }
  EXPECT_EQ(svc.stats().misses, 1u);
}

TEST(Service, DiskCacheWarmStartAcrossServiceInstances) {
  const TempDir dir("servicedisk");
  const auto terms = small_terms();
  ServiceOptions opt;
  opt.cache.disk_dir = dir.str();

  CompileResult direct = phoenix_compile(terms, 4);
  {
    CompileService first(opt);
    first.compile(terms, 4);
    EXPECT_EQ(first.stats().misses, 1u);
  }
  CompileService second(opt);
  const auto warm = second.compile(terms, 4);
  ASSERT_NE(warm, nullptr);
  expect_circuits_identical(direct.circuit, warm->circuit);
  const auto s = second.stats();
  EXPECT_EQ(s.misses, 0u);  // no compile ran in the second service
  EXPECT_EQ(s.disk_hits, 1u);
}

// --- thread-pool edges exposed by concurrent service use --------------------

TEST(ThreadPool, SubmitRunsByPriorityWithFifoTies) {
  ThreadPool pool(1);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::vector<int> order;

  pool.submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  while (pool.queue_depth() != 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  auto record = [&](int tag) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(tag);
  };
  pool.submit([&, t = 10] { record(t); }, 0);
  pool.submit([&, t = 20] { record(t); }, 5);
  pool.submit([&, t = 11] { record(t); }, 0);
  pool.submit([&, t = 21] { record(t); }, 5);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  while (pool.queue_depth() != 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  // Let the final job finish (queue empty != job done).
  std::mutex done_mu;
  std::condition_variable done_cv;
  bool done = false;
  pool.submit([&] {
    std::lock_guard<std::mutex> lock(done_mu);
    done = true;
    done_cv.notify_one();
  }, -1);
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return done; });
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 20);
  EXPECT_EQ(order[1], 21);
  EXPECT_EQ(order[2], 10);
  EXPECT_EQ(order[3], 11);
}

TEST(ThreadPool, NestedParallelForFromWorkersDoesNotDeadlock) {
  // Saturate a small pool with jobs that each run a parallel_for on the same
  // pool — before the help-while-waiting fix the callers could all block on
  // helper tasks stuck behind one another.
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(16, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 8u * 16u);
}

TEST(ThreadPool, SubmitFromWorkerThreadCompletes) {
  ThreadPool pool(1);
  std::atomic<bool> inner_ran{false};
  std::mutex mu;
  std::condition_variable cv;
  bool outer_done = false;
  pool.submit([&] {
    pool.submit([&] { inner_ran = true; });  // enqueued from the worker itself
    std::lock_guard<std::mutex> lock(mu);
    outer_done = true;
    cv.notify_one();
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return outer_done; });
  }
  // Inner job must still run (same single worker, after the outer returns).
  while (!inner_ran.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueuedJobs) {
  std::atomic<std::size_t> ran{0};
  {
    ThreadPool pool(1);
    std::mutex mu;
    std::condition_variable cv;
    bool release = false;
    pool.submit([&] {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
    });
    for (int i = 0; i < 16; ++i)
      pool.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_all();
    // Destructor: stop intake, drain the 16 queued jobs, join.
  }
  EXPECT_EQ(ran.load(), 16u);
}

TEST(ThreadPool, ZeroWorkerSubmitRunsInline) {
  ThreadPool pool(0);
  bool ran = false;
  pool.submit([&] { ran = true; });
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace phoenix
