#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "circuit/circuit.hpp"
#include "circuit/synthesis.hpp"
#include "common/rng.hpp"
#include "sim/matrix.hpp"
#include "sim/statevector.hpp"

namespace phoenix {
namespace {

TEST(Matrix, IdentityAndTrace) {
  const Matrix i4 = Matrix::identity(4);
  EXPECT_EQ(i4.trace(), (Complex{4, 0}));
  EXPECT_TRUE((i4 * i4).approx_equal(i4));
}

TEST(Matrix, MultiplicationAgainstHandComputation) {
  Matrix a(2), b(2);
  a.at(0, 0) = 1; a.at(0, 1) = Complex{0, 1};
  a.at(1, 0) = 2; a.at(1, 1) = -1;
  b.at(0, 0) = 3; b.at(0, 1) = 0;
  b.at(1, 0) = 1; b.at(1, 1) = Complex{0, -1};
  const Matrix c = a * b;
  EXPECT_EQ(c.at(0, 0), (Complex{3, 1}));
  EXPECT_EQ(c.at(0, 1), (Complex{1, 0}));
  EXPECT_EQ(c.at(1, 0), (Complex{5, 0}));
  EXPECT_EQ(c.at(1, 1), (Complex{0, 1}));
}

TEST(Matrix, AdjointConjugatesAndTransposes) {
  Matrix a(2);
  a.at(0, 1) = Complex{1, 2};
  const Matrix ad = a.adjoint();
  EXPECT_EQ(ad.at(1, 0), (Complex{1, -2}));
  EXPECT_EQ(ad.at(0, 1), (Complex{0, 0}));
}

TEST(Matrix, ExpmOfPauliZ) {
  // exp(-i t Z) = diag(e^{-it}, e^{it}).
  Matrix z(2);
  z.at(0, 0) = 1;
  z.at(1, 1) = -1;
  const double t = 0.37;
  const Matrix u = expm_minus_i(z, t);
  EXPECT_NEAR(std::abs(u.at(0, 0) - std::polar(1.0, -t)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(u.at(1, 1) - std::polar(1.0, t)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(u.at(0, 1)), 0.0, 1e-12);
}

TEST(Matrix, ExpmIsUnitaryForRandomHermitian) {
  Rng rng(17);
  const std::size_t dim = 8;
  Matrix h(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    h.at(i, i) = rng.next_gaussian();
    for (std::size_t j = i + 1; j < dim; ++j) {
      const Complex v{rng.next_gaussian(), rng.next_gaussian()};
      h.at(i, j) = v;
      h.at(j, i) = std::conj(v);
    }
  }
  const Matrix u = expm_minus_i(h, 2.3);
  EXPECT_TRUE((u.adjoint() * u).approx_equal(Matrix::identity(dim), 1e-9));
}

TEST(Matrix, InfidelityZeroForEqualUnitaries) {
  Circuit c(3);
  c.append(Gate::h(0));
  c.append(Gate::cnot(0, 1));
  c.append(Gate::rz(2, 0.3));
  const Matrix u = circuit_unitary(c);
  EXPECT_NEAR(infidelity(u, u), 0.0, 1e-12);
}

TEST(Matrix, InfidelityInvariantUnderGlobalPhase) {
  Circuit c(2);
  c.append(Gate::h(0));
  c.append(Gate::cnot(0, 1));
  Matrix u = circuit_unitary(c);
  Matrix v = u;
  v *= std::polar(1.0, 1.234);
  EXPECT_NEAR(infidelity(u, v), 0.0, 1e-12);
}

TEST(StateVector, BellStateFromHCnot) {
  StateVector sv(2);
  sv.apply_gate(Gate::h(0));
  sv.apply_gate(Gate::cnot(0, 1));
  EXPECT_NEAR(std::abs(sv.amplitude(0) - 1.0 / std::sqrt(2.0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(sv.amplitude(3) - 1.0 / std::sqrt(2.0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(sv.amplitude(1)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(sv.amplitude(2)), 0.0, 1e-12);
}

TEST(StateVector, CnotConventionQubit0IsMsb) {
  StateVector sv(2);
  sv.set_basis_state(0b10);  // qubit 0 = 1, qubit 1 = 0
  sv.apply_gate(Gate::cnot(0, 1));
  EXPECT_NEAR(std::abs(sv.amplitude(0b11) - 1.0), 0.0, 1e-12);
}

TEST(StateVector, SwapGate) {
  StateVector sv(2);
  sv.set_basis_state(0b10);
  sv.apply_gate(Gate::swap(0, 1));
  EXPECT_NEAR(std::abs(sv.amplitude(0b01) - 1.0), 0.0, 1e-12);
}

TEST(StateVector, CzSymmetricPhase) {
  StateVector sv(2);
  sv.apply_gate(Gate::h(0));
  sv.apply_gate(Gate::h(1));
  sv.apply_gate(Gate::cz(0, 1));
  EXPECT_NEAR(std::abs(sv.amplitude(3) + 0.5), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(sv.amplitude(0) - 0.5), 0.0, 1e-12);
}

TEST(StateVector, PauliApplicationMatchesRotationAtPiOverTwo) {
  // exp(-i (π/2) P) = -i P; check against direct Pauli application.
  const PauliString p = PauliString::from_label("XYZ");
  Rng rng(5);
  StateVector a(3), b(3);
  // Random-ish product state via rotations.
  for (std::size_t q = 0; q < 3; ++q) {
    const Gate g = Gate::ry(q, rng.next_range(0, 3.0));
    a.apply_gate(g);
    b.apply_gate(g);
  }
  a.apply_pauli_rotation(PauliTerm(p, M_PI / 2));
  b.apply_pauli(p);
  for (std::size_t i = 0; i < a.dim(); ++i)
    EXPECT_NEAR(std::abs(a.amplitude(i) - Complex{0, -1} * b.amplitude(i)),
                0.0, 1e-12)
        << i;
}

TEST(StateVector, NormPreservedByCircuits) {
  Rng rng(9);
  Circuit c(4);
  c.append(Gate::h(0));
  c.append(Gate::rx(1, 0.7));
  c.append(Gate::cnot(0, 2));
  c.append(Gate::ry(3, -1.1));
  c.append(Gate::cz(1, 3));
  c.append(Gate::rz(2, 0.4));
  StateVector sv(4);
  sv.apply_circuit(c);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

TEST(Synthesis, RotationCircuitMatchesAnalyticRotation) {
  // Structural synthesis must reproduce exp(-iθP) exactly for every tree.
  const struct {
    const char* label;
    double theta;
  } cases[] = {
      {"Z", 0.3},   {"X", -0.8}, {"Y", 1.2},    {"ZZ", 0.5},
      {"XY", -0.4}, {"YZX", 0.9}, {"XXYZ", 0.21}, {"ZIYX", -0.67},
  };
  for (const auto& tc : cases) {
    const PauliTerm term(tc.label, tc.theta);
    const std::size_t n = term.string.num_qubits();
    const Matrix want = pauli_rotation_matrix(term, n);
    for (CnotTree tree : {CnotTree::Chain, CnotTree::Star, CnotTree::Balanced}) {
      const Circuit c = pauli_rotation_circuit(term, n, tree);
      EXPECT_TRUE(circuit_unitary(c).approx_equal(want, 1e-9))
          << tc.label << " tree=" << static_cast<int>(tree);
    }
  }
}

TEST(Synthesis, RotationUsesTwoCnotsPerExtraQubit) {
  const PauliTerm term("XYZZ", 0.3);
  const Circuit c = pauli_rotation_circuit(term, 4, CnotTree::Chain);
  EXPECT_EQ(c.count(GateKind::Cnot), 6u);  // 2*(w-1)
  EXPECT_EQ(c.count(GateKind::Rz), 1u);
}

TEST(Synthesis, IdentityAndZeroAngleAreNoOps) {
  Circuit c(3);
  append_pauli_rotation(c, PauliTerm(PauliString(3), 0.7));
  append_pauli_rotation(c, PauliTerm("XYZ", 0.0));
  EXPECT_TRUE(c.empty());
}

TEST(Synthesis, Clifford2QCircuitConjugatesLikeTableau) {
  // For every generator: circuit U must satisfy U P U† == tableau result.
  Rng rng(23);
  for (const auto& gen : clifford2q_generators()) {
    Clifford2Q cl = gen;
    cl.q0 = 1;
    cl.q1 = 0;
    Circuit cc(2);
    append_clifford2q(cc, cl);
    const Matrix u = circuit_unitary(cc);
    const PauliTerm p("YX", 1.0);
    Bsf tab(2);
    tab.add_term(p);
    tab.apply_clifford2q(cl);
    const Matrix lhs = u * pauli_rotation_matrix(PauliTerm("YX", 0.33), 2) *
                       u.adjoint();
    const Matrix rhs = pauli_rotation_matrix(
        PauliTerm(PauliString(tab.row_x(0), tab.row_z(0)),
                  tab.row(0).sign ? -0.33 : 0.33),
        2);
    EXPECT_TRUE(lhs.approx_equal(rhs, 1e-9)) << cl.to_string();
  }
}

TEST(Synthesis, Clifford2QCircuitHasOneCnot) {
  for (const auto& gen : clifford2q_generators()) {
    Circuit c(2);
    append_clifford2q(c, gen);
    EXPECT_EQ(c.count(GateKind::Cnot), 1u) << gen.to_string();
  }
}

TEST(Synthesis, NaiveSynthesisMatchesTrotterProduct) {
  const std::vector<PauliTerm> terms = {
      {"XYI", 0.3}, {"IZZ", -0.2}, {"YIX", 0.15}, {"ZZZ", 0.05}};
  const Circuit c = synthesize_naive(terms, 3);
  StateVector a(3), b(3);
  a.apply_gate(Gate::h(0));
  b.apply_gate(Gate::h(0));
  a.apply_circuit(c);
  for (const auto& t : terms) b.apply_pauli_rotation(t);
  EXPECT_NEAR(std::abs(a.inner_product(b)), 1.0, 1e-10);
}

TEST(Sim, HamiltonianMatrixIsHermitian) {
  const std::vector<PauliTerm> terms = {
      {"XY", 0.4}, {"ZZ", -0.7}, {"YI", 0.2}, {"IX", 0.1}};
  const Matrix h = hamiltonian_matrix(terms, 2);
  EXPECT_TRUE(h.approx_equal(h.adjoint(), 1e-12));
}

TEST(Sim, TrotterizationApproachesExactEvolution) {
  // First-order Trotter error shrinks as the step count grows.
  const std::vector<PauliTerm> ham = {{"XX", 0.31}, {"ZI", -0.5}, {"IZ", 0.22}};
  const Matrix hm = hamiltonian_matrix(ham, 2);
  const double t = 0.8;
  const Matrix exact = expm_minus_i(hm, t);
  double prev_err = 1.0;
  for (int steps : {1, 4, 16}) {
    std::vector<PauliTerm> scaled;
    for (const auto& term : ham)
      scaled.emplace_back(term.string, term.coeff * t / steps);
    Circuit c(2);
    for (int s = 0; s < steps; ++s)
      for (const auto& term : scaled) append_pauli_rotation(c, term);
    const double err = infidelity(exact, circuit_unitary(c));
    EXPECT_LT(err, prev_err + 1e-12);
    prev_err = err;
  }
  EXPECT_LT(prev_err, 2e-4);
}

}  // namespace
}  // namespace phoenix
