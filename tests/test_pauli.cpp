#include "pauli/pauli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace phoenix {
namespace {

TEST(Pauli, CharConversionRoundTrip) {
  for (Pauli p : {Pauli::I, Pauli::X, Pauli::Y, Pauli::Z})
    EXPECT_EQ(pauli_from_char(pauli_char(p)), p);
  EXPECT_EQ(pauli_from_char('x'), Pauli::X);
  EXPECT_THROW(pauli_from_char('Q'), std::invalid_argument);
}

TEST(Pauli, SingleQubitCommutation) {
  EXPECT_TRUE(pauli_commutes(Pauli::I, Pauli::X));
  EXPECT_TRUE(pauli_commutes(Pauli::Z, Pauli::Z));
  EXPECT_FALSE(pauli_commutes(Pauli::X, Pauli::Z));
  EXPECT_FALSE(pauli_commutes(Pauli::Y, Pauli::X));
}

TEST(PauliString, LabelRoundTrip) {
  const PauliString s = PauliString::from_label("XIZY");
  EXPECT_EQ(s.num_qubits(), 4u);
  EXPECT_EQ(s.op(0), Pauli::X);
  EXPECT_EQ(s.op(1), Pauli::I);
  EXPECT_EQ(s.op(2), Pauli::Z);
  EXPECT_EQ(s.op(3), Pauli::Y);
  EXPECT_EQ(s.to_string(), "XIZY");
}

TEST(PauliString, SymplecticEncoding) {
  const PauliString s = PauliString::from_label("IXYZ");
  EXPECT_EQ(s.x().to_string(), "0110");
  EXPECT_EQ(s.z().to_string(), "0011");
}

TEST(PauliString, WeightAndSupport) {
  const PauliString s = PauliString::from_label("XIZYI");
  EXPECT_EQ(s.weight(), 3u);
  EXPECT_EQ(s.support(), (std::vector<std::size_t>{0, 2, 3}));
  EXPECT_FALSE(s.is_identity());
  EXPECT_TRUE(PauliString(5).is_identity());
}

TEST(PauliString, SetOpOverwrites) {
  PauliString s(3);
  s.set_op(1, Pauli::Y);
  EXPECT_EQ(s.to_string(), "IYI");
  s.set_op(1, Pauli::Z);
  EXPECT_EQ(s.to_string(), "IZI");
  s.set_op(1, Pauli::I);
  EXPECT_TRUE(s.is_identity());
}

TEST(PauliString, SingleFactory) {
  const PauliString s = PauliString::single(4, 2, Pauli::Y);
  EXPECT_EQ(s.to_string(), "IIYI");
}

TEST(PauliString, CommutationBySymplecticForm) {
  // XX and ZZ commute (two anticommuting positions), XI and ZI do not.
  EXPECT_TRUE(PauliString::from_label("XX").commutes_with(
      PauliString::from_label("ZZ")));
  EXPECT_FALSE(PauliString::from_label("XI").commutes_with(
      PauliString::from_label("ZI")));
  EXPECT_TRUE(PauliString::from_label("XYZ").commutes_with(
      PauliString::from_label("XYZ")));
  // ZYY vs XZY: positions (Z,X) anti, (Y,Z) anti, (Y,Y) comm -> commute.
  EXPECT_TRUE(PauliString::from_label("ZYY").commutes_with(
      PauliString::from_label("XZY")));
  // Identity commutes with everything.
  EXPECT_TRUE(PauliString(3).commutes_with(PauliString::from_label("XYZ")));
}

TEST(PauliString, MismatchedXZSizesRejected) {
  EXPECT_THROW(PauliString(BitVec(3), BitVec(4)), std::invalid_argument);
}

TEST(PauliTerm, LabelConstructor) {
  const PauliTerm t("XY", 0.25);
  EXPECT_EQ(t.string.to_string(), "XY");
  EXPECT_DOUBLE_EQ(t.coeff, 0.25);
}

}  // namespace
}  // namespace phoenix
