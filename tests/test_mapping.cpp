#include <gtest/gtest.h>

#include <cmath>
#include <initializer_list>
#include <limits>

#include "circuit/circuit.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "mapping/sabre.hpp"
#include "mapping/topology.hpp"
#include "sim/matrix.hpp"
#include "sim/statevector.hpp"

namespace phoenix {
namespace {

TEST(Topology, AllToAllEdgeCount) {
  const Graph g = topology_all_to_all(6);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_TRUE(g.connected());
}

TEST(Topology, LineAndGrid) {
  EXPECT_EQ(topology_line(5).num_edges(), 4u);
  const Graph grid = topology_grid(3, 4);
  EXPECT_EQ(grid.num_vertices(), 12u);
  EXPECT_EQ(grid.num_edges(), 17u);  // 3*3 + 2*4
  EXPECT_TRUE(grid.connected());
}

TEST(Topology, HeavyHexDegreeAtMostThree) {
  const Graph g = topology_heavy_hex(4, 13);
  EXPECT_TRUE(g.connected());
  for (std::size_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_LE(g.degree(v), 3u) << v;
}

TEST(Topology, ManhattanHas65QubitsDegreeThree) {
  const Graph g = topology_manhattan();
  EXPECT_EQ(g.num_vertices(), 65u);
  EXPECT_TRUE(g.connected());
  for (std::size_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_LE(g.degree(v), 3u) << v;
}

TEST(Topology, HeavyHexHasTwelveQubitCells) {
  // The defining heavy-hex feature: shortest cycles have 12 vertices.
  const Graph g = topology_heavy_hex(3, 9);
  // Girth check via BFS from each vertex: the shortest cycle through any
  // edge (u,v) is 1 + dist(u,v) with the edge removed; heavy-hex -> 12.
  std::size_t girth = static_cast<std::size_t>(-1);
  for (const auto& [u, v] : g.edges()) {
    Graph h(g.num_vertices());
    for (const auto& [a, b] : g.edges())
      if (!((a == u && b == v) || (a == v && b == u))) h.add_edge(a, b);
    const auto d = h.bfs_distances(u);
    if (d[v] != Graph::kUnreachable) girth = std::min(girth, d[v] + 1);
  }
  EXPECT_EQ(girth, 12u);
}

Circuit random_two_qubit_circuit(std::size_t n, std::size_t len,
                                 std::uint64_t seed) {
  Rng rng(seed);
  Circuit c(n);
  for (std::size_t i = 0; i < len; ++i) {
    if (rng.next_below(3) == 0) {
      c.append(Gate::rz(rng.next_below(n), rng.next_range(-1, 1)));
    } else {
      const std::size_t a = rng.next_below(n);
      std::size_t b = rng.next_below(n - 1);
      if (b >= a) ++b;
      c.append(Gate::cnot(a, b));
    }
  }
  return c;
}

/// Permutation matrix sending logical basis bits to physical positions:
/// bit of logical qubit q lands on wire layout[q].
Matrix layout_permutation(const std::vector<std::size_t>& layout,
                          std::size_t n) {
  const std::size_t dim = std::size_t{1} << n;
  Matrix p(dim);
  for (std::size_t x = 0; x < dim; ++x) {
    std::size_t y = 0;
    for (std::size_t q = 0; q < layout.size(); ++q)
      if ((x >> (n - 1 - q)) & 1) y |= std::size_t{1} << (n - 1 - layout[q]);
    p.at(y, x) = 1;
  }
  return p;
}

TEST(Sabre, AllGatesRoutedOntoCouplingEdges) {
  const Graph line = topology_line(5);
  const Circuit c = random_two_qubit_circuit(5, 30, 7);
  const SabreResult r = sabre_route(c, line);
  for (const auto& g : r.routed.gates()) {
    if (!g.is_two_qubit()) continue;
    EXPECT_TRUE(line.has_edge(g.q0, g.q1)) << g.to_string();
  }
  EXPECT_EQ(r.routed.count_2q(), c.count_2q() + r.num_swaps);
}

TEST(Sabre, NoSwapsNeededOnAllToAll) {
  const Graph full = topology_all_to_all(5);
  const Circuit c = random_two_qubit_circuit(5, 40, 3);
  const SabreResult r = sabre_route(c, full);
  EXPECT_EQ(r.num_swaps, 0u);
}

TEST(Sabre, RoutedCircuitIsPermutationEquivalent) {
  // routed == P_final · U_logical · P_init† on equal-sized registers.
  const Graph line = topology_line(4);
  for (std::uint64_t seed : {41u, 42u, 43u}) {
    const Circuit c = random_two_qubit_circuit(4, 20, seed);
    const SabreResult r = sabre_route(c, line);
    const Matrix u_log = circuit_unitary(c);
    const Matrix u_routed = circuit_unitary(r.routed);
    const Matrix pi = layout_permutation(r.initial_layout, 4);
    const Matrix pf = layout_permutation(r.final_layout, 4);
    const Matrix expected = pf * u_log * pi.adjoint();
    EXPECT_TRUE(u_routed.approx_equal(expected, 1e-9)) << seed;
  }
}

TEST(Sabre, LayoutsArePermutations) {
  const Graph g = topology_heavy_hex(3, 9);
  const Circuit c = random_two_qubit_circuit(8, 25, 5);
  const SabreResult r = sabre_route(c, g);
  auto is_injective = [&](const std::vector<std::size_t>& v) {
    std::vector<bool> seen(g.num_vertices(), false);
    for (std::size_t p : v) {
      if (p >= g.num_vertices() || seen[p]) return false;
      seen[p] = true;
    }
    return true;
  };
  EXPECT_TRUE(is_injective(r.initial_layout));
  EXPECT_TRUE(is_injective(r.final_layout));
}

TEST(Sabre, RejectsBadInputs) {
  const Circuit c = random_two_qubit_circuit(5, 10, 1);
  EXPECT_THROW(sabre_route(c, topology_line(3)), Error);
  Graph disconnected(5);
  disconnected.add_edge(0, 1);
  EXPECT_THROW(sabre_route(c, disconnected), Error);
  try {
    sabre_route(c, topology_line(3));
    FAIL() << "expected phoenix::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.stage(), Stage::Routing);
  }
}

TEST(Sabre, RejectsInvalidOptions) {
  const Graph line = topology_line(4);
  const Circuit c = random_two_qubit_circuit(4, 10, 2);
  for (auto mutate : std::initializer_list<void (*)(SabreOptions&)>{
           [](SabreOptions& o) { o.decay_delta = -0.1; },
           [](SabreOptions& o) { o.decay_delta = std::nan(""); },
           [](SabreOptions& o) { o.extended_set_weight = -1.0; },
           [](SabreOptions& o) {
             o.extended_set_weight = std::numeric_limits<double>::infinity();
           }}) {
    SabreOptions opt;
    mutate(opt);
    EXPECT_THROW(sabre_route(c, line, opt), Error);
    try {
      sabre_route(c, line, opt);
    } catch (const Error& e) {
      EXPECT_EQ(e.stage(), Stage::Routing);
    }
  }
}

TEST(Sabre, DecayResetZeroMeansNeverReset) {
  // decay_reset == 0 used to feed `decisions % 0` — UB that traps on most
  // targets. It now means "never reset the decay table" and must route
  // normally.
  const Graph line = topology_line(6);
  const Circuit c = random_two_qubit_circuit(6, 40, 7);
  SabreOptions opt;
  opt.decay_reset = 0;
  const SabreResult r = sabre_route(c, line, opt);
  const Matrix u_log = circuit_unitary(c);
  const Matrix u_routed = circuit_unitary(r.routed);
  const Matrix pi = layout_permutation(r.initial_layout, 6);
  const Matrix pf = layout_permutation(r.final_layout, 6);
  EXPECT_TRUE(u_routed.approx_equal(pf * u_log * pi.adjoint(), 1e-9));
}

TEST(Sabre, HeavyHexRoutingOverheadIsBounded) {
  // Sanity: routing a 16-qubit program onto heavy-hex should cost SWAPs but
  // not explode (paper reports ~2-3x CNOT multiples).
  const Graph hh = topology_manhattan();
  const Circuit c = random_two_qubit_circuit(16, 60, 9);
  const SabreResult r = sabre_route(c, hh);
  EXPECT_GT(r.num_swaps, 0u);
  EXPECT_LT(r.num_swaps, 6 * c.count_2q());
}

}  // namespace
}  // namespace phoenix
