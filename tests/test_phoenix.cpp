#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

#include "circuit/synthesis.hpp"
#include "hamlib/grouping.hpp"
#include "hamlib/qaoa.hpp"
#include "hamlib/uccsd.hpp"
#include "mapping/topology.hpp"
#include "phoenix/compiler.hpp"
#include "phoenix/ordering.hpp"
#include "phoenix/simplify.hpp"
#include "sim/matrix.hpp"
#include "sim/statevector.hpp"

namespace phoenix {
namespace {

Matrix trotter_product_unitary(const std::vector<PauliTerm>& terms,
                               std::size_t n) {
  const std::size_t dim = std::size_t{1} << n;
  Matrix u(dim);
  StateVector sv(n);
  for (std::size_t col = 0; col < dim; ++col) {
    sv.set_basis_state(col);
    for (const auto& t : terms) sv.apply_pauli_rotation(t);
    for (std::size_t row = 0; row < dim; ++row) u.at(row, col) = sv.amplitude(row);
  }
  return u;
}

TEST(BsfCost, ZeroRowsCostZero) {
  Bsf empty(3);
  EXPECT_DOUBLE_EQ(bsf_cost(empty), 0.0);
}

TEST(BsfCost, MatchesHandComputedExample) {
  // Rows: XX. and .ZZ on 3 qubits. w_tot = 3, n_nl = 2.
  // Pair union weight ||XX. or .ZZ|| = 3; X overlap ||110 or 000|| = 2;
  // Z overlap ||000 or 011|| = 2. cost = 3*4 + 3 + 0.5*(2+2) = 17.
  Bsf b({PauliTerm("XXI", 1.0), PauliTerm("IZZ", 1.0)});
  EXPECT_DOUBLE_EQ(bsf_cost(b), 17.0);
}

TEST(BsfCost, DropsWhenStringsAlign) {
  // Aligned strings (same support) must cost less than scattered ones.
  Bsf aligned({PauliTerm("XXII", 1.0), PauliTerm("YYII", 1.0)});
  Bsf scattered({PauliTerm("XXII", 1.0), PauliTerm("IIYY", 1.0)});
  EXPECT_LT(bsf_cost(aligned), bsf_cost(scattered));
}

// Foundation of the plateau-guard move: for every ordered pair of non-I
// Paulis there must exist a generator from Eq. (5) lowering the weight of
// that two-qubit string.
TEST(Simplify, EveryPauliPairReducibleBySomeGenerator) {
  const Pauli ps[] = {Pauli::X, Pauli::Y, Pauli::Z};
  for (Pauli a : ps)
    for (Pauli b : ps) {
      PauliString s(2);
      s.set_op(0, a);
      s.set_op(1, b);
      bool reduced = false;
      for (const auto& gen : clifford2q_generators())
        for (auto [q0, q1] : {std::pair<std::size_t, std::size_t>{0, 1},
                              std::pair<std::size_t, std::size_t>{1, 0}}) {
          Bsf tab(2);
          tab.add_term(PauliTerm(s, 1.0));
          Clifford2Q c = gen;
          c.q0 = q0;
          c.q1 = q1;
          tab.apply_clifford2q(c);
          reduced |= tab.row_weight(0) <= 1;
        }
      EXPECT_TRUE(reduced) << pauli_char(a) << pauli_char(b);
    }
}

TEST(Simplify, AlreadySimpleGroupNeedsNoCliffords) {
  const auto g = simplify_bsf({PauliTerm("XY", 0.3), PauliTerm("ZZ", 0.2)});
  EXPECT_TRUE(g.cliffords.empty());
  EXPECT_EQ(g.final_bsf.num_rows(), 2u);
}

TEST(Simplify, Fig1bGroupSimplifiesToTotalWeightTwo) {
  const std::vector<PauliTerm> terms = {
      {"ZYY", 0.1}, {"ZZY", 0.2}, {"XYY", 0.3}, {"XZY", 0.4}};
  const auto g = simplify_bsf(terms);
  EXPECT_LE(g.final_bsf.total_weight(), 2u);
  // The paper's example achieves it with a single Clifford2Q.
  EXPECT_EQ(g.cliffords.size(), 1u);
}

TEST(Simplify, EmittedGroupMatchesTrotterProductForCommutingTerms) {
  // Strings of one UCCSD excitation commute pairwise, so the emitted
  // subcircuit must reproduce the product of exponentials exactly.
  const auto bench =
      generate_uccsd(Molecule::lih(), true, FermionEncoding::JordanWigner);
  const auto groups = group_by_support(bench.terms);
  // Find a doubles block (8 strings).
  for (const auto& grp : groups) {
    if (grp.terms.size() != 8) continue;
    // Commutation sanity.
    for (std::size_t i = 0; i < grp.terms.size(); ++i)
      for (std::size_t j = i + 1; j < grp.terms.size(); ++j)
        ASSERT_TRUE(
            grp.terms[i].string.commutes_with(grp.terms[j].string));
    // Restrict to the support to keep the matrices small.
    const auto sup = grp.terms[0].string.support();
    ASSERT_LE(sup.size(), 6u);
    std::vector<PauliTerm> local;
    for (const auto& t : grp.terms) {
      PauliString s(sup.size());
      for (std::size_t k = 0; k < sup.size(); ++k) s.set_op(k, t.string.op(sup[k]));
      local.emplace_back(s, t.coeff);
    }
    const auto sg = simplify_bsf(local);
    EXPECT_LE(sg.final_bsf.total_weight(), 2u);
    const Circuit c = sg.emit(sup.size());
    const Matrix want = trotter_product_unitary(local, sup.size());
    EXPECT_TRUE(circuit_unitary(c).approx_equal(want, 1e-9));
    break;
  }
}

TEST(Simplify, EmitWithoutGlobalLocalsPlusPreludeIsComplete) {
  const std::vector<PauliTerm> terms = {
      {"XXY", 0.2}, {"ZIY", 0.15}, {"YII", 0.3}};  // includes a local row
  const auto sg = simplify_bsf(terms);
  const Circuit full = sg.emit(3, true);
  Circuit split = sg.emit(3, false);
  Circuit prelude(3);
  for (const auto& r : sg.global_locals())
    append_pauli_rotation(
        prelude, PauliTerm(PauliString(r.x, r.z), r.sign ? -r.coeff : r.coeff));
  prelude.append(split);
  // Identical multiset of rotations; compare 2Q counts and Rz counts.
  EXPECT_EQ(prelude.size(), full.size());
  EXPECT_EQ(prelude.count(GateKind::Rz), full.count(GateKind::Rz));
}

TEST(Simplify, HandlesLargeWeightGroups) {
  // A weight-8 group (hard case) must still reach w_tot <= 2.
  const std::vector<PauliTerm> terms = {
      {"XXXXXXXX", 0.1}, {"YYXXXXXX", 0.1}, {"XXYYXXXX", 0.1},
      {"XXXXYYXX", 0.1}, {"XXXXXXYY", 0.1}};
  const auto g = simplify_bsf(terms);
  EXPECT_LE(g.final_bsf.total_weight(), 2u);
  EXPECT_FALSE(g.cliffords.empty());
}

TEST(Simplify, RejectsEmptyInput) {
  EXPECT_THROW(simplify_bsf({}), Error);
}

TEST(Ordering, EndianVectorsMatchDefinition) {
  Circuit c(4);
  c.append(Gate::cnot(0, 1));  // layer 0
  c.append(Gate::cnot(1, 2));  // layer 1
  c.append(Gate::cnot(0, 1));  // layer 2
  const auto p = profile_subcircuit(c, {});
  EXPECT_EQ(p.num_layers, 3u);
  EXPECT_EQ(p.e_l[0], 0u);
  EXPECT_EQ(p.e_l[1], 0u);
  EXPECT_EQ(p.e_l[2], 1u);
  EXPECT_EQ(p.e_l[3], 3u);  // untouched
  EXPECT_EQ(p.e_r[0], 0u);
  EXPECT_EQ(p.e_r[2], 1u);
}

TEST(Ordering, DepthCostFollowsPaperFormula) {
  // prev acts on {0,1}. A successor on the same pair abuts at the seam: the
  // endian guard fails (e_r == e_l' == 0 on shared qubits), triggering the
  // Scenario-II interlock discount: SUM(e_r + e_l' - 1) = -2. A successor on
  // {2,3} leaves every union qubit idle for one layer: SUM(e_r + e_l') = 4.
  // The §IV-C.1 cost therefore prefers seam-tight stacking, which is what
  // enables the Clifford2Q cancellation credits of §IV-C.2.
  Circuit a(4), b(4), d(4);
  a.append(Gate::cnot(0, 1));
  b.append(Gate::cnot(0, 1));
  d.append(Gate::cnot(2, 3));
  const auto pa = profile_subcircuit(a, {});
  const auto pb = profile_subcircuit(b, {});
  const auto pd = profile_subcircuit(d, {});
  EXPECT_DOUBLE_EQ(depth_cost(pa, pb), -2.0);
  EXPECT_DOUBLE_EQ(depth_cost(pa, pd), 4.0);
}

TEST(Ordering, BoundaryCancellationCounting) {
  const Clifford2Q c1{Pauli::Z, Pauli::X, 0, 1};
  const Clifford2Q c2{Pauli::X, Pauli::X, 1, 2};
  Circuit x(3);
  x.append(Gate::cnot(0, 1));
  const auto pa = profile_subcircuit(x, {c1, c2});
  const auto pb = profile_subcircuit(x, {c1, c2});
  EXPECT_EQ(boundary_cancellations(pa, pb), 2u);
  // Symmetric generator matches with swapped qubits.
  const Clifford2Q c2s{Pauli::X, Pauli::X, 2, 1};
  const auto pc = profile_subcircuit(x, {c1, c2s});
  EXPECT_EQ(boundary_cancellations(pa, pc), 2u);
  // Asymmetric generator does not.
  const Clifford2Q c1s{Pauli::Z, Pauli::X, 1, 0};
  const auto pd = profile_subcircuit(x, {c1s, c2});
  EXPECT_EQ(boundary_cancellations(pa, pd), 0u);
}

TEST(Ordering, TetrisOrderIsPermutation) {
  std::vector<SubcircuitProfile> profiles;
  for (std::size_t i = 0; i < 6; ++i) {
    Circuit c(6);
    c.append(Gate::cnot(i % 5, (i % 5) + 1));
    profiles.push_back(profile_subcircuit(c, {}));
  }
  const auto order = tetris_order(profiles, {});
  ASSERT_EQ(order.size(), 6u);
  std::vector<bool> seen(6, false);
  for (std::size_t i : order) {
    ASSERT_LT(i, 6u);
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
}

TEST(Compiler, QaoaCompilationIsExact) {
  // All QAOA terms commute, so any ordering must reproduce the exact
  // diagonal evolution.
  Rng rng(5);
  const Graph g = random_regular_graph(6, 3, rng);
  const auto terms = qaoa_cost_terms(g, 0.4);
  const auto res = phoenix_compile(terms, 6);
  const Matrix want = trotter_product_unitary(terms, 6);
  EXPECT_TRUE(circuit_unitary(res.circuit).approx_equal(want, 1e-8));
}

TEST(Compiler, QaoaSu4IsaCompilationIsExactAndSmaller) {
  Rng rng(6);
  const Graph g = random_regular_graph(6, 3, rng);
  const auto terms = qaoa_cost_terms(g, 0.4);
  PhoenixOptions opt;
  opt.isa = TwoQubitIsa::Su4;
  const auto res = phoenix_compile(terms, 6, opt);
  const Matrix want = trotter_product_unitary(terms, 6);
  EXPECT_TRUE(circuit_unitary(res.circuit).approx_equal(want, 1e-8));
  EXPECT_EQ(res.circuit.count(GateKind::Su4), res.circuit.count_2q());
  EXPECT_LE(res.circuit.count_2q(), terms.size());
}

TEST(Compiler, BeatsNaiveSynthesisOnUccsd) {
  const auto bench =
      generate_uccsd(Molecule::lih(), true, FermionEncoding::BravyiKitaev);
  const Circuit naive = synthesize_naive(bench.terms, bench.num_qubits);
  const auto res = phoenix_compile(bench.terms, bench.num_qubits);
  EXPECT_LT(res.circuit.count(GateKind::Cnot), naive.count(GateKind::Cnot));
  EXPECT_LT(res.circuit.depth_2q(), naive.depth_2q());
}

TEST(Compiler, HardwareAwareProducesRoutedCircuit) {
  Rng rng(7);
  const Graph g = random_regular_graph(8, 3, rng);
  const auto terms = qaoa_cost_terms(g, 0.3);
  const Graph device = topology_heavy_hex(3, 9);
  PhoenixOptions opt;
  opt.hardware_aware = true;
  opt.coupling = &device;
  const auto res = phoenix_compile(terms, 8, opt);
  for (const auto& gate : res.circuit.gates()) {
    if (!gate.is_two_qubit()) continue;
    EXPECT_TRUE(device.has_edge(gate.q0, gate.q1)) << gate.to_string();
  }
  EXPECT_EQ(res.circuit.count(GateKind::Swap), 0u);  // swaps decomposed
}

TEST(Compiler, HardwareAwareRequiresCoupling) {
  PhoenixOptions opt;
  opt.hardware_aware = true;
  EXPECT_THROW(phoenix_compile({PauliTerm("ZZ", 0.1)}, 2, opt), Error);
}

TEST(Compiler, PeepholeLevelsMonotone) {
  const auto bench =
      generate_uccsd(Molecule::nh(), true, FermionEncoding::JordanWigner);
  PhoenixOptions raw, own, o3;
  raw.peephole = PeepholeLevel::None;
  own.peephole = PeepholeLevel::Own;
  o3.peephole = PeepholeLevel::O3;
  const auto r_raw = phoenix_compile(bench.terms, bench.num_qubits, raw);
  const auto r_own = phoenix_compile(bench.terms, bench.num_qubits, own);
  const auto r_o3 = phoenix_compile(bench.terms, bench.num_qubits, o3);
  EXPECT_LE(r_own.circuit.count(GateKind::Cnot),
            r_raw.circuit.count(GateKind::Cnot));
  EXPECT_LE(r_o3.circuit.count(GateKind::Cnot),
            r_own.circuit.count(GateKind::Cnot));
}

}  // namespace
}  // namespace phoenix
