// Tests for the wire-DAG peephole engine (src/transpile/dag.hpp): structural
// round-trips, worklist rewrite edge cases, differential equivalence against
// the legacy engine on random circuits, and bit-identity across the seed
// example suite (the contract CI's benchmark-smoke job re-asserts).

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "circuit/circuit.hpp"
#include "common/angles.hpp"
#include "common/rng.hpp"
#include "hamlib/uccsd.hpp"
#include "phoenix/compiler.hpp"
#include "sim/statevector.hpp"
#include "transpile/dag.hpp"
#include "transpile/peephole.hpp"

namespace phoenix {
namespace {

Circuit random_circuit(std::size_t n, std::size_t len, std::uint64_t seed) {
  Rng rng(seed);
  Circuit c(n);
  for (std::size_t i = 0; i < len; ++i) {
    switch (rng.next_below(7)) {
      case 0: c.append(Gate::h(rng.next_below(n))); break;
      case 1: c.append(Gate::s(rng.next_below(n))); break;
      case 2: c.append(Gate::rz(rng.next_below(n), rng.next_range(-2, 2))); break;
      case 3: c.append(Gate::rx(rng.next_below(n), rng.next_range(-2, 2))); break;
      case 4: c.append(Gate::x(rng.next_below(n))); break;
      default: {
        const std::size_t a = rng.next_below(n);
        std::size_t b = rng.next_below(n - 1);
        if (b >= a) ++b;
        c.append(rng.next_below(2) ? Gate::cnot(a, b) : Gate::cz(a, b));
      }
    }
  }
  return c;
}

bool circuits_bit_identical(const Circuit& a, const Circuit& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!a.gates()[i].same_as(b.gates()[i], /*tol=*/0.0)) return false;
  return true;
}

// |<a|b>| over a generic product state: prepare with per-qubit rotations so
// no amplitude is zero, run both circuits, compare up to global phase.
void expect_state_equivalent(const Circuit& a, const Circuit& b,
                             std::uint64_t seed) {
  ASSERT_EQ(a.num_qubits(), b.num_qubits());
  Rng rng(seed);
  Circuit prep(a.num_qubits());
  for (std::size_t q = 0; q < a.num_qubits(); ++q) {
    prep.append(Gate::rx(q, rng.next_range(-3, 3)));
    prep.append(Gate::rz(q, rng.next_range(-3, 3)));
  }
  StateVector va(a.num_qubits()), vb(b.num_qubits());
  va.apply_circuit(prep);
  vb.apply_circuit(prep);
  va.apply_circuit(a);
  vb.apply_circuit(b);
  EXPECT_NEAR(std::abs(va.inner_product(vb)), 1.0, 1e-9) << "seed " << seed;
}

TEST(PeepholeDag, RoundTripIsIdentityAndDeterministic) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Circuit c = random_circuit(6, 80, seed);
    const CircuitDag dag(c);
    EXPECT_EQ(dag.size(), c.size());
    const Circuit once = dag.to_circuit();
    const Circuit twice = dag.to_circuit();
    EXPECT_TRUE(circuits_bit_identical(once, c)) << "seed " << seed;
    EXPECT_TRUE(circuits_bit_identical(once, twice)) << "seed " << seed;
  }
}

TEST(PeepholeDag, WireLinksAreConsistent) {
  const Circuit c = random_circuit(5, 60, 7);
  const CircuitDag dag(c);
  for (std::size_t q = 0; q < dag.num_qubits(); ++q) {
    std::size_t walked = 0;
    CircuitDag::NodeId prev = CircuitDag::kNull;
    for (CircuitDag::NodeId id = dag.wire_head(q); id != CircuitDag::kNull;
         id = dag.next_on(id, q)) {
      EXPECT_TRUE(dag.gate(id).acts_on(q));
      EXPECT_EQ(dag.prev_on(id, q), prev);
      if (prev != CircuitDag::kNull) {
        EXPECT_LT(dag.key(prev), dag.key(id)) << "keys must grow along wires";
      }
      prev = id;
      ++walked;
    }
    EXPECT_EQ(prev, dag.wire_tail(q));
    std::size_t expected = 0;
    for (const Gate& g : c.gates())
      if (g.acts_on(q)) ++expected;
    EXPECT_EQ(walked, expected) << "wire " << q;
  }
}

TEST(PeepholeDag, EraseUnlinksInConstantTimeSemantics) {
  Circuit c(2);
  c.append(Gate::h(0));
  c.append(Gate::cnot(0, 1));
  c.append(Gate::h(1));
  CircuitDag dag(c);
  dag.erase(dag.next_on(dag.wire_head(0), 0));  // drop the CNOT
  const Circuit out = dag.to_circuit();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.gates()[0].kind, GateKind::H);
  EXPECT_EQ(out.gates()[0].q0, 0u);
  EXPECT_EQ(out.gates()[1].kind, GateKind::H);
  EXPECT_EQ(out.gates()[1].q0, 1u);
  EXPECT_EQ(dag.wire_head(0), dag.wire_tail(0));
  EXPECT_EQ(dag.wire_head(1), dag.wire_tail(1));
}

TEST(PeepholeDag, DegenerateCircuits) {
  Circuit empty(3);
  EXPECT_EQ(dag_optimize(empty, true).removed, 0u);
  EXPECT_TRUE(empty.empty());

  Circuit one(2);
  one.append(Gate::cnot(0, 1));
  EXPECT_EQ(dag_optimize(one, true).removed, 0u);
  EXPECT_EQ(one.size(), 1u);

  // All-commuting trio with nothing to cancel: Rz, CZ, Rz on distinct
  // supports stay exactly as they are.
  Circuit trio(3);
  trio.append(Gate::rz(0, 0.3));
  trio.append(Gate::cz(0, 1));
  trio.append(Gate::rz(1, 0.4));
  const Circuit before = trio;
  EXPECT_EQ(dag_optimize(trio, false).removed, 0u);
  EXPECT_TRUE(circuits_bit_identical(trio, before));
}

TEST(PeepholeDag, CancelsThroughCommutingWindow) {
  // CNOT | Rz(control) | Rx(target) | CNOT: both rotations commute with the
  // CNOTs, which must annihilate across them.
  Circuit c(2);
  c.append(Gate::cnot(0, 1));
  c.append(Gate::rz(0, 0.7));
  c.append(Gate::rx(1, 0.3));
  c.append(Gate::cnot(0, 1));
  dag_optimize(c, false);
  EXPECT_EQ(c.count(GateKind::Cnot), 0u);
  EXPECT_EQ(c.size(), 2u);
}

TEST(PeepholeDag, MergesRotationsAcrossCzChain) {
  // Rz merges through a chain of diagonal gates; the merged angle wraps.
  Circuit c(3);
  c.append(Gate::rz(0, 1.0));
  c.append(Gate::cz(0, 1));
  c.append(Gate::cz(0, 2));
  c.append(Gate::rz(0, 2.5));
  dag_optimize(c, false);
  ASSERT_EQ(c.count(GateKind::Rz), 1u);
  double angle = 0.0;
  for (const Gate& g : c.gates())
    if (g.kind == GateKind::Rz) angle = g.param;
  EXPECT_NEAR(angle, wrap_angle(3.5), 1e-12);
}

TEST(PeepholeDag, BlockedByNonCommutingGate) {
  // H on the control stops the walk: nothing may cancel.
  Circuit c(2);
  c.append(Gate::cnot(0, 1));
  c.append(Gate::h(0));
  c.append(Gate::cnot(0, 1));
  const Circuit before = c;
  dag_optimize(c, false);
  EXPECT_TRUE(circuits_bit_identical(c, before));
}

TEST(PeepholeDag, SeerReenqueueFindsUnblockedPartner) {
  // Rz | CZ | H | H | Rz on one qubit: the H pair cancels first, and the
  // first Rz is not wire-adjacent to either H — only the seer re-enqueue
  // (it commutes past the CZ toward the erased slot) lets its forward walk
  // reach the last Rz through the now-diagonal-only gap.
  Circuit c(2);
  c.append(Gate::rz(0, 0.4));
  c.append(Gate::cz(0, 1));
  c.append(Gate::h(0));
  c.append(Gate::h(0));
  c.append(Gate::rz(0, 0.5));
  dag_optimize(c, false);
  EXPECT_EQ(c.count(GateKind::H), 0u);
  ASSERT_EQ(c.count(GateKind::Rz), 1u);
  for (const Gate& g : c.gates()) {
    if (g.kind == GateKind::Rz) {
      EXPECT_NEAR(g.param, 0.9, 1e-12);
    }
  }
}

TEST(PeepholeDag, FullTurnMergeDropsBothRotations) {
  Circuit c(1);
  c.append(Gate::rz(0, M_PI));
  c.append(Gate::rz(0, M_PI));
  dag_optimize(c, false);
  EXPECT_TRUE(c.empty());
}

TEST(PeepholeDag, FusionCollapsesSingleQubitRuns) {
  // H·S·H·Sdg-style runs fuse to at most three rotations, and fusion output
  // feeding new adjacencies lets cancellation continue (o3 alternation).
  Circuit c(2);
  c.append(Gate::h(0));
  c.append(Gate::s(0));
  c.append(Gate::h(0));
  c.append(Gate::cnot(0, 1));
  c.append(Gate::cnot(0, 1));
  c.append(Gate::h(0));
  c.append(Gate::sdg(0));
  c.append(Gate::h(0));
  const Circuit before = c;
  dag_optimize(c, true);
  EXPECT_EQ(c.count(GateKind::Cnot), 0u);
  EXPECT_LE(c.size(), 2u);  // the two 1Q runs are mutually inverse Rx forms
  Circuit legacy = before;
  optimize_o3(legacy, PeepholeEngine::Legacy);
  expect_state_equivalent(c, legacy, 11);
}

TEST(PeepholeDag, MatchesLegacyOnRandomCircuits) {
  // Differential: both engines' o3 pipelines agree gate-for-gate (the round
  // scheduler replays the legacy pass order exactly) and preserve the state
  // on a generic product input, across >= 50 random circuits up to 10
  // qubits.
  std::uint64_t seed = 0;
  for (std::size_t n = 2; n <= 10; ++n) {
    for (std::size_t rep = 0; rep < 7; ++rep) {
      ++seed;
      const Circuit base = random_circuit(n, 30 + 10 * n, seed);
      Circuit dag = base;
      Circuit legacy = base;
      optimize_o3(dag, PeepholeEngine::Dag);
      optimize_o3(legacy, PeepholeEngine::Legacy);
      EXPECT_LE(dag.size(), base.size());
      EXPECT_TRUE(circuits_bit_identical(dag, legacy)) << "seed " << seed;
      expect_state_equivalent(dag, base, seed);
    }
  }
}

TEST(PeepholeDag, MatchesLegacyCancelOnlyOnRandomCircuits) {
  for (std::uint64_t seed = 100; seed < 150; ++seed) {
    const Circuit base = random_circuit(6, 120, seed);
    Circuit dag = base;
    Circuit legacy = base;
    optimize_o2(dag, PeepholeEngine::Dag);
    optimize_o2(legacy, PeepholeEngine::Legacy);
    EXPECT_TRUE(circuits_bit_identical(dag, legacy)) << "seed " << seed;
    expect_state_equivalent(dag, base, seed);
  }
}

TEST(PeepholeDag, BitIdenticalToLegacyOnSeedSuite) {
  // The two engines must agree gate-for-gate on the seed example suite —
  // the same contract BM_PeepholeDagVsLegacy exports as `identical` and CI
  // fails on. Entries 10 (LiH_frz_BK) and 14 (NH_frz_BK) keep runtime small.
  static const auto suite = uccsd_suite();
  for (std::size_t entry : {std::size_t{10}, std::size_t{14}}) {
    const auto& b = suite[entry];
    for (const PeepholeLevel level : {PeepholeLevel::Own, PeepholeLevel::O3}) {
      PhoenixOptions opt;
      opt.peephole = level;
      opt.peephole_engine = PeepholeEngine::Dag;
      const auto dag = phoenix_compile(b.terms, b.num_qubits, opt);
      opt.peephole_engine = PeepholeEngine::Legacy;
      const auto legacy = phoenix_compile(b.terms, b.num_qubits, opt);
      EXPECT_TRUE(circuits_bit_identical(dag.circuit, legacy.circuit))
          << b.name << " level " << static_cast<int>(level);
    }
  }
}

TEST(PeepholeDag, WorklistStatsAreReported) {
  Circuit c = random_circuit(6, 200, 42);
  const DagOptStats stats = dag_optimize(c, true);
  EXPECT_GT(stats.rewrites, 0u);
  EXPECT_GT(stats.worklist_max, 0u);
  EXPECT_GE(stats.rewrites, 1u);
}

}  // namespace
}  // namespace phoenix
