#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/error.hpp"
#include "hamlib/io.hpp"
#include "hamlib/trotter.hpp"
#include "hamlib/uccsd.hpp"
#include "sim/expectation.hpp"
#include "sim/matrix.hpp"
#include "sim/statevector.hpp"

namespace phoenix {
namespace {

TEST(Trotter, FirstOrderScalesCoefficients) {
  const std::vector<PauliTerm> h = {{"XX", 0.4}, {"ZI", -0.2}};
  const auto step = trotter_first_order(h, 0.5);
  ASSERT_EQ(step.size(), 2u);
  EXPECT_DOUBLE_EQ(step[0].coeff, 0.2);
  EXPECT_DOUBLE_EQ(step[1].coeff, -0.1);
}

TEST(Trotter, SecondOrderIsPalindromic) {
  const std::vector<PauliTerm> h = {{"XX", 0.4}, {"ZI", -0.2}, {"IY", 0.1}};
  const auto step = trotter_second_order(h, 1.0);
  ASSERT_EQ(step.size(), 6u);
  for (std::size_t i = 0; i < step.size(); ++i) {
    EXPECT_EQ(step[i].string, step[step.size() - 1 - i].string);
    EXPECT_DOUBLE_EQ(step[i].coeff, step[step.size() - 1 - i].coeff);
  }
}

TEST(Trotter, RepeatsSteps) {
  const std::vector<PauliTerm> h = {{"XX", 0.4}};
  EXPECT_EQ(trotterize(h, 1.0, 4).size(), 4u);
  EXPECT_EQ(trotterize(h, 1.0, 4, TrotterOrder::Second).size(), 8u);
  EXPECT_THROW(trotterize(h, 1.0, 0), std::invalid_argument);
}

TEST(Trotter, SecondOrderConvergesFasterThanFirst) {
  const std::vector<PauliTerm> h = {{"XX", 0.31}, {"ZI", -0.5}, {"IZ", 0.22}};
  const Matrix exact = expm_minus_i(hamiltonian_matrix(h, 2), 1.0);
  auto error = [&](TrotterOrder order, std::size_t steps) {
    StateVector sv(2);
    sv.apply_gate(Gate::h(0));
    StateVector ref = sv;
    for (const auto& t : trotterize(h, 1.0, steps, order))
      sv.apply_pauli_rotation(t);
    // Reference via the exact matrix.
    StateVector out(2);
    std::vector<Complex> amps(4, Complex{0, 0});
    for (std::size_t r = 0; r < 4; ++r)
      for (std::size_t cc = 0; cc < 4; ++cc)
        amps[r] += exact.at(r, cc) * ref.amplitude(cc);
    Complex overlap{0, 0};
    for (std::size_t r = 0; r < 4; ++r)
      overlap += std::conj(amps[r]) * sv.amplitude(r);
    return 1.0 - std::abs(overlap);
  };
  EXPECT_LT(error(TrotterOrder::Second, 4), error(TrotterOrder::First, 4));
  EXPECT_LT(error(TrotterOrder::First, 16), error(TrotterOrder::First, 4));
}

TEST(HamiltonianIo, TextRoundTrip) {
  const std::vector<PauliTerm> terms = {
      {"XIZY", 0.25}, {"IZZI", -0.5}, {"YYYY", 1e-3}};
  const auto parsed = hamiltonian_from_text(hamiltonian_to_text(terms));
  ASSERT_EQ(parsed.size(), terms.size());
  for (std::size_t i = 0; i < terms.size(); ++i) {
    EXPECT_EQ(parsed[i].string, terms[i].string);
    EXPECT_DOUBLE_EQ(parsed[i].coeff, terms[i].coeff);
  }
}

TEST(HamiltonianIo, IgnoresCommentsAndBlanks) {
  const auto terms = hamiltonian_from_text(
      "# header\n\nXX 0.5  # trailing comment\n  \nZZ -1\n");
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[1].string.to_string(), "ZZ");
}

TEST(HamiltonianIo, RejectsMalformedText) {
  EXPECT_THROW(hamiltonian_from_text("XX\n"), std::runtime_error);
  EXPECT_THROW(hamiltonian_from_text("XX 0.5 junk\n"), std::runtime_error);
  EXPECT_THROW(hamiltonian_from_text("XX 0.5\nXXX 0.1\n"), std::runtime_error);
  EXPECT_THROW(hamiltonian_from_text("XQ 0.5\n"), Error);
}

TEST(HamiltonianIo, FileRoundTrip) {
  const auto bench =
      generate_uccsd(Molecule::lih(), true, FermionEncoding::BravyiKitaev);
  const std::string path =
      (std::filesystem::temp_directory_path() / "phoenix_io_test.ham").string();
  save_hamiltonian(path, bench.terms);
  const auto loaded = load_hamiltonian(path);
  std::remove(path.c_str());
  ASSERT_EQ(loaded.size(), bench.terms.size());
  for (std::size_t i = 0; i < loaded.size(); ++i)
    EXPECT_EQ(loaded[i].string, bench.terms[i].string);
}

TEST(HamiltonianIo, MissingFileThrows) {
  EXPECT_THROW(load_hamiltonian("/nonexistent/path.ham"), std::runtime_error);
}

TEST(Expectation, ComputationalBasisZValues) {
  StateVector sv(2);  // |00>
  EXPECT_NEAR(pauli_expectation(sv, PauliString::from_label("ZI")), 1.0, 1e-12);
  sv.apply_gate(Gate::x(0));  // |10>
  EXPECT_NEAR(pauli_expectation(sv, PauliString::from_label("ZI")), -1.0, 1e-12);
  EXPECT_NEAR(pauli_expectation(sv, PauliString::from_label("XI")), 0.0, 1e-12);
}

TEST(Expectation, BellStateCorrelations) {
  StateVector sv(2);
  sv.apply_gate(Gate::h(0));
  sv.apply_gate(Gate::cnot(0, 1));
  EXPECT_NEAR(pauli_expectation(sv, PauliString::from_label("ZZ")), 1.0, 1e-12);
  EXPECT_NEAR(pauli_expectation(sv, PauliString::from_label("XX")), 1.0, 1e-12);
  EXPECT_NEAR(pauli_expectation(sv, PauliString::from_label("YY")), -1.0, 1e-12);
  EXPECT_NEAR(pauli_expectation(sv, PauliString::from_label("ZI")), 0.0, 1e-12);
}

TEST(Expectation, EnergyIsLinearInTerms) {
  StateVector sv(2);
  sv.apply_gate(Gate::h(0));
  sv.apply_gate(Gate::cnot(0, 1));
  const std::vector<PauliTerm> h = {{"ZZ", 0.5}, {"XX", 0.25}, {"YY", -1.0}};
  EXPECT_NEAR(energy_expectation(sv, h), 0.5 + 0.25 + 1.0, 1e-12);
}

}  // namespace
}  // namespace phoenix
