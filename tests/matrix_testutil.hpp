#pragma once

// Small dense complex-matrix helpers used by tests to verify tableau and
// simulator behaviour against direct linear algebra. Intentionally
// independent of src/sim so the two implementations cross-check each other.

#include <complex>
#include <cstddef>
#include <vector>

namespace phoenix::testutil {

using Cx = std::complex<double>;
using Mat = std::vector<std::vector<Cx>>;

inline Mat zeros(std::size_t n) { return Mat(n, std::vector<Cx>(n, Cx{0, 0})); }

inline Mat eye(std::size_t n) {
  Mat m = zeros(n);
  for (std::size_t i = 0; i < n; ++i) m[i][i] = 1;
  return m;
}

inline Mat mul(const Mat& a, const Mat& b) {
  const std::size_t n = a.size(), m = b[0].size(), k = b.size();
  Mat c(n, std::vector<Cx>(m, Cx{0, 0}));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t l = 0; l < k; ++l) {
      const Cx ail = a[i][l];
      if (ail == Cx{0, 0}) continue;
      for (std::size_t j = 0; j < m; ++j) c[i][j] += ail * b[l][j];
    }
  return c;
}

inline Mat adjoint(const Mat& a) {
  const std::size_t n = a.size(), m = a[0].size();
  Mat c(m, std::vector<Cx>(n));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j) c[j][i] = std::conj(a[i][j]);
  return c;
}

inline Mat kron(const Mat& a, const Mat& b) {
  const std::size_t na = a.size(), nb = b.size();
  Mat c = zeros(na * nb);
  for (std::size_t i = 0; i < na; ++i)
    for (std::size_t j = 0; j < na; ++j)
      for (std::size_t k = 0; k < nb; ++k)
        for (std::size_t l = 0; l < nb; ++l)
          c[i * nb + k][j * nb + l] = a[i][j] * b[k][l];
  return c;
}

inline Mat scale(const Mat& a, Cx s) {
  Mat c = a;
  for (auto& row : c)
    for (auto& v : row) v *= s;
  return c;
}

inline Mat add(const Mat& a, const Mat& b) {
  Mat c = a;
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < a[0].size(); ++j) c[i][j] += b[i][j];
  return c;
}

inline bool approx_eq(const Mat& a, const Mat& b, double tol = 1e-9) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < a[0].size(); ++j)
      if (std::abs(a[i][j] - b[i][j]) > tol) return false;
  return true;
}

/// Equal up to a global phase.
inline bool approx_eq_phase(const Mat& a, const Mat& b, double tol = 1e-9) {
  // Find the largest-magnitude entry of b and align phases there.
  std::size_t bi = 0, bj = 0;
  double best = -1;
  for (std::size_t i = 0; i < b.size(); ++i)
    for (std::size_t j = 0; j < b[0].size(); ++j)
      if (std::abs(b[i][j]) > best) {
        best = std::abs(b[i][j]);
        bi = i;
        bj = j;
      }
  if (best < tol) return approx_eq(a, b, tol);
  if (std::abs(a[bi][bj]) < tol) return false;
  const Cx phase = b[bi][bj] / a[bi][bj];
  if (std::abs(std::abs(phase) - 1.0) > 1e-6) return false;
  return approx_eq(scale(a, phase), b, tol);
}

// --- standard gates -------------------------------------------------------

inline Mat pauli_i() { return eye(2); }
inline Mat pauli_x() { return {{0, 1}, {1, 0}}; }
inline Mat pauli_y() { return {{0, Cx{0, -1}}, {Cx{0, 1}, 0}}; }
inline Mat pauli_z() { return {{1, 0}, {0, -1}}; }
inline Mat hadamard() {
  const double s = 1.0 / std::sqrt(2.0);
  return {{s, s}, {s, -s}};
}
inline Mat s_gate() { return {{1, 0}, {0, Cx{0, 1}}}; }
inline Mat sdg_gate() { return {{1, 0}, {0, Cx{0, -1}}}; }
inline Mat cnot_gate() {
  Mat m = zeros(4);
  m[0][0] = m[1][1] = 1;
  m[2][3] = m[3][2] = 1;
  return m;
}

}  // namespace phoenix::testutil
