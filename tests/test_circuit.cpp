#include "circuit/circuit.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "circuit/qasm.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "mapping/bridge.hpp"
#include "sim/matrix.hpp"
#include "sim/statevector.hpp"

namespace phoenix {
namespace {

TEST(Gate, TwoQubitClassification) {
  EXPECT_TRUE(Gate::cnot(0, 1).is_two_qubit());
  EXPECT_TRUE(Gate::cz(0, 1).is_two_qubit());
  EXPECT_TRUE(Gate::swap(0, 1).is_two_qubit());
  EXPECT_FALSE(Gate::h(0).is_two_qubit());
  EXPECT_FALSE(Gate::rz(0, 0.5).is_two_qubit());
}

TEST(Gate, InverseTable) {
  EXPECT_EQ(Gate::s(1).inverse().kind, GateKind::Sdg);
  EXPECT_EQ(Gate::tdg(1).inverse().kind, GateKind::T);
  EXPECT_EQ(Gate::sqrt_x(0).inverse().kind, GateKind::SqrtXdg);
  EXPECT_DOUBLE_EQ(Gate::rx(0, 0.7).inverse().param, -0.7);
  EXPECT_EQ(Gate::cnot(0, 1).inverse().kind, GateKind::Cnot);
}

TEST(Gate, InverseOfDetectsPairs) {
  EXPECT_TRUE(Gate::h(0).is_inverse_of(Gate::h(0)));
  EXPECT_TRUE(Gate::s(0).is_inverse_of(Gate::sdg(0)));
  EXPECT_TRUE(Gate::rz(0, 0.5).is_inverse_of(Gate::rz(0, -0.5)));
  EXPECT_FALSE(Gate::rz(0, 0.5).is_inverse_of(Gate::rz(0, 0.5)));
  EXPECT_FALSE(Gate::h(0).is_inverse_of(Gate::h(1)));
  // CZ and SWAP are symmetric in their qubits.
  EXPECT_TRUE(Gate::cz(0, 1).is_inverse_of(Gate::cz(1, 0)));
  EXPECT_TRUE(Gate::swap(2, 1).is_inverse_of(Gate::swap(1, 2)));
  EXPECT_FALSE(Gate::cnot(0, 1).is_inverse_of(Gate::cnot(1, 0)));
}

TEST(Gate, Su4InverseReversesChildren) {
  const Gate g = Gate::su4(0, 1, {Gate::h(0), Gate::cnot(0, 1), Gate::s(1)});
  const Gate inv = g.inverse();
  ASSERT_EQ(inv.sub.size(), 3u);
  EXPECT_EQ(inv.sub[0].kind, GateKind::Sdg);
  EXPECT_EQ(inv.sub[1].kind, GateKind::Cnot);
  EXPECT_EQ(inv.sub[2].kind, GateKind::H);
}

TEST(Circuit, AppendValidation) {
  Circuit c(2);
  EXPECT_THROW(c.append(Gate::h(2)), std::out_of_range);
  EXPECT_THROW(c.append(Gate::cnot(0, 0)), std::invalid_argument);
  EXPECT_THROW(c.append(Gate::cnot(0, 5)), std::out_of_range);
}

TEST(Circuit, DepthCountsParallelGatesOnce) {
  Circuit c(4);
  c.append(Gate::cnot(0, 1));
  c.append(Gate::cnot(2, 3));  // parallel
  c.append(Gate::cnot(1, 2));  // sequential
  EXPECT_EQ(c.depth_2q(), 2u);
  EXPECT_EQ(c.count_2q(), 3u);
}

TEST(Circuit, OneQubitGatesFreeInDepth2q) {
  Circuit c(2);
  for (int i = 0; i < 10; ++i) c.append(Gate::h(0));
  c.append(Gate::cnot(0, 1));
  EXPECT_EQ(c.depth_2q(), 1u);
  EXPECT_EQ(c.depth(), 11u);
  EXPECT_EQ(c.count_1q(), 10u);
}

TEST(Circuit, InverseReversesAndInverts) {
  Circuit c(2);
  c.append(Gate::h(0));
  c.append(Gate::cnot(0, 1));
  c.append(Gate::rz(1, 0.4));
  Circuit whole = c;
  whole.append(c.inverse());
  EXPECT_TRUE(circuit_unitary(whole).approx_equal(
      Matrix::identity(4), 1e-12));
}

TEST(Circuit, SupportListsTouchedQubits) {
  Circuit c(5);
  c.append(Gate::h(1));
  c.append(Gate::cnot(3, 4));
  EXPECT_EQ(c.support(), (std::vector<std::size_t>{1, 3, 4}));
}

TEST(Circuit, TwoQubitLayersGreedyLeftAligned) {
  Circuit c(4);
  c.append(Gate::cnot(0, 1));
  c.append(Gate::cnot(2, 3));
  c.append(Gate::cnot(1, 2));
  const auto layers = c.two_qubit_layers();
  ASSERT_EQ(layers.size(), 2u);
  EXPECT_EQ(layers[0].size(), 2u);
  EXPECT_EQ(layers[1].size(), 1u);
}

TEST(Circuit, FlattenedExpandsSu4) {
  Circuit c(2);
  c.append(Gate::su4(0, 1, {Gate::h(0), Gate::cnot(0, 1)}));
  const Circuit f = c.flattened();
  EXPECT_EQ(f.size(), 2u);
  EXPECT_EQ(f.count(GateKind::Su4), 0u);
}

TEST(Circuit, DropTrivialGates) {
  Circuit c(1);
  c.append(Gate(GateKind::I, 0));
  c.append(Gate::rz(0, 1e-15));
  c.append(Gate::rz(0, 0.5));
  c.drop_trivial_gates();
  EXPECT_EQ(c.size(), 1u);
}

TEST(Circuit, PrependPutsGatesFirst) {
  Circuit a(2), b(2);
  a.append(Gate::h(0));
  b.append(Gate::x(1));
  a.prepend(b);
  EXPECT_EQ(a.gate(0).kind, GateKind::X);
}

TEST(Qasm, RoundTripPreservesUnitary) {
  Rng rng(77);
  Circuit c(3);
  c.append(Gate::h(0));
  c.append(Gate::rz(1, -0.75));
  c.append(Gate::cnot(0, 2));
  c.append(Gate::sdg(2));
  c.append(Gate::swap(1, 2));
  c.append(Gate::rx(0, 2.25));
  c.append(Gate::cz(0, 1));
  const Circuit parsed = circuit_from_qasm(c.to_qasm());
  EXPECT_EQ(parsed.size(), c.size());
  EXPECT_TRUE(circuit_unitary(parsed).approx_equal(circuit_unitary(c), 1e-9));
}

TEST(Qasm, ParsesPiExpressions) {
  const Circuit c = circuit_from_qasm(
      "OPENQASM 2.0;\nqreg q[1];\nrz(pi/2) q[0];\nrx(-pi) q[0];\n"
      "ry(0.5*pi) q[0];\n");
  ASSERT_EQ(c.size(), 3u);
  EXPECT_NEAR(c.gate(0).param, M_PI / 2, 1e-12);
  EXPECT_NEAR(c.gate(1).param, -M_PI, 1e-12);
  EXPECT_NEAR(c.gate(2).param, M_PI / 2, 1e-12);
}

TEST(Qasm, IgnoresCommentsAndBarriers) {
  const Circuit c = circuit_from_qasm(
      "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\n"
      "// a comment\nbarrier q[0];\ncx q[0],q[1];\n");
  EXPECT_EQ(c.size(), 1u);
}

TEST(Qasm, ParsesScientificNotationAngles) {
  const Circuit c = circuit_from_qasm(
      "OPENQASM 2.0;\nqreg q[1];\nrz(1e-3) q[0];\nrx(2.5E+2) q[0];\n"
      "ry(-1.5e2) q[0];\nrz(1.25e0*pi) q[0];\n");
  ASSERT_EQ(c.size(), 4u);
  EXPECT_NEAR(c.gate(0).param, 1e-3, 1e-15);
  EXPECT_NEAR(c.gate(1).param, 250.0, 1e-12);
  EXPECT_NEAR(c.gate(2).param, -150.0, 1e-12);
  EXPECT_NEAR(c.gate(3).param, 1.25 * M_PI, 1e-12);
}

TEST(Qasm, RejectsMalformedAngleExpressions) {
  // Every malformed expression must surface as a structured phoenix::Error,
  // never a raw std::invalid_argument/std::out_of_range from std::stod.
  const char* bad[] = {
      "qreg q[1];\nrz(pi*) q[0];\n",      // dangling operator
      "qreg q[1];\nrz(*3) q[0];\n",       // leading operator
      "qreg q[1];\nrz(3**4) q[0];\n",     // doubled operator
      "qreg q[1];\nrz(2 3) q[0];\n",      // juxtaposed operands
      "qreg q[1];\nrz(2-3) q[0];\n",      // infix +/- unsupported
      "qreg q[1];\nrz(1e999) q[0];\n",    // overflowing literal
      "qreg q[1];\nrz(banana) q[0];\n",   // not a literal at all
      "qreg q[1];\nrz( ) q[0];\n",        // empty expression
      "qreg q[1];\nrz(1/0) q[0];\n",      // non-finite result
      "qreg q[1];\nrz(1e) q[0];\n",       // truncated exponent
  };
  for (const char* text : bad) {
    try {
      circuit_from_qasm(text);
      FAIL() << "expected phoenix::Error for: " << text;
    } catch (const Error& e) {
      EXPECT_EQ(e.stage(), Stage::Parse) << text;
      EXPECT_EQ(e.line(), 2u) << text;
      EXPECT_TRUE(e.has_column()) << text;
    } catch (const std::exception& e) {
      FAIL() << "raw exception " << e.what() << " for: " << text;
    }
  }
}

TEST(Qasm, AngleErrorCarriesUsefulColumn) {
  // "rz(pi*) q[0];" — the dangling '*' sits at 1-based column 6.
  try {
    circuit_from_qasm("qreg q[3];\nrz(pi*) q[0];\n");
    FAIL() << "expected phoenix::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_EQ(e.column(), 6u);
    EXPECT_NE(std::string(e.what()).find("dangling operator"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("col=6"), std::string::npos);
  }
}

TEST(Qasm, RejectsMalformedInput) {
  EXPECT_THROW(circuit_from_qasm("qreg q[2];\nfoo q[0];\n"),
               std::runtime_error);
  EXPECT_THROW(circuit_from_qasm("cx q[0],q[1];\n"), std::runtime_error);
  EXPECT_THROW(circuit_from_qasm("qreg q[2];\ncx q[0];\n"),
               std::runtime_error);
  EXPECT_THROW(circuit_from_qasm("qreg q[2];\nh q[0]\n"), std::runtime_error);
  EXPECT_THROW(circuit_from_qasm("qreg q[2];\nrz q[0];\n"),
               std::runtime_error);
}

TEST(Bridge, ImplementsDistanceTwoCnotExactly) {
  Circuit bridge(3);
  append_bridge_cnot(bridge, 0, 1, 2);
  Circuit direct(3);
  direct.append(Gate::cnot(0, 2));
  EXPECT_TRUE(circuit_unitary(bridge).approx_equal(circuit_unitary(direct),
                                                   1e-12));
  EXPECT_EQ(bridge.count(GateKind::Cnot), 4u);
}

TEST(Bridge, RejectsRepeatedQubits) {
  Circuit c(3);
  EXPECT_THROW(append_bridge_cnot(c, 0, 0, 2), std::invalid_argument);
  EXPECT_THROW(append_bridge_cnot(c, 0, 2, 2), std::invalid_argument);
}

}  // namespace
}  // namespace phoenix
