// phoenix_served tests: the frame codec under malformed and fuzzed input,
// the compile-request payload codec, live client/server round-trips over
// TCP and Unix-domain sockets (bit-identical to in-process compiles,
// multiplexing, deadlines, mid-flight cancel, admission control, protocol
// violations that must not take the daemon down), and the fork-based
// multi-process disk-cache stress (suite MultiProcessCache, deliberately
// outside the TSan/chaos CI filters: TSan does not follow fork()).

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "phoenix/serialize.hpp"
#include "service/client.hpp"
#include "service/net.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/service.hpp"

namespace phoenix {
namespace {

using namespace std::chrono_literals;

std::vector<PauliTerm> small_terms(double c0 = 0.5) {
  return {{"XXII", c0}, {"IYYI", -0.25}, {"IIZZ", 0.125}, {"ZIIZ", 1.0}};
}

CompileRequest tiny_request(double c0 = 0.5) {
  CompileRequest req;
  req.terms = small_terms(c0);
  req.num_qubits = 4;
  return req;
}

/// A scratch directory under the system temp dir, removed on destruction.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const char* tag) {
    path = std::filesystem::temp_directory_path() /
           (std::string("phoenix_") + tag + "_" +
            std::to_string(::getpid()) + "_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

Error::Kind kind_of(const std::function<void()>& f) {
  try {
    f();
  } catch (const Error& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected a phoenix::Error";
  return Error::Kind::Failed;
}

/// Deterministic xorshift for the fuzz tests (no unseeded randomness).
struct Fuzz {
  std::uint64_t s = 0x243f6a8885a308d3ull;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
};

// --- frame codec ------------------------------------------------------------

TEST(Protocol, FrameRoundTripsHeaderAndPayload) {
  Frame f;
  f.type = FrameType::Submit;
  f.request_id = 0xdeadbeefcafe1234ull;
  f.payload = std::string("hello\0world", 11);  // embedded NUL survives
  const std::string bytes = encode_frame(f);
  EXPECT_EQ(bytes.size(), kFrameHeaderBytes + 11);

  Frame out;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_frame(bytes.data(), bytes.size(), kMaxFramePayload, out,
                         consumed),
            DecodeResult::Frame);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(out.type, f.type);
  EXPECT_EQ(out.request_id, f.request_id);
  EXPECT_EQ(out.payload, f.payload);
}

TEST(Protocol, TruncatedFramesNeedMoreAtEveryPrefixLength) {
  Frame f;
  f.type = FrameType::Result;
  f.request_id = 7;
  f.payload = "phoenix-compile-result v1 ...";
  const std::string bytes = encode_frame(f);
  Frame out;
  std::size_t consumed = 1;
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    ASSERT_EQ(decode_frame(bytes.data(), len, kMaxFramePayload, out, consumed),
              DecodeResult::NeedMore)
        << "prefix length " << len;
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(Protocol, RejectsBadMagicForeignVersionAndUnknownType) {
  Frame f;
  f.type = FrameType::Poll;
  f.request_id = 1;
  const std::string good = encode_frame(f);
  Frame out;
  std::size_t consumed = 0;

  std::string bad = good;
  bad[0] = 'X';
  EXPECT_THROW(
      decode_frame(bad.data(), bad.size(), kMaxFramePayload, out, consumed),
      Error);

  bad = good;
  bad[4] = static_cast<char>(kProtocolVersion + 1);
  EXPECT_THROW(
      decode_frame(bad.data(), bad.size(), kMaxFramePayload, out, consumed),
      Error);

  bad = good;
  bad[6] = 99;  // frame type far outside the enum
  EXPECT_THROW(
      decode_frame(bad.data(), bad.size(), kMaxFramePayload, out, consumed),
      Error);
}

TEST(Protocol, RejectsOversizedPayloadBeforeBuffering) {
  Frame f;
  f.type = FrameType::Submit;
  f.payload = std::string(1024, 'x');
  std::string bytes = encode_frame(f);
  // Header claims a payload bigger than the configured cap; the decoder must
  // reject from the header alone, without waiting for (or allocating) it.
  Frame out;
  std::size_t consumed = 0;
  try {
    decode_frame(bytes.data(), bytes.size(), 512, out, consumed);
    FAIL() << "oversized payload accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.stage(), Stage::Parse);
  }
}

TEST(Protocol, HeaderFuzzNeverCrashesOrOverreads) {
  // 4k random 20-byte headers (plus whatever payload bytes follow): decode
  // must always terminate in Frame / NeedMore / Error(Stage::Parse).
  Fuzz rng;
  std::string buf(kFrameHeaderBytes + 64, '\0');
  for (int iter = 0; iter < 4096; ++iter) {
    for (auto& c : buf) c = static_cast<char>(rng.next() & 0xff);
    Frame out;
    std::size_t consumed = 0;
    try {
      const DecodeResult r =
          decode_frame(buf.data(), buf.size(), 1u << 20, out, consumed);
      if (r == DecodeResult::Frame) EXPECT_LE(consumed, buf.size());
    } catch (const Error& e) {
      EXPECT_EQ(e.stage(), Stage::Parse);
    }
  }
}

TEST(Protocol, BitFlippedSubmitPayloadNeverCrashesTheParser) {
  const std::string doc = compile_request_to_bytes(tiny_request(), 3);
  Fuzz rng;
  for (int iter = 0; iter < 2048; ++iter) {
    std::string bad = doc;
    bad[rng.next() % bad.size()] ^=
        static_cast<char>(1u << (rng.next() % 8));
    int priority = 0;
    try {
      // A single bit flip may still parse (e.g. inside a coefficient's hex
      // bits); what it must never do is crash or hang.
      compile_request_from_bytes(bad, priority);
    } catch (const Error& e) {
      EXPECT_EQ(e.stage(), Stage::Parse);
    }
  }
}

// --- compile-request payload codec ------------------------------------------

TEST(Protocol, CompileRequestRoundTripsTermsOptionsAndPriority) {
  CompileRequest req = tiny_request();
  req.options.isa = TwoQubitIsa::Su4;
  req.options.peephole = PeepholeLevel::O3;
  req.options.lookahead = 7;
  req.options.simplify.num_starts = 3;
  req.options.simplify.beam_width = 2;
  req.deadline_ms = 1250.5;

  int priority = 0;
  const CompileRequest out =
      compile_request_from_bytes(compile_request_to_bytes(req, -4), priority);
  EXPECT_EQ(priority, -4);
  EXPECT_EQ(out.num_qubits, req.num_qubits);
  ASSERT_EQ(out.terms.size(), req.terms.size());
  for (std::size_t i = 0; i < out.terms.size(); ++i) {
    EXPECT_EQ(out.terms[i].string.to_string(),
              req.terms[i].string.to_string());
    EXPECT_EQ(out.terms[i].coeff, req.terms[i].coeff);
  }
  EXPECT_EQ(out.options.isa, req.options.isa);
  EXPECT_EQ(out.options.peephole, req.options.peephole);
  EXPECT_EQ(out.options.lookahead, req.options.lookahead);
  EXPECT_EQ(out.options.simplify.num_starts, 3u);
  EXPECT_EQ(out.options.simplify.beam_width, 2u);
  EXPECT_EQ(out.deadline_ms, 1250.5);
  EXPECT_EQ(out.coupling_graph(), nullptr);
}

TEST(Protocol, CompileRequestNoDeadlineSentinelSurvivesTheWire) {
  int priority = 0;
  const CompileRequest out = compile_request_from_bytes(
      compile_request_to_bytes(tiny_request(), 0), priority);
  EXPECT_EQ(out.deadline_ms, CompileRequest::kNoDeadline);
}

TEST(Protocol, CompileRequestCouplingGraphTravelsAsEdgeList) {
  CompileRequest req = tiny_request();
  auto g = std::make_shared<Graph>(4);
  g->add_edge(0, 1);
  g->add_edge(1, 2);
  g->add_edge(2, 3);
  req.coupling = g;
  req.options.hardware_aware = true;

  int priority = 0;
  const CompileRequest out =
      compile_request_from_bytes(compile_request_to_bytes(req, 0), priority);
  ASSERT_NE(out.coupling_graph(), nullptr);
  EXPECT_TRUE(out.options.hardware_aware);
  EXPECT_EQ(out.coupling_graph()->num_vertices(), 4u);
  EXPECT_EQ(out.coupling_graph()->num_edges(), 3u);
}

TEST(Protocol, CompileRequestRejectsTrailingAndOutOfRangeInput) {
  const std::string doc = compile_request_to_bytes(tiny_request(), 0);
  int priority = 0;
  EXPECT_THROW(compile_request_from_bytes(doc + " junk", priority), Error);
  EXPECT_THROW(compile_request_from_bytes(doc + doc, priority), Error);

  // Out-of-range validation ordinal: field 4 of the options line.
  std::string bad = doc;
  const auto pos = bad.find("options ");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, 8, "optionz ");
  EXPECT_THROW(compile_request_from_bytes(bad, priority), Error);
}

TEST(Protocol, ErrorPayloadRoundTripsKindStageAndDetail)
{
  const Error in(Error::Kind::DeadlineExceeded, Stage::Service,
                 "budget blown by 3ms");
  const Error out = error_from_payload(error_to_payload(in));
  EXPECT_EQ(out.kind(), Error::Kind::DeadlineExceeded);
  EXPECT_EQ(out.stage(), Stage::Service);
  EXPECT_EQ(out.detail(), in.detail());

  // Unknown ordinals from a future build degrade to Failed/Service rather
  // than rejecting the reply.
  const Error degraded = error_from_payload("err 250 250 mystery");
  EXPECT_EQ(degraded.kind(), Error::Kind::Failed);
  EXPECT_EQ(degraded.stage(), Stage::Service);
}

// --- live server round-trips ------------------------------------------------

TEST(Server, TcpRoundTripIsBitIdenticalToInProcessCompile) {
  ServerOptions opt;
  opt.enable_tcp = true;
  opt.tcp_port = 0;
  opt.service.num_threads = 1;
  ServedServer server(opt);
  server.start();
  ASSERT_NE(server.tcp_port(), 0);

  ServedClient client = ServedClient::connect_tcp("127.0.0.1",
                                                  server.tcp_port());
  const auto ack = client.submit(tiny_request());
  EXPECT_EQ(ack.fingerprint_hex.size(), 32u);
  const std::string wire = client.await_raw(ack.request_id);

  CompileService local;
  const auto in_process = local.compile(tiny_request());
  EXPECT_EQ(wire, compile_result_to_bytes(*in_process));
  // And the parsed circuit is usable client-side.
  const CompileResult parsed = compile_result_from_bytes(wire);
  EXPECT_EQ(parsed.circuit.num_qubits(), 4u);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.frame_errors, 0u);
  EXPECT_EQ(stats.results, 1u);
  server.stop();
}

TEST(Server, UnixSocketRoundTripAndWarmHitFlag) {
  const TempDir dir("uds");
  ServerOptions opt;
  opt.unix_path = dir.str() + "/served.sock";
  opt.service.num_threads = 1;
  ServedServer server(opt);
  server.start();
  EXPECT_EQ(server.tcp_port(), 0);  // TCP off: local clients only

  ServedClient client = ServedClient::connect_unix(opt.unix_path);
  const auto cold = client.submit(tiny_request());
  const std::string first = client.await_raw(cold.request_id);

  const auto warm = client.submit(tiny_request());
  EXPECT_TRUE(warm.hit);  // resident in the content-addressed cache now
  EXPECT_EQ(client.await_raw(warm.request_id), first);
  EXPECT_EQ(warm.fingerprint_hex, cold.fingerprint_hex);
  server.stop();
}

TEST(Server, MultiplexedSubmissionsAwaitInAnyOrder) {
  ServerOptions opt;
  opt.enable_tcp = true;
  opt.service.num_threads = 1;
  ServedServer server(opt);
  server.start();
  ServedClient client = ServedClient::connect_tcp("127.0.0.1",
                                                  server.tcp_port());

  std::vector<ServedClient::Ack> acks;
  for (int i = 0; i < 4; ++i)
    acks.push_back(client.submit(tiny_request(0.25 + i)));
  // Await newest-first: earlier results park in the client mailbox.
  for (int i = 3; i >= 0; --i) {
    const CompileResult r =
        compile_result_from_bytes(client.await_raw(acks[i].request_id));
    EXPECT_EQ(r.circuit.num_qubits(), 4u);
  }
  // The counter increments just after the reply hits the wire, so the
  // client can observe the result a beat before the stat: wait it out.
  for (int i = 0; i < 2000 && server.stats().results != 4u; ++i)
    std::this_thread::sleep_for(1ms);
  EXPECT_EQ(server.stats().results, 4u);
  server.stop();
}

TEST(Server, DeadlineExceededTravelsAsStructuredError) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  ServerOptions opt;
  opt.enable_tcp = true;
  opt.service.num_threads = 1;
  opt.compile_fn = [&](const CompileRequest& req) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    CompileResult r;
    r.circuit = Circuit(req.num_qubits);
    return r;
  };
  ServedServer server(opt);
  server.start();
  ServedClient client = ServedClient::connect_tcp("127.0.0.1",
                                                  server.tcp_port());

  CompileRequest req = tiny_request();
  req.deadline_ms = 40.0;
  const auto ack = client.submit(req);
  EXPECT_EQ(kind_of([&] { client.await_raw(ack.request_id); }),
            Error::Kind::DeadlineExceeded);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  server.stop();
  EXPECT_EQ(server.stats().frame_errors, 0u);
}

TEST(Server, MidFlightCancelAbortsTheCompile) {
  std::atomic<bool> entered{false};
  ServerOptions opt;
  opt.enable_tcp = true;
  opt.service.num_threads = 1;
  opt.compile_fn = [&](const CompileRequest& req) {
    entered.store(true);
    // Cooperative loop: aborts promptly once the flight token trips.
    while (!req.cancel.cancel_requested()) std::this_thread::sleep_for(1ms);
    req.cancel.check(Stage::Service);
    CompileResult r;
    r.circuit = Circuit(req.num_qubits);
    return r;
  };
  ServedServer server(opt);
  server.start();
  ServedClient client = ServedClient::connect_tcp("127.0.0.1",
                                                  server.tcp_port());

  const auto ack = client.submit(tiny_request());
  while (!entered.load()) std::this_thread::sleep_for(1ms);
  EXPECT_TRUE(client.cancel(ack.request_id));
  EXPECT_EQ(kind_of([&] { client.await_raw(ack.request_id); }),
            Error::Kind::Cancelled);
  // Cancelling an unknown (already retired) request id is a clean no.
  EXPECT_FALSE(client.cancel(ack.request_id));
  server.stop();
}

TEST(Server, PollReportsPendingThenReady) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  ServerOptions opt;
  opt.enable_tcp = true;
  opt.service.num_threads = 1;
  opt.compile_fn = [&](const CompileRequest& req) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    CompileResult r;
    r.circuit = Circuit(req.num_qubits);
    return r;
  };
  ServedServer server(opt);
  server.start();
  ServedClient client = ServedClient::connect_tcp("127.0.0.1",
                                                  server.tcp_port());

  const auto ack = client.submit(tiny_request());
  bool known = false;
  EXPECT_FALSE(client.poll(ack.request_id, &known));
  EXPECT_TRUE(known);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  EXPECT_EQ(compile_result_from_bytes(client.await_raw(ack.request_id))
                .circuit.num_qubits(),
            4u);
  // Terminal replies retire the submission server-side.
  EXPECT_FALSE(client.poll(ack.request_id, &known));
  EXPECT_FALSE(known);
  server.stop();
}

TEST(Server, PerConnectionInflightLimitRejectsWithOverloaded) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  ServerOptions opt;
  opt.enable_tcp = true;
  opt.service.num_threads = 1;
  opt.max_inflight_per_conn = 1;
  opt.compile_fn = [&](const CompileRequest& req) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    CompileResult r;
    r.circuit = Circuit(req.num_qubits);
    return r;
  };
  ServedServer server(opt);
  server.start();
  ServedClient client = ServedClient::connect_tcp("127.0.0.1",
                                                  server.tcp_port());

  const auto first = client.submit(tiny_request(1.0));
  EXPECT_EQ(kind_of([&] { client.submit(tiny_request(2.0)); }),
            Error::Kind::Overloaded);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  // The connection survived the reject and still delivers the first result.
  EXPECT_EQ(compile_result_from_bytes(client.await_raw(first.request_id))
                .circuit.num_qubits(),
            4u);
  server.stop();
  EXPECT_EQ(server.stats().frame_errors, 0u);
}

TEST(Server, StatsFrameReportsNetAndServiceCounters) {
  ServerOptions opt;
  opt.enable_tcp = true;
  opt.service.num_threads = 1;
  ServedServer server(opt);
  server.start();
  ServedClient client = ServedClient::connect_tcp("127.0.0.1",
                                                  server.tcp_port());
  const auto ack = client.submit(tiny_request());
  client.await_raw(ack.request_id);

  bool saw_accepted = false, saw_misses = false;
  for (const auto& [name, value] : client.stats()) {
    if (name == "net.accepted") {
      saw_accepted = true;
      EXPECT_EQ(value, 1u);
    }
    if (name == "service.misses") {
      saw_misses = true;
      EXPECT_EQ(value, 1u);
    }
    if (name == "net.frame_errors") EXPECT_EQ(value, 0u);
  }
  EXPECT_TRUE(saw_accepted);
  EXPECT_TRUE(saw_misses);
  server.stop();
}

// --- protocol-edge behavior of the live daemon ------------------------------

TEST(ServerWire, GarbageBytesGetAStructuredErrorAndTheDaemonSurvives) {
  ServerOptions opt;
  opt.enable_tcp = true;
  opt.service.num_threads = 1;
  ServedServer server(opt);
  server.start();

  {
    ServedClient rogue = ServedClient::connect_tcp("127.0.0.1",
                                                   server.tcp_port());
    rogue.send_bytes("GET / HTTP/1.1\r\nHost: phoenix\r\n\r\n");
    // The server answers with an ErrorReply frame (request id 0), then
    // closes; the reply is still well-framed.
    const Frame f = rogue.read_frame();
    EXPECT_EQ(f.type, FrameType::ErrorReply);
    EXPECT_EQ(f.request_id, 0u);
    EXPECT_EQ(error_from_payload(f.payload).stage(), Stage::Parse);
  }

  // A fresh, well-behaved connection still gets served.
  ServedClient client = ServedClient::connect_tcp("127.0.0.1",
                                                  server.tcp_port());
  const auto ack = client.submit(tiny_request());
  EXPECT_FALSE(client.await_raw(ack.request_id).empty());
  EXPECT_GE(server.stats().frame_errors, 1u);
  server.stop();
}

TEST(ServerWire, TruncatedFrameThenDisconnectLeavesNoWedgedState) {
  ServerOptions opt;
  opt.enable_tcp = true;
  opt.service.num_threads = 1;
  ServedServer server(opt);
  server.start();
  {
    Frame f;
    f.type = FrameType::Submit;
    f.request_id = 9;
    f.payload = compile_request_to_bytes(tiny_request(), 0);
    const std::string bytes = encode_frame(f);
    ServedClient rogue = ServedClient::connect_tcp("127.0.0.1",
                                                   server.tcp_port());
    rogue.send_bytes(bytes.substr(0, bytes.size() / 2));
  }  // disconnect mid-frame
  ServedClient client = ServedClient::connect_tcp("127.0.0.1",
                                                  server.tcp_port());
  const auto ack = client.submit(tiny_request());
  EXPECT_FALSE(client.await_raw(ack.request_id).empty());
  EXPECT_EQ(server.stats().frame_errors, 0u);  // truncation is just EOF
  server.stop();
}

TEST(ServerWire, OversizedFrameHeaderIsRejectedStructurally) {
  ServerOptions opt;
  opt.enable_tcp = true;
  opt.service.num_threads = 1;
  opt.max_frame_payload = 4096;
  ServedServer server(opt);
  server.start();
  ServedClient rogue = ServedClient::connect_tcp("127.0.0.1",
                                                 server.tcp_port());
  Frame f;
  f.type = FrameType::Submit;
  f.request_id = 1;
  f.payload = std::string(8192, 'x');  // exceeds the server's 4 KiB cap
  rogue.send_bytes(encode_frame(f));
  const Frame reply = rogue.read_frame();
  EXPECT_EQ(reply.type, FrameType::ErrorReply);
  EXPECT_EQ(error_from_payload(reply.payload).stage(), Stage::Parse);
  server.stop();
  EXPECT_GE(server.stats().frame_errors, 1u);
}

TEST(ServerWire, CorruptSubmitPayloadKeepsTheConnectionUsable) {
  ServerOptions opt;
  opt.enable_tcp = true;
  opt.service.num_threads = 1;
  ServedServer server(opt);
  server.start();
  ServedClient client = ServedClient::connect_tcp("127.0.0.1",
                                                  server.tcp_port());

  Frame f;
  f.type = FrameType::Submit;
  f.request_id = 77;
  f.payload = "phoenix-compile-request v1\nqubits MANY terms FEW\n";
  client.send_bytes(encode_frame(f));
  const Frame reply = client.read_frame();
  EXPECT_EQ(reply.type, FrameType::ErrorReply);
  EXPECT_EQ(reply.request_id, 77u);
  EXPECT_EQ(error_from_payload(reply.payload).stage(), Stage::Parse);

  // Framing stayed intact, so the same connection still compiles.
  const auto ack = client.submit(tiny_request());
  EXPECT_FALSE(client.await_raw(ack.request_id).empty());
  EXPECT_GE(server.stats().frame_errors, 1u);
  server.stop();
}

TEST(ServerWire, DisconnectWithInflightCompileCancelsIt) {
  std::atomic<bool> entered{false};
  std::atomic<bool> aborted{false};
  ServerOptions opt;
  opt.enable_tcp = true;
  opt.service.num_threads = 1;
  opt.compile_fn = [&](const CompileRequest& req) {
    entered.store(true);
    for (int i = 0; i < 5000 && !req.cancel.cancel_requested(); ++i)
      std::this_thread::sleep_for(1ms);
    aborted.store(req.cancel.cancel_requested());
    req.cancel.check(Stage::Service);
    CompileResult r;
    r.circuit = Circuit(req.num_qubits);
    return r;
  };
  ServedServer server(opt);
  server.start();
  {
    ServedClient client = ServedClient::connect_tcp("127.0.0.1",
                                                    server.tcp_port());
    client.submit(tiny_request());
    while (!entered.load()) std::this_thread::sleep_for(1ms);
  }  // client vanishes with the compile still running
  // The reader notices EOF, cancels the orphaned flight, and the compile
  // aborts through its token instead of burning the worker for 5s.
  for (int i = 0; i < 2000 && !aborted.load(); ++i)
    std::this_thread::sleep_for(1ms);
  EXPECT_TRUE(aborted.load());
  server.stop();
}

// --- multi-process disk cache (fork-based; not run under TSan/chaos) --------

/// Child-side check helper: returns an exit code instead of using gtest
/// assertions (the child must not run the test framework).
int child_compile_all(const std::string& dir, int programs,
                      bool expect_no_miss) {
  ServiceOptions opt;
  opt.num_threads = 1;  // fresh dedicated worker; never the parent's pools
  opt.cache.disk_dir = dir;
  CompileService svc(opt);
  for (int j = 0; j < programs; ++j) {
    CompileRequest req = tiny_request(0.5 + j);
    req.options.num_threads = 1;  // fully serial compile inside the child
    try {
      if (svc.compile(req) == nullptr) return 10;
    } catch (...) {
      return 11;
    }
  }
  const ServiceStats s = svc.stats();
  if (s.disk_rejects != 0) return 12;  // torn/corrupt disk read
  if (expect_no_miss && s.misses != 0) return 13;  // recompiled a warm key
  return 0;
}

int wait_for_exit(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  if (!WIFEXITED(status)) return -2;
  return WEXITSTATUS(status);
}

TEST(MultiProcessCache, WarmDirectoryServesEveryProcessWithoutRecompiles) {
  const TempDir dir("mpwarm");
  constexpr int kPrograms = 4;
  {
    ServiceOptions opt;
    opt.num_threads = 1;
    opt.cache.disk_dir = dir.str();
    CompileService warmer(opt);
    for (int j = 0; j < kPrograms; ++j) {
      CompileRequest req = tiny_request(0.5 + j);
      req.options.num_threads = 1;
      ASSERT_NE(warmer.compile(req), nullptr);
    }
    EXPECT_EQ(warmer.stats().misses, static_cast<std::uint64_t>(kPrograms));
  }

  constexpr int kChildren = 4;
  std::vector<pid_t> pids;
  for (int i = 0; i < kChildren; ++i) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0)
      ::_exit(child_compile_all(dir.str(), kPrograms,
                                /*expect_no_miss=*/true));
    pids.push_back(pid);
  }
  for (const pid_t pid : pids) EXPECT_EQ(wait_for_exit(pid), 0);

  // Exactly-once compiles per fingerprint: the disk tier served every other
  // process, and nobody quarantined a healthy entry or left a tmp behind.
  std::size_t entries = 0;
  for (const auto& e :
       std::filesystem::recursive_directory_iterator(dir.path)) {
    if (!e.is_regular_file()) continue;
    const std::string name = e.path().filename().string();
    EXPECT_EQ(name.find(".quarantine"), std::string::npos) << name;
    EXPECT_NE(name.size() >= 4 && name.substr(name.size() - 4) == ".tmp",
              true)
        << name;
    if (name.size() > 5 && name.substr(name.size() - 5) == ".phxc") ++entries;
  }
  EXPECT_EQ(entries, static_cast<std::size_t>(kPrograms));
}

TEST(MultiProcessCache, ConcurrentWritersAndSweepingReadersDontCorrupt) {
  const TempDir dir("mprace");
  constexpr int kPrograms = 5;
  constexpr int kChildren = 4;
  constexpr int kRounds = 3;

  std::vector<pid_t> pids;
  for (int i = 0; i < kChildren; ++i) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Each round builds a fresh service — and therefore runs the startup
      // tmp sweep — while sibling processes are actively writing the same
      // entries. The grace window must keep the sweep off their live tmps.
      for (int r = 0; r < kRounds; ++r) {
        const int rc = child_compile_all(dir.str(), kPrograms,
                                         /*expect_no_miss=*/false);
        if (rc != 0) ::_exit(rc);
      }
      ::_exit(0);
    }
    pids.push_back(pid);
  }
  for (const pid_t pid : pids) EXPECT_EQ(wait_for_exit(pid), 0);

  // Quiet aftermath: a fresh process sees a complete, healthy cache.
  ServiceOptions opt;
  opt.num_threads = 1;
  opt.cache.disk_dir = dir.str();
  CompileService svc(opt);
  for (int j = 0; j < kPrograms; ++j) {
    CompileRequest req = tiny_request(0.5 + j);
    req.options.num_threads = 1;
    EXPECT_NE(svc.compile(req), nullptr);
  }
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.disk_rejects, 0u);
  EXPECT_EQ(s.disk_hits, static_cast<std::uint64_t>(kPrograms));
  for (const auto& e :
       std::filesystem::recursive_directory_iterator(dir.path)) {
    const std::string name = e.path().filename().string();
    EXPECT_EQ(name.find(".quarantine"), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace phoenix
