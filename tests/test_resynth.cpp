#include "resynth/resynth.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/synthesis.hpp"
#include "common/rng.hpp"
#include "hamlib/uccsd.hpp"
#include "mapping/topology.hpp"
#include "phoenix/compiler.hpp"
#include "sim/matrix.hpp"
#include "sim/statevector.hpp"

namespace phoenix {
namespace {

// Random Clifford circuit over the full gate vocabulary the extractor
// absorbs, including Clifford-angle rotations and SWAPs.
Circuit random_clifford(Rng& rng, std::size_t n, std::size_t len) {
  Circuit c(n);
  for (std::size_t i = 0; i < len; ++i) {
    const std::size_t q = rng.next_below(n);
    switch (rng.next_below(12)) {
      case 0: c.append(Gate::h(q)); break;
      case 1: c.append(Gate::s(q)); break;
      case 2: c.append(Gate::sdg(q)); break;
      case 3: c.append(Gate::x(q)); break;
      case 4: c.append(Gate::y(q)); break;
      case 5: c.append(Gate::z(q)); break;
      case 6: c.append(Gate::sqrt_x(q)); break;
      case 7:
        c.append(Gate::rz(q, (static_cast<double>(rng.next_below(4)) - 1.0) *
                                 (M_PI / 2.0)));
        break;
      default: {
        if (n < 2) {
          c.append(Gate::h(q));
          break;
        }
        std::size_t a = rng.next_below(n), b = rng.next_below(n);
        if (a == b) b = (a + 1) % n;
        switch (rng.next_below(3)) {
          case 0: c.append(Gate::cnot(a, b)); break;
          case 1: c.append(Gate::cz(a, b)); break;
          default: c.append(Gate::swap(a, b)); break;
        }
        break;
      }
    }
  }
  return c;
}

// Phase-insensitive unitary equivalence (tableaux only pin circuits down to
// a global phase).
void expect_equivalent(const Circuit& a, const Circuit& b) {
  ASSERT_LE(a.num_qubits(), 8u) << "unitary cross-check register too big";
  EXPECT_LT(infidelity(circuit_unitary(a), circuit_unitary(b)), 1e-9);
}

TEST(ResynthSynthesize, IdentityTableauGivesEmptyCircuit) {
  const Circuit out = synthesize_tableau(CliffordTableau(5));
  EXPECT_TRUE(out.empty());
}

TEST(ResynthSynthesize, RoundTripsRandomCliffordCircuits) {
  Rng rng(2025);
  for (std::size_t n : {1u, 2u, 3u, 5u, 6u}) {
    for (int trial = 0; trial < 12; ++trial) {
      const Circuit c = random_clifford(rng, n, 6 * n + 4);
      const CliffordTableau tab = CliffordTableau::from_circuit(c);
      const Circuit synth = synthesize_tableau(tab);
      // Exact tableau round trip (bit-identical rows and signs)…
      EXPECT_EQ(CliffordTableau::from_circuit(synth), tab);
      // …and exact unitary equivalence up to global phase.
      expect_equivalent(c, synth);
      // The synthesizer's output vocabulary excludes SWAP by contract.
      EXPECT_EQ(synth.count(GateKind::Swap), 0u);
    }
  }
}

TEST(ResynthSynthesize, RoundTripsTenQubitStatevectors) {
  // 2^10 unitaries are too bulky; spot-check action on random product-ish
  // states instead: |<synth ψ | orig ψ>| must be 1.
  Rng rng(77);
  const std::size_t n = 10;
  for (int trial = 0; trial < 4; ++trial) {
    const Circuit c = random_clifford(rng, n, 80);
    const Circuit synth =
        synthesize_tableau(CliffordTableau::from_circuit(c));
    Circuit prep(n);
    for (std::size_t q = 0; q < n; ++q) {
      if (rng.next_below(2)) prep.append(Gate::h(q));
      if (rng.next_below(2)) prep.append(Gate::rz(q, rng.next_double() * 3.0));
    }
    StateVector a(n), b(n);
    a.apply_circuit(prep);
    b.apply_circuit(prep);
    a.apply_circuit(c);
    b.apply_circuit(synth);
    EXPECT_NEAR(std::abs(a.inner_product(b)), 1.0, 1e-9);
  }
}

TEST(ResynthSynthesize, SignAndPhaseEdgeCases) {
  // S† alone (sign bookkeeping of the inverse quarter turn).
  {
    Circuit c(1);
    c.append(Gate::sdg(0));
    expect_equivalent(c, synthesize_tableau(CliffordTableau::from_circuit(c)));
  }
  // Y (double sign flip) and Y-adjacent combos.
  {
    Circuit c(2);
    c.append(Gate::y(0));
    c.append(Gate::sdg(1));
    c.append(Gate::y(1));
    expect_equivalent(c, synthesize_tableau(CliffordTableau::from_circuit(c)));
  }
  // SWAP chain: the permutation must round-trip without Swap gates.
  {
    Circuit c(4);
    c.append(Gate::swap(0, 1));
    c.append(Gate::swap(1, 2));
    c.append(Gate::swap(2, 3));
    const Circuit synth =
        synthesize_tableau(CliffordTableau::from_circuit(c));
    EXPECT_EQ(synth.count(GateKind::Swap), 0u);
    expect_equivalent(c, synth);
  }
  // Rz(π) = −iZ: Clifford-angle rotation handled up to global phase.
  {
    Circuit c(1);
    c.append(Gate::rz(0, M_PI));
    expect_equivalent(c, synthesize_tableau(CliffordTableau::from_circuit(c)));
  }
}

TEST(ResynthSynthesize, CouplingModeRoutesLongRangeCnots) {
  const Graph line = topology_line(5);
  Circuit c(5);
  c.append(Gate::cnot(0, 4));
  const CliffordTableau tab = CliffordTableau::from_circuit(c);
  const Circuit synth = synthesize_tableau(tab, &line);
  for (const Gate& g : synth.gates())
    if (g.is_two_qubit()) EXPECT_TRUE(line.has_edge(g.q0, g.q1));
  EXPECT_EQ(CliffordTableau::from_circuit(synth), tab);
  expect_equivalent(c, synth);
}

TEST(ResynthSynthesize, CouplingModeRoundTripsRandomCliffords) {
  Rng rng(404);
  const Graph grid = topology_grid(2, 3);
  for (int trial = 0; trial < 8; ++trial) {
    const Circuit c = random_clifford(rng, 6, 30);
    const CliffordTableau tab = CliffordTableau::from_circuit(c);
    const Circuit synth = synthesize_tableau(tab, &grid);
    for (const Gate& g : synth.gates())
      if (g.is_two_qubit()) EXPECT_TRUE(grid.has_edge(g.q0, g.q1));
    EXPECT_EQ(CliffordTableau::from_circuit(synth), tab);
    expect_equivalent(c, synth);
  }
}

TEST(ResynthExtract, ClassifiesCliffordGates) {
  EXPECT_TRUE(is_clifford_gate(Gate::h(0)));
  EXPECT_TRUE(is_clifford_gate(Gate::swap(0, 1)));
  EXPECT_TRUE(is_clifford_gate(Gate::rz(0, M_PI / 2)));
  EXPECT_TRUE(is_clifford_gate(Gate::rx(0, -M_PI)));
  EXPECT_TRUE(is_clifford_gate(Gate::ry(0, 2 * M_PI)));
  EXPECT_FALSE(is_clifford_gate(Gate::t(0)));
  EXPECT_FALSE(is_clifford_gate(Gate::rz(0, 0.3)));
  EXPECT_FALSE(is_clifford_gate(Gate::rz(0, M_PI / 4)));
}

TEST(ResynthExtract, AbsorbsAcrossCommutingBarrier) {
  // Rz on the CNOT's control commutes with it, so both CNOTs join one
  // region and annihilate; the rotation survives.
  Circuit c(2);
  c.append(Gate::cnot(1, 0));
  c.append(Gate::rz(1, 0.7));
  c.append(Gate::cnot(1, 0));
  const Circuit before = c;
  const ResynthStats st = resynthesize_clifford_regions(c);
  EXPECT_EQ(st.regions, 1u);
  EXPECT_EQ(st.accepted, 1u);
  EXPECT_EQ(c.two_qubit_count(), 0u);
  expect_equivalent(before, c);
}

TEST(ResynthExtract, SplitsAtNonCommutingBarrier) {
  // Rz on the CNOT's target blocks absorption: two separate regions, each
  // a lone CNOT, nothing to improve.
  Circuit c(2);
  c.append(Gate::cnot(0, 1));
  c.append(Gate::rz(1, 0.7));
  c.append(Gate::cnot(0, 1));
  const Circuit before = c;
  const ResynthStats st = resynthesize_clifford_regions(c);
  EXPECT_EQ(st.accepted, 0u);
  EXPECT_EQ(c.two_qubit_count(), 2u);
  expect_equivalent(before, c);
}

TEST(ResynthExtract, NeverIncreasesTwoQubitCountOnRandomMixes) {
  Rng rng(909);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 4;
    Circuit c(n);
    for (int i = 0; i < 60; ++i) {
      if (rng.next_below(4) == 0) {
        c.append(Gate::rz(rng.next_below(n), 0.1 + rng.next_double()));
      } else {
        c.append(random_clifford(rng, n, 1));
      }
    }
    const Circuit before = c;
    resynthesize_clifford_regions(c);
    EXPECT_LE(c.two_qubit_count(), before.two_qubit_count());
    expect_equivalent(before, c);
  }
}

TEST(ResynthExtract, CancellationAborts) {
  CancelSource src;
  src.request_cancel();
  ResynthOptions opt;
  opt.cancel = src.token();
  Rng rng(5);
  Circuit c = random_clifford(rng, 4, 64);
  try {
    resynthesize_clifford_regions(c, opt);
    FAIL() << "expected cancellation";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), Error::Kind::Cancelled);
    EXPECT_EQ(e.stage(), Stage::Resynth);
  }
}

TEST(ResynthPipeline, LogicalO4NeverWorseThanO3AndValidates) {
  for (const auto& bench : uccsd_suite_small(10)) {
    PhoenixOptions o3;
    o3.peephole = PeepholeLevel::O3;
    o3.validation.level = ValidationLevel::Cheap;
    const CompileResult r3 =
        phoenix_compile(bench.terms, bench.num_qubits, o3);

    PhoenixOptions o4 = o3;
    o4.resynth = ResynthLevel::Logical;
    o4.validation.level = ValidationLevel::Paranoid;
    const CompileResult r4 =
        phoenix_compile(bench.terms, bench.num_qubits, o4);

    EXPECT_LE(r4.circuit.two_qubit_count(), r3.circuit.two_qubit_count())
        << bench.name;
    EXPECT_TRUE(r4.validation.passed()) << bench.name;
  }
}

TEST(ResynthPipeline, RoutedO4StaysOnCouplingAndValidates) {
  const auto suite = uccsd_suite_small(10);
  ASSERT_FALSE(suite.empty());
  const auto& bench = suite.front();
  const Graph grid = topology_grid(2, (bench.num_qubits + 1) / 2);

  PhoenixOptions opt;
  opt.peephole = PeepholeLevel::O3;
  opt.hardware_aware = true;
  opt.coupling = &grid;
  opt.resynth = ResynthLevel::Routed;
  opt.validation.level = ValidationLevel::Paranoid;
  const CompileResult res =
      phoenix_compile(bench.terms, bench.num_qubits, opt);
  EXPECT_TRUE(res.validation.passed());
  for (const Gate& g : res.circuit.gates())
    if (g.is_two_qubit()) EXPECT_TRUE(grid.has_edge(g.q0, g.q1));
}

TEST(ResynthPipeline, CliffordAngleCoefficientsLowerToDiscreteGatesAndValidate) {
  // A term with an exactly-Clifford coefficient (π/4 → gate angle π/2 → S)
  // must survive translation validation via consume-first matching.
  std::vector<PauliTerm> terms;
  terms.emplace_back("ZZI", M_PI / 4);
  terms.emplace_back("IXX", 0.37);
  terms.emplace_back("ZIZ", -M_PI / 2);

  PhoenixOptions opt;
  opt.peephole = PeepholeLevel::None;  // keep the discrete gates visible
  opt.validation.level = ValidationLevel::Paranoid;
  const CompileResult res = phoenix_compile(terms, 3, opt);
  EXPECT_TRUE(res.validation.passed());
  bool discrete = false;
  for (const Gate& g : res.circuit.gates())
    if (g.kind == GateKind::S || g.kind == GateKind::Sdg ||
        g.kind == GateKind::Z)
      discrete = true;
  EXPECT_TRUE(discrete);
}

TEST(ResynthOptions, DefaultTierIsOff) {
  PhoenixOptions a, b;
  b.resynth = ResynthLevel::Logical;
  EXPECT_EQ(a.resynth, ResynthLevel::Off);
  EXPECT_NE(static_cast<int>(a.resynth), static_cast<int>(b.resynth));
}

TEST(CircuitMetrics, TwoQubitCountAndDepthSemantics) {
  Circuit c(3);
  c.append(Gate::h(0));
  c.append(Gate::cnot(0, 1));
  c.append(Gate::cz(1, 2));
  c.append(Gate::swap(0, 2));   // counts as ONE 2Q gate at this level
  c.append(Gate::rz(1, 0.3));
  EXPECT_EQ(c.two_qubit_count(), 3u);
  EXPECT_EQ(c.two_qubit_count(), c.count_2q());
  // cnot(0,1) → cz(1,2) → swap(0,2) chain share qubits: depth 3.
  EXPECT_EQ(c.two_qubit_depth(), 3u);
  EXPECT_EQ(c.two_qubit_depth(), c.depth_2q());

  Circuit parallel2q(4);
  parallel2q.append(Gate::cnot(0, 1));
  parallel2q.append(Gate::cnot(2, 3));
  EXPECT_EQ(parallel2q.two_qubit_count(), 2u);
  EXPECT_EQ(parallel2q.two_qubit_depth(), 1u);
}

}  // namespace
}  // namespace phoenix
