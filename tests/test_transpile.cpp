#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.hpp"
#include "circuit/synthesis.hpp"
#include "common/rng.hpp"
#include "sim/matrix.hpp"
#include "sim/statevector.hpp"
#include "transpile/peephole.hpp"
#include "transpile/rebase.hpp"

namespace phoenix {
namespace {

Circuit random_circuit(std::size_t n, std::size_t len, std::uint64_t seed) {
  Rng rng(seed);
  Circuit c(n);
  for (std::size_t i = 0; i < len; ++i) {
    switch (rng.next_below(7)) {
      case 0: c.append(Gate::h(rng.next_below(n))); break;
      case 1: c.append(Gate::s(rng.next_below(n))); break;
      case 2: c.append(Gate::rz(rng.next_below(n), rng.next_range(-2, 2))); break;
      case 3: c.append(Gate::rx(rng.next_below(n), rng.next_range(-2, 2))); break;
      case 4: c.append(Gate::x(rng.next_below(n))); break;
      default: {
        const std::size_t a = rng.next_below(n);
        std::size_t b = rng.next_below(n - 1);
        if (b >= a) ++b;
        c.append(rng.next_below(2) ? Gate::cnot(a, b) : Gate::cz(a, b));
      }
    }
  }
  return c;
}

TEST(Peephole, CancelsAdjacentInversePairs) {
  Circuit c(2);
  c.append(Gate::h(0));
  c.append(Gate::h(0));
  c.append(Gate::cnot(0, 1));
  c.append(Gate::cnot(0, 1));
  c.append(Gate::s(1));
  c.append(Gate::sdg(1));
  EXPECT_GT(cancel_gates(c), 0u);
  EXPECT_TRUE(c.empty());
}

TEST(Peephole, CancelsThroughCommutingGates) {
  // CNOT | Rz(control) | CNOT must cancel: Rz commutes with the control.
  Circuit c(2);
  c.append(Gate::cnot(0, 1));
  c.append(Gate::rz(0, 0.7));
  c.append(Gate::rx(1, 0.3));
  c.append(Gate::cnot(0, 1));
  cancel_gates(c);
  EXPECT_EQ(c.count(GateKind::Cnot), 0u);
  EXPECT_EQ(c.size(), 2u);
}

TEST(Peephole, DoesNotCancelThroughBlockingGates) {
  // An H on the control does not commute with CNOT.
  Circuit c(2);
  c.append(Gate::cnot(0, 1));
  c.append(Gate::h(0));
  c.append(Gate::cnot(0, 1));
  cancel_gates(c);
  EXPECT_EQ(c.count(GateKind::Cnot), 2u);
}

TEST(Peephole, MergesRotations) {
  Circuit c(1);
  c.append(Gate::rz(0, 0.3));
  c.append(Gate::rz(0, 0.4));
  cancel_gates(c);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_NEAR(c.gate(0).param, 0.7, 1e-12);
}

TEST(Peephole, MergedOppositeRotationsVanish) {
  Circuit c(1);
  c.append(Gate::rx(0, 0.25));
  c.append(Gate::rx(0, -0.25));
  cancel_gates(c);
  EXPECT_TRUE(c.empty());
}

TEST(Peephole, MergedFullTurnRotationIsDropped) {
  // Rz(π)·Rz(π) = Rz(2π) = −I (global phase only): the merge used to keep a
  // full-turn Rz(2π) gate in the circuit.
  Circuit c(1);
  c.append(Gate::rz(0, M_PI));
  c.append(Gate::rz(0, M_PI));
  cancel_gates(c);
  EXPECT_TRUE(c.empty());
}

TEST(Peephole, MergedAnglesAreCanonicalized) {
  // Merged angles land in (−π, π]; the unitary is unchanged up to global
  // phase (Rθ and Rθ∓2π differ by −1).
  Circuit c(1);
  c.append(Gate::rx(0, 2.0));
  c.append(Gate::rx(0, 2.0));
  const Matrix before = circuit_unitary(c);
  cancel_gates(c);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_NEAR(c.gate(0).param, 4.0 - 2.0 * M_PI, 1e-12);
  EXPECT_NEAR(infidelity(before, circuit_unitary(c)), 0.0, 1e-12);
}

TEST(Peephole, FusionDropsNearFullTurnRotation) {
  // Regression: a run fusing to Rz(2π − 1e-13) must vanish as an identity,
  // not survive as a full-turn rotation the 1e-12 zero test misses.
  Circuit c(1);
  c.append(Gate::rz(0, M_PI));
  c.append(Gate::rz(0, M_PI - 1e-13));
  fuse_single_qubit_runs(c);
  EXPECT_TRUE(c.empty());
}

TEST(Peephole, FusedAnglesLieInCanonicalRange) {
  for (std::uint64_t seed : {51u, 52u, 53u, 54u}) {
    Circuit c = random_circuit(3, 60, seed);
    const Matrix before = circuit_unitary(c);
    fuse_single_qubit_runs(c);
    for (const Gate& g : c.gates())
      if (gate_has_param(g.kind)) {
        EXPECT_GT(g.param, -M_PI) << seed << " " << g.to_string();
        EXPECT_LE(g.param, M_PI) << seed << " " << g.to_string();
        EXPECT_GT(std::abs(g.param), 1e-12) << seed << " " << g.to_string();
      }
    EXPECT_NEAR(infidelity(before, circuit_unitary(c)), 0.0, 1e-9) << seed;
  }
}

TEST(Peephole, CommutationRulesMatchUnitaries) {
  // gates_commute must never claim commutation that the matrices refute.
  const std::vector<Gate> pool = {
      Gate::h(0),       Gate::s(0),          Gate::rz(0, 0.4), Gate::rx(1, 0.3),
      Gate::x(1),       Gate::z(0),          Gate::cnot(0, 1), Gate::cnot(1, 0),
      Gate::cz(0, 1),   Gate::rz(1, -0.2),   Gate::t(1),       Gate::y(0),
  };
  for (const Gate& a : pool)
    for (const Gate& b : pool) {
      if (!gates_commute(a, b)) continue;
      Circuit ab(2), ba(2);
      ab.append(a);
      ab.append(b);
      ba.append(b);
      ba.append(a);
      EXPECT_TRUE(circuit_unitary(ab).approx_equal(circuit_unitary(ba), 1e-9))
          << a.to_string() << " vs " << b.to_string();
    }
}

TEST(Peephole, CancelPreservesUnitaryOnRandomCircuits) {
  // Up to global phase: merged rotations canonicalize their angle into
  // (−π, π], and Rθ vs Rθ∓2π differ by a factor of −1.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    Circuit c = random_circuit(3, 40, seed);
    const Matrix before = circuit_unitary(c);
    cancel_gates(c);
    EXPECT_NEAR(infidelity(before, circuit_unitary(c)), 0.0, 1e-9) << seed;
  }
}

TEST(Peephole, FusionPreservesUnitaryUpToPhase) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    Circuit c = random_circuit(3, 40, seed);
    StateVector a(3), b(3);
    a.apply_circuit(c);
    const Matrix before = circuit_unitary(c);
    fuse_single_qubit_runs(c);
    const Matrix after = circuit_unitary(c);
    // Global phase may differ after ZYZ resynthesis.
    EXPECT_NEAR(infidelity(before, after), 0.0, 1e-9) << seed;
  }
}

TEST(Peephole, FusionCompressesLongRuns) {
  Circuit c(1);
  for (int i = 0; i < 10; ++i) {
    c.append(Gate::h(0));
    c.append(Gate::t(0));
  }
  fuse_single_qubit_runs(c);
  EXPECT_LE(c.size(), 3u);
}

TEST(Peephole, O3PreservesUnitaryUpToPhase) {
  for (std::uint64_t seed : {21u, 22u}) {
    Circuit c = random_circuit(4, 60, seed);
    const Matrix before = circuit_unitary(c);
    optimize_o3(c);
    EXPECT_NEAR(infidelity(before, circuit_unitary(c)), 0.0, 1e-9) << seed;
  }
}

TEST(Peephole, O3ShrinksNaiveTrotterCircuits) {
  // Adjacent Pauli rotations with shared ladders must lose CNOTs.
  const std::vector<PauliTerm> terms = {
      {"ZZZ", 0.1}, {"ZZY", 0.2}, {"ZZX", 0.3}};
  Circuit c = synthesize_naive(terms, 3);
  const std::size_t before = c.count(GateKind::Cnot);
  optimize_o3(c);
  EXPECT_LT(c.count(GateKind::Cnot), before);
}

TEST(Rebase, SingleBlockCircuitBecomesOneSu4) {
  Circuit c(3);
  c.append(Gate::h(0));
  c.append(Gate::cnot(0, 1));
  c.append(Gate::rz(1, 0.3));
  c.append(Gate::cnot(0, 1));
  c.append(Gate::h(0));
  const Circuit r = rebase_su4(c);
  EXPECT_EQ(r.count(GateKind::Su4), 1u);
  EXPECT_EQ(r.count_2q(), 1u);
}

TEST(Rebase, SeparatePairsYieldSeparateBlocks) {
  Circuit c(4);
  c.append(Gate::cnot(0, 1));
  c.append(Gate::cnot(2, 3));
  c.append(Gate::cnot(0, 1));
  c.append(Gate::cnot(1, 2));  // breaks the (0,1) block
  c.append(Gate::cnot(0, 1));
  const Circuit r = rebase_su4(c);
  EXPECT_EQ(r.count(GateKind::Su4), 4u);
}

TEST(Rebase, ReversedPairStaysInOneBlock) {
  Circuit c(2);
  c.append(Gate::cnot(0, 1));
  c.append(Gate::cnot(1, 0));
  EXPECT_EQ(rebase_su4(c).count(GateKind::Su4), 1u);
}

TEST(Rebase, PreservesUnitary) {
  for (std::uint64_t seed : {31u, 32u, 33u}) {
    const Circuit c = random_circuit(4, 50, seed);
    const Circuit r = rebase_su4(c);
    EXPECT_TRUE(circuit_unitary(r).approx_equal(circuit_unitary(c), 1e-9))
        << seed;
    EXPECT_TRUE(
        circuit_unitary(r.flattened()).approx_equal(circuit_unitary(c), 1e-9));
  }
}

TEST(Rebase, DecomposeSwapsPreservesUnitary) {
  Circuit c(3);
  c.append(Gate::h(0));
  c.append(Gate::swap(0, 2));
  c.append(Gate::cnot(2, 1));
  const Circuit d = decompose_swaps(c);
  EXPECT_EQ(d.count(GateKind::Swap), 0u);
  EXPECT_EQ(d.count(GateKind::Cnot), 4u);
  EXPECT_TRUE(circuit_unitary(d).approx_equal(circuit_unitary(c), 1e-9));
}

TEST(Rebase, LooseOneQubitGatesSurvive) {
  Circuit c(3);
  c.append(Gate::h(2));
  c.append(Gate::cnot(0, 1));
  const Circuit r = rebase_su4(c);
  EXPECT_EQ(r.count(GateKind::H), 1u);
  EXPECT_EQ(r.count(GateKind::Su4), 1u);
}

}  // namespace
}  // namespace phoenix
