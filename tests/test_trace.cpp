#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/graph.hpp"
#include "common/rng.hpp"
#include "common/trace.hpp"
#include "hamlib/qaoa.hpp"
#include "hamlib/uccsd.hpp"
#include "mapping/topology.hpp"
#include "phoenix/compiler.hpp"

// --- global allocation counter ---------------------------------------------
//
// Counts every ::operator new in the test binary so the disabled-mode test can
// assert that trace probes allocate nothing. Sanitizer builds replace the
// global allocator themselves, so the counting hooks are compiled out there
// (the behavioural part of the test still runs).

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define PHOENIX_TEST_COUNT_ALLOCS 0
#endif
#if !defined(PHOENIX_TEST_COUNT_ALLOCS) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define PHOENIX_TEST_COUNT_ALLOCS 0
#endif
#endif
#ifndef PHOENIX_TEST_COUNT_ALLOCS
#define PHOENIX_TEST_COUNT_ALLOCS 1
#endif

#if PHOENIX_TEST_COUNT_ALLOCS
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
// The replacement new above allocates with malloc, so free() is the right
// counterpart; GCC cannot see through the replacement and warns.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop
#endif  // PHOENIX_TEST_COUNT_ALLOCS

namespace phoenix {
namespace {

// --- probes with no installed trace -----------------------------------------

TEST(Trace, DisabledProbesAreNoOpsAndAllocationFree) {
  ASSERT_EQ(Trace::current(), nullptr);
#if PHOENIX_TEST_COUNT_ALLOCS
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
#endif
  for (int i = 0; i < 1000; ++i) {
    TraceSpan span("noop.stage");
    trace_count("noop.counter", 7);
    trace_observe_ms("noop.hist", 0.5);
  }
#if PHOENIX_TEST_COUNT_ALLOCS
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), before)
      << "disabled trace probes must not allocate";
#endif
}

// --- span collection ---------------------------------------------------------

#ifndef PHOENIX_DISABLE_TRACE

TEST(Trace, SpanNestingDepthsAndOrdering) {
  Trace trace;
  {
    Trace::Scope scope(&trace);
    ASSERT_EQ(Trace::current(), &trace);
    TraceSpan outer("outer");
    { TraceSpan inner("inner"); }
    {
      TraceSpan mid("mid");
      TraceSpan leaf("leaf");
    }
  }
  EXPECT_EQ(Trace::current(), nullptr);  // Scope restored

  const CompileStats s = trace.snapshot();
  ASSERT_EQ(s.spans.size(), 4u);  // completion order: inner, leaf, mid, outer
  EXPECT_EQ(s.spans[0].name, "inner");
  EXPECT_EQ(s.spans[0].depth, 1u);
  EXPECT_EQ(s.spans[1].name, "leaf");
  EXPECT_EQ(s.spans[1].depth, 2u);
  EXPECT_EQ(s.spans[2].name, "mid");
  EXPECT_EQ(s.spans[2].depth, 1u);
  EXPECT_EQ(s.spans[3].name, "outer");
  EXPECT_EQ(s.spans[3].depth, 0u);

  const StageStats* outer = s.span("outer");
  ASSERT_NE(outer, nullptr);
  for (const auto& sp : s.spans) {
    EXPECT_LE(outer->start_ms, sp.start_ms);
    EXPECT_GE(outer->millis + 1e-9, sp.millis);
    EXPECT_EQ(sp.thread, 0u);  // all on one thread -> one track
  }
  // span() only matches top-level spans.
  EXPECT_EQ(s.span("inner"), nullptr);
}

TEST(Trace, CountersAndHistogramsAggregate) {
  Trace trace;
  {
    Trace::Scope scope(&trace);
    trace_count("b.counter", 2);
    trace_count("a.counter", 1);
    trace_count("b.counter", 3);
    trace_count("zero", 0);  // delta 0 never materializes a counter
    trace_observe_ms("lat", 0.005);
    trace_observe_ms("lat", 0.5);
    trace_observe_ms("lat", 50.0);
    trace_observe_ms("lat", 5000.0);
  }
  const CompileStats s = trace.snapshot();
  ASSERT_EQ(s.counters.size(), 2u);  // sorted by name
  EXPECT_EQ(s.counters[0].name, "a.counter");
  EXPECT_EQ(s.counters[1].name, "b.counter");
  EXPECT_EQ(s.counter("a.counter"), 1u);
  EXPECT_EQ(s.counter("b.counter"), 5u);
  EXPECT_EQ(s.counter("zero"), 0u);
  EXPECT_EQ(s.counter("never"), 0u);

  ASSERT_EQ(s.histograms.size(), 1u);
  const HistogramStats& h = s.histograms[0];
  EXPECT_EQ(h.name, "lat");
  EXPECT_EQ(h.count, 4u);
  EXPECT_DOUBLE_EQ(h.min, 0.005);
  EXPECT_DOUBLE_EQ(h.max, 5000.0);
  EXPECT_NEAR(h.sum, 5050.505, 1e-9);
  EXPECT_EQ(h.buckets[0], 1u);                         // <= 0.01
  EXPECT_EQ(h.buckets[2], 1u);                         // <= 1.0
  EXPECT_EQ(h.buckets[4], 1u);                         // <= 100
  EXPECT_EQ(h.buckets[HistogramStats::kBucketBounds.size()], 1u);  // overflow
}

TEST(Trace, ConcurrentProbesKeepPerThreadTracksAndExactSums) {
  Trace trace;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  {
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
      workers.emplace_back([&trace] {
        Trace::Scope scope(&trace);
        for (int i = 0; i < kPerThread; ++i) {
          TraceSpan span("worker.task");
          trace_count("worker.items", 1);
          trace_observe_ms("worker.ms", 0.1);
        }
      });
    for (auto& w : workers) w.join();
  }
  const CompileStats s = trace.snapshot();
  EXPECT_EQ(s.counter("worker.items"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(s.spans.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  // Track ids are dense per trace: every id in [0, #distinct).
  std::vector<bool> seen(kThreads, false);
  std::size_t max_track = 0;
  for (const auto& sp : s.spans) {
    ASSERT_LT(sp.thread, static_cast<std::size_t>(kThreads));
    seen[sp.thread] = true;
    max_track = std::max(max_track, sp.thread);
  }
  for (std::size_t t = 0; t <= max_track; ++t)
    EXPECT_TRUE(seen[t]) << "track ids must be dense, missing " << t;
  ASSERT_EQ(s.histograms.size(), 1u);
  EXPECT_EQ(s.histograms[0].count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

#endif  // !PHOENIX_DISABLE_TRACE

// --- compile integration -----------------------------------------------------

std::vector<PauliTerm> fixture_terms(std::size_t* num_qubits) {
  const auto bench =
      generate_uccsd(Molecule::lih(), true, FermionEncoding::BravyiKitaev);
  *num_qubits = bench.num_qubits;
  return bench.terms;
}

void expect_identical(const Circuit& a, const Circuit& b) {
  ASSERT_EQ(a.num_qubits(), b.num_qubits());
  ASSERT_EQ(a.gates().size(), b.gates().size());
  for (std::size_t i = 0; i < a.gates().size(); ++i) {
    const Gate& x = a.gates()[i];
    const Gate& y = b.gates()[i];
    EXPECT_EQ(x.kind, y.kind) << "gate " << i;
    EXPECT_EQ(x.q0, y.q0) << "gate " << i;
    EXPECT_EQ(x.q1, y.q1) << "gate " << i;
    // Bit-identical, not approximately equal: tracing must not perturb
    // any numeric path.
    EXPECT_EQ(x.param, y.param) << "gate " << i;
  }
}

TEST(TraceCompile, TracingDoesNotChangeTheCircuit) {
  std::size_t n = 0;
  const auto terms = fixture_terms(&n);
  PhoenixOptions plain;
  PhoenixOptions traced;
  traced.trace = true;
  const auto r_plain = phoenix_compile(terms, n, plain);
  const auto r_traced = phoenix_compile(terms, n, traced);
  expect_identical(r_plain.circuit, r_traced.circuit);
  EXPECT_FALSE(r_plain.stats.enabled);
  EXPECT_TRUE(r_plain.stats.spans.empty());
#ifndef PHOENIX_DISABLE_TRACE
  EXPECT_TRUE(r_traced.stats.enabled);
#endif
}

TEST(TraceCompile, StatsCoverPipelineStages) {
  std::size_t n = 0;
  const auto terms = fixture_terms(&n);
  PhoenixOptions opt;
  opt.trace = true;
  const auto res = phoenix_compile(terms, n, opt);
  const CompileStats& s = res.stats;
  if (!s.enabled) GTEST_SKIP() << "trace compiled out";

  for (const char* stage : {"group", "simplify", "order", "peephole"}) {
    const StageStats* sp = s.span(stage);
    EXPECT_NE(sp, nullptr) << "missing stage span " << stage;
    if (sp != nullptr) {
      EXPECT_GE(sp->millis, 0.0);
    }
  }
  EXPECT_EQ(s.counter("simplify.groups"), res.num_groups);
  EXPECT_EQ(s.counter("simplify.epochs"), res.bsf_epochs);
  EXPECT_GT(s.counter("simplify.candidates"), 0u);
  EXPECT_GT(s.counter("order.cost_evals"), 0u);
  EXPECT_GT(s.counter("peephole.removed"), 0u);

  bool found_hist = false;
  for (const auto& h : s.histograms) {
    if (h.name != "simplify.group_ms") continue;
    found_hist = true;
    EXPECT_EQ(h.count, res.num_groups);
  }
  EXPECT_TRUE(found_hist);
}

TEST(TraceCompile, CountersDeterministicAcrossThreadCounts) {
  std::size_t n = 0;
  const auto terms = fixture_terms(&n);
  std::vector<CompileResult> results;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    PhoenixOptions opt;
    opt.trace = true;
    opt.num_threads = threads;
    results.push_back(phoenix_compile(terms, n, opt));
  }
  const auto& base = results.front().stats;
  if (base.enabled) {
    ASSERT_FALSE(base.counters.empty());
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    const auto& other = results[i].stats;
    expect_identical(results.front().circuit, results[i].circuit);
    if (!base.enabled) continue;  // trace compiled out: circuits still match
    ASSERT_EQ(base.counters.size(), other.counters.size());
    for (std::size_t c = 0; c < base.counters.size(); ++c) {
      EXPECT_EQ(base.counters[c].name, other.counters[c].name);
      EXPECT_EQ(base.counters[c].value, other.counters[c].value)
          << base.counters[c].name << " differs at num_threads="
          << (i == 1 ? 2 : 4);
    }
  }
}

TEST(TraceCompile, HardwareAwarePathRecordsRoutingStats) {
  Rng rng(11);
  const Graph g = random_regular_graph(8, 3, rng);
  const auto terms = qaoa_cost_terms(g, 0.3);
  const Graph device = topology_heavy_hex(3, 9);
  PhoenixOptions opt;
  opt.hardware_aware = true;
  opt.coupling = &device;
  opt.trace = true;
  const auto res = phoenix_compile(terms, 8, opt);
  if (!res.stats.enabled) GTEST_SKIP() << "trace compiled out";
  // The commuting-2-local fast path routes QAOA; its swap counter must agree
  // with the result.
  EXPECT_NE(res.stats.span("route(qaoa)"), nullptr);
  EXPECT_EQ(res.stats.counter("qaoa.swaps"), res.num_swaps);
  EXPECT_GT(res.stats.counter("qaoa.portfolio_runs"), 0u);
}

// --- exporters ---------------------------------------------------------------

CompileStats sample_stats() {
  CompileStats s;
  s.enabled = true;
  s.spans.push_back({"simplify", 0.125, 10.5, 0, 0});
  s.spans.push_back({"simplify.group \"odd\\name\"", 0.25, 1.75, 1, 1});
  s.spans.push_back({"order", 11.0, 2.0, 0, 0});
  s.counters.push_back({"simplify.candidates", 123456789});
  s.counters.push_back({"peephole.removed", 42});
  HistogramStats h;
  h.name = "simplify.group_ms";
  h.observe(0.5);
  h.observe(75.0);
  s.histograms.push_back(h);
  return s;
}

TEST(TraceExportTest, TableListsStagesCountersHistograms) {
  const std::string t = TraceExport::table(sample_stats());
  EXPECT_NE(t.find("simplify"), std::string::npos);
  EXPECT_NE(t.find("order"), std::string::npos);
  EXPECT_NE(t.find("simplify.candidates"), std::string::npos);
  EXPECT_NE(t.find("123456789"), std::string::npos);
  EXPECT_NE(t.find("simplify.group_ms"), std::string::npos);
}

TEST(TraceExportTest, ChromeJsonRoundTripsSpansAndCounters) {
  const CompileStats s = sample_stats();
  const std::string json = TraceExport::chrome_json(s);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);

  const CompileStats back = TraceExport::parse_chrome_json(json);
  EXPECT_TRUE(back.enabled);
  ASSERT_EQ(back.spans.size(), s.spans.size());
  for (std::size_t i = 0; i < s.spans.size(); ++i) {
    EXPECT_EQ(back.spans[i].name, s.spans[i].name);
    EXPECT_NEAR(back.spans[i].start_ms, s.spans[i].start_ms, 1e-9);
    EXPECT_NEAR(back.spans[i].millis, s.spans[i].millis, 1e-9);
    EXPECT_EQ(back.spans[i].thread, s.spans[i].thread);
    EXPECT_EQ(back.spans[i].depth, s.spans[i].depth);
  }
  ASSERT_EQ(back.counters.size(), s.counters.size());
  for (std::size_t i = 0; i < s.counters.size(); ++i) {
    EXPECT_EQ(back.counters[i].name, s.counters[i].name);
    EXPECT_EQ(back.counters[i].value, s.counters[i].value);
  }
  // Re-export of the parsed stats is byte-stable.
  EXPECT_EQ(TraceExport::chrome_json(back), json);
}

TEST(TraceExportTest, ChromeJsonFromRealCompileParses) {
  std::size_t n = 0;
  const auto terms = fixture_terms(&n);
  PhoenixOptions opt;
  opt.trace = true;
  const auto res = phoenix_compile(terms, n, opt);
  if (!res.stats.enabled) GTEST_SKIP() << "trace compiled out";
  const std::string json = TraceExport::chrome_json(res.stats);
  const CompileStats back = TraceExport::parse_chrome_json(json);
  EXPECT_EQ(back.spans.size(), res.stats.spans.size());
  EXPECT_EQ(back.counters.size(), res.stats.counters.size());
  EXPECT_EQ(back.counter("simplify.groups"), res.num_groups);
}

TEST(TraceExportTest, ParseRejectsMalformedJson) {
  EXPECT_THROW(TraceExport::parse_chrome_json(""), Error);
  EXPECT_THROW(TraceExport::parse_chrome_json("{"), Error);
  EXPECT_THROW(TraceExport::parse_chrome_json("[]"), Error);
  EXPECT_THROW(TraceExport::parse_chrome_json("{\"traceEvents\": 7}"), Error);
  EXPECT_THROW(TraceExport::parse_chrome_json(
                   "{\"traceEvents\":[{\"ph\":\"X\",\"name\":3}]}"),
               Error);
  try {
    TraceExport::parse_chrome_json("nope");
    FAIL() << "expected phoenix::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.stage(), Stage::Parse);
  }
}

}  // namespace
}  // namespace phoenix
