#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "circuit/qasm.hpp"
#include "circuit/synthesis.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "hamlib/io.hpp"
#include "hamlib/qaoa.hpp"
#include "mapping/topology.hpp"
#include "phoenix/compiler.hpp"
#include "verify/verify.hpp"

namespace phoenix {
namespace {

// ---------------------------------------------------------------------------
// Hand-built translation-validation cases
// ---------------------------------------------------------------------------

TEST(Verify, AcceptsCanonicalZZRotation) {
  const std::vector<PauliTerm> terms{PauliTerm("ZZ", 0.3)};
  Circuit c(2);
  c.append(Gate::cnot(0, 1));
  c.append(Gate::rz(1, 0.6));
  c.append(Gate::cnot(0, 1));
  ValidationOptions opt;
  opt.level = ValidationLevel::Paranoid;
  const ValidationReport rep = validate_translation(c, terms, 2, {}, opt);
  EXPECT_TRUE(rep.passed());
  EXPECT_TRUE(rep.frame_ok);
  ASSERT_TRUE(rep.exact_checked);
  EXPECT_LT(rep.exact_infidelity, 1e-12);
  ASSERT_EQ(rep.realized_order.size(), 1u);
  EXPECT_EQ(rep.realized_order[0].string.to_string(), "ZZ");
}

TEST(Verify, RejectsWrongRotationAngle) {
  const std::vector<PauliTerm> terms{PauliTerm("ZZ", 0.3)};
  Circuit c(2);
  c.append(Gate::cnot(0, 1));
  c.append(Gate::rz(1, 0.5));  // should be 0.6
  c.append(Gate::cnot(0, 1));
  const ValidationReport rep = validate_translation(c, terms, 2);
  EXPECT_EQ(rep.status, ValidationStatus::Fail);
}

TEST(Verify, RejectsLeftoverClifford) {
  const std::vector<PauliTerm> terms{PauliTerm("ZZ", 0.3)};
  Circuit c(2);
  c.append(Gate::cnot(0, 1));
  c.append(Gate::rz(1, 0.6));
  c.append(Gate::cnot(0, 1));
  c.append(Gate::h(0));  // stray residual Clifford
  const ValidationReport rep = validate_translation(c, terms, 2);
  EXPECT_EQ(rep.status, ValidationStatus::Fail);
}

TEST(Verify, AcceptsBasisChangedAndFusedRuns) {
  // exp(-i 0.4 X): the emitted H·Rz(0.8)·H is one fused 1Q run whose
  // rotation content must be matched through the hypothesis search.
  const std::vector<PauliTerm> terms{PauliTerm("X", 0.4)};
  Circuit c(1);
  c.append(Gate::h(0));
  c.append(Gate::rz(0, 0.8));
  c.append(Gate::h(0));
  ValidationOptions opt;
  opt.level = ValidationLevel::Paranoid;
  const ValidationReport rep = validate_translation(c, terms, 1, {}, opt);
  EXPECT_TRUE(rep.passed());
  EXPECT_LT(rep.exact_infidelity, 1e-12);
}

TEST(Verify, AcceptsReorderedNonCommutingRealization) {
  // Source order [Z, X]; the circuit realizes X first. A Trotter step is an
  // arrangement-free set, so this is a valid realized order.
  const std::vector<PauliTerm> terms{PauliTerm("Z", 0.3), PauliTerm("X", 0.5)};
  Circuit c(1);
  c.append(Gate::h(0));
  c.append(Gate::rz(0, 1.0));
  c.append(Gate::h(0));
  c.append(Gate::rz(0, 0.6));
  ValidationOptions opt;
  opt.level = ValidationLevel::Paranoid;
  const ValidationReport rep = validate_translation(c, terms, 1, {}, opt);
  EXPECT_TRUE(rep.passed());
  ASSERT_EQ(rep.realized_order.size(), 2u);
  EXPECT_EQ(rep.realized_order[0].string.to_string(), "X");
  EXPECT_EQ(rep.realized_order[1].string.to_string(), "Z");
  EXPECT_LT(rep.exact_infidelity, 1e-12);
}

TEST(Verify, AcceptsRoutedCircuitWithLayoutPermutation) {
  // ZZ rotation followed by a SWAP: legal iff the layouts say the logical
  // qubits moved.
  const std::vector<PauliTerm> terms{PauliTerm("ZZ", 0.3)};
  Circuit c(2);
  c.append(Gate::cnot(0, 1));
  c.append(Gate::rz(1, 0.6));
  c.append(Gate::cnot(0, 1));
  c.append(Gate::swap(0, 1));
  LayoutSpec layout;
  layout.initial = {0, 1};
  layout.final = {1, 0};
  ValidationOptions opt;
  opt.level = ValidationLevel::Paranoid;
  const ValidationReport rep = validate_translation(c, terms, 2, layout, opt);
  EXPECT_TRUE(rep.passed());
  EXPECT_LT(rep.exact_infidelity, 1e-12);

  // The same circuit without the layout must be rejected.
  const ValidationReport bare = validate_translation(c, terms, 2);
  EXPECT_EQ(bare.status, ValidationStatus::Fail);
}

TEST(Verify, RejectsDroppedTerm) {
  const std::vector<PauliTerm> terms{PauliTerm("ZZ", 0.3), PauliTerm("XI", 0.4)};
  Circuit c(2);
  c.append(Gate::cnot(0, 1));
  c.append(Gate::rz(1, 0.6));
  c.append(Gate::cnot(0, 1));  // XI rotation missing
  const ValidationReport rep = validate_translation(c, terms, 2);
  EXPECT_EQ(rep.status, ValidationStatus::Fail);
}

// ---------------------------------------------------------------------------
// Invariant-check helpers
// ---------------------------------------------------------------------------

TEST(Verify, WellformednessChecksCouplingEdges) {
  Circuit c(3);
  c.append(Gate::cnot(0, 2));
  const Graph line = topology_line(3);  // edges 0-1, 1-2 only
  EXPECT_NO_THROW(check_circuit_wellformed(c));
  try {
    check_circuit_wellformed(c, &line);
    FAIL() << "expected phoenix::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.stage(), Stage::Validation);
  }
}

TEST(Verify, SwapAccounting) {
  Circuit c(3);
  c.append(Gate::swap(0, 1));
  c.append(Gate::swap(1, 2));
  EXPECT_NO_THROW(check_swap_accounting(c, 2));
  EXPECT_THROW(check_swap_accounting(c, 1), Error);
}

TEST(Verify, SimplifiedGroupRoundTrip) {
  const std::vector<PauliTerm> terms{
      PauliTerm("XXYZ", 0.3), PauliTerm("YYZX", -0.2), PauliTerm("ZZXX", 0.15)};
  const SimplifiedGroup sg = simplify_bsf(terms);
  EXPECT_NO_THROW(check_simplified_group(terms, sg));

  // A corrupted record (dropped Clifford epoch) must be detected.
  if (!sg.cliffords.empty()) {
    SimplifiedGroup bad = sg;
    bad.cliffords.pop_back();
    EXPECT_THROW(check_simplified_group(terms, bad), Error);
  }
  // A wrong source multiset must be detected too.
  std::vector<PauliTerm> wrong = terms;
  wrong[0].coeff = -wrong[0].coeff;
  EXPECT_THROW(check_simplified_group(wrong, sg), Error);
}

// ---------------------------------------------------------------------------
// Property test: Paranoid compilation of seeded random Hamiltonians
// ---------------------------------------------------------------------------

std::vector<PauliTerm> random_hamiltonian(Rng& rng, std::size_t n) {
  const std::size_t num_terms = 4 + rng.next_below(6);
  std::vector<PauliTerm> terms;
  for (std::size_t t = 0; t < num_terms; ++t) {
    PauliString s(n);
    const std::size_t weight = 1 + rng.next_below(3);
    for (std::size_t w = 0; w < weight; ++w) {
      const std::size_t q = rng.next_below(n);
      const Pauli p = static_cast<Pauli>(1 + rng.next_below(3));
      s.set_op(q, p);  // repeats just lower the weight
    }
    if (s.is_identity()) s.set_op(0, Pauli::Z);
    // Keep coefficients away from multiples of pi/4 so no rotation or
    // residual angle is accidentally Clifford-coincident.
    double coeff = 0.0;
    do {
      coeff = -1.5 + 3.0 * rng.next_double();
    } while (std::abs(std::remainder(coeff, M_PI / 4)) < 0.05);
    terms.emplace_back(s, coeff);
  }
  return terms;
}

TEST(Verify, ParanoidCompilationOfRandomHamiltonians) {
  Rng rng(2025);
  for (int i = 0; i < 50; ++i) {
    const std::size_t n = 4 + static_cast<std::size_t>(i % 5);
    const auto terms = random_hamiltonian(rng, n);
    PhoenixOptions opt;
    opt.validation.level = ValidationLevel::Paranoid;
    opt.isa = (i % 2 == 0) ? TwoQubitIsa::Cnot : TwoQubitIsa::Su4;
    for (bool hw : {false, true}) {
      opt.hardware_aware = hw;
      const Graph device = topology_line(n);
      opt.coupling = hw ? &device : nullptr;
      CompileResult res;
      ASSERT_NO_THROW(res = phoenix_compile(terms, n, opt))
          << "seed case " << i << " hw=" << hw;
      EXPECT_TRUE(res.validation.passed()) << res.validation.message;
      ASSERT_TRUE(res.validation.exact_checked);
      EXPECT_LT(res.validation.exact_infidelity, 1e-9)
          << "seed case " << i << " hw=" << hw;
      EXPECT_FALSE(res.diagnostics.empty());
      EXPECT_EQ(res.diagnostics.back().name, "validate");
      if (hw) {
        EXPECT_EQ(res.initial_layout.size(), n);
        EXPECT_EQ(res.final_layout.size(), n);
      }
    }
  }
}

TEST(Verify, ParanoidQaoaRouterPathValidates) {
  Rng rng(7);
  const Graph interactions = random_regular_graph(8, 3, rng);
  const auto terms = qaoa_cost_terms(interactions);
  PhoenixOptions opt;
  opt.hardware_aware = true;
  const Graph device = topology_grid(2, 4);
  opt.coupling = &device;
  opt.validation.level = ValidationLevel::Paranoid;
  const CompileResult res = phoenix_compile(terms, 8, opt);
  EXPECT_TRUE(res.validation.passed()) << res.validation.message;
  ASSERT_TRUE(res.validation.exact_checked);
  EXPECT_LT(res.validation.exact_infidelity, 1e-9);
}

TEST(Verify, CheapLevelSkipsExactWhenFrameSucceeds) {
  Rng rng(11);
  const auto terms = random_hamiltonian(rng, 5);
  PhoenixOptions opt;
  opt.validation.level = ValidationLevel::Cheap;
  const CompileResult res = phoenix_compile(terms, 5, opt);
  EXPECT_TRUE(res.validation.passed());
  EXPECT_TRUE(res.validation.frame_ok);
  EXPECT_FALSE(res.validation.exact_checked);
}

TEST(Verify, RejectsCorruptedCircuits) {
  Rng rng(42);
  const std::size_t n = 5;
  const auto terms = random_hamiltonian(rng, n);
  PhoenixOptions opt;  // CNOT ISA so top-level gates are primitive
  const CompileResult res = phoenix_compile(terms, n, opt);
  const Circuit& good = res.circuit;
  ValidationOptions vopt;
  vopt.level = ValidationLevel::Paranoid;
  ASSERT_TRUE(validate_translation(good, terms, n, {}, vopt).passed());

  // (a) Tweak the first generic rotation angle.
  {
    Circuit bad(n);
    bool done = false;
    for (const Gate& g : good.gates()) {
      Gate h = g;
      if (!done && (g.kind == GateKind::Rz || g.kind == GateKind::Rx ||
                    g.kind == GateKind::Ry) &&
          std::abs(std::remainder(g.param, M_PI / 2)) > 0.2) {
        h.param += 0.3;
        done = true;
      }
      bad.append(h);
    }
    ASSERT_TRUE(done);
    EXPECT_FALSE(validate_translation(bad, terms, n, {}, vopt).passed());
  }
  // (b) Reverse the operands of the first CNOT.
  {
    Circuit bad(n);
    bool done = false;
    for (const Gate& g : good.gates()) {
      if (!done && g.kind == GateKind::Cnot) {
        bad.append(Gate::cnot(g.q1, g.q0));
        done = true;
      } else {
        bad.append(g);
      }
    }
    ASSERT_TRUE(done);
    EXPECT_FALSE(validate_translation(bad, terms, n, {}, vopt).passed());
  }
  // (c) Drop the last 2Q gate.
  {
    Circuit bad(n);
    std::size_t last_2q = good.size();
    for (std::size_t i = good.size(); i-- > 0;)
      if (good.gate(i).is_two_qubit()) {
        last_2q = i;
        break;
      }
    ASSERT_LT(last_2q, good.size());
    for (std::size_t i = 0; i < good.size(); ++i)
      if (i != last_2q) bad.append(good.gate(i));
    EXPECT_FALSE(validate_translation(bad, terms, n, {}, vopt).passed());
  }
}

// ---------------------------------------------------------------------------
// Malformed-input corpus: every entry must yield phoenix::Error with stage
// and location context — never a crash or a bare std:: exception.
// ---------------------------------------------------------------------------

template <typename Fn>
Error expect_error(Fn&& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e;
  } catch (const std::exception& e) {
    ADD_FAILURE() << "expected phoenix::Error, got: " << e.what();
    return Error(Stage::Parse, "wrong exception type");
  }
  ADD_FAILURE() << "expected phoenix::Error, got no exception";
  return Error(Stage::Parse, "no exception");
}

TEST(Verify, MalformedHamiltonianCorpus) {
  const struct {
    const char* text;
    std::size_t line;
  } corpus[] = {
      {"XX\n", 1},                     // missing coefficient
      {"XX 0.5 junk\n", 1},            // trailing tokens
      {"XX 0.5\nXXX 0.1\n", 2},        // inconsistent register
      {"XQ 0.5\n", 1},                 // bad Pauli label
      {"XX 0.5\nZZ inf\n", 2},         // non-finite coefficient
      {"ZZ nan\n", 1},                 // non-finite coefficient
      {"ZZ 1e999\n", 1},               // overflow to inf
  };
  for (const auto& c : corpus) {
    const Error e = expect_error([&] { hamiltonian_from_text(c.text); });
    EXPECT_EQ(e.stage(), Stage::Parse) << c.text;
    ASSERT_TRUE(e.has_line()) << c.text;
    EXPECT_EQ(e.line(), c.line) << c.text;
  }
}

TEST(Verify, MalformedQasmCorpus) {
  const struct {
    const char* text;
    std::size_t line;
  } corpus[] = {
      {"qreg q[2];\ncx q[0];\n", 2},             // wrong operand count
      {"qreg q[2];\nh q[5];\n", 2},              // index outside register
      {"qreg q[2];\nh q[x];\n", 2},              // non-numeric index
      {"qreg q[99999999999999999999];\n", 1},    // register size overflow
      {"qreg q[2];\nrz(foo) q[0];\n", 2},        // bad angle expression
      {"qreg q[2];\nh q[0]\n", 2},               // missing semicolon
      {"cx q[0],q[1];\n", 1},                    // gate before qreg
      {"qreg q[2];\nfoo q[0];\n", 2},            // unknown gate
      {"qreg q[2];\ncx q[1],q[1];\n", 2},        // duplicate operands
      {"qreg q[2];\nrz(0.3 q[0];\n", 2},         // unbalanced '('
  };
  for (const auto& c : corpus) {
    const Error e = expect_error([&] { circuit_from_qasm(c.text); });
    EXPECT_EQ(e.stage(), Stage::Parse) << c.text;
    ASSERT_TRUE(e.has_line()) << c.text;
    EXPECT_EQ(e.line(), c.line) << c.text;
  }
}

TEST(Verify, ErrorCarriesGroupContext) {
  // Force an epoch-limit failure inside one group and check the compiler
  // attaches the group index.
  const std::vector<PauliTerm> terms{PauliTerm("XXYZ", 0.3),
                                     PauliTerm("ZZXY", 0.2),
                                     PauliTerm("YXZZ", -0.4)};
  PhoenixOptions opt;
  opt.simplify.max_epochs = 0;
  try {
    phoenix_compile(terms, 4, opt);
    FAIL() << "expected phoenix::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.stage(), Stage::Simplify);
    EXPECT_TRUE(e.has_group());
    EXPECT_EQ(std::string(e.what()).find("phoenix error"), 0u);
  }
}

}  // namespace
}  // namespace phoenix
