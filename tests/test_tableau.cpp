#include "pauli/tableau.hpp"

#include <gtest/gtest.h>

#include "baselines/diagonalize.hpp"
#include "circuit/synthesis.hpp"
#include "common/rng.hpp"
#include "hamlib/uccsd.hpp"
#include "pauli/bsf.hpp"
#include "phoenix/simplify.hpp"

namespace phoenix {
namespace {

TEST(CliffordTableau, IdentityFixesEverything) {
  CliffordTableau t(3);
  EXPECT_TRUE(t.is_identity());
  const PauliString p = PauliString::from_label("XYZ");
  const PauliTerm img = t.image(p);
  EXPECT_EQ(img.string, p);
  EXPECT_DOUBLE_EQ(img.coeff, 1.0);
}

TEST(CliffordTableau, HadamardSwapsXZ) {
  CliffordTableau t(1);
  t.apply_h(0);
  EXPECT_EQ(t.image_of_x(0).string.to_string(), "Z");
  EXPECT_EQ(t.image_of_z(0).string.to_string(), "X");
  // Y -> -Y under H.
  const PauliTerm y = t.image(PauliString::from_label("Y"));
  EXPECT_EQ(y.string.to_string(), "Y");
  EXPECT_DOUBLE_EQ(y.coeff, -1.0);
}

TEST(CliffordTableau, PauliGatesOnlyFlipSigns) {
  CliffordTableau t(1);
  t.apply_x(0);
  EXPECT_DOUBLE_EQ(t.image(PauliString::from_label("Z")).coeff, -1.0);
  EXPECT_DOUBLE_EQ(t.image(PauliString::from_label("X")).coeff, 1.0);
  t = CliffordTableau(1);
  t.apply_gate(Gate::y(0));
  EXPECT_DOUBLE_EQ(t.image(PauliString::from_label("X")).coeff, -1.0);
  EXPECT_DOUBLE_EQ(t.image(PauliString::from_label("Z")).coeff, -1.0);
  EXPECT_DOUBLE_EQ(t.image(PauliString::from_label("Y")).coeff, 1.0);
}

TEST(CliffordTableau, MatchesBsfOnRandomCliffordCircuits) {
  // The tableau's image() must agree with the Bsf row conjugation for the
  // same circuit, for arbitrary strings.
  Rng rng(31);
  const std::size_t n = 4;
  for (int trial = 0; trial < 10; ++trial) {
    Circuit c(n);
    for (int i = 0; i < 20; ++i) {
      switch (rng.next_below(5)) {
        case 0: c.append(Gate::h(rng.next_below(n))); break;
        case 1: c.append(Gate::s(rng.next_below(n))); break;
        case 2: c.append(Gate::sdg(rng.next_below(n))); break;
        default: {
          const std::size_t a = rng.next_below(n);
          std::size_t b = rng.next_below(n - 1);
          if (b >= a) ++b;
          c.append(Gate::cnot(a, b));
        }
      }
    }
    const CliffordTableau t = CliffordTableau::from_circuit(c);

    PauliString p(n);
    for (std::size_t q = 0; q < n; ++q)
      p.set_op(q, static_cast<Pauli>(rng.next_below(4)));
    if (p.is_identity()) continue;

    Bsf bsf(n);
    bsf.add_term(PauliTerm(p, 1.0));
    for (const auto& g : c.gates()) {
      switch (g.kind) {
        case GateKind::H: bsf.apply_h(g.q0); break;
        case GateKind::S: bsf.apply_s(g.q0); break;
        case GateKind::Sdg: bsf.apply_sdg(g.q0); break;
        case GateKind::Cnot: bsf.apply_cnot(g.q0, g.q1); break;
        default: FAIL();
      }
    }
    const PauliTerm want = bsf.term(0);
    const PauliTerm got = t.image(p);
    EXPECT_EQ(got.string, want.string) << trial;
    EXPECT_DOUBLE_EQ(got.coeff, want.coeff) << trial;
  }
}

TEST(CliffordTableau, CliffordRotationAnglesAccepted) {
  CliffordTableau t(1);
  t.apply_gate(Gate::rz(0, M_PI / 2));  // == S up to phase
  CliffordTableau s(1);
  s.apply_s(0);
  EXPECT_EQ(t, s);
  EXPECT_THROW(t.apply_gate(Gate::rz(0, 0.3)), std::invalid_argument);
  EXPECT_THROW(t.apply_gate(Gate::t(0)), std::invalid_argument);
}

TEST(CliffordTableau, CircuitInverseComposesToIdentity) {
  Circuit c(3);
  c.append(Gate::h(0));
  c.append(Gate::s(1));
  c.append(Gate::cnot(0, 2));
  c.append(Gate::cz(1, 2));
  c.append(Gate::swap(0, 1));
  Circuit whole = c;
  whole.append(c.inverse());
  EXPECT_TRUE(CliffordTableau::from_circuit(whole).is_identity());
}

TEST(CliffordTableau, DiagonalizationCliffordActsAsAdvertised) {
  // Structural check of the TKET-style diagonalization: the recorded
  // Clifford circuit maps every input string to its diagonal term.
  const auto bench =
      generate_uccsd(Molecule::lih(), true, FermionEncoding::BravyiKitaev);
  const auto sets = partition_commuting(bench.terms);
  const auto& set = sets.front();
  const auto diag = diagonalize_commuting_set(set, bench.num_qubits);
  const CliffordTableau t = CliffordTableau::from_circuit(diag.clifford);
  ASSERT_EQ(diag.diagonal_terms.size(), set.size());
  for (std::size_t i = 0; i < set.size(); ++i) {
    const PauliTerm img = t.image(set[i].string);
    EXPECT_EQ(img.string, diag.diagonal_terms[i].string) << i;
    EXPECT_DOUBLE_EQ(img.coeff * set[i].coeff, diag.diagonal_terms[i].coeff)
        << i;
  }
}

TEST(CliffordTableau, SimplifiedGroupCliffordsMatchBsfResult) {
  // Applying the chosen Clifford2Q sequence as a tableau must send the
  // original nonlocal rows to the final BSF rows (structural check of
  // Algorithm 1's bookkeeping) for a group with no peeled locals.
  const std::vector<PauliTerm> terms = {
      {"ZYY", 0.1}, {"ZZY", 0.2}, {"XYY", 0.3}, {"XZY", 0.4}};
  const auto sg = simplify_bsf(terms);
  for (const auto& locals : sg.locals) ASSERT_TRUE(locals.empty());
  Circuit conj(3);
  for (const auto& cl : sg.cliffords) append_clifford2q(conj, cl);
  const CliffordTableau t = CliffordTableau::from_circuit(conj);
  ASSERT_EQ(sg.final_bsf.num_rows(), terms.size());
  for (std::size_t i = 0; i < terms.size(); ++i) {
    const PauliTerm img = t.image(terms[i].string);
    const PauliTerm want = sg.final_bsf.term(i);
    EXPECT_EQ(img.string, want.string) << i;
    EXPECT_DOUBLE_EQ(img.coeff * terms[i].coeff, want.coeff) << i;
  }
}

}  // namespace
}  // namespace phoenix
