// Chaos / robustness suite: cooperative cancellation and deadlines through
// the compiler, torn/corrupt disk-cache entries, fault-injected I/O and
// compile failures, mid-flight cancellation, cancellation storms, and
// admission-control load shedding. Fault-dependent tests skip when the build
// lacks PHOENIX_FAULT_INJECT (the `chaos` CI job builds with it ON).
//
// Timing assertions use sanitizer-sized slack: the product target is
// single-digit-millisecond cancellation latency, asserted here against
// bounds loose enough for ASan/TSan schedules.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "hamlib/uccsd.hpp"
#include "phoenix/compiler.hpp"
#include "phoenix/serialize.hpp"
#include "service/cache.hpp"
#include "service/fingerprint.hpp"
#include "service/service.hpp"

namespace phoenix {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

std::vector<PauliTerm> small_terms() {
  return {{"XXII", 0.5}, {"IYYI", -0.25}, {"IIZZ", 0.125}, {"ZIIZ", 1.0}};
}

const UccsdBenchmark& lih_bk() {
  static const UccsdBenchmark b =
      generate_uccsd(Molecule::lih(), true, FermionEncoding::BravyiKitaev);
  return b;
}

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Catch a phoenix::Error from `fn` and return its kind; fails the test if
/// nothing was thrown.
template <typename Fn>
Error::Kind kind_of(Fn&& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected a phoenix::Error";
  return Error::Kind::Failed;
}

void expect_gates_identical(const Gate& a, const Gate& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.q0, b.q0);
  EXPECT_EQ(a.q1, b.q1);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.param),
            std::bit_cast<std::uint64_t>(b.param));
  ASSERT_EQ(a.sub.size(), b.sub.size());
  for (std::size_t i = 0; i < a.sub.size(); ++i)
    expect_gates_identical(a.sub[i], b.sub[i]);
}

void expect_circuits_identical(const Circuit& a, const Circuit& b) {
  EXPECT_EQ(a.num_qubits(), b.num_qubits());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    expect_gates_identical(a.gate(i), b.gate(i));
}

struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const char* tag) {
    path = std::filesystem::temp_directory_path() /
           (std::string("phoenix_") + tag + "_" + std::to_string(::getpid()) +
            "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

/// Disarm every failpoint on scope exit so one test's faults never leak.
struct FaultGuard {
  ~FaultGuard() { fault::reset(); }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
}

/// Published on-disk location of a cache entry (fingerprint-sharded layout).
std::string entry_path(const TempDir& dir, const Digest128& k) {
  const std::string hex = k.hex();
  return dir.str() + "/" + hex.substr(0, 2) + "/" + hex + ".phxc";
}

// --- cancel tokens ----------------------------------------------------------

TEST(RobustnessCancel, EmptyTokenNeverTrips) {
  CancelToken t;
  EXPECT_FALSE(t.valid());
  EXPECT_FALSE(t.cancel_requested());
  EXPECT_FALSE(t.deadline_expired());
  std::uint32_t tick = 0;
  for (int i = 0; i < 1000; ++i) t.poll(tick, Stage::Simplify);
  t.check(Stage::Simplify);  // no throw
}

TEST(RobustnessCancel, RequestCancelThrowsCancelledKind) {
  CancelSource src;
  src.request_cancel();
  const CancelToken t = src.token();
  EXPECT_TRUE(t.cancel_requested());
  try {
    t.check(Stage::Routing);
    FAIL() << "expected a throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), Error::Kind::Cancelled);
    EXPECT_EQ(e.stage(), Stage::Routing);
  }
}

TEST(RobustnessCancel, DeadlineExpiryThrowsDeadlineKind) {
  const CancelToken t = CancelToken::after_ms(-1.0);
  EXPECT_TRUE(t.has_deadline());
  EXPECT_TRUE(t.deadline_expired());
  EXPECT_LT(t.remaining_ms(), 0.0);
  EXPECT_EQ(kind_of([&] { t.check(Stage::Peephole); }),
            Error::Kind::DeadlineExceeded);
}

TEST(RobustnessCancel, PollAmortizesButStillTrips) {
  CancelSource src;
  const CancelToken t = src.token();
  std::uint32_t tick = 0;
  t.poll(tick, Stage::Simplify);  // armed but untripped: no throw
  src.request_cancel();
  std::uint32_t tripped = 0;
  EXPECT_EQ(kind_of([&] {
              for (std::uint32_t i = 0; i < 2 * CancelToken::kPollStride; ++i) {
                t.poll(tick, Stage::Simplify);
                ++tripped;
              }
            }),
            Error::Kind::Cancelled);
  // The amortization window is bounded: the trip came within one stride.
  EXPECT_LE(tripped, CancelToken::kPollStride);
}

TEST(RobustnessCancel, ParentChainPropagatesCancelAndTightestDeadline) {
  CancelSource parent;
  CancelSource child(parent.token());
  EXPECT_FALSE(child.token().cancel_requested());
  parent.request_cancel();
  EXPECT_TRUE(child.token().cancel_requested());

  CancelSource tight(5.0);
  CancelSource loose(60'000.0, tight.token());
  // The effective deadline is the tightest along the chain.
  EXPECT_LT(loose.token().remaining_ms(), 1'000.0);
}

TEST(RobustnessCancel, ExtendDeadlineRelaxesMonotonically) {
  CancelSource src(1.0);
  src.extend_deadline(Clock::now() + 60s);
  std::this_thread::sleep_for(5ms);
  EXPECT_FALSE(src.token().deadline_expired());
  // Extension is monotonic: a tighter "extension" is ignored.
  src.extend_deadline(Clock::now() - 1s);
  EXPECT_FALSE(src.token().deadline_expired());
  // max() removes the deadline entirely.
  src.extend_deadline(Clock::time_point::max());
  EXPECT_FALSE(src.token().has_deadline());
}

TEST(RobustnessCancel, WithGroupPreservesKind) {
  const Error e(Error::Kind::DeadlineExceeded, Stage::Simplify, "late");
  const Error g = with_group(e, 7);
  EXPECT_EQ(g.kind(), Error::Kind::DeadlineExceeded);
  EXPECT_EQ(g.group(), 7u);
  EXPECT_NE(std::string(g.what()).find("deadline-exceeded"),
            std::string::npos);
}

// --- compiler-level cancellation -------------------------------------------

TEST(RobustnessCompiler, PreCancelledCompileFailsFast) {
  CancelSource src;
  src.request_cancel();
  PhoenixOptions opt;
  opt.cancel = src.token();
  const auto& b = lih_bk();
  const auto t0 = Clock::now();
  EXPECT_EQ(kind_of([&] { phoenix_compile(b.terms, b.num_qubits, opt); }),
            Error::Kind::Cancelled);
  EXPECT_LT(ms_since(t0), 1'000.0);  // entry check, not a full compile
}

TEST(RobustnessCompiler, ExpiredDeadlineFailsFast) {
  PhoenixOptions opt;
  opt.cancel = CancelToken::after_ms(-1.0);
  const auto t0 = Clock::now();
  EXPECT_EQ(kind_of([&] {
              phoenix_compile(lih_bk().terms, lih_bk().num_qubits, opt);
            }),
            Error::Kind::DeadlineExceeded);
  EXPECT_LT(ms_since(t0), 1'000.0);
}

TEST(RobustnessCompiler, MidCompileCancellationLatencyIsBounded) {
  // Cancel a running UCCSD compile (CH2, the largest seed molecule) from
  // another thread and measure how long the stage loops take to notice.
  // Product target: < 50 ms; asserted with sanitizer slack.
  const UccsdBenchmark b =
      generate_uccsd(Molecule::ch2(), true, FermionEncoding::BravyiKitaev);
  CancelSource src;
  PhoenixOptions opt;
  opt.cancel = src.token();
  opt.peephole = PeepholeLevel::O3;
  opt.num_threads = 1;

  std::atomic<bool> done{false};
  std::atomic<double> latency_ms{-1.0};
  Error::Kind kind = Error::Kind::Failed;
  std::thread worker([&] {
    try {
      phoenix_compile(b.terms, b.num_qubits, opt);
    } catch (const Error& e) {
      kind = e.kind();
    }
    done.store(true);
  });
  std::this_thread::sleep_for(5ms);  // let it get into the stage loops
  const auto t0 = Clock::now();
  src.request_cancel();
  while (!done.load()) std::this_thread::sleep_for(100us);
  latency_ms.store(ms_since(t0));
  worker.join();
  if (kind == Error::Kind::Failed) {
    // The compile finished before the cancel landed — legal on a fast
    // machine, nothing to measure.
    GTEST_SKIP() << "compile completed before cancellation";
  }
  EXPECT_EQ(kind, Error::Kind::Cancelled);
  EXPECT_LT(latency_ms.load(), 500.0);
}

TEST(RobustnessCompiler, ArmedTokenDoesNotChangeTheCircuit) {
  // A live (far-future deadline) token must be invisible in the output:
  // bit-identical circuits with and without it.
  const auto& b = lih_bk();
  PhoenixOptions plain;
  plain.peephole = PeepholeLevel::O3;
  PhoenixOptions armed = plain;
  armed.cancel = CancelToken::after_ms(3'600'000.0);
  const auto base = phoenix_compile(b.terms, b.num_qubits, plain);
  const auto timed = phoenix_compile(b.terms, b.num_qubits, armed);
  expect_circuits_identical(base.circuit, timed.circuit);
}

// --- disk-cache crash safety ------------------------------------------------

Digest128 cache_key(const std::vector<PauliTerm>& terms, std::size_t nq) {
  return fingerprint_request(terms, nq, PhoenixOptions{}, nullptr);
}

TEST(RobustnessDisk, TornEntryIsQuarantinedAndRecompiled) {
  const TempDir dir("torn");
  const Digest128 k = cache_key(small_terms(), 4);
  auto value = std::make_shared<const CompileResult>(
      phoenix_compile(small_terms(), 4));
  const std::string path = entry_path(dir, k);
  {
    CacheOptions opt;
    opt.disk_dir = dir.str();
    CompileCache writer(opt);
    writer.put(k, value);
  }
  // Simulate a crash that tore the entry in half.
  const std::string full = read_file(path);
  ASSERT_FALSE(full.empty());
  write_file(path, full.substr(0, full.size() / 2));

  CacheOptions opt;
  opt.disk_dir = dir.str();
  CompileCache reader(opt);
  EXPECT_EQ(reader.get(k), nullptr);  // rejected, not parsed
  EXPECT_EQ(reader.counters().disk_rejects, 1u);
  EXPECT_FALSE(std::filesystem::exists(path));  // moved out of the way
  EXPECT_TRUE(std::filesystem::exists(path + ".quarantine"));

  // The slot is rewritable: a fresh put republishes a valid entry.
  reader.put(k, value);
  CompileCache second(opt);
  EXPECT_NE(second.get(k), nullptr);
}

TEST(RobustnessDisk, BitFlipInPayloadFailsTheChecksum) {
  const TempDir dir("bitflip");
  const Digest128 k = cache_key(small_terms(), 4);
  const std::string path = entry_path(dir, k);
  {
    CacheOptions opt;
    opt.disk_dir = dir.str();
    CompileCache writer(opt);
    writer.put(k, std::make_shared<const CompileResult>(
                      phoenix_compile(small_terms(), 4)));
  }
  std::string blob = read_file(path);
  ASSERT_GT(blob.size(), 16u);
  blob[blob.size() / 3] ^= 0x20;  // still printable; parser might accept it
  write_file(path, blob);

  CacheOptions opt;
  opt.disk_dir = dir.str();
  CompileCache reader(opt);
  EXPECT_EQ(reader.get(k), nullptr);
  EXPECT_EQ(reader.counters().disk_rejects, 1u);
  EXPECT_TRUE(std::filesystem::exists(path + ".quarantine"));
}

TEST(RobustnessDisk, FooterlessLegacyFileIsRejected) {
  const TempDir dir("legacy");
  const Digest128 k = cache_key(small_terms(), 4);
  // A pre-checksum-era entry: valid payload, no footer.
  write_file(dir.str() + "/" + k.hex() + ".phxc",
             compile_result_to_bytes(phoenix_compile(small_terms(), 4)));
  CacheOptions opt;
  opt.disk_dir = dir.str();
  CompileCache reader(opt);
  EXPECT_EQ(reader.get(k), nullptr);
  EXPECT_EQ(reader.counters().disk_rejects, 1u);
}

TEST(RobustnessDisk, StaleTmpFilesAreSweptAtStartup) {
  const TempDir dir("sweep");
  // Unstamped legacy litter past the grace window: swept. Backdate the
  // mtime instead of sleeping through a real window.
  const std::string stale = dir.str() + "/deadbeef.phxc.tmp";
  write_file(stale, "half-written litter");
  std::filesystem::last_write_time(
      stale, std::filesystem::file_time_type::clock::now() -
                 std::chrono::hours(1));
  // A temp stamped with a provably-dead PID is swept regardless of age.
  pid_t dead_pid = ::fork();
  if (dead_pid == 0) ::_exit(0);
  ASSERT_GT(dead_pid, 0);
  ::waitpid(dead_pid, nullptr, 0);
  const std::string dead = dir.str() + "/cafe.phxc." +
                           std::to_string(dead_pid) +
                           "-00000000000000aa.tmp";
  write_file(dead, "crashed writer litter");

  CacheOptions opt;
  opt.disk_dir = dir.str();
  opt.sweep_grace_seconds = 120.0;
  CompileCache cache(opt);
  EXPECT_FALSE(std::filesystem::exists(stale));
  EXPECT_FALSE(std::filesystem::exists(dead));
}

// Regression (cross-process cache): the startup sweep used to delete EVERY
// `*.tmp` unconditionally, racing a second live process mid-write — its
// rename would then fail and the entry was silently lost. A temp stamped by
// a live PID inside the grace window must survive a concurrent sweep.
TEST(RobustnessDisk, SweepSparesLiveWritersTmpFiles) {
  const TempDir dir("sweeplive");
  const std::string live = dir.str() + "/beef.phxc." +
                           std::to_string(::getpid()) +
                           "-0000000000000001.tmp";
  write_file(live, "another process is mid-write here");
  // Unstamped but fresh: also inside the grace window, also spared.
  const std::string fresh = dir.str() + "/f00d.phxc.tmp";
  write_file(fresh, "fresh unstamped litter");

  CacheOptions opt;
  opt.disk_dir = dir.str();
  opt.sweep_grace_seconds = 3600.0;
  CompileCache cache(opt);
  EXPECT_TRUE(std::filesystem::exists(live));
  EXPECT_TRUE(std::filesystem::exists(fresh));

  // Once the writer is provably dead (or the grace window passes), a later
  // startup does reclaim the litter.
  std::filesystem::last_write_time(
      fresh, std::filesystem::file_time_type::clock::now() -
                 std::chrono::hours(2));
  CacheOptions strict = opt;
  strict.sweep_grace_seconds = 60.0;
  CompileCache second(strict);
  EXPECT_TRUE(std::filesystem::exists(live));   // PID still alive
  EXPECT_FALSE(std::filesystem::exists(fresh));  // grace window exceeded
}

TEST(RobustnessDisk, TransientWriteFailureIsRetried) {
  if (!fault::available()) GTEST_SKIP() << "built without PHOENIX_FAULT_INJECT";
  FaultGuard guard;
  const TempDir dir("wretry");
  const Digest128 k = cache_key(small_terms(), 4);
  CacheOptions opt;
  opt.disk_dir = dir.str();
  opt.disk_retry_backoff_ms = 0.0;
  CompileCache cache(opt);
  fault::enable("disk.write", {.times = 1});  // first attempt fails
  cache.put(k, std::make_shared<const CompileResult>(
                   phoenix_compile(small_terms(), 4)));
  EXPECT_GE(cache.counters().disk_retries, 1u);
  EXPECT_EQ(cache.counters().disk_write_failures, 0u);
  fault::reset();
  CompileCache fresh(opt);  // the retried write really landed
  EXPECT_NE(fresh.get(k), nullptr);
}

TEST(RobustnessDisk, ExhaustedWriteRetriesAreCountedNotFatal) {
  if (!fault::available()) GTEST_SKIP() << "built without PHOENIX_FAULT_INJECT";
  FaultGuard guard;
  const TempDir dir("wfail");
  const Digest128 k = cache_key(small_terms(), 4);
  CacheOptions opt;
  opt.disk_dir = dir.str();
  opt.disk_retry_limit = 1;
  opt.disk_retry_backoff_ms = 0.0;
  CompileCache cache(opt);
  fault::enable("disk.write", {});  // every attempt fails
  cache.put(k, std::make_shared<const CompileResult>(
                   phoenix_compile(small_terms(), 4)));
  EXPECT_EQ(cache.counters().disk_write_failures, 1u);
  EXPECT_FALSE(std::filesystem::exists(entry_path(dir, k)));
  EXPECT_NE(cache.get(k), nullptr);  // the in-memory entry still serves
}

TEST(RobustnessDisk, InjectedTornWriteIsCaughtOnRead) {
  if (!fault::available()) GTEST_SKIP() << "built without PHOENIX_FAULT_INJECT";
  FaultGuard guard;
  const TempDir dir("itorn");
  const Digest128 k = cache_key(small_terms(), 4);
  CacheOptions opt;
  opt.disk_dir = dir.str();
  {
    CompileCache writer(opt);
    fault::enable("disk.torn", {.times = 1});
    writer.put(k, std::make_shared<const CompileResult>(
                      phoenix_compile(small_terms(), 4)));
    EXPECT_EQ(fault::fired("disk.torn"), 1u);
  }
  fault::reset();
  CompileCache reader(opt);
  EXPECT_EQ(reader.get(k), nullptr);
  EXPECT_EQ(reader.counters().disk_rejects, 1u);
}

TEST(RobustnessDisk, TransientReadFailureIsRetried) {
  if (!fault::available()) GTEST_SKIP() << "built without PHOENIX_FAULT_INJECT";
  FaultGuard guard;
  const TempDir dir("rretry");
  const Digest128 k = cache_key(small_terms(), 4);
  CacheOptions opt;
  opt.disk_dir = dir.str();
  opt.disk_retry_backoff_ms = 0.0;
  {
    CompileCache writer(opt);
    writer.put(k, std::make_shared<const CompileResult>(
                      phoenix_compile(small_terms(), 4)));
  }
  CompileCache reader(opt);
  fault::enable("disk.read", {.times = 1});  // first read attempt fails
  EXPECT_NE(reader.get(k), nullptr);
  EXPECT_GE(reader.counters().disk_retries, 1u);
}

// --- service: deadlines, shedding, mid-flight cancel ------------------------

CompileRequest tiny_request(double tag) {
  CompileRequest req;
  req.terms = {PauliTerm("XX", tag)};
  req.num_qubits = 2;
  return req;
}

TEST(RobustnessService, DefaultTicketIsInertNotUndefined) {
  CompileService::Ticket t;
  EXPECT_FALSE(t.ready());
  EXPECT_FALSE(t.cancel());
  EXPECT_EQ(t.fingerprint(), Digest128{});
  EXPECT_THROW(t.get(), Error);
  CompileService::Ticket copy = t;  // copying an empty ticket is also fine
  EXPECT_FALSE(copy.ready());
}

TEST(RobustnessService, ExpiredDeadlineYieldsStructuredErrorInBoundedTime) {
  // Real compiler, already-expired deadline: whichever side notices first
  // (the compile's entry check or the ticket's wait), the caller gets a
  // structured DeadlineExceeded in bounded time.
  CompileService svc;
  CompileRequest req;
  req.terms = lih_bk().terms;
  req.num_qubits = lih_bk().num_qubits;
  req.deadline_ms = -1.0;  // already expired at submission
  auto ticket = svc.submit(req);
  const auto t0 = Clock::now();
  EXPECT_EQ(kind_of([&] { ticket.get(); }), Error::Kind::DeadlineExceeded);
  EXPECT_LT(ms_since(t0), 1'000.0);
  // The verdict is sticky.
  EXPECT_EQ(kind_of([&] { ticket.get(); }), Error::Kind::DeadlineExceeded);
  EXPECT_TRUE(ticket.ready());
}

// Regression: deadline_ms == 0 used to be the "no deadline" magic value, so
// a request arriving with an exhausted budget would wait forever. 0 now
// means "already expired" (immediate DeadlineExceeded on the wait path) and
// the unset default is the explicit kNoDeadline sentinel.
TEST(RobustnessService, ZeroDeadlineMeansAlreadyExpired) {
  CompileService svc;
  CompileRequest req;
  req.terms = lih_bk().terms;
  req.num_qubits = lih_bk().num_qubits;
  req.deadline_ms = 0.0;
  auto ticket = svc.submit(req);
  const auto t0 = Clock::now();
  EXPECT_EQ(kind_of([&] { ticket.get(); }), Error::Kind::DeadlineExceeded);
  EXPECT_LT(ms_since(t0), 1'000.0);
  // The sync path agrees: a cold compile with a zero budget fails, it does
  // not run to completion.
  EXPECT_EQ(kind_of([&] { svc.compile(req); }),
            Error::Kind::DeadlineExceeded);
}

TEST(RobustnessService, NoDeadlineSentinelWaitsForCompletion) {
  CompileRequest req = tiny_request(3.5);
  // The unset default is the sentinel, not 0.
  EXPECT_EQ(req.deadline_ms, CompileRequest::kNoDeadline);
  CompileService svc;
  auto ticket = svc.submit(req);
  EXPECT_NE(ticket.get(), nullptr);  // waits for the compile, no timeout
}

TEST(RobustnessService, ExpiredDeadlineStillServesACacheHit) {
  // A resident result costs no wait, so even a zero budget is served — the
  // deadline bounds waiting, not cache lookups.
  CompileRequest req = tiny_request(4.5);
  CompileService svc;
  ASSERT_NE(svc.compile(req), nullptr);  // warm the cache
  req.deadline_ms = 0.0;
  auto ticket = svc.submit(req);
  EXPECT_NE(ticket.get(), nullptr);
}

TEST(RobustnessService, TicketDeadlineAbandonsAStuckCompile) {
  // The compile blocks past the deadline, so the ticket's own wait must be
  // the side that gives up — exercising the timeout bookkeeping.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  ServiceOptions opt;
  opt.num_threads = 1;
  CompileService svc(opt, [&](const CompileRequest& req) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    CompileResult r;
    r.circuit = Circuit(req.num_qubits);
    return r;
  });
  CompileRequest req = tiny_request(1.0);
  req.deadline_ms = 50.0;
  auto ticket = svc.submit(req);
  EXPECT_EQ(kind_of([&] { ticket.get(); }), Error::Kind::DeadlineExceeded);
  EXPECT_EQ(svc.stats().timeouts, 1u);
  EXPECT_FALSE(ticket.cancel());  // already abandoned: nothing to release
  EXPECT_EQ(kind_of([&] { ticket.get(); }), Error::Kind::DeadlineExceeded);
  EXPECT_EQ(svc.stats().timeouts, 1u);  // recorded exactly once
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
}

TEST(RobustnessService, SyncJoinRespectsItsOwnDeadline) {
  // A sync request that joins a stuck flight must give up at its deadline
  // even though the flight itself never resolves until released.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  ServiceOptions opt;
  opt.num_threads = 1;
  CompileService svc(opt, [&](const CompileRequest& req) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    CompileResult r;
    r.circuit = Circuit(req.num_qubits);
    return r;
  });
  auto stuck = svc.submit(tiny_request(1.0));
  while (svc.stats().queue_depth != 0) std::this_thread::sleep_for(1ms);
  CompileRequest joiner = tiny_request(1.0);
  joiner.deadline_ms = 50.0;
  EXPECT_EQ(kind_of([&] { svc.compile(joiner); }),
            Error::Kind::DeadlineExceeded);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  EXPECT_NE(stuck.get(), nullptr);  // the original waiter is unaffected
  EXPECT_EQ(svc.stats().timeouts, 1u);
}

TEST(RobustnessService, QueueFullRejectsWithOverloaded) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  ServiceOptions opt;
  opt.num_threads = 1;
  opt.max_queue = 1;
  CompileService svc(opt, [&](const CompileRequest& req) {
    if (req.terms[0].coeff == 0.0) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
    }
    CompileResult r;
    r.circuit = Circuit(req.num_qubits);
    return r;
  });
  auto gate = svc.submit(tiny_request(0.0));  // occupies the single worker
  while (svc.stats().queue_depth != 0) std::this_thread::sleep_for(1ms);
  auto queued = svc.submit(tiny_request(1.0));  // fills the one queue slot
  // Same priority: no shedding, the incoming submission is rejected.
  EXPECT_EQ(kind_of([&] { svc.submit(tiny_request(2.0)); }),
            Error::Kind::Overloaded);
  EXPECT_EQ(svc.stats().rejected, 1u);
  // Joining the queued flight is still allowed (no new queue slot).
  auto joined = svc.submit(tiny_request(1.0));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  EXPECT_NE(gate.get(), nullptr);
  EXPECT_NE(queued.get(), nullptr);
  EXPECT_EQ(joined.get(), queued.get());
}

TEST(RobustnessService, HigherPrioritySubmissionShedsLowerPriorityFlight) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  ServiceOptions opt;
  opt.num_threads = 1;
  opt.max_queue = 1;
  CompileService svc(opt, [&](const CompileRequest& req) {
    if (req.terms[0].coeff == 0.0) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
    }
    CompileResult r;
    r.circuit = Circuit(req.num_qubits);
    return r;
  });
  auto gate = svc.submit(tiny_request(0.0), 0);
  while (svc.stats().queue_depth != 0) std::this_thread::sleep_for(1ms);
  auto doomed = svc.submit(tiny_request(1.0), 0);
  auto vip = svc.submit(tiny_request(2.0), 5);  // sheds the queued flight
  EXPECT_EQ(kind_of([&] { doomed.get(); }), Error::Kind::Overloaded);
  EXPECT_EQ(svc.stats().rejected, 1u);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  EXPECT_NE(gate.get(), nullptr);
  EXPECT_NE(vip.get(), nullptr);
  // The shed fingerprint is compilable again afterwards.
  EXPECT_NE(svc.submit(tiny_request(1.0)).get(), nullptr);
}

TEST(RobustnessService, LastCancelAbortsTheRunningCompile) {
  // The compile spins until its token trips: only a real mid-flight
  // cancellation can end this test.
  std::atomic<bool> entered{false};
  std::atomic<bool> exited{false};
  ServiceOptions opt;
  opt.num_threads = 1;
  CompileService svc(opt, [&](const CompileRequest& req) -> CompileResult {
    entered.store(true);
    struct Flag {
      std::atomic<bool>& f;
      ~Flag() { f.store(true); }
    } flag{exited};
    for (;;) {
      std::this_thread::sleep_for(100us);
      req.cancel.check(Stage::Service);
    }
  });
  auto ticket = svc.submit(tiny_request(1.0));
  while (!entered.load()) std::this_thread::sleep_for(1ms);
  const auto t0 = Clock::now();
  EXPECT_TRUE(ticket.cancel());
  while (!exited.load()) {
    ASSERT_LT(ms_since(t0), 10'000.0) << "mid-flight cancel never landed";
    std::this_thread::sleep_for(100us);
  }
  EXPECT_EQ(ticket.get(), nullptr);  // cancelled tickets resolve to null
  EXPECT_EQ(svc.stats().cancelled_midflight, 1u);
  EXPECT_EQ(svc.stats().cancelled, 1u);
}

TEST(RobustnessService, CancellationStormLeavesServiceServiceable) {
  // Many threads submit the same fingerprint and immediately cancel. No
  // deadlock, no crash, and the service still compiles afterwards.
  ServiceOptions opt;
  opt.num_threads = 2;
  std::atomic<int> compiles{0};
  CompileService svc(opt, [&](const CompileRequest& req) {
    compiles.fetch_add(1);
    std::this_thread::sleep_for(1ms);
    req.cancel.check(Stage::Service);
    CompileResult r;
    r.circuit = Circuit(req.num_qubits);
    return r;
  });
  constexpr int kThreads = 8;
  constexpr int kRounds = 20;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        auto ticket = svc.submit(tiny_request(static_cast<double>(r % 3)));
        if ((t + r) % 2 == 0) {
          ticket.cancel();
        } else {
          try {
            ticket.get();
          } catch (const Error&) {
            // A storm-cancelled flight may surface Cancelled to a joiner
            // whose own cancel lost the race; that is the documented
            // contract, not a failure.
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto after = svc.compile(small_terms(), 4);
  EXPECT_NE(after, nullptr);
  EXPECT_GE(compiles.load(), 1);
}

TEST(RobustnessService, InjectedCompileThrowReachesEveryJoiner) {
  if (!fault::available()) GTEST_SKIP() << "built without PHOENIX_FAULT_INJECT";
  FaultGuard guard;
  ServiceOptions opt;
  opt.num_threads = 1;
  CompileService svc(opt);
  fault::enable("compile.slow", {.sleep_ms = 200.0});
  fault::enable("compile.throw", {.times = 1});
  auto a = svc.submit(tiny_request(1.0));
  auto b = svc.submit(tiny_request(1.0));  // joins the same flight
  EXPECT_THROW(a.get(), Error);
  EXPECT_THROW(b.get(), Error);
  fault::reset();
  // Failures are not cached: the same request now compiles cleanly.
  EXPECT_NE(svc.submit(tiny_request(1.0)).get(), nullptr);
  EXPECT_GE(svc.stats().faults_injected, 2u);  // slow + throw both fired
}

}  // namespace
}  // namespace phoenix
