#include "pauli/bsf.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "matrix_testutil.hpp"
#include "pauli/clifford2q.hpp"

namespace phoenix {
namespace {

using testutil::Cx;
using testutil::Mat;

// Qubit 0 is the most significant tensor factor throughout the tests.
Mat pauli_matrix_1q(Pauli p) {
  switch (p) {
    case Pauli::I: return testutil::pauli_i();
    case Pauli::X: return testutil::pauli_x();
    case Pauli::Y: return testutil::pauli_y();
    case Pauli::Z: return testutil::pauli_z();
  }
  return testutil::pauli_i();
}

Mat pauli_string_matrix(const PauliString& s, bool sign) {
  Mat m = pauli_matrix_1q(s.op(0));
  for (std::size_t q = 1; q < s.num_qubits(); ++q)
    m = testutil::kron(m, pauli_matrix_1q(s.op(q)));
  if (sign) m = testutil::scale(m, Cx{-1, 0});
  return m;
}

Mat embed_1q(const Mat& u, std::size_t q, std::size_t n) {
  Mat m = q == 0 ? u : testutil::eye(std::size_t{1} << 1);
  if (q == 0)
    m = u;
  else
    m = testutil::eye(2);
  Mat full = (q == 0) ? u : testutil::eye(2);
  for (std::size_t k = 1; k < n; ++k)
    full = testutil::kron(full, k == q ? u : testutil::eye(2));
  return full;
}

Mat cnot_matrix(std::size_t c, std::size_t t, std::size_t n) {
  const std::size_t dim = std::size_t{1} << n;
  Mat m = testutil::zeros(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    const bool cb = (i >> (n - 1 - c)) & 1;
    const std::size_t j = cb ? (i ^ (std::size_t{1} << (n - 1 - t))) : i;
    m[j][i] = 1;
  }
  return m;
}

Mat step_matrix(const CliffStepOp& op, std::size_t n) {
  switch (op.step) {
    case CliffStep::H: return embed_1q(testutil::hadamard(), op.a, n);
    case CliffStep::S: return embed_1q(testutil::s_gate(), op.a, n);
    case CliffStep::Sdg: return embed_1q(testutil::sdg_gate(), op.a, n);
    case CliffStep::Cnot: return cnot_matrix(op.a, op.b, n);
  }
  return testutil::eye(std::size_t{1} << n);
}

Mat clifford2q_matrix(const Clifford2Q& c, std::size_t n) {
  Mat m = testutil::eye(std::size_t{1} << n);
  // Application order: each successive step multiplies on the left.
  for (const auto& op : c.expansion()) m = testutil::mul(step_matrix(op, n), m);
  return m;
}

std::vector<PauliString> all_two_qubit_paulis() {
  std::vector<PauliString> out;
  const Pauli ps[] = {Pauli::I, Pauli::X, Pauli::Y, Pauli::Z};
  for (Pauli a : ps)
    for (Pauli b : ps) {
      PauliString s(2);
      s.set_op(0, a);
      s.set_op(1, b);
      out.push_back(s);
    }
  return out;
}

TEST(Bsf, ConstructionFromTerms) {
  Bsf b({PauliTerm("XYZ", 0.5), PauliTerm("ZZI", -0.25)});
  EXPECT_EQ(b.num_qubits(), 3u);
  EXPECT_EQ(b.num_rows(), 2u);
  EXPECT_EQ(b.term(0).string.to_string(), "XYZ");
  EXPECT_DOUBLE_EQ(b.term(1).coeff, -0.25);
}

TEST(Bsf, RowWeightAndTotalWeight) {
  Bsf b({PauliTerm("XIZ", 1.0), PauliTerm("IYI", 1.0)});
  EXPECT_EQ(b.row_weight(0), 2u);
  EXPECT_EQ(b.row_weight(1), 1u);
  EXPECT_TRUE(b.row_is_local(1));
  EXPECT_FALSE(b.row_is_local(0));
  // Union support = {0,1,2} -> w_tot = 3 (Eq. 4).
  EXPECT_EQ(b.total_weight(), 3u);
}

TEST(Bsf, PopLocalRowsSeparatesWeightOne) {
  Bsf b({PauliTerm("XX", 1.0), PauliTerm("IZ", 2.0), PauliTerm("YI", 3.0)});
  const auto locals = b.pop_local_rows();
  EXPECT_EQ(locals.size(), 2u);
  EXPECT_EQ(b.num_rows(), 1u);
  EXPECT_EQ(b.term(0).string.to_string(), "XX");
  EXPECT_DOUBLE_EQ(locals[0].coeff, 2.0);
  EXPECT_DOUBLE_EQ(locals[1].coeff, 3.0);
}

TEST(Bsf, HadamardUpdateRule) {
  // H: X<->Z, Y -> -Y (Fig. 2a plus sign bookkeeping).
  Bsf b({PauliTerm("X", 1.0), PauliTerm("Z", 1.0), PauliTerm("Y", 1.0)});
  b.apply_h(0);
  EXPECT_EQ(b.term(0).string.to_string(), "Z");
  EXPECT_EQ(b.term(1).string.to_string(), "X");
  EXPECT_EQ(b.term(2).string.to_string(), "Y");
  EXPECT_DOUBLE_EQ(b.term(2).coeff, -1.0);
}

TEST(Bsf, PhaseGateUpdateRule) {
  // S: X -> Y, Y -> -X, Z -> Z (Fig. 2b plus sign bookkeeping).
  Bsf b({PauliTerm("X", 1.0), PauliTerm("Y", 1.0), PauliTerm("Z", 1.0)});
  b.apply_s(0);
  EXPECT_EQ(b.term(0).string.to_string(), "Y");
  EXPECT_DOUBLE_EQ(b.term(0).coeff, 1.0);
  EXPECT_EQ(b.term(1).string.to_string(), "X");
  EXPECT_DOUBLE_EQ(b.term(1).coeff, -1.0);
  EXPECT_EQ(b.term(2).string.to_string(), "Z");
}

TEST(Bsf, SdgIsInverseOfS) {
  Bsf b({PauliTerm("XYZ", 1.0), PauliTerm("YXI", 0.5)});
  const Bsf original = b;
  b.apply_s(1);
  b.apply_sdg(1);
  EXPECT_EQ(b, original);
}

TEST(Bsf, CnotUpdateRule) {
  // CNOT: x_t ^= x_c, z_c ^= z_t (Fig. 2c); YY -> -XZ.
  Bsf b({PauliTerm("XI", 1.0), PauliTerm("IZ", 1.0), PauliTerm("YY", 1.0)});
  b.apply_cnot(0, 1);
  EXPECT_EQ(b.term(0).string.to_string(), "XX");
  EXPECT_EQ(b.term(1).string.to_string(), "ZZ");
  EXPECT_EQ(b.term(2).string.to_string(), "XZ");
  EXPECT_DOUBLE_EQ(b.term(2).coeff, -1.0);
}

TEST(Bsf, CnotRejectsEqualQubits) {
  Bsf b({PauliTerm("XX", 1.0)});
  EXPECT_THROW(b.apply_cnot(1, 1), std::invalid_argument);
}

// Every one of the six Clifford2Q generators must act on every 2Q Pauli
// exactly as matrix conjugation C P C† does — signs included. This pins the
// whole sign-tracking machinery.
TEST(Bsf, GeneratorsMatchMatrixConjugationOnAllPaulis) {
  for (const auto& gen : clifford2q_generators()) {
    for (auto [a, b] : {std::pair<std::size_t, std::size_t>{0, 1},
                        std::pair<std::size_t, std::size_t>{1, 0}}) {
      Clifford2Q c = gen;
      c.q0 = a;
      c.q1 = b;
      const Mat cm = clifford2q_matrix(c, 2);
      for (const auto& p : all_two_qubit_paulis()) {
        Bsf tab(2);
        tab.add_term(PauliTerm(p, 1.0));
        tab.apply_clifford2q(c);
        const Mat got =
            pauli_string_matrix(PauliString(tab.row_x(0), tab.row_z(0)),
                                tab.row(0).sign);
        const Mat want =
            testutil::mul(testutil::mul(cm, pauli_string_matrix(p, false)),
                          testutil::adjoint(cm));
        EXPECT_TRUE(testutil::approx_eq(got, want))
            << c.to_string() << " on " << p.to_string();
      }
    }
  }
}

TEST(Bsf, GeneratorsAreHermitianOnTableau) {
  // Applying any generator twice must restore the original tableau.
  Bsf b({PauliTerm("XYZ", 0.7), PauliTerm("ZZY", -0.3), PauliTerm("YIX", 1.1)});
  for (const auto& gen : clifford2q_generators()) {
    Clifford2Q c = gen;
    c.q0 = 0;
    c.q1 = 2;
    Bsf copy = b;
    copy.apply_clifford2q(c);
    copy.apply_clifford2q(c);
    EXPECT_EQ(copy, b) << c.to_string();
  }
}

TEST(Bsf, CliffordPreservesCommutationRelations) {
  Bsf b({PauliTerm("XYZ", 1.0), PauliTerm("ZZY", 1.0), PauliTerm("YXI", 1.0)});
  auto relations = [](const Bsf& t) {
    std::vector<bool> r;
    for (std::size_t i = 0; i < t.num_rows(); ++i)
      for (std::size_t j = i + 1; j < t.num_rows(); ++j)
        r.push_back(PauliString(t.row_x(i), t.row_z(i))
                        .commutes_with(PauliString(t.row_x(j), t.row_z(j))));
    return r;
  };
  const auto before = relations(b);
  Clifford2Q c{Pauli::Y, Pauli::Z, 1, 2};
  b.apply_clifford2q(c);
  EXPECT_EQ(relations(b), before);
}

// The paper's Fig. 1(b): the weight-3 strings [ZYY, ZZY, XYY, XZY] are
// simultaneously reducible to weight <= 2 by a single 2Q Clifford generator.
TEST(Bsf, Fig1bSimultaneousSimplificationExists) {
  const std::vector<PauliTerm> terms = {
      {"ZYY", 1.0}, {"ZZY", 1.0}, {"XYY", 1.0}, {"XZY", 1.0}};
  bool found = false;
  for (const auto& gen : clifford2q_generators()) {
    for (std::size_t a = 0; a < 3 && !found; ++a)
      for (std::size_t b = 0; b < 3 && !found; ++b) {
        if (a == b) continue;
        Bsf tab(terms);
        Clifford2Q c = gen;
        c.q0 = a;
        c.q1 = b;
        tab.apply_clifford2q(c);
        bool all_small = true;
        for (std::size_t i = 0; i < tab.num_rows(); ++i)
          all_small &= tab.row_weight(i) <= 2;
        if (all_small) found = true;
      }
  }
  EXPECT_TRUE(found);
}

TEST(Bsf, SupportMaskUnionsRows) {
  Bsf b({PauliTerm("XII", 1.0), PauliTerm("IIZ", 1.0)});
  EXPECT_EQ(b.support(), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(b.total_weight(), 2u);
}

TEST(Bsf, TermFoldsSignIntoCoefficient) {
  Bsf b({PauliTerm("Y", 2.0)});
  b.apply_h(0);  // Y -> -Y
  EXPECT_EQ(b.term(0).string.to_string(), "Y");
  EXPECT_DOUBLE_EQ(b.term(0).coeff, -2.0);
}

TEST(Bsf, MismatchedTermSizeRejected) {
  Bsf b({PauliTerm("XX", 1.0)});
  EXPECT_THROW(b.add_term(PauliTerm("XXX", 1.0)), std::invalid_argument);
}

}  // namespace
}  // namespace phoenix
