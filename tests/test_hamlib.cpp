#include <gtest/gtest.h>

#include <complex>
#include <set>

#include "hamlib/fermion.hpp"
#include "hamlib/grouping.hpp"
#include "hamlib/qaoa.hpp"
#include "hamlib/uccsd.hpp"
#include "sim/matrix.hpp"
#include "sim/statevector.hpp"

namespace phoenix {
namespace {

using Cx = std::complex<double>;

class FermionEncodingTest
    : public ::testing::TestWithParam<FermionEncoding> {};

// Canonical anticommutation relations {a_i, a†_j} = δ_ij, {a_i, a_j} = 0
// must hold in any valid fermion-to-qubit encoding.
TEST_P(FermionEncodingTest, CanonicalAnticommutationRelations) {
  const std::size_t n = 5;
  FermionEncoder enc(n, GetParam());
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      PauliPolynomial anti = enc.lower(i) * enc.raise(j) +
                             enc.raise(j) * enc.lower(i);
      anti.prune();
      if (i == j) {
        EXPECT_EQ(anti.num_terms(), 1u) << i << "," << j;
        EXPECT_NEAR(std::abs(anti.coeff(PauliString(n)) - Cx{1, 0}), 0.0,
                    1e-12);
      } else {
        EXPECT_TRUE(anti.empty()) << i << "," << j;
      }
      PauliPolynomial anti2 = enc.lower(i) * enc.lower(j) +
                              enc.lower(j) * enc.lower(i);
      anti2.prune();
      EXPECT_TRUE(anti2.empty()) << i << "," << j;
    }
}

TEST_P(FermionEncodingTest, MajoranasAnticommuteAndSquareToIdentity) {
  const std::size_t n = 6;
  FermionEncoder enc(n, GetParam());
  for (std::size_t k = 0; k < 2 * n; ++k) {
    const PauliString ck = enc.majorana(k);
    auto [phase, sq] = pauli_multiply(ck, ck);
    EXPECT_TRUE(sq.is_identity());
    for (std::size_t l = k + 1; l < 2 * n; ++l)
      EXPECT_FALSE(ck.commutes_with(enc.majorana(l))) << k << "," << l;
  }
}

TEST_P(FermionEncodingTest, NumberOperatorIsProjector) {
  const std::size_t n = 3;
  FermionEncoder enc(n, GetParam());
  for (std::size_t j = 0; j < n; ++j) {
    // n_j^2 = n_j for a projector.
    PauliPolynomial nj = enc.number(j);
    PauliPolynomial diff = nj * nj - nj;
    diff.prune(1e-10);
    EXPECT_TRUE(diff.empty()) << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Encodings, FermionEncodingTest,
                         ::testing::Values(FermionEncoding::JordanWigner,
                                           FermionEncoding::BravyiKitaev),
                         [](const auto& info) {
                           return info.param == FermionEncoding::JordanWigner
                                      ? "JW"
                                      : "BK";
                         });

TEST(FermionEncoder, JordanWignerMajoranaShape) {
  FermionEncoder enc(4, FermionEncoding::JordanWigner);
  EXPECT_EQ(enc.majorana(0).to_string(), "XIII");
  EXPECT_EQ(enc.majorana(1).to_string(), "YIII");
  EXPECT_EQ(enc.majorana(4).to_string(), "ZZXI");
  EXPECT_EQ(enc.majorana(7).to_string(), "ZZZY");
}

TEST(FermionEncoder, BravyiKitaevSetsMatchFenwickStructure) {
  FermionEncoder enc(8, FermionEncoding::BravyiKitaev);
  // Qubit 7 (1-based 8 = 2^3) stores modes 0..7 -> flip set {0..6}.
  EXPECT_EQ(enc.flip_set(7), (std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6}));
  // Update set of mode 0: ancestors 2, 4, 8 (1-based) -> {1, 3, 7}.
  EXPECT_EQ(enc.update_set(0), (std::vector<std::size_t>{1, 3, 7}));
  // Parity of modes < 6: prefix 6 = 0b110 -> qubits 5 and 3.
  EXPECT_EQ(enc.parity_set(6), (std::vector<std::size_t>{5, 3}));
  // Even mode: remainder equals parity set.
  EXPECT_EQ(enc.remainder_set(6), enc.parity_set(6));
}

TEST(FermionEncoder, BravyiKitaevLowersMaxWeight) {
  // The motivating property of BK: O(log n) operator weight versus O(n).
  const std::size_t n = 16;
  FermionEncoder jw(n, FermionEncoding::JordanWigner);
  FermionEncoder bk(n, FermionEncoding::BravyiKitaev);
  EXPECT_EQ(jw.majorana(2 * (n - 1)).weight(), n);
  EXPECT_LT(bk.majorana(2 * (n - 1)).weight(), n / 2);
}

// JW and BK must describe the same physics: H_BK = V H_JW V† where V is the
// basis permutation |x> -> |βx> given by the encoding matrix.
TEST(FermionEncoder, BkEqualsBasisChangedJw) {
  const std::size_t n = 4;
  FermionEncoder jw(n, FermionEncoding::JordanWigner);
  FermionEncoder bk(n, FermionEncoding::BravyiKitaev);

  // A generic Hermitian 1-body operator sum_{pq} h_pq a†_p a_q.
  auto build = [&](const FermionEncoder& enc) {
    PauliPolynomial h(n);
    const double coef[4][4] = {{0.7, 0.2, -0.1, 0.05},
                               {0.2, -0.3, 0.4, 0.0},
                               {-0.1, 0.4, 0.9, -0.6},
                               {0.05, 0.0, -0.6, 0.1}};
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = 0; q < n; ++q) {
        PauliPolynomial t = enc.raise(p) * enc.lower(q);
        t *= Cx{coef[p][q], 0};
        h += t;
      }
    h.prune();
    return h;
  };

  auto to_matrix = [&](const PauliPolynomial& poly) {
    // Keep the identity component too (to_terms drops it by design).
    const Cx id = poly.coeff(PauliString(n));
    Matrix m = hamiltonian_matrix(poly.to_terms(), n);
    for (std::size_t i = 0; i < m.dim(); ++i) m.at(i, i) += id;
    return m;
  };

  const Matrix h_jw = to_matrix(build(jw));
  const Matrix h_bk = to_matrix(build(bk));

  // Permutation V: BK basis state y has y_j = XOR of occupations in row j.
  const auto beta = bk.encoding_matrix();
  const std::size_t dim = std::size_t{1} << n;
  Matrix v(dim);
  for (std::size_t x = 0; x < dim; ++x) {
    std::size_t y = 0;
    for (std::size_t j = 0; j < n; ++j) {
      bool bit = false;
      for (std::size_t k = 0; k < n; ++k)
        if (beta[j].get(k)) bit ^= (x >> (n - 1 - k)) & 1;
      if (bit) y |= std::size_t{1} << (n - 1 - j);
    }
    v.at(y, x) = 1;
  }
  const Matrix lhs = v * h_jw * v.adjoint();
  EXPECT_TRUE(lhs.approx_equal(h_bk, 1e-10));
}

TEST(Molecule, StandardSto3gCounts) {
  EXPECT_EQ(Molecule::ch2().n_spin_orbitals(), 14u);
  EXPECT_EQ(Molecule::h2o().n_spin_orbitals(), 14u);
  EXPECT_EQ(Molecule::lih().n_spin_orbitals(), 12u);
  EXPECT_EQ(Molecule::nh().n_spin_orbitals(), 12u);
  EXPECT_EQ(Molecule::lih().frozen_core().n_spin_orbitals(), 10u);
  EXPECT_EQ(Molecule::lih().frozen_core().n_electrons, 2u);
}

TEST(Uccsd, SuiteMatchesTableOneQubitCounts) {
  const auto suite = uccsd_suite();
  ASSERT_EQ(suite.size(), 16u);
  // Table I ordering: {CH2,H2O,LiH,NH} x {cmplt,frz} x {BK,JW}.
  const struct {
    const char* name;
    std::size_t qubits;
  } want[] = {
      {"CH2_cmplt_BK", 14}, {"CH2_cmplt_JW", 14}, {"CH2_frz_BK", 12},
      {"CH2_frz_JW", 12},   {"H2O_cmplt_BK", 14}, {"H2O_cmplt_JW", 14},
      {"H2O_frz_BK", 12},   {"H2O_frz_JW", 12},   {"LiH_cmplt_BK", 12},
      {"LiH_cmplt_JW", 12}, {"LiH_frz_BK", 10},   {"LiH_frz_JW", 10},
      {"NH_cmplt_BK", 12},  {"NH_cmplt_JW", 12},  {"NH_frz_BK", 10},
      {"NH_frz_JW", 10},
  };
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(suite[i].name, want[i].name);
    EXPECT_EQ(suite[i].num_qubits, want[i].qubits) << suite[i].name;
    EXPECT_FALSE(suite[i].terms.empty()) << suite[i].name;
  }
}

TEST(Uccsd, JwMaxWeightIsFullRegister) {
  // The longest JW double excitation spans the whole register (Table I).
  for (const auto& b : uccsd_suite()) {
    if (b.name.find("_JW") == std::string::npos) continue;
    EXPECT_EQ(b.w_max, b.num_qubits) << b.name;
  }
}

TEST(Uccsd, BkMaxWeightBelowRegister) {
  for (const auto& b : uccsd_suite()) {
    if (b.name.find("_BK") == std::string::npos) continue;
    EXPECT_LT(b.w_max, b.num_qubits) << b.name;
  }
}

TEST(Uccsd, JwGroupsAreExcitationBlocks) {
  // Grouping by support must recover blocks of 2 (singles) or 8 (doubles)
  // strings for the JW encoding.
  const auto b = generate_uccsd(Molecule::lih(), true, FermionEncoding::JordanWigner);
  const auto groups = group_by_support(b.terms);
  for (const auto& g : groups) {
    EXPECT_TRUE(g.terms.size() == 2 || g.terms.size() == 8)
        << "group size " << g.terms.size();
  }
}

TEST(Uccsd, DeterministicAcrossCalls) {
  const auto a = generate_uccsd(Molecule::nh(), false, FermionEncoding::BravyiKitaev);
  const auto b = generate_uccsd(Molecule::nh(), false, FermionEncoding::BravyiKitaev);
  ASSERT_EQ(a.terms.size(), b.terms.size());
  for (std::size_t i = 0; i < a.terms.size(); ++i) EXPECT_EQ(a.terms[i], b.terms[i]);
}

TEST(Uccsd, AllCoefficientsRealAndNonzero) {
  const auto b = generate_uccsd(Molecule::lih(), true, FermionEncoding::BravyiKitaev);
  for (const auto& t : b.terms) EXPECT_NE(t.coeff, 0.0);
}

TEST(Qaoa, RandomRegularGraphIsRegularAndConnected) {
  Rng rng(99);
  const Graph g = random_regular_graph(16, 4, rng);
  EXPECT_TRUE(g.connected());
  for (std::size_t v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_EQ(g.num_edges(), 32u);
}

TEST(Qaoa, OddProductRejected) {
  Rng rng(1);
  EXPECT_THROW(random_regular_graph(5, 3, rng), std::invalid_argument);
  EXPECT_THROW(random_regular_graph(4, 4, rng), std::invalid_argument);
}

TEST(Qaoa, SuiteMatchesTableFourPauliCounts) {
  const auto suite = qaoa_suite();
  ASSERT_EQ(suite.size(), 6u);
  const struct {
    const char* name;
    std::size_t n, paulis;
  } want[] = {
      {"Rand-16", 16, 32}, {"Rand-20", 20, 40}, {"Rand-24", 24, 48},
      {"Reg3-16", 16, 24}, {"Reg3-20", 20, 30}, {"Reg3-24", 24, 36},
  };
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(suite[i].name, want[i].name);
    EXPECT_EQ(suite[i].num_qubits, want[i].n);
    EXPECT_EQ(suite[i].terms.size(), want[i].paulis) << suite[i].name;
  }
}

TEST(Qaoa, TermsAreWeightTwoZz) {
  for (const auto& b : qaoa_suite())
    for (const auto& t : b.terms) {
      EXPECT_EQ(t.string.weight(), 2u);
      for (std::size_t q : t.string.support())
        EXPECT_EQ(t.string.op(q), Pauli::Z);
    }
}

TEST(Grouping, GroupsBySupportPreservingOrder) {
  const std::vector<PauliTerm> terms = {
      {"XXI", 0.1}, {"YYI", 0.2}, {"IZZ", 0.3}, {"XYI", 0.4}, {"IIZ", 0.5}};
  const auto groups = group_by_support(terms);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].terms.size(), 3u);  // XXI, YYI, XYI share support {0,1}
  EXPECT_EQ(groups[1].terms.size(), 1u);
  EXPECT_EQ(groups[2].terms.size(), 1u);
  EXPECT_EQ(groups[0].weight(), 2u);
  const auto flat = flatten_groups(groups);
  EXPECT_EQ(flat.size(), terms.size());
}

}  // namespace
}  // namespace phoenix
