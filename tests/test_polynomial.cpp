#include "pauli/polynomial.hpp"

#include <gtest/gtest.h>

#include <complex>

namespace phoenix {
namespace {

using Cx = std::complex<double>;

TEST(PauliMultiply, SingleQubitTable) {
  struct Case {
    const char *a, *b, *want;
    Cx phase;
  };
  const Case cases[] = {
      {"X", "Y", "Z", {0, 1}},  {"Y", "X", "Z", {0, -1}},
      {"Y", "Z", "X", {0, 1}},  {"Z", "Y", "X", {0, -1}},
      {"Z", "X", "Y", {0, 1}},  {"X", "Z", "Y", {0, -1}},
      {"X", "X", "I", {1, 0}},  {"I", "Y", "Y", {1, 0}},
      {"Z", "I", "Z", {1, 0}},
  };
  for (const auto& c : cases) {
    auto [phase, s] = pauli_multiply(PauliString::from_label(c.a),
                                     PauliString::from_label(c.b));
    EXPECT_EQ(s.to_string(), c.want) << c.a << "*" << c.b;
    EXPECT_NEAR(std::abs(phase - c.phase), 0.0, 1e-15) << c.a << "*" << c.b;
  }
}

TEST(PauliMultiply, MultiQubitPhasesCompose) {
  // (XY)(YX) = (X*Y)⊗(Y*X) = (iZ)⊗(-iZ) = ZZ.
  auto [phase, s] = pauli_multiply(PauliString::from_label("XY"),
                                   PauliString::from_label("YX"));
  EXPECT_EQ(s.to_string(), "ZZ");
  EXPECT_NEAR(std::abs(phase - Cx{1, 0}), 0.0, 1e-15);
  // (XX)(YY) = (iZ)(iZ) = -ZZ.
  auto [phase2, s2] = pauli_multiply(PauliString::from_label("XX"),
                                     PauliString::from_label("YY"));
  EXPECT_EQ(s2.to_string(), "ZZ");
  EXPECT_NEAR(std::abs(phase2 - Cx{-1, 0}), 0.0, 1e-15);
}

TEST(PauliMultiply, SelfProductIsIdentity) {
  const PauliString p = PauliString::from_label("XYZIZY");
  auto [phase, s] = pauli_multiply(p, p);
  EXPECT_TRUE(s.is_identity());
  EXPECT_NEAR(std::abs(phase - Cx{1, 0}), 0.0, 1e-15);
}

TEST(PauliPolynomial, AdditionMergesTerms) {
  PauliPolynomial p(2);
  p.add(PauliString::from_label("XY"), {1, 0});
  p.add(PauliString::from_label("XY"), {0.5, 0});
  p.add(PauliString::from_label("ZZ"), {0, 1});
  EXPECT_EQ(p.num_terms(), 2u);
  EXPECT_NEAR(std::abs(p.coeff(PauliString::from_label("XY")) - Cx{1.5, 0}),
              0.0, 1e-15);
}

TEST(PauliPolynomial, ProductDistributes) {
  // (X + Z)(X - Z) = XX - XZ + ZX - ZZ = I - (-iY) + iY... on one qubit:
  // X*X = I, X*Z = -iY, Z*X = iY, Z*Z = I -> I·1 + Y·(2i)... careful:
  // (X+Z)(X-Z) = I - XZ + ZX - I = -(-iY) + iY = 2iY.
  PauliPolynomial a(1), b(1);
  a.add(PauliString::from_label("X"), {1, 0});
  a.add(PauliString::from_label("Z"), {1, 0});
  b.add(PauliString::from_label("X"), {1, 0});
  b.add(PauliString::from_label("Z"), {-1, 0});
  PauliPolynomial c = a * b;
  c.prune();
  EXPECT_NEAR(std::abs(c.coeff(PauliString::from_label("Y")) - Cx{0, 2}), 0.0,
              1e-15);
  EXPECT_NEAR(std::abs(c.coeff(PauliString(1))), 0.0, 1e-15);
}

TEST(PauliPolynomial, PruneRemovesTinyTerms) {
  PauliPolynomial p(1);
  p.add(PauliString::from_label("X"), {1e-15, 0});
  p.add(PauliString::from_label("Z"), {1, 0});
  p.prune();
  EXPECT_EQ(p.num_terms(), 1u);
}

TEST(PauliPolynomial, HermiticityDetection) {
  PauliPolynomial p(1);
  p.add(PauliString::from_label("X"), {0.5, 0});
  EXPECT_TRUE(p.is_hermitian());
  p.add(PauliString::from_label("Z"), {0, 0.5});
  EXPECT_FALSE(p.is_hermitian());
}

TEST(PauliPolynomial, ToTermsDropsIdentityAndSorts) {
  PauliPolynomial p(2);
  p.add(PauliString(2), {3, 0});  // identity -> dropped
  p.add(PauliString::from_label("ZZ"), {0.5, 0});
  p.add(PauliString::from_label("XY"), {-0.25, 0});
  const auto terms = p.to_terms();
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[0].string.to_string(), "XY");
  EXPECT_EQ(terms[1].string.to_string(), "ZZ");
}

TEST(PauliPolynomial, ToTermsRejectsNonHermitian) {
  PauliPolynomial p(1);
  p.add(PauliString::from_label("X"), {0, 1});
  EXPECT_THROW(p.to_terms(), std::runtime_error);
}

TEST(PauliPolynomial, SizeMismatchRejected) {
  PauliPolynomial a(2), b(3);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a.add(PauliString(3), {1, 0}), std::invalid_argument);
}

}  // namespace
}  // namespace phoenix
