#include "common/bitvec.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"

namespace phoenix {
namespace {

TEST(BitVec, DefaultConstructedIsEmpty) {
  BitVec v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.none());
}

TEST(BitVec, SizedConstructionIsAllZero) {
  BitVec v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.popcount(), 0u);
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(v.get(i));
}

TEST(BitVec, SetGetFlipAcrossWordBoundaries) {
  BitVec v(200);
  for (std::size_t i : {0u, 63u, 64u, 127u, 128u, 199u}) {
    v.set(i, true);
    EXPECT_TRUE(v.get(i)) << i;
  }
  EXPECT_EQ(v.popcount(), 6u);
  v.flip(64);
  EXPECT_FALSE(v.get(64));
  v.flip(65);
  EXPECT_TRUE(v.get(65));
  EXPECT_EQ(v.popcount(), 6u);
}

TEST(BitVec, FromStringRoundTrip) {
  const std::string s = "0110010000000000000000000000000000000000000000000000000000000000011";
  BitVec v = BitVec::from_string(s);
  EXPECT_EQ(v.to_string(), s);
  EXPECT_EQ(v.popcount(), 5u);
}

TEST(BitVec, FromStringRejectsBadChars) {
  EXPECT_THROW(BitVec::from_string("01a"), std::invalid_argument);
}

TEST(BitVec, FindFirstAndNext) {
  BitVec v(150);
  EXPECT_EQ(v.find_first(), 150u);
  v.set(3, true);
  v.set(70, true);
  v.set(149, true);
  EXPECT_EQ(v.find_first(), 3u);
  EXPECT_EQ(v.find_next(4), 70u);
  EXPECT_EQ(v.find_next(71), 149u);
  EXPECT_EQ(v.find_next(150), 150u);
}

TEST(BitVec, OnesListsAscendingIndices) {
  BitVec v(80);
  v.set(5, true);
  v.set(64, true);
  v.set(79, true);
  EXPECT_EQ(v.ones(), (std::vector<std::size_t>{5, 64, 79}));
}

TEST(BitVec, BitwiseOps) {
  BitVec a = BitVec::from_string("1100");
  BitVec b = BitVec::from_string("1010");
  EXPECT_EQ((a & b).to_string(), "1000");
  EXPECT_EQ((a | b).to_string(), "1110");
  EXPECT_EQ((a ^ b).to_string(), "0110");
}

TEST(BitVec, BitwiseOpsRejectSizeMismatch) {
  BitVec a(4), b(5);
  EXPECT_THROW(a &= b, std::invalid_argument);
  EXPECT_THROW(a |= b, std::invalid_argument);
  EXPECT_THROW(a ^= b, std::invalid_argument);
}

TEST(BitVec, AndParity) {
  BitVec a = BitVec::from_string("1101");
  BitVec b = BitVec::from_string("1011");
  // AND = 1001 -> parity 0
  EXPECT_FALSE(BitVec::and_parity(a, b));
  b.set(1, true);  // AND = 1101 -> parity 1
  EXPECT_TRUE(BitVec::and_parity(a, b));
}

TEST(BitVec, ClearZeroesEverything) {
  BitVec v = BitVec::from_string("1111");
  v.clear();
  EXPECT_TRUE(v.none());
  EXPECT_EQ(v.size(), 4u);
}

TEST(BitVec, EqualityAndHash) {
  BitVec a = BitVec::from_string("10101");
  BitVec b = BitVec::from_string("10101");
  BitVec c = BitVec::from_string("10100");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.hash(), b.hash());
  // Different sizes hash differently even when all-zero.
  EXPECT_NE(BitVec(3).hash(), BitVec(4).hash());
}

TEST(BitVec, PopcountLargeVector) {
  BitVec v(1000);
  for (std::size_t i = 0; i < 1000; i += 3) v.set(i, true);
  EXPECT_EQ(v.popcount(), 334u);
}

TEST(BitVec, FusedOrPopcountsMatchMaterializedOr) {
  for (std::size_t n : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                        std::size_t{65}, std::size_t{200}}) {
    BitVec a(n), b(n), c(n);
    for (std::size_t i = 0; i < n; i += 2) a.set(i, true);
    for (std::size_t i = 0; i < n; i += 3) b.set(i, true);
    for (std::size_t i = 1; i < n; i += 5) c.set(i, true);
    EXPECT_EQ(BitVec::or_popcount(a, b), (a | b).popcount()) << n;
    EXPECT_EQ(BitVec::or3_popcount(a, b, c), (a | b | c).popcount()) << n;
  }
}

TEST(BitVec, FusedOrPopcountsRejectSizeMismatch) {
  BitVec a(5), b(6);
  EXPECT_THROW(BitVec::or_popcount(a, b), std::invalid_argument);
  EXPECT_THROW(BitVec::or3_popcount(a, a, b), std::invalid_argument);
}

// --- SIMD kernel property tests --------------------------------------------
// Every dispatched kernel against a trivially-correct per-word reference,
// across random word counts straddling kVectorThreshold (both the inline
// scalar path and the dispatched one), random contents, and unaligned start
// offsets (the AVX2 paths use unaligned loads; an offset of 1..3 words
// breaks any accidental 32-byte alignment of the vector's allocation).

std::vector<std::uint64_t> random_words(Rng& rng, std::size_t n) {
  std::vector<std::uint64_t> w(n);
  for (auto& x : w) {
    switch (rng.next_below(4)) {
      case 0: x = 0; break;
      case 1: x = ~std::uint64_t{0}; break;
      default: x = rng.next_u64(); break;
    }
  }
  return w;
}

std::size_t ref_popcount(const std::uint64_t* a, std::size_t n) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::uint64_t w = a[i]; w != 0; w &= w - 1) ++c;
  }
  return c;
}

TEST(Simd, ActiveLevelIsAKnownName) {
  const std::string level = simd::active_level();
  EXPECT_TRUE(level == "avx2" || level == "scalar") << level;
#ifdef PHOENIX_DISABLE_SIMD
  EXPECT_EQ(level, "scalar");
#endif
}

TEST(Simd, KernelsMatchScalarReferenceAcrossSizesAndOffsets) {
  Rng rng(20260809);
  for (int trial = 0; trial < 200; ++trial) {
    // Sizes 0..~4 cache lines, biased to straddle kVectorThreshold; offsets
    // 0..3 words shift the effective alignment of every operand.
    const std::size_t n = rng.next_below(4 * simd::kVectorThreshold + 1);
    const std::size_t off_a = rng.next_below(4);
    const std::size_t off_b = rng.next_below(4);
    const std::size_t off_c = rng.next_below(4);
    const auto wa = random_words(rng, n + off_a);
    const auto wb = random_words(rng, n + off_b);
    const auto wc = random_words(rng, n + off_c);
    const std::uint64_t* a = wa.data() + off_a;
    const std::uint64_t* b = wb.data() + off_b;
    const std::uint64_t* c = wc.data() + off_c;

    EXPECT_EQ(simd::popcount_words(a, n), ref_popcount(a, n))
        << "n=" << n << " trial=" << trial;

    std::size_t ref_or2 = 0, ref_or3 = 0;
    std::uint64_t and_acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t ab = a[i] | b[i];
      ref_or2 += ref_popcount(&ab, 1);
      const std::uint64_t abc = ab | c[i];
      ref_or3 += ref_popcount(&abc, 1);
      and_acc ^= a[i] & b[i];
    }
    EXPECT_EQ(simd::or_popcount_words(a, b, n), ref_or2)
        << "n=" << n << " trial=" << trial;
    EXPECT_EQ(simd::or3_popcount_words(a, b, c, n), ref_or3)
        << "n=" << n << " trial=" << trial;
    EXPECT_EQ(simd::and_parity_words(a, b, n), (ref_popcount(&and_acc, 1) & 1))
        << "n=" << n << " trial=" << trial;
  }
}

TEST(Simd, KernelsHandleLargeInputsWithScalarTails) {
  Rng rng(424242);
  // Large enough for several 8-word unrolled blocks plus every tail length.
  for (std::size_t n = 64; n < 64 + 8; ++n) {
    const auto wa = random_words(rng, n);
    const auto wb = random_words(rng, n);
    const auto wc = random_words(rng, n);
    EXPECT_EQ(simd::popcount_words(wa.data(), n), ref_popcount(wa.data(), n));
    std::size_t ref_or2 = 0, ref_or3 = 0;
    std::uint64_t and_acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t ab = wa[i] | wb[i];
      ref_or2 += ref_popcount(&ab, 1);
      const std::uint64_t abc = ab | wc[i];
      ref_or3 += ref_popcount(&abc, 1);
      and_acc ^= wa[i] & wb[i];
    }
    EXPECT_EQ(simd::or_popcount_words(wa.data(), wb.data(), n), ref_or2) << n;
    EXPECT_EQ(simd::or3_popcount_words(wa.data(), wb.data(), wc.data(), n),
              ref_or3)
        << n;
    EXPECT_EQ(simd::and_parity_words(wa.data(), wb.data(), n),
              (ref_popcount(&and_acc, 1) & 1))
        << n;
  }
}

TEST(Simd, BitVecRoutesThroughKernelsAtNonWordSizes) {
  Rng rng(7);
  // BitVec sizes with size % 64 != 0: partial-word semantics (zeroed tail
  // bits) must survive the kernel routing at every size class.
  for (std::size_t bits :
       {std::size_t{1}, std::size_t{63}, std::size_t{65}, std::size_t{447},
        std::size_t{513}, std::size_t{1023}}) {
    BitVec a(bits), b(bits), v3(bits);
    std::size_t ref_a = 0, ref_or2 = 0, ref_or3 = 0, ref_and = 0;
    for (std::size_t i = 0; i < bits; ++i) {
      const bool ba = rng.next_below(2) != 0;
      const bool bb = rng.next_below(2) != 0;
      const bool bc = rng.next_below(2) != 0;
      a.set(i, ba);
      b.set(i, bb);
      v3.set(i, bc);
      ref_a += ba ? 1 : 0;
      ref_or2 += (ba || bb) ? 1 : 0;
      ref_or3 += (ba || bb || bc) ? 1 : 0;
      ref_and += (ba && bb) ? 1 : 0;
    }
    EXPECT_EQ(a.popcount(), ref_a) << bits;
    EXPECT_EQ(BitVec::or_popcount(a, b), ref_or2) << bits;
    EXPECT_EQ(BitVec::or3_popcount(a, b, v3), ref_or3) << bits;
    EXPECT_EQ(BitVec::and_parity(a, b), (ref_and & 1) != 0) << bits;
  }
}

}  // namespace
}  // namespace phoenix
