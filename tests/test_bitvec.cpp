#include "common/bitvec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace phoenix {
namespace {

TEST(BitVec, DefaultConstructedIsEmpty) {
  BitVec v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.none());
}

TEST(BitVec, SizedConstructionIsAllZero) {
  BitVec v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.popcount(), 0u);
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(v.get(i));
}

TEST(BitVec, SetGetFlipAcrossWordBoundaries) {
  BitVec v(200);
  for (std::size_t i : {0u, 63u, 64u, 127u, 128u, 199u}) {
    v.set(i, true);
    EXPECT_TRUE(v.get(i)) << i;
  }
  EXPECT_EQ(v.popcount(), 6u);
  v.flip(64);
  EXPECT_FALSE(v.get(64));
  v.flip(65);
  EXPECT_TRUE(v.get(65));
  EXPECT_EQ(v.popcount(), 6u);
}

TEST(BitVec, FromStringRoundTrip) {
  const std::string s = "0110010000000000000000000000000000000000000000000000000000000000011";
  BitVec v = BitVec::from_string(s);
  EXPECT_EQ(v.to_string(), s);
  EXPECT_EQ(v.popcount(), 5u);
}

TEST(BitVec, FromStringRejectsBadChars) {
  EXPECT_THROW(BitVec::from_string("01a"), std::invalid_argument);
}

TEST(BitVec, FindFirstAndNext) {
  BitVec v(150);
  EXPECT_EQ(v.find_first(), 150u);
  v.set(3, true);
  v.set(70, true);
  v.set(149, true);
  EXPECT_EQ(v.find_first(), 3u);
  EXPECT_EQ(v.find_next(4), 70u);
  EXPECT_EQ(v.find_next(71), 149u);
  EXPECT_EQ(v.find_next(150), 150u);
}

TEST(BitVec, OnesListsAscendingIndices) {
  BitVec v(80);
  v.set(5, true);
  v.set(64, true);
  v.set(79, true);
  EXPECT_EQ(v.ones(), (std::vector<std::size_t>{5, 64, 79}));
}

TEST(BitVec, BitwiseOps) {
  BitVec a = BitVec::from_string("1100");
  BitVec b = BitVec::from_string("1010");
  EXPECT_EQ((a & b).to_string(), "1000");
  EXPECT_EQ((a | b).to_string(), "1110");
  EXPECT_EQ((a ^ b).to_string(), "0110");
}

TEST(BitVec, BitwiseOpsRejectSizeMismatch) {
  BitVec a(4), b(5);
  EXPECT_THROW(a &= b, std::invalid_argument);
  EXPECT_THROW(a |= b, std::invalid_argument);
  EXPECT_THROW(a ^= b, std::invalid_argument);
}

TEST(BitVec, AndParity) {
  BitVec a = BitVec::from_string("1101");
  BitVec b = BitVec::from_string("1011");
  // AND = 1001 -> parity 0
  EXPECT_FALSE(BitVec::and_parity(a, b));
  b.set(1, true);  // AND = 1101 -> parity 1
  EXPECT_TRUE(BitVec::and_parity(a, b));
}

TEST(BitVec, ClearZeroesEverything) {
  BitVec v = BitVec::from_string("1111");
  v.clear();
  EXPECT_TRUE(v.none());
  EXPECT_EQ(v.size(), 4u);
}

TEST(BitVec, EqualityAndHash) {
  BitVec a = BitVec::from_string("10101");
  BitVec b = BitVec::from_string("10101");
  BitVec c = BitVec::from_string("10100");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.hash(), b.hash());
  // Different sizes hash differently even when all-zero.
  EXPECT_NE(BitVec(3).hash(), BitVec(4).hash());
}

TEST(BitVec, PopcountLargeVector) {
  BitVec v(1000);
  for (std::size_t i = 0; i < 1000; i += 3) v.set(i, true);
  EXPECT_EQ(v.popcount(), 334u);
}

TEST(BitVec, FusedOrPopcountsMatchMaterializedOr) {
  for (std::size_t n : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                        std::size_t{65}, std::size_t{200}}) {
    BitVec a(n), b(n), c(n);
    for (std::size_t i = 0; i < n; i += 2) a.set(i, true);
    for (std::size_t i = 0; i < n; i += 3) b.set(i, true);
    for (std::size_t i = 1; i < n; i += 5) c.set(i, true);
    EXPECT_EQ(BitVec::or_popcount(a, b), (a | b).popcount()) << n;
    EXPECT_EQ(BitVec::or3_popcount(a, b, c), (a | b | c).popcount()) << n;
  }
}

TEST(BitVec, FusedOrPopcountsRejectSizeMismatch) {
  BitVec a(5), b(6);
  EXPECT_THROW(BitVec::or_popcount(a, b), std::invalid_argument);
  EXPECT_THROW(BitVec::or3_popcount(a, a, b), std::invalid_argument);
}

}  // namespace
}  // namespace phoenix
