// Hot-path optimization tests: the incremental Eq. (6) cost model against
// the reference, the copy-free greedy search against a replica of the
// original copy-based implementation, the thread pool, and single- vs
// multi-threaded pipeline determinism.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "hamlib/uccsd.hpp"
#include "phoenix/compiler.hpp"
#include "phoenix/ordering.hpp"
#include "phoenix/simplify.hpp"

namespace phoenix {
namespace {

std::vector<PauliTerm> random_terms(Rng& rng, std::size_t n,
                                    std::size_t rows) {
  std::vector<PauliTerm> terms;
  terms.reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    BitVec x(n), z(n);
    bool nontrivial = false;
    for (std::size_t q = 0; q < n; ++q) {
      switch (rng.next_below(4)) {
        case 1: x.set(q, true); nontrivial = true; break;
        case 2: z.set(q, true); nontrivial = true; break;
        case 3: x.set(q, true); z.set(q, true); nontrivial = true; break;
        default: break;
      }
    }
    if (!nontrivial) x.set(rng.next_below(n), true);
    terms.emplace_back(PauliString(std::move(x), std::move(z)),
                       rng.next_range(-1.0, 1.0));
  }
  return terms;
}

Clifford2Q random_clifford(Rng& rng, std::size_t n) {
  Clifford2Q c = clifford2q_generators()[rng.next_below(6)];
  c.q0 = rng.next_below(n);
  do {
    c.q1 = rng.next_below(n);
  } while (c.q1 == c.q0);
  return c;
}

TEST(Bsf, ActionTableApplyMatchesExpansionSteps) {
  Rng rng(31337);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 2 + rng.next_below(10);
    Bsf fast(random_terms(rng, n, 1 + rng.next_below(10)));
    Bsf slow = fast;
    for (int step = 0; step < 25; ++step) {
      const Clifford2Q c = random_clifford(rng, n);
      fast.apply_clifford2q(c);
      for (const auto& op : c.expansion()) slow.apply_step(op);
      ASSERT_EQ(fast, slow) << "trial " << trial << " step " << step << " "
                            << c.to_string();
    }
  }
}

TEST(IncrementalCost, MatchesReferenceOnRandomTableaus) {
  Rng rng(12345);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 2 + rng.next_below(12);
    const std::size_t rows = 1 + rng.next_below(20);
    Bsf bsf(random_terms(rng, n, rows));
    IncrementalBsfCost inc(bsf);
    EXPECT_DOUBLE_EQ(inc.cost(), bsf_cost(bsf));
  }
}

TEST(IncrementalCost, TracksRandomCliffordSequences) {
  Rng rng(777);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 3 + rng.next_below(10);
    const std::size_t rows = 2 + rng.next_below(15);
    Bsf bsf(random_terms(rng, n, rows));
    IncrementalBsfCost inc(bsf);
    for (int step = 0; step < 40; ++step) {
      const Clifford2Q c = random_clifford(rng, n);
      bsf.apply_clifford2q(c);
      inc.refresh_columns(bsf, c.q0, c.q1);
      ASSERT_DOUBLE_EQ(inc.cost(), bsf_cost(bsf))
          << "trial " << trial << " step " << step;
    }
  }
}

TEST(IncrementalCost, SnapshotRestoreRoundTripsApplyUndo) {
  Rng rng(4242);
  const std::size_t n = 8;
  Bsf bsf(random_terms(rng, n, 12));
  IncrementalBsfCost inc(bsf);
  const std::uint64_t cost_before = inc.cost2();
  for (int step = 0; step < 100; ++step) {
    const Clifford2Q c = random_clifford(rng, n);
    const auto snap = inc.snapshot(c.q0, c.q1);
    bsf.apply_clifford2q(c);
    inc.refresh_columns(bsf, c.q0, c.q1);
    EXPECT_DOUBLE_EQ(inc.cost(), bsf_cost(bsf));
    bsf.apply_clifford2q(c);  // self-inverse undo
    inc.restore(snap);
    ASSERT_EQ(inc.cost2(), cost_before);
  }
  EXPECT_DOUBLE_EQ(inc.cost(), bsf_cost(bsf));
}

// ---------------------------------------------------------------------------
// Replica of the pre-optimization Algorithm 1 search (deep-copied probes,
// double-precision costs, O(|cliffords|) tie rescans), kept as the oracle the
// copy-free implementation must match choice for choice.

Clifford2Q reference_row_reduction(const Bsf& bsf, std::size_t r) {
  const auto sup = (bsf.row_x(r) | bsf.row_z(r)).ones();
  const std::size_t a = sup[0], b = sup[1];
  const std::size_t before = (bsf.row_x(r) | bsf.row_z(r)).popcount();
  for (const auto& gen : clifford2q_generators())
    for (auto [q0, q1] : {std::pair<std::size_t, std::size_t>{a, b},
                          std::pair<std::size_t, std::size_t>{b, a}}) {
      Clifford2Q c = gen;
      c.q0 = q0;
      c.q1 = q1;
      Bsf probe = bsf;
      probe.apply_clifford2q(c);
      if ((probe.row_x(r) | probe.row_z(r)).popcount() < before) return c;
    }
  throw std::logic_error("no reducing generator");
}

SimplifiedGroup reference_simplify(const std::vector<PauliTerm>& terms) {
  Bsf bsf(terms);
  SimplifiedGroup g;
  g.num_qubits = bsf.num_qubits();
  double last_cost = std::numeric_limits<double>::infinity();
  std::size_t stall = 0;
  while (bsf.total_weight() > 2) {
    std::vector<Bsf::Row> peeled = bsf.pop_local_rows();
    if (bsf.total_weight() <= 2) {
      g.locals.push_back(std::move(peeled));
      break;
    }
    ++g.search_epochs;
    Clifford2Q chosen;
    bool have_choice = false;
    if (stall < 25) {
      double best = std::numeric_limits<double>::infinity();
      auto tie_rank = [&](const Clifford2Q& c) {
        const std::size_t lo = std::min(c.q0, c.q1), hi = std::max(c.q0, c.q1);
        bool used = false;
        for (const auto& prev : g.cliffords)
          used |= (std::min(prev.q0, prev.q1) == lo &&
                   std::max(prev.q0, prev.q1) == hi);
        return std::pair<int, std::size_t>(used ? 0 : 1, hi - lo);
      };
      const auto support = bsf.support();
      for (const auto& gen : clifford2q_generators()) {
        const bool symmetric = gen.sigma0 == gen.sigma1;
        for (std::size_t i = 0; i < support.size(); ++i)
          for (std::size_t j = i + 1; j < support.size(); ++j)
            for (int rev = 0; rev < (symmetric ? 1 : 2); ++rev) {
              Clifford2Q cand = gen;
              cand.q0 = rev ? support[j] : support[i];
              cand.q1 = rev ? support[i] : support[j];
              Bsf probe = bsf;
              probe.apply_clifford2q(cand);
              const double cost = bsf_cost(probe);
              const bool better =
                  cost < best - 1e-9 ||
                  (cost < best + 1e-9 && have_choice &&
                   tie_rank(cand) < tie_rank(chosen));
              if (!have_choice || better) {
                best = std::min(best, cost);
                chosen = cand;
                have_choice = true;
              }
            }
      }
      if (best < last_cost - 1e-9) {
        stall = 0;
        last_cost = best;
      } else {
        ++stall;
      }
    }
    if (!have_choice) {
      std::size_t r = 0;
      while (r < bsf.num_rows() && bsf.row_weight(r) <= 1) ++r;
      chosen = reference_row_reduction(bsf, r);
    }
    bsf.apply_clifford2q(chosen);
    g.cliffords.push_back(chosen);
    g.locals.push_back(std::move(peeled));
  }
  while (g.locals.size() < g.cliffords.size() + 1) g.locals.emplace_back();
  g.final_bsf = std::move(bsf);
  return g;
}

TEST(Simplify, CopyFreeSearchMatchesReferenceImplementation) {
  Rng rng(20250806);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t n = 3 + rng.next_below(6);
    const std::size_t rows = 2 + rng.next_below(6);
    const auto terms = random_terms(rng, n, rows);
    const SimplifiedGroup ref = reference_simplify(terms);
    const SimplifiedGroup got = simplify_bsf(terms);
    ASSERT_EQ(got.cliffords.size(), ref.cliffords.size()) << "trial " << trial;
    for (std::size_t e = 0; e < ref.cliffords.size(); ++e)
      EXPECT_EQ(got.cliffords[e], ref.cliffords[e])
          << "trial " << trial << " epoch " << e;
    EXPECT_EQ(got.search_epochs, ref.search_epochs);
    EXPECT_EQ(got.final_bsf, ref.final_bsf);
    EXPECT_EQ(got.emit(n).to_qasm(), ref.emit(n).to_qasm());
  }
}

// ---------------------------------------------------------------------------
// The candidate frontier (cached column probes, tombstoned peels) against
// the full per-epoch rescan: identical choices, epoch for epoch, is the
// frontier's core contract — cross-checked every epoch under
// PHOENIX_EXPENSIVE_CHECKS and asserted end-to-end here.

TEST(Simplify, FrontierMatchesRescanOnRandomTableaus) {
  Rng rng(20250807);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 3 + rng.next_below(6);
    const std::size_t rows = 2 + rng.next_below(7);
    const auto terms = random_terms(rng, n, rows);
    SimplifyOptions rescan;
    rescan.search = SimplifySearch::Rescan;
    const SimplifiedGroup f = simplify_bsf(terms);  // default: Frontier
    const SimplifiedGroup r = simplify_bsf(terms, rescan);
    ASSERT_EQ(f.cliffords.size(), r.cliffords.size()) << "trial " << trial;
    for (std::size_t e = 0; e < r.cliffords.size(); ++e)
      EXPECT_EQ(f.cliffords[e], r.cliffords[e])
          << "trial " << trial << " epoch " << e;
    EXPECT_EQ(f.search_epochs, r.search_epochs);
    EXPECT_EQ(f.final_bsf, r.final_bsf);
    EXPECT_EQ(f.emit(n).to_qasm(), r.emit(n).to_qasm());
  }
}

TEST(Simplify, FrontierMatchesRescanAcrossSeedSuite) {
  const auto suite = uccsd_suite();
  for (std::size_t idx : {std::size_t{10}, std::size_t{15}}) {
    const auto& b = suite[idx];
    PhoenixOptions ropt;
    ropt.simplify.search = SimplifySearch::Rescan;
    const Circuit f = phoenix_compile(b.terms, b.num_qubits).circuit;
    const Circuit r = phoenix_compile(b.terms, b.num_qubits, ropt).circuit;
    ASSERT_EQ(f.size(), r.size()) << b.name;
    for (std::size_t i = 0; i < f.size(); ++i)
      ASSERT_TRUE(f.gates()[i].same_as(r.gates()[i], /*tol=*/0.0))
          << b.name << " gate " << i;
  }
}

// The pre-peephole 2Q accounting the multi-start race ranks descents by
// must agree with what emit() actually produces.
TEST(Simplify, TwoQubitGatesMatchesEmittedCircuit) {
  Rng rng(5);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 3 + rng.next_below(5);
    const auto terms = random_terms(rng, n, 2 + rng.next_below(6));
    const SimplifiedGroup g = simplify_bsf(terms);
    EXPECT_EQ(g.two_qubit_gates(), g.emit(n).count_2q()) << "trial " << trial;
  }
}

TEST(Simplify, MultiStartNeverCostsMoreAndValidates) {
  const auto suite = uccsd_suite();
  for (std::size_t idx : {std::size_t{10}, std::size_t{15}}) {
    const auto& b = suite[idx];
    PhoenixOptions single;
    single.validation.level = ValidationLevel::Cheap;
    single.trace = true;
    const auto res1 = phoenix_compile(b.terms, b.num_qubits, single);
    EXPECT_TRUE(res1.validation.passed()) << b.name;

    PhoenixOptions multi = single;
    multi.simplify.num_starts = 4;
    const auto res4 = phoenix_compile(b.terms, b.num_qubits, multi);
    EXPECT_TRUE(res4.validation.passed()) << b.name;
    // Start 0 runs the canonical unperturbed tie-break and the winner rule
    // is a per-group min of the pre-peephole 2Q cost, so the race can only
    // lower that metric. (The final circuit's 2Q count is not monotone in
    // it: peephole cancellation across group boundaries can favor a
    // costlier clifford sequence, so it is not asserted here.)
    EXPECT_LE(res4.stats.counter("simplify.two_qubit_gates"),
              res1.stats.counter("simplify.two_qubit_gates"))
        << b.name;

    // The race is deterministic regardless of thread count.
    PhoenixOptions threaded = multi;
    threaded.num_threads = 4;
    const auto res4t = phoenix_compile(b.terms, b.num_qubits, threaded);
    EXPECT_EQ(res4.circuit.to_qasm(), res4t.circuit.to_qasm()) << b.name;
  }
}

TEST(Simplify, BeamSearchIsValidAndDeterministic) {
  Rng rng(99);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t n = 4 + rng.next_below(4);
    const auto terms = random_terms(rng, n, 3 + rng.next_below(5));
    SimplifyOptions opt;
    opt.beam_width = 3;
    const SimplifiedGroup a = simplify_bsf(terms, opt);
    const SimplifiedGroup b = simplify_bsf(terms, opt);
    EXPECT_LE(a.final_bsf.total_weight(), 2u) << "trial " << trial;
    EXPECT_EQ(a.emit(n).to_qasm(), b.emit(n).to_qasm()) << "trial " << trial;
    // Width 1 must be exactly the plain greedy descent.
    SimplifyOptions w1;
    w1.beam_width = 1;
    EXPECT_EQ(simplify_bsf(terms, w1).emit(n).to_qasm(),
              simplify_bsf(terms).emit(n).to_qasm())
        << "trial " << trial;
  }
}

TEST(Simplify, ZeroStartsOrZeroBeamWidthThrow) {
  const std::vector<PauliTerm> terms = {PauliTerm("XXZ", 0.5)};
  SimplifyOptions zero_starts;
  zero_starts.num_starts = 0;
  EXPECT_THROW(simplify_bsf(terms, zero_starts), Error);
  SimplifyOptions zero_beam;
  zero_beam.beam_width = 0;
  EXPECT_THROW(simplify_bsf(terms, zero_beam), Error);
}

// ---------------------------------------------------------------------------
// Tetris ordering: the linked-list pending set must pick exactly like the
// erase-based formulation it replaced.

std::vector<std::size_t> reference_tetris_order(
    const std::vector<SubcircuitProfile>& profiles,
    const OrderingOptions& opt) {
  std::vector<std::size_t> pending(profiles.size());
  std::iota(pending.begin(), pending.end(), std::size_t{0});
  std::stable_sort(pending.begin(), pending.end(),
                   [&](std::size_t a, std::size_t b) {
                     return profiles[a].support.size() >
                            profiles[b].support.size();
                   });
  std::vector<std::size_t> order;
  while (!pending.empty()) {
    std::size_t pick = 0;
    if (!order.empty()) {
      double best = std::numeric_limits<double>::infinity();
      const std::size_t window = std::min(opt.lookahead, pending.size());
      for (std::size_t w = 0; w < window; ++w) {
        const double c =
            assembling_cost(profiles[order.back()], profiles[pending[w]], opt);
        if (c < best) {
          best = c;
          pick = w;
        }
      }
    }
    order.push_back(pending[pick]);
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return order;
}

TEST(Ordering, LinkedListPendingMatchesEraseBasedReference) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 6;
    std::vector<SubcircuitProfile> profiles;
    const std::size_t num_groups = 3 + rng.next_below(20);
    for (std::size_t gi = 0; gi < num_groups; ++gi) {
      const auto sg =
          simplify_bsf(random_terms(rng, n, 1 + rng.next_below(4)));
      Circuit sub = sg.emit(n);
      if (sub.empty()) continue;
      profiles.push_back(profile_subcircuit(std::move(sub), sg.cliffords));
    }
    for (std::size_t lookahead : {std::size_t{1}, std::size_t{3},
                                  std::size_t{20}}) {
      OrderingOptions opt;
      opt.lookahead = lookahead;
      EXPECT_EQ(tetris_order(profiles, opt),
                reference_tetris_order(profiles, opt))
          << "trial " << trial << " lookahead " << lookahead;
    }
  }
}

// ---------------------------------------------------------------------------
// Thread pool.

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0u);
  std::size_t sum = 0;
  pool.parallel_for(10, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 45u);
}

TEST(ThreadPool, ParallelForRethrowsWorkerException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 37)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool must remain usable after an exceptional loop.
  std::atomic<int> count{0};
  pool.parallel_for(50, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, SharedPoolIsReusable) {
  std::atomic<int> count{0};
  ThreadPool::shared().parallel_for(64, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

// ---------------------------------------------------------------------------
// Pipeline determinism across thread counts, on seed-suite programs.

TEST(Compiler, ThreadCountDoesNotChangeOutput) {
  const auto suite = uccsd_suite();
  for (std::size_t idx : {std::size_t{10}, std::size_t{15}}) {
    const auto& b = suite[idx];
    PhoenixOptions serial;
    serial.num_threads = 1;
    serial.validation.level = ValidationLevel::Cheap;
    const auto res1 = phoenix_compile(b.terms, b.num_qubits, serial);
    EXPECT_TRUE(res1.validation.passed()) << b.name;

    PhoenixOptions threaded;
    threaded.num_threads = 4;
    threaded.validation.level = ValidationLevel::Cheap;
    const auto res4 = phoenix_compile(b.terms, b.num_qubits, threaded);

    PhoenixOptions pooled;  // shared pool (whatever this host provides)
    pooled.num_threads = 0;
    const auto res0 = phoenix_compile(b.terms, b.num_qubits, pooled);

    EXPECT_EQ(res1.circuit.to_qasm(), res4.circuit.to_qasm()) << b.name;
    EXPECT_EQ(res1.circuit.to_qasm(), res0.circuit.to_qasm()) << b.name;
    EXPECT_EQ(res1.num_groups, res4.num_groups);
    EXPECT_EQ(res1.bsf_epochs, res4.bsf_epochs);
  }
}

TEST(Compiler, GroupErrorKeepsIndexAttributionUnderThreads) {
  // An impossible epoch budget makes every nonlocal group fail; the compiler
  // must surface the lowest-indexed failing group, as the serial loop did.
  std::vector<PauliTerm> terms = {PauliTerm("ZIII", 1.0),
                                  PauliTerm("XXXX", 0.5),
                                  PauliTerm("YYYY", 0.25)};
  PhoenixOptions opt;
  opt.num_threads = 4;
  opt.simplify.max_epochs = 0;
  try {
    phoenix_compile(terms, 4, opt);
    FAIL() << "expected phoenix::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.stage(), Stage::Simplify);
    EXPECT_TRUE(e.has_group());
  }
}

}  // namespace
}  // namespace phoenix
