#include "phoenix/qaoa_router.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "hamlib/qaoa.hpp"
#include "mapping/topology.hpp"
#include "phoenix/compiler.hpp"
#include "sim/matrix.hpp"
#include "sim/statevector.hpp"
#include "transpile/rebase.hpp"

namespace phoenix {
namespace {

TEST(QaoaRouter, DetectsCommutingTwoLocalSets) {
  Rng rng(3);
  const Graph g = random_regular_graph(8, 3, rng);
  EXPECT_TRUE(is_commuting_two_local(qaoa_cost_terms(g)));
  // Weight-3 term breaks 2-locality.
  EXPECT_FALSE(is_commuting_two_local({PauliTerm("ZZZ", 0.1)}));
  // Anticommuting 2-local pair: ZZ vs XZ on the same qubits share one
  // anticommuting position.
  EXPECT_FALSE(is_commuting_two_local(
      {PauliTerm("ZZI", 0.1), PauliTerm("XZI", 0.1)}));
  EXPECT_FALSE(is_commuting_two_local({}));
}

TEST(QaoaRouter, MixedAxisCommutingPairsSupported) {
  // XX and ZZ on the same pair commute (two anticommuting positions); the
  // router must handle non-ZZ axes.
  const std::vector<PauliTerm> terms = {{"XXII", 0.2}, {"IIYY", 0.3},
                                        {"ZZII", 0.4}};
  ASSERT_TRUE(is_commuting_two_local(terms));
  const Graph device = topology_line(4);
  const auto res = route_commuting_two_local(terms, 4, device);
  for (const auto& g : res.circuit.gates()) {
    if (!g.is_two_qubit()) continue;
    EXPECT_TRUE(device.has_edge(g.q0, g.q1));
  }
}

TEST(QaoaRouter, ExactUnitaryUpToLayoutPermutation) {
  Rng rng(11);
  const Graph g = random_regular_graph(6, 3, rng);
  const auto terms = qaoa_cost_terms(g, 0.3);
  const Graph device = topology_line(6);
  const auto res = route_commuting_two_local(terms, 6, device);
  auto perm_matrix = [&](const std::vector<std::size_t>& layout) {
    const std::size_t dim = std::size_t{1} << 6;
    Matrix p(dim);
    for (std::size_t x = 0; x < dim; ++x) {
      std::size_t y = 0;
      for (std::size_t q = 0; q < 6; ++q)
        if ((x >> (5 - q)) & 1) y |= std::size_t{1} << (5 - layout[q]);
      p.at(y, x) = 1;
    }
    return p;
  };
  const std::size_t dim = std::size_t{1} << 6;
  Matrix u_log(dim);
  StateVector sv(6);
  for (std::size_t col = 0; col < dim; ++col) {
    sv.set_basis_state(col);
    for (const auto& t : terms) sv.apply_pauli_rotation(t);
    for (std::size_t row = 0; row < dim; ++row) u_log.at(row, col) = sv.amplitude(row);
  }
  const Matrix expected = perm_matrix(res.final_layout) * u_log *
                          perm_matrix(res.initial_layout).adjoint();
  EXPECT_TRUE(circuit_unitary(res.circuit).approx_equal(expected, 1e-8));
}

TEST(QaoaRouter, DeterministicAcrossRuns) {
  Rng rng(5);
  const Graph g = random_regular_graph(8, 3, rng);
  const auto terms = qaoa_cost_terms(g);
  const Graph device = topology_manhattan();
  const auto a = route_commuting_two_local(terms, 8, device);
  const auto b = route_commuting_two_local(terms, 8, device);
  EXPECT_EQ(a.num_swaps, b.num_swaps);
  EXPECT_EQ(a.circuit.size(), b.circuit.size());
}

TEST(QaoaRouter, NoSwapsWhenInteractionEmbeds) {
  // A path interaction graph on a line device needs no SWAPs.
  std::vector<PauliTerm> terms;
  for (std::size_t q = 0; q + 1 < 5; ++q) {
    PauliString s(5);
    s.set_op(q, Pauli::Z);
    s.set_op(q + 1, Pauli::Z);
    terms.emplace_back(s, 0.2);
  }
  const auto res = route_commuting_two_local(terms, 5, topology_line(5));
  EXPECT_EQ(res.num_swaps, 0u);
  EXPECT_EQ(res.circuit.count(GateKind::Cnot), 2 * terms.size());
}

TEST(QaoaRouter, CompilerDispatchesToRouterForQaoa) {
  // The compiler's hardware path must produce SU(4)-rebased output when
  // asked, and all blocks must sit on coupling edges.
  Rng rng(21);
  const Graph g = random_regular_graph(8, 3, rng);
  const auto terms = qaoa_cost_terms(g);
  const Graph device = topology_manhattan();
  PhoenixOptions opt;
  opt.hardware_aware = true;
  opt.coupling = &device;
  opt.isa = TwoQubitIsa::Su4;
  const auto res = phoenix_compile(terms, 8, opt);
  EXPECT_GT(res.circuit.count(GateKind::Su4), 0u);
  EXPECT_EQ(res.circuit.count(GateKind::Cnot), 0u);
  for (const auto& gate : res.circuit.gates()) {
    if (!gate.is_two_qubit()) continue;
    EXPECT_TRUE(device.has_edge(gate.q0, gate.q1));
  }
}

TEST(QaoaRouter, RejectsTooSmallDevice) {
  Rng rng(2);
  const Graph g = random_regular_graph(8, 3, rng);
  EXPECT_THROW(route_commuting_two_local(qaoa_cost_terms(g), 8, topology_line(4)),
               Error);
}

}  // namespace
}  // namespace phoenix
