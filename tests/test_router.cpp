// Fleet-routing tests: the rendezvous hash ring's distribution balance and
// minimal-remap properties (pure, no sockets), deterministic fail-over and
// restore, and the live sharded client over real daemons — cache affinity,
// endpoint-loss re-routing with zero lost submissions, batched burst
// accounting, bounded Overloaded/connect-refused retry, and a TSan-targeted
// concurrent pooled-client stress (suites Router*/ShardedFleet*/PooledStress*
// run under the TSan CI job).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "phoenix/serialize.hpp"
#include "service/client.hpp"
#include "service/fingerprint.hpp"
#include "service/router.hpp"
#include "service/server.hpp"
#include "service/service.hpp"

namespace phoenix {
namespace {

using namespace std::chrono_literals;

/// Deterministic synthetic fingerprints — the ring does not care that they
/// never came from a Hamiltonian.
Digest128 fp_of(std::uint64_t i) {
  Hash128 h(0x746573746b657973ull);  // "testkeys"
  h.write_u64(i);
  return h.digest();
}

std::vector<Endpoint> synthetic_endpoints(std::size_t n) {
  std::vector<Endpoint> eps;
  for (std::size_t i = 0; i < n; ++i)
    eps.push_back(Endpoint::tcp("127.0.0.1", static_cast<std::uint16_t>(7100 + i)));
  return eps;
}

CompileRequest request_with(double c0, int num_qubits = 4) {
  CompileRequest req;
  req.terms = {{"XXII", c0}, {"IYYI", -0.25}, {"IIZZ", 0.125}, {"ZIIZ", 1.0}};
  req.num_qubits = num_qubits;
  return req;
}

CompileResult quick_result(const CompileRequest& req) {
  CompileResult r;
  r.circuit = Circuit(req.num_qubits);
  return r;
}

// --- the ring itself (no sockets) -------------------------------------------

TEST(Router, PreferenceIsADeterministicPermutation) {
  RendezvousRouter router(synthetic_endpoints(8));
  for (std::uint64_t k = 0; k < 64; ++k) {
    const Digest128 fp = fp_of(k);
    const std::vector<std::size_t> pref = router.preference(fp);
    ASSERT_EQ(pref.size(), 8u);
    std::vector<char> seen(8, 0);
    for (const std::size_t i : pref) {
      ASSERT_LT(i, 8u);
      EXPECT_EQ(seen[i], 0) << "index " << i << " repeated";
      seen[i] = 1;
    }
    // Stable across calls, and consistent with the exposed score function.
    EXPECT_EQ(router.preference(fp), pref);
    for (std::size_t a = 0; a + 1 < pref.size(); ++a) {
      const auto sa =
          RendezvousRouter::score(fp, router.endpoint(pref[a]).label());
      const auto sb =
          RendezvousRouter::score(fp, router.endpoint(pref[a + 1]).label());
      EXPECT_GE(sa, sb);
    }
    EXPECT_EQ(router.route(fp), pref.front());
  }
}

TEST(Router, DistributionIsBalancedAcross2_4_8Endpoints) {
  constexpr std::size_t kKeys = 10000;
  for (const std::size_t n : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    RendezvousRouter router(synthetic_endpoints(n));
    std::vector<std::size_t> counts(n, 0);
    for (std::uint64_t k = 0; k < kKeys; ++k) ++counts[router.route(fp_of(k))];
    const double fair = static_cast<double>(kKeys) / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Binomial stddev at n=8 is ~33 keys; a +/-20% band is ~7 sigma.
      EXPECT_GT(static_cast<double>(counts[i]), 0.8 * fair)
          << "endpoint " << i << " of " << n << " starved";
      EXPECT_LT(static_cast<double>(counts[i]), 1.2 * fair)
          << "endpoint " << i << " of " << n << " overloaded";
    }
  }
}

TEST(Router, AddingAnEndpointOnlyStealsItsOwnShare) {
  constexpr std::uint64_t kKeys = 4000;
  RendezvousRouter router(synthetic_endpoints(4));
  std::map<std::uint64_t, std::string> before;
  for (std::uint64_t k = 0; k < kKeys; ++k)
    before[k] = router.endpoint(router.route(fp_of(k))).label();

  Endpoint added = Endpoint::tcp("127.0.0.1", 7999);
  router.add_endpoint(added);
  std::size_t moved = 0;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const std::string after = router.endpoint(router.route(fp_of(k))).label();
    if (after == before[k]) continue;
    // Every key that moved moved TO the new endpoint — nothing reshuffles
    // between the old four.
    EXPECT_EQ(after, added.label()) << "key " << k << " moved sideways";
    ++moved;
  }
  // The newcomer's fair share is 1/5 of the keyspace.
  EXPECT_GT(moved, kKeys / 10);
  EXPECT_LT(moved, kKeys * 3 / 10);
}

TEST(Router, RemovingAnEndpointMovesOnlyItsOwnKeys) {
  constexpr std::uint64_t kKeys = 4000;
  RendezvousRouter router(synthetic_endpoints(5));
  const std::string victim = router.endpoint(2).label();
  std::map<std::uint64_t, std::string> before;
  for (std::uint64_t k = 0; k < kKeys; ++k)
    before[k] = router.endpoint(router.route(fp_of(k))).label();

  router.remove_endpoint(2);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const std::string after = router.endpoint(router.route(fp_of(k))).label();
    if (before[k] == victim)
      EXPECT_NE(after, victim);
    else
      EXPECT_EQ(after, before[k]) << "survivor key " << k << " moved";
  }
}

TEST(Router, FailoverIsDeterministicAndRestoresExactly) {
  constexpr std::uint64_t kKeys = 2000;
  RendezvousRouter router(synthetic_endpoints(4));
  std::map<std::uint64_t, std::size_t> before;
  for (std::uint64_t k = 0; k < kKeys; ++k)
    before[k] = router.route(fp_of(k));

  router.set_healthy(1, false);
  EXPECT_FALSE(router.healthy(1));
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const std::size_t now = router.route(fp_of(k));
    if (before[k] != 1) {
      // Health bits never move keys whose preferred endpoint is still up.
      EXPECT_EQ(now, before[k]);
      continue;
    }
    // Displaced keys land on their own NEXT preference, deterministically.
    const std::vector<std::size_t> pref = router.preference(fp_of(k));
    ASSERT_EQ(pref.front(), 1u);
    EXPECT_EQ(now, pref[1]);
  }

  router.set_healthy(1, true);
  for (std::uint64_t k = 0; k < kKeys; ++k)
    EXPECT_EQ(router.route(fp_of(k)), before[k]);
}

TEST(Router, AllDownStillRoutesDeterministically) {
  RendezvousRouter router(synthetic_endpoints(3));
  for (std::size_t i = 0; i < 3; ++i) router.set_healthy(i, false);
  const Digest128 fp = fp_of(7);
  EXPECT_EQ(router.route(fp), router.preference(fp).front());
}

// --- live fleet -------------------------------------------------------------

/// One self-served daemon with an instrumented compile seam.
struct TestShard {
  ServerOptions opt;
  std::unique_ptr<ServedServer> server;
  std::atomic<std::uint64_t> compiles{0};

  explicit TestShard(std::size_t threads = 1) {
    opt.enable_tcp = true;
    opt.service.num_threads = threads;
    opt.compile_fn = [this](const CompileRequest& req) {
      compiles.fetch_add(1, std::memory_order_relaxed);
      return quick_result(req);
    };
    server = std::make_unique<ServedServer>(opt);
    server->start();
  }
  Endpoint endpoint() const {
    return Endpoint::tcp("127.0.0.1", server->tcp_port());
  }
};

TEST(ShardedFleet, AffinityRoutesRepeatsToTheSameDaemon) {
  TestShard a, b, c;
  std::vector<Endpoint> eps = {a.endpoint(), b.endpoint(), c.endpoint()};
  ShardedClient client(eps);

  constexpr int kDistinct = 12;
  std::vector<std::size_t> first_ep(kDistinct);
  for (int round = 0; round < 3; ++round) {
    for (int r = 0; r < kDistinct; ++r) {
      auto h = client.submit(request_with(1.0 + r));
      // The live routing decision matches the ring's prediction.
      EXPECT_EQ(h.endpoint_index(), client.router().route(h.fingerprint()));
      if (round == 0)
        first_ep[r] = h.endpoint_index();
      else
        EXPECT_EQ(h.endpoint_index(), first_ep[r]) << "request " << r;
      const AckInfo ack = h.ack();
      // Repeats are warm on their home shard (round 0 may ALSO report hit
      // when the trivial compile finishes before the ack is built).
      if (round > 0) EXPECT_TRUE(ack.hit);
      h.get();
    }
  }
  // Affinity means each request compiled exactly once fleet-wide.
  EXPECT_EQ(a.compiles.load() + b.compiles.load() + c.compiles.load(),
            static_cast<std::uint64_t>(kDistinct));
  EXPECT_EQ(client.router_stats().routed, 3u * kDistinct);
  EXPECT_EQ(client.router_stats().reroutes, 0u);
}

TEST(ShardedFleet, PreparedRequestMatchesPlainSubmission) {
  TestShard a;
  ShardedClient client({a.endpoint()});
  const CompileRequest req = request_with(2.5);
  const PreparedRequest prepared = client.prepare(req);
  EXPECT_EQ(prepared.fingerprint,
            fingerprint_request(req.terms, req.num_qubits, req.options,
                                req.coupling_graph()));
  const std::string via_plain = client.compile_raw(req);
  auto h = client.submit(prepared);
  EXPECT_EQ(h.fingerprint(), prepared.fingerprint);
  EXPECT_TRUE(h.ack().hit);  // same fingerprint: the plain submission warmed it
  EXPECT_EQ(h.get(), via_plain);
}

TEST(ShardedFleet, EndpointLossFailsOverWithZeroLostSubmissions) {
  TestShard a, b;
  std::vector<Endpoint> eps = {a.endpoint(), b.endpoint()};
  ShardedClientOptions copt;
  copt.retry.limit = 6;
  copt.retry.backoff_ms = 5.0;
  copt.probe_down_ms = 10.0;
  ShardedClient client(eps, copt);

  constexpr int kDistinct = 10;
  for (int r = 0; r < kDistinct; ++r)
    client.compile_raw(request_with(10.0 + r));

  b.server->stop();  // connections die; the port stops accepting

  // Every submission still terminates in a Result: keys preferring the dead
  // daemon re-route to the survivor (a cold compile there, not a loss).
  std::size_t completed = 0;
  for (int r = 0; r < kDistinct; ++r) {
    auto h = client.submit(request_with(10.0 + r));
    h.get();
    ++completed;
  }
  EXPECT_EQ(completed, static_cast<std::size_t>(kDistinct));
  EXPECT_FALSE(client.router().healthy(1));
  const RouterStats rs = client.router_stats();
  EXPECT_GT(rs.reroutes + rs.retries, 0u);
}

TEST(ShardedFleet, BurstKeepsRequestOrderAndBatchesWrites) {
  TestShard a, b;
  ShardedClient client({a.endpoint(), b.endpoint()});

  std::vector<PreparedRequest> prepared;
  for (int r = 0; r < 16; ++r)
    prepared.push_back(client.prepare(request_with(20.0 + r)));

  std::vector<ShardedClient::Handle> handles = client.submit_burst(prepared);
  ASSERT_EQ(handles.size(), prepared.size());
  for (std::size_t n = 0; n < handles.size(); ++n) {
    EXPECT_EQ(handles[n].fingerprint(), prepared[n].fingerprint);
    handles[n].get();
  }
  const ClientStats cs = client.client_stats();
  EXPECT_EQ(cs.submits, prepared.size());
  EXPECT_GE(cs.burst_writes, 1u);  // requests sharing a shard share a write
  EXPECT_GE(cs.burst_frames, 2u);
  EXPECT_EQ(client.router_stats().routed, prepared.size());
}

TEST(ShardedFleet, OverloadedIsRetriedWithinTheBudget) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  ServerOptions opt;
  opt.enable_tcp = true;
  opt.service.num_threads = 1;
  opt.max_inflight_per_conn = 1;
  opt.compile_fn = [&](const CompileRequest& req) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    return quick_result(req);
  };
  ServedServer server(opt);
  server.start();

  ShardedClientOptions copt;
  copt.pool.connections = 1;  // one stream: the second submit must overflow
  copt.retry.limit = 200;
  copt.retry.backoff_ms = 2.0;
  ShardedClient client({Endpoint::tcp("127.0.0.1", server.tcp_port())}, copt);

  auto first = client.submit(request_with(30.0));
  auto second = client.submit(request_with(31.0));
  std::thread releaser([&] {
    std::this_thread::sleep_for(50ms);
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  });
  // The Overloaded reject surfaces inside get()'s retry loop and is
  // re-submitted with backoff until the first compile frees the slot.
  second.get();
  first.get();
  releaser.join();
  EXPECT_GT(client.router_stats().retries, 0u);
  server.stop();
  EXPECT_EQ(server.stats().frame_errors, 0u);
}

TEST(ShardedFleet, ConnectRefusedRetriesUntilTheDaemonArrives) {
  // Reserve a port by starting and stopping a daemon on it; SO_REUSEADDR
  // lets the late-arriving daemon bind the same port.
  std::uint16_t port = 0;
  {
    ServerOptions probe;
    probe.enable_tcp = true;
    probe.service.num_threads = 1;
    ServedServer s(probe);
    s.start();
    port = s.tcp_port();
    s.stop();
  }

  PooledClientOptions popt;
  popt.connections = 1;
  popt.retry.limit = 400;
  popt.retry.backoff_ms = 10.0;
  PooledClient client(Endpoint::tcp("127.0.0.1", port), popt);

  std::unique_ptr<ServedServer> late;
  std::thread starter([&] {
    std::this_thread::sleep_for(150ms);
    ServerOptions opt;
    opt.enable_tcp = true;
    opt.tcp_port = port;
    opt.service.num_threads = 1;
    opt.compile_fn = [](const CompileRequest& req) { return quick_result(req); };
    for (int attempt = 0;; ++attempt) {
      try {
        late = std::make_unique<ServedServer>(std::move(opt));
        late->start();
        return;
      } catch (const Error&) {
        late.reset();
        if (attempt >= 40) throw;
        std::this_thread::sleep_for(50ms);
      }
    }
  });

  auto h = client.submit_async(request_with(40.0));
  h.get();  // succeeds only because the connect retried through the refusals
  starter.join();
  EXPECT_GT(client.stats().connect_retries, 0u);
  late->stop();
}

// --- concurrent pooled transport (TSan target) ------------------------------

TEST(PooledStress, ConcurrentSubmittersShareThePoolCleanly) {
  TestShard shard(/*threads=*/2);
  PooledClientOptions popt;
  popt.connections = 3;
  PooledClient client(shard.endpoint(), popt);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;
  std::atomic<std::uint64_t> results{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<PooledClient::Handle> mine;
      for (int i = 0; i < kPerThread; ++i)
        mine.push_back(client.submit_async(
            request_with(50.0 + (t * kPerThread + i) % 7)));
      for (auto& h : mine) {
        EXPECT_FALSE(h.ack().fingerprint_hex.empty());
        EXPECT_FALSE(h.get().empty());
        results.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(results.load(), static_cast<std::uint64_t>(kThreads * kPerThread));
  const ClientStats cs = client.stats();
  EXPECT_EQ(cs.submits, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(cs.results, cs.submits);
  EXPECT_EQ(cs.io_errors, 0u);
  shard.server->stop();
  EXPECT_EQ(shard.server->stats().frame_errors, 0u);
}

TEST(PooledStress, ConcurrentShardedBurstsAcrossTwoDaemons) {
  TestShard a(2), b(2);
  ShardedClient client({a.endpoint(), b.endpoint()});

  std::vector<PreparedRequest> prepared;
  for (int r = 0; r < 8; ++r)
    prepared.push_back(client.prepare(request_with(60.0 + r)));

  constexpr int kThreads = 3;
  constexpr int kBursts = 10;
  std::atomic<std::uint64_t> completed{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int n = 0; n < kBursts; ++n) {
        auto handles = client.submit_burst(prepared);
        for (auto& h : handles) {
          h.get();
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(completed.load(),
            static_cast<std::uint64_t>(kThreads * kBursts * prepared.size()));
  // Affinity held under concurrency: each distinct request compiled once.
  EXPECT_EQ(a.compiles.load() + b.compiles.load(), prepared.size());
}

}  // namespace
}  // namespace phoenix
