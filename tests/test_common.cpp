#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/graph.hpp"
#include "common/rng.hpp"

namespace phoenix {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) any_diff |= a.next_u64() != b.next_u64();
  EXPECT_TRUE(any_diff);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(13), 13u);
  EXPECT_THROW(r.next_below(0), std::invalid_argument);
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng r(11);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = r.next_gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, ShufflePermutes) {
  Rng r(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  auto copy = v;
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, sorted);
}

TEST(Graph, EdgesAndDegrees) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Graph, RejectsBadEdges) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(0, 1), std::invalid_argument);
  EXPECT_THROW(g.add_edge(1, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(2, 2), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 3), std::out_of_range);
}

TEST(Graph, BfsDistancesOnPath) {
  Graph g(5);
  for (std::size_t i = 0; i + 1 < 5; ++i) g.add_edge(i, i + 1);
  const auto d = g.bfs_distances(0);
  EXPECT_EQ(d, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Graph, DisconnectedComponentsUnreachable) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.connected());
  const auto d = g.bfs_distances(0);
  EXPECT_EQ(d[2], Graph::kUnreachable);
}

TEST(Graph, DistanceMatrixSymmetric) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 0);  // 6-cycle
  const auto d = g.distance_matrix();
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j) EXPECT_EQ(d[i][j], d[j][i]);
  EXPECT_EQ(d[0][3], 3u);
  EXPECT_EQ(d[0][5], 1u);
}

}  // namespace
}  // namespace phoenix
