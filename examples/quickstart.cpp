// Quickstart: compile a tiny Hamiltonian-simulation program end to end.
//
// A Hamiltonian is just a list of weighted Pauli strings; PHOENIX turns the
// corresponding product of exponentials exp(-i h_j P_j) into a circuit over
// basic 1Q/2Q gates, globally optimized at the Pauli-IR level.
//
//   $ ./example_quickstart

#include <cstdio>

#include "circuit/synthesis.hpp"
#include "phoenix/compiler.hpp"

int main() {
  using namespace phoenix;

  // The paper's Fig. 1(b) group plus a 2-local term: four weight-3 strings
  // on qubits {0,1,2} that PHOENIX simplifies simultaneously with a single
  // 2Q Clifford conjugation.
  const std::vector<PauliTerm> hamiltonian = {
      {"ZYY", 0.12}, {"ZZY", 0.34}, {"XYY", -0.21}, {"XZY", 0.08},
      {"IZZ", 0.50},
  };
  const std::size_t num_qubits = 3;

  // Conventional per-term synthesis — the baseline every paper metric is
  // measured against.
  const Circuit naive = synthesize_naive(hamiltonian, num_qubits);
  std::printf("naive synthesis : %3zu gates, %2zu CNOTs, 2Q depth %2zu\n",
              naive.size(), naive.count(GateKind::Cnot), naive.depth_2q());

  // The PHOENIX pipeline: grouping -> BSF simplification -> Tetris-like
  // ordering -> emission.
  const CompileResult res = phoenix_compile(hamiltonian, num_qubits);
  std::printf("PHOENIX         : %3zu gates, %2zu CNOTs, 2Q depth %2zu "
              "(%zu IR groups, %zu search epochs)\n",
              res.circuit.size(), res.circuit.count(GateKind::Cnot),
              res.circuit.depth_2q(), res.num_groups, res.bsf_epochs);

  std::printf("\ncompiled circuit:\n%s", res.circuit.to_string().c_str());
  std::printf("\nOpenQASM:\n%s", res.circuit.to_qasm().c_str());
  return 0;
}
