// Molecular-simulation workload: generate a UCCSD ansatz (the paper's
// Table I suite), compile it logically and hardware-aware, and compare
// PHOENIX against the baseline compilers.
//
//   $ ./example_uccsd_compile [molecule]       (CH2 | H2O | LiH | NH)

#include <cstdio>
#include <cstring>

#include "baselines/paulihedral.hpp"
#include "baselines/tket.hpp"
#include "circuit/synthesis.hpp"
#include "hamlib/uccsd.hpp"
#include "mapping/topology.hpp"
#include "phoenix/compiler.hpp"

int main(int argc, char** argv) {
  using namespace phoenix;

  Molecule mol = Molecule::lih();
  if (argc > 1) {
    if (!std::strcmp(argv[1], "CH2")) mol = Molecule::ch2();
    else if (!std::strcmp(argv[1], "H2O")) mol = Molecule::h2o();
    else if (!std::strcmp(argv[1], "NH")) mol = Molecule::nh();
    else if (std::strcmp(argv[1], "LiH")) {
      std::fprintf(stderr, "unknown molecule '%s'\n", argv[1]);
      return 1;
    }
  }

  for (FermionEncoding enc :
       {FermionEncoding::JordanWigner, FermionEncoding::BravyiKitaev}) {
    const UccsdBenchmark b = generate_uccsd(mol, /*frozen=*/true, enc);
    std::printf("== %s: %zu qubits, %zu Pauli strings, max weight %zu ==\n",
                b.name.c_str(), b.num_qubits, b.terms.size(), b.w_max);

    const Circuit naive = synthesize_naive(b.terms, b.num_qubits);
    std::printf("  original    : %6zu CNOT, 2Q depth %6zu\n",
                naive.count(GateKind::Cnot), naive.depth_2q());

    const Circuit ph = paulihedral_compile(b.terms, b.num_qubits);
    std::printf("  Paulihedral : %6zu CNOT, 2Q depth %6zu\n",
                ph.count(GateKind::Cnot), ph.depth_2q());

    const Circuit tk = tket_compile(b.terms, b.num_qubits);
    std::printf("  TKET        : %6zu CNOT, 2Q depth %6zu\n",
                tk.count(GateKind::Cnot), tk.depth_2q());

    const CompileResult phx = phoenix_compile(b.terms, b.num_qubits);
    std::printf("  PHOENIX     : %6zu CNOT, 2Q depth %6zu\n",
                phx.circuit.count(GateKind::Cnot), phx.circuit.depth_2q());

    // Hardware-aware compilation onto the 65-qubit heavy-hex device.
    const Graph device = topology_manhattan();
    PhoenixOptions hw;
    hw.hardware_aware = true;
    hw.coupling = &device;
    const CompileResult routed = phoenix_compile(b.terms, b.num_qubits, hw);
    std::printf("  PHOENIX @heavy-hex: %6zu CNOT, 2Q depth %6zu, %zu SWAPs\n\n",
                routed.circuit.count(GateKind::Cnot), routed.circuit.depth_2q(),
                routed.num_swaps);
  }
  return 0;
}
