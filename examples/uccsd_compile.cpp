// Molecular-simulation workload: generate a UCCSD ansatz (the paper's
// Table I suite), compile it logically and hardware-aware, and compare
// PHOENIX against the baseline compilers.
//
//   $ ./example_uccsd_compile [molecule] [--profile out.json]
//                             [--repeat N] [--jobs N] [--cache-dir DIR]
//                             [--opt-level own|o3] [--resynth off|logical|routed]
//
// Molecule is one of CH2 | H2O | LiH | NH. With --profile, the logical
// PHOENIX compile runs with stage tracing on: the per-stage table prints to
// stdout and a chrome://tracing / Perfetto-loadable JSON profile is written
// to the given path.
//
// With --repeat N (and optionally --cache-dir for a persistent cache and
// --jobs for the service pool size) the logical compile is driven through a
// CompileService N times, printing per-pass latency — pass 1 is the cold
// compile (or a disk hit on a warm --cache-dir), later passes are
// content-addressed cache hits.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "baselines/paulihedral.hpp"
#include "baselines/tket.hpp"
#include "circuit/synthesis.hpp"
#include "hamlib/uccsd.hpp"
#include "mapping/topology.hpp"
#include "phoenix/compiler.hpp"
#include "service/service.hpp"

int main(int argc, char** argv) {
  using namespace phoenix;

  Molecule mol = Molecule::lih();
  const char* profile_path = nullptr;
  const char* cache_dir = nullptr;
  int repeat = 0;
  std::size_t jobs = 0;
  PeepholeLevel opt_level = PeepholeLevel::Own;
  ResynthLevel resynth = ResynthLevel::Off;
  auto flag_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s requires a value\n", flag);
      std::exit(1);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--profile")) {
      profile_path = flag_value(i, "--profile");
    } else if (!std::strcmp(argv[i], "--opt-level")) {
      const char* v = flag_value(i, "--opt-level");
      if (!std::strcmp(v, "own")) {
        opt_level = PeepholeLevel::Own;
      } else if (!std::strcmp(v, "o3")) {
        opt_level = PeepholeLevel::O3;
      } else {
        std::fprintf(stderr, "--opt-level must be own|o3, got '%s'\n", v);
        return 1;
      }
    } else if (!std::strcmp(argv[i], "--resynth")) {
      const char* v = flag_value(i, "--resynth");
      if (!std::strcmp(v, "off")) {
        resynth = ResynthLevel::Off;
      } else if (!std::strcmp(v, "logical")) {
        resynth = ResynthLevel::Logical;
      } else if (!std::strcmp(v, "routed")) {
        resynth = ResynthLevel::Routed;
      } else {
        std::fprintf(stderr, "--resynth must be off|logical|routed, got '%s'\n",
                     v);
        return 1;
      }
    } else if (!std::strcmp(argv[i], "--repeat")) {
      repeat = std::atoi(flag_value(i, "--repeat"));
    } else if (!std::strcmp(argv[i], "--jobs")) {
      jobs = std::strtoul(flag_value(i, "--jobs"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--cache-dir")) {
      cache_dir = flag_value(i, "--cache-dir");
    } else if (!std::strcmp(argv[i], "CH2")) {
      mol = Molecule::ch2();
    } else if (!std::strcmp(argv[i], "H2O")) {
      mol = Molecule::h2o();
    } else if (!std::strcmp(argv[i], "NH")) {
      mol = Molecule::nh();
    } else if (std::strcmp(argv[i], "LiH")) {
      std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
      return 1;
    }
  }

  for (FermionEncoding enc :
       {FermionEncoding::JordanWigner, FermionEncoding::BravyiKitaev}) {
    const UccsdBenchmark b = generate_uccsd(mol, /*frozen=*/true, enc);
    std::printf("== %s: %zu qubits, %zu Pauli strings, max weight %zu ==\n",
                b.name.c_str(), b.num_qubits, b.terms.size(), b.w_max);

    const Circuit naive = synthesize_naive(b.terms, b.num_qubits);
    std::printf("  original    : %6zu CNOT, 2Q depth %6zu\n",
                naive.count(GateKind::Cnot), naive.depth_2q());

    const Circuit ph = paulihedral_compile(b.terms, b.num_qubits);
    std::printf("  Paulihedral : %6zu CNOT, 2Q depth %6zu\n",
                ph.count(GateKind::Cnot), ph.depth_2q());

    const Circuit tk = tket_compile(b.terms, b.num_qubits);
    std::printf("  TKET        : %6zu CNOT, 2Q depth %6zu\n",
                tk.count(GateKind::Cnot), tk.depth_2q());

    PhoenixOptions logical;
    logical.trace = profile_path != nullptr;
    logical.peephole = opt_level;
    logical.resynth = resynth;
    const CompileResult phx = phoenix_compile(b.terms, b.num_qubits, logical);
    std::printf("  PHOENIX     : %6zu CNOT, 2Q depth %6zu\n",
                phx.circuit.count(GateKind::Cnot), phx.circuit.depth_2q());

    if (profile_path != nullptr) {
      std::printf("\n%s\n", TraceExport::table(phx.stats).c_str());
      std::ofstream out(profile_path);
      if (!out) {
        std::fprintf(stderr, "cannot write profile to '%s'\n", profile_path);
        return 1;
      }
      out << TraceExport::chrome_json(phx.stats);
      std::printf("wrote chrome-trace profile to %s "
                  "(load in chrome://tracing or ui.perfetto.dev)\n\n",
                  profile_path);
    }

    // Hardware-aware compilation onto the 65-qubit heavy-hex device.
    const Graph device = topology_manhattan();
    PhoenixOptions hw;
    hw.hardware_aware = true;
    hw.coupling = &device;
    hw.peephole = opt_level;
    hw.resynth = resynth;
    const CompileResult routed = phoenix_compile(b.terms, b.num_qubits, hw);
    std::printf("  PHOENIX @heavy-hex: %6zu CNOT, 2Q depth %6zu, %zu SWAPs\n\n",
                routed.circuit.count(GateKind::Cnot), routed.circuit.depth_2q(),
                routed.num_swaps);

    if (repeat > 0) {
      using clock = std::chrono::steady_clock;
      ServiceOptions sopt;
      sopt.num_threads = jobs;
      if (cache_dir != nullptr) sopt.cache.disk_dir = cache_dir;
      CompileService service(sopt);
      std::printf("  service, %d pass(es)%s%s:\n", repeat,
                  cache_dir != nullptr ? ", cache-dir " : "",
                  cache_dir != nullptr ? cache_dir : "");
      for (int pass = 1; pass <= repeat; ++pass) {
        const ServiceStats before = service.stats();
        const auto t0 = clock::now();
        const auto res = service.compile(b.terms, b.num_qubits, logical);
        const double ms =
            std::chrono::duration<double, std::milli>(clock::now() - t0)
                .count();
        const ServiceStats after = service.stats();
        const char* how = after.misses > before.misses      ? "cold compile"
                          : after.disk_hits > before.disk_hits ? "disk hit"
                                                               : "cache hit";
        std::printf("    pass %d: %9.3f ms  (%s, %zu CNOT)\n", pass, ms, how,
                    res->circuit.count(GateKind::Cnot));
      }
      std::printf("\n");
    }
  }
  return 0;
}
