// Molecular-simulation workload: generate a UCCSD ansatz (the paper's
// Table I suite), compile it logically and hardware-aware, and compare
// PHOENIX against the baseline compilers.
//
//   $ ./example_uccsd_compile [molecule] [--profile out.json]
//
// Molecule is one of CH2 | H2O | LiH | NH. With --profile, the logical
// PHOENIX compile runs with stage tracing on: the per-stage table prints to
// stdout and a chrome://tracing / Perfetto-loadable JSON profile is written
// to the given path.

#include <cstdio>
#include <cstring>
#include <fstream>

#include "baselines/paulihedral.hpp"
#include "baselines/tket.hpp"
#include "circuit/synthesis.hpp"
#include "hamlib/uccsd.hpp"
#include "mapping/topology.hpp"
#include "phoenix/compiler.hpp"

int main(int argc, char** argv) {
  using namespace phoenix;

  Molecule mol = Molecule::lih();
  const char* profile_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--profile")) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--profile requires an output path\n");
        return 1;
      }
      profile_path = argv[++i];
    } else if (!std::strcmp(argv[i], "CH2")) {
      mol = Molecule::ch2();
    } else if (!std::strcmp(argv[i], "H2O")) {
      mol = Molecule::h2o();
    } else if (!std::strcmp(argv[i], "NH")) {
      mol = Molecule::nh();
    } else if (std::strcmp(argv[i], "LiH")) {
      std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
      return 1;
    }
  }

  for (FermionEncoding enc :
       {FermionEncoding::JordanWigner, FermionEncoding::BravyiKitaev}) {
    const UccsdBenchmark b = generate_uccsd(mol, /*frozen=*/true, enc);
    std::printf("== %s: %zu qubits, %zu Pauli strings, max weight %zu ==\n",
                b.name.c_str(), b.num_qubits, b.terms.size(), b.w_max);

    const Circuit naive = synthesize_naive(b.terms, b.num_qubits);
    std::printf("  original    : %6zu CNOT, 2Q depth %6zu\n",
                naive.count(GateKind::Cnot), naive.depth_2q());

    const Circuit ph = paulihedral_compile(b.terms, b.num_qubits);
    std::printf("  Paulihedral : %6zu CNOT, 2Q depth %6zu\n",
                ph.count(GateKind::Cnot), ph.depth_2q());

    const Circuit tk = tket_compile(b.terms, b.num_qubits);
    std::printf("  TKET        : %6zu CNOT, 2Q depth %6zu\n",
                tk.count(GateKind::Cnot), tk.depth_2q());

    PhoenixOptions logical;
    logical.trace = profile_path != nullptr;
    const CompileResult phx = phoenix_compile(b.terms, b.num_qubits, logical);
    std::printf("  PHOENIX     : %6zu CNOT, 2Q depth %6zu\n",
                phx.circuit.count(GateKind::Cnot), phx.circuit.depth_2q());

    if (profile_path != nullptr) {
      std::printf("\n%s\n", TraceExport::table(phx.stats).c_str());
      std::ofstream out(profile_path);
      if (!out) {
        std::fprintf(stderr, "cannot write profile to '%s'\n", profile_path);
        return 1;
      }
      out << TraceExport::chrome_json(phx.stats);
      std::printf("wrote chrome-trace profile to %s "
                  "(load in chrome://tracing or ui.perfetto.dev)\n\n",
                  profile_path);
    }

    // Hardware-aware compilation onto the 65-qubit heavy-hex device.
    const Graph device = topology_manhattan();
    PhoenixOptions hw;
    hw.hardware_aware = true;
    hw.coupling = &device;
    const CompileResult routed = phoenix_compile(b.terms, b.num_qubits, hw);
    std::printf("  PHOENIX @heavy-hex: %6zu CNOT, 2Q depth %6zu, %zu SWAPs\n\n",
                routed.circuit.count(GateKind::Cnot), routed.circuit.depth_2q(),
                routed.num_swaps);
  }
  return 0;
}
