// Batch serving driver: run the whole UCCSD suite through a CompileService —
// the shape of a long-lived compile server ahead of an RPC front-end. Each
// round submits every benchmark as one batch (small programs at higher
// priority so they return first); round 1 is cold, later rounds are served
// from the content-addressed cache.
//
//   $ ./example_phoenix_serve [--jobs N] [--repeat N] [--cache-dir DIR]
//                             [--max-qubits N] [--deadline-ms MS]
//                             [--max-queue N] [--opt-level own|o3]
//                             [--resynth off|logical|routed]
//
// Defaults: jobs = hardware, repeat = 2, in-memory cache only, full suite,
// no deadlines, unbounded queue. With --cache-dir the cache persists: a
// second run of this binary starts warm (round 1 shows disk hits instead of
// compiles). --deadline-ms puts a per-request deadline on every submission
// (expired waits report `deadline` instead of a result and abort the compile
// when nobody else wants it); --max-queue bounds the accepted-but-unstarted
// queue, so an overfull round sheds its lowest-priority compiles with
// `overloaded` instead of queueing without bound.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "hamlib/uccsd.hpp"
#include "service/service.hpp"

int main(int argc, char** argv) {
  using namespace phoenix;
  using clock = std::chrono::steady_clock;

  std::size_t jobs = 0;
  int repeat = 2;
  const char* cache_dir = nullptr;
  std::size_t max_qubits = 64;
  double deadline_ms = CompileRequest::kNoDeadline;
  std::size_t max_queue = 0;
  PeepholeLevel opt_level = PeepholeLevel::Own;
  ResynthLevel resynth = ResynthLevel::Off;
  for (int i = 1; i < argc; ++i) {
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--jobs"))
      jobs = std::strtoul(value("--jobs"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--repeat"))
      repeat = std::atoi(value("--repeat"));
    else if (!std::strcmp(argv[i], "--cache-dir"))
      cache_dir = value("--cache-dir");
    else if (!std::strcmp(argv[i], "--max-qubits"))
      max_qubits = std::strtoul(value("--max-qubits"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--deadline-ms"))
      deadline_ms = std::strtod(value("--deadline-ms"), nullptr);
    else if (!std::strcmp(argv[i], "--max-queue"))
      max_queue = std::strtoul(value("--max-queue"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--opt-level")) {
      const char* v = value("--opt-level");
      if (!std::strcmp(v, "own")) {
        opt_level = PeepholeLevel::Own;
      } else if (!std::strcmp(v, "o3")) {
        opt_level = PeepholeLevel::O3;
      } else {
        std::fprintf(stderr, "--opt-level must be own|o3, got '%s'\n", v);
        return 1;
      }
    } else if (!std::strcmp(argv[i], "--resynth")) {
      const char* v = value("--resynth");
      if (!std::strcmp(v, "off")) {
        resynth = ResynthLevel::Off;
      } else if (!std::strcmp(v, "logical")) {
        resynth = ResynthLevel::Logical;
      } else if (!std::strcmp(v, "routed")) {
        resynth = ResynthLevel::Routed;
      } else {
        std::fprintf(stderr, "--resynth must be off|logical|routed, got '%s'\n",
                     v);
        return 1;
      }
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
      return 1;
    }
  }
  if (repeat < 1) repeat = 1;

  const std::vector<UccsdBenchmark> suite = uccsd_suite_small(max_qubits);
  std::printf("phoenix_serve: %zu UCCSD programs, %d round(s), %s cache\n\n",
              suite.size(), repeat,
              cache_dir != nullptr ? cache_dir : "in-memory");

  ServiceOptions opt;
  opt.num_threads = jobs;
  opt.max_queue = max_queue;
  if (cache_dir != nullptr) opt.cache.disk_dir = cache_dir;
  CompileService service(opt);

  for (int round = 1; round <= repeat; ++round) {
    const ServiceStats before = service.stats();
    std::vector<CompileService::Ticket> tickets;
    std::vector<char> admitted;
    tickets.reserve(suite.size());
    admitted.reserve(suite.size());
    const auto t0 = clock::now();
    for (const auto& b : suite) {
      CompileRequest req;
      req.terms = b.terms;
      req.num_qubits = b.num_qubits;
      req.options.peephole = opt_level;
      req.options.resynth = resynth;
      req.deadline_ms = deadline_ms;
      // Shortest-job-first: small programs return while big ones compile.
      const int priority = -static_cast<int>(b.terms.size());
      try {
        tickets.push_back(service.submit(std::move(req), priority));
        admitted.push_back(1);
      } catch (const Error& e) {
        if (e.kind() != Error::Kind::Overloaded) throw;
        tickets.emplace_back();  // queue full: submission itself was rejected
        admitted.push_back(0);
      }
    }
    std::size_t dropped = 0;
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      if (admitted[i] == 0) {
        ++dropped;
        if (round == 1)
          std::printf("  %-16s %5zu paulis -> rejected (overloaded)\n",
                      suite[i].name.c_str(), suite[i].terms.size());
        continue;
      }
      try {
        const auto res = tickets[i].get();
        if (res == nullptr) {
          std::fprintf(stderr, "BUG: null result for %s\n",
                       suite[i].name.c_str());
          return 1;
        }
        if (round == 1)
          std::printf("  %-16s %5zu paulis -> %5zu CNOT, 2Q depth %4zu\n",
                      suite[i].name.c_str(), suite[i].terms.size(),
                      res->circuit.count(GateKind::Cnot),
                      res->circuit.depth_2q());
      } catch (const Error& e) {
        // Deadline expired while waiting, or this flight was shed to admit a
        // higher-priority round-mate: a real server returns the structured
        // error to that one caller and keeps serving.
        ++dropped;
        if (round == 1)
          std::printf("  %-16s %5zu paulis -> dropped (%s)\n",
                      suite[i].name.c_str(), suite[i].terms.size(),
                      kind_name(e.kind()));
      }
    }
    const double ms = std::chrono::duration<double, std::milli>(
                          clock::now() - t0)
                          .count();
    const ServiceStats s = service.stats();
    std::printf(
        "round %d: %8.1f ms  (compiles %llu, memory hits %llu, disk hits "
        "%llu, in-flight joins %llu",
        round, ms,
        static_cast<unsigned long long>(s.misses - before.misses),
        static_cast<unsigned long long>(s.hits - before.hits),
        static_cast<unsigned long long>(s.disk_hits - before.disk_hits),
        static_cast<unsigned long long>(s.inflight_joins -
                                        before.inflight_joins));
    if (deadline_ms != CompileRequest::kNoDeadline || max_queue > 0)
      std::printf(", dropped %zu [timeouts %llu, shed %llu]", dropped,
                  static_cast<unsigned long long>(s.timeouts - before.timeouts),
                  static_cast<unsigned long long>(s.rejected -
                                                  before.rejected));
    std::printf(")\n");
  }

  const ServiceStats s = service.stats();
  std::printf(
      "\ntotals: requests %llu, compiles %llu, hits %llu (disk %llu), "
      "evictions %llu, cache %llu entries / %.1f MiB\n",
      static_cast<unsigned long long>(s.requests),
      static_cast<unsigned long long>(s.misses),
      static_cast<unsigned long long>(s.hits),
      static_cast<unsigned long long>(s.disk_hits),
      static_cast<unsigned long long>(s.evictions),
      static_cast<unsigned long long>(s.cache_entries),
      static_cast<double>(s.cache_bytes) / (1024.0 * 1024.0));
  return 0;
}
